#!/bin/sh
# Shared timeout-and-cleanup wrapper for the smoke-test aliases
# (cache/pass/obs/serve).  A wedged smoke binary — e.g. a server whose
# accept loop hangs — fails the suite after 240s (SIGTERM, then SIGKILL
# 10s later) instead of wedging `dune runtest` forever.
# Dune expands %{exe:...} to a bare relative name; qualify it so
# `timeout` executes it instead of searching PATH.
cmd=$1
shift
case "$cmd" in
  */*) ;;
  *) cmd=./$cmd ;;
esac
exec timeout -k 10 240 "$cmd" "$@"
