(* THE invariant of the paper: zero false positives.

   Any program, any inputs, no tampering => the IPDS checker never raises
   an alarm.  Exercised over three program populations: structured MiniC,
   raw arbitrary MIR, and the server workloads; plus the dual detection
   properties (a detected attack always coincides with a control-flow
   divergence). *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine

let check = Alcotest.(check bool)

let no_alarms ?options ~seed p =
  let system = Core.System.build ?options p in
  let checker = Core.System.new_checker system in
  let o =
    M.Interp.run p
      {
        M.Interp.default_config with
        max_steps = 5000;
        inputs = M.Input_script.random ~seed ();
        checker = Some checker;
      }
  in
  o.M.Interp.alarms = []

let prop_minic_no_false_positives =
  QCheck2.Test.make ~name:"zero false positives on random MiniC" ~count:200
    QCheck2.Gen.(tup2 Gen.minic_program (int_bound 1000))
    (fun (p, seed) -> no_alarms ~seed p)

let prop_mir_no_false_positives =
  QCheck2.Test.make ~name:"zero false positives on arbitrary MIR" ~count:300
    QCheck2.Gen.(tup2 Gen.mir_program (int_bound 1000))
    (fun (p, seed) -> no_alarms ~seed p)

let prop_mir_no_false_positives_precise_summaries =
  let options =
    {
      Ipds_correlation.Analysis.default_options with
      Ipds_correlation.Analysis.summary_mode = `Precise_globals;
    }
  in
  QCheck2.Test.make ~name:"zero false positives with precise global summaries"
    ~count:200
    QCheck2.Gen.(tup2 Gen.mir_program (int_bound 1000))
    (fun (p, seed) -> no_alarms ~options ~seed p)

let prop_promoted_no_false_positives =
  QCheck2.Test.make ~name:"zero false positives after register promotion"
    ~count:150
    QCheck2.Gen.(tup2 Gen.minic_program (int_bound 1000))
    (fun (p, seed) -> no_alarms ~seed (Ipds_opt.Promote.program p))

let test_workloads_no_false_positives () =
  List.iter
    (fun w ->
      let p = Ipds_workloads.Workloads.program w in
      for seed = 0 to 14 do
        check
          (Printf.sprintf "%s seed %d clean" w.Ipds_workloads.Workloads.name seed)
          true (no_alarms ~seed p)
      done)
    Ipds_workloads.Workloads.all

(* Detection sanity: every alarm coincides with an actual control-flow
   divergence from the untampered run. *)
let prop_alarm_implies_divergence =
  QCheck2.Test.make ~name:"alarms imply control-flow divergence" ~count:150
    QCheck2.Gen.(tup3 Gen.minic_program (int_bound 1000) (int_bound 10000))
    (fun (p, seed, attack_bits) ->
      let system = Core.System.build p in
      let run ~tamper =
        let checker = Core.System.new_checker system in
        M.Interp.run p
          {
            M.Interp.default_config with
            max_steps = 5000;
            inputs = M.Input_script.random ~seed ();
            checker = Some checker;
            tamper;
          }
      in
      let benign = run ~tamper:None in
      QCheck2.assume (benign.M.Interp.steps > 2);
      let tamper =
        {
          M.Tamper.at_step = 1 + (attack_bits mod (benign.M.Interp.steps - 1));
          site =
            (match attack_bits mod 4 with
            | 0 | 1 ->
                M.Tamper.Mem_write
                  { model = M.Tamper.Arbitrary_write; value = attack_bits mod 256 }
            | 2 -> M.Tamper.Cond_flip
            | _ -> M.Tamper.Insn_skip);
          seed = attack_bits;
        }
      in
      let attacked = run ~tamper:(Some tamper) in
      match attacked.M.Interp.injection with
      | None -> true
      | Some _ ->
          if attacked.M.Interp.alarms <> [] then
            M.Interp.control_flow_changed benign attacked
          else true)

(* A canonical attack that MUST be detected: flag pinned by a check, then
   flipped, then re-checked. *)
let test_canonical_detection () =
  let p =
    Mir.Parser.program_of_string
      {|
func main() {
 var flag
entry:
  store flag, 1
  jmp first
first:
  r0 = load flag
  br eq r0, 1, second, bad
second:
  r1 = load flag
  br eq r1, 1, good, bad
good:
  ret 0
bad:
  ret 1
}
|}
  in
  let system = Core.System.build p in
  (* Tamper flag right between the two checks (after step 4: store,jmp,
     load,branch have executed). *)
  let found = ref false in
  for seed = 0 to 20 do
    if not !found then begin
      let checker = Core.System.new_checker system in
      let o =
        M.Interp.run p
          {
            M.Interp.default_config with
            checker = Some checker;
            tamper =
              Some
                {
                  M.Tamper.at_step = 4;
                  site =
                    M.Tamper.Mem_write { model = M.Tamper.Stack_overflow; value = 0 };
                  seed;
                };
          }
      in
      match o.M.Interp.injection with
      | Some _ ->
          found := true;
          check "tamper detected" true (o.M.Interp.alarms <> [])
      | None -> ()
    end
  done;
  check "tamper landed" true !found

let () =
  Alcotest.run "soundness"
    [
      ( "zero-false-positives",
        [
          QCheck_alcotest.to_alcotest prop_minic_no_false_positives;
          QCheck_alcotest.to_alcotest prop_mir_no_false_positives;
          QCheck_alcotest.to_alcotest prop_mir_no_false_positives_precise_summaries;
          QCheck_alcotest.to_alcotest prop_promoted_no_false_positives;
          Alcotest.test_case "workloads clean" `Quick test_workloads_no_false_positives;
        ] );
      ( "detection",
        [
          QCheck_alcotest.to_alcotest prop_alarm_implies_divergence;
          Alcotest.test_case "canonical attack detected" `Quick test_canonical_detection;
        ] );
    ]
