(* The attack-universes smoke test: the built-in workloads plus a tiny
   generated population attacked under all three universes (mem,
   cond-flip, insn-skip) next to the DME baseline, checking

   - the stable attack report is byte-identical for --jobs 1 vs 4,
   - the attack.* counters reconcile exactly with each universe's
     summary totals (the detection deltas are counter-asserted),
   - branch faults change committed traces and memory campaigns stay
     free of benign false positives,
   - DME holdout pairs never diverge and price the ~2x replica overhead.

   Runs under test/smoke_timeout.sh via the @attack-smoke alias. *)

module H = Ipds_harness
module Pool = Ipds_parallel.Pool
module R = Ipds_obs.Registry
module J = H.Json

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "ATTACK SMOKE FAIL: %s\n%!" msg;
      exit 1)
    fmt

let counter name = R.counter_value (R.counter name)

(* per-universe campaigns with the obs counters read across each run:
   the summary totals must explain the counter movement exactly *)
let counter_reconciliation () =
  List.iter
    (fun u ->
      let name = H.Attack_experiment.universe_name u in
      let before =
        (counter "attack.injected", counter "attack.cf_changed",
         counter "attack.detected")
      in
      let s = H.Attack_experiment.run_all ~universe:u ~attacks:3 ~seed:5 ~jobs:1 () in
      let total f =
        List.fold_left (fun acc r -> acc + f r) 0 s.H.Attack_experiment.rows
      in
      let injected = total (fun r -> r.H.Attack_experiment.attacks) in
      let cf = total (fun r -> r.H.Attack_experiment.cf_changed) in
      let detected = total (fun r -> r.H.Attack_experiment.detected) in
      let b_inj, b_cf, b_det = before in
      if counter "attack.injected" - b_inj <> injected then
        fail "%s: attack.injected moved %d, summary says %d" name
          (counter "attack.injected" - b_inj)
          injected;
      if counter "attack.cf_changed" - b_cf <> cf then
        fail "%s: attack.cf_changed moved %d, summary says %d" name
          (counter "attack.cf_changed" - b_cf)
          cf;
      if counter "attack.detected" - b_det <> detected then
        fail "%s: attack.detected moved %d, summary says %d" name
          (counter "attack.detected" - b_det)
          detected;
      if injected = 0 then fail "%s: no attacks injected" name;
      if detected > cf then
        fail "%s: %d detected but only %d control-flow changes" name detected cf;
      (* a committed flip or skip always moves the branch-trace digest *)
      match u with
      | `Cond_flip | `Insn_skip ->
          if cf <> injected then
            fail "%s: %d/%d branch faults changed the committed trace" name cf
              injected
      | `Mem -> ())
    [ `Mem; `Cond_flip; `Insn_skip ]

let () =
  counter_reconciliation ();
  let config =
    {
      H.Attack_bench.default_config with
      attacks = 4;
      pop_members = 4;
      pop_attacks = 3;
      dme_attacks = 4;
      dme_holdout = 3;
    }
  in
  let run jobs =
    Pool.with_opt ~jobs (fun pool -> H.Attack_bench.run ~config ?pool ())
  in
  let r1 = try run 1 with H.Attack_experiment.False_positive msg ->
    fail "benign false positive: %s" msg
  in
  let r4 = run 4 in
  let stable r = J.to_string (H.Attack_bench.stable_json r) in
  if not (String.equal (stable r1) (stable r4)) then
    fail "stable attack report differs between --jobs 1 and --jobs 4";
  if r1.H.Attack_bench.pop_distinct <> config.H.Attack_bench.pop_members then
    fail "generated population has %d distinct members out of %d"
      r1.H.Attack_bench.pop_distinct config.H.Attack_bench.pop_members;
  List.iter
    (fun (r : Ipds_harness.Dme_experiment.row) ->
      let open Ipds_harness.Dme_experiment in
      if r.benign_diffs <> 0 then
        fail "DME false positives on %s: %d" r.workload r.benign_diffs;
      if r.overhead < 1.9 || r.overhead > 2.1 then
        fail "DME overhead on %s out of range: %f" r.workload r.overhead)
    r1.H.Attack_bench.dme;
  if List.length r1.H.Attack_bench.workload_universes <> 3 then
    fail "expected 3 workload universes";
  Printf.printf
    "attack smoke OK: 3 universes reconciled, stable report byte-identical \
     across jobs, %d generated members distinct, DME clean on %d workloads\n"
    r1.H.Attack_bench.pop_distinct
    (List.length r1.H.Attack_bench.dme)
