(* Tests for the alias subsystem: points-to, effect summaries, and access
   classification. *)

module Mir = Ipds_mir
module A = Ipds_alias

let check = Alcotest.(check bool)

let program src = Mir.Parser.program_of_string src

let ctx_of src =
  let p = program src in
  let pw = Ipds_correlation.Context.prepare p in
  (p, pw)

let test_cell () =
  let v = Mir.Var.make ~id:0 ~name:"a" ~size:4 ~storage:Mir.Var.Local in
  let c = A.Cell.make v 2 in
  check "cell equal" true (A.Cell.equal c (A.Cell.make v 2));
  check "cell differs by index" false (A.Cell.equal c (A.Cell.make v 1));
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Cell.make: index 7 out of bounds for a") (fun () ->
      ignore (A.Cell.make v 7));
  let s = Mir.Var.make ~id:1 ~name:"s" ~size:1 ~storage:Mir.Var.Local in
  check "of_scalar" true (A.Cell.equal (A.Cell.of_scalar s) (A.Cell.make s 0))

let test_wrap_index () =
  let v = Mir.Var.make ~id:0 ~name:"a" ~size:4 ~storage:Mir.Var.Local in
  Alcotest.(check int) "in range" 2 (A.Access.wrap_index v 2);
  Alcotest.(check int) "wraps" 1 (A.Access.wrap_index v 5);
  Alcotest.(check int) "negative wraps" 3 (A.Access.wrap_index v (-1))

let test_points_to_basics () =
  let src =
    {|
func main() {
 var x
 var buf[4]
entry:
  r0 = addr buf[0]
  r1 = add r0, 1
  store [r1], 5
  r2 = load x
  ret r2
}
|}
  in
  let p = program src in
  let pt = A.Points_to.compute p in
  let pts0 = A.Points_to.reg pt ~fname:"main" (Mir.Reg.make 0) in
  check "addr_of points to buf" true
    (Mir.Var.Set.exists (fun v -> String.equal v.Mir.Var.name "buf") pts0.A.Pt_set.vars);
  let pts1 = A.Points_to.reg pt ~fname:"main" (Mir.Reg.make 1) in
  check "pointer arithmetic preserves target" true
    (Mir.Var.Set.exists (fun v -> String.equal v.Mir.Var.name "buf") pts1.A.Pt_set.vars);
  let pts2 = A.Points_to.reg pt ~fname:"main" (Mir.Reg.make 2) in
  check "data load yields no pointer (nothing escapes)" true (A.Pt_set.is_empty pts2);
  check "address-taken is just buf" true
    (Mir.Var.Set.for_all
       (fun v -> String.equal v.Mir.Var.name "buf")
       (A.Points_to.address_taken pt))

let test_escape_through_memory () =
  let src =
    {|
func main() {
 var slot
 var buf[4]
entry:
  r0 = addr buf[0]
  store slot, r0
  r1 = load slot
  store [r1], 9
  ret
}
|}
  in
  let p = program src in
  let pt = A.Points_to.compute p in
  check "escaped set includes buf" true
    (Mir.Var.Set.exists
       (fun v -> String.equal v.Mir.Var.name "buf")
       (A.Points_to.escaped pt).A.Pt_set.vars);
  let pts1 = A.Points_to.reg pt ~fname:"main" (Mir.Reg.make 1) in
  check "loaded pointer may point to buf" true
    (Mir.Var.Set.exists (fun v -> String.equal v.Mir.Var.name "buf") pts1.A.Pt_set.vars)

let test_summaries () =
  let src =
    {|
global cfg
extern strcmp pure
extern recv writes(0)
func pure_helper(r0) {
start:
  r1 = add r0, 1
  ret r1
}
func writes_param(r0) {
start:
  store [r0], 7
  ret
}
func writes_global() {
start:
  store cfg, 1
  ret
}
func main() {
 var buf[4]
entry:
  r0 = addr buf[0]
  r1 = call pure_helper(3)
  call writes_param(r0)
  call writes_global()
  ret
}
|}
  in
  let p = program src in
  let pt = A.Points_to.compute p in
  let faithful = A.Summary.compute p pt ~mode:`Faithful in
  check "pure helper is pure" true (A.Summary.is_pure (faithful "pure_helper"));
  let wp = faithful "writes_param" in
  check "param writer writes arg0" true (A.Pt_set.Int_set.mem 0 wp.A.Summary.args);
  check "param writer is not 'any'" false wp.A.Summary.any;
  check "global writer degrades to any (faithful)" true (faithful "writes_global").A.Summary.any;
  let precise = A.Summary.compute p pt ~mode:`Precise_globals in
  let wg = precise "writes_global" in
  check "precise mode keeps the global set" false wg.A.Summary.any;
  check "precise mode records cfg" true
    (Mir.Var.Set.exists (fun v -> String.equal v.Mir.Var.name "cfg") wg.A.Summary.globals);
  check "extern pure" true (A.Summary.is_pure (faithful "strcmp"));
  check "extern writes(0)" true
    (A.Pt_set.Int_set.mem 0 (faithful "recv").A.Summary.args);
  check "unknown extern is any" true (faithful "nonsense").A.Summary.any

let test_transitive_summary () =
  let src =
    {|
global cfg
func inner() {
start:
  store cfg, 1
  ret
}
func outer() {
start:
  call inner()
  ret
}
func main() {
entry:
  call outer()
  ret
}
|}
  in
  let p, pw = ctx_of src in
  ignore p;
  check "global write propagates through call chain" true
    (pw.Ipds_correlation.Context.summaries "outer").A.Summary.any

let test_access_targets () =
  let src =
    {|
extern recv writes(0)
func main() {
 var x
 var buf[4]
entry:
  r0 = load x
  r1 = load buf[2]
  r2 = load buf[r0]
  r3 = addr buf[0]
  r4 = call recv(r3, 4)
  store x, 1
  ret
}
|}
  in
  let p, pw = ctx_of src in
  let f = Mir.Program.find_func_exn p "main" in
  let ctx = Ipds_correlation.Context.for_func pw f in
  let acc = ctx.Ipds_correlation.Context.access in
  let x = List.find (fun (v : Mir.Var.t) -> v.name = "x") f.Mir.Func.locals in
  let buf = List.find (fun (v : Mir.Var.t) -> v.name = "buf") f.Mir.Func.locals in
  (match A.Access.addr_target acc (Mir.Addr.Direct x) with
  | A.Access.Exact c -> check "direct is exact" true (A.Cell.equal c (A.Cell.of_scalar x))
  | A.Access.No_target | A.Access.Within _ -> Alcotest.fail "direct should be exact");
  (match A.Access.addr_target acc (Mir.Addr.Index (buf, Mir.Operand.imm 2)) with
  | A.Access.Exact c -> check "const index exact" true (c.A.Cell.index = 2)
  | A.Access.No_target | A.Access.Within _ -> Alcotest.fail "const index should be exact");
  (match A.Access.addr_target acc (Mir.Addr.Index (buf, Mir.Operand.reg (Mir.Reg.make 0))) with
  | A.Access.Within vs -> check "var index within buf" true (Mir.Var.Set.mem buf vs)
  | A.Access.No_target | A.Access.Exact _ -> Alcotest.fail "var index should be within");
  (* the recv call writes through its pointer arg into buf *)
  let recv_call =
    let found = ref None in
    Mir.Func.iter_instrs f (fun _ op ->
        match op with
        | Mir.Op.Call _ -> found := Some op
        | _ -> ());
    Option.get !found
  in
  (match A.Access.may_defs acc recv_call with
  | A.Access.Within vs -> check "recv writes within buf" true (Mir.Var.Set.mem buf vs)
  | A.Access.Exact c -> check "recv writes a buf cell" true (Mir.Var.equal c.A.Cell.var buf)
  | A.Access.No_target -> Alcotest.fail "recv should write its buffer");
  (* may_touch *)
  check "exact touches its cell" true
    (A.Access.may_touch (A.Access.Exact (A.Cell.of_scalar x)) (A.Cell.of_scalar x));
  check "exact misses other cells" false
    (A.Access.may_touch (A.Access.Exact (A.Cell.make buf 0)) (A.Cell.make buf 1));
  check "within touches all cells of var" true
    (A.Access.may_touch (A.Access.Within (Mir.Var.Set.singleton buf)) (A.Cell.make buf 3));
  check "no_target touches nothing" false
    (A.Access.may_touch A.Access.No_target (A.Cell.of_scalar x))

let test_recursive_summary_conservative () =
  (* mutual recursion converges and stays sound *)
  let p =
    program
      {|
global g
func ping(r0) {
s:
  br le r0, 0, stop, go
stop:
  ret 0
go:
  store g, r0
  r1 = sub r0, 1
  r2 = call pong(r1)
  ret r2
}
func pong(r0) {
s:
  r1 = call ping(r0)
  ret r1
}
func main() {
entry:
  r0 = call ping(3)
  ret r0
}
|}
  in
  let pt = A.Points_to.compute p in
  let faithful = A.Summary.compute p pt ~mode:`Faithful in
  check "recursive global writer is any" true (faithful "ping").A.Summary.any;
  check "transitively through pong" true (faithful "pong").A.Summary.any;
  let precise = A.Summary.compute p pt ~mode:`Precise_globals in
  check "precise keeps g for ping" true
    (Mir.Var.Set.exists
       (fun v -> String.equal v.Mir.Var.name "g")
       (precise "ping").A.Summary.globals)

let test_param_pointer_effect () =
  (* writing through a parameter pointer is an args effect, not 'any' *)
  let p =
    program
      {|
func fill(r0, r1) {
s:
  store [r0], r1
  ret
}
func main() {
 var buf[4]
entry:
  r0 = addr buf[0]
  call fill(r0, 9)
  ret
}
|}
  in
  let pt = A.Points_to.compute p in
  let faithful = A.Summary.compute p pt ~mode:`Faithful in
  let s = faithful "fill" in
  check "fill is arg writer" true (A.Pt_set.Int_set.mem 0 s.A.Summary.args);
  check "fill is not any" false s.A.Summary.any

let test_pt_set_algebra () =
  let v = Mir.Var.make ~id:0 ~name:"v" ~size:1 ~storage:Mir.Var.Local in
  let a = A.Pt_set.of_var v in
  let b = A.Pt_set.of_param 2 in
  let u = A.Pt_set.union a b in
  check "union has var" true (Mir.Var.Set.mem v u.A.Pt_set.vars);
  check "union has param" true (A.Pt_set.Int_set.mem 2 u.A.Pt_set.params);
  check "empty is empty" true (A.Pt_set.is_empty A.Pt_set.empty);
  check "union not empty" false (A.Pt_set.is_empty u);
  check "params subsume anything" true (A.Pt_set.subsumes_anything u);
  check "plain var does not" false (A.Pt_set.subsumes_anything a);
  check "unknown does" true (A.Pt_set.subsumes_anything A.Pt_set.unknown)

let () =
  Alcotest.run "alias"
    [
      ( "cells",
        [
          Alcotest.test_case "cell basics" `Quick test_cell;
          Alcotest.test_case "wrap index" `Quick test_wrap_index;
        ] );
      ( "points-to",
        [
          Alcotest.test_case "basics" `Quick test_points_to_basics;
          Alcotest.test_case "escape through memory" `Quick test_escape_through_memory;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "modes" `Quick test_summaries;
          Alcotest.test_case "transitive" `Quick test_transitive_summary;
        ] );
      ("access", [ Alcotest.test_case "targets" `Quick test_access_targets ]);
      ( "edge-cases",
        [
          Alcotest.test_case "recursive summaries" `Quick test_recursive_summary_conservative;
          Alcotest.test_case "param pointer effect" `Quick test_param_pointer_effect;
          Alcotest.test_case "pt-set algebra" `Quick test_pt_set_algebra;
        ] );
    ]
