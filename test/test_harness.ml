(* Tests for the experiment harness: table rendering, experiment rows,
   and the statistics they report. *)

module H = Ipds_harness
module W = Ipds_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1)) in
  go 0

let test_stats () =
  check "mean" true (abs_float (H.Stats.mean [ 1.; 2.; 3. ] -. 2.) < 1e-9);
  check "mean empty" true (H.Stats.mean [] = 0.);
  check "stddev of constant" true (H.Stats.stddev [ 5.; 5.; 5. ] = 0.);
  check "stddev" true (abs_float (H.Stats.stddev [ 1.; 2.; 3. ] -. 1.) < 1e-9);
  check "stddev singleton" true (H.Stats.stddev [ 4. ] = 0.);
  check "min/max" true (H.Stats.minimum [ 3.; 1.; 2. ] = 1. && H.Stats.maximum [ 3.; 1.; 2. ] = 3.);
  check "mean_sd renders" true (String.length (H.Stats.mean_sd [ 0.5; 0.6 ]) > 0)

let test_table_render () =
  let s = H.Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "" ] ] in
  check "has header" true (contains s "a");
  check "pads columns" true (contains s "| 1   | 2  |");
  check "pct" true (String.equal (H.Table.pct 0.493) "49.3%");
  check "f1" true (String.equal (H.Table.f1 1.25) "1.2" || String.equal (H.Table.f1 1.25) "1.3")

let test_attack_experiment_row () =
  let row = H.Attack_experiment.run ~attacks:15 (W.find "telnetd") in
  check_int "requested attacks injected" 15 row.H.Attack_experiment.attacks;
  check "detected <= cf_changed is not required, but detected <= attacks" true
    (row.H.Attack_experiment.detected <= row.H.Attack_experiment.attacks);
  check "cf_changed <= attacks" true
    (row.H.Attack_experiment.cf_changed <= row.H.Attack_experiment.attacks);
  (* Detection implies control-flow change (no-FP corollary). *)
  check "detected <= cf_changed" true
    (row.H.Attack_experiment.detected <= row.H.Attack_experiment.cf_changed)

let test_attack_experiment_deterministic () =
  let r1 = H.Attack_experiment.run ~attacks:10 ~seed:5 (W.find "crond") in
  let r2 = H.Attack_experiment.run ~attacks:10 ~seed:5 (W.find "crond") in
  check "same seed same results" true (r1 = r2)

let test_run_all_jobs_deterministic () =
  (* The tentpole guarantee: per-attempt splittable seeding makes the
     campaign bit-for-bit identical for any domain count. *)
  let sequential = H.Attack_experiment.run_all ~attacks:5 ~seed:11 ~jobs:1 () in
  let parallel = H.Attack_experiment.run_all ~attacks:5 ~seed:11 ~jobs:4 () in
  check "jobs=1 equals jobs=4" true (sequential = parallel)

let test_summarize () =
  let rows =
    [
      { H.Attack_experiment.workload = "a"; attacks = 10; cf_changed = 5; detected = 4 };
      { H.Attack_experiment.workload = "b"; attacks = 10; cf_changed = 10; detected = 5 };
    ]
  in
  let s = H.Attack_experiment.summarize rows in
  check "avg cf" true (abs_float (s.H.Attack_experiment.avg_cf_changed -. 0.75) < 1e-9);
  check "avg detected" true (abs_float (s.H.Attack_experiment.avg_detected -. 0.45) < 1e-9);
  check "detected|cf" true (abs_float (s.H.Attack_experiment.detected_given_cf -. 0.65) < 1e-9);
  let rendered = H.Attack_experiment.render s in
  check "renders average row" true (contains rendered "AVERAGE")

let test_size_census () =
  let row = H.Size_census.run (W.find "sysklogd") in
  check "bsv positive" true (row.H.Size_census.avg_bsv_bits > 0.);
  check "bsv = 2 * bcv" true
    (abs_float (row.H.Size_census.avg_bsv_bits -. (2. *. row.H.Size_census.avg_bcv_bits)) < 1e-9);
  check "bat biggest" true (row.H.Size_census.avg_bat_bits > row.H.Size_census.avg_bsv_bits)

let test_perf_experiment () =
  let row = H.Perf_experiment.run ~repeats:2 (W.find "atftpd") in
  check "baseline cycles positive" true (row.H.Perf_experiment.base_cycles > 0.);
  check "normalized >= 1" true (row.H.Perf_experiment.normalized >= 1.0);
  check "normalized < 1.25 (overhead is small)" true (row.H.Perf_experiment.normalized < 1.25);
  check "latency positive" true (row.H.Perf_experiment.avg_detection_latency > 0.)

let test_compile_time () =
  let row = H.Compile_time.run (W.find "httpd") in
  check "compile under a second" true (row.H.Compile_time.seconds < 1.0);
  check "hash search did some work" true (row.H.Compile_time.hash_attempts > 0)

let test_ablation_variants () =
  check_int "five variants" 5 (List.length H.Ablation.variants);
  let labels = List.map (fun (v : H.Ablation.variant) -> v.H.Ablation.label) H.Ablation.variants in
  check "has full" true (List.mem "full" labels);
  check "has no-affine" true (List.mem "no-affine" labels)

let test_ablation_monotonic () =
  (* Disabling correlation families cannot check MORE branches. *)
  let full = List.find (fun (v : H.Ablation.variant) -> v.H.Ablation.label = "full") H.Ablation.variants in
  let noll = List.find (fun (v : H.Ablation.variant) -> v.H.Ablation.label = "no-load-load") H.Ablation.variants in
  let count options =
    List.fold_left
      (fun acc w ->
        acc
        + Ipds_core.System.checked_branch_count
            (Ipds_core.System.build ~options (W.program w)))
      0 W.all
  in
  check "fewer checks without load-load" true
    (count noll.H.Ablation.options <= count full.H.Ablation.options)

let () =
  Alcotest.run "harness"
    [
      ("table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "attack",
        [
          Alcotest.test_case "row invariants" `Slow test_attack_experiment_row;
          Alcotest.test_case "deterministic" `Slow test_attack_experiment_deterministic;
          Alcotest.test_case "deterministic across jobs" `Slow
            test_run_all_jobs_deterministic;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ( "others",
        [
          Alcotest.test_case "size census" `Quick test_size_census;
          Alcotest.test_case "perf" `Slow test_perf_experiment;
          Alcotest.test_case "compile time" `Quick test_compile_time;
          Alcotest.test_case "ablation variants" `Quick test_ablation_variants;
          Alcotest.test_case "ablation monotonic" `Slow test_ablation_monotonic;
        ] );
    ]
