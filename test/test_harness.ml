(* Tests for the experiment harness: table rendering, experiment rows,
   and the statistics they report. *)

module H = Ipds_harness
module W = Ipds_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1)) in
  go 0

let test_stats () =
  check "mean" true
    (match H.Stats.mean [ 1.; 2.; 3. ] with
    | Some m -> abs_float (m -. 2.) < 1e-9
    | None -> false);
  check "mean empty" true (H.Stats.mean [] = None);
  check "mean_exn empty raises" true
    (match H.Stats.mean_exn [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "stddev of constant" true (H.Stats.stddev [ 5.; 5.; 5. ] = 0.);
  check "stddev" true (abs_float (H.Stats.stddev [ 1.; 2.; 3. ] -. 1.) < 1e-9);
  check "stddev singleton" true (H.Stats.stddev [ 4. ] = 0.);
  check "min/max" true
    (H.Stats.minimum [ 3.; 1.; 2. ] = Some 1.
    && H.Stats.maximum [ 3.; 1.; 2. ] = Some 3.);
  check "min/max empty" true
    (H.Stats.minimum [] = None && H.Stats.maximum [] = None);
  check "mean_sd renders" true (String.length (H.Stats.mean_sd [ 0.5; 0.6 ]) > 0);
  (* an empty sample must be visibly absent, not a fake 0.0% data point *)
  check "mean_sd empty is n/a" true (String.equal (H.Stats.mean_sd []) "n/a")

(* Empty-sample rendering: a table over zero rows must show "n/a" in its
   AVERAGE cells, never "0.0%" (which would read as a measured value). *)
let test_empty_sample_rendering () =
  check "model render n/a" true (contains (H.Model_experiment.render []) "n/a");
  check "perf render n/a" true (contains (H.Perf_experiment.render []) "n/a");
  check "census render n/a" true (contains (H.Size_census.render []) "n/a");
  check "baseline render n/a" true
    (contains (H.Baseline_experiment.render []) "n/a")

(* ---------- JSON: parser, atomic writes, concurrent writers ---------- *)

let test_json_parser () =
  let doc =
    H.Json.Obj
      [
        ("int", H.Json.Int (-42));
        ("float", H.Json.Float 1.5);
        ("str", H.Json.String "a\"b\\c\n\t\xe2\x82\xac");
        ("list", H.Json.List [ H.Json.Bool true; H.Json.Bool false; H.Json.Null ]);
        ("nested", H.Json.Obj [ ("k", H.Json.Int 0) ]);
      ]
  in
  check "roundtrips" true (H.Json.of_string (H.Json.to_string doc) = doc);
  check "ints stay ints" true (H.Json.of_string "7" = H.Json.Int 7);
  check "exponents parse as floats" true
    (match H.Json.of_string "1e3" with H.Json.Float f -> f = 1000. | _ -> false);
  check "unicode escapes decode to UTF-8" true
    (H.Json.of_string "\"\\u20ac\"" = H.Json.String "\xe2\x82\xac");
  check "member" true
    (H.Json.member "int" doc = Some (H.Json.Int (-42))
    && H.Json.member "absent" doc = None
    && H.Json.member "k" (H.Json.Int 3) = None);
  check "trailing garbage rejected" true
    (match H.Json.of_string "{} x" with
    | exception H.Json.Parse_error _ -> true
    | _ -> false);
  check "malformed rejected" true
    (match H.Json.of_string "{\"a\":" with
    | exception H.Json.Parse_error _ -> true
    | _ -> false)

let test_concurrent_write_file () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-json-race-%d.json" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* A large-ish document per writer makes torn writes detectable:
         a mixed file would fail to parse or carry an inconsistent pair. *)
      let doc tag =
        H.Json.Obj
          [
            ("writer", H.Json.Int tag);
            ("check", H.Json.Int (tag * 1000));
            ("pad", H.Json.List (List.init 200 (fun i -> H.Json.Int (tag + i))));
          ]
      in
      let writers = 8 and rounds = 25 in
      let domains =
        List.init writers (fun tag ->
            Domain.spawn (fun () ->
                for _ = 1 to rounds do
                  H.Json.write_file path (doc tag)
                done))
      in
      List.iter Domain.join domains;
      (* the survivor must be one complete document from one writer *)
      let ic = open_in path in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      let parsed = H.Json.of_string contents in
      let tag =
        match H.Json.member "writer" parsed with
        | Some (H.Json.Int t) -> t
        | _ -> Alcotest.fail "no writer field"
      in
      check "consistent document" true
        (parsed = doc tag);
      (* no temp litter left behind *)
      let dir = Filename.dirname path and base = Filename.basename path in
      let litter =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f ->
               String.length f > String.length base
               && String.sub f 0 (String.length base) = base)
      in
      check "temp files cleaned up" true (litter = []))

(* ---------- metrics determinism across job counts ---------- *)

let test_metrics_jobs_deterministic () =
  (* Warm every per-process cache first: memo hits/computed are stable
     but depend on the process's warm/cold state, so both measured runs
     must start from the same (warm) state. *)
  ignore (H.Attack_experiment.run_all ~attacks:3 ~seed:13 ~jobs:2 ());
  let snap jobs =
    Ipds_obs.Registry.reset ();
    ignore (H.Attack_experiment.run_all ~attacks:3 ~seed:13 ~jobs ());
    Ipds_obs.Json.to_string
      (Ipds_obs.Registry.snapshot_json ~stability:`Stable ())
  in
  let s1 = snap 1 in
  let s4 = snap 4 in
  Alcotest.(check string) "stable metrics byte-identical across jobs" s1 s4;
  check "metrics are non-trivial" true
    (String.length s1 > 2 && s1 <> "{}")

let test_table_render () =
  let s = H.Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "" ] ] in
  check "has header" true (contains s "a");
  check "pads columns" true (contains s "| 1   | 2  |");
  check "pct" true (String.equal (H.Table.pct 0.493) "49.3%");
  check "f1" true (String.equal (H.Table.f1 1.25) "1.2" || String.equal (H.Table.f1 1.25) "1.3")

let test_attack_experiment_row () =
  let row = H.Attack_experiment.run ~attacks:15 (W.find "telnetd") in
  check_int "requested attacks injected" 15 row.H.Attack_experiment.attacks;
  check "detected <= cf_changed is not required, but detected <= attacks" true
    (row.H.Attack_experiment.detected <= row.H.Attack_experiment.attacks);
  check "cf_changed <= attacks" true
    (row.H.Attack_experiment.cf_changed <= row.H.Attack_experiment.attacks);
  (* Detection implies control-flow change (no-FP corollary). *)
  check "detected <= cf_changed" true
    (row.H.Attack_experiment.detected <= row.H.Attack_experiment.cf_changed)

let test_attack_experiment_deterministic () =
  let r1 = H.Attack_experiment.run ~attacks:10 ~seed:5 (W.find "crond") in
  let r2 = H.Attack_experiment.run ~attacks:10 ~seed:5 (W.find "crond") in
  check "same seed same results" true (r1 = r2)

let test_run_all_jobs_deterministic () =
  (* The tentpole guarantee: per-attempt splittable seeding makes the
     campaign bit-for-bit identical for any domain count. *)
  let sequential = H.Attack_experiment.run_all ~attacks:5 ~seed:11 ~jobs:1 () in
  let parallel = H.Attack_experiment.run_all ~attacks:5 ~seed:11 ~jobs:4 () in
  check "jobs=1 equals jobs=4" true (sequential = parallel)

let test_golden_campaign_rows () =
  (* Frozen `ipds attack` CLI rows (name salts include the CLI's "@"
     prefix).  These anchor the typed-tamper-site refactor: any change
     to the attempt schedule or the memory universes shows up here as a
     changed injected/detected count. *)
  let check_row name model attacks seed exp_detected =
    let w = W.find (String.sub name 1 (String.length name - 1)) in
    let system = W.system w in
    let r =
      H.Attack_experiment.campaign ~system ~attacks ~seed ~model ~name
        system.Ipds_core.System.program
    in
    check_int (name ^ " injected") attacks r.H.Attack_experiment.attacks;
    check_int (name ^ " detected") exp_detected r.H.Attack_experiment.detected
  in
  check_row "@telnetd" `Arbitrary_write 12 2006 2;
  check_row "@crond" `Arbitrary_write 12 7 2;
  check_row "@telnetd" `Stack_overflow 12 2006 2;
  check_row "@sysklogd" `Stack_overflow 10 42 2

let test_branch_fault_universes () =
  (* The branch-fault universes: a committed flip or skip always moves
     the branch-trace digest, so cf_changed tracks injections exactly;
     rows stay deterministic for a fixed seed. *)
  List.iter
    (fun u ->
      let name = H.Attack_experiment.universe_name u in
      let r =
        H.Attack_experiment.run ~universe:u ~attacks:10 ~seed:3
          (W.find "telnetd")
      in
      check_int (name ^ " injected") 10 r.H.Attack_experiment.attacks;
      check_int (name ^ " changes the committed trace") 10
        r.H.Attack_experiment.cf_changed;
      check (name ^ " detected within cf_changed") true
        (r.H.Attack_experiment.detected <= r.H.Attack_experiment.cf_changed);
      let r' =
        H.Attack_experiment.run ~universe:u ~attacks:10 ~seed:3
          (W.find "telnetd")
      in
      check (name ^ " deterministic") true (r = r'))
    [ `Cond_flip; `Insn_skip ];
  check "universe names round-trip" true
    (List.for_all
       (fun u ->
         H.Attack_experiment.universe_of_name (H.Attack_experiment.universe_name u)
         = Some u)
       [ `Mem; `Cond_flip; `Insn_skip ])

let test_summarize () =
  let rows =
    [
      { H.Attack_experiment.workload = "a"; attacks = 10; cf_changed = 5; detected = 4 };
      { H.Attack_experiment.workload = "b"; attacks = 10; cf_changed = 10; detected = 5 };
    ]
  in
  let s = H.Attack_experiment.summarize rows in
  check "avg cf" true (abs_float (s.H.Attack_experiment.avg_cf_changed -. 0.75) < 1e-9);
  check "avg detected" true (abs_float (s.H.Attack_experiment.avg_detected -. 0.45) < 1e-9);
  check "detected|cf" true (abs_float (s.H.Attack_experiment.detected_given_cf -. 0.65) < 1e-9);
  let rendered = H.Attack_experiment.render s in
  check "renders average row" true (contains rendered "AVERAGE")

let test_size_census () =
  let row = H.Size_census.run (W.find "sysklogd") in
  check "bsv positive" true (row.H.Size_census.avg_bsv_bits > 0.);
  check "bsv = 2 * bcv" true
    (abs_float (row.H.Size_census.avg_bsv_bits -. (2. *. row.H.Size_census.avg_bcv_bits)) < 1e-9);
  check "bat biggest" true (row.H.Size_census.avg_bat_bits > row.H.Size_census.avg_bsv_bits)

let test_perf_experiment () =
  let row = H.Perf_experiment.run ~repeats:2 (W.find "atftpd") in
  check "baseline cycles positive" true (row.H.Perf_experiment.base_cycles > 0.);
  check "normalized >= 1" true (row.H.Perf_experiment.normalized >= 1.0);
  check "normalized < 1.25 (overhead is small)" true (row.H.Perf_experiment.normalized < 1.25);
  check "latency positive" true (row.H.Perf_experiment.avg_detection_latency > 0.)

let test_compile_time () =
  let row = H.Compile_time.run (W.find "httpd") in
  check "compile under a second" true (row.H.Compile_time.seconds < 1.0);
  check "hash search did some work" true (row.H.Compile_time.hash_attempts > 0)

let test_ablation_variants () =
  check_int "five variants" 5 (List.length H.Ablation.variants);
  let labels = List.map (fun (v : H.Ablation.variant) -> v.H.Ablation.label) H.Ablation.variants in
  check "has full" true (List.mem "full" labels);
  check "has no-affine" true (List.mem "no-affine" labels)

let test_ablation_monotonic () =
  (* Disabling correlation families cannot check MORE branches. *)
  let full = List.find (fun (v : H.Ablation.variant) -> v.H.Ablation.label = "full") H.Ablation.variants in
  let noll = List.find (fun (v : H.Ablation.variant) -> v.H.Ablation.label = "no-load-load") H.Ablation.variants in
  let count options =
    List.fold_left
      (fun acc w ->
        acc
        + Ipds_core.System.checked_branch_count
            (Ipds_core.System.build ~options (W.program w)))
      0 W.all
  in
  check "fewer checks without load-load" true
    (count noll.H.Ablation.options <= count full.H.Ablation.options)

let () =
  Alcotest.run "harness"
    [
      ("table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "empty-sample rendering" `Quick
            test_empty_sample_rendering;
        ] );
      ( "json",
        [
          Alcotest.test_case "parser" `Quick test_json_parser;
          Alcotest.test_case "concurrent writers" `Quick
            test_concurrent_write_file;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "deterministic across jobs" `Slow
            test_metrics_jobs_deterministic;
        ] );
      ( "attack",
        [
          Alcotest.test_case "row invariants" `Slow test_attack_experiment_row;
          Alcotest.test_case "deterministic" `Slow test_attack_experiment_deterministic;
          Alcotest.test_case "golden CLI rows" `Slow test_golden_campaign_rows;
          Alcotest.test_case "branch-fault universes" `Slow
            test_branch_fault_universes;
          Alcotest.test_case "deterministic across jobs" `Slow
            test_run_all_jobs_deterministic;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ( "others",
        [
          Alcotest.test_case "size census" `Quick test_size_census;
          Alcotest.test_case "perf" `Slow test_perf_experiment;
          Alcotest.test_case "compile time" `Quick test_compile_time;
          Alcotest.test_case "ablation variants" `Quick test_ablation_variants;
          Alcotest.test_case "ablation monotonic" `Slow test_ablation_monotonic;
        ] );
    ]
