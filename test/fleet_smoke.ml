(* End-to-end smoke test of fleet mode (@fleet-smoke):

   A 3-shard fleet (three event-loop servers over one shared artifact
   store) serves every built-in workload through the routing client:
   - consistent hashing spreads the keys over at least two shards and
     every remote verdict stream is byte-identical to an in-process
     System.new_checker run;
   - killing a shard yields typed [Unavailable] errors for its keys and
     the client re-routes to a ring successor, still byte-identical
     (the store is shared, so failover costs a cache miss, not truth);
   - with the whole fleet down, connect_for_key is a typed
     [Unavailable] error, not an exception;
   - the thin router serves legacy single-address clients byte-
     identically, keeps routing around the dead shard, and answers a
     dead fleet with one typed [Unavailable] error frame. *)

module P = Ipds_serve.Protocol
module Server = Ipds_serve.Server
module Client = Ipds_serve.Client
module Fleet_client = Ipds_serve.Fleet_client
module Router = Ipds_serve.Router
module Topology = Ipds_fleet.Topology
module Backoff = Ipds_fleet.Backoff
module W = Ipds_workloads.Workloads
module Core = Ipds_core
module M = Ipds_machine
module Store = Ipds_artifact.Store

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "FLEET SMOKE FAIL: %s\n%!" msg;
      exit 1)
    fmt

let section title = Printf.printf "--- %s ---\n%!" title

let ok = function
  | Ok v -> v
  | Error (e : P.err) ->
      fail "unexpected remote error %s: %s" (P.error_code_to_string e.P.code)
        e.P.detail

let temp_path suffix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ipds-fleet-smoke-%d%s" (Unix.getpid ()) suffix)

(* ---------- local reference runs ---------- *)

type local_run = {
  events : M.Event.t list;
  alarms : Core.Checker.alarm list;
  branches : int;
}

let local_run system program ~seed =
  let checker = Core.System.new_checker system in
  let events = ref [] in
  let o =
    M.Interp.run program
      {
        M.Interp.default_config with
        max_steps = 60_000;
        inputs = M.Input_script.random ~seed ();
        checker = Some checker;
        record_trace = false;
        sink =
          Some
            (fun (e : M.Event.t) ->
              match e.M.Event.kind with
              | M.Event.Call _ | M.Event.Ret | M.Event.Branch _ ->
                  events := e :: !events
              | _ -> ());
      }
  in
  {
    events = List.rev !events;
    alarms = Core.Checker.alarms checker;
    branches = o.M.Interp.branches;
  }

let render = List.map P.verdict_to_string

let rec chunks n = function
  | [] -> []
  | xs ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
      in
      let batch, rest = take n [] xs in
      batch :: chunks n rest

let remote_check client run =
  ok (Client.begin_trace client);
  let verdicts = ref [] in
  List.iter
    (fun batch -> verdicts := !verdicts @ ok (Client.send_events client batch))
    (chunks 200 run.events);
  let summary = ok (Client.end_trace client) in
  (!verdicts, summary)

let assert_equivalent ~what run (verdicts, (summary : P.summary)) =
  if render verdicts <> render run.alarms || verdicts <> run.alarms then
    fail "%s: remote verdicts differ from in-process checking" what;
  if
    summary.P.total_events <> List.length run.events
    || summary.P.total_branches <> run.branches
    || summary.P.total_alarms <> List.length run.alarms
  then fail "%s: trace summary diverges from the local run" what

(* ---------- the smoke ---------- *)

let () =
  let shards = 3 in
  let store_dir = temp_path "-store" in
  let store = Store.create ~dir:store_dir in
  let base = temp_path ".sock" in
  let topology = Topology.create ~shards (`Unix base) in
  (* fast, still-bounded failover so the dead-fleet paths stay quick *)
  let backoff = Backoff.create ~base:0.005 ~max_delay:0.02 ~max_attempts:4 () in
  let config =
    { Server.default_config with cache_slots = 16; store_dir = Some store_dir }
  in
  let start_shard i =
    match Topology.address topology i with
    | `Unix path -> Server.start ~config (`Unix path)
    | `Tcp _ -> fail "unix topology produced a tcp address"
  in
  let servers = Array.init shards start_shard in
  let stopped = Array.make shards false in
  let stop_shard i =
    if not stopped.(i) then begin
      stopped.(i) <- true;
      Server.stop servers.(i)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iteri (fun i _ -> stop_shard i) servers;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote store_dir))))
  @@ fun () ->
  let fc = Fleet_client.create ~backoff topology in
  (* publish every workload into the shared store and precompute the
     reference runs *)
  let cases =
    List.map
      (fun (w : W.t) ->
        let system = W.system w in
        let key = "fleet-" ^ w.W.name in
        Store.publish_system store key system;
        (w.W.name, key, local_run system (W.program w) ~seed:2006))
      W.all
  in

  section "1: routed checking, byte-identical to local, >= 2 shards used";
  let used = Hashtbl.create 8 in
  List.iter
    (fun (name, key, run) ->
      match Fleet_client.connect_for_key fc key with
      | Error e -> fail "%s: no route: %s" name e.P.detail
      | Ok routed ->
          if routed.Fleet_client.skipped <> [] then
            fail "%s: healthy fleet produced skipped shards" name;
          if routed.Fleet_client.shard <> Fleet_client.shard_of_key fc key then
            fail "%s: connected shard is not the ring owner" name;
          Hashtbl.replace used routed.Fleet_client.shard ();
          let c = routed.Fleet_client.client in
          ignore (ok (Client.load_key c key));
          assert_equivalent ~what:name run (remote_check c run);
          Client.close c)
    cases;
  if Hashtbl.length used < 2 then
    fail "only %d shard(s) used for %d keys" (Hashtbl.length used)
      (List.length cases);
  Printf.printf "1 ok: %d workloads over %d shards, all byte-identical\n%!"
    (List.length cases) (Hashtbl.length used);

  section "2: legacy client through the router, byte-identical";
  let router_sock = temp_path "-router.sock" in
  Router.with_router ~topology (`Unix router_sock) (fun _router ->
      List.iter
        (fun (name, key, run) ->
          let c = Client.connect (`Unix router_sock) in
          ignore (ok (Client.load_key c key));
          assert_equivalent ~what:("router/" ^ name) run (remote_check c run);
          Client.close c)
        (List.filteri (fun i _ -> i < 3) cases);
      Printf.printf "2 ok: routed sessions byte-identical through the proxy\n%!";

      section "3: dead shard -> typed unavailable, re-route, identical verdicts";
      let name0, key0, run0 = List.hd cases in
      let owner = Fleet_client.shard_of_key fc key0 in
      stop_shard owner;
      (match Fleet_client.connect_for_key fc key0 with
      | Error e -> fail "failover gave up: %s" e.P.detail
      | Ok routed ->
          (match routed.Fleet_client.skipped with
          | [ (e : P.err) ] ->
              if e.P.code <> P.Unavailable then
                fail "skipped shard error is %s, not unavailable"
                  (P.error_code_to_string e.P.code)
          | skipped ->
              fail "expected exactly one skipped shard, got %d"
                (List.length skipped));
          if routed.Fleet_client.shard = owner then
            fail "re-route landed on the dead owner";
          let c = routed.Fleet_client.client in
          ignore (ok (Client.load_key c key0));
          assert_equivalent ~what:(name0 ^ "/failover") run0 (remote_check c run0);
          Client.close c);
      (* keys owned by surviving shards are untouched *)
      List.iter
        (fun (name, key, run) ->
          if Fleet_client.shard_of_key fc key <> owner then begin
            match Fleet_client.connect_for_key fc key with
            | Error e -> fail "%s: survivor unreachable: %s" name e.P.detail
            | Ok routed ->
                if routed.Fleet_client.skipped <> [] then
                  fail "%s: survivor-owned key paid a failover" name;
                let c = routed.Fleet_client.client in
                ignore (ok (Client.load_key c key));
                assert_equivalent ~what:(name ^ "/survivor") run
                  (remote_check c run);
                Client.close c
          end)
        (List.filteri (fun i _ -> i < 4) cases);
      (* the router fails over around the dead shard too *)
      let c = Client.connect (`Unix router_sock) in
      ignore (ok (Client.load_key c key0));
      assert_equivalent ~what:(name0 ^ "/router-failover") run0
        (remote_check c run0);
      Client.close c;
      Printf.printf "3 ok: one skipped typed unavailable, verdicts identical after re-route\n%!";

      section "4: whole fleet down -> typed unavailable, no exceptions";
      Array.iteri (fun i _ -> stop_shard i) servers;
      (match Fleet_client.connect_for_key fc key0 with
      | Ok routed ->
          Client.close routed.Fleet_client.client;
          fail "connect_for_key succeeded against a dead fleet"
      | Error e ->
          if e.P.code <> P.Unavailable then
            fail "dead fleet error is %s, not unavailable"
              (P.error_code_to_string e.P.code));
      (* a legacy client through the router gets one typed error frame *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX router_sock);
      P.output_frame fd (P.Load_key key0);
      let reader = P.reader fd in
      (match P.input_frame reader with
      | P.In_frame (P.Error e) when e.P.code = P.Unavailable -> ()
      | P.In_frame _ -> fail "router replied with a non-error frame"
      | P.In_eof -> fail "router hung up without a typed error"
      | P.In_error e ->
          fail "router transport error: %s" (P.error_code_to_string e.P.code));
      Unix.close fd;
      Printf.printf "4 ok: dead fleet surfaces as typed unavailable everywhere\n%!");

  section "5: artifact sharing -- cold shard warms itself from a peer";
  (* Two fresh shards with SEPARATE stores (sections 1-4 share one
     directory, which would hide the fetch): warm shard 0 holds the
     artifact, cold shard 1 must obtain it over the fetch frame, verify
     it, publish it into its own store and serve byte-identical
     verdicts -- with zero MiniC compiles anywhere in the process. *)
  let module Reg = Ipds_obs.Registry in
  let cval name = Reg.counter_value (Reg.counter name) in
  let base5 = temp_path "-share.sock" in
  let topo5 = Topology.create ~shards:2 (`Unix base5) in
  let dirs = [| temp_path "-share-store0"; temp_path "-share-store1" |] in
  let share_config i =
    {
      Server.default_config with
      cache_slots = 16;
      store_dir = Some dirs.(i);
      peers =
        Some
          {
            Server.peer_topology = topo5;
            peer_self = i;
            peer_backoff = backoff;
          };
    }
  in
  let path5 i =
    match Topology.address topo5 i with
    | `Unix path -> path
    | `Tcp _ -> fail "unix topology produced a tcp address"
  in
  let s5 = Array.init 2 (fun i -> Server.start ~config:(share_config i) (`Unix (path5 i))) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter Server.stop s5;
      Array.iter
        (fun d -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d))))
        dirs)
  @@ fun () ->
  let w5 = List.hd W.all in
  let system5 = W.system w5 in
  let key5 = "share-" ^ w5.W.name in
  let run5 = local_run system5 (W.program w5) ~seed:2006 in
  let store_warm = Store.create ~dir:dirs.(0) in
  Store.publish_system store_warm key5 system5;
  let compiles0 = W.compile_count () in
  let fetches0 = cval "serve.artifact_fetches" in
  let peer_loads0 = cval "serve.artifact_peer_loads" in
  (* straight to the COLD shard: its store misses, so it must go to its
     ring peer (never itself) for the bytes *)
  let c = Client.connect (`Unix (path5 1)) in
  ignore (ok (Client.load_key c key5));
  assert_equivalent ~what:"cold-shard warm-up" run5 (remote_check c run5);
  Client.close c;
  if W.compile_count () <> compiles0 then
    fail "cold shard recompiled instead of fetching from its peer";
  if cval "serve.artifact_fetches" - fetches0 <> 1 then
    fail "expected exactly one peer fetch served, got %d"
      (cval "serve.artifact_fetches" - fetches0);
  if cval "serve.artifact_peer_loads" - peer_loads0 <> 1 then
    fail "expected exactly one peer-warmed load, got %d"
      (cval "serve.artifact_peer_loads" - peer_loads0);
  (* the fetched artifact was published into the cold shard's own
     store: a fresh session is a local hit, no second peer fetch *)
  let fetches1 = cval "serve.artifact_fetches" in
  let c2 = Client.connect (`Unix (path5 1)) in
  ignore (ok (Client.load_key c2 key5));
  assert_equivalent ~what:"warmed-shard rerun" run5 (remote_check c2 run5);
  Client.close c2;
  if cval "serve.artifact_fetches" <> fetches1 then
    fail "warmed shard paid a second peer fetch";
  (* and client-side push seeds a shard directly: push to shard 0 under
     a new key, then a fetch returns the identical bytes *)
  let image5 = Ipds_artifact.Artifact.to_bytes system5 in
  let fc5 = Fleet_client.create ~backoff topo5 in
  (match Fleet_client.push_artifact fc5 ~key:"share-seeded" image5 with
  | Ok true -> ()
  | Ok false -> fail "seeding push reported duplicate on an empty key"
  | Error e -> fail "seeding push failed: %s" e.P.detail);
  (match Fleet_client.fetch_artifact fc5 "share-seeded" with
  | Ok got when Bytes.equal got image5 -> ()
  | Ok _ -> fail "fetched bytes differ from the pushed image"
  | Error e -> fail "fetch after push failed: %s" e.P.detail);
  Printf.printf
    "5 ok: cold shard warmed over the wire, zero compiles, verdicts identical\n%!";
  print_endline "fleet smoke OK"
