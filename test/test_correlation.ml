(* Tests for the branch-correlation analysis against the paper's own
   examples (§4 Figure 3, §5.1 Figure 4) and targeted corner cases. *)

module Mir = Ipds_mir
module Corr = Ipds_correlation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let analyze src =
  let p = Mir.Parser.program_of_string src in
  List.assoc "main" (Corr.Analysis.analyze_program p)

let actions_on r edge = Corr.Analysis.actions_for r edge

let has_action r edge target action =
  List.exists
    (fun (t, a) -> t = target && Corr.Action.equal a action)
    (actions_on r edge)

(* Figure 4's loop: y checked at BR1 (<5) and BR5 (<10); x checked and
   conditionally redefined at BR2. *)
let figure4 =
  {|
func main() {
 var x
 var y
entry:
  r0 = input 0
  store y, r0
  r1 = input 0
  store x, r1
  jmp loop
loop:
  r2 = load y
  br lt r2, 5, bb2, bb5
bb2:
  r3 = load x
  br gt r3, 10, bb3, bb5
bb3:
  r4 = input 0
  store x, r4
  jmp bb5
bb5:
  r5 = load y
  br lt r5, 10, loop, exit
exit:
  ret 0
}
|}

(* iids follow definition order: entry 0..4; loop: load y=5, br1=6;
   bb2: load x=7, br2=8; bb3: input=9, store x=10, jmp=11;
   bb5: load y=12, br5=13; exit: ret=14. *)
let br1 = 6
let br2 = 8
let br5 = 13

let test_figure4_depends () =
  let r = analyze figure4 in
  check_int "three dependent branches" 3 (List.length r.Corr.Analysis.depends);
  check "all three checked" true (List.sort compare r.Corr.Analysis.checked = [ br1; br2; br5 ])

let test_figure4_subsumption () =
  let r = analyze figure4 in
  (* BR1 taken: y < 5 subsumes y < 10, so BR5 expects taken; BR1 expects
     taken again (scenario 2). *)
  check "BR1 taken sets BR5 taken" true (has_action r (br1, true) br5 Corr.Action.Set_taken);
  check "BR1 taken sets itself taken" true (has_action r (br1, true) br1 Corr.Action.Set_taken);
  (* BR1 not-taken: y >= 5 says nothing about y < 10. *)
  check "BR1 not-taken leaves BR5 alone" false
    (List.mem_assoc br5 (actions_on r (br1, false)));
  check "BR1 not-taken pins itself" true
    (has_action r (br1, false) br1 Corr.Action.Set_not_taken);
  (* BR5 not-taken: y >= 10 subsumes y >= 5: BR1 must be not-taken. *)
  check "BR5 not-taken sets BR1 not-taken" true
    (has_action r (br5, false) br1 Corr.Action.Set_not_taken)

let test_figure4_redefinition () =
  let r = analyze figure4 in
  (* BR2 taken enters bb3 which redefines x: its own status becomes
     unknown (the Figure 4 walkthrough). *)
  check "BR2 taken sets itself unknown" true
    (has_action r (br2, true) br2 Corr.Action.Set_unknown);
  (* BR2 not-taken: x <= 10 pins it not-taken for the next iteration. *)
  check "BR2 not-taken pins itself" true
    (has_action r (br2, false) br2 Corr.Action.Set_not_taken)

(* Store–load correlation (Figure 3.b/3.c): the branch tests the value a
   store put in memory, plus affine adjustment through a subtraction. *)
let test_store_load_affine () =
  let r =
    analyze
      {|
func main() {
 var y
entry:
  r0 = input 0
  store y, r0
  br lt r0, 5, small, big
small:
  r1 = load y
  r2 = sub r1, 1
  br lt r2, 10, hit, miss
big:
  ret 0
hit:
  ret 1
miss:
  ret 2
}
|}
  in
  (* iids: input=0 store=1 br_s=2; small: load=3 sub=4 br_t=5 *)
  check "store-test pins the dependent branch" true (has_action r (2, true) 5 Corr.Action.Set_taken);
  check "dependent branch is checked" true (List.mem 5 r.Corr.Analysis.checked)

(* A constant store inside a region forces later branch directions. *)
let test_const_store_region_fact () =
  let r =
    analyze
      {|
func main() {
 var flag
entry:
  r0 = input 0
  br lt r0, 0, neg, pos
neg:
  store flag, 1
  jmp check
pos:
  store flag, 1
  jmp check
check:
  r1 = load flag
  br eq r1, 1, yes, no
yes:
  ret 1
no:
  ret 0
}
|}
  in
  (* iids: entry: 0,1; neg: 2,3; pos: 4,5; check: 6,7 *)
  check "const store on taken edge pins check" true (has_action r (1, true) 7 Corr.Action.Set_taken);
  check "const store on fallthrough edge pins check" true
    (has_action r (1, false) 7 Corr.Action.Set_taken)

(* A call that may write the variable must reset the status. *)
let test_call_kill () =
  let r =
    analyze
      {|
extern syscall writes_all
func main() {
 var flag
entry:
  store flag, 1
  jmp loop
loop:
  r0 = load flag
  br eq r0, 1, body, exit
body:
  call syscall(0)
  jmp loop
exit:
  ret 0
}
|}
  in
  (* iids: entry: 0(store),1(jmp); loop: 2(load),3(br); body: 4(call),5(jmp); exit: 6 *)
  check "flag branch is checked (entry fact)" true (List.mem 3 r.Corr.Analysis.checked);
  check "entry const store pins the check" true
    (List.exists
       (fun (t, a) -> t = 3 && Corr.Action.equal a Corr.Action.Set_taken)
       r.Corr.Analysis.entry_actions);
  check "the wild call resets the status" true (has_action r (3, true) 3 Corr.Action.Set_unknown)

(* A pure call must NOT reset the status. *)
let test_pure_call_preserves () =
  let r =
    analyze
      {|
extern strcmp pure
func main() {
 var flag
 var buf[4]
entry:
  store flag, 1
  jmp loop
loop:
  r0 = load flag
  br eq r0, 1, body, exit
body:
  r1 = addr buf[0]
  r2 = call strcmp(r1, r1)
  jmp loop
exit:
  ret 0
}
|}
  in
  check "branch still checked" true (List.mem 3 r.Corr.Analysis.checked);
  check "pure call does not reset" false (has_action r (3, true) 3 Corr.Action.Set_unknown);
  check "self-correlation persists" true (has_action r (3, true) 3 Corr.Action.Set_taken)

(* Writing through a may-alias pointer kills every cell of the target. *)
let test_pointer_store_kill () =
  let r =
    analyze
      {|
func main() {
 var tab[4]
entry:
  store tab[0], 1
  jmp loop
loop:
  r0 = load tab[0]
  br eq r0, 1, body, exit
body:
  r1 = input 0
  r2 = addr tab[0]
  r3 = add r2, r1
  store [r3], 9
  jmp loop
exit:
  ret 0
}
|}
  in
  (* loop branch iid: entry 0,1; loop 2,3 *)
  check "indexed pointer store kills the fact" true
    (has_action r (3, true) 3 Corr.Action.Set_unknown)

(* Multi-aliased loads are excluded from checking (paper §5.1). *)
let test_multi_alias_load_excluded () =
  let r =
    analyze
      {|
func main() {
 var tab[4]
entry:
  r0 = input 0
  r1 = load tab[r0]
  br eq r1, 1, a, b
a:
  ret 1
b:
  ret 0
}
|}
  in
  check_int "no depends through variable index" 0 (List.length r.Corr.Analysis.depends);
  check_int "nothing checked" 0 (List.length r.Corr.Analysis.checked)

(* Branches on registers that never touch memory are not checked. *)
let test_register_branch_unchecked () =
  let r =
    analyze
      {|
func main() {
entry:
  r0 = input 0
  br lt r0, 5, a, b
a:
  ret 1
b:
  ret 0
}
|}
  in
  check_int "input-driven branch has no depend" 0 (List.length r.Corr.Analysis.depends)

(* Affine tracing through multiplication and shifts (beyond the paper's
   add/sub example in Figure 3.c). *)
let test_mul_shift_affine () =
  let r =
    analyze
      {|
func main() {
 var y
entry:
  r0 = input 0
  store y, r0
  br lt r0, 4, small, big
small:
  r1 = load y
  r2 = mul r1, 4
  r3 = shl r2, 1
  br lt r3, 100, hit, miss
big:
  ret 0
hit:
  ret 1
miss:
  ret 2
}
|}
  in
  (* y < 4 pins y*8 < 32 < 100: the dependent branch must be taken.
     iids: entry: 0,1,2(br); small: 3(load),4(mul),5(shl),6(br) *)
  check "mul/shl chain pins dependent branch" true
    (has_action r (2, true) 6 Corr.Action.Set_taken);
  check "scaled branch is checked" true (List.mem 6 r.Corr.Analysis.checked)

(* Trace through swapped operands: constant on the left. *)
let test_swapped_compare () =
  let r =
    analyze
      {|
func main() {
 var y
entry:
  r0 = input 0
  store y, r0
  jmp loop
loop:
  r1 = load y
  r2 = 8
  br lt r2, r1, big, small
big:
  jmp loop2
small:
  jmp loop2
loop2:
  r3 = load y
  br gt r3, 8, big2, small2
big2:
  ret 1
small2:
  ret 0
}
|}
  in
  (* 8 < y  ≡  y > 8: both branches depend on y with the same predicate:
     iids: entry 0,1,2; loop: 3(load),4(const),5(br); big 6; small 7;
     loop2: 8(load),9(br) *)
  check "swapped compare correlates with canonical form" true
    (has_action r (5, true) 9 Corr.Action.Set_taken);
  check "and not-taken direction too" true
    (has_action r (5, false) 9 Corr.Action.Set_not_taken)

(* Stale-register hazard: the target branch tests a register loaded BEFORE
   the store that establishes the fact; no action may be emitted that
   would mispredict it (this is the soundness condition (i)/(ii)). *)
let test_stale_register_no_false_pin () =
  let r =
    analyze
      {|
func main() {
 var c
entry:
  r0 = input 0
  store c, r0
  r1 = load c
  br lt r0, 100, mid, fin
mid:
  store c, 5
  br eq r1, 5, yes, no
yes:
  ret 1
no:
  ret 2
fin:
  ret 0
}
|}
  in
  (* iids: entry: 0 input,1 store,2 load,3 br; mid: 4 store,5 br *)
  (* The store c,5 must not pin br@5 to taken: r1 holds the OLD value. *)
  check "no unsound SET on stale register" false
    (has_action r (3, true) 5 Corr.Action.Set_taken)

(* Dispatch chains: c == 2 taken pins c == 3 not-taken (Eq gives a point
   range; the point misses the other literal). *)
let test_dispatch_chain () =
  let r =
    analyze
      {|
func main() {
 var c
entry:
  r0 = input 0
  store c, r0
  jmp d1
d1:
  r1 = load c
  br eq r1, 2, h2, d2
d2:
  r2 = load c
  br eq r2, 3, h3, fin
h2:
  jmp d2
h3:
  ret 3
fin:
  ret 0
}
|}
  in
  (* iids: entry 0,1,2; d1: 3,4; d2: 5,6 *)
  check "c==2 taken forces c==3 not-taken" true
    (has_action r (4, true) 6 Corr.Action.Set_not_taken);
  (* c==2 NOT taken says c != 2: neither direction of c==3 is forced *)
  check "c!=2 forces nothing on c==3" false (List.mem_assoc 6 (actions_on r (4, false)));
  (* but c != 2 pins c==2 itself not-taken for re-execution *)
  check "self Except pin" true (has_action r (4, false) 4 Corr.Action.Set_not_taken)

(* Option toggles, checked at the unit level on the Figure 4 program. *)
let test_options_toggle () =
  let p = Mir.Parser.program_of_string figure4 in
  let with_opts options =
    List.assoc "main" (Corr.Analysis.analyze_program ~options p)
  in
  let base = Corr.Analysis.default_options in
  let no_ll = with_opts { base with Corr.Analysis.load_load = false } in
  check "no load-load kills subsumption pins" false
    (List.exists
       (fun (t, a) -> t = br5 && Corr.Action.equal a Corr.Action.Set_taken)
       (actions_on no_ll (br1, true)));
  let no_affine = with_opts { base with Corr.Analysis.affine_tracing = false } in
  (* figure4's depends are all offset-0 loads: unaffected *)
  check_int "identity chains survive no-affine" 3
    (List.length no_affine.Corr.Analysis.depends)

(* A region fact must be overridden by a later kill in the same region. *)
let test_region_fact_then_kill () =
  let r =
    analyze
      {|
extern syscall writes_all
func main() {
 var flag
entry:
  r0 = input 0
  br lt r0, 0, a, b
a:
  store flag, 1
  call syscall(0)
  jmp check
b:
  jmp check
check:
  r1 = load flag
  br eq r1, 1, yes, no
yes:
  ret 1
no:
  ret 0
}
|}
  in
  (* iids: entry 0,1; a: 2(store),3(call),4(jmp); b: 5(jmp);
     check: 6(load),7(br) *)
  check "kill after const store wins" false
    (has_action r (1, true) 7 Corr.Action.Set_taken);
  check "and resets instead" true (has_action r (1, true) 7 Corr.Action.Set_unknown)

(* The reverse order: kill then const store ends with the fact. *)
let test_region_kill_then_fact () =
  let r =
    analyze
      {|
extern syscall writes_all
func main() {
 var flag
entry:
  r0 = input 0
  br lt r0, 0, a, b
a:
  call syscall(0)
  store flag, 1
  jmp check
b:
  jmp check
check:
  r1 = load flag
  br eq r1, 1, yes, no
yes:
  ret 1
no:
  ret 0
}
|}
  in
  check "const store after kill pins" true (has_action r (1, true) 7 Corr.Action.Set_taken)

let () =
  Alcotest.run "correlation"
    [
      ( "figure4",
        [
          Alcotest.test_case "depends" `Quick test_figure4_depends;
          Alcotest.test_case "subsumption" `Quick test_figure4_subsumption;
          Alcotest.test_case "redefinition" `Quick test_figure4_redefinition;
        ] );
      ( "facts",
        [
          Alcotest.test_case "store-load with affine" `Quick test_store_load_affine;
          Alcotest.test_case "const store region fact" `Quick test_const_store_region_fact;
          Alcotest.test_case "call kill" `Quick test_call_kill;
          Alcotest.test_case "pure call preserves" `Quick test_pure_call_preserves;
          Alcotest.test_case "pointer store kill" `Quick test_pointer_store_kill;
        ] );
      ( "exclusions",
        [
          Alcotest.test_case "multi-alias load" `Quick test_multi_alias_load_excluded;
          Alcotest.test_case "register branch" `Quick test_register_branch_unchecked;
          Alcotest.test_case "swapped compare" `Quick test_swapped_compare;
          Alcotest.test_case "mul/shl affine" `Quick test_mul_shift_affine;
          Alcotest.test_case "dispatch chain" `Quick test_dispatch_chain;
          Alcotest.test_case "option toggles" `Quick test_options_toggle;
          Alcotest.test_case "region fact then kill" `Quick test_region_fact_then_kill;
          Alcotest.test_case "region kill then fact" `Quick test_region_kill_then_fact;
          Alcotest.test_case "stale register" `Quick test_stale_register_no_false_pin;
        ] );
    ]
