(* End-to-end smoke test of the artifact cache (the @cache-smoke alias,
   wired into runtest).  One executable, two roles:

   - driver (no --phase): makes a fresh cache directory and re-executes
     itself three times — a cold run that must populate the cache, a
     warm run that must perform zero MiniC compiles and zero analyses,
     and, after flipping one byte in a published artifact, a corrupt run
     that must detect the damage, miss, and rebuild.  All three phases
     must produce byte-identical Fig. 7/Fig. 8 reports (they also use
     different --jobs, so determinism across domain counts rides along).
   - phase child (--phase cold|warm|corrupt): runs the experiments
     against the given cache dir, writes the rendered reports to --out,
     and asserts the phase's expected compile/build/store counters. *)

module A = Ipds_artifact.Artifact
module Obj = Ipds_artifact.Object_file
module Store = Ipds_artifact.Store
module W = Ipds_workloads.Workloads
module Core = Ipds_core

let phase = ref ""
let cache_dir = ref ""
let out = ref ""
let jobs = ref 2

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("cache-smoke: " ^ s);
      exit 1)
    fmt

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------- phase child ---------- *)

let results ~jobs =
  let summary =
    Ipds_harness.Attack_experiment.run_all ~attacks:4 ~seed:11 ~jobs ()
  in
  let census = Ipds_harness.Size_census.run_all () in
  Ipds_harness.Attack_experiment.render summary
  ^ "\n"
  ^ Ipds_harness.Size_census.render census

let run_phase () =
  Store.set_ambient_dir (Some !cache_dir);
  write_file !out (results ~jobs:!jobs);
  let c = Store.counters () in
  let n = List.length W.all in
  let compiles = W.compile_count () in
  let builds = Core.System.build_count () in
  (match !phase with
  | "cold" ->
      if c.Store.hits <> 0 then fail "cold run hit the cache %d times" c.Store.hits;
      if c.Store.misses <> n then
        fail "cold run: %d misses, want %d" c.Store.misses n;
      if c.Store.bytes_written = 0 then fail "cold run published nothing";
      if compiles <> n then fail "cold run: %d compiles, want %d" compiles n
  | "warm" ->
      (* the acceptance criterion: a warm process does no front-end or
         analysis work at all *)
      if compiles <> 0 then fail "warm run ran %d MiniC compiles" compiles;
      if builds <> 0 then fail "warm run ran %d analyses" builds;
      if c.Store.misses <> 0 then fail "warm run missed %d times" c.Store.misses;
      if c.Store.hits <> n then fail "warm run: %d hits, want %d" c.Store.hits n
  | "corrupt" ->
      (* exactly one artifact was damaged: it must be detected, counted,
         and rebuilt; everything else still hits *)
      if c.Store.corrupt <> 1 then
        fail "corrupt run: corrupt=%d, want 1" c.Store.corrupt;
      if c.Store.misses <> 1 then
        fail "corrupt run: %d misses, want 1" c.Store.misses;
      if c.Store.hits <> n - 1 then
        fail "corrupt run: %d hits, want %d" c.Store.hits (n - 1);
      if compiles <> 1 then fail "corrupt run: %d compiles, want 1" compiles;
      if builds <> 1 then fail "corrupt run: %d analyses, want 1" builds
  | p -> fail "unknown phase %S" p);
  exit 0

(* ---------- driver ---------- *)

let published_artifacts dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun sub ->
         let subdir = Filename.concat dir sub in
         if Sys.is_directory subdir then
           Sys.readdir subdir |> Array.to_list
           |> List.filter_map (fun f ->
                  if Filename.check_suffix f ".ipds" then
                    Some (Filename.concat subdir f)
                  else None)
         else [])
  |> List.sort compare

let driver () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-cache-smoke-%d" (Unix.getpid ()))
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
  @@ fun () ->
  let out p = Filename.concat dir ("result-" ^ p ^ ".txt") in
  let run p jobs =
    let t0 = Unix.gettimeofday () in
    let cmd =
      Printf.sprintf "%s --phase %s --cache-dir %s --out %s --jobs %d"
        (Filename.quote Sys.executable_name)
        p (Filename.quote dir)
        (Filename.quote (out p))
        jobs
    in
    (match Sys.command cmd with
    | 0 -> ()
    | rc -> fail "phase %s exited with %d" p rc);
    Unix.gettimeofday () -. t0
  in
  let cold_s = run "cold" 2 in
  let warm_s = run "warm" 1 in
  (match published_artifacts dir with
  | [] -> fail "cold run left no artifacts in %s" dir
  | victim :: _ ->
      (* flip one byte in the middle of a published artifact *)
      let buf = Bytes.of_string (read_file victim) in
      let i = Bytes.length buf / 2 in
      Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0x20));
      write_file victim (Bytes.to_string buf);
      let ins = A.inspect_file victim in
      if ins.A.file.Obj.digest_ok then
        fail "inspect missed the flipped byte in %s" victim;
      if List.for_all (fun s -> s.Obj.s_crc_ok) ins.A.file.Obj.sections then
        fail "inspect reports no bad section CRC in %s" victim);
  let corrupt_s = run "corrupt" 3 in
  let cold = read_file (out "cold") in
  if cold = "" then fail "cold run produced an empty report";
  if cold <> read_file (out "warm") then
    fail "warm results differ from cold (artifact load is not equivalent)";
  if cold <> read_file (out "corrupt") then
    fail "post-corruption results differ from cold (rebuild is not equivalent)";
  Printf.printf
    "cache-smoke OK: identical figures cold/warm/corrupt (cold %.2fs, warm \
     %.2fs, corrupt-rebuild %.2fs)\n"
    cold_s warm_s corrupt_s

let () =
  let spec =
    [
      ("--phase", Arg.Set_string phase, "PHASE cold|warm|corrupt (internal)");
      ("--cache-dir", Arg.Set_string cache_dir, "DIR artifact cache directory");
      ("--out", Arg.Set_string out, "FILE where the phase writes its report");
      ("--jobs", Arg.Set_int jobs, "N worker domains");
    ]
  in
  Arg.parse spec (fun a -> fail "unexpected argument %S" a) "cache_smoke";
  if !phase = "" then driver () else run_phase ()
