(* Tests for the N-gram syscall-trace baseline detector. *)

module B = Ipds_baseline
module M = Ipds_machine
module W = Ipds_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_ngram_basics () =
  let model = B.Ngram.train ~n:2 [ [ "a"; "b"; "c" ]; [ "b"; "a" ] ] in
  (* windows: ab, bc, c(tail), ba, plus the short-trace rule *)
  check "seen window passes" true (B.Ngram.anomalies model [ "a"; "b" ] = 0);
  check "unseen window flags" true (B.Ngram.flags model [ "c"; "a" ]);
  check "subtrace of training passes" true
    (not (B.Ngram.flags model [ "a"; "b"; "c" ]));
  check_int "n recorded" 2 (B.Ngram.n model);
  check "db non-empty" true (B.Ngram.size model > 0)

let test_ngram_window_semantics () =
  let model = B.Ngram.train ~n:3 [ [ "x"; "y"; "z"; "w" ] ] in
  (* trace [y;z;w] appears as a window of training *)
  check "interior window known" true (not (B.Ngram.flags model [ "y"; "z"; "w" ]));
  (* reordering flags *)
  check "reordered flags" true (B.Ngram.flags model [ "z"; "y"; "x" ]);
  (* one anomaly counted per bad window *)
  check "anomaly count" true (B.Ngram.anomalies model [ "z"; "y"; "x"; "q" ] >= 2)

let test_ngram_rejects_bad_n () =
  check "n=0 rejected" true
    (try
       ignore (B.Ngram.train ~n:0 []);
       false
     with Invalid_argument _ -> true)

let test_syscall_trace_collects () =
  let p = W.program (W.find "telnetd") in
  let trace =
    B.Syscall_trace.collect p
      ~config:
        {
          M.Interp.default_config with
          inputs = M.Input_script.random ~seed:5 ();
        }
  in
  check "trace ends with exit" true
    (match List.rev trace with
    | "exit" :: _ -> true
    | _ -> false);
  check "trace has library calls" true (List.length trace > 3);
  check "only extern names" true
    (List.for_all
       (fun s ->
         List.mem_assoc s Ipds_mir.Extern.default_table
         || List.mem s [ "exit"; "halt"; "fault"; "steps" ])
       trace)

let test_syscall_trace_deterministic () =
  let p = W.program (W.find "sshd") in
  let collect () =
    B.Syscall_trace.collect p
      ~config:
        {
          M.Interp.default_config with
          inputs = M.Input_script.random ~seed:11 ();
        }
  in
  check "deterministic" true (collect () = collect ())

let test_model_accepts_benign () =
  (* A model trained on enough runs should accept most held-out runs. *)
  let p = W.program (W.find "crond") in
  let trace seed =
    B.Syscall_trace.collect p
      ~config:
        { M.Interp.default_config with inputs = M.Input_script.random ~seed () }
  in
  let model = B.Ngram.train ~n:3 (List.init 60 (fun i -> trace (100 + i))) in
  let fps =
    List.init 30 (fun i -> trace (5000 + i))
    |> List.filter (B.Ngram.flags model)
    |> List.length
  in
  check "few false positives with enough training" true (fps <= 3)

let test_experiment_row () =
  let row =
    Ipds_harness.Baseline_experiment.run ~train_runs:20 ~holdout_runs:20
      ~attacks:20 (W.find "httpd")
  in
  check_int "attacks injected" 20 row.Ipds_harness.Baseline_experiment.attacks;
  check "fp rate in range" true
    (row.Ipds_harness.Baseline_experiment.ngram_fp >= 0.
    && row.Ipds_harness.Baseline_experiment.ngram_fp <= 1.);
  check "ipds detects at least as implied by cf" true
    (row.Ipds_harness.Baseline_experiment.ipds_detected
    <= row.Ipds_harness.Baseline_experiment.cf_changed)

let () =
  Alcotest.run "baseline"
    [
      ( "ngram",
        [
          Alcotest.test_case "basics" `Quick test_ngram_basics;
          Alcotest.test_case "window semantics" `Quick test_ngram_window_semantics;
          Alcotest.test_case "bad n" `Quick test_ngram_rejects_bad_n;
        ] );
      ( "traces",
        [
          Alcotest.test_case "collects" `Quick test_syscall_trace_collects;
          Alcotest.test_case "deterministic" `Quick test_syscall_trace_deterministic;
          Alcotest.test_case "accepts benign" `Quick test_model_accepts_benign;
        ] );
      ( "experiment",
        [ Alcotest.test_case "row sanity" `Slow test_experiment_row ] );
    ]
