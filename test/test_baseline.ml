(* Tests for the N-gram syscall-trace baseline detector. *)

module B = Ipds_baseline
module M = Ipds_machine
module W = Ipds_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_ngram_basics () =
  let model = B.Ngram.train ~n:2 [ [ "a"; "b"; "c" ]; [ "b"; "a" ] ] in
  (* windows: ab, bc, c(tail), ba, plus the short-trace rule *)
  check "seen window passes" true (B.Ngram.anomalies model [ "a"; "b" ] = 0);
  check "unseen window flags" true (B.Ngram.flags model [ "c"; "a" ]);
  check "subtrace of training passes" true
    (not (B.Ngram.flags model [ "a"; "b"; "c" ]));
  check_int "n recorded" 2 (B.Ngram.n model);
  check "db non-empty" true (B.Ngram.size model > 0)

let test_ngram_window_semantics () =
  let model = B.Ngram.train ~n:3 [ [ "x"; "y"; "z"; "w" ] ] in
  (* trace [y;z;w] appears as a window of training *)
  check "interior window known" true (not (B.Ngram.flags model [ "y"; "z"; "w" ]));
  (* reordering flags *)
  check "reordered flags" true (B.Ngram.flags model [ "z"; "y"; "x" ]);
  (* one anomaly counted per bad window *)
  check "anomaly count" true (B.Ngram.anomalies model [ "z"; "y"; "x"; "q" ] >= 2)

let test_ngram_rejects_bad_n () =
  check "n=0 rejected" true
    (try
       ignore (B.Ngram.train ~n:0 []);
       false
     with Invalid_argument _ -> true)

let test_syscall_trace_collects () =
  let p = W.program (W.find "telnetd") in
  let trace =
    B.Syscall_trace.collect p
      ~config:
        {
          M.Interp.default_config with
          inputs = M.Input_script.random ~seed:5 ();
        }
  in
  check "trace ends with exit" true
    (match List.rev trace with
    | "exit" :: _ -> true
    | _ -> false);
  check "trace has library calls" true (List.length trace > 3);
  check "only extern names" true
    (List.for_all
       (fun s ->
         List.mem_assoc s Ipds_mir.Extern.default_table
         || List.mem s [ "exit"; "halt"; "fault"; "steps" ])
       trace)

let test_syscall_trace_deterministic () =
  let p = W.program (W.find "sshd") in
  let collect () =
    B.Syscall_trace.collect p
      ~config:
        {
          M.Interp.default_config with
          inputs = M.Input_script.random ~seed:11 ();
        }
  in
  check "deterministic" true (collect () = collect ())

let test_model_accepts_benign () =
  (* A model trained on enough runs should accept most held-out runs. *)
  let p = W.program (W.find "crond") in
  let trace seed =
    B.Syscall_trace.collect p
      ~config:
        { M.Interp.default_config with inputs = M.Input_script.random ~seed () }
  in
  let model = B.Ngram.train ~n:3 (List.init 60 (fun i -> trace (100 + i))) in
  let fps =
    List.init 30 (fun i -> trace (5000 + i))
    |> List.filter (B.Ngram.flags model)
    |> List.length
  in
  check "few false positives with enough training" true (fps <= 3)

(* ---------- DME: layout-diversified replicas ---------- *)

let dme_config ~input_seed =
  {
    M.Interp.default_config with
    inputs = M.Input_script.random ~seed:input_seed ();
    record_trace = false;
  }

let test_dme_decorrelate_shape () =
  let p = W.program (W.find "telnetd") in
  let v = B.Dme.decorrelate p in
  check "variant validates" true (Ipds_mir.Validate.check v = []);
  check "involutive" true (B.Dme.decorrelate v = p);
  (* main has several locals, so at least one address must move *)
  let main p = Ipds_mir.Program.find_func_exn p "main" in
  let moved =
    List.exists
      (fun (var : Ipds_mir.Var.t) ->
        M.Data_layout.local_offset (main p) var 0
        <> M.Data_layout.local_offset (main v) var 0)
      (main p).Ipds_mir.Func.locals
  in
  check "some local moved" true moved

let test_dme_benign_pairs_agree () =
  (* every workload, several input scripts: the variant pair must be
     behaviourally indistinguishable — zero DME false positives *)
  List.iter
    (fun w ->
      let p = W.program w in
      let v = B.Dme.decorrelate p in
      for seed = 0 to 3 do
        let a = B.Dme.run ~config:(dme_config ~input_seed:(700 + seed)) p in
        let b = B.Dme.run ~config:(dme_config ~input_seed:(700 + seed)) v in
        check
          (w.W.name ^ " benign pair agrees (seed " ^ string_of_int seed ^ ")")
          true
          (not (B.Dme.diverged (B.Dme.canonical a) (B.Dme.canonical b)))
      done)
    W.all

let test_dme_divergence_is_canonical_difference () =
  (* the detector fires exactly when the canonical projections differ:
     tampered variant pairs from a real campaign, checked both ways *)
  let w = W.find "wu-ftpd" in
  let p = W.program w in
  let v = B.Dme.decorrelate p in
  let rng = Random.State.make [| 41 |] in
  let fired = ref 0 and quiet = ref 0 in
  for _ = 1 to 40 do
    let input_seed = Random.State.bits rng land 0xffffff in
    let benign = M.Interp.run p (dme_config ~input_seed) in
    if benign.M.Interp.steps > 2 then begin
      let at_step = 1 + Random.State.int rng (benign.M.Interp.steps - 1) in
      let value = Random.State.int rng 256 in
      let plan site = { M.Tamper.at_step; site; seed = Random.State.bits rng land 0xffffff } in
      let attacked =
        M.Interp.run p
          {
            (dme_config ~input_seed) with
            tamper = Some (plan (M.Tamper.Mem_write { model = M.Tamper.Arbitrary_write; value }));
          }
      in
      match attacked.M.Interp.injection with
      | Some (M.Tamper.Tampered_cell cell) ->
          let replica =
            M.Interp.run v
              {
                (dme_config ~input_seed) with
                tamper = Some (plan (M.Tamper.Mem_write_at { addr = cell.addr; value }));
              }
          in
          let ca = B.Dme.canonical attacked and cb = B.Dme.canonical replica in
          check "diverged iff canonical differ" true
            (B.Dme.diverged ca cb = (ca <> cb));
          if B.Dme.diverged ca cb then incr fired else incr quiet
      | _ -> ()
    end
  done;
  (* the campaign must exercise both sides of the detector *)
  check "some attacks diverge" true (!fired > 0);
  check "some attacks stay hidden" true (!quiet > 0)

let test_dme_physical_replay_matches_logical () =
  (* replaying a tamper at its own recorded address in the SAME layout
     must reproduce the original injection exactly *)
  let p = W.program (W.find "httpd") in
  let run tamper =
    M.Interp.run p { (dme_config ~input_seed:9) with tamper = Some tamper }
  in
  let original =
    run
      {
        M.Tamper.at_step = 80;
        site = M.Tamper.Mem_write { model = M.Tamper.Arbitrary_write; value = 5 };
        seed = 123;
      }
  in
  match original.M.Interp.injection with
  | Some (M.Tamper.Tampered_cell cell) ->
      let replay =
        run
          {
            M.Tamper.at_step = 80;
            site = M.Tamper.Mem_write_at { addr = cell.addr; value = 5 };
            seed = 123;
          }
      in
      (match replay.M.Interp.injection with
      | Some (M.Tamper.Tampered_cell cell') ->
          check "same cell" true
            (cell'.addr = cell.addr
            && cell'.var.Ipds_mir.Var.id = cell.var.Ipds_mir.Var.id
            && cell'.index = cell.index);
          check "same behaviour" true
            (not (M.Interp.control_flow_changed original replay)
            && original.M.Interp.outputs = replay.M.Interp.outputs)
      | _ -> Alcotest.fail "physical replay did not inject")
  | _ -> Alcotest.fail "original attack did not inject"

let test_dme_experiment_row () =
  let row = Ipds_harness.Dme_experiment.run ~attacks:20 ~holdout:8 (W.find "sshd") in
  let open Ipds_harness.Dme_experiment in
  check_int "attacks injected" 20 row.attacks;
  check_int "zero benign diffs" 0 row.benign_diffs;
  check "overhead about 2x" true (row.overhead > 1.9 && row.overhead < 2.1);
  check "coverage within injected" true
    (row.dme_detected >= 0 && row.dme_detected <= row.attacks)

let test_experiment_row () =
  let row =
    Ipds_harness.Baseline_experiment.run ~train_runs:20 ~holdout_runs:20
      ~attacks:20 (W.find "httpd")
  in
  check_int "attacks injected" 20 row.Ipds_harness.Baseline_experiment.attacks;
  check "fp rate in range" true
    (row.Ipds_harness.Baseline_experiment.ngram_fp >= 0.
    && row.Ipds_harness.Baseline_experiment.ngram_fp <= 1.);
  check "ipds detects at least as implied by cf" true
    (row.Ipds_harness.Baseline_experiment.ipds_detected
    <= row.Ipds_harness.Baseline_experiment.cf_changed)

let () =
  Alcotest.run "baseline"
    [
      ( "ngram",
        [
          Alcotest.test_case "basics" `Quick test_ngram_basics;
          Alcotest.test_case "window semantics" `Quick test_ngram_window_semantics;
          Alcotest.test_case "bad n" `Quick test_ngram_rejects_bad_n;
        ] );
      ( "traces",
        [
          Alcotest.test_case "collects" `Quick test_syscall_trace_collects;
          Alcotest.test_case "deterministic" `Quick test_syscall_trace_deterministic;
          Alcotest.test_case "accepts benign" `Quick test_model_accepts_benign;
        ] );
      ( "dme",
        [
          Alcotest.test_case "decorrelate shape" `Quick test_dme_decorrelate_shape;
          Alcotest.test_case "benign pairs agree" `Quick test_dme_benign_pairs_agree;
          Alcotest.test_case "divergence is canonical difference" `Quick
            test_dme_divergence_is_canonical_difference;
          Alcotest.test_case "physical replay matches logical" `Quick
            test_dme_physical_replay_matches_logical;
          Alcotest.test_case "experiment row" `Slow test_dme_experiment_row;
        ] );
      ( "experiment",
        [ Alcotest.test_case "row sanity" `Slow test_experiment_row ] );
    ]
