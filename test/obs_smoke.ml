(* Observability smoke test (the @obs-smoke alias, wired into runtest):
   run a small attack campaign with the event sink on, then validate

     - the JSONL event stream: every line parses, the first line is the
       manifest, seq is dense from 0, and every kind is one the
       instrumented subsystems are known to emit;
     - the metrics object: the expected stable keys exist with the
       expected JSON shapes, nothing unstable leaked in, and the
       attack.* counters reconcile exactly with the campaign's totals;
     - the runtime section carries the unstable metrics instead. *)

module H = Ipds_harness
module J = H.Json
module Obs = Ipds_obs

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "OBS-SMOKE FAIL: %s\n%!" msg)
    fmt

let expect cond fmt =
  Printf.ksprintf (fun msg -> if not cond then fail "%s" msg) fmt

let known_event_kinds =
  [
    "manifest"; "interp.run"; "interp.tamper"; "attack.campaign";
    "store.corrupt"; "store.publish"; "bench.phase_start"; "bench.phase_end";
  ]

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let check_events path (summary : H.Attack_experiment.summary) =
  let lines = read_lines path in
  expect (lines <> []) "event stream is empty";
  let docs =
    List.mapi
      (fun i line ->
        match J.of_string line with
        | doc -> Some doc
        | exception J.Parse_error msg ->
            fail "event line %d does not parse: %s" i msg;
            None)
      lines
    |> List.filter_map Fun.id
  in
  let kind doc =
    match J.member "kind" doc with Some (J.String s) -> s | _ -> "?"
  in
  (match docs with
  | first :: _ ->
      expect (kind first = "manifest") "first event is %S, want manifest" (kind first);
      expect (J.member "manifest" first <> None) "manifest line lacks payload"
  | [] -> ());
  List.iteri
    (fun i doc ->
      expect
        (J.member "seq" doc = Some (J.Int i))
        "event %d: seq not dense from 0" i;
      expect (J.member "ts" doc <> None) "event %d lacks ts" i;
      let k = kind doc in
      expect (List.mem k known_event_kinds) "unknown event kind %S" k)
    docs;
  (* one campaign event per workload, agreeing with the summary rows *)
  let campaigns = List.filter (fun d -> kind d = "attack.campaign") docs in
  expect
    (List.length campaigns = List.length summary.H.Attack_experiment.rows)
    "%d campaign events for %d rows" (List.length campaigns)
    (List.length summary.H.Attack_experiment.rows);
  List.iter
    (fun (row : H.Attack_experiment.row) ->
      let matches doc =
        J.member "workload" doc = Some (J.String row.workload)
        && J.member "attacks" doc = Some (J.Int row.attacks)
        && J.member "detected" doc = Some (J.Int row.detected)
      in
      expect
        (List.exists matches campaigns)
        "no campaign event matching row %s" row.workload)
    summary.H.Attack_experiment.rows;
  expect
    (List.exists (fun d -> kind d = "interp.run") docs)
    "no interp.run events"

(* (name, shape) pairs every instrumented run of this campaign must
   produce.  New metrics may appear freely; these may not disappear. *)
let expected_metrics =
  [
    ("attack.attempts", `Counter);
    ("attack.injected", `Counter);
    ("attack.cf_changed", `Counter);
    ("attack.detected", `Counter);
    ("checker.branches", `Counter);
    ("checker.calls", `Counter);
    ("checker.returns", `Counter);
    ("checker.checked", `Counter);
    ("checker.verdict_ok", `Counter);
    ("checker.verdict_alarm", `Counter);
    ("checker.bat_updates", `Counter);
    ("interp.runs", `Counter);
    ("interp.steps", `Counter);
    ("interp.branches", `Counter);
    ("interp.injections", `Counter);
    ("interp.max_run_steps", `Gauge);
    ("interp.run_steps", `Histogram);
    ("memo.hits", `Counter);
    ("memo.computed", `Counter);
    ("system.builds", `Counter);
    ("workloads.compiles", `Counter);
  ]

let shape_ok = function
  | `Counter, J.Int _ -> true
  | `Gauge, J.Obj _ as v -> (
      match v with
      | _, doc -> J.member "type" doc = Some (J.String "gauge"))
  | `Histogram, (J.Obj _ as doc) ->
      J.member "type" doc = Some (J.String "histogram")
      && J.member "buckets" doc <> None
      && J.member "count" doc <> None
      && J.member "sum" doc <> None
  | _ -> false

let check_metrics (summary : H.Attack_experiment.summary) =
  let metrics = H.Obs_report.metrics_json () in
  List.iter
    (fun (name, shape) ->
      match J.member name metrics with
      | None -> fail "metrics object lacks %s" name
      | Some v ->
          expect (shape_ok (shape, v)) "metric %s has the wrong shape" name)
    expected_metrics;
  (* stable object must not contain unstable metrics *)
  List.iter
    (fun name ->
      expect (J.member name metrics = None)
        "unstable metric %s leaked into the stable object" name)
    [ "pool.maps"; "pool.tasks.worker"; "pool.tasks.caller"; "pool.jobs";
      "memo.waits" ];
  (* exact reconciliation with the campaign report *)
  let total f =
    List.fold_left (fun acc r -> acc + f r) 0 summary.H.Attack_experiment.rows
  in
  let counter name =
    match J.member name metrics with Some (J.Int n) -> n | _ -> -1
  in
  let recon name f =
    let m = counter name and t = total f in
    expect (m = t) "%s = %d but report total is %d" name m t
  in
  recon "attack.injected" (fun (r : H.Attack_experiment.row) -> r.attacks);
  recon "attack.cf_changed" (fun r -> r.cf_changed);
  recon "attack.detected" (fun r -> r.detected);
  (* the runtime section exists and holds the pool metrics instead *)
  let runtime = H.Obs_report.runtime_json () in
  (match J.member "metrics" runtime with
  | Some rm ->
      expect (J.member "pool.maps" rm <> None)
        "runtime metrics lack pool.maps (jobs > 1 ran a pool)"
  | None -> fail "runtime section lacks metrics");
  expect (J.member "spans" runtime <> None) "runtime section lacks spans"

let () =
  let events_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-obs-smoke-%d.jsonl" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove events_path with Sys_error _ -> ())
    (fun () ->
      Obs.Manifest.set_string "tool" "obs_smoke";
      Obs.Manifest.set_int "seed" 11;
      Obs.Manifest.set_int "jobs" 2;
      Obs.Events.set_path (Some events_path);
      let summary = H.Attack_experiment.run_all ~attacks:2 ~seed:11 ~jobs:2 () in
      Obs.Events.close ();
      check_events events_path summary;
      check_metrics summary;
      if !failures > 0 then begin
        Printf.eprintf "obs smoke: %d failure(s)\n%!" !failures;
        exit 1
      end;
      print_endline "obs smoke OK: event stream valid, metrics reconcile")
