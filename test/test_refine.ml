(* Tests for the feasible-path refinement loop (the precision flywheel)
   and the feasibility-pruned dataflow core under it:

   - the pruned-view dataflow solution is always at least as tight as
     the unpruned one (maximum fixed point over a subgraph);
   - a direction the refinement prunes is never committed by a benign
     run — the soundness obligation of the producer;
   - precision off is byte-identical to the base analysis on all ten
     workloads, and the degenerate full view equals the raw-CFG walk;
   - options fingerprints are pinned, so precision off reuses historical
     cache keys and precision on misses cleanly;
   - zero false positives with precision on (the paper's invariant must
     survive the pruning);
   - campaigns under precision on are deterministic across job counts. *)

module Mir = Ipds_mir
module Cfg = Ipds_cfg.Cfg
module Feas = Ipds_cfg.Feasibility
module Rd = Ipds_dataflow.Reaching_defs
module Live = Ipds_dataflow.Liveness
module An = Ipds_correlation.Analysis
module Ctx = Ipds_correlation.Context
module Refine = Ipds_correlation.Refine
module Core = Ipds_core
module M = Ipds_machine
module W = Ipds_workloads.Workloads
module H = Ipds_harness

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let on_options = { An.default_options with An.precision = An.precision_on }
let result_str r = Format.asprintf "%a" An.pp_result r

let workload name =
  List.find (fun w -> String.equal w.W.name name) W.all

(* ---------- pruned solution <= unpruned solution ---------- *)

(* Deleting edges can only shrink the set of paths the solver joins
   over, so every pruned-view fact set must be a subset of the full-view
   one — for any prune set, sound or not (it is a property of the
   framework, not of the producer).  The feasibility layer's own
   invariants ride along. *)
let prop_pruned_tighter =
  QCheck2.Test.make ~name:"pruned dataflow <= unpruned on random MiniC"
    ~count:150 Gen.minic_program (fun p ->
      List.for_all
        (fun (f : Mir.Func.t) ->
          let pw = Ctx.prepare p in
          let _, stats = Refine.analyze ~options:on_options pw f in
          let cfg = Cfg.make f in
          let full = Feas.full cfg in
          let feas = Feas.prune full stats.Refine.pruned in
          Feas.invariant_subview feas
          && Feas.invariant_entry_preserved feas
          && Feas.invariant_monotone ~earlier:full ~later:feas
          &&
          let rd_full = Rd.compute cfg in
          let rd_pruned = Rd.compute ~feas cfg in
          let lv_full = Live.compute cfg in
          let lv_pruned = Live.compute ~feas cfg in
          let ok = ref true in
          for iid = 0 to f.Mir.Func.instr_count - 1 do
            for r = 0 to f.Mir.Func.reg_count - 1 do
              let reg = Mir.Reg.make r in
              if
                not
                  (Rd.Def_set.subset
                     (Rd.before rd_pruned ~iid reg)
                     (Rd.before rd_full ~iid reg))
              then ok := false;
              if Live.live_before lv_pruned ~iid reg
                 && not (Live.live_before lv_full ~iid reg)
              then ok := false
            done
          done;
          !ok)
        p.Mir.Program.funcs)

(* ---------- pruned directions never commit benignly ---------- *)

let pruned_by_func p =
  let pw = Ctx.prepare p in
  List.map
    (fun (f : Mir.Func.t) ->
      let _, stats = Refine.analyze ~options:on_options pw f in
      (f.Mir.Func.name, stats.Refine.pruned))
    p.Mir.Program.funcs

let benign_avoids_pruned ~seed p =
  let pruned = pruned_by_func p in
  let violated = ref false in
  let observer (e : M.Event.t) =
    match e.M.Event.kind with
    | M.Event.Branch { taken; _ } -> (
        match List.assoc_opt e.M.Event.fname pruned with
        | Some dirs when List.mem (e.M.Event.iid, taken) dirs ->
            violated := true
        | Some _ | None -> ())
    | _ -> ()
  in
  let (_ : M.Interp.outcome) =
    M.Interp.run p
      {
        M.Interp.default_config with
        max_steps = 5000;
        inputs = M.Input_script.random ~seed ();
        observer = Some observer;
      }
  in
  not !violated

let prop_benign_never_pruned =
  QCheck2.Test.make ~name:"benign runs never commit a pruned direction"
    ~count:150
    QCheck2.Gen.(tup2 Gen.minic_program (int_bound 1000))
    (fun (p, seed) -> benign_avoids_pruned ~seed p)

let test_workloads_benign_never_pruned () =
  List.iter
    (fun w ->
      let p = W.program w in
      for seed = 0 to 9 do
        check
          (Printf.sprintf "%s seed %d avoids pruned directions" w.W.name seed)
          true
          (benign_avoids_pruned ~seed p)
      done)
    W.all

(* ---------- precision off is the historical analysis ---------- *)

let test_off_identical () =
  List.iter
    (fun w ->
      let p = W.program w in
      let pw = Ctx.prepare p in
      List.iter
        (fun (f : Mir.Func.t) ->
          let base = An.analyze_func pw f in
          let off, stats = Refine.analyze pw f in
          check
            (w.W.name ^ "/" ^ f.Mir.Func.name ^ ": off result = base")
            true
            (String.equal (result_str base) (result_str off));
          check "off runs exactly one round" true
            (stats.Refine.iterations = 1 && stats.Refine.edges_pruned = 0);
          let full_view =
            An.analyze_func ~feas:(Feas.full (Cfg.make f)) pw f
          in
          check
            (w.W.name ^ "/" ^ f.Mir.Func.name ^ ": full view = raw cfg")
            true
            (String.equal (result_str base) (result_str full_view)))
        p.Mir.Program.funcs)
    W.all

let test_fingerprints_pinned () =
  check_string "off fingerprint is the historical rendering"
    "store_load=true;load_load=true;affine=true;summary=faithful"
    (An.options_fingerprint An.default_options);
  check_string "refine fingerprint misses cleanly"
    "store_load=true;load_load=true;affine=true;summary=faithful;precision=refine;cap=4"
    (An.options_fingerprint on_options)

(* ---------- refinement visibly gains correlations ---------- *)

(* The four workloads whose audits route tested values through a merge
   with a (benignly dead) rescale arm: off-mode cannot trace through the
   two reaching definitions, on-mode prunes the dead arm and checks the
   audits again. *)
let test_construct_lift () =
  List.iter
    (fun name ->
      let p = W.program (workload name) in
      let pw = Ctx.prepare p in
      let f = Mir.Program.find_func_exn p "main" in
      let off = An.analyze_func pw f in
      let on, stats = Refine.analyze ~options:on_options pw f in
      check (name ^ " prunes at least one direction") true
        (stats.Refine.edges_pruned > 0);
      check (name ^ " refinement takes more than one round") true
        (stats.Refine.iterations > 1);
      check (name ^ " gains checked branches") true
        (List.length on.An.checked > List.length off.An.checked))
    [ "telnetd"; "sysklogd"; "httpd"; "sshd" ]

(* ---------- zero false positives with precision on ---------- *)

let no_alarms ~options ~seed p =
  let system = Core.System.build ~options p in
  let checker = Core.System.new_checker system in
  let o =
    M.Interp.run p
      {
        M.Interp.default_config with
        max_steps = 5000;
        inputs = M.Input_script.random ~seed ();
        checker = Some checker;
      }
  in
  o.M.Interp.alarms = []

let prop_precision_no_false_positives =
  QCheck2.Test.make ~name:"zero false positives with precision on" ~count:100
    QCheck2.Gen.(tup2 Gen.minic_program (int_bound 1000))
    (fun (p, seed) -> no_alarms ~options:on_options ~seed p)

let test_workloads_no_false_positives () =
  List.iter
    (fun w ->
      let p = W.program w in
      for seed = 0 to 9 do
        check
          (Printf.sprintf "%s seed %d clean under precision on" w.W.name seed)
          true
          (no_alarms ~options:on_options ~seed p)
      done)
    W.all

(* ---------- determinism across job counts ---------- *)

let test_jobs_deterministic () =
  let run jobs =
    H.Attack_experiment.run_all ~options:on_options ~attacks:4 ~seed:11 ~jobs ()
  in
  check "precision-on campaign identical for jobs 1 vs 4" true
    (String.equal
       (H.Attack_experiment.render (run 1))
       (H.Attack_experiment.render (run 4)))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "refine"
    [
      ( "pruned view",
        [
          qt prop_pruned_tighter;
          qt prop_benign_never_pruned;
          Alcotest.test_case "workloads avoid pruned directions" `Quick
            test_workloads_benign_never_pruned;
        ] );
      ( "precision off",
        [
          Alcotest.test_case "byte-identical to base analysis" `Quick
            test_off_identical;
          Alcotest.test_case "fingerprints pinned" `Quick
            test_fingerprints_pinned;
        ] );
      ( "precision on",
        [
          Alcotest.test_case "construct lift on edited workloads" `Quick
            test_construct_lift;
          qt prop_precision_no_false_positives;
          Alcotest.test_case "workloads clean" `Quick
            test_workloads_no_false_positives;
          Alcotest.test_case "jobs determinism" `Quick test_jobs_deterministic;
        ] );
    ]
