(* The generated-population contract (PR: attack universes):

   every member of the seeded random server population compiles through
   the full pass pipeline (front end, promotion, analysis), terminates
   benignly with zero IPDS alarms, and is reproducible — the same seed
   yields byte-identical sources for any pool fan-out. *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine
module G = Ipds_gen.Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let benign_config ?checker ~input_seed () =
  {
    M.Interp.default_config with
    inputs = M.Input_script.random ~seed:input_seed ();
    checker;
  }

(* Full pipeline for one population member: parse + lower, validate,
   promote registers, analyze, then run under the IPDS checker. *)
let full_pipeline_benign ~seed ~index ~input_seed =
  let src = G.source ~seed ~index () in
  let p = Ipds_minic.Minic.compile src in
  if Mir.Validate.check p <> [] then
    Alcotest.failf "member (%d,%d) fails MIR validation" seed index;
  let p = Ipds_opt.Promote.program p in
  if Mir.Validate.check p <> [] then
    Alcotest.failf "member (%d,%d) fails validation after promotion" seed index;
  let system = Core.System.build p in
  let checker = Core.System.new_checker system in
  let o = M.Interp.run p (benign_config ~checker ~input_seed ()) in
  (match o.M.Interp.reason with
  | M.Interp.Exited _ -> ()
  | M.Interp.Halted -> Alcotest.failf "member (%d,%d) halted" seed index
  | M.Interp.Fault f -> Alcotest.failf "member (%d,%d) faulted: %s" seed index f
  | M.Interp.Out_of_steps ->
      Alcotest.failf "member (%d,%d) ran out of steps" seed index
  | M.Interp.Trapped _ -> Alcotest.failf "member (%d,%d) trapped" seed index);
  o.M.Interp.alarms = []

let prop_members_compile_and_run_clean =
  QCheck2.Test.make ~name:"population members survive the full pipeline benignly"
    ~count:25
    QCheck2.Gen.(tup3 (int_bound 10_000) (int_bound 10_000) (int_bound 1_000))
    (fun (seed, index, input_seed) ->
      full_pipeline_benign ~seed ~index ~input_seed)

let prop_generation_pure =
  QCheck2.Test.make ~name:"same (seed, index) twice is byte-identical" ~count:50
    QCheck2.Gen.(tup2 (int_bound 100_000) (int_bound 10_000))
    (fun (seed, index) ->
      String.equal (G.source ~seed ~index ()) (G.source ~seed ~index ()))

let test_population_jobs_identical () =
  let p1 = G.population ~jobs:1 ~seed:11 ~count:100 () in
  let p4 = G.population ~jobs:4 ~seed:11 ~count:100 () in
  check_int "population size (jobs 1)" 100 (List.length p1);
  check "jobs 1 vs jobs 4 byte-identical" true (p1 = p4);
  (* fan-out matches direct generation at every index *)
  List.iteri
    (fun i src ->
      check ("index " ^ string_of_int i ^ " matches direct source") true
        (String.equal src (G.source ~seed:11 ~index:i ())))
    p1

let test_thousand_distinct_compiling () =
  let count = 1000 in
  let sources = G.population ~seed:2006 ~count () in
  check_int "population size" count (List.length sources);
  let distinct = List.sort_uniq String.compare sources in
  check_int "all members distinct" count (List.length distinct);
  (* every member compiles and terminates benignly (no checker: the
     QCheck property above covers alarm-freedom on sampled members,
     and the stride below re-checks it inside this fixed population) *)
  List.iteri
    (fun i src ->
      let p = Ipds_minic.Minic.compile src in
      if Mir.Validate.check p <> [] then
        Alcotest.failf "member %d fails validation" i;
      let o = M.Interp.run p (benign_config ~input_seed:(3000 + i) ()) in
      match o.M.Interp.reason with
      | M.Interp.Exited _ -> ()
      | _ -> Alcotest.failf "member %d did not exit cleanly" i)
    sources;
  (* a fixed stride of members goes through analysis + checker *)
  let rec stride i =
    if i < count then begin
      check
        ("member " ^ string_of_int i ^ " benign under checker")
        true
        (full_pipeline_benign ~seed:2006 ~index:i ~input_seed:i);
      stride (i + 25)
    end
  in
  stride 0

let () =
  Alcotest.run "gen"
    [
      ( "population",
        [
          QCheck_alcotest.to_alcotest prop_members_compile_and_run_clean;
          QCheck_alcotest.to_alcotest prop_generation_pure;
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_population_jobs_identical;
          Alcotest.test_case "1000 distinct compiling members" `Quick
            test_thousand_distinct_compiling;
        ] );
    ]
