(* Tests for the dataflow framework instantiations: register reaching
   definitions and liveness. *)

module Mir = Ipds_mir
module Cfg = Ipds_cfg.Cfg
module Feas = Ipds_cfg.Feasibility
module Rd = Ipds_dataflow.Reaching_defs
module Live = Ipds_dataflow.Liveness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let func_of src = Mir.Program.find_func_exn (Mir.Parser.program_of_string src) "main"

(* r0 defined twice on different paths, merged at join. *)
let merge_func () =
  func_of
    {|
func main() {
 var x
entry:
  r1 = load x
  br lt r1, 5, a, b
a:
  r0 = 1
  jmp join
b:
  r0 = 2
  jmp join
join:
  output r0
  ret
}
|}

let test_unique_defs () =
  let f = merge_func () in
  let rd = Rd.compute (Cfg.make f) in
  (* At the branch (iid 1), r1's unique def is the load (iid 0). *)
  (match Rd.unique_def rd ~iid:1 (Mir.Reg.make 1) with
  | Some (Rd.At 0) -> ()
  | Some _ | None -> Alcotest.fail "r1 should have the load as unique def");
  (* At the output (iid 6), r0 has two reaching defs. *)
  check "merged register has no unique def" true
    (Rd.unique_def rd ~iid:6 (Mir.Reg.make 0) = None);
  check_int "exactly two defs reach" 2
    (Rd.Def_set.cardinal (Rd.before rd ~iid:6 (Mir.Reg.make 0)))

let test_entry_def () =
  let f = merge_func () in
  let rd = Rd.compute (Cfg.make f) in
  (* r2 is never defined: only the Entry pseudo-definition reaches. *)
  check "undefined register comes from entry" true
    (Rd.unique_def rd ~iid:0 (Mir.Reg.make 0) = Some Rd.Entry)

let test_def_killed_in_block () =
  let f =
    func_of
      {|
func main() {
entry:
  r0 = 1
  r0 = 2
  output r0
  ret
}
|}
  in
  let rd = Rd.compute (Cfg.make f) in
  (match Rd.unique_def rd ~iid:2 (Mir.Reg.make 0) with
  | Some (Rd.At 1) -> ()
  | Some _ | None -> Alcotest.fail "second def should kill the first")

let test_loop_carried () =
  let f =
    func_of
      {|
func main() {
entry:
  r0 = 0
  jmp loop
loop:
  r1 = add r0, 1
  r0 = r1
  r2 = 5
  br lt r1, 10, loop, exit
exit:
  ret
}
|}
  in
  ignore f;
  (* r0 at the add (iid 2) is reached by both the init and the copy. *)
  let rd = Rd.compute (Cfg.make f) in
  check "loop-carried value has two defs" true
    (Rd.unique_def rd ~iid:2 (Mir.Reg.make 0) = None)

(* ---------- the generic framework, driven directly ---------- *)

(* Forward must-constant analysis over one integer "register": join is
   agreement-or-top, transfer adds the block's body length (a toy
   monotone function) — checks fixpoints converge on loops. *)
module Toy = struct
  type t =
    | Bot
    | Known of int
    | Top

  let equal = ( = )

  let join a b =
    match a, b with
    | Bot, x | x, Bot -> x
    | Known m, Known n when m = n -> Known m
    | Known _, Known _ -> Top
    | Top, _ | _, Top -> Top
end

let test_framework_forward_loop () =
  let f =
    func_of
      {|
func main() {
entry:
  nop
  jmp loop
loop:
  nop
  nop
  br lt r0, 5, loop, exit
exit:
  ret
}
|}
  in
  let cfg = Cfg.make f in
  let module Solver = Ipds_dataflow.Framework.Forward (Toy) in
  (* transfer: entry produces Known 1; a loop that re-adds the same value
     stays Known; the merged fixpoint must be reached (no infinite loop) *)
  let transfer b d =
    match d with
    | Toy.Bot -> Toy.Bot
    | Toy.Top -> Toy.Top
    | Toy.Known n -> if b = 0 then Toy.Known (n + 1) else Toy.Known n
  in
  let block_in, block_out =
    Solver.solve (Feas.view_of_cfg cfg) ~entry:(Toy.Known 0) ~bottom:Toy.Bot
      ~transfer
  in
  check "entry in" true (block_in.(0) = Toy.Known 0);
  check "loop reaches stable fixpoint" true (block_in.(1) = Toy.Known 1);
  check "exit sees loop out" true (block_out.(2) = Toy.Known 1)

let test_framework_forward_conflict () =
  (* two paths producing different constants must merge to Top *)
  let f =
    func_of
      {|
func main() {
entry:
  br lt r0, 5, a, b
a:
  jmp join
b:
  jmp join
join:
  ret
}
|}
  in
  let cfg = Cfg.make f in
  let module Solver = Ipds_dataflow.Framework.Forward (Toy) in
  let transfer b d =
    match b, d with
    | 1, _ -> Toy.Known 10
    | 2, _ -> Toy.Known 20
    | _, d -> d
  in
  let block_in, _ =
    Solver.solve (Feas.view_of_cfg cfg) ~entry:(Toy.Known 0) ~bottom:Toy.Bot
      ~transfer
  in
  check "conflicting paths merge to top" true (block_in.(3) = Toy.Top)

let test_framework_backward () =
  let f =
    func_of
      {|
func main() {
entry:
  br lt r0, 5, a, b
a:
  ret
b:
  ret
}
|}
  in
  let cfg = Cfg.make f in
  let module Solver = Ipds_dataflow.Framework.Backward (Toy) in
  let transfer _ d = d in
  let block_in, _ =
    Solver.solve (Feas.view_of_cfg cfg) ~exit:(Toy.Known 9) ~bottom:Toy.Bot
      ~transfer
  in
  check "exit value propagates backwards" true (block_in.(0) = Toy.Known 9)

let test_framework_visits () =
  (* With the priority worklist, the single-loop function stabilizes in
     at most 4 block visits (3 blocks + one re-visit of the loop head);
     FIFO insertion order took more on this shape.  This pins the
     reverse-postorder scheduling. *)
  let f =
    func_of
      {|
func main() {
entry:
  nop
  jmp loop
loop:
  nop
  nop
  br lt r0, 5, loop, exit
exit:
  ret
}
|}
  in
  let module Solver = Ipds_dataflow.Framework.Forward (Toy) in
  let visits = ref 0 in
  let transfer b d =
    match d with
    | Toy.Bot -> Toy.Bot
    | Toy.Top -> Toy.Top
    | Toy.Known n -> if b = 0 then Toy.Known (n + 1) else Toy.Known n
  in
  let _ =
    Solver.solve ~visits
      (Feas.view_of_cfg (Cfg.make f))
      ~entry:(Toy.Known 0) ~bottom:Toy.Bot ~transfer
  in
  check "rpo worklist converges in <= 4 visits" true (!visits <= 4)

let test_framework_edge_hook () =
  (* The edge hook refines the value flowing along one specific edge:
     kill the value on the entry->b edge and join must see only a's. *)
  let f =
    func_of
      {|
func main() {
entry:
  br lt r0, 5, a, b
a:
  jmp join
b:
  jmp join
join:
  ret
}
|}
  in
  let module Solver = Ipds_dataflow.Framework.Forward (Toy) in
  let edge ~src:_ ~dst d = if dst = 2 then Toy.Bot else d in
  let transfer b d =
    match b, d with 1, _ -> Toy.Known 10 | 2, Toy.Bot -> Toy.Bot | _, d -> d
  in
  let block_in, _ =
    Solver.solve ~edge
      (Feas.view_of_cfg (Cfg.make f))
      ~entry:(Toy.Known 0) ~bottom:Toy.Bot ~transfer
  in
  check "edge hook starves b" true (block_in.(2) = Toy.Bot);
  check "join only sees a's constant" true (block_in.(3) = Toy.Known 10)

let test_pruned_view_tightens_rdefs () =
  let f = merge_func () in
  let cfg = Cfg.make f in
  (* Prune the taken direction of the entry branch (iid 1): block a is
     unreachable, so r0's def in b becomes unique at the output. *)
  let feas = Feas.prune (Feas.full cfg) [ (1, true) ] in
  let rd = Rd.compute ~feas cfg in
  (match Rd.unique_def rd ~iid:6 (Mir.Reg.make 0) with
  | Some (Rd.At 4) -> ()
  | Some _ | None -> Alcotest.fail "pruning should leave b's def unique");
  (* The pruned solution is pointwise subsumed by the unpruned one. *)
  let rd0 = Rd.compute cfg in
  check "pruned defs subset of unpruned" true
    (Rd.Def_set.subset
       (Rd.before rd ~iid:6 (Mir.Reg.make 0))
       (Rd.before rd0 ~iid:6 (Mir.Reg.make 0)))

let test_liveness () =
  let f = merge_func () in
  let live = Live.compute (Cfg.make f) in
  (* r0 is live at the start of join (used by output). *)
  check "r0 live into join" true (Live.live_in live 3 (Mir.Reg.make 0));
  (* r1 is dead after the entry branch. *)
  check "r1 dead in a" false (Live.live_in live 1 (Mir.Reg.make 1));
  (* r1 is live before the branch. *)
  check "r1 live before branch" true (Live.live_before live ~iid:1 (Mir.Reg.make 1));
  (* r1 is dead after... i.e. live_before of block a's first instr *)
  check "r0 dead before its def in a" false
    (Live.live_before live ~iid:0 (Mir.Reg.make 0))

let () =
  Alcotest.run "dataflow"
    [
      ( "reaching-defs",
        [
          Alcotest.test_case "unique defs" `Quick test_unique_defs;
          Alcotest.test_case "entry def" `Quick test_entry_def;
          Alcotest.test_case "intra-block kill" `Quick test_def_killed_in_block;
          Alcotest.test_case "loop carried" `Quick test_loop_carried;
        ] );
      ("liveness", [ Alcotest.test_case "liveness" `Quick test_liveness ]);
      ( "framework",
        [
          Alcotest.test_case "forward loop fixpoint" `Quick test_framework_forward_loop;
          Alcotest.test_case "forward merge conflict" `Quick test_framework_forward_conflict;
          Alcotest.test_case "backward" `Quick test_framework_backward;
          Alcotest.test_case "rpo visit bound" `Quick test_framework_visits;
          Alcotest.test_case "edge hook" `Quick test_framework_edge_hook;
          Alcotest.test_case "pruned view tightens rdefs" `Quick
            test_pruned_view_tightens_rdefs;
        ] );
    ]
