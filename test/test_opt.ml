(* Tests for register promotion: eligibility rules and semantic
   preservation (promoted and unpromoted programs behave identically). *)

module Mir = Ipds_mir
module M = Ipds_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_eligibility () =
  let p =
    Ipds_minic.Minic.compile
      {|
int main() {
  int plain;
  int taken;
  int arr[3];
  plain = 1;
  taken = 2;
  arr[0] = plain + taken;
  read_line(&taken, 1);
  output(arr[0]);
  return 0;
}
|}
  in
  let names = List.map (fun (v : Mir.Var.t) -> v.name) (Ipds_opt.Promote.promoted_vars p) in
  check "plain scalar promoted" true (List.mem "plain" names);
  check "address-taken scalar kept in memory" false (List.mem "taken" names);
  check "array kept in memory" false (List.mem "arr" names)

let test_promoted_program_shape () =
  let p =
    Ipds_minic.Minic.compile
      {| int main() { int a; a = 5; output(a + 1); return 0; } |}
  in
  let q = Ipds_opt.Promote.program p in
  let f = Mir.Program.find_func_exn q "main" in
  check_int "no locals left" 0 (List.length f.Mir.Func.locals);
  (* No loads or stores remain. *)
  let has_mem = ref false in
  Mir.Func.iter_instrs f (fun _ op ->
      match op with
      | Mir.Op.Load _ | Mir.Op.Store _ -> has_mem := true
      | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Addr_of _
      | Mir.Op.Call _ | Mir.Op.Input _ | Mir.Op.Output _ | Mir.Op.Nop ->
          ());
  check "no memory traffic" false !has_mem;
  check_int "instruction count preserved"
    (Mir.Program.find_func_exn p "main").Mir.Func.instr_count f.Mir.Func.instr_count

let same_behavior p =
  let q = Ipds_opt.Promote.program p in
  let run prog =
    let o =
      M.Interp.run prog
        {
          M.Interp.default_config with
          max_steps = 5000;
          inputs = M.Input_script.random ~seed:7 ();
        }
    in
    (o.M.Interp.outputs, o.M.Interp.steps <= 5000)
  in
  let out_p, ok_p = run p in
  let out_q, ok_q = run q in
  ok_p && ok_q && out_p = out_q

let prop_promotion_preserves_minic =
  QCheck2.Test.make ~name:"promotion preserves MiniC semantics" ~count:120
    Gen.minic_program same_behavior

let prop_promotion_preserves_mir =
  QCheck2.Test.make ~name:"promotion preserves raw MIR semantics" ~count:120
    Gen.mir_program same_behavior

let test_workload_behavior_preserved () =
  List.iter
    (fun w ->
      let raw = Ipds_workloads.Workloads.program ~promote:false w in
      let promoted = Ipds_workloads.Workloads.program ~promote:true w in
      let run prog =
        (M.Interp.run prog
           {
             M.Interp.default_config with
             inputs = M.Input_script.random ~seed:99 ();
           })
          .M.Interp.outputs
      in
      check (w.Ipds_workloads.Workloads.name ^ " outputs equal") true
        (run raw = run promoted))
    Ipds_workloads.Workloads.all

(* ---------- optimization passes ---------- *)

let outputs_of p =
  (M.Interp.run p
     {
       M.Interp.default_config with
       max_steps = 5000;
       inputs = M.Input_script.random ~seed:13 ();
     })
    .M.Interp.outputs

let test_const_prop_folds () =
  let p =
    Mir.Parser.program_of_string
      {|
func main() {
entry:
  r0 = 4
  r1 = add r0, 6
  r2 = mul r1, r1
  output r2
  br lt r1, 100, a, b
a:
  ret 1
b:
  ret 2
}
|}
  in
  let q = Ipds_opt.Passes.const_prop p in
  let f = Mir.Program.find_func_exn q "main" in
  (* r2 = mul r1, r1 must fold to a constant, the branch to a jump *)
  let folded = ref false in
  Mir.Func.iter_instrs f (fun _ op ->
      match op with
      | Mir.Op.Const (_, 100) -> folded := true
      | _ -> ());
  check "mul folded to 100" true !folded;
  (match (Mir.Func.entry f).Mir.Block.term with
  | Mir.Terminator.Jump _ -> ()
  | _ -> Alcotest.fail "constant branch should fold to jump");
  check "behavior preserved" true (outputs_of p = outputs_of q)

let test_dce_removes_dead_load () =
  let p =
    Mir.Parser.program_of_string
      {|
func main() {
 var x
entry:
  r0 = load x
  r1 = 7
  output r1
  ret 0
}
|}
  in
  let q = Ipds_opt.Passes.dce p in
  let f = Mir.Program.find_func_exn q "main" in
  let loads = ref 0 in
  Mir.Func.iter_instrs f (fun _ op ->
      match op with
      | Mir.Op.Load _ -> incr loads
      | _ -> ());
  Alcotest.(check int) "dead load removed" 0 !loads;
  check "behavior preserved" true (outputs_of p = outputs_of q)

let test_rle_forwards () =
  let p =
    Mir.Parser.program_of_string
      {|
func main() {
 var x
entry:
  r0 = input 0
  store x, r0
  r1 = load x
  output r1
  r2 = load x
  output r2
  ret 0
}
|}
  in
  let q = Ipds_opt.Passes.redundant_load_elim p in
  let f = Mir.Program.find_func_exn q "main" in
  let loads = ref 0 in
  Mir.Func.iter_instrs f (fun _ op ->
      match op with
      | Mir.Op.Load _ -> incr loads
      | _ -> ());
  (* store-to-load forwarding removes BOTH loads *)
  Alcotest.(check int) "loads forwarded" 0 !loads;
  check "behavior preserved" true (outputs_of p = outputs_of q)

let test_rle_respects_kills () =
  let p =
    Mir.Parser.program_of_string
      {|
extern syscall writes_all
func main() {
 var x
entry:
  r0 = load x
  call syscall(0)
  r1 = load x
  output r1
  ret 0
}
|}
  in
  let q = Ipds_opt.Passes.redundant_load_elim p in
  let f = Mir.Program.find_func_exn q "main" in
  let loads = ref 0 in
  Mir.Func.iter_instrs f (fun _ op ->
      match op with
      | Mir.Op.Load _ -> incr loads
      | _ -> ());
  Alcotest.(check int) "call kills availability" 2 !loads

(* The paper's remark, demonstrated: eliminating the second load of a
   twice-checked flag removes the correlation IPDS relied on, and the
   Figure-1-style tamper becomes undetectable. *)
let test_rle_removes_correlation () =
  let src =
    {|
func main() {
 var flag
 var pad[3]
entry:
  store flag, 1
  r0 = load flag
  br eq r0, 1, second, bad
second:
  r1 = load flag
  br eq r1, 1, good, bad
good:
  ret 0
bad:
  ret 1
}
|}
  in
  let p = Mir.Parser.program_of_string src in
  let q = Ipds_opt.Passes.redundant_load_elim p in
  (* after RLE the second branch reuses the register, so tampering flag
     between the checks no longer flips it: the attack achieves nothing
     and nothing is (or needs to be) detected *)
  let attack prog =
    let system = Ipds_core.System.build prog in
    let rec go seed =
      if seed > 30 then (false, false)
      else begin
        let checker = Ipds_core.System.new_checker system in
        let o =
          M.Interp.run prog
            {
              M.Interp.default_config with
              checker = Some checker;
              tamper =
                Some
                  {
                    M.Tamper.at_step = 3;
                    site =
                      M.Tamper.Mem_write
                        { model = M.Tamper.Stack_overflow; value = 0 };
                    seed;
                  };
            }
        in
        match o.M.Interp.injection with
        | Some (M.Tamper.Tampered_cell inj)
          when String.equal inj.var.Mir.Var.name "flag" ->
            (true, o.M.Interp.alarms <> [])
        | Some _ | None -> go (seed + 1)
      end
    in
    go 0
  in
  let hit_p, detected_p = attack p in
  let hit_q, detected_q = attack q in
  check "tamper landed on both" true (hit_p && hit_q);
  check "detected without optimization" true detected_p;
  check "nothing to detect after load elimination" false detected_q;
  (* and the second load really is gone *)
  let loads prog =
    let f = Mir.Program.find_func_exn prog "main" in
    let n = ref 0 in
    Mir.Func.iter_instrs f (fun _ op ->
        match op with
        | Mir.Op.Load _ -> incr n
        | _ -> ());
    !n
  in
  check "a load was eliminated" true (loads q < loads p)

let rec is_prefix a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

let same_behavior_optimized p =
  let q = Ipds_opt.Passes.optimize p in
  let run prog =
    let o =
      M.Interp.run prog
        {
          M.Interp.default_config with
          max_steps = 5000;
          inputs = M.Input_script.random ~seed:7 ();
        }
    in
    (o.M.Interp.outputs, o.M.Interp.reason = M.Interp.Out_of_steps)
  in
  let out_p, trunc_p = run p in
  let out_q, trunc_q = run q in
  (* Optimization shrinks the instruction stream, so a step-capped run
     makes more semantic progress after optimization; outputs of a
     truncated run are only comparable as prefixes. *)
  if trunc_p || trunc_q then is_prefix out_p out_q || is_prefix out_q out_p
  else out_p = out_q

let prop_optimize_preserves_minic =
  QCheck2.Test.make ~name:"optimize preserves MiniC semantics" ~count:120
    Gen.minic_program same_behavior_optimized

let prop_optimize_preserves_mir =
  QCheck2.Test.make ~name:"optimize preserves raw MIR semantics" ~count:120
    Gen.mir_program same_behavior_optimized

let prop_optimized_still_sound =
  QCheck2.Test.make ~name:"zero false positives on optimized programs" ~count:120
    QCheck2.Gen.(tup2 Gen.minic_program (int_bound 1000))
    (fun (p, seed) ->
      let q = Ipds_opt.Promote.program (Ipds_opt.Passes.optimize p) in
      let system = Ipds_core.System.build q in
      let checker = Ipds_core.System.new_checker system in
      let o =
        M.Interp.run q
          {
            M.Interp.default_config with
            max_steps = 5000;
            inputs = M.Input_script.random ~seed ();
            checker = Some checker;
          }
      in
      o.M.Interp.alarms = [])

let () =
  Alcotest.run "opt"
    [
      ( "passes",
        [
          Alcotest.test_case "const prop folds" `Quick test_const_prop_folds;
          Alcotest.test_case "dce removes dead load" `Quick test_dce_removes_dead_load;
          Alcotest.test_case "rle forwards" `Quick test_rle_forwards;
          Alcotest.test_case "rle respects kills" `Quick test_rle_respects_kills;
          Alcotest.test_case "rle removes correlation" `Quick test_rle_removes_correlation;
          QCheck_alcotest.to_alcotest prop_optimize_preserves_minic;
          QCheck_alcotest.to_alcotest prop_optimize_preserves_mir;
          QCheck_alcotest.to_alcotest prop_optimized_still_sound;
        ] );
      ( "promote",
        [
          Alcotest.test_case "eligibility" `Quick test_eligibility;
          Alcotest.test_case "program shape" `Quick test_promoted_program_shape;
          Alcotest.test_case "workload behavior" `Quick test_workload_behavior_preserved;
          QCheck_alcotest.to_alcotest prop_promotion_preserves_minic;
          QCheck_alcotest.to_alcotest prop_promotion_preserves_mir;
        ] );
    ]
