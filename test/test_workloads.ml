(* Tests for the server workload suite: compilation, termination,
   determinism, analyzability, and attack-surface sanity. *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine
module W = Ipds_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run ?tamper ?(seed = 7) p =
  M.Interp.run p
    {
      M.Interp.default_config with
      inputs = M.Input_script.random ~seed ();
      tamper;
    }

let test_eleven_servers () =
  check_int "eleven benchmarks" 11 (List.length W.all);
  let names = List.map (fun w -> w.W.name) W.all in
  List.iter
    (fun expected -> check (expected ^ " present") true (List.mem expected names))
    [
      "telnetd"; "wu-ftpd"; "xinetd"; "crond"; "sysklogd"; "atftpd"; "httpd";
      "sendmail"; "sshd"; "portmap"; "fwpolicyd";
    ]

let test_firewall_family () =
  (* canonical member: the default policy exercises every action code *)
  let fw = W.find "fwpolicyd" in
  let p = W.program fw in
  check "fwpolicyd validates" true (Mir.Validate.check p = []);
  (* generated members: distinct names, deterministic policies, and a
     spread of seeds that compile and terminate *)
  let a = W.firewall ~seed:1 ~nrules:6 and b = W.firewall ~seed:2 ~nrules:6 in
  check "family members have distinct names" true (a.W.name <> b.W.name);
  check "family generation is pure" true
    (String.equal a.W.source (W.firewall ~seed:1 ~nrules:6).W.source);
  for seed = 0 to 5 do
    let w = W.firewall ~seed ~nrules:(4 + seed) in
    let p = Ipds_minic.Minic.compile w.W.source in
    check (w.W.name ^ " validates") true (Mir.Validate.check p = []);
    let o = run ~seed p in
    match o.M.Interp.reason with
    | M.Interp.Exited _ -> ()
    | _ -> Alcotest.fail (w.W.name ^ " did not exit cleanly")
  done

let test_all_compile_and_terminate () =
  List.iter
    (fun w ->
      let p = W.program w in
      check (w.W.name ^ " validates") true (Mir.Validate.check p = []);
      for seed = 0 to 9 do
        let o = run ~seed p in
        match o.M.Interp.reason with
        | M.Interp.Exited _ ->
            check (w.W.name ^ " does some work") true (o.M.Interp.branches > 10)
        | M.Interp.Halted | M.Interp.Fault _ | M.Interp.Out_of_steps
        | M.Interp.Trapped _ ->
            Alcotest.fail (w.W.name ^ " did not exit cleanly")
      done)
    W.all

let test_runs_deterministic () =
  List.iter
    (fun w ->
      let p = W.program w in
      let o1 = run ~seed:3 p in
      let o2 = run ~seed:3 p in
      check (w.W.name ^ " deterministic") true
        (o1.M.Interp.outputs = o2.M.Interp.outputs
        && o1.M.Interp.branch_trace = o2.M.Interp.branch_trace))
    W.all

let test_every_server_analyzable () =
  List.iter
    (fun w ->
      let system = Core.System.build (W.program w) in
      check (w.W.name ^ " has checked branches") true
        (Core.System.checked_branch_count system > 3);
      check (w.W.name ^ " checks fewer than all") true
        (Core.System.checked_branch_count system
        <= Core.System.total_branch_count system))
    W.all

let test_tamper_model_mapping () =
  check "wu-ftpd is format-string" true (W.tamper_model (W.find "wu-ftpd") = `Arbitrary_write);
  check "telnetd is overflow" true (W.tamper_model (W.find "telnetd") = `Stack_overflow)

let test_memory_resident_state_remains () =
  (* After promotion the session arrays must still be in memory —
     otherwise there is nothing for the attacks to corrupt. *)
  List.iter
    (fun w ->
      let p = W.program w in
      let main = Mir.Program.find_func_exn p "main" in
      check (w.W.name ^ " keeps arrays in memory") true
        (List.exists (fun (v : Mir.Var.t) -> v.size > 1) main.Mir.Func.locals))
    W.all

let test_detectable_attack_exists () =
  (* For each server there must exist SOME attack that IPDS detects —
     otherwise the benchmark is vacuous. *)
  List.iter
    (fun w ->
      let p = W.program w in
      let system = Core.System.build p in
      let model =
        match W.tamper_model w with
        | `Stack_overflow -> M.Tamper.Stack_overflow
        | `Arbitrary_write -> M.Tamper.Arbitrary_write
      in
      let detected = ref false in
      let seed = ref 0 in
      while (not !detected) && !seed < 150 do
        let checker = Core.System.new_checker system in
        let o =
          M.Interp.run p
            {
              M.Interp.default_config with
              inputs = M.Input_script.random ~seed:11 ();
              checker = Some checker;
              tamper =
                Some
                  {
                    M.Tamper.at_step = 60 + (!seed * 3);
                    site = M.Tamper.Mem_write { model; value = !seed mod 7 };
                    seed = !seed;
                  };
            }
        in
        if o.M.Interp.alarms <> [] then detected := true;
        incr seed
      done;
      check (w.W.name ^ " has a detectable attack") true !detected)
    W.all

let () =
  Alcotest.run "workloads"
    [
      ( "suite",
        [
          Alcotest.test_case "eleven servers" `Quick test_eleven_servers;
          Alcotest.test_case "firewall family" `Quick test_firewall_family;
          Alcotest.test_case "compile and terminate" `Quick test_all_compile_and_terminate;
          Alcotest.test_case "deterministic" `Quick test_runs_deterministic;
          Alcotest.test_case "analyzable" `Quick test_every_server_analyzable;
          Alcotest.test_case "tamper models" `Quick test_tamper_model_mapping;
          Alcotest.test_case "memory-resident state" `Quick test_memory_resident_state_remains;
          Alcotest.test_case "detectable attacks exist" `Slow test_detectable_attack_exists;
        ] );
    ]
