(* Unit and property tests for the interval/predicate algebra and the
   branch-condition semantics.  The properties pin the algebra to its
   membership semantics: subset/shift/neg must agree with pointwise
   evaluation. *)

module Mir = Ipds_mir
module R = Ipds_range

let check = Alcotest.(check bool)

let test_interval_basics () =
  check "make empty" true (R.Interval.make ~lo:(Some 3) ~hi:(Some 2) = None);
  check "point mem" true (R.Interval.mem 5 (R.Interval.point 5));
  check "point not mem" false (R.Interval.mem 4 (R.Interval.point 5));
  check "at_most" true (R.Interval.mem (-100) (R.Interval.at_most 0));
  check "at_least" false (R.Interval.mem (-100) (R.Interval.at_least 0));
  check "top is top" true (R.Interval.is_top R.Interval.top);
  check "point is not top" false (R.Interval.is_top (R.Interval.point 0))

let test_interval_subset () =
  let i a b = Option.get (R.Interval.make ~lo:(Some a) ~hi:(Some b)) in
  check "paper example: [0,5] subsumed by [0,10]" true
    (R.Interval.subset (i 0 5) (i 0 10));
  check "[0,10] not inside [0,5]" false (R.Interval.subset (i 0 10) (i 0 5));
  check "anything inside top" true (R.Interval.subset (i (-9) 9) R.Interval.top);
  check "top only inside top" false (R.Interval.subset R.Interval.top (i 0 1));
  check "half line inside half line" true
    (R.Interval.subset (R.Interval.at_most 4) (R.Interval.at_most 10))

let test_interval_shift_neg () =
  let i a b = Option.get (R.Interval.make ~lo:(Some a) ~hi:(Some b)) in
  check "shift" true (R.Interval.equal (R.Interval.shift (i 1 3) 2) (i 3 5));
  check "neg" true (R.Interval.equal (R.Interval.neg (i 1 3)) (i (-3) (-1)));
  check "neg half line" true
    (R.Interval.equal (R.Interval.neg (R.Interval.at_most 4)) (R.Interval.at_least (-4)))

let test_pred () =
  check "except mem" true (R.Pred.mem 3 (R.Pred.Except 5));
  check "except not mem" false (R.Pred.mem 5 (R.Pred.Except 5));
  check "interval inside except" true
    (R.Pred.subset (R.Pred.In (R.Interval.point 3)) (R.Pred.Except 5));
  check "interval containing the hole not inside except" false
    (R.Pred.subset
       (R.Pred.In (Option.get (R.Interval.make ~lo:(Some 3) ~hi:(Some 7))))
       (R.Pred.Except 5));
  check "except inside top interval" true
    (R.Pred.subset (R.Pred.Except 5) (R.Pred.In R.Interval.top));
  check "except only inside same except" false
    (R.Pred.subset (R.Pred.Except 5) (R.Pred.Except 6));
  check "shift except" true (R.Pred.equal (R.Pred.shift (R.Pred.Except 5) 2) (R.Pred.Except 7))

(* value_pred correctness: direction taken at runtime implies membership. *)
let prop_value_pred_sound =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range (-20) 20) (int_range (-20) 20)
        (oneofl Mir.Cmp.[ Eq; Ne; Lt; Le; Gt; Ge ])
        (tup2 (oneofl [ 1; -1; 2; -2; 3; 5; -4 ]) (int_range (-5) 5)))
  in
  QCheck2.Test.make ~name:"value_pred agrees with execution" ~count:1000 gen
    (fun (x, k, cmp, (scale, offset)) ->
      let affine = { R.Cond.scale; offset } in
      let w = (scale * x) + offset in
      let taken = Mir.Cmp.eval cmp w k in
      R.Pred.mem x (R.Cond.value_pred affine cmp k ~taken))

(* forced_direction correctness: if the analysis forces a direction for
   every member of a fact, execution must agree. *)
let prop_forced_direction_sound =
  let gen =
    QCheck2.Gen.(
      tup4
        (tup2 (int_range (-10) 10) (int_range 0 6))
        (int_range (-20) 20)
        (oneofl Mir.Cmp.[ Eq; Ne; Lt; Le; Gt; Ge ])
        (tup2 (oneofl [ 1; -1; 2; -2; 3; 5; -4 ]) (int_range (-5) 5)))
  in
  QCheck2.Test.make ~name:"forced_direction agrees with execution" ~count:1000 gen
    (fun ((lo, width), k, cmp, (scale, offset)) ->
      let fact = R.Pred.In (Option.get (R.Interval.make ~lo:(Some lo) ~hi:(Some (lo + width)))) in
      let affine = { R.Cond.scale; offset } in
      match R.Cond.forced_direction affine cmp k fact with
      | None -> true
      | Some dir ->
          (* every x in the fact must branch in direction dir *)
          let ok = ref true in
          for x = lo to lo + width do
            let w = (scale * x) + offset in
            if Mir.Cmp.eval cmp w k <> dir then ok := false
          done;
          !ok)

(* apply is the forward image: w = scale*x + offset lands in apply(pred). *)
let prop_apply_forward_image =
  let gen =
    QCheck2.Gen.(
      tup3 (int_range (-20) 20)
        (tup2 (oneofl [ 1; -1; 2; -2; 3; 5; -4 ]) (int_range (-5) 5))
        (oneof
           [
             map (fun (a, w) ->
                 R.Pred.In (Option.get (R.Interval.make ~lo:(Some a) ~hi:(Some (a + w)))))
               (tup2 (int_range (-10) 10) (int_range 0 5));
             map (fun c -> R.Pred.Except c) (int_range (-10) 10);
           ]))
  in
  QCheck2.Test.make ~name:"apply is the forward affine image" ~count:500 gen
    (fun (x, (scale, offset), pred) ->
      QCheck2.assume (R.Pred.mem x pred);
      let affine = { R.Cond.scale; offset } in
      R.Pred.mem ((scale * x) + offset) (R.Cond.apply affine pred))

(* subset must be sound w.r.t. membership. *)
let gen_pred =
  QCheck2.Gen.(
    oneof
      [
        return R.Pred.Never;
        map (fun (a, w) ->
            R.Pred.In (Option.get (R.Interval.make ~lo:(Some a) ~hi:(Some (a + w)))))
          (tup2 (int_range (-10) 10) (int_range 0 8));
        return (R.Pred.In R.Interval.top);
        map (fun a -> R.Pred.In (R.Interval.at_most a)) (int_range (-10) 10);
        map (fun a -> R.Pred.In (R.Interval.at_least a)) (int_range (-10) 10);
        map (fun c -> R.Pred.Except c) (int_range (-10) 10);
      ])

let prop_subset_sound =
  QCheck2.Test.make ~name:"subset sound w.r.t. membership" ~count:1000
    QCheck2.Gen.(tup3 gen_pred gen_pred (int_range (-30) 30))
    (fun (a, b, x) ->
      if R.Pred.subset a b && R.Pred.mem x a then R.Pred.mem x b else true)

(* value_pred must be EXACT: x outside the predicate must branch the
   other way. *)
let prop_value_pred_exact =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range (-30) 30) (int_range (-20) 20)
        (oneofl Mir.Cmp.[ Eq; Ne; Lt; Le; Gt; Ge ])
        (tup2 (oneofl [ 1; -1; 2; -2; 3; 5; -4 ]) (int_range (-5) 5)))
  in
  QCheck2.Test.make ~name:"value_pred is the exact inverse image" ~count:1000 gen
    (fun (x, k, cmp, (scale, offset)) ->
      let affine = { R.Cond.scale; offset } in
      let w = (scale * x) + offset in
      let taken = Mir.Cmp.eval cmp w k in
      R.Pred.mem x (R.Cond.value_pred affine cmp k ~taken)
      && not (R.Pred.mem x (R.Cond.value_pred affine cmp k ~taken:(not taken))))

let test_never_pred () =
  (* 2x == 3 has no integer solution: the taken direction is Never. *)
  let affine = { R.Cond.scale = 2; offset = 0 } in
  check "impossible eq is never" true
    (R.Pred.equal (R.Cond.value_pred affine Mir.Cmp.Eq 3 ~taken:true) R.Pred.Never);
  check "never is subset of all" true (R.Pred.subset R.Pred.Never (R.Pred.Except 0));
  check "nothing inside never" false
    (R.Pred.subset (R.Pred.In (R.Interval.point 0)) R.Pred.Never);
  check "never has no members" false (R.Pred.mem 0 R.Pred.Never)

let test_scaled_inverse_examples () =
  (* w = 4x, w < 10 taken: x <= 2 *)
  let a4 = { R.Cond.scale = 4; offset = 0 } in
  check "4x < 10 means x <= 2" true
    (R.Pred.equal
       (R.Cond.value_pred a4 Mir.Cmp.Lt 10 ~taken:true)
       (R.Pred.In (R.Interval.at_most 2)));
  (* w = -2x + 1, w <= 5 taken: -2x <= 4, x >= -2 *)
  let am2 = { R.Cond.scale = -2; offset = 1 } in
  check "-2x+1 <= 5 means x >= -2" true
    (R.Pred.equal
       (R.Cond.value_pred am2 Mir.Cmp.Le 5 ~taken:true)
       (R.Pred.In (R.Interval.at_least (-2))))

let test_printers () =
  let show pp v = Format.asprintf "%a" pp v in
  check "interval pp" true (String.equal (show R.Interval.pp (R.Interval.point 5)) "[5..5]");
  check "half line pp" true (String.equal (show R.Interval.pp (R.Interval.at_most 3)) "[..3]");
  check "except pp" true (String.equal (show R.Pred.pp (R.Pred.Except 7)) "!=7");
  check "never pp" true (String.equal (show R.Pred.pp R.Pred.Never) "never")

let test_affine_composition () =
  let a = R.Cond.identity in
  let a1 = R.Cond.compose_add a 3 in
  check "compose_add offset" true (a1.R.Cond.offset = 3 && a1.R.Cond.scale = 1);
  let a2 = R.Cond.compose_sub_from 10 a1 in
  (* w = 10 - (x + 3) = -x + 7 *)
  check "compose_sub_from" true (a2.R.Cond.scale = -1 && a2.R.Cond.offset = 7);
  let a3 = R.Cond.compose_neg a2 in
  (* w = -(-x + 7) = x - 7 *)
  check "compose_neg" true (a3.R.Cond.scale = 1 && a3.R.Cond.offset = -7)

let test_forced_direction_examples () =
  (* Figure 3.c: y < 5 known, branch tests (y - 1) < 10: must be taken. *)
  let fact = R.Pred.In (R.Interval.at_most 4) in
  let affine = { R.Cond.scale = 1; offset = -1 } in
  check "figure 3.c forced taken" true
    (R.Cond.forced_direction affine Mir.Cmp.Lt 10 fact = Some true);
  (* y >= 10 known, branch tests y < 5: must be not-taken. *)
  let fact2 = R.Pred.In (R.Interval.at_least 10) in
  check "forced not-taken" true
    (R.Cond.forced_direction R.Cond.identity Mir.Cmp.Lt 5 fact2 = Some false);
  (* y < 10 known, branch tests y < 5: undetermined. *)
  let fact3 = R.Pred.In (R.Interval.at_most 9) in
  check "undetermined" true
    (R.Cond.forced_direction R.Cond.identity Mir.Cmp.Lt 5 fact3 = None)

let () =
  Alcotest.run "range"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "subset" `Quick test_interval_subset;
          Alcotest.test_case "shift/neg" `Quick test_interval_shift_neg;
        ] );
      ("pred", [ Alcotest.test_case "except" `Quick test_pred ]);
      ( "cond",
        [
          Alcotest.test_case "affine composition" `Quick test_affine_composition;
          Alcotest.test_case "forced direction examples" `Quick
            test_forced_direction_examples;
          QCheck_alcotest.to_alcotest prop_value_pred_sound;
          QCheck_alcotest.to_alcotest prop_forced_direction_sound;
          QCheck_alcotest.to_alcotest prop_apply_forward_image;
          QCheck_alcotest.to_alcotest prop_subset_sound;
          QCheck_alcotest.to_alcotest prop_value_pred_exact;
          Alcotest.test_case "never predicate" `Quick test_never_pred;
          Alcotest.test_case "scaled inverse examples" `Quick test_scaled_inverse_examples;
          Alcotest.test_case "printers" `Quick test_printers;
        ] );
    ]
