(* Random program generators shared by the property-based suites.

   Two flavours:
   - [minic_program]: structured MiniC ASTs compiled through the real
     front end — always well-formed, mostly terminating;
   - [mir_program]: raw MIR built directly — covers shapes the MiniC
     code generator never produces (indexed scalars, arbitrary block
     graphs, stray pointer arithmetic).  Runs may fault or spin; the
     interpreter's step cap bounds them. *)

module Mir = Ipds_mir
module Q = QCheck2.Gen

let ( let* ) = Q.bind

(* ---------- MiniC generator ---------- *)

let scalar_names = [ "a"; "b"; "c"; "d" ]
let array_name = "arr"
let array_size = 4

let gen_value_expr ~depth : Ipds_minic.Ast.expr Q.t =
  let open Ipds_minic.Ast in
  let rec go depth =
    let leaf =
      Q.oneof
        [
          Q.map (fun n -> Int_lit n) (Q.int_range (-8) 16);
          Q.map (fun v -> Var v) (Q.oneofl scalar_names);
          Q.map (fun i -> Index (array_name, Int_lit i)) (Q.int_range 0 (array_size - 1));
          Q.return (Input 0);
        ]
    in
    if depth <= 0 then leaf
    else
      Q.frequency
        [
          (3, leaf);
          ( 2,
            let* op =
              Q.oneofl
                Mir.Binop.[ Add; Sub; Mul; And; Or; Xor ]
            in
            let* a = go (depth - 1) in
            let* b = go (depth - 1) in
            Q.return (Binary (Arith op, a, b)) );
          ( 1,
            let* e = go (depth - 1) in
            Q.return (Unary (Neg, e)) );
        ]
  in
  go depth

let gen_cond_expr ~depth : Ipds_minic.Ast.expr Q.t =
  let open Ipds_minic.Ast in
  let* cmp = Q.oneofl Mir.Cmp.[ Eq; Ne; Lt; Le; Gt; Ge ] in
  let* lhs = gen_value_expr ~depth in
  let* k = Q.int_range (-4) 12 in
  Q.return (Binary (Cmp cmp, lhs, Int_lit k))

let rec gen_stmt ~depth : Ipds_minic.Ast.stmt Q.t =
  let open Ipds_minic.Ast in
  let assign =
    let* target =
      Q.oneof
        [
          Q.map (fun v -> Lvar v) (Q.oneofl scalar_names);
          Q.map
            (fun i -> Lindex (array_name, Int_lit i))
            (Q.int_range 0 (array_size - 1));
        ]
    in
    let* e = gen_value_expr ~depth:2 in
    Q.return (Assign (target, e))
  in
  let out =
    let* e = gen_value_expr ~depth:1 in
    Q.return (Output e)
  in
  if depth <= 0 then Q.oneof [ assign; out ]
  else
    Q.frequency
      [
        (4, assign);
        (2, out);
        ( 2,
          let* c = gen_cond_expr ~depth:1 in
          let* then_b = gen_stmts ~depth:(depth - 1) ~len:2 in
          let* else_b = gen_stmts ~depth:(depth - 1) ~len:2 in
          Q.return (If (c, then_b, else_b)) );
        ( 1,
          (* bounded counting loop; one counter per nesting depth so an
             inner loop cannot reset an outer loop's counter *)
          let counter = Printf.sprintf "i%d" depth in
          let* bound = Q.int_range 1 5 in
          let* body = gen_stmts ~depth:(depth - 1) ~len:2 in
          Q.return
            (For
               ( Some (Assign (Lvar counter, Int_lit 0)),
                 Some (Binary (Cmp Mir.Cmp.Lt, Var counter, Int_lit bound)),
                 Some
                   (Assign
                      ( Lvar counter,
                        Binary (Arith Mir.Binop.Add, Var counter, Int_lit 1) )),
                 body )) );
      ]

and gen_stmts ~depth ~len =
  Q.list_size (Q.int_range 1 len) (gen_stmt ~depth)

let minic_ast : Ipds_minic.Ast.program Q.t =
  let open Ipds_minic.Ast in
  let ( let* ) m f = Q.bind m f in
  let* body = gen_stmts ~depth:3 ~len:6 in
  let* helper_body = gen_stmts ~depth:1 ~len:3 in
  let* call_helper = Q.bool in
  let* use_global = Q.bool in
  let decls =
    List.map
      (fun n -> { d_name = n; d_size = None })
      ([ "i1"; "i2"; "i3" ] @ scalar_names)
    @ [ { d_name = array_name; d_size = Some array_size } ]
  in
  (* the helper shares variable names (its own locals shadow), returns an
     int, and may write the global *)
  let helper =
    {
      f_name = "helper";
      f_params = [ "p" ];
      f_locals = decls;
      f_body =
        (if use_global then
           [ Assign (Lvar "gshared", Binary (Arith Mir.Binop.Add, Var "gshared", Var "p")) ]
         else [])
        @ helper_body
        @ [ Return (Some (Var "a")) ];
    }
  in
  let main_body =
    if call_helper then
      body @ [ Assign (Lvar "b", Call ("helper", [ Var "a" ])); Output (Var "b") ]
    else body
  in
  Q.return
    {
      p_globals = [ { d_name = "gshared"; d_size = None } ];
      p_funcs =
        [
          helper;
          { f_name = "main"; f_params = []; f_locals = decls; f_body = main_body };
        ];
    }

let minic_program : Mir.Program.t Q.t =
  Q.map Ipds_minic.Codegen.compile minic_ast

(* ---------- bitstream op generator ---------- *)

(* A serialization schedule for Core.Bitstream: fields of any legal
   width (0–62 inclusive, both endpoints weighted so every run hits
   them) interleaved with byte-alignment points.  The reader must replay
   the same schedule, which is how the artifact codecs use the API. *)
type bits_op =
  | Bits_field of int * int  (* width, value fitting in width *)
  | Bits_align

let bitstream_ops : bits_op list Q.t =
  let field =
    let* width = Q.oneof [ Q.return 0; Q.return 62; Q.int_range 0 62 ] in
    (* two chunks so high bits of wide fields are exercised *)
    let* lo = Q.int_bound 0x3FFFFFFF in
    let* hi = Q.int_bound 0xFFFFFFFF in
    let mask = if width = 0 then 0 else (1 lsl width) - 1 in
    Q.return (Bits_field (width, (lo lor (hi lsl 30)) land mask))
  in
  Q.list_size (Q.int_range 1 80)
    (Q.frequency [ (8, field); (2, Q.return Bits_align) ])

(* ---------- machine event generator ---------- *)

(* Arbitrary dynamic events for the serve-protocol codec tests: every
   kind, full-range ints (the wire codec must round-trip negatives and
   both int extremes exactly), and function names of assorted lengths
   including empty. *)
let wide_int : int Q.t =
  Q.oneof
    [
      Q.int_range (-1000) 1000;
      Q.int;
      Q.return min_int;
      Q.return max_int;
      Q.return 0;
      Q.return (-1);
    ]

let event : Ipds_machine.Event.t Q.t =
  let open Ipds_machine.Event in
  let* fname =
    Q.oneofl [ "main"; "aux"; "helper"; ""; "a_function_with_a_long_name" ]
  in
  let* iid = Q.int_range 0 10_000 in
  let* pc = wide_int in
  let* kind =
    Q.oneof
      [
        Q.return Alu;
        Q.map (fun addr -> Load { addr }) wide_int;
        Q.map (fun addr -> Store { addr }) wide_int;
        Q.map2
          (fun taken target_pc -> Branch { taken; target_pc })
          Q.bool wide_int;
        Q.map (fun target_pc -> Jump { target_pc }) wide_int;
        Q.map (fun callee -> Call { callee }) (Q.oneofl [ "main"; "aux"; "" ]);
        Q.return Ret;
        Q.return Input_read;
        Q.map (fun v -> Output_write v) wide_int;
        Q.map (fun skipped -> Fault_inject { skipped }) Q.bool;
      ]
  in
  Q.return { fname; iid; pc; kind }

(* ---------- raw MIR generator ---------- *)

type mir_plan = {
  n_blocks : int;
  n_regs : int;
  seeds : int list;  (* instruction randomness, one per block *)
}

let mir_plan : mir_plan Q.t =
  let ( let* ) m f = Q.bind m f in
  let* n_blocks = Q.int_range 2 6 in
  let* n_regs = Q.int_range 3 6 in
  let* seeds = Q.list_size (Q.return n_blocks) Q.(int_bound 0xffffff) in
  Q.return { n_blocks; n_regs; seeds }

(* Deterministically expand a plan into a validated program. *)
let build_mir { n_blocks; n_regs; seeds } =
  let module B = Mir.Builder in
  let rng = Random.State.make (Array.of_list (n_blocks :: n_regs :: seeds)) in
  let rand n = Random.State.int rng n in
  let b = B.create () in
  B.declare_default_externs b;
  let g_scalar = B.global b "gx" in
  let g_arr = B.global b ~size:3 "garr" in
  (* a callee with its own memory traffic, called from main: exercises
     summaries, call pseudo-stores, and checker frame stacking *)
  B.func b "aux" ~nparams:1 (fun fb params ->
      let loc = B.local fb "auxloc" in
      let p0 =
        match params with
        | p :: _ -> p
        | [] -> assert false
      in
      B.store fb (Mir.Addr.Direct loc) (Mir.Operand.reg p0);
      (match rand 3 with
      | 0 ->
          (* global writer: faithful summaries must go conservative *)
          B.store fb (Mir.Addr.Direct g_scalar) (Mir.Operand.reg p0)
      | 1 ->
          (* param-relative arithmetic only *)
          let r = B.binop fb Mir.Binop.Add (Mir.Operand.reg p0) (Mir.Operand.imm 1) in
          B.store fb (Mir.Addr.Direct loc) (Mir.Operand.reg r)
      | _ -> ());
      let out = B.load fb (Mir.Addr.Direct loc) in
      let done_l = B.new_label fb "auxdone" in
      let more_l = B.new_label fb "auxmore" in
      B.branch fb Mir.Cmp.Lt out (Mir.Operand.imm (rand 10)) done_l more_l;
      B.set_block fb more_l;
      let r2 = B.load fb (Mir.Addr.Direct loc) in
      B.output fb (Mir.Operand.reg r2);
      B.ret fb (Some (Mir.Operand.reg r2));
      B.set_block fb done_l;
      B.ret fb (Some (Mir.Operand.reg out)));
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.local fb "x" in
      let arr = B.local fb ~size:4 "larr" in
      B.reserve_regs fb n_regs;
      let labels =
        Array.init n_blocks (fun i ->
            if i = 0 then B.entry_label fb else B.new_label fb (Printf.sprintf "b%d" i))
      in
      let reg () = Mir.Reg.make (rand n_regs) in
      let operand () =
        if rand 3 = 0 then Mir.Operand.imm (rand 20 - 5) else Mir.Operand.reg (reg ())
      in
      let addr () =
        match rand 5 with
        | 0 -> Mir.Addr.Direct x
        | 1 -> Mir.Addr.Direct g_scalar
        | 2 -> Mir.Addr.Index (arr, operand ())
        | 3 -> Mir.Addr.Index (g_arr, Mir.Operand.imm (rand 3))
        | _ -> Mir.Addr.Indirect (reg ())
      in
      let emit_random () =
        match rand 9 with
        | 0 -> B.emit fb (Mir.Op.Const (reg (), rand 30 - 10))
        | 1 -> B.emit fb (Mir.Op.Move (reg (), operand ()))
        | 2 ->
            let op = List.nth Mir.Binop.all (rand (List.length Mir.Binop.all)) in
            B.emit fb (Mir.Op.Binop (reg (), op, operand (), operand ()))
        | 3 -> B.emit fb (Mir.Op.Load (reg (), addr ()))
        | 4 -> B.emit fb (Mir.Op.Store (addr (), operand ()))
        | 5 -> B.emit fb (Mir.Op.Addr_of (reg (), (if rand 2 = 0 then arr else g_arr), operand ()))
        | 6 -> B.emit fb (Mir.Op.Input (reg (), 0))
        | 7 ->
            B.emit fb
              (Mir.Op.Call { dst = Some (reg ()); callee = "aux"; args = [ operand () ] })
        | _ -> B.emit fb (Mir.Op.Output (operand ()))
      in
      Array.iteri
        (fun i lbl ->
          if i > 0 then B.set_block fb lbl;
          let len = 1 + rand 5 in
          for _ = 1 to len do
            emit_random ()
          done;
          (* terminator *)
          match rand 5 with
          | 0 | 1 ->
              let cmp = List.nth Mir.Cmp.all (rand (List.length Mir.Cmp.all)) in
              B.branch fb cmp (reg ()) (Mir.Operand.imm (rand 16 - 4))
                labels.(rand n_blocks) labels.(rand n_blocks)
          | 2 -> B.ret fb (Some (operand ()))
          | 3 ->
              if i + 1 < n_blocks then B.jump fb labels.(i + 1)
              else B.ret fb None
          | _ -> B.jump fb labels.(rand n_blocks))
        labels;
      (* Blocks created but never entered (unused labels) would fail
         finish; the loop above enters every label. *)
      ());
  B.finish b

let mir_program : Mir.Program.t Q.t = Q.map build_mir mir_plan
