(* The observability layer: registry semantics (idempotent registration,
   deterministic merge across domains, stability filtering), span timers,
   manifests, the JSONL event sink, and the compact JSON encoder. *)

module R = Ipds_obs.Registry
module J = Ipds_obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1)) in
  go 0

(* ---------- registry ---------- *)

let test_counter_basics () =
  let c = R.counter "test.counter.basics" in
  check_int "starts at zero" 0 (R.counter_value c);
  R.incr c;
  R.add c 41;
  check_int "incr + add" 42 (R.counter_value c);
  (* registration is idempotent: the same name is the same cells *)
  let c' = R.counter "test.counter.basics" in
  R.incr c';
  check_int "same name, same counter" 43 (R.counter_value c);
  R.counter_reset c;
  check_int "reset" 0 (R.counter_value c)

let test_kind_mismatch () =
  ignore (R.counter "test.kind.mismatch");
  check "gauge over counter name rejected" true
    (match R.gauge "test.kind.mismatch" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_gauge_max () =
  let g = R.gauge "test.gauge.max" in
  R.gauge_max g 3;
  R.gauge_max g 7;
  R.gauge_max g 5;
  check_int "max wins" 7 (R.gauge_value g);
  R.gauge_max g (-2);
  check_int "clamped at zero, never lowers" 7 (R.gauge_value g)

let test_histogram_buckets () =
  let h = R.histogram "test.histogram.buckets" ~bounds:[| 1; 10; 100 |] in
  List.iter (R.observe h) [ 0; 1; 2; 10; 11; 100; 101; 5000 ];
  let v = R.histogram_value h in
  check_int "count" 8 v.R.count;
  check_int "sum" (0 + 1 + 2 + 10 + 11 + 100 + 101 + 5000) v.R.sum;
  check "bucket layout" true (v.R.counts = [| 2; 2; 2; 2 |])

let test_multi_domain_merge () =
  let c = R.counter "test.multidomain.counter" in
  let h = R.histogram "test.multidomain.hist" ~bounds:[| 8 |] in
  let g = R.gauge "test.multidomain.gauge" in
  let per_domain = 10_000 in
  let domains =
    List.init 8 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              R.incr c;
              R.observe h (i land 15);
              if i = per_domain then R.gauge_max g (d + 1)
            done))
  in
  List.iter Domain.join domains;
  check_int "counter merges to exact total" (8 * per_domain) (R.counter_value c);
  check_int "histogram count merges" (8 * per_domain) (R.histogram_value h).R.count;
  check_int "gauge merges to max" 8 (R.gauge_value g)

let test_snapshot_stability () =
  let s = R.counter "test.stability.stable" in
  let u = R.counter ~stable:false "test.stability.unstable" in
  R.incr s;
  R.incr u;
  let names stability =
    List.map fst (R.snapshot ~stability ())
    |> List.filter (fun n -> contains n "test.stability.")
  in
  check "stable filter" true (names `Stable = [ "test.stability.stable" ]);
  check "unstable filter" true (names `Unstable = [ "test.stability.unstable" ]);
  check_int "all" 2 (List.length (names `All))

let test_snapshot_json_shape () =
  let c = R.counter "test.jsonshape.counter" in
  R.add c 5;
  let s = J.to_string (R.snapshot_json ()) in
  check "counter renders as bare int" true
    (contains s "\"test.jsonshape.counter\":5")

(* ---------- spans ---------- *)

let test_spans () =
  Ipds_obs.Span.clear "test.span";
  check "unknown span" true (Ipds_obs.Span.get "test.span" = (0, 0.));
  let r = Ipds_obs.Span.time "test.span" (fun () -> 42) in
  check_int "passes result through" 42 r;
  (match Ipds_obs.Span.time "test.span" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected exception to propagate");
  let count, seconds = Ipds_obs.Span.get "test.span" in
  check_int "both entries counted (incl. raising one)" 2 count;
  check "non-negative time" true (seconds >= 0.);
  Ipds_obs.Span.record "test.span" 1.5;
  let _, seconds' = Ipds_obs.Span.get "test.span" in
  check "record accumulates" true (seconds' >= 1.5)

(* ---------- manifest ---------- *)

let test_manifest () =
  Ipds_obs.Manifest.reset ();
  Ipds_obs.Manifest.set_string "tool" "test";
  Ipds_obs.Manifest.set_int "seed" 7;
  Ipds_obs.Manifest.set_int "seed" 8;  (* last write wins *)
  check_str "sorted fields, last write wins"
    "{\"seed\":8,\"tool\":\"test\"}"
    (J.to_string (Ipds_obs.Manifest.to_json ()));
  Ipds_obs.Manifest.reset ()

(* ---------- events ---------- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_events_stream () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-obs-test-%d.jsonl" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Ipds_obs.Manifest.reset ();
      Ipds_obs.Manifest.set_string "tool" "test-events";
      check "disabled before set_path" true (not (Ipds_obs.Events.enabled ()));
      Ipds_obs.Events.set_path (Some path);
      check "enabled" true (Ipds_obs.Events.enabled ());
      Ipds_obs.Events.emit ~kind:"alpha" [ ("x", J.Int 1) ];
      Ipds_obs.Events.emit ~kind:"beta" [ ("y", J.String "two") ];
      Ipds_obs.Events.close ();
      check "disabled after close" true (not (Ipds_obs.Events.enabled ()));
      let lines = read_lines path in
      check_int "manifest + 2 events" 3 (List.length lines);
      (* every line must be one complete JSON object *)
      let docs = List.map Ipds_harness.Json.of_string lines in
      let member k d = Ipds_harness.Json.member k d in
      let kind d =
        match member "kind" d with
        | Some (Ipds_harness.Json.String s) -> s
        | _ -> "?"
      in
      check "kinds in order" true
        (List.map kind docs = [ "manifest"; "alpha"; "beta" ]);
      List.iteri
        (fun i d ->
          check "seq increments" true
            (member "seq" d = Some (Ipds_harness.Json.Int i));
          check "has ts" true (member "ts" d <> None))
        docs;
      (match List.hd docs with
      | d -> (
          match member "manifest" d with
          | Some m ->
              check "manifest embedded" true
                (Ipds_harness.Json.member "tool" m
                = Some (Ipds_harness.Json.String "test-events"))
          | None -> Alcotest.fail "first line lacks manifest"));
      Ipds_obs.Manifest.reset ())

(* ---------- compact JSON encoder ---------- *)

let test_obs_json () =
  let doc =
    J.Obj
      [
        ("s", J.String "a\"b\n\twith \xe2\x82\xac");
        ("i", J.Int (-3));
        ("f", J.Float 0.5);
        ("nan", J.Float Float.nan);
        ("l", J.List [ J.Bool true; J.Null ]);
      ]
  in
  let s = J.to_string doc in
  check "single line" true (not (String.contains s '\n'));
  check "escapes quote" true (contains s "a\\\"b");
  check "non-finite floats are null" true (contains s "\"nan\":null");
  (* compact form must be readable back by the harness parser *)
  let back = Ipds_harness.Json.of_string s in
  check "roundtrips through the harness parser" true
    (Ipds_harness.Json.member "i" back = Some (Ipds_harness.Json.Int (-3)))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge max" `Quick test_gauge_max;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "multi-domain merge" `Quick test_multi_domain_merge;
          Alcotest.test_case "stability filter" `Quick test_snapshot_stability;
          Alcotest.test_case "snapshot json shape" `Quick test_snapshot_json_shape;
        ] );
      ( "spans",
        [ Alcotest.test_case "accumulation" `Quick test_spans ] );
      ( "manifest",
        [ Alcotest.test_case "fields" `Quick test_manifest ] );
      ( "events",
        [ Alcotest.test_case "jsonl stream" `Quick test_events_stream ] );
      ( "json",
        [ Alcotest.test_case "compact encoder" `Quick test_obs_json ] );
    ]
