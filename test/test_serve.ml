(* Property/fuzz tests for the verdict-server wire protocol: frame
   encode→decode round trips, and the corruption contract — every
   byte flip and every truncation of a valid frame stream must yield a
   typed protocol error, never an exception (mirrors test_artifact's
   corruption style). *)

module P = Ipds_serve.Protocol
module Core = Ipds_core
module Q = QCheck2.Gen

let ( let* ) = Q.bind
let check = Alcotest.(check bool)

(* ---------- generators ---------- *)

let status : Core.Status.t Q.t =
  Q.oneofl [ Core.Status.Taken; Core.Status.Not_taken; Core.Status.Unknown ]

let verdict : Core.Checker.alarm Q.t =
  let* fname = Q.oneofl [ "main"; "aux"; "" ] in
  let* branch_pc = Gen.wide_int in
  let* expected = status in
  let* actual_taken = Q.bool in
  let* sequence = Q.int_range 0 100_000 in
  Q.return { Core.Checker.fname; branch_pc; expected; actual_taken; sequence }

let error_code : P.error_code Q.t =
  Q.oneofl
    [
      P.Bad_magic; P.Bad_version; P.Bad_crc; P.Oversized; P.Truncated;
      P.Unknown_frame; P.Malformed; P.Bad_state; P.Unknown_artifact;
      P.Corrupt_artifact; P.Timeout; P.Server_error; P.Overloaded;
      P.Unavailable;
    ]

let binary_string : string Q.t =
  let* n = Q.int_range 0 64 in
  Q.string_size ~gen:(Q.char_range '\000' '\255') (Q.return n)

let frame : P.frame Q.t =
  Q.oneof
    [
      Q.map (fun k -> P.Load_key k) binary_string;
      (let* name = Q.oneofl [ "telnetd"; "x"; "" ] in
       let* image = binary_string in
       Q.return (P.Load_image { name; image }));
      Q.return P.Begin_trace;
      Q.map
        (fun evs -> P.Branch_events evs)
        (Q.list_size (Q.int_range 0 40) Gen.event);
      Q.return P.End_trace;
      (let* name = Q.oneofl [ "telnetd"; "" ] in
       let* cached = Q.bool in
       Q.return (P.Loaded { name; cached }));
      Q.return P.Trace_started;
      Q.map (fun vs -> P.Verdicts vs) (Q.list_size (Q.int_range 0 20) verdict);
      (let* total_events = Gen.wide_int in
       let* total_branches = Q.int_range 0 max_int in
       let* total_alarms = Q.int_range 0 1000 in
       Q.return
         (P.Trace_summary { P.total_events; total_branches; total_alarms }));
      (let* code = error_code in
       let* detail = Q.oneofl [ "bad thing"; ""; "x" ] in
       Q.return (P.Error { P.code; detail }));
      Q.map (fun k -> P.Fetch_artifact k) binary_string;
      (let* key = binary_string in
       let* image = binary_string in
       Q.return (P.Push_artifact { key; image }));
      (let* key = binary_string in
       let* image = binary_string in
       Q.return (P.Artifact_data { key; image }));
      (let* key = binary_string in
       let* stored = Q.bool in
       Q.return (P.Artifact_pushed { key; stored }));
    ]

let frames : P.frame list Q.t = Q.list_size (Q.int_range 1 8) frame

let encode_stream fs =
  String.concat "" (List.map (fun f -> Bytes.to_string (P.encode_frame f)) fs)

(* ---------- round trip ---------- *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"frame stream encode/decode round trip" ~count:300
    frames (fun fs ->
      match P.decode_string (encode_stream fs) with
      | Ok fs' -> fs' = fs
      | Error _ -> false)

(* ---------- corruption: every byte flip is a typed error ---------- *)

(* A fixed, representative stream: every client/server frame kind. *)
let sample_stream () =
  encode_stream
    [
      P.Load_key "telnetd-key";
      P.Load_image { name = "telnetd"; image = "\x00\x01binary\xff" };
      P.Begin_trace;
      P.Branch_events
        [
          {
            Ipds_machine.Event.fname = "main";
            iid = 3;
            pc = 0x1010;
            kind = Ipds_machine.Event.Branch { taken = true; target_pc = 0x1000 };
          };
          {
            Ipds_machine.Event.fname = "main";
            iid = 9;
            pc = 0x1020;
            kind = Ipds_machine.Event.Call { callee = "aux" };
          };
          { Ipds_machine.Event.fname = "aux"; iid = 1; pc = 0x2000; kind = Ipds_machine.Event.Ret };
        ];
      P.End_trace;
      P.Loaded { name = "telnetd"; cached = true };
      P.Trace_started;
      P.Verdicts
        [
          {
            Core.Checker.fname = "main";
            branch_pc = 0x1010;
            expected = Core.Status.Not_taken;
            actual_taken = true;
            sequence = 7;
          };
        ];
      P.Trace_summary { P.total_events = 3; total_branches = 1; total_alarms = 1 };
      P.Error { P.code = P.Timeout; detail = "session timed out" };
      P.Fetch_artifact "abcdef0123456789";
      P.Push_artifact { key = "abcdef0123456789"; image = "IPDS\x00raw\xfe" };
      P.Artifact_data { key = "abcdef0123456789"; image = "IPDS\x00raw\xfe" };
      P.Artifact_pushed { key = "abcdef0123456789"; stored = true };
    ]

let test_every_byte_flip_is_typed_error () =
  let s = sample_stream () in
  let decoded_ok = match P.decode_string s with Ok _ -> true | Error _ -> false in
  check "pristine stream decodes" true decoded_ok;
  List.iter
    (fun mask ->
      String.iteri
        (fun i _ ->
          let bad = Bytes.of_string s in
          Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor mask));
          (* never an exception, never a silent pass: the CRC covers
             header and payload, magic/version are checked first, so
             every single-byte flip must surface as a typed error *)
          match P.decode_string (Bytes.to_string bad) with
          | Ok _ ->
              Alcotest.failf "flip 0x%02x at byte %d went undetected" mask i
          | Error e -> (
              match e.P.code with
              | P.Bad_magic | P.Bad_version | P.Bad_crc | P.Oversized
              | P.Truncated | P.Unknown_frame | P.Malformed ->
                  ()
              | other ->
                  Alcotest.failf "flip 0x%02x at byte %d: unexpected code %s"
                    mask i
                    (P.error_code_to_string other))
          | exception e ->
              Alcotest.failf "flip 0x%02x at byte %d raised %s" mask i
                (Printexc.to_string e))
        s)
    [ 0x01; 0x40; 0x80 ]

(* ---------- truncation: boundary cuts are fine, mid-frame cuts are
   typed Truncated errors ---------- *)

let test_every_truncation_is_typed () =
  let fs =
    [
      P.Load_key "k";
      P.Begin_trace;
      P.Branch_events
        [ { Ipds_machine.Event.fname = "f"; iid = 0; pc = 1; kind = Ipds_machine.Event.Alu } ];
      P.End_trace;
    ]
  in
  let encoded = List.map (fun f -> Bytes.to_string (P.encode_frame f)) fs in
  let s = String.concat "" encoded in
  (* cumulative end offsets: a cut at one of these lands exactly between
     frames and must decode to the whole frames before it *)
  let boundaries =
    List.rev
      (List.fold_left
         (fun acc e ->
           match acc with
           | off :: _ -> (off + String.length e) :: acc
           | [] -> assert false)
         [ 0 ] encoded)
  in
  for len = 0 to String.length s do
    let prefix = String.sub s 0 len in
    match P.decode_string prefix with
    | Ok fs' ->
        if not (List.mem len boundaries) then
          Alcotest.failf "cut at %d (mid-frame) decoded Ok" len;
        let complete =
          List.length (List.filter (fun b -> b <> 0 && b <= len) boundaries)
        in
        check
          (Printf.sprintf "boundary cut at %d decodes the whole frames" len)
          true
          (fs' = List.filteri (fun i _ -> i < complete) fs)
    | Error e ->
        if List.mem len boundaries then
          Alcotest.failf "cut at %d (boundary) errored: %s" len
            (P.error_code_to_string e.P.code);
        check
          (Printf.sprintf "mid-frame cut at %d is Truncated" len)
          true (e.P.code = P.Truncated)
    | exception e ->
        Alcotest.failf "truncation to %d raised %s" len (Printexc.to_string e)
  done

let prop_truncation_never_raises =
  QCheck2.Test.make ~name:"random truncation: typed result, never an exception"
    ~count:200
    (let* fs = frames in
     let s = encode_stream fs in
     let* len = Q.int_range 0 (String.length s) in
     Q.return (String.sub s 0 len))
    (fun prefix ->
      match P.decode_string prefix with
      | Ok _ | Error _ -> true)

(* ---------- hand-crafted damage the flip test cannot reach ---------- *)

(* Rebuild a frame with an arbitrary tag/payload but a VALID CRC, to
   exercise the paths behind the checksum. *)
let forge ~tag payload =
  let plen = String.length payload in
  let b = Bytes.create (P.header_bytes + plen + P.trailer_bytes) in
  Bytes.blit_string P.magic 0 b 0 4;
  Bytes.set b 4 (Char.chr P.version);
  Bytes.set b 5 (Char.chr tag);
  for i = 0 to 3 do
    Bytes.set b (6 + i) (Char.chr ((plen lsr (8 * i)) land 0xFF))
  done;
  Bytes.blit_string payload 0 b P.header_bytes plen;
  let crc =
    Int32.to_int (Ipds_artifact.Crc32.bytes b ~pos:0 ~len:(P.header_bytes + plen))
    land 0xFFFF_FFFF
  in
  for i = 0 to 3 do
    Bytes.set b (P.header_bytes + plen + i) (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Bytes.to_string b

let expect_code name code s =
  match P.decode_string s with
  | Error e -> Alcotest.(check string) name (P.error_code_to_string code) (P.error_code_to_string e.P.code)
  | Ok _ -> Alcotest.failf "%s: decoded Ok" name
  | exception e -> Alcotest.failf "%s: raised %s" name (Printexc.to_string e)

let test_crafted_damage () =
  (* unknown tag, valid CRC *)
  expect_code "unknown tag" P.Unknown_frame (forge ~tag:9 "");
  (* known tag, valid CRC, garbage payload: string length field lies *)
  expect_code "malformed payload" P.Malformed (forge ~tag:1 "\xff\xff\xff\xff\xff\xff\xff\xff");
  (* empty payload where one is required *)
  expect_code "short payload" P.Malformed (forge ~tag:4 "");
  (* oversized length honoured before the CRC is even checked *)
  (let big = P.encode_frame (P.Load_image { name = "n"; image = String.make 4096 'x' }) in
   match P.decode_string ~max_frame:64 (Bytes.to_string big) with
   | Error e -> check "oversized is typed" true (e.P.code = P.Oversized)
   | Ok _ -> Alcotest.fail "oversized frame decoded Ok"
   | exception e -> Alcotest.failf "oversized raised %s" (Printexc.to_string e));
  (* wrong version byte *)
  (let s = Bytes.of_string (forge ~tag:3 "") in
   Bytes.set s 4 (Char.chr (P.version + 1));
   expect_code "version skew" P.Bad_version (Bytes.to_string s))

(* ---------- streaming fast path = generic decoder ---------- *)

(* The event-loop server streams Branch_events payloads through
   {!P.iter_branch_events} instead of materializing an event list; the
   two decoders must accept and reject byte-for-byte the same payloads
   and agree on every checker-relevant field. *)

type op = Op_call of string | Op_ret | Op_branch of int * bool | Op_other

let project (evs : Ipds_machine.Event.t list) =
  List.map
    (fun (e : Ipds_machine.Event.t) ->
      match e.Ipds_machine.Event.kind with
      | Ipds_machine.Event.Call { callee } -> Op_call callee
      | Ipds_machine.Event.Ret -> Op_ret
      | Ipds_machine.Event.Branch { taken; _ } ->
          Op_branch (e.Ipds_machine.Event.pc, taken)
      | _ -> Op_other)
    evs

let iter_result ?limit buf ~pos ~len =
  let acc = ref [] in
  match
    P.iter_branch_events ?limit buf ~pos ~len
      ~on_call:(fun c -> acc := Op_call c :: !acc)
      ~on_ret:(fun () -> acc := Op_ret :: !acc)
      ~on_branch:(fun ~pc ~taken -> acc := Op_branch (pc, taken) :: !acc)
      ~on_other:(fun () -> acc := Op_other :: !acc)
  with
  | n -> Ok (n, List.rev !acc)
  | exception P.Fast.Short -> Error "short"
  | exception P.Malformed_payload m -> Error m

let payload_span evs =
  let b = P.encode_frame (P.Branch_events evs) in
  (b, P.header_bytes, Bytes.length b - P.header_bytes - P.trailer_bytes)

let prop_fast_path_matches_decode =
  QCheck2.Test.make
    ~name:"streaming batch decode = generic decode (fields and count)"
    ~count:300
    (Q.list_size (Q.int_range 0 40) Gen.event)
    (fun evs ->
      let buf, pos, len = payload_span evs in
      match iter_result buf ~pos ~len with
      | Ok (n, ops) -> n = List.length evs && ops = project evs
      | Error m -> QCheck2.Test.fail_reportf "fast path rejected: %s" m)

let prop_fast_path_rejects_identically =
  QCheck2.Test.make
    ~name:"streaming batch decode rejects exactly what generic decode rejects"
    ~count:400
    (let* evs = Q.list_size (Q.int_range 0 20) Gen.event in
     let* flip = Q.option (Q.int_range 0 1000) in
     let* cut = Q.option (Q.int_range 0 1000) in
     Q.return (evs, flip, cut))
    (fun (evs, flip, cut) ->
      let buf, pos, len = payload_span evs in
      (* damage the payload: truncate and/or flip one byte *)
      let len =
        match cut with Some c when len > 0 -> min len (c mod (len + 1)) | _ -> len
      in
      (match flip with
      | Some f when len > 0 ->
          let i = pos + (f mod len) in
          Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0x81))
      | _ -> ());
      let generic =
        P.decode_span P.branch_events_tag buf ~pos ~len
      in
      match (generic, iter_result buf ~pos ~len) with
      | Ok (P.Branch_events evs'), Ok (n, ops) ->
          (* both accept: they must agree on what they decoded *)
          n = List.length evs' && ops = project evs'
      | Ok _, Ok _ -> false
      | Error _, Error _ -> true
      | Ok _, Error m ->
          QCheck2.Test.fail_reportf "generic accepted, fast rejected: %s" m
      | Error e, Ok _ ->
          QCheck2.Test.fail_reportf "generic rejected (%s), fast accepted"
            e.P.detail)

(* The detail strings for structurally bad payloads must match the
   generic decoder's exactly — clients see one vocabulary of typed
   errors no matter which server path decoded them. *)
let test_fast_path_details () =
  let reject payload =
    let b = Bytes.of_string payload in
    let generic =
      match P.decode_span P.branch_events_tag b ~pos:0 ~len:(Bytes.length b) with
      | Ok _ -> Alcotest.fail "generic decoder accepted a bad payload"
      | Error e -> e.P.detail
    in
    match iter_result b ~pos:0 ~len:(Bytes.length b) with
    | Ok _ -> Alcotest.fail "fast path accepted a bad payload"
    | Error m -> (generic, m)
  in
  (* list length out of range: 8 bytes of 0xff parse as a huge count *)
  let g, f = reject "\xff\xff\xff\xff\xff\xff\xff\xff" in
  Alcotest.(check string) "list length detail" g f;
  check "list length is the shared vocabulary" true
    (g = "list length out of range")

(* A decoder configured with a limit above the default must accept
   frames that fill it: string/list length bounds follow the effective
   max_frame, not the compile-time constant (they used to be pinned to
   the default, so raising --max-frame silently didn't work). *)
let test_raised_max_frame () =
  let image = String.make (P.default_max_frame + 16) 'y' in
  let big = Bytes.to_string (P.encode_frame (P.Load_image { name = "n"; image })) in
  (match P.decode_string ~max_frame:(2 * P.default_max_frame) big with
  | Ok [ P.Load_image { image = got; _ } ] ->
      check "above-default payload intact" true (String.equal got image)
  | Ok _ -> Alcotest.fail "unexpected decode shape"
  | Error e ->
      Alcotest.failf "raised limit still rejected: %s"
        (P.error_code_to_string e.P.code)
  | exception e -> Alcotest.failf "raised %s" (Printexc.to_string e));
  match P.decode_string big with
  | Error e -> check "default limit still oversized" true (e.P.code = P.Oversized)
  | Ok _ -> Alcotest.fail "default limit decoded an oversized frame"
  | exception e -> Alcotest.failf "raised %s" (Printexc.to_string e)

(* ---------- artifact fetch/push against a live server ---------- *)

(* The fetch/push frames carry untrusted input onto the server's disk,
   so this section exercises the whole trust boundary end-to-end:
   verified bytes round trip, forged or colliding bytes are refused
   with typed errors, and malformed keys never reach path
   construction. *)

module Serve = Ipds_serve
module W = Ipds_workloads.Workloads

let with_store_server f =
  let tmp name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-serve-%s-%d-%d" name (Unix.getpid ()) (Random.bits ()))
  in
  let dir = tmp "store" in
  Unix.mkdir dir 0o755;
  let sock = tmp "sock" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      Serve.Server.with_server
        ~config:{ Serve.Server.default_config with store_dir = Some dir }
        (`Unix sock)
        (fun _server ->
          let client = Serve.Client.connect (`Unix sock) in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close client)
            (fun () -> f client)))

let expect_err name code = function
  | Error (e : P.err) ->
      Alcotest.(check string)
        name
        (P.error_code_to_string code)
        (P.error_code_to_string e.P.code)
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" name (P.error_code_to_string code)

let test_push_fetch_roundtrip () =
  with_store_server (fun client ->
      let image =
        Ipds_artifact.Artifact.to_bytes
          (Core.System.cached_build (W.program (W.find "telnetd")))
      in
      let key = "e2e-roundtrip-key" in
      (match Serve.Client.push_artifact client ~key image with
      | Ok stored -> check "first push stores" true stored
      | Error e -> Alcotest.failf "push failed: %s" e.P.detail);
      (match Serve.Client.push_artifact client ~key image with
      | Ok stored -> check "identical re-push is a duplicate" false stored
      | Error e -> Alcotest.failf "re-push failed: %s" e.P.detail);
      (match Serve.Client.fetch_artifact client key with
      | Ok got -> check "fetched bytes identical" true (Bytes.equal got image)
      | Error e -> Alcotest.failf "fetch failed: %s" e.P.detail);
      (* the pushed artifact is immediately loadable for checking *)
      match Serve.Client.load_key client key with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "load_key after push failed: %s" e.P.detail)

let test_push_rejects_forgery () =
  with_store_server (fun client ->
      let image =
        Ipds_artifact.Artifact.to_bytes
          (Core.System.cached_build (W.program (W.find "crond")))
      in
      (* flip one payload byte: the container digest no longer matches,
         so the server must refuse to publish — typed, not an exception,
         and nothing lands in the store *)
      let forged = Bytes.copy image in
      let i = Bytes.length forged / 2 in
      Bytes.set forged i (Char.chr (Char.code (Bytes.get forged i) lxor 0x20));
      expect_err "forged push rejected" P.Corrupt_artifact
        (Serve.Client.push_artifact client ~key:"e2e-forged-key" forged);
      (* session closed after the typed error; reconnect happens via a
         fresh with_store_server in the next test.  Garbage that is not
         even a container is rejected the same way. *)
      ())

let test_push_rejects_garbage_and_collision () =
  with_store_server (fun client ->
      expect_err "garbage push rejected" P.Corrupt_artifact
        (Serve.Client.push_artifact client ~key:"e2e-garbage-key"
           (Bytes.of_string "not a container at all")));
  with_store_server (fun client ->
      let img w =
        Ipds_artifact.Artifact.to_bytes
          (Core.System.cached_build (W.program (W.find w)))
      in
      let key = "e2e-collision-key" in
      (match Serve.Client.push_artifact client ~key (img "telnetd") with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "seed push failed: %s" e.P.detail);
      expect_err "colliding push rejected" P.Corrupt_artifact
        (Serve.Client.push_artifact client ~key (img "httpd")))

let test_fetch_typed_misses () =
  with_store_server (fun client ->
      expect_err "unknown key" P.Unknown_artifact
        (Serve.Client.fetch_artifact client "e2e-absent-key"));
  (* a malformed key must be a typed error from the boundary check,
     never an Invalid_argument escaping path construction *)
  List.iter
    (fun key ->
      with_store_server (fun client ->
          expect_err
            (Printf.sprintf "malformed key %S" key)
            P.Unknown_artifact
            (Serve.Client.fetch_artifact client key)))
    [ "x"; ""; "../../etc/passwd"; ".hidden" ]

let () =
  Random.self_init ();
  Alcotest.run "serve-protocol"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          Alcotest.test_case "crafted damage" `Quick test_crafted_damage;
          Alcotest.test_case "raised max_frame" `Quick test_raised_max_frame;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "every byte flip" `Quick test_every_byte_flip_is_typed_error;
          Alcotest.test_case "every truncation" `Quick test_every_truncation_is_typed;
          QCheck_alcotest.to_alcotest prop_truncation_never_raises;
        ] );
      ( "fast-path",
        [
          QCheck_alcotest.to_alcotest prop_fast_path_matches_decode;
          QCheck_alcotest.to_alcotest prop_fast_path_rejects_identically;
          Alcotest.test_case "shared error vocabulary" `Quick
            test_fast_path_details;
        ] );
      ( "artifact-sharing",
        [
          Alcotest.test_case "push/fetch round trip" `Quick
            test_push_fetch_roundtrip;
          Alcotest.test_case "forged push rejected" `Quick
            test_push_rejects_forgery;
          Alcotest.test_case "garbage + collision rejected" `Quick
            test_push_rejects_garbage_and_collision;
          Alcotest.test_case "typed fetch misses" `Quick test_fetch_typed_misses;
        ] );
    ]
