(* Tests for the MiniC front end: lexing, parsing, code generation, and
   end-to-end execution semantics. *)

module M = Ipds_machine
module Minic = Ipds_minic

let check = Alcotest.(check bool)

let run ?(inputs = M.Input_script.constant 0) src =
  M.Interp.run (Minic.Minic.compile src) { M.Interp.default_config with inputs }

let outputs src = (run src).M.Interp.outputs

let test_arith_precedence () =
  check "precedence" true
    (outputs {| int main() { output(2 + 3 * 4); output((2 + 3) * 4); output(10 - 2 - 3); return 0; } |}
    = [ 14; 20; 5 ])

let test_comparisons_as_values () =
  check "booleans" true
    (outputs {| int main() { output(3 < 4); output(4 < 3); output(!(4 < 3)); return 0; } |}
    = [ 1; 0; 1 ])

let test_if_else_chains () =
  let src =
    {|
int classify(int x) {
  if (x < 0) { return 0; }
  if (x == 0) { return 1; }
  if (x < 10) { return 2; } else { return 3; }
}
int main() {
  output(classify(0 - 5));
  output(classify(0));
  output(classify(5));
  output(classify(50));
  return 0;
}
|}
  in
  check "classify" true (outputs src = [ 0; 1; 2; 3 ])

let test_while_for () =
  let src =
    {|
int main() {
  int s;
  int i;
  s = 0;
  for (i = 1; i <= 5; i = i + 1) { s = s + i; }
  output(s);
  while (s > 10) { s = s - 4; }
  output(s);
  return 0;
}
|}
  in
  check "loops" true (outputs src = [ 15; 7 ])

let test_break_continue () =
  let src =
    {|
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (i == 2) { continue; }
    if (i == 5) { break; }
    output(i);
  }
  return 0;
}
|}
  in
  check "break/continue" true (outputs src = [ 0; 1; 3; 4 ])

let test_logical_short_circuit () =
  (* division by a variable that is zero would be observable if the
     right side evaluated; MiniC's division is total, so use input()
     consumption to detect evaluation instead. *)
  let src =
    {|
int main() {
  int a;
  a = 0;
  if (a == 1 && input(0) == 7) { output(1); } else { output(2); }
  if (a == 0 || input(0) == 7) { output(3); } else { output(4); }
  output(input(0));
  return 0;
}
|}
  in
  (* channel 0 provides [7]: neither condition should consume it; the
     final output reads it. *)
  check "short circuit" true
    ((run ~inputs:(M.Input_script.of_lists [ (0, [ 7 ]) ]) src).M.Interp.outputs
    = [ 2; 3; 7 ])

let test_arrays_pointers () =
  let src =
    {|
int sum(int *p, int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + p[0 + i]; }
  return s;
}
int main() {
  int a[4];
  int *q;
  a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
  q = &a[1];
  output(*q);
  *q = 99;
  output(a[1]);
  output(sum(&a[0], 4));
  return 0;
}
|}
  in
  check "arrays and pointers" true (outputs src = [ 20; 99; 179 ])

let test_globals () =
  let src =
    {|
int counter;
int bump() {
  counter = counter + 1;
  return counter;
}
int main() {
  output(bump());
  output(bump());
  output(counter);
  return 0;
}
|}
  in
  check "globals" true (outputs src = [ 1; 2; 2 ])

let test_recursion () =
  let src =
    {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { output(fib(10)); return 0; }
|}
  in
  check "fib" true (outputs src = [ 55 ])

let test_comments () =
  let src =
    {|
// a line comment
int main() {
  /* a block
     comment */
  output(1); // trailing
  return 0;
}
|}
  in
  check "comments" true (outputs src = [ 1 ])

let test_parse_errors () =
  let bad src =
    try
      ignore (Minic.Minic.compile src);
      false
    with Minic.Minic.Error _ -> true
  in
  check "missing semicolon" true (bad "int main() { output(1) return 0; }");
  check "unknown variable" true (bad "int main() { x = 1; return 0; }");
  check "unknown function" true (bad "int main() { frob(); return 0; }");
  check "bad arity" true
    (bad "int f(int a) { return a; } int main() { return f(1, 2); }");
  check "assignment to literal" true (bad "int main() { 3 = 4; return 0; }");
  check "break outside loop" true (bad "int main() { break; return 0; }");
  check "unclosed comment" true (bad "int main() { /* return 0; }");
  check "duplicate local" true (bad "int main() { int a; int a; return 0; }");
  check "shadowing an external" true (bad "int strcmp() { return 0; } int main() { return 0; }")

let test_dead_code_after_return () =
  check "code after return still compiles" true
    (outputs {| int main() { output(1); return 0; output(2); } |} = [ 1 ])

let test_input_channels () =
  let src = {| int main() { output(input(2)); output(input(2)); return 0; } |} in
  check "channels" true
    ((run ~inputs:(M.Input_script.of_lists [ (2, [ 4; 5 ]) ]) src).M.Interp.outputs
    = [ 4; 5 ])

let test_global_arrays_and_shadowing () =
  let src =
    {|
int tab[3];
int x;
int bump(int x) {
  // parameter shadows the global scalar
  tab[0] = tab[0] + x;
  return tab[0];
}
int main() {
  int tab;       // local scalar shadows the global array
  tab = 5;
  x = 2;
  output(bump(x));
  output(bump(10));
  output(tab);
  return 0;
}
|}
  in
  check "shadowing resolves innermost" true (outputs src = [ 2; 12; 5 ])

let test_while_with_complex_condition () =
  let src =
    {|
int main() {
  int a;
  int b;
  a = 0;
  b = 10;
  while (a < 5 && b > 7) {
    a = a + 1;
    b = b - 1;
  }
  output(a);
  output(b);
  return 0;
}
|}
  in
  check "compound loop condition" true (outputs src = [ 3; 7 ])

let test_deep_expression_nesting () =
  let src =
    {|
int main() {
  int a;
  a = ((1 + 2) * (3 + 4) - 5) % 7;
  output(a);
  output(!(a == 2) + (a != 2) + (a > 100));
  return 0;
}
|}
  in
  (* ((3*7)-5) % 7 = 16 % 7 = 2; then 0 + 0 + 0 *)
  check "nesting" true (outputs src = [ 2; 0 ])

let test_unary_minus_precedence () =
  check "unary minus binds tight" true
    (outputs {| int main() { output(-3 + 5); output(- (3 + 5)); return 0; } |}
    = [ 2; -8 ])

let prop_generated_programs_compile_and_run =
  QCheck2.Test.make ~name:"generated MiniC compiles and runs" ~count:150
    Gen.minic_ast (fun ast ->
      let p = Minic.Codegen.compile ast in
      Ipds_mir.Validate.check p = []
      &&
      let o =
        M.Interp.run p
          {
            M.Interp.default_config with
            max_steps = 5000;
            inputs = M.Input_script.random ~seed:3 ();
          }
      in
      o.M.Interp.steps <= 5000)

let () =
  Alcotest.run "minic"
    [
      ( "semantics",
        [
          Alcotest.test_case "precedence" `Quick test_arith_precedence;
          Alcotest.test_case "comparisons as values" `Quick test_comparisons_as_values;
          Alcotest.test_case "if/else chains" `Quick test_if_else_chains;
          Alcotest.test_case "while/for" `Quick test_while_for;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "short circuit" `Quick test_logical_short_circuit;
          Alcotest.test_case "arrays/pointers" `Quick test_arrays_pointers;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "input channels" `Quick test_input_channels;
          Alcotest.test_case "global arrays/shadowing" `Quick test_global_arrays_and_shadowing;
          Alcotest.test_case "compound conditions" `Quick test_while_with_complex_condition;
          Alcotest.test_case "deep nesting" `Quick test_deep_expression_nesting;
          Alcotest.test_case "unary minus" `Quick test_unary_minus_precedence;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "dead code" `Quick test_dead_code_after_return;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_generated_programs_compile_and_run ] );
    ]
