(* Tests for CFG construction, dominators, the instruction-level point
   graph, and branch-edge regions. *)

module Mir = Ipds_mir
module Cfg = Ipds_cfg.Cfg
module Dom = Ipds_cfg.Dominators
module Pg = Ipds_cfg.Point_graph
module Region = Ipds_cfg.Region

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A diamond with a loop back edge:
     entry -> (a | b) -> join -> entry | exit *)
let diamond_loop () =
  let src =
    {|
func main() {
 var x
entry:
  r0 = load x
  br lt r0, 5, a, b
a:
  r1 = 1
  jmp join
b:
  r2 = 2
  jmp join
join:
  r3 = load x
  br lt r3, 10, entry, exit
exit:
  ret
}
|}
  in
  Mir.Program.find_func_exn (Mir.Parser.program_of_string src) "main"

let test_succs_preds () =
  let f = diamond_loop () in
  let cfg = Cfg.make f in
  check_int "blocks" 5 (Cfg.n_blocks cfg);
  check "entry succs" true (List.sort compare (Cfg.succs cfg 0) = [ 1; 2 ]);
  check "join preds" true (List.sort compare (Cfg.preds cfg 3) = [ 1; 2 ]);
  check "entry has back edge pred" true (List.mem 3 (Cfg.preds cfg 0));
  check "exit no succs" true (Cfg.succs cfg 4 = [])

let test_rpo_reachable () =
  let f = diamond_loop () in
  let cfg = Cfg.make f in
  let rpo = Cfg.reverse_postorder cfg in
  check_int "rpo covers all (all reachable)" 5 (Array.length rpo);
  check_int "rpo starts at entry" 0 rpo.(0);
  check "all reachable" true (Array.for_all (fun x -> x) (Cfg.reachable cfg))

let test_unreachable_block () =
  let src =
    {|
func main() {
entry:
  ret
island:
  jmp island
}
|}
  in
  let f = Mir.Program.find_func_exn (Mir.Parser.program_of_string src) "main" in
  let cfg = Cfg.make f in
  check "island unreachable" false (Cfg.reachable cfg).(1);
  check_int "rpo excludes island" 1 (Array.length (Cfg.reverse_postorder cfg))

let test_dominators () =
  let f = diamond_loop () in
  let cfg = Cfg.make f in
  let dom = Dom.compute cfg in
  check "entry dominates all" true
    (List.for_all (fun b -> Dom.dominates dom 0 b) [ 0; 1; 2; 3; 4 ]);
  check "a does not dominate join" false (Dom.dominates dom 1 3);
  check "join dominates exit" true (Dom.dominates dom 3 4);
  check "idom of join is entry" true (Dom.idom dom 3 = Some 0);
  check "idom of entry is none" true (Dom.idom dom 0 = None);
  check "dominance is reflexive" true (Dom.dominates dom 3 3)

let test_dominates_point () =
  let f = diamond_loop () in
  let cfg = Cfg.make f in
  let dom = Dom.compute cfg in
  (* iid 0 = load in entry, iid 1 = branch in entry, iid 8 = load in join *)
  check "earlier instr dominates later in same block" true
    (Dom.dominates_point dom f 0 1);
  check "later does not dominate earlier" false (Dom.dominates_point dom f 1 0);
  check "entry load dominates join load" true (Dom.dominates_point dom f 0 8);
  check "side block instr does not dominate join" false
    (Dom.dominates_point dom f 2 6)

let test_point_graph () =
  let f = diamond_loop () in
  let pg = Pg.make f in
  check_int "points = instr count" f.Mir.Func.instr_count (Pg.n_points pg);
  (* body instruction flows to next / terminator *)
  check "load flows to branch" true (Pg.succs pg 0 = [ 1 ]);
  (* entry branch flows to first points of a and b *)
  check "branch flows to both targets" true
    (List.sort compare (Pg.succs pg 1) = [ 2; 4 ]);
  check "return has no successors" true
    (Pg.succs pg f.Mir.Func.blocks.(4).Mir.Block.term_iid = [])

let test_reachability_avoiding () =
  let f = diamond_loop () in
  let pg = Pg.make f in
  (* From the entry branch, avoiding block a's instruction (iid 2), the
     join is still reachable through b. *)
  let reach = Pg.reachable_from pg ~avoid:(fun p -> p = 2) (Pg.succs pg 1) in
  check "join reachable avoiding a" true reach.(6);
  (* Avoiding both side blocks' first instructions cuts join off. *)
  let reach2 = Pg.reachable_from pg ~avoid:(fun p -> p = 2 || p = 4) (Pg.succs pg 1) in
  check "join unreachable avoiding both sides" false reach2.(6)

let test_co_reachability () =
  let f = diamond_loop () in
  let pg = Pg.make f in
  let join_branch = f.Mir.Func.blocks.(3).Mir.Block.term_iid in
  let co = Pg.co_reachable_to pg join_branch in
  check "entry load co-reaches join branch" true co.(0);
  check "join branch on its own cycle" true co.(join_branch);
  let exit_term = f.Mir.Func.blocks.(4).Mir.Block.term_iid in
  let co_exit = Pg.co_reachable_to pg exit_term in
  check "exit term not on cycle" false co_exit.(exit_term)

let test_regions () =
  let f = diamond_loop () in
  let entry_branch = f.Mir.Func.blocks.(0).Mir.Block.term_iid in
  let taken = Region.after_edge f ~branch_iid:entry_branch ~taken:true in
  (match taken.Region.stop with
  | Region.Next_branch b ->
      check_int "region a..join stops at join branch"
        f.Mir.Func.blocks.(3).Mir.Block.term_iid b
  | Region.Exits | Region.Loops_forever -> Alcotest.fail "expected Next_branch");
  (* region contains a's const and join's load, but no terminator iids *)
  check "region includes a's body" true (List.mem 2 taken.Region.instrs);
  check "region includes join's load" true (List.mem 6 taken.Region.instrs);
  check "region excludes jump terminators" false (List.mem 3 taken.Region.instrs);
  let entry_region = Region.from_entry f in
  check "entry region is the entry block body" true
    (entry_region.Region.instrs = [ 0 ]);
  let exit_region =
    Region.after_edge f ~branch_iid:f.Mir.Func.blocks.(3).Mir.Block.term_iid
      ~taken:false
  in
  check "not-taken join edge exits" true (exit_region.Region.stop = Region.Exits)

let test_region_jmp_cycle () =
  let src =
    {|
func main() {
entry:
  nop
  jmp loop
loop:
  nop
  jmp loop
}
|}
  in
  let f = Mir.Program.find_func_exn (Mir.Parser.program_of_string src) "main" in
  let r = Region.from_entry f in
  check "jump-only cycle detected" true (r.Region.stop = Region.Loops_forever);
  check_int "each block visited once" 2 (List.length r.Region.instrs)

let test_all_edges () =
  let f = diamond_loop () in
  check_int "two branches, four edges" 4 (List.length (Region.all_edges f))

let () =
  Alcotest.run "cfg"
    [
      ( "graph",
        [
          Alcotest.test_case "succs/preds" `Quick test_succs_preds;
          Alcotest.test_case "rpo/reachable" `Quick test_rpo_reachable;
          Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "block dominance" `Quick test_dominators;
          Alcotest.test_case "point dominance" `Quick test_dominates_point;
        ] );
      ( "points",
        [
          Alcotest.test_case "point graph" `Quick test_point_graph;
          Alcotest.test_case "reachability avoiding" `Quick test_reachability_avoiding;
          Alcotest.test_case "co-reachability" `Quick test_co_reachability;
        ] );
      ( "regions",
        [
          Alcotest.test_case "after edges" `Quick test_regions;
          Alcotest.test_case "jump cycle" `Quick test_region_jmp_cycle;
          Alcotest.test_case "all edges" `Quick test_all_edges;
        ] );
    ]
