(* End-to-end smoke test of the streaming verdict server (@serve-smoke):

   A. every server workload, tampered and untampered, checked remotely
      over a temp Unix socket — the verdict stream must be byte-identical
      to an in-process System.new_checker run; artifact loads are
      exercised cold and warm (LRU + store key path);
   B. robustness: garbage, truncated, oversized, corrupt, out-of-state
      and silent sessions all get typed error replies, are counted in
      the metrics, and leave the server serving;
   C. concurrency determinism: N concurrent client domains against
      --jobs 1 vs --jobs 4 produce identical per-session verdicts and an
      identical stable metrics section;
   D. lifecycle robustness: clients that vanish before reading replies
      must not kill the server (SIGPIPE), stop must return promptly with
      silent and mid-trace clients even under --timeout 0 (the reactor's
      self-pipe, not its poll period, bounds shutdown), the socket path
      must never hijack a non-socket file or a live server's socket (but
      must reclaim a stale one), and an unresolvable host must surface
      as the typed connect error;
   E. backpressure: a client that streams events without reading replies
      past the per-connection reply-queue bound (or the global in-flight
      cap) gets exactly one typed Overloaded error as the final frame
      before EOF, and the server keeps serving other sessions. *)

module P = Ipds_serve.Protocol
module Server = Ipds_serve.Server
module Client = Ipds_serve.Client
module W = Ipds_workloads.Workloads
module Core = Ipds_core
module M = Ipds_machine
module A = Ipds_artifact.Artifact
module Store = Ipds_artifact.Store
module Reg = Ipds_obs.Registry

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "SERVE SMOKE FAIL: %s\n%!" msg;
      exit 1)
    fmt

let section title = Printf.printf "--- %s ---\n%!" title

let ok = function
  | Ok v -> v
  | Error (e : P.err) ->
      fail "unexpected remote error %s: %s" (P.error_code_to_string e.P.code)
        e.P.detail

let cval name = Reg.counter_value (Reg.counter name)

let temp_path suffix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ipds-serve-smoke-%d%s" (Unix.getpid ()) suffix)

let rec chunks n = function
  | [] -> []
  | xs ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
      in
      let batch, rest = take n [] xs in
      batch :: chunks n rest

(* ---------- local reference runs ---------- *)

type local_run = {
  events : M.Event.t list;  (** checker-relevant, in commit order *)
  alarms : Core.Checker.alarm list;
  branches : int;
}

let local_run system program ~seed ~tamper =
  let checker = Core.System.new_checker system in
  let events = ref [] in
  let o =
    M.Interp.run program
      {
        M.Interp.default_config with
        max_steps = 60_000;
        inputs = M.Input_script.random ~seed ();
        checker = Some checker;
        tamper;
        record_trace = false;
        sink =
          Some
            (fun (e : M.Event.t) ->
              match e.M.Event.kind with
              | M.Event.Call _ | M.Event.Ret | M.Event.Branch _ ->
                  events := e :: !events
              | _ -> ());
      }
  in
  { events = List.rev !events; alarms = Core.Checker.alarms checker; branches = o.M.Interp.branches }

(* A tampered run for the workload's own vulnerability class; prefer a
   seed whose injection raises alarms so the equivalence check covers
   non-empty verdict streams. *)
let tampered_run system program w =
  let model =
    match W.tamper_model w with
    | `Stack_overflow -> M.Tamper.Stack_overflow
    | `Arbitrary_write -> M.Tamper.Arbitrary_write
  in
  let run_with seed =
    local_run system program ~seed
      ~tamper:
        (Some
           {
             M.Tamper.at_step = 40;
             site = M.Tamper.Mem_write { model; value = 0 };
             seed;
           })
  in
  let rec search seed best =
    if seed > 14 then best
    else
      let r = run_with seed in
      if r.alarms <> [] then r else search (seed + 1) best
  in
  search 1 (run_with 0)

(* ---------- remote session driving ---------- *)

let remote_check client run =
  ok (Client.begin_trace client);
  let verdicts = ref [] in
  List.iter
    (fun batch -> verdicts := !verdicts @ ok (Client.send_events client batch))
    (chunks 200 run.events);
  let summary = ok (Client.end_trace client) in
  (!verdicts, summary)

let render = List.map P.verdict_to_string

let assert_equivalent ~what run (verdicts, (summary : P.summary)) =
  if render verdicts <> render run.alarms then begin
    Printf.eprintf "local:\n%s\nremote:\n%s\n"
      (String.concat "\n" (render run.alarms))
      (String.concat "\n" (render verdicts));
    fail "%s: remote verdicts differ from in-process checking" what
  end;
  if verdicts <> run.alarms then
    fail "%s: verdict records differ structurally" what;
  if summary.P.total_events <> List.length run.events then
    fail "%s: summary events %d, sent %d" what summary.P.total_events
      (List.length run.events);
  if summary.P.total_branches <> run.branches then
    fail "%s: summary branches %d, local %d" what summary.P.total_branches
      run.branches;
  if summary.P.total_alarms <> List.length run.alarms then
    fail "%s: summary alarms %d, local %d" what summary.P.total_alarms
      (List.length run.alarms)

(* ---------- phase A: all workloads, cold + warm, tampered + not ---------- *)

let phase_a () =
  section "A: remote = local for every workload (cold/warm artifact cache)";
  let sock = temp_path "-a.sock" in
  let store_dir = temp_path "-store" in
  let store = Store.create ~dir:store_dir in
  let config =
    { Server.default_config with jobs = 2; cache_slots = 16; store_dir = Some store_dir }
  in
  let total_tampered_alarms = ref 0 in
  let misses0 = cval "serve.cache_misses" and hits0 = cval "serve.cache_hits" in
  Server.with_server ~config (`Unix sock) (fun _server ->
      List.iter
        (fun (w : W.t) ->
          let system = W.system w in
          let program = W.program w in
          let image = A.to_bytes system in
          let untampered = local_run system program ~seed:2006 ~tamper:None in
          let tampered = tampered_run system program w in
          total_tampered_alarms := !total_tampered_alarms + List.length tampered.alarms;
          (* cold: first session ships the image; the LRU must miss *)
          let c = Client.connect (`Unix sock) in
          if ok (Client.load_image c ~name:w.W.name image) then
            fail "%s: expected a cold LRU load" w.W.name;
          assert_equivalent ~what:(w.W.name ^ "/untampered") untampered
            (remote_check c untampered);
          assert_equivalent ~what:(w.W.name ^ "/tampered") tampered
            (remote_check c tampered);
          Client.close c;
          (* warm: a new session for the same image must hit the LRU *)
          let c = Client.connect (`Unix sock) in
          if not (ok (Client.load_image c ~name:w.W.name image)) then
            fail "%s: expected a warm LRU hit" w.W.name;
          assert_equivalent ~what:(w.W.name ^ "/warm") tampered
            (remote_check c tampered);
          Client.close c;
          (* the store-key path: publish, load cold, then warm *)
          let key = "smoke-" ^ w.W.name in
          Store.publish_system store key system;
          let c = Client.connect (`Unix sock) in
          if ok (Client.load_key c key) then
            fail "%s: expected a cold store load" w.W.name;
          assert_equivalent ~what:(w.W.name ^ "/store") untampered
            (remote_check c untampered);
          Client.close c;
          let c = Client.connect (`Unix sock) in
          if not (ok (Client.load_key c key)) then
            fail "%s: expected a warm store hit" w.W.name;
          Client.close c)
        W.all);
  let n = List.length W.all in
  let misses = cval "serve.cache_misses" - misses0
  and hits = cval "serve.cache_hits" - hits0 in
  (* per workload: image cold (miss), image warm (hit), key cold (miss),
     key warm (hit) *)
  if misses <> 2 * n then fail "LRU misses: %d, expected %d" misses (2 * n);
  if hits <> 2 * n then fail "LRU hits: %d, expected %d" hits (2 * n);
  if !total_tampered_alarms = 0 then
    fail "no tampered run raised any alarm across %d workloads" n;
  Printf.printf
    "A ok: %d workloads, %d tampered alarms total, LRU %d misses / %d hits\n%!"
    n !total_tampered_alarms misses hits;
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote store_dir)))

(* ---------- phase B: robustness ---------- *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let read_error_code fd =
  let reader = P.reader fd in
  match P.input_frame reader with
  | P.In_frame (P.Error e) -> e.P.code
  | P.In_frame _ -> fail "expected an Error frame"
  | P.In_eof -> fail "connection closed without an Error frame"
  | P.In_error e ->
      fail "transport error instead of an Error frame: %s"
        (P.error_code_to_string e.P.code)

let expect_error what sock bytes code =
  let fd = raw_connect sock in
  let b = Bytes.of_string bytes in
  (* The server may reply and cut the session from the frame header
     alone (e.g. oversized) while we are still writing the body; its
     error reply is already in our receive buffer, so EPIPE here is
     fine — we can still read the verdict. *)
  (try
     ignore (Unix.write fd b 0 (Bytes.length b));
     Unix.shutdown fd Unix.SHUTDOWN_SEND
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN), _, _) -> ());
  let got = read_error_code fd in
  if got <> code then
    fail "%s: expected %s, got %s" what (P.error_code_to_string code)
      (P.error_code_to_string got);
  Unix.close fd

let phase_b () =
  section "B: malformed/oversized/stale input -> typed errors, no crash";
  let sock = temp_path "-b.sock" in
  let config =
    {
      Server.default_config with
      jobs = 2;
      max_frame = 65_536;
      session_timeout = 1.0;
    }
  in
  let w = W.find "telnetd" in
  let system = W.system w in
  let image = A.to_bytes system in
  let proto0 = cval "serve.protocol_errors"
  and state0 = cval "serve.state_errors"
  and timeouts0 = cval "serve.timeouts" in
  Server.with_server ~config (`Unix sock) (fun _server ->
      (* garbage bytes *)
      expect_error "garbage" sock "this is not a frame at all" P.Bad_magic;
      (* valid frame cut mid-way *)
      let whole = Bytes.to_string (P.encode_frame (P.Load_key "k")) in
      expect_error "truncated" sock
        (String.sub whole 0 (String.length whole - 3))
        P.Truncated;
      (* flipped CRC byte *)
      let bad = Bytes.of_string whole in
      let last = Bytes.length bad - 1 in
      Bytes.set bad last (Char.chr (Char.code (Bytes.get bad last) lxor 0x40));
      expect_error "bad crc" sock (Bytes.to_string bad) P.Bad_crc;
      (* wrong protocol version *)
      let skewed = Bytes.of_string whole in
      Bytes.set skewed 4 (Char.chr (P.version + 1));
      expect_error "version skew" sock (Bytes.to_string skewed) P.Bad_version;
      (* payload larger than the server's max_frame *)
      let big =
        P.encode_frame
          (P.Load_image { name = "n"; image = String.make 100_000 'x' })
      in
      expect_error "oversized" sock (Bytes.to_string big) P.Oversized;
      (* state machine violations *)
      let expect_rpc_error what result code =
        match result with
        | Ok _ -> fail "%s: expected %s" what (P.error_code_to_string code)
        | Error (e : P.err) ->
            if e.P.code <> code then
              fail "%s: expected %s, got %s" what
                (P.error_code_to_string code)
                (P.error_code_to_string e.P.code)
      in
      let c = Client.connect (`Unix sock) in
      expect_rpc_error "trace before load" (Client.begin_trace c) P.Bad_state;
      Client.close c;
      let c = Client.connect (`Unix sock) in
      expect_rpc_error "events outside trace" (Client.send_events c []) P.Bad_state;
      Client.close c;
      (* batch validation is client-side and precedes any frame, so it
         must not disturb the server-side error counters below *)
      let c = Client.connect (`Unix sock) in
      (match Client.trace ~batch:0 c with
      | exception Invalid_argument _ -> ()
      | Ok _ | Error _ -> fail "trace ~batch:0: expected Invalid_argument");
      (match Client.trace ~batch:(-3) c with
      | exception Invalid_argument _ -> ()
      | Ok _ | Error _ -> fail "trace ~batch:-3: expected Invalid_argument");
      Client.close c;
      let c = raw_connect sock in
      P.output_frame c P.Trace_started;
      (if read_error_code c <> P.Bad_state then
         fail "server-to-client frame: expected bad-state");
      Unix.close c;
      (* artifact errors *)
      let c = Client.connect (`Unix sock) in
      expect_rpc_error "unknown key" (Client.load_key c "no-such-key")
        P.Unknown_artifact;
      Client.close c;
      let corrupt = Bytes.copy image in
      Bytes.set corrupt
        (Bytes.length corrupt / 2)
        (Char.chr (Char.code (Bytes.get corrupt (Bytes.length corrupt / 2)) lxor 0x40));
      let c = Client.connect (`Unix sock) in
      expect_rpc_error "corrupt image" (Client.load_image c ~name:"bad" corrupt)
        P.Corrupt_artifact;
      Client.close c;
      (* a silent session runs into the server-side timeout *)
      let fd = raw_connect sock in
      (if read_error_code fd <> P.Timeout then fail "expected a session timeout");
      Unix.close fd;
      (* and after all that abuse the server still serves *)
      let run = local_run system (W.program w) ~seed:2006 ~tamper:None in
      let c = Client.connect (`Unix sock) in
      if ok (Client.load_image c ~name:w.W.name image) then
        fail "post-abuse: expected a cold load";
      assert_equivalent ~what:"post-abuse" run (remote_check c run);
      Client.close c);
  let proto = cval "serve.protocol_errors" - proto0
  and state = cval "serve.state_errors" - state0
  and timeouts = cval "serve.timeouts" - timeouts0 in
  (* garbage, truncated, bad-crc, version-skew, oversized, unknown-key,
     corrupt-image *)
  if proto <> 7 then fail "protocol_errors: %d, expected 7" proto;
  if state <> 3 then fail "state_errors: %d, expected 3" state;
  if timeouts <> 1 then fail "timeouts: %d, expected 1" timeouts;
  Printf.printf "B ok: %d protocol errors, %d state errors, %d timeout — all typed\n%!"
    proto state timeouts

(* ---------- phase C: concurrency determinism ---------- *)

let phase_c () =
  section "C: N concurrent clients, --jobs 1 vs 4: identical verdicts + stable metrics";
  (* precompute everything so the measured rounds do only protocol work *)
  let picks = [ "telnetd"; "wu-ftpd"; "xinetd" ] in
  let sessions =
    List.concat_map
      (fun name ->
        let w = W.find name in
        let system = W.system w in
        let program = W.program w in
        let image = A.to_bytes system in
        [
          (name, image, local_run system program ~seed:2006 ~tamper:None);
          (name, image, tampered_run system program w);
        ])
      picks
  in
  let round jobs =
    Reg.reset ();
    let sock = temp_path (Printf.sprintf "-c%d.sock" jobs) in
    let config = { Server.default_config with jobs; cache_slots = 16 } in
    let results =
      Server.with_server ~config (`Unix sock) (fun _server ->
          let domains =
            List.map
              (fun (name, image, run) ->
                Domain.spawn (fun () ->
                    let c = Client.connect (`Unix sock) in
                    Fun.protect
                      ~finally:(fun () -> Client.close c)
                      (fun () ->
                        ignore (ok (Client.load_image c ~name image));
                        let verdicts, summary = remote_check c run in
                        (name, render verdicts, summary))))
              sessions
          in
          List.map Domain.join domains)
    in
    let stable =
      Ipds_obs.Json.to_string (Reg.snapshot_json ~stability:`Stable ())
    in
    (results, stable)
  in
  let r1, s1 = round 1 in
  let r4, s4 = round 4 in
  if r1 <> r4 then fail "per-session verdicts differ between --jobs 1 and 4";
  if s1 <> s4 then begin
    Printf.eprintf "jobs=1: %s\njobs=4: %s\n" s1 s4;
    fail "stable metrics differ between --jobs 1 and 4"
  end;
  if String.length s1 <= 2 then fail "stable metrics are empty";
  (* sanity: the rounds really did serve traffic *)
  if cval "serve.sessions" <> List.length sessions then
    fail "sessions: %d, expected %d" (cval "serve.sessions")
      (List.length sessions);
  Printf.printf "C ok: %d concurrent sessions, verdicts and stable metrics byte-identical\n%!"
    (List.length sessions)

(* ---------- phase D: lifecycle robustness ---------- *)

let phase_d () =
  section "D: early disconnects, --timeout 0 shutdown, socket-path hygiene";
  let w = W.find "telnetd" in
  let system = W.system w in
  let image = A.to_bytes system in
  let run = local_run system (W.program w) ~seed:2006 ~tamper:None in
  (* D1: a client that fires requests and closes without ever reading a
     reply makes the server write into a closed peer.  With SIGPIPE
     ignored that is a per-session EPIPE; without it this whole test
     process (server domains included) would die here. *)
  let sock = temp_path "-d.sock" in
  Server.with_server (`Unix sock) (fun _server ->
      for _ = 1 to 3 do
        let fd = raw_connect sock in
        (try
           for _ = 1 to 5 do
             P.output_frame fd
               (P.Load_image { name = "rude"; image = Bytes.to_string image })
           done
         with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
        Unix.close fd
      done;
      (* give the workers a beat to hit the closed sockets *)
      Unix.sleepf 0.2;
      let c = Client.connect (`Unix sock) in
      ignore (ok (Client.load_image c ~name:w.W.name image));
      assert_equivalent ~what:"post-disconnect" run (remote_check c run);
      Client.close c);
  (* D2: with session_timeout = 0 a session has no idle policing and
     the reactor parks in a long select; stop must still return
     promptly — the self-pipe, not the poll period, bounds shutdown —
     with both a silent connection and a live mid-trace session open. *)
  let sock = temp_path "-d0.sock" in
  let config = { Server.default_config with session_timeout = 0. } in
  let open_fds = ref [] in
  let t0 = Unix.gettimeofday () in
  Server.with_server ~config (`Unix sock) (fun _server ->
      let fd = raw_connect sock in
      open_fds := fd :: !open_fds;
      let c = Client.connect (`Unix sock) in
      ignore (ok (Client.load_image c ~name:w.W.name image));
      let tr = ok (Client.trace ~batch:10 c) in
      List.iter tr.Client.sink (List.filteri (fun i _ -> i < 50) run.events);
      (* let the reactor absorb both sessions and park in select *)
      Unix.sleepf 0.2);
  let elapsed = Unix.gettimeofday () -. t0 in
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !open_fds;
  if elapsed > 10. then
    fail "stop with --timeout 0 and parked sessions took %.1fs" elapsed;
  (* D3: socket-path hygiene.  A regular file must never be unlinked... *)
  let precious = temp_path "-precious" in
  let oc = open_out precious in
  output_string oc "not a socket";
  close_out oc;
  (match Server.start (`Unix precious) with
  | server ->
      Server.stop server;
      fail "start hijacked a regular file at the socket path"
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ());
  (if (not (Sys.file_exists precious)) || In_channel.with_open_bin precious In_channel.input_all <> "not a socket"
   then fail "socket-path claim damaged an unrelated file");
  Sys.remove precious;
  (* ...nor a socket a live server still answers on... *)
  let sock = temp_path "-d3.sock" in
  Server.with_server (`Unix sock) (fun _server ->
      (match Server.start (`Unix sock) with
      | second ->
          Server.stop second;
          fail "second server hijacked a live socket"
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ());
      (* the incumbent is unharmed *)
      let c = Client.connect (`Unix sock) in
      ignore (ok (Client.load_image c ~name:w.W.name image));
      Client.close c);
  (* ...but a stale socket file (no listener behind it) is reclaimed. *)
  let stale = temp_path "-stale.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;
  Server.with_server (`Unix stale) (fun _server ->
      let c = Client.connect (`Unix stale) in
      ignore (ok (Client.load_image c ~name:w.W.name image));
      Client.close c);
  (* D4: resolution failure keeps connect's Unix_error contract (the
     gethostbyname fallback used to leak a bare Not_found). *)
  (match Client.connect (`Tcp ("", 1)) with
  | c ->
      Client.close c;
      fail "connect to an unresolvable host succeeded"
  | exception Unix.Unix_error _ -> ()
  | exception e ->
      fail "unresolvable host raised %s, not Unix_error" (Printexc.to_string e));
  Printf.printf "D ok: SIGPIPE ignored, bounded stop, socket path safe, typed resolve\n%!"

(* ---------- phase E: backpressure / typed overload ---------- *)

(* Stream single-branch event frames at the server without ever reading
   a reply.  The replies back up through the socket into the server's
   bounded reply queue; once a bound would be exceeded the server must
   enqueue exactly one typed [Overloaded] error, stop reading, drain,
   and close — and keep serving everyone else. *)
let overload_round ~what config sock (prefix, branch_ev) w image run =
  let overloaded0 = cval "serve.overloaded" in
  Server.with_server ~config (`Unix sock) (fun _server ->
      let fd = raw_connect sock in
      let reader = P.reader fd in
      P.output_frame fd
        (P.Load_image { name = w.W.name; image = Bytes.to_string image });
      (match P.input_frame reader with
      | P.In_frame (P.Loaded _) -> ()
      | _ -> fail "%s: expected Loaded" what);
      P.output_frame fd P.Begin_trace;
      (match P.input_frame reader with
      | P.In_frame P.Trace_started -> ()
      | _ -> fail "%s: expected Trace_started" what);
      (* establish the call depth the flooded branch executes at *)
      if prefix <> [] then begin
        P.output_frame fd (P.Branch_events prefix);
        match P.input_frame reader with
        | P.In_frame (P.Verdicts _) -> ()
        | _ -> fail "%s: expected Verdicts for the prefix" what
      end;
      (* flood, nonblocking: stop when the server stops reading (it is
         overloaded and closing) or after a generous frame budget *)
      let frame = P.encode_frame (P.Branch_events [ branch_ev ]) in
      let n = Bytes.length frame in
      Unix.set_nonblock fd;
      let sent = ref 0 and stalled = ref false in
      (try
         while !sent < 60_000 && not !stalled do
           let off = ref 0 in
           while !off < n && not !stalled do
             match Unix.write fd frame !off (n - !off) with
             | k -> off := !off + k
             | exception
                 Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
                 match Unix.select [] [ fd ] [] 1.0 with
                 | _, [], _ -> stalled := true
                 | _ -> ())
           done;
           if !off = n then incr sent
         done
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
         stalled := true);
      if not !stalled then
        fail "%s: server absorbed %d unread replies without shedding" what !sent;
      (* now drain: queued verdicts, then exactly one Overloaded, then EOF *)
      Unix.clear_nonblock fd;
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      let verdicts = ref 0 and got_overload = ref false and eof = ref false in
      while not !eof do
        match P.input_frame reader with
        | P.In_frame (P.Verdicts _) when not !got_overload -> incr verdicts
        | P.In_frame (P.Error e)
          when e.P.code = P.Overloaded && not !got_overload ->
            got_overload := true
        | P.In_frame f ->
            fail "%s: unexpected frame after %d verdicts (overload=%b): %s"
              what !verdicts !got_overload
              (match f with
              | P.Error e -> "Error " ^ P.error_code_to_string e.P.code
              | _ -> "non-error")
        | P.In_eof -> eof := true
        | P.In_error _ when !got_overload ->
            (* The server closes with our unread flood bytes still in its
               receive queue, which Linux surfaces to us as a reset
               rather than a clean EOF; the typed error frame above is
               already in hand, so this is the expected end of stream. *)
            eof := true
        | P.In_error e ->
            fail "%s: transport error while draining: %s" what
              (P.error_code_to_string e.P.code)
      done;
      Unix.close fd;
      if not !got_overload then
        fail "%s: connection closed without a typed Overloaded error" what;
      if !verdicts = 0 then
        fail "%s: no verdicts drained before the overload frame" what;
      (* the shed connection must not have poisoned the server *)
      let c = Client.connect (`Unix sock) in
      if not (ok (Client.load_image c ~name:w.W.name image)) then
        fail "%s: expected a warm cache hit after shedding" what;
      assert_equivalent ~what:(what ^ "/post-overload") run (remote_check c run);
      Client.close c;
      !verdicts)
  |> fun verdicts ->
  if cval "serve.overloaded" - overloaded0 < 1 then
    fail "%s: serve.overloaded did not count the shed" what;
  verdicts

let phase_e () =
  section "E: unread replies past the bounds -> one typed Overloaded, then EOF";
  let w = W.find "telnetd" in
  let system = W.system w in
  let image = A.to_bytes system in
  let run = local_run system (W.program w) ~seed:2006 ~tamper:None in
  (* a real branch event from the reference run, fed after the call
     prefix that precedes it, keeps the flood state-valid: the branch
     replays at its genuine call depth, never the empty-stack guard *)
  let rec split_at_branch acc = function
    | [] -> fail "reference run has no branch event"
    | (e : M.Event.t) :: rest -> (
        match e.M.Event.kind with
        | M.Event.Branch _ -> (List.rev acc, e)
        | _ -> split_at_branch (e :: acc) rest)
  in
  let flood = split_at_branch [] run.events in
  (* per-connection reply-queue bound *)
  let v1 =
    overload_round ~what:"reply-queue"
      { Server.default_config with reply_queue_bytes = 1024 }
      (temp_path "-e1.sock") flood w image run
  in
  (* global in-flight cap, with a roomy per-connection bound *)
  let v2 =
    overload_round ~what:"inflight"
      { Server.default_config with inflight_bytes = 1024 }
      (temp_path "-e2.sock") flood w image run
  in
  Printf.printf
    "E ok: typed Overloaded after %d / %d unread verdict frames; server \
     survived both sheds\n\
     %!"
    v1 v2

let () =
  phase_a ();
  phase_b ();
  phase_c ();
  phase_d ();
  phase_e ();
  print_endline "serve smoke OK"
