(* Store fault-handling smoke test (@store-fault-smoke):

   Every way the artifact cache can rot or the filesystem can refuse
   service must surface as a typed miss/failure plus a counter — never
   a crash, never a silent lie:
   - a truncated entry is a corrupt miss and is repaired by the next
     publish;
   - a read fault on an entry that exists (a directory squatting on the
     entry path; EACCES when not root) counts as corrupt, distinct from
     a plain cold miss;
   - a publish into a blocked prefix (regular file where the shard
     directory belongs; read-only dir when not root) is a counted
     failed publish, and publish_system still does not raise;
   - short or hostile keys — remotely reachable through the artifact
     fetch/push frames — are typed unknown-artifact replies over the
     wire and typed misses in the library, with the server still
     serving afterwards.

   chmod-based faults are skipped under root (root bypasses permission
   bits), so the squatter faults above carry the determinism. *)

module A = Ipds_artifact.Artifact
module Store = Ipds_artifact.Store
module P = Ipds_serve.Protocol
module Server = Ipds_serve.Server
module Client = Ipds_serve.Client
module Core = Ipds_core
module W = Ipds_workloads.Workloads

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "STORE FAULT SMOKE FAIL: %s\n%!" msg;
      exit 1)
    fmt

let section title = Printf.printf "--- %s ---\n%!" title

let temp_path suffix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ipds-store-fault-%d%s" (Unix.getpid ()) suffix)

let rm_rf path =
  ignore (Sys.command (Printf.sprintf "chmod -R u+rwx %s 2>/dev/null; rm -rf %s"
                         (Filename.quote path) (Filename.quote path)))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let buf = really_input_string ic n in
  close_in ic;
  buf

let is_root = Unix.geteuid () = 0

let () =
  let dir = temp_path "-store" in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Store.create ~dir in
  let image = A.to_bytes (Core.System.cached_build (W.program (W.find "telnetd"))) in
  let c0 () = Store.counters () in

  section "1: truncated entry -> corrupt miss, repaired by republish";
  let key = "fault-truncated" in
  (match Store.publish_image store key image with
  | `Stored -> ()
  | _ -> fail "seed publish did not store");
  let path = Store.path_of_key store key in
  let whole = read_file path in
  write_file path (String.sub whole 0 (String.length whole / 3));
  let before = c0 () in
  if Store.load_system store key <> None then
    fail "truncated entry served as a hit";
  let after = c0 () in
  if after.Store.corrupt - before.Store.corrupt < 1 then
    fail "truncated entry not counted corrupt";
  (match Store.publish_image store key image with
  | `Stored -> ()
  | `Duplicate -> fail "truncated entry byte-compared as a duplicate"
  | `Collision -> fail "truncated entry misread as a collision"
  | `Failed m -> fail "repair publish failed: %s" m);
  (match Store.fetch_image store key with
  | `Image got when Bytes.equal got image -> ()
  | _ -> fail "repair did not restore the entry");
  Printf.printf "1 ok\n%!";

  section "2: read fault on an existing entry -> corrupt, not a cold miss";
  let key = "fault-unreadable" in
  ignore (Store.publish_image store key image);
  let path = Store.path_of_key store key in
  Sys.remove path;
  Unix.mkdir path 0o755;
  let before = c0 () in
  if Store.load_system store key <> None then fail "EISDIR entry served as a hit";
  (match Store.fetch_image store key with
  | `Corrupt _ -> ()
  | `Image _ -> fail "EISDIR entry fetched as an image"
  | `Miss -> fail "read fault downgraded to a plain miss");
  let after = c0 () in
  if after.Store.corrupt - before.Store.corrupt < 2 then
    fail "read faults not counted corrupt (got %d)"
      (after.Store.corrupt - before.Store.corrupt);
  if not is_root then begin
    let key = "fault-eacces" in
    ignore (Store.publish_image store key image);
    Unix.chmod (Store.path_of_key store key) 0o000;
    let before = c0 () in
    if Store.load_system store key <> None then
      fail "unreadable entry served as a hit";
    let after = c0 () in
    if after.Store.corrupt - before.Store.corrupt < 1 then
      fail "EACCES not counted corrupt"
  end;
  Printf.printf "2 ok%s\n%!" (if is_root then " (chmod leg skipped: root)" else "");

  section "3: blocked publish -> counted failure, no exception";
  let key = "pf-blocked" in
  (* a regular file squats where the 2-char shard directory belongs *)
  write_file (Filename.concat dir (String.sub key 0 2)) "squatter";
  let before = c0 () in
  (match Store.publish_image store key image with
  | `Failed _ -> ()
  | _ -> fail "publish into a blocked prefix did not fail");
  (* the system-level wrapper must swallow the same failure, counted *)
  Store.publish_system store key
    (Core.System.cached_build (W.program (W.find "telnetd")));
  let after = c0 () in
  if after.Store.publish_failed - before.Store.publish_failed <> 2 then
    fail "expected 2 counted publish failures, got %d"
      (after.Store.publish_failed - before.Store.publish_failed);
  if not is_root then begin
    let ro = temp_path "-ro-store" in
    Unix.mkdir ro 0o555;
    Fun.protect ~finally:(fun () -> rm_rf ro) @@ fun () ->
    let ro_store = Store.create ~dir:ro in
    let before = c0 () in
    (match Store.publish_image ro_store "ro-probe" image with
    | `Failed _ -> ()
    | _ -> fail "publish into a read-only dir did not fail");
    let after = c0 () in
    if after.Store.publish_failed - before.Store.publish_failed <> 1 then
      fail "read-only publish failure not counted"
  end;
  Printf.printf "3 ok%s\n%!" (if is_root then " (read-only-dir leg skipped: root)" else "");

  section "4: short/hostile keys over the wire -> typed replies, server lives";
  let sock = temp_path ".sock" in
  Server.with_server
    ~config:{ Server.default_config with store_dir = Some dir }
    (`Unix sock)
    (fun _server ->
      let probe key =
        (* each probe gets its own session: a typed error closes it *)
        let c = Client.connect (`Unix sock) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            (match Client.fetch_artifact c key with
            | Error e when e.P.code = P.Unknown_artifact -> ()
            | Error e ->
                fail "fetch %S: expected unknown-artifact, got %s" key
                  (P.error_code_to_string e.P.code)
            | Ok _ -> fail "fetch %S: hostile key served" key))
      in
      List.iter probe [ "x"; ""; "../../etc/passwd"; ".."; ".hidden"; "a/b" ];
      let c = Client.connect (`Unix sock) in
      (match Client.push_artifact c ~key:"x" image with
      | Error e when e.P.code = P.Unknown_artifact -> ()
      | Error e ->
          fail "short-key push: expected unknown-artifact, got %s"
            (P.error_code_to_string e.P.code)
      | Ok _ -> fail "short-key push accepted");
      Client.close c;
      (* after all the abuse, an honest session still works end-to-end *)
      let c = Client.connect (`Unix sock) in
      (match Client.push_artifact c ~key:"post-abuse-probe" image with
      | Ok true -> ()
      | Ok false -> fail "post-abuse push reported duplicate"
      | Error e -> fail "post-abuse push failed: %s" e.P.detail);
      (match Client.fetch_artifact c "post-abuse-probe" with
      | Ok got when Bytes.equal got image -> ()
      | Ok _ -> fail "post-abuse fetch returned different bytes"
      | Error e -> fail "post-abuse fetch failed: %s" e.P.detail);
      Client.close c);
  Printf.printf "4 ok\n%!";
  print_endline "store fault smoke OK"
