(* Unit and property tests for the MIR substrate: operators, builder,
   validation, layout, and the printer/parser round trip. *)

module Mir = Ipds_mir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- operators ---------- *)

let test_binop_eval () =
  check_int "add" 7 (Mir.Binop.eval Mir.Binop.Add 3 4);
  check_int "sub" (-1) (Mir.Binop.eval Mir.Binop.Sub 3 4);
  check_int "mul" 12 (Mir.Binop.eval Mir.Binop.Mul 3 4);
  check_int "div" 2 (Mir.Binop.eval Mir.Binop.Div 9 4);
  check_int "div0 is total" 0 (Mir.Binop.eval Mir.Binop.Div 9 0);
  check_int "rem" 1 (Mir.Binop.eval Mir.Binop.Rem 9 4);
  check_int "rem0 is total" 0 (Mir.Binop.eval Mir.Binop.Rem 9 0);
  check_int "and" 0b100 (Mir.Binop.eval Mir.Binop.And 0b110 0b101);
  check_int "or" 0b111 (Mir.Binop.eval Mir.Binop.Or 0b110 0b101);
  check_int "xor" 0b011 (Mir.Binop.eval Mir.Binop.Xor 0b110 0b101);
  check_int "shl" 12 (Mir.Binop.eval Mir.Binop.Shl 3 2);
  check_int "shr" 3 (Mir.Binop.eval Mir.Binop.Shr 12 2);
  check_int "shr negative is arithmetic" (-2) (Mir.Binop.eval Mir.Binop.Shr (-8) 2)

let test_binop_names () =
  List.iter
    (fun op ->
      match Mir.Binop.of_string (Mir.Binop.to_string op) with
      | Some op' -> check "binop name round trip" true (op = op')
      | None -> Alcotest.fail "binop name did not parse")
    Mir.Binop.all;
  check "unknown binop" true (Mir.Binop.of_string "frob" = None)

let test_cmp_eval () =
  check "lt" true (Mir.Cmp.eval Mir.Cmp.Lt 1 2);
  check "le eq" true (Mir.Cmp.eval Mir.Cmp.Le 2 2);
  check "gt" false (Mir.Cmp.eval Mir.Cmp.Gt 1 2);
  check "ge" true (Mir.Cmp.eval Mir.Cmp.Ge 2 2);
  check "eq" false (Mir.Cmp.eval Mir.Cmp.Eq 1 2);
  check "ne" true (Mir.Cmp.eval Mir.Cmp.Ne 1 2)

let test_cmp_negate_swap () =
  List.iter
    (fun c ->
      for a = -3 to 3 do
        for b = -3 to 3 do
          check "negate flips result"
            (not (Mir.Cmp.eval c a b))
            (Mir.Cmp.eval (Mir.Cmp.negate c) a b);
          check "swap flips operands" (Mir.Cmp.eval c a b)
            (Mir.Cmp.eval (Mir.Cmp.swap c) b a)
        done
      done)
    Mir.Cmp.all

(* ---------- vars and cells ---------- *)

let test_var_make () =
  let v = Mir.Var.make ~id:3 ~name:"x" ~size:1 ~storage:Mir.Var.Local in
  check "scalar" true (Mir.Var.is_scalar v);
  let a = Mir.Var.make ~id:4 ~name:"a" ~size:8 ~storage:Mir.Var.Global in
  check "array not scalar" false (Mir.Var.is_scalar a);
  Alcotest.check_raises "zero size rejected"
    (Invalid_argument "Var.make: size must be >= 1") (fun () ->
      ignore (Mir.Var.make ~id:0 ~name:"z" ~size:0 ~storage:Mir.Var.Local))

let test_reg () =
  check_int "index" 5 (Mir.Reg.index (Mir.Reg.make 5));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Reg.make: negative index") (fun () ->
      ignore (Mir.Reg.make (-1)))

(* ---------- builder & validation ---------- *)

let simple_program () =
  let module B = Mir.Builder in
  let b = B.create () in
  let g = B.global b "g" in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let r = B.const fb 5 in
      B.store fb (Mir.Addr.Direct g) (Mir.Operand.reg r);
      B.ret fb (Some (Mir.Operand.reg r)));
  B.finish b

let test_builder_basic () =
  let p = simple_program () in
  check_int "one function" 1 (List.length p.Mir.Program.funcs);
  let f = Mir.Program.find_func_exn p "main" in
  check_int "one block" 1 (Array.length f.Mir.Func.blocks);
  check_int "instr count includes terminator" 3 f.Mir.Func.instr_count

let test_builder_duplicate_function () =
  let module B = Mir.Builder in
  let b = B.create () in
  B.func b "f" ~nparams:0 (fun fb _ -> B.ret fb None);
  check "duplicate rejected" true
    (try
       B.func b "f" ~nparams:0 (fun fb _ -> B.ret fb None);
       false
     with Invalid_argument _ -> true)

let test_builder_unterminated () =
  let module B = Mir.Builder in
  let b = B.create () in
  check "unterminated block rejected" true
    (try
       B.func b "f" ~nparams:0 (fun fb _ -> ignore (B.const fb 1));
       false
     with Invalid_argument _ -> true)

let test_validate_undeclared_call () =
  let module B = Mir.Builder in
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      B.call_void fb "mystery" [];
      B.ret fb None);
  check "undeclared callee rejected" true
    (try
       ignore (B.finish b);
       false
     with Invalid_argument _ -> true)

let test_validate_missing_main () =
  let module B = Mir.Builder in
  let b = B.create () in
  B.func b "not_main" ~nparams:0 (fun fb _ -> B.ret fb None);
  check "missing main rejected" true
    (try
       ignore (B.finish b);
       false
     with Invalid_argument _ -> true)

(* ---------- locations and layout ---------- *)

let test_locations () =
  let p = simple_program () in
  let f = Mir.Program.find_func_exn p "main" in
  (match Mir.Func.location f 0 with
  | Mir.Func.Body (0, 0) -> ()
  | Mir.Func.Body _ | Mir.Func.Term _ -> Alcotest.fail "iid 0 should be body 0,0");
  (match Mir.Func.location f 2 with
  | Mir.Func.Term 0 -> ()
  | Mir.Func.Body _ | Mir.Func.Term _ -> Alcotest.fail "iid 2 should be terminator");
  check "terminator has no op" true (Mir.Func.op_at f 2 = None);
  check "out of range raises" true
    (try
       ignore (Mir.Func.location f 99);
       false
     with Not_found -> true)

let test_layout () =
  let p = simple_program () in
  let layout = Mir.Layout.make p in
  let base = Mir.Layout.func_base layout "main" in
  check_int "base aligned" 0 (base mod 64);
  check_int "pc spacing" Mir.Layout.instr_bytes
    (Mir.Layout.pc layout ~fname:"main" ~iid:1 - Mir.Layout.pc layout ~fname:"main" ~iid:0);
  (match Mir.Layout.func_of_pc layout (base + 4) with
  | Some ("main", 1) -> ()
  | Some _ | None -> Alcotest.fail "func_of_pc should invert pc");
  check "pc outside code" true (Mir.Layout.func_of_pc layout 0 = None)

(* ---------- parser / printer ---------- *)

let parse_print_parse src =
  let p1 = Mir.Parser.program_of_string src in
  let s1 = Mir.Printer.program_to_string p1 in
  let p2 = Mir.Parser.program_of_string s1 in
  let s2 = Mir.Printer.program_to_string p2 in
  (s1, s2)

let test_parser_roundtrip () =
  let src =
    {|
global g
global buf[4]
extern strcmp pure
extern recv writes(0)
extern syscall writes_all
func helper(r0, r1) {
 var t
start:
  r2 = add r0, r1
  store t, r2
  r3 = load t
  ret r3
}
func main() {
 var x
entry:
  r0 = 7
  store x, r0
  r1 = load x
  r2 = addr buf[1]
  store [r2], r1
  r4 = load buf[0]
  r5 = call helper(r4, 3)
  r6 = input 0
  output r6
  nop
  br ge r5, 10, big, small
big:
  jmp done
small:
  jmp done
done:
  halt
}
|}
  in
  let s1, s2 = parse_print_parse src in
  check_str "printer/parser fixpoint" s1 s2

let test_parser_errors () =
  let bad input =
    try
      ignore (Mir.Parser.program_of_string input);
      false
    with
    | Mir.Parser.Parse_error _ | Invalid_argument _ -> true
  in
  check "garbage" true (bad "func ???");
  check "unknown var" true (bad "func main() {\ne:\n r0 = load nope\n ret\n}");
  check "bad cmp" true
    (bad "func main() {\ne:\n br zz r0, 1, e, e\n}");
  check "missing brace" true (bad "func main() {\ne:\n ret")

let test_printer_negative_and_empty () =
  let src =
    {|
func main() {
entry:
  r0 = -7
  r1 = add r0, -3
  output r1
  ret -1
}
|}
  in
  let s1, s2 = parse_print_parse src in
  check_str "negative immediates round trip" s1 s2

let test_extern_summaries () =
  check "pure round" true
    (Mir.Extern.equal Mir.Extern.Pure (Mir.Extern.lookup [ ("f", Mir.Extern.Pure) ] "f"));
  check "unknown is conservative" true
    (Mir.Extern.equal Mir.Extern.Writes_anything (Mir.Extern.lookup [] "mystery"));
  check "args summaries compare" true
    (Mir.Extern.equal (Mir.Extern.Writes_args [ 0; 2 ]) (Mir.Extern.Writes_args [ 0; 2 ]));
  check "different args differ" false
    (Mir.Extern.equal (Mir.Extern.Writes_args [ 0 ]) (Mir.Extern.Writes_args [ 1 ]));
  check "default table has strcmp" true
    (List.mem_assoc "strcmp" Mir.Extern.default_table)

let test_validate_error_classes () =
  (* hand-build invalid programs through the record types directly *)
  let v = Mir.Var.make ~id:0 ~name:"x" ~size:1 ~storage:Mir.Var.Local in
  let mk_func blocks instr_count reg_count =
    {
      Mir.Func.name = "main";
      params = [];
      locals = [ v ];
      blocks;
      reg_count;
      instr_count;
    }
  in
  let block body term term_iid =
    { Mir.Block.index = 0; label = "entry"; body; term; term_iid }
  in
  let prog f =
    {
      Mir.Program.funcs = [ f ];
      globals = [];
      externs = [];
      main = "main";
      var_count = 1;
    }
  in
  (* dangling block target *)
  let f1 = mk_func [| block [||] (Mir.Terminator.Jump 5) 0 |] 1 0 in
  check "dangling target caught" true (Mir.Validate.check (prog f1) <> []);
  (* out-of-range register *)
  let f2 =
    mk_func
      [| block [| { Mir.Instr.iid = 0; op = Mir.Op.Const (Mir.Reg.make 9, 1) } |]
           (Mir.Terminator.Return None) 1 |]
      2 1
  in
  check "register out of range caught" true (Mir.Validate.check (prog f2) <> []);
  (* non-dense instruction ids *)
  let f3 =
    mk_func
      [| block [| { Mir.Instr.iid = 7; op = Mir.Op.Nop } |] (Mir.Terminator.Return None) 1 |]
      2 0
  in
  check "non-dense iids caught" true (Mir.Validate.check (prog f3) <> [])

let test_program_lookups () =
  let p = simple_program () in
  check "find_func" true (Mir.Program.find_func p "main" <> None);
  check "find_func misses" true (Mir.Program.find_func p "nope" = None);
  check "is_defined" true (Mir.Program.is_defined p "main");
  let g = List.hd p.Mir.Program.globals in
  check "find_var" true
    (match Mir.Program.find_var p g.Mir.Var.id with
    | Some v -> Mir.Var.equal v g
    | None -> false);
  check "find_var misses" true (Mir.Program.find_var p 999 = None)

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"printer/parser round trip on random MIR" ~count:100
    Gen.mir_program (fun p ->
      let s1 = Mir.Printer.program_to_string p in
      let p2 = Mir.Parser.program_of_string s1 in
      let s2 = Mir.Printer.program_to_string p2 in
      String.equal s1 s2)

(* The artifact "code" section persists programs as printed text, so the
   parser must rebuild the exact structure — not just stable text — up
   to what the text can express: [r = <imm>] always parses as [Const],
   so [Move (r, Imm n)] comes back as [Const (r, n)], and [reg_count]
   (a builder reservation the printer has no syntax for) is inferred
   from the registers actually mentioned. *)
let canon_program (p : Mir.Program.t) =
  let canon_op = function
    | Mir.Op.Move (r, Mir.Operand.Imm n) -> Mir.Op.Const (r, n)
    | op -> op
  in
  let canon_block (b : Mir.Block.t) =
    {
      b with
      Mir.Block.body =
        Array.map
          (fun (i : Mir.Instr.t) -> { i with Mir.Instr.op = canon_op i.op })
          b.Mir.Block.body;
    }
  in
  let canon_func (f : Mir.Func.t) =
    let count = ref 0 in
    let see r = count := max !count (Mir.Reg.index r + 1) in
    List.iter see f.Mir.Func.params;
    Array.iter
      (fun (b : Mir.Block.t) ->
        Array.iter
          (fun (i : Mir.Instr.t) ->
            Option.iter see (Mir.Op.def i.op);
            List.iter see (Mir.Op.uses i.op))
          b.Mir.Block.body;
        List.iter see (Mir.Terminator.uses b.Mir.Block.term))
      f.Mir.Func.blocks;
    {
      f with
      Mir.Func.blocks = Array.map canon_block f.Mir.Func.blocks;
      Mir.Func.reg_count = !count;
    }
  in
  { p with Mir.Program.funcs = List.map canon_func p.Mir.Program.funcs }

let structural_roundtrip p =
  Mir.Parser.program_of_string (Mir.Printer.program_to_string p)
  = canon_program p

let prop_roundtrip_structural =
  QCheck2.Test.make ~name:"parser rebuilds the exact program (random MIR)"
    ~count:100 Gen.mir_program structural_roundtrip

let prop_roundtrip_structural_minic =
  QCheck2.Test.make
    ~name:"parser rebuilds the exact program (MiniC front end)" ~count:60
    Gen.minic_program structural_roundtrip

let prop_layout_inverse =
  QCheck2.Test.make ~name:"layout pc/func_of_pc are inverse" ~count:60
    Gen.mir_program (fun p ->
      let layout = Mir.Layout.make p in
      List.for_all
        (fun (f : Mir.Func.t) ->
          List.for_all
            (fun iid ->
              Mir.Layout.func_of_pc layout
                (Mir.Layout.pc layout ~fname:f.name ~iid)
              = Some (f.name, iid))
            (List.init f.instr_count Fun.id))
        p.Mir.Program.funcs)

let prop_validate_random =
  QCheck2.Test.make ~name:"random programs validate" ~count:100 Gen.mir_program
    (fun p -> Mir.Validate.check p = [])

let () =
  Alcotest.run "mir"
    [
      ( "operators",
        [
          Alcotest.test_case "binop eval" `Quick test_binop_eval;
          Alcotest.test_case "binop names" `Quick test_binop_names;
          Alcotest.test_case "cmp eval" `Quick test_cmp_eval;
          Alcotest.test_case "cmp negate/swap" `Quick test_cmp_negate_swap;
        ] );
      ( "variables",
        [
          Alcotest.test_case "var make" `Quick test_var_make;
          Alcotest.test_case "reg" `Quick test_reg;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "duplicate function" `Quick test_builder_duplicate_function;
          Alcotest.test_case "unterminated block" `Quick test_builder_unterminated;
          Alcotest.test_case "undeclared call" `Quick test_validate_undeclared_call;
          Alcotest.test_case "missing main" `Quick test_validate_missing_main;
        ] );
      ( "layout",
        [
          Alcotest.test_case "locations" `Quick test_locations;
          Alcotest.test_case "layout" `Quick test_layout;
        ] );
      ( "parser",
        [
          Alcotest.test_case "round trip" `Quick test_parser_roundtrip;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_roundtrip_structural;
          QCheck_alcotest.to_alcotest prop_roundtrip_structural_minic;
          QCheck_alcotest.to_alcotest prop_validate_random;
          QCheck_alcotest.to_alcotest prop_layout_inverse;
          Alcotest.test_case "negatives and empties" `Quick test_printer_negative_and_empty;
        ] );
      ( "program",
        [
          Alcotest.test_case "extern summaries" `Quick test_extern_summaries;
          Alcotest.test_case "validate error classes" `Quick test_validate_error_classes;
          Alcotest.test_case "program lookups" `Quick test_program_lookups;
        ] );
    ]
