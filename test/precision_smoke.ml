(* End-to-end smoke test of the artifact cache under precision-config
   changes (the @precision-smoke alias, wired into runtest).  One
   executable, two roles:

   - driver (no --phase): makes a fresh cache directory and re-executes
     itself through an off/on/on/off ladder — a cold --precision off
     run that populates the cache, a cold --precision on run that must
     be a clean miss on BOTH tiers (a stale off-mode fn/ entry served
     to an on-mode build would silently drop the refinement), a warm
     on run and a warm off run that must both be pure system-tier hits.
     Warm results must be byte-identical to their cold counterparts,
     and the on results must differ from off (the refinement visibly
     gains checked branches).
   - phase child (--phase PHASE): builds every workload through the
     two-tier incremental driver with the phase's precision setting,
     writes per-workload checked-branch tables to --out, and asserts
     the phase's expected compile/build and cache counters — including
     the [fn_precision_misses] counter, which must count fn-tier misses
     exactly when precision is on. *)

module Store = Ipds_artifact.Store
module W = Ipds_workloads.Workloads
module Core = Ipds_core
module An = Ipds_correlation.Analysis

let phase = ref ""
let cache_dir = ref ""
let out = ref ""

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("precision-smoke: " ^ s);
      exit 1)
    fmt

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------- phase child ---------- *)

let on_options = { An.default_options with An.precision = An.precision_on }

let results ~options =
  String.concat "\n"
    (List.map
       (fun w ->
         let sys = W.system ~options w in
         Printf.sprintf "%s checked=%d/%d" w.W.name
           (Core.System.checked_branch_count sys)
           (Core.System.total_branch_count sys))
       W.all)
  ^ "\n"

let run_phase () =
  Store.set_ambient_dir (Some !cache_dir);
  let options =
    match !phase with
    | "cold-off" | "warm-off" -> An.default_options
    | "cold-on" | "warm-on" -> on_options
    | p -> fail "unknown phase %S" p
  in
  write_file !out (results ~options);
  let c = Store.counters () in
  let n = List.length W.all in
  let compiles = W.compile_count () in
  let builds = Core.System.build_count () in
  (match !phase with
  | "cold-off" ->
      if c.Store.hits <> 0 then fail "cold-off hit the cache %d times" c.Store.hits;
      if c.Store.misses <> n then
        fail "cold-off: %d system misses, want %d" c.Store.misses n;
      if compiles <> n then fail "cold-off: %d compiles, want %d" compiles n;
      if c.Store.fn_precision_misses <> 0 then
        fail "cold-off counted %d precision misses with precision off"
          c.Store.fn_precision_misses
  | "cold-on" ->
      (* the cache-soundness criterion: flipping precision on must be a
         clean miss on both tiers — an off-mode fn/ entry served here
         would be a stale (unrefined) analysis under an on-mode key *)
      if c.Store.hits <> 0 then
        fail "cold-on was served %d whole-system entries from the off run"
          c.Store.hits;
      if c.Store.misses <> n then
        fail "cold-on: %d system misses, want %d" c.Store.misses n;
      if c.Store.fn_hits <> 0 then
        fail "cold-on was served %d stale fn/ entries" c.Store.fn_hits;
      if builds <> n then fail "cold-on: %d analyses, want %d" builds n;
      if c.Store.fn_precision_misses = 0 then
        fail "cold-on counted no fn_precision_misses";
      if c.Store.fn_precision_misses <> c.Store.fn_misses then
        fail "cold-on: fn_precision_misses=%d but fn_misses=%d"
          c.Store.fn_precision_misses c.Store.fn_misses
  | "warm-on" | "warm-off" ->
      if compiles <> 0 then fail "%s ran %d MiniC compiles" !phase compiles;
      if builds <> 0 then fail "%s ran %d analyses" !phase builds;
      if c.Store.misses <> 0 then fail "%s missed %d times" !phase c.Store.misses;
      if c.Store.hits <> n then
        fail "%s: %d hits, want %d" !phase c.Store.hits n;
      if c.Store.fn_precision_misses <> 0 then
        fail "%s counted %d fn_precision_misses on a pure system-tier run"
          !phase c.Store.fn_precision_misses
  | p -> fail "unknown phase %S" p);
  exit 0

(* ---------- driver ---------- *)

let driver () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-precision-smoke-%d" (Unix.getpid ()))
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
  @@ fun () ->
  let out p = Filename.concat dir ("result-" ^ p ^ ".txt") in
  let run p =
    let t0 = Unix.gettimeofday () in
    let cmd =
      Printf.sprintf "%s --phase %s --cache-dir %s --out %s"
        (Filename.quote Sys.executable_name)
        p (Filename.quote dir)
        (Filename.quote (out p))
    in
    (match Sys.command cmd with
    | 0 -> ()
    | rc -> fail "phase %s exited with %d" p rc);
    Unix.gettimeofday () -. t0
  in
  let cold_off_s = run "cold-off" in
  let cold_on_s = run "cold-on" in
  let warm_on_s = run "warm-on" in
  let warm_off_s = run "warm-off" in
  let cold_off = read_file (out "cold-off") in
  let cold_on = read_file (out "cold-on") in
  if cold_off = "" then fail "cold-off produced an empty report";
  if String.equal cold_off cold_on then
    fail "precision on changed nothing (no refinement gain visible)";
  if not (String.equal cold_on (read_file (out "warm-on"))) then
    fail "warm on results differ from cold on (artifact load not equivalent)";
  if not (String.equal cold_off (read_file (out "warm-off"))) then
    fail
      "warm off results differ from cold off (precision toggle corrupted the \
       off entries)";
  Printf.printf
    "precision-smoke OK: off/on ladder with clean misses and identical warm \
     results (cold-off %.2fs, cold-on %.2fs, warm-on %.2fs, warm-off %.2fs)\n"
    cold_off_s cold_on_s warm_on_s warm_off_s

let () =
  let spec =
    [
      ( "--phase",
        Arg.Set_string phase,
        "PHASE cold-off|cold-on|warm-on|warm-off (internal)" );
      ("--cache-dir", Arg.Set_string cache_dir, "DIR artifact cache directory");
      ("--out", Arg.Set_string out, "FILE where the phase writes its report");
    ]
  in
  Arg.parse spec (fun a -> fail "unexpected argument %S" a) "precision_smoke";
  if !phase = "" then driver () else run_phase ()
