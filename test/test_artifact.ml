(* The artifact subsystem: object-file round trips, corruption
   detection (every single byte is guarded), and the content-addressed
   store.  The save→load equivalence here is structural; the cache
   smoke test (test/cache_smoke.ml) additionally checks end-to-end
   Fig. 7/Fig. 8 equality across processes. *)

module Core = Ipds_core
module M = Ipds_machine
module A = Ipds_artifact.Artifact
module Obj = Ipds_artifact.Object_file
module Store = Ipds_artifact.Store
module W = Ipds_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Build without touching the ambient store so these tests are
   insensitive to IPDS_CACHE_DIR in the environment. *)
let system_of w = Core.System.cached_build (W.program w)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* ---------- round trip ---------- *)

(* The reconstructed [result.func] belongs to the re-parsed program
   (canonical text form) and action lists are rebuilt in table order, so
   results are compared as: same checked set, same action maps.
   [depends] is documented as lossy. *)
let norm_actions l =
  List.sort compare (List.map (fun (e, acts) -> (e, List.sort compare acts)) l)

let same_result (r1 : Ipds_correlation.Analysis.result)
    (r2 : Ipds_correlation.Analysis.result) =
  r1.Ipds_correlation.Analysis.checked = r2.Ipds_correlation.Analysis.checked
  && norm_actions r1.Ipds_correlation.Analysis.edge_actions
     = norm_actions r2.Ipds_correlation.Analysis.edge_actions
  && List.sort compare r1.Ipds_correlation.Analysis.entry_actions
     = List.sort compare r2.Ipds_correlation.Analysis.entry_actions

let test_roundtrip_all_workloads () =
  List.iter
    (fun w ->
      let sys = system_of w in
      let sys2 = A.of_bytes (A.to_bytes sys) in
      check_str "program text survives"
        (Ipds_mir.Printer.program_to_string sys.Core.System.program)
        (Ipds_mir.Printer.program_to_string sys2.Core.System.program);
      check "layout survives" true
        (Ipds_mir.Layout.entries sys.Core.System.layout
        = Ipds_mir.Layout.entries sys2.Core.System.layout);
      check_int "function count"
        (List.length sys.Core.System.funcs)
        (List.length sys2.Core.System.funcs);
      List.iter2
        (fun (n1, (i1 : Core.System.func_info)) (n2, (i2 : Core.System.func_info)) ->
          check_str "function name" n1 n2;
          check_int "entry pc" i1.entry_pc i2.entry_pc;
          (* Fig. 8 invariant: bit-identical table sizes *)
          check "table sizes bit-identical" true
            (Core.Tables.sizes i1.tables = Core.Tables.sizes i2.tables);
          check "tables identical" true
            ({ i1.tables with Core.Tables.slot_of_iid = [||] }
            = { i2.tables with Core.Tables.slot_of_iid = [||] });
          check "slot map identical" true
            (i1.tables.Core.Tables.slot_of_iid
            = i2.tables.Core.Tables.slot_of_iid);
          check "flat image identical" true (i1.image = i2.image);
          check "analysis result survives (minus provenance)" true
            (same_result i1.result i2.result))
        sys.Core.System.funcs sys2.Core.System.funcs)
    W.all

(* Checker equivalence: the same execution trace under a loaded system
   produces the same verdicts as under the built one. *)
let test_checker_equivalence () =
  List.iter
    (fun w ->
      let sys = system_of w in
      let sys2 = A.of_bytes (A.to_bytes sys) in
      let drive sys =
        let checker = Core.System.new_checker sys in
        let o =
          M.Interp.run sys.Core.System.program
            {
              M.Interp.default_config with
              max_steps = 30_000;
              inputs = M.Input_script.random ~seed:7 ();
              checker = Some checker;
            }
        in
        ( o.M.Interp.steps,
          o.M.Interp.branches,
          o.M.Interp.outputs,
          List.length o.M.Interp.alarms )
      in
      check (w.W.name ^ " same verdicts") true (drive sys = drive sys2))
    [ W.find "telnetd"; W.find "httpd" ]

(* ---------- SHA-256 ---------- *)

(* FIPS 180-4 test vectors: the store's content addresses and the
   object-file digest both stand on this implementation, so it is
   pinned to the published vectors, not just to self-consistency. *)
let test_sha256_fips_vectors () =
  let module H = Ipds_artifact.Sha256 in
  check_str "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (H.hex_string "");
  check_str "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (H.hex_string "abc");
  check_str "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (H.hex_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_str "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (H.hex_string (String.make 1_000_000 'a'));
  (* windowed digest agrees with whole-buffer digest *)
  let buf = Bytes.of_string "xxabcyy" in
  check_str "pos/len window" (H.hex_string "abc")
    (H.to_hex (H.bytes buf ~pos:2 ~len:3));
  check_int "digest length" 32 (String.length (H.all (Bytes.create 0)))

(* ---------- corruption ---------- *)

let test_every_byte_flip_detected () =
  let sys = system_of (W.find "telnetd") in
  let good = A.to_bytes sys in
  let undetected = ref [] in
  for i = 0 to Bytes.length good - 1 do
    let bad = Bytes.copy good in
    Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 0x40));
    match A.of_bytes bad with
    | _ -> undetected := i :: !undetected
    | exception A.Corrupt _ -> ()
    (* decoding must never escape with anything but Corrupt *)
    | exception e ->
        Alcotest.failf "byte %d: unexpected exception %s" i (Printexc.to_string e)
  done;
  check "every byte flip detected" true (!undetected = [])

let test_truncation_detected () =
  let sys = system_of (W.find "crond") in
  let good = A.to_bytes sys in
  List.iter
    (fun len ->
      let bad = Bytes.sub good 0 len in
      check
        (Printf.sprintf "truncation to %d detected" len)
        true
        (match A.of_bytes bad with
        | _ -> false
        | exception A.Corrupt _ -> true))
    [ 0; 4; Obj.header_bytes - 1; Obj.header_bytes; Bytes.length good - 1 ]

let test_inspect_reports_damage () =
  let sys = system_of (W.find "telnetd") in
  let good = A.to_bytes sys in
  let ins = A.inspect_bytes good in
  check "digest ok on good file" true ins.A.file.Obj.digest_ok;
  check "all section CRCs ok" true
    (List.for_all (fun s -> s.Obj.s_crc_ok) ins.A.file.Obj.sections);
  check "functions decodable" true (ins.A.funcs <> None);
  (* flip one byte inside the first section's payload *)
  let first = List.hd ins.A.file.Obj.sections in
  let bad = Bytes.copy good in
  let i = first.Obj.s_offset + (first.Obj.s_length / 2) in
  Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 1));
  let ins2 = A.inspect_bytes bad in
  check "digest mismatch reported" false ins2.A.file.Obj.digest_ok;
  check "bad CRC localized to the damaged section" true
    (List.exists
       (fun s -> s.Obj.s_name = first.Obj.s_name && not s.Obj.s_crc_ok)
       ins2.A.file.Obj.sections)

(* ---------- files and the store ---------- *)

let test_file_roundtrip_and_sniff () =
  with_temp_dir (fun dir ->
      let sys = system_of (W.find "atftpd") in
      let path = Filename.concat dir "a.ipds" in
      A.save_file path sys;
      check "magic sniffed" true (A.is_artifact_file path);
      let sys2 = A.load_file path in
      check "file round trip" true
        (Core.System.size_stats sys2 = Core.System.size_stats sys);
      let text = Filename.concat dir "not-an-artifact" in
      let oc = open_out text in
      output_string oc "just text\n";
      close_out oc;
      check "non-artifact rejected by sniff" false (A.is_artifact_file text);
      check "missing file sniffs false" false
        (A.is_artifact_file (Filename.concat dir "nope")))

let test_store_hit_miss_corrupt () =
  with_temp_dir (fun dir ->
      Store.reset_counters ();
      let store = Store.create ~dir in
      let w = W.find "sysklogd" in
      let sys = system_of w in
      let key =
        Store.key ~source:w.W.source ~promote:true
          ~options:Ipds_correlation.Analysis.default_options
      in
      check "load before publish misses" true (Store.load_system store key = None);
      Store.publish_system store key sys;
      (match Store.load_system store key with
      | None -> Alcotest.fail "expected a hit after publish"
      | Some sys2 ->
          check "stored system equivalent" true
            (Core.System.size_stats sys2 = Core.System.size_stats sys));
      (* flip a byte on disk: the entry must become a miss, not a crash *)
      let path = Store.path_of_key store key in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let buf = Bytes.create n in
      really_input ic buf 0 n;
      close_in ic;
      Bytes.set buf (n / 2) (Char.chr (Char.code (Bytes.get buf (n / 2)) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc buf;
      close_out oc;
      check "corrupt entry is a miss" true (Store.load_system store key = None);
      let c = Store.counters () in
      check_int "hits" 1 c.Store.hits;
      check_int "misses" 2 c.Store.misses;
      check_int "corrupt misses" 1 c.Store.corrupt;
      check "bytes accounted" true (c.Store.bytes_read > 0 && c.Store.bytes_written > 0))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let buf = Bytes.create n in
  really_input ic buf 0 n;
  close_in ic;
  buf

let write_file path buf =
  let oc = open_out_bin path in
  output_bytes oc buf;
  close_out oc

(* A v2 (or any older-format) entry left over from a previous release
   must read as a clean miss — counted corrupt, rebuilt, never a crash
   and never a silent misparse. *)
let test_version_skew_clean_miss () =
  with_temp_dir (fun dir ->
      Store.reset_counters ();
      let store = Store.create ~dir in
      let w = W.find "telnetd" in
      let key =
        Store.key ~source:w.W.source ~promote:true
          ~options:Ipds_correlation.Analysis.default_options
      in
      Store.publish_system store key (system_of w);
      let path = Store.path_of_key store key in
      let buf = read_file path in
      (* rewrite the format-version field (u32 LE at offset 8) to v2 *)
      Bytes.set_int32_le buf 8 2l;
      write_file path buf;
      check "v2 entry decodes as Corrupt" true
        (match A.of_bytes buf with
        | _ -> false
        | exception A.Corrupt msg ->
            (* the reason names the version skew, not a generic failure *)
            let has_sub s sub =
              let n = String.length sub in
              let rec go i =
                i + n <= String.length s
                && (String.sub s i n = sub || go (i + 1))
              in
              go 0
            in
            has_sub msg "version");
      check "v2 entry is a clean store miss" true
        (Store.load_system store key = None);
      let c = Store.counters () in
      check_int "skew counted corrupt" 1 c.Store.corrupt;
      check_int "skew counted miss" 1 c.Store.misses)

(* The collision-detection table: an occupied key is byte-compared on
   every publish; different valid content is counted and refused, a
   byte-identical republish is a no-op, and a damaged entry is
   repaired. *)
let test_collision_table () =
  with_temp_dir (fun dir ->
      Store.reset_counters ();
      let store = Store.create ~dir in
      let img_a = A.to_bytes (system_of (W.find "telnetd")) in
      let img_b = A.to_bytes (system_of (W.find "httpd")) in
      let key = "collision-table-probe" in
      check "first publish stores" true (Store.publish_image store key img_a = `Stored);
      check "identical republish is duplicate" true
        (Store.publish_image store key img_a = `Duplicate);
      check "different valid content collides" true
        (Store.publish_image store key img_b = `Collision);
      (* first writer wins: the original bytes are still what is served *)
      (match Store.fetch_image store key with
      | `Image got -> check "original entry kept" true (Bytes.equal got img_a)
      | `Miss | `Corrupt _ -> Alcotest.fail "entry lost after collision");
      (* a damaged entry is not a collision — it is repaired in place *)
      let path = Store.path_of_key store key in
      write_file path (Bytes.of_string "rot");
      check "damaged entry repaired" true (Store.publish_image store key img_a = `Stored);
      (match Store.fetch_image store key with
      | `Image got -> check "repair restored bytes" true (Bytes.equal got img_a)
      | `Miss | `Corrupt _ -> Alcotest.fail "repair did not restore the entry");
      let c = Store.counters () in
      check_int "exactly one collision counted" 1 c.Store.collisions;
      check_int "no publish failures" 0 c.Store.publish_failed)

(* Regression: [load_system] used to treat {e any} [Sys_error] as a
   plain miss, so an unreadable-but-present cache (EACCES, EIO, a
   directory squatting on the entry path) looked cold forever.  A
   read fault on an existing entry must count as corrupt.  The fault
   here is a directory at the entry path — deterministic even when the
   tests run as root (unlike chmod 0). *)
let test_read_fault_is_corrupt_not_miss () =
  with_temp_dir (fun dir ->
      Store.reset_counters ();
      let store = Store.create ~dir in
      let key = "fault-probe-entry" in
      ignore (Store.publish_image store key (A.to_bytes (system_of (W.find "crond"))));
      let path = Store.path_of_key store key in
      Sys.remove path;
      Unix.mkdir path 0o755;
      check "read fault is a miss, not a crash" true
        (Store.load_system store key = None);
      let c = Store.counters () in
      check_int "read fault counted corrupt" 1 c.Store.corrupt;
      (* and a genuinely absent entry stays a plain (non-corrupt) miss *)
      check "absent entry misses" true
        (Store.load_system store "fault-probe-absent" = None);
      let c2 = Store.counters () in
      check_int "absent entry not counted corrupt" 1 c2.Store.corrupt)

(* Regression: [publish_system] used to swallow [Sys_error] silently.
   A publish lost to an IO error must be counted.  The fault: a
   regular file squatting on the 2-char prefix directory, so the temp
   file creation fails with ENOTDIR — again deterministic as root. *)
let test_publish_failure_counted () =
  with_temp_dir (fun dir ->
      Store.reset_counters ();
      let store = Store.create ~dir in
      let key = "pf-probe" in
      let prefix_dir = Filename.concat dir (String.sub key 0 2) in
      write_file prefix_dir (Bytes.of_string "squatter");
      (match Store.publish_image store key (A.to_bytes (system_of (W.find "atftpd"))) with
      | `Failed _ -> ()
      | `Stored | `Duplicate | `Collision ->
          Alcotest.fail "publish into a blocked prefix dir must fail");
      Store.publish_system store key (system_of (W.find "atftpd"));
      let c = Store.counters () in
      check_int "both failed publishes counted" 2 c.Store.publish_failed)

(* Regression: [path_of_key] used to [String.sub key 0 2] without
   validation, so a short or hostile key (now remotely reachable via
   the artifact fetch/push frames) raised from deep inside the load
   path.  Key shape is validated at the boundary instead. *)
let test_malformed_keys_rejected () =
  check "short key invalid" false (Store.valid_key "x");
  check "empty key invalid" false (Store.valid_key "");
  check "traversal invalid" false (Store.valid_key "../../etc/passwd");
  check "separator invalid" false (Store.valid_key "ab/cd");
  check "leading dot invalid" false (Store.valid_key ".hidden");
  check "control byte invalid" false (Store.valid_key "ab\ncd");
  check "overlong invalid" false (Store.valid_key (String.make 129 'a'));
  check "hex digest valid" true (Store.valid_key (String.make 64 'a'));
  check "human key valid" true (Store.valid_key "fleet-telnetd_v1.2");
  with_temp_dir (fun dir ->
      Store.reset_counters ();
      let store = Store.create ~dir in
      check "malformed key loads as None, no raise" true
        (Store.load_system store "x" = None);
      check "malformed key fetch is a miss" true (Store.fetch_image store "x" = `Miss);
      (match Store.publish_image store "x" (Bytes.of_string "data") with
      | `Failed _ -> ()
      | _ -> Alcotest.fail "malformed key publish must fail");
      check "path_of_key raises on malformed key" true
        (match Store.path_of_key store "../x" with
        | _ -> false
        | exception Invalid_argument _ -> true))

(* Regression for the multicore-safety fix in Crc32: the lookup table
   used to be a top-level [lazy], and concurrent [Lazy.force] from
   several domains could raise CamlinternalLazy.Undefined.  Hammer the
   table from many domains at once and check every result agrees. *)
let test_crc_domain_stress () =
  let module Crc = Ipds_artifact.Crc32 in
  let payload = Bytes.init 8192 (fun i -> Char.chr ((i * 131 + 17) land 0xff)) in
  let domains =
    List.init 8 (fun d ->
        Domain.spawn (fun () ->
            List.init 50 (fun i ->
                Crc.bytes payload ~pos:(d + i) ~len:(4096 + d + i))))
  in
  let per_domain = List.map Domain.join domains in
  let reference d =
    List.init 50 (fun i -> Crc.bytes payload ~pos:(d + i) ~len:(4096 + d + i))
  in
  check "all domains agree with sequential reference" true
    (List.for_all2 (fun d got -> got = reference d)
       (List.init 8 Fun.id) per_domain)

(* The pass-pipeline invariant: fanning the per-function passes over a
   domain pool is invisible in the output — byte-identical .ipds
   artifacts and identical Fig. 7/Fig. 8 numbers for any job count. *)
let test_jobs_determinism () =
  List.iter
    (fun w ->
      let program = W.program w in
      let seq = Core.System.build program in
      let par =
        Ipds_parallel.Pool.with_pool ~jobs:4 (fun pool ->
            Core.System.build ~pool program)
      in
      check (w.W.name ^ ": artifact bytes identical") true
        (Bytes.equal (A.to_bytes seq) (A.to_bytes par));
      check (w.W.name ^ ": Fig. 8 numbers identical") true
        (Core.System.size_stats seq = Core.System.size_stats par);
      let fig7 sys =
        Ipds_harness.Attack_experiment.campaign ~system:sys ~attacks:4 ~seed:3
          ~model:
            (W.tamper_model w
              :> [ `Stack_overflow | `Arbitrary_write | `Cond_flip | `Insn_skip ])
          ~name:w.W.name program
      in
      check (w.W.name ^ ": Fig. 7 row identical") true (fig7 seq = fig7 par))
    [ W.find "telnetd"; W.find "httpd" ]

let test_key_sensitivity () =
  let options = Ipds_correlation.Analysis.default_options in
  let k = Store.key ~source:"int main() {}" ~promote:true ~options in
  check "key is stable" true
    (k = Store.key ~source:"int main() {}" ~promote:true ~options);
  check "source changes the key" false
    (k = Store.key ~source:"int main() { out(1); }" ~promote:true ~options);
  check "promote changes the key" false
    (k = Store.key ~source:"int main() {}" ~promote:false ~options);
  check "options change the key" false
    (k
    = Store.key ~source:"int main() {}" ~promote:true
        ~options:
          { options with Ipds_correlation.Analysis.affine_tracing = false })

let () =
  Random.self_init ();
  Alcotest.run "artifact"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "all workloads" `Quick test_roundtrip_all_workloads;
          Alcotest.test_case "checker equivalence" `Quick test_checker_equivalence;
        ] );
      ( "sha256",
        [ Alcotest.test_case "FIPS 180-4 vectors" `Quick test_sha256_fips_vectors ] );
      ( "corruption",
        [
          Alcotest.test_case "every byte flip" `Quick test_every_byte_flip_detected;
          Alcotest.test_case "truncation" `Quick test_truncation_detected;
          Alcotest.test_case "inspect reports damage" `Quick test_inspect_reports_damage;
          Alcotest.test_case "v2 version skew is a clean miss" `Quick
            test_version_skew_clean_miss;
        ] );
      ( "store",
        [
          Alcotest.test_case "file round trip + sniff" `Quick test_file_roundtrip_and_sniff;
          Alcotest.test_case "hit/miss/corrupt + counters" `Quick test_store_hit_miss_corrupt;
          Alcotest.test_case "collision table" `Quick test_collision_table;
          Alcotest.test_case "read fault counted corrupt" `Quick
            test_read_fault_is_corrupt_not_miss;
          Alcotest.test_case "publish failure counted" `Quick
            test_publish_failure_counted;
          Alcotest.test_case "malformed keys rejected" `Quick
            test_malformed_keys_rejected;
          Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
        ] );
      ( "crc32",
        [ Alcotest.test_case "domain stress" `Quick test_crc_domain_stress ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 4 byte-identical" `Quick
            test_jobs_determinism;
        ] );
    ]
