(* The artifact subsystem: object-file round trips, corruption
   detection (every single byte is guarded), and the content-addressed
   store.  The save→load equivalence here is structural; the cache
   smoke test (test/cache_smoke.ml) additionally checks end-to-end
   Fig. 7/Fig. 8 equality across processes. *)

module Core = Ipds_core
module M = Ipds_machine
module A = Ipds_artifact.Artifact
module Obj = Ipds_artifact.Object_file
module Store = Ipds_artifact.Store
module W = Ipds_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Build without touching the ambient store so these tests are
   insensitive to IPDS_CACHE_DIR in the environment. *)
let system_of w = Core.System.cached_build (W.program w)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* ---------- round trip ---------- *)

(* The reconstructed [result.func] belongs to the re-parsed program
   (canonical text form) and action lists are rebuilt in table order, so
   results are compared as: same checked set, same action maps.
   [depends] is documented as lossy. *)
let norm_actions l =
  List.sort compare (List.map (fun (e, acts) -> (e, List.sort compare acts)) l)

let same_result (r1 : Ipds_correlation.Analysis.result)
    (r2 : Ipds_correlation.Analysis.result) =
  r1.Ipds_correlation.Analysis.checked = r2.Ipds_correlation.Analysis.checked
  && norm_actions r1.Ipds_correlation.Analysis.edge_actions
     = norm_actions r2.Ipds_correlation.Analysis.edge_actions
  && List.sort compare r1.Ipds_correlation.Analysis.entry_actions
     = List.sort compare r2.Ipds_correlation.Analysis.entry_actions

let test_roundtrip_all_workloads () =
  List.iter
    (fun w ->
      let sys = system_of w in
      let sys2 = A.of_bytes (A.to_bytes sys) in
      check_str "program text survives"
        (Ipds_mir.Printer.program_to_string sys.Core.System.program)
        (Ipds_mir.Printer.program_to_string sys2.Core.System.program);
      check "layout survives" true
        (Ipds_mir.Layout.entries sys.Core.System.layout
        = Ipds_mir.Layout.entries sys2.Core.System.layout);
      check_int "function count"
        (List.length sys.Core.System.funcs)
        (List.length sys2.Core.System.funcs);
      List.iter2
        (fun (n1, (i1 : Core.System.func_info)) (n2, (i2 : Core.System.func_info)) ->
          check_str "function name" n1 n2;
          check_int "entry pc" i1.entry_pc i2.entry_pc;
          (* Fig. 8 invariant: bit-identical table sizes *)
          check "table sizes bit-identical" true
            (Core.Tables.sizes i1.tables = Core.Tables.sizes i2.tables);
          check "tables identical" true
            ({ i1.tables with Core.Tables.slot_of_iid = [||] }
            = { i2.tables with Core.Tables.slot_of_iid = [||] });
          check "slot map identical" true
            (i1.tables.Core.Tables.slot_of_iid
            = i2.tables.Core.Tables.slot_of_iid);
          check "flat image identical" true (i1.image = i2.image);
          check "analysis result survives (minus provenance)" true
            (same_result i1.result i2.result))
        sys.Core.System.funcs sys2.Core.System.funcs)
    W.all

(* Checker equivalence: the same execution trace under a loaded system
   produces the same verdicts as under the built one. *)
let test_checker_equivalence () =
  List.iter
    (fun w ->
      let sys = system_of w in
      let sys2 = A.of_bytes (A.to_bytes sys) in
      let drive sys =
        let checker = Core.System.new_checker sys in
        let o =
          M.Interp.run sys.Core.System.program
            {
              M.Interp.default_config with
              max_steps = 30_000;
              inputs = M.Input_script.random ~seed:7 ();
              checker = Some checker;
            }
        in
        ( o.M.Interp.steps,
          o.M.Interp.branches,
          o.M.Interp.outputs,
          List.length o.M.Interp.alarms )
      in
      check (w.W.name ^ " same verdicts") true (drive sys = drive sys2))
    [ W.find "telnetd"; W.find "httpd" ]

(* ---------- corruption ---------- *)

let test_every_byte_flip_detected () =
  let sys = system_of (W.find "telnetd") in
  let good = A.to_bytes sys in
  let undetected = ref [] in
  for i = 0 to Bytes.length good - 1 do
    let bad = Bytes.copy good in
    Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 0x40));
    match A.of_bytes bad with
    | _ -> undetected := i :: !undetected
    | exception A.Corrupt _ -> ()
    (* decoding must never escape with anything but Corrupt *)
    | exception e ->
        Alcotest.failf "byte %d: unexpected exception %s" i (Printexc.to_string e)
  done;
  check "every byte flip detected" true (!undetected = [])

let test_truncation_detected () =
  let sys = system_of (W.find "crond") in
  let good = A.to_bytes sys in
  List.iter
    (fun len ->
      let bad = Bytes.sub good 0 len in
      check
        (Printf.sprintf "truncation to %d detected" len)
        true
        (match A.of_bytes bad with
        | _ -> false
        | exception A.Corrupt _ -> true))
    [ 0; 4; Obj.header_bytes - 1; Obj.header_bytes; Bytes.length good - 1 ]

let test_inspect_reports_damage () =
  let sys = system_of (W.find "telnetd") in
  let good = A.to_bytes sys in
  let ins = A.inspect_bytes good in
  check "digest ok on good file" true ins.A.file.Obj.digest_ok;
  check "all section CRCs ok" true
    (List.for_all (fun s -> s.Obj.s_crc_ok) ins.A.file.Obj.sections);
  check "functions decodable" true (ins.A.funcs <> None);
  (* flip one byte inside the first section's payload *)
  let first = List.hd ins.A.file.Obj.sections in
  let bad = Bytes.copy good in
  let i = first.Obj.s_offset + (first.Obj.s_length / 2) in
  Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 1));
  let ins2 = A.inspect_bytes bad in
  check "digest mismatch reported" false ins2.A.file.Obj.digest_ok;
  check "bad CRC localized to the damaged section" true
    (List.exists
       (fun s -> s.Obj.s_name = first.Obj.s_name && not s.Obj.s_crc_ok)
       ins2.A.file.Obj.sections)

(* ---------- files and the store ---------- *)

let test_file_roundtrip_and_sniff () =
  with_temp_dir (fun dir ->
      let sys = system_of (W.find "atftpd") in
      let path = Filename.concat dir "a.ipds" in
      A.save_file path sys;
      check "magic sniffed" true (A.is_artifact_file path);
      let sys2 = A.load_file path in
      check "file round trip" true
        (Core.System.size_stats sys2 = Core.System.size_stats sys);
      let text = Filename.concat dir "not-an-artifact" in
      let oc = open_out text in
      output_string oc "just text\n";
      close_out oc;
      check "non-artifact rejected by sniff" false (A.is_artifact_file text);
      check "missing file sniffs false" false
        (A.is_artifact_file (Filename.concat dir "nope")))

let test_store_hit_miss_corrupt () =
  with_temp_dir (fun dir ->
      Store.reset_counters ();
      let store = Store.create ~dir in
      let w = W.find "sysklogd" in
      let sys = system_of w in
      let key =
        Store.key ~source:w.W.source ~promote:true
          ~options:Ipds_correlation.Analysis.default_options
      in
      check "load before publish misses" true (Store.load_system store key = None);
      Store.publish_system store key sys;
      (match Store.load_system store key with
      | None -> Alcotest.fail "expected a hit after publish"
      | Some sys2 ->
          check "stored system equivalent" true
            (Core.System.size_stats sys2 = Core.System.size_stats sys));
      (* flip a byte on disk: the entry must become a miss, not a crash *)
      let path = Store.path_of_key store key in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let buf = Bytes.create n in
      really_input ic buf 0 n;
      close_in ic;
      Bytes.set buf (n / 2) (Char.chr (Char.code (Bytes.get buf (n / 2)) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc buf;
      close_out oc;
      check "corrupt entry is a miss" true (Store.load_system store key = None);
      let c = Store.counters () in
      check_int "hits" 1 c.Store.hits;
      check_int "misses" 2 c.Store.misses;
      check_int "corrupt misses" 1 c.Store.corrupt;
      check "bytes accounted" true (c.Store.bytes_read > 0 && c.Store.bytes_written > 0))

(* Regression for the multicore-safety fix in Crc32: the lookup table
   used to be a top-level [lazy], and concurrent [Lazy.force] from
   several domains could raise CamlinternalLazy.Undefined.  Hammer the
   table from many domains at once and check every result agrees. *)
let test_crc_domain_stress () =
  let module Crc = Ipds_artifact.Crc32 in
  let payload = Bytes.init 8192 (fun i -> Char.chr ((i * 131 + 17) land 0xff)) in
  let domains =
    List.init 8 (fun d ->
        Domain.spawn (fun () ->
            List.init 50 (fun i ->
                Crc.bytes payload ~pos:(d + i) ~len:(4096 + d + i))))
  in
  let per_domain = List.map Domain.join domains in
  let reference d =
    List.init 50 (fun i -> Crc.bytes payload ~pos:(d + i) ~len:(4096 + d + i))
  in
  check "all domains agree with sequential reference" true
    (List.for_all2 (fun d got -> got = reference d)
       (List.init 8 Fun.id) per_domain)

(* The pass-pipeline invariant: fanning the per-function passes over a
   domain pool is invisible in the output — byte-identical .ipds
   artifacts and identical Fig. 7/Fig. 8 numbers for any job count. *)
let test_jobs_determinism () =
  List.iter
    (fun w ->
      let program = W.program w in
      let seq = Core.System.build program in
      let par =
        Ipds_parallel.Pool.with_pool ~jobs:4 (fun pool ->
            Core.System.build ~pool program)
      in
      check (w.W.name ^ ": artifact bytes identical") true
        (Bytes.equal (A.to_bytes seq) (A.to_bytes par));
      check (w.W.name ^ ": Fig. 8 numbers identical") true
        (Core.System.size_stats seq = Core.System.size_stats par);
      let fig7 sys =
        Ipds_harness.Attack_experiment.campaign ~system:sys ~attacks:4 ~seed:3
          ~model:(W.tamper_model w) ~name:w.W.name program
      in
      check (w.W.name ^ ": Fig. 7 row identical") true (fig7 seq = fig7 par))
    [ W.find "telnetd"; W.find "httpd" ]

let test_key_sensitivity () =
  let options = Ipds_correlation.Analysis.default_options in
  let k = Store.key ~source:"int main() {}" ~promote:true ~options in
  check "key is stable" true
    (k = Store.key ~source:"int main() {}" ~promote:true ~options);
  check "source changes the key" false
    (k = Store.key ~source:"int main() { out(1); }" ~promote:true ~options);
  check "promote changes the key" false
    (k = Store.key ~source:"int main() {}" ~promote:false ~options);
  check "options change the key" false
    (k
    = Store.key ~source:"int main() {}" ~promote:true
        ~options:
          { options with Ipds_correlation.Analysis.affine_tracing = false })

let () =
  Random.self_init ();
  Alcotest.run "artifact"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "all workloads" `Quick test_roundtrip_all_workloads;
          Alcotest.test_case "checker equivalence" `Quick test_checker_equivalence;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "every byte flip" `Quick test_every_byte_flip_detected;
          Alcotest.test_case "truncation" `Quick test_truncation_detected;
          Alcotest.test_case "inspect reports damage" `Quick test_inspect_reports_damage;
        ] );
      ( "store",
        [
          Alcotest.test_case "file round trip + sniff" `Quick test_file_roundtrip_and_sniff;
          Alcotest.test_case "hit/miss/corrupt + counters" `Quick test_store_hit_miss_corrupt;
          Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
        ] );
      ( "crc32",
        [ Alcotest.test_case "domain stress" `Quick test_crc_domain_stress ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 4 byte-identical" `Quick
            test_jobs_determinism;
        ] );
    ]
