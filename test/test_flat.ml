(* Differential tests for the flat-image checker: {!Ipds_core.Checker}
   (arena frames, packed verdicts, locally accumulated counters) against
   {!Ipds_core.Checker_ref}, the preserved pre-flat implementation.  The
   two must agree per-branch (checked / alarm / BAT nodes), on the final
   alarm list, and on the stable [checker.*] counter totals — on random
   programs (tampered and untampered) and on all ten workloads.  Also
   pins the hot path's zero-minor-allocation contract, the typed
   protocol-violation verdicts, and stable-metric equality across
   [--jobs 1] and [--jobs 4]. *)

module Core = Ipds_core
module M = Ipds_machine
module W = Ipds_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- recording and replaying event streams ---------- *)

type ev = Call of string | Ret | Branch of int * bool

let record_events ?tamper ?(max_steps = 3000) ~seed program =
  let evs = ref [] in
  ignore
    (M.Interp.run program
       {
         M.Interp.default_config with
         max_steps;
         inputs = M.Input_script.random ~seed ();
         record_trace = false;
         tamper;
         sink =
           Some
             (fun (e : M.Event.t) ->
               match e.M.Event.kind with
               | M.Event.Call { callee } -> evs := Call callee :: !evs
               | M.Event.Ret -> evs := Ret :: !evs
               | M.Event.Branch { taken; _ } ->
                   evs := Branch (e.M.Event.pc, taken) :: !evs
               | _ -> ());
       });
  List.rev !evs

(* What both implementations report for one committed branch. *)
type branch_obs = {
  b_checked : bool;
  b_alarm : bool;
  b_nodes : int;
}

(* The stable counter cells both checkers feed (the names dedup onto the
   same registry cells, which is why the flat run must be measured
   before the reference replay). *)
let counter_names =
  [
    "checker.calls";
    "checker.returns";
    "checker.branches";
    "checker.checked";
    "checker.verdict_ok";
    "checker.verdict_alarm";
    "checker.bat_updates";
  ]

let registry_values () =
  List.map
    (fun n -> Ipds_obs.Registry.counter_value (Ipds_obs.Registry.counter n))
    counter_names

let replay_flat system evs =
  let c = Core.System.new_checker system in
  let before = registry_values () in
  let obs =
    List.filter_map
      (fun ev ->
        match ev with
        | Call f ->
            if Core.System.mem system f then ignore (Core.Checker.on_call c f);
            None
        | Ret ->
            ignore (Core.Checker.on_return c);
            None
        | Branch (pc, taken) ->
            let v = Core.Checker.on_branch c ~pc ~taken in
            Some
              {
                b_checked = Core.Checker.verdict_checked v;
                b_alarm = Core.Checker.verdict_alarm v;
                b_nodes = Core.Checker.verdict_bat_nodes v;
              })
      evs
  in
  Core.Checker.flush c;
  let after = registry_values () in
  (c, obs, List.map2 (fun a b -> a - b) after before)

let replay_ref system evs =
  let c = Core.System.new_ref_checker system in
  let obs =
    List.filter_map
      (fun ev ->
        match ev with
        | Call f ->
            if Core.System.mem system f then
              ignore (Core.Checker_ref.on_call c f);
            None
        | Ret ->
            (* the flat checker refuses a frameless return without
               raising; mirror that here *)
            if Core.Checker_ref.depth c > 0 then Core.Checker_ref.on_return c;
            None
        | Branch (pc, taken) ->
            if Core.Checker_ref.depth c = 0 then
              (* the flat checker's protocol-violation verdict *)
              Some { b_checked = false; b_alarm = false; b_nodes = 0 }
            else
              let i = Core.Checker_ref.on_branch c ~pc ~taken in
              Some
                {
                  b_checked = i.Core.Checker_ref.was_checked;
                  b_alarm =
                    (match i.Core.Checker_ref.alarm with
                    | Some _ -> true
                    | None -> false);
                  b_nodes = i.Core.Checker_ref.bat_nodes;
                })
      evs
  in
  (c, obs)

let runs_agree system evs =
  let flat, fobs, deltas = replay_flat system evs in
  let refc, robs = replay_ref system evs in
  let counts = Core.Checker_ref.counts refc in
  fobs = robs
  && Core.Checker.alarms flat = Core.Checker_ref.alarms refc
  && Core.Checker.branches_seen flat = Core.Checker_ref.branches_seen refc
  && deltas
     = [
         counts.Core.Checker_ref.calls;
         counts.Core.Checker_ref.returns;
         counts.Core.Checker_ref.branches;
         counts.Core.Checker_ref.checked;
         counts.Core.Checker_ref.verdict_ok;
         counts.Core.Checker_ref.verdict_alarm;
         counts.Core.Checker_ref.bat_updates;
       ]

(* Same comparison, with labelled assertions for the workload suite. *)
let check_runs label system evs =
  let flat, fobs, deltas = replay_flat system evs in
  let refc, robs = replay_ref system evs in
  check_int (label ^ ": committed branches") (List.length robs)
    (List.length fobs);
  check (label ^ ": per-branch verdicts") true (fobs = robs);
  check (label ^ ": alarm lists") true
    (Core.Checker.alarms flat = Core.Checker_ref.alarms refc);
  check_int
    (label ^ ": branches_seen")
    (Core.Checker_ref.branches_seen refc)
    (Core.Checker.branches_seen flat);
  let counts = Core.Checker_ref.counts refc in
  List.iter2
    (fun name (delta, expect) ->
      check_int (label ^ ": " ^ name) expect delta)
    counter_names
    (List.combine deltas
       [
         counts.Core.Checker_ref.calls;
         counts.Core.Checker_ref.returns;
         counts.Core.Checker_ref.branches;
         counts.Core.Checker_ref.checked;
         counts.Core.Checker_ref.verdict_ok;
         counts.Core.Checker_ref.verdict_alarm;
         counts.Core.Checker_ref.bat_updates;
       ])

(* ---------- property: random programs, tampered + untampered ---------- *)

let tamper_of_bits bits =
  if bits mod 3 = 0 then None
  else
    Some
      {
        M.Tamper.at_step = 1 + (bits mod 400);
        site =
          (match bits mod 4 with
          | 0 -> M.Tamper.Mem_write
                   { model = M.Tamper.Arbitrary_write; value = bits mod 256 }
          | 1 -> M.Tamper.Mem_write
                   { model = M.Tamper.Stack_overflow; value = bits mod 256 }
          | 2 -> M.Tamper.Cond_flip
          | _ -> M.Tamper.Insn_skip);
        seed = bits;
      }

let prop_flat_matches_ref_minic =
  QCheck2.Test.make
    ~name:"flat checker matches reference on MiniC (tampered + untampered)"
    ~count:80
    QCheck2.Gen.(tup3 Gen.minic_program (int_bound 1000) (int_bound 100000))
    (fun (program, seed, bits) ->
      let sys = Core.System.build program in
      let evs = record_events ?tamper:(tamper_of_bits bits) ~seed program in
      runs_agree sys evs)

let prop_flat_matches_ref_mir =
  QCheck2.Test.make ~name:"flat checker matches reference on raw MIR"
    ~count:60
    QCheck2.Gen.(pair Gen.mir_program (int_bound 1000))
    (fun (program, seed) ->
      let sys = Core.System.build program in
      let evs = record_events ~seed program in
      runs_agree sys evs)

(* ---------- all ten workloads, tampered + untampered ---------- *)

let test_workloads_differential () =
  let plans =
    [
      None;
      Some
        {
          M.Tamper.at_step = 40;
          site = M.Tamper.Mem_write { model = M.Tamper.Arbitrary_write; value = 99 };
          seed = 5;
        };
      Some
        {
          M.Tamper.at_step = 25;
          site = M.Tamper.Mem_write { model = M.Tamper.Stack_overflow; value = 77 };
          seed = 11;
        };
      Some { M.Tamper.at_step = 30; site = M.Tamper.Cond_flip; seed = 0 };
      Some { M.Tamper.at_step = 30; site = M.Tamper.Insn_skip; seed = 0 };
    ]
  in
  List.iter
    (fun w ->
      let sys = W.system w in
      let program = W.program w in
      List.iteri
        (fun i tamper ->
          let evs = record_events ?tamper ~max_steps:20_000 ~seed:42 program in
          check_runs (Printf.sprintf "%s/%d" w.W.name i) sys evs)
        plans)
    W.all

(* ---------- zero minor allocation on the warm path ---------- *)

(* Replay a recorded workload stream through a warm checker: the second
   pass reuses the grown arena and resolved image handles, so an
   alarm-free replay must allocate no minor words. *)
let test_zero_minor_allocation () =
  let w = List.hd W.all in
  let sys = W.system w in
  let evs = record_events ~max_steps:20_000 ~seed:7 (W.program w) in
  let n = List.length evs in
  let ops = Array.make (max 1 n) (-1) and args = Array.make (max 1 n) 0 in
  let names = Hashtbl.create 8 in
  let imgs = ref [] and n_imgs = ref 0 in
  let intern f =
    match Hashtbl.find_opt names f with
    | Some i -> i
    | None ->
        let i = !n_imgs in
        Hashtbl.add names f i;
        imgs := Core.System.image sys f :: !imgs;
        incr n_imgs;
        i
  in
  List.iteri
    (fun i ev ->
      match ev with
      | Call f when Core.System.mem sys f ->
          ops.(i) <- 0;
          args.(i) <- intern f
      | Call _ -> ()
      | Ret -> ops.(i) <- 1
      | Branch (pc, taken) ->
          ops.(i) <- 2;
          args.(i) <- (pc lsl 1) lor Bool.to_int taken)
    evs;
  let img_arr = Array.of_list (List.rev !imgs) in
  let c = Core.System.new_checker sys in
  let replay () =
    for i = 0 to n - 1 do
      match Array.unsafe_get ops i with
      | 0 ->
          ignore
            (Core.Checker.on_call_img c
               (Array.unsafe_get img_arr (Array.unsafe_get args i)))
      | 1 -> ignore (Core.Checker.on_return c)
      | 2 ->
          let a = Array.unsafe_get args i in
          ignore (Core.Checker.on_branch c ~pc:(a lsr 1) ~taken:(a land 1 = 1))
      | _ -> ()
    done
  in
  replay ();
  check_int "warm-up replay raised no alarms" 0 (Core.Checker.alarm_count c);
  let before = Gc.minor_words () in
  replay ();
  let words = int_of_float (Gc.minor_words () -. before) in
  check
    (Printf.sprintf "warm replay of %d events allocated %d minor words" n words)
    true (words <= 64)

(* ---------- typed protocol violations and O(1) depth ---------- *)

let test_protocol_and_depth () =
  let w = List.hd W.all in
  let sys = W.system w in
  let fname = fst (List.hd sys.Core.System.funcs) in
  let c = Core.System.new_checker sys in
  check_int "fresh depth" 0 (Core.Checker.depth c);
  check "frameless return is refused" false (Core.Checker.on_return c);
  check_int "refused return leaves depth alone" 0 (Core.Checker.depth c);
  let v = Core.Checker.on_branch c ~pc:0x1000 ~taken:true in
  check "frameless branch is a violation" true (Core.Checker.verdict_violation v);
  check "violation is not ok" false (Core.Checker.verdict_ok v);
  check "violation is not checked" false (Core.Checker.verdict_checked v);
  check "violation is not an alarm" false (Core.Checker.verdict_alarm v);
  check_int "violation commits no branch" 0 (Core.Checker.branches_seen c);
  for i = 1 to 64 do
    ignore (Core.Checker.on_call c fname);
    check_int "depth tracks pushes" i (Core.Checker.depth c)
  done;
  for i = 63 downto 0 do
    check "pop succeeds" true (Core.Checker.on_return c);
    check_int "depth tracks pops" i (Core.Checker.depth c)
  done;
  check "empty again refuses" false (Core.Checker.on_return c)

(* ---------- stable metrics are jobs-invariant ---------- *)

let test_jobs_stable_metrics () =
  let snap jobs =
    Ipds_obs.Registry.reset ();
    ignore (Ipds_harness.Attack_experiment.run_all ~attacks:2 ~seed:13 ~jobs ());
    Ipds_obs.Registry.snapshot ~stability:`Stable ()
  in
  let s1 = snap 1 in
  let s4 = snap 4 in
  check "stable metrics identical under --jobs 1 and --jobs 4" true (s1 = s4)

let () =
  Alcotest.run "flat"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_flat_matches_ref_minic;
          QCheck_alcotest.to_alcotest prop_flat_matches_ref_mir;
          Alcotest.test_case "all workloads, tampered + untampered" `Quick
            test_workloads_differential;
        ] );
      ( "hot path",
        [
          Alcotest.test_case "warm replay allocates no minor words" `Quick
            test_zero_minor_allocation;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "typed violations, O(1) depth" `Quick
            test_protocol_and_depth;
        ] );
      ( "stable metrics",
        [
          Alcotest.test_case "jobs 1 vs 4" `Quick test_jobs_stable_metrics;
        ] );
    ]
