(* Tests for the machine: interpreter semantics, pointer provenance,
   externals, faults, input scripts, and tamper injection. *)

module Mir = Ipds_mir
module M = Ipds_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run ?(inputs = M.Input_script.constant 0) ?tamper src =
  M.Interp.run
    (Mir.Parser.program_of_string src)
    { M.Interp.default_config with inputs; tamper }

let outputs o = o.M.Interp.outputs

let exit_code o =
  match o.M.Interp.reason with
  | M.Interp.Exited (M.Value.Int n) -> Some n
  | M.Interp.Exited (M.Value.Ptr _) | M.Interp.Halted | M.Interp.Fault _
  | M.Interp.Out_of_steps | M.Interp.Trapped _ ->
      None

let test_arithmetic () =
  let o =
    run
      {|
func main() {
entry:
  r0 = 6
  r1 = mul r0, 7
  r2 = sub r1, 2
  r3 = div r2, 4
  output r3
  r4 = rem r2, 7
  output r4
  ret r3
}
|}
  in
  check "outputs" true (outputs o = [ 10; 5 ]);
  check "exit" true (exit_code o = Some 10)

let test_memory_and_arrays () =
  let o =
    run
      {|
func main() {
 var x
 var a[3]
entry:
  store x, 42
  store a[0], 1
  store a[1], 2
  store a[2], 3
  r0 = load x
  output r0
  r1 = load a[1]
  output r1
  r2 = load a[4]
  output r2
  ret 0
}
|}
  in
  (* index 4 wraps to 1 *)
  check "memory semantics" true (outputs o = [ 42; 2; 2 ])

let test_pointers () =
  let o =
    run
      {|
func main() {
 var a[4]
entry:
  store a[2], 99
  r0 = addr a[0]
  r1 = add r0, 2
  r2 = load [r1]
  output r2
  r3 = sub r1, r0
  output r3
  ret 0
}
|}
  in
  check "pointer arithmetic and deref" true (outputs o = [ 99; 2 ])

let test_deref_non_pointer_faults () =
  let o =
    run
      {|
func main() {
entry:
  r0 = 12345
  r1 = load [r0]
  ret r1
}
|}
  in
  (match o.M.Interp.reason with
  | M.Interp.Fault _ -> ()
  | M.Interp.Exited _ | M.Interp.Halted | M.Interp.Out_of_steps
  | M.Interp.Trapped _ ->
      Alcotest.fail "integer deref must fault")

let test_dangling_pointer_faults () =
  let o =
    run
      {|
func leak() {
 var local
start:
  r0 = addr local[0]
  ret r0
}
func main() {
entry:
  r0 = call leak()
  r1 = load [r0]
  ret r1
}
|}
  in
  (match o.M.Interp.reason with
  | M.Interp.Fault _ -> ()
  | M.Interp.Exited _ | M.Interp.Halted | M.Interp.Out_of_steps
  | M.Interp.Trapped _ ->
      Alcotest.fail "dangling deref must fault")

let test_calls_and_recursion () =
  let o =
    run
      {|
func fact(r0) {
start:
  br le r0, 1, base, rec
base:
  ret 1
rec:
  r1 = sub r0, 1
  r2 = call fact(r1)
  r3 = mul r0, r2
  ret r3
}
func main() {
entry:
  r0 = call fact(6)
  output r0
  ret 0
}
|}
  in
  check "recursion" true (outputs o = [ 720 ])

let test_out_of_steps () =
  let p =
    Mir.Parser.program_of_string
      {|
func main() {
entry:
  jmp entry
}
|}
  in
  let o = M.Interp.run p { M.Interp.default_config with max_steps = 100 } in
  check "spin is capped" true (o.M.Interp.reason = M.Interp.Out_of_steps);
  check_int "exact cap" 100 o.M.Interp.steps

let test_halt () =
  let o = run {|
func main() {
entry:
  halt
}
|} in
  check "halt" true (o.M.Interp.reason = M.Interp.Halted)

let test_externs () =
  let o =
    run
      ~inputs:(M.Input_script.of_lists [ (0, [ 5; 6 ]); (1, [ 7; 8; 9 ]) ])
      {|
extern memset writes(0)
extern memcpy writes(0)
extern strlen pure
extern checksum pure
extern recv writes(0)
extern read_line writes(0)
func main() {
 var a[4]
 var b[4]
entry:
  r0 = addr a[0]
  r1 = call memset(r0, 3, 4)
  r2 = call checksum(r0, 4)
  output r2
  store a[2], 0
  r3 = call strlen(r0)
  output r3
  r4 = addr b[0]
  r5 = call memcpy(r4, r0, 4)
  r6 = load b[1]
  output r6
  r7 = call recv(r4, 2)
  output r7
  r8 = load b[0]
  output r8
  r9 = call read_line(r4, 1)
  r10 = load b[0]
  output r10
  ret 0
}
|}
  in
  (* memset a = [3;3;3;3] -> checksum 12; a[2]=0 -> strlen 2; memcpy b=a;
     b[1]=3; recv fills b[0..1] from channel 1 -> 7, returns 2; read_line
     fills b[0] from channel 0 -> 5 *)
  check "extern semantics" true (outputs o = [ 12; 2; 3; 2; 7; 5 ])

let test_strcmp () =
  let o =
    run
      {|
extern strcmp pure
func main() {
 var a[3]
 var b[3]
entry:
  store a[0], 5
  store a[1], 0
  store b[0], 5
  store b[1], 0
  r0 = addr a[0]
  r1 = addr b[0]
  r2 = call strcmp(r0, r1)
  output r2
  store b[0], 9
  r3 = call strcmp(r0, r1)
  output r3
  ret 0
}
|}
  in
  check "strcmp equal then less" true (outputs o = [ 0; -1 ])

let test_input_script () =
  let s = M.Input_script.of_lists [ (0, [ 1; 2 ]); (3, [ 9 ]) ] in
  check_int "channel order" 1 (M.Input_script.next s ~channel:0);
  check_int "channel order 2" 2 (M.Input_script.next s ~channel:0);
  check_int "exhausted pads zero" 0 (M.Input_script.next s ~channel:0);
  check_int "other channel" 9 (M.Input_script.next s ~channel:3);
  check_int "unknown channel" 0 (M.Input_script.next s ~channel:7);
  let r1 = M.Input_script.random ~seed:5 () in
  let r2 = M.Input_script.random ~seed:5 () in
  check "random is deterministic per seed" true
    (List.init 10 (fun _ -> M.Input_script.next r1 ~channel:0)
    = List.init 10 (fun _ -> M.Input_script.next r2 ~channel:0))

let tamper_src =
  {|
func main() {
 var flag
 var pad[3]
entry:
  store flag, 1
  jmp spin
spin:
  r0 = load flag
  output r0
  br eq r0, 1, spin2, exit
spin2:
  r1 = load flag
  output r1
  br eq r1, 1, fin, exit
fin:
  ret 0
exit:
  ret 9
}
|}

let test_tamper_deterministic () =
  let plan =
    {
      M.Tamper.at_step = 3;
      site = M.Tamper.Mem_write { model = M.Tamper.Stack_overflow; value = 77 };
      seed = 11;
    }
  in
  let o1 = run ~tamper:plan tamper_src in
  let o2 = run ~tamper:plan tamper_src in
  check "same plan, same injection" true (o1.M.Interp.injection = o2.M.Interp.injection);
  check "same outputs" true (outputs o1 = outputs o2)

let test_tamper_noop_when_same_value () =
  (* value 1 written over flag=1 is a no-op: injection must be None when
     the chosen victim already holds the value; sweep seeds to find a
     flag hit. *)
  let hit = ref false in
  for seed = 0 to 40 do
    let plan =
      {
        M.Tamper.at_step = 3;
        site = M.Tamper.Mem_write { model = M.Tamper.Stack_overflow; value = 1 };
        seed;
      }
    in
    let o = run ~tamper:plan tamper_src in
    match o.M.Interp.injection with
    | Some (M.Tamper.Tampered_cell i)
      when String.equal i.var.Mir.Var.name "flag" ->
        hit := true
    | Some _ | None -> ()
  done;
  check "tampering flag with its own value never counts" false !hit

let test_tamper_changes_behavior () =
  (* find a seed that flips flag and watch the control flow change *)
  let benign = run tamper_src in
  let flipped = ref false in
  for seed = 0 to 40 do
    if not !flipped then begin
      let plan =
        {
          M.Tamper.at_step = 3;
          site = M.Tamper.Mem_write { model = M.Tamper.Stack_overflow; value = 0 };
          seed;
        }
      in
      let o = run ~tamper:plan tamper_src in
      match o.M.Interp.injection with
      | Some (M.Tamper.Tampered_cell i)
        when String.equal i.var.Mir.Var.name "flag" ->
          flipped := true;
          check "exit code changed" true (exit_code o = Some 9);
          check "control flow changed" true (M.Interp.control_flow_changed benign o)
      | Some _ | None -> ()
    end
  done;
  check "found a flag hit" true !flipped

let test_zero_fault_plan_is_identity () =
  (* A plan that never fires must leave the run byte-identical to
     running with no plan at all, for every site variant — the typed
     tamper sites cannot perturb the zero-fault pipeline. *)
  let p = Ipds_workloads.Workloads.(program (find "sysklogd")) in
  let sites =
    [
      M.Tamper.Mem_write { model = M.Tamper.Arbitrary_write; value = 7 };
      M.Tamper.Mem_write_at { addr = 3; value = 7 };
      M.Tamper.Cond_flip;
      M.Tamper.Insn_skip;
    ]
  in
  for seed = 0 to 2 do
    let outcome tamper =
      M.Interp.run p
        {
          M.Interp.default_config with
          inputs = M.Input_script.random ~seed ();
          tamper;
        }
    in
    let plain = outcome None in
    List.iter
      (fun site ->
        let armed =
          outcome (Some { M.Tamper.at_step = max_int; site; seed = 1 })
        in
        check "zero-fault run identical to plan-free run" true (plain = armed))
      sites
  done

let test_trace_recording () =
  let o = run tamper_src in
  check_int "two branches committed" 2 (List.length o.M.Interp.branch_trace);
  check_int "branch counter agrees" 2 o.M.Interp.branches

(* ---------- memory module ---------- *)

let memory_program () =
  Mir.Parser.program_of_string
    {|
global g
global garr[3]
func callee() {
 var inner
start:
  ret
}
func main() {
 var x
 var buf[2]
entry:
  ret
}
|}

let test_memory_frames () =
  let p = memory_program () in
  let mem = M.Memory.create p in
  check_int "no frames yet" 0 (M.Memory.depth mem);
  let main = Mir.Program.find_func_exn p "main" in
  let callee = Mir.Program.find_func_exn p "callee" in
  let f1 = M.Memory.push_frame mem main in
  let f2 = M.Memory.push_frame mem callee in
  check_int "two frames" 2 (M.Memory.depth mem);
  check "both alive" true (M.Memory.frame_alive mem f1 && M.Memory.frame_alive mem f2);
  check_int "innermost is callee" f2 (M.Memory.active_frame mem);
  M.Memory.pop_frame mem;
  check "popped frame dead" false (M.Memory.frame_alive mem f2);
  check "outer frame alive" true (M.Memory.frame_alive mem f1);
  check "globals pseudo-frame always alive" true (M.Memory.frame_alive mem 0)

let test_memory_load_store () =
  let p = memory_program () in
  let mem = M.Memory.create p in
  let main = Mir.Program.find_func_exn p "main" in
  let fid = M.Memory.push_frame mem main in
  let x = List.find (fun (v : Mir.Var.t) -> v.name = "x") main.Mir.Func.locals in
  let g = List.find (fun (v : Mir.Var.t) -> v.name = "g") p.Mir.Program.globals in
  check "store local" true (M.Memory.store mem ~frame:fid x 0 (M.Value.Int 42));
  check "load local" true (M.Memory.load mem ~frame:fid x 0 = Some (M.Value.Int 42));
  check "store global" true (M.Memory.store mem ~frame:0 g 0 (M.Value.Int 7));
  check "load global" true (M.Memory.load mem ~frame:0 g 0 = Some (M.Value.Int 7));
  (* globals are not in frames, locals not in the global segment *)
  check "global var unknown in frame" true (M.Memory.load mem ~frame:fid g 0 = None);
  check "local var unknown in globals" true (M.Memory.load mem ~frame:0 x 0 = None);
  M.Memory.pop_frame mem;
  check "load from dead frame" true (M.Memory.load mem ~frame:fid x 0 = None);
  check "store to dead frame" false (M.Memory.store mem ~frame:fid x 0 M.Value.zero)

let test_memory_live_cells () =
  let p = memory_program () in
  let mem = M.Memory.create p in
  let main = Mir.Program.find_func_exn p "main" in
  let callee = Mir.Program.find_func_exn p "callee" in
  ignore (M.Memory.push_frame mem main);
  ignore (M.Memory.push_frame mem callee);
  let actives = M.Memory.live_cells mem ~scope:`Active_locals in
  check_int "active frame has one cell (inner)" 1 (List.length actives);
  let anywhere = M.Memory.live_cells mem ~scope:`Anywhere in
  (* g(1) + garr(3) + inner(1) + x(1) + buf(2) = 8 *)
  check_int "anywhere covers globals and both frames" 8 (List.length anywhere)

let test_addresses_disjoint () =
  let p = memory_program () in
  let mem = M.Memory.create p in
  let main = Mir.Program.find_func_exn p "main" in
  let fid = M.Memory.push_frame mem main in
  let cells = M.Memory.live_cells mem ~scope:`Anywhere in
  let addrs =
    List.map (fun (frame, v, i) -> M.Memory.address mem ~frame v i) cells
  in
  check_int "addresses all distinct" (List.length cells)
    (List.length (List.sort_uniq compare addrs));
  ignore fid

let test_recursion_frames_isolated () =
  (* each recursive activation gets its own locals *)
  let p =
    Mir.Parser.program_of_string
      {|
func rec(r0) {
 var depth
start:
  store depth, r0
  br le r0, 0, base, deeper
deeper:
  r1 = sub r0, 1
  r2 = call rec(r1)
  r3 = load depth
  output r3
  ret r3
base:
  r9 = load depth
  output r9
  ret 0
}
func main() {
entry:
  r0 = call rec(3)
  ret r0
}
|}
  in
  let o = M.Interp.run p M.Interp.default_config in
  (* outputs: depth values as frames unwind: 0 (base), then 1, 2, 3 *)
  check "recursion isolates frames" true (outputs o = [ 0; 1; 2; 3 ])

let test_trap_on_alarm () =
  let p =
    Mir.Parser.program_of_string
      {|
func main() {
 var flag
entry:
  store flag, 1
  jmp first
first:
  r0 = load flag
  br eq r0, 1, second, bad
second:
  r1 = load flag
  br eq r1, 1, good, bad
good:
  output 1
  ret 0
bad:
  output 2
  ret 1
}
|}
  in
  let system = Ipds_core.System.build p in
  let rec attack seed =
    if seed > 20 then Alcotest.fail "no seed hit flag"
    else begin
      let checker = Ipds_core.System.new_checker system in
      let o =
        M.Interp.run p
          {
            M.Interp.default_config with
            checker = Some checker;
            trap_on_alarm = true;
            tamper =
              Some
                {
                  M.Tamper.at_step = 4;
                  site =
                    M.Tamper.Mem_write { model = M.Tamper.Stack_overflow; value = 0 };
                  seed;
                };
          }
      in
      match o.M.Interp.injection with
      | Some _ -> o
      | None -> attack (seed + 1)
    end
  in
  let o = attack 0 in
  (match o.M.Interp.reason with
  | M.Interp.Trapped a -> check "trap carries the alarm" true (a.Ipds_core.Checker.sequence >= 0)
  | M.Interp.Exited _ | M.Interp.Halted | M.Interp.Fault _ | M.Interp.Out_of_steps ->
      Alcotest.fail "expected an IPDS trap");
  (* trapped before the tainted path could produce output *)
  check "no output after trap" true (o.M.Interp.outputs = [])

let test_printers () =
  let show pp v = Format.asprintf "%a" pp v in
  check "int value pp" true (String.equal (show M.Value.pp (M.Value.Int 3)) "3");
  let v = Mir.Var.make ~id:0 ~name:"buf" ~size:4 ~storage:Mir.Var.Local in
  let p = M.Value.Ptr { M.Value.frame = 2; var = v; index = 1 } in
  check "ptr value pp mentions var" true
    (let s = show M.Value.pp p in
     String.length s > 3 && String.sub s 0 4 = "&buf");
  check "truthy" true (M.Value.truthy p && M.Value.truthy (M.Value.Int 1));
  check "zero falsy" false (M.Value.truthy M.Value.zero);
  let e =
    { M.Event.fname = "f"; iid = 3; pc = 0x1010; kind = M.Event.Branch { taken = true; target_pc = 0x1000 } }
  in
  check "event pp mentions branch" true
    (let s = show M.Event.pp e in
     let rec has i = i + 6 <= String.length s && (String.sub s i 6 = "branch" || has (i + 1)) in
     has 0)

(* ---------- sink commit-order: replayed checking = inline checking ---------- *)

(* Run once with an inline checker AND the event sink on, replay the
   sink stream through a fresh checker, and require identical verdicts.
   This is the contract the remote verdict server depends on, and it
   only holds if the sink emits in commit order — a call that faults
   pushing its frame (stack overflow, extern fault) must never reach
   the sink. *)
let sink_replay_agrees ?tamper ?(trap_on_alarm = false) ~seed p =
  let system = Ipds_core.System.build p in
  let checker = Ipds_core.System.new_checker system in
  let events = ref [] in
  let o =
    M.Interp.run p
      {
        M.Interp.default_config with
        max_steps = 2000;
        inputs = M.Input_script.random ~seed ();
        checker = Some checker;
        trap_on_alarm;
        tamper;
        record_trace = false;
        sink = Some (fun e -> events := e :: !events);
      }
  in
  let replayed = Ipds_core.System.new_checker system in
  M.Replay.feed_all replayed
    ~defined:(Ipds_core.System.mem system)
    (List.rev !events);
  let module C = Ipds_core.Checker in
  ignore o;
  C.alarms replayed = C.alarms checker
  && C.branches_seen replayed = C.branches_seen checker
  && C.depth replayed = C.depth checker

let prop_sink_replay_matches_inline =
  QCheck2.Test.make
    ~name:"sink-replayed checking = inline checking (faulting programs)"
    ~count:100 Gen.mir_program (sink_replay_agrees ~seed:7)

let prop_sink_replay_matches_inline_tampered =
  QCheck2.Test.make
    ~name:"sink-replayed checking = inline checking (tampered, trapping)"
    ~count:100 Gen.mir_program
    (fun p ->
      sink_replay_agrees
        ~tamper:
          {
            M.Tamper.at_step = 7;
            site =
              M.Tamper.Mem_write { model = M.Tamper.Arbitrary_write; value = 13 };
            seed = 3;
          }
        ~trap_on_alarm:true ~seed:7 p)

let prop_sink_replay_matches_inline_cond_flip =
  QCheck2.Test.make
    ~name:"sink-replayed checking = inline checking (cond-flip, trapping)"
    ~count:100 Gen.mir_program
    (fun p ->
      sink_replay_agrees
        ~tamper:{ M.Tamper.at_step = 5; site = M.Tamper.Cond_flip; seed = 9 }
        ~trap_on_alarm:true ~seed:7 p)

let prop_sink_replay_matches_inline_insn_skip =
  QCheck2.Test.make
    ~name:"sink-replayed checking = inline checking (insn-skip, trapping)"
    ~count:100 Gen.mir_program
    (fun p ->
      sink_replay_agrees
        ~tamper:{ M.Tamper.at_step = 5; site = M.Tamper.Insn_skip; seed = 9 }
        ~trap_on_alarm:true ~seed:7 p)

(* The branch-fault differential on a real server: every injected flip
   or skip that changes the committed trace must yield the same verdicts
   through Replay.feed over the sink stream as through the inline
   checker — the contract the remote verdict path depends on. *)
let test_sink_replay_branch_faults_workload () =
  let p = Ipds_workloads.Workloads.(program (find "telnetd")) in
  let system = Ipds_core.System.build p in
  let module C = Ipds_core.Checker in
  let changed = ref 0 and injected = ref 0 in
  List.iter
    (fun site ->
      for i = 0 to 9 do
        let inputs = M.Input_script.random ~seed:(400 + i) () in
        let benign =
          M.Interp.run p
            { M.Interp.default_config with inputs; record_trace = false }
        in
        let at_step = max 1 (benign.M.Interp.steps * (i + 1) / 12) in
        let checker = Ipds_core.System.new_checker system in
        let events = ref [] in
        let o =
          M.Interp.run p
            {
              M.Interp.default_config with
              inputs;
              checker = Some checker;
              tamper = Some { M.Tamper.at_step; site; seed = i };
              record_trace = false;
              sink = Some (fun e -> events := e :: !events);
            }
        in
        match o.M.Interp.injection with
        | Some (M.Tamper.Flipped_branch _ | M.Tamper.Skipped_branch _) ->
            incr injected;
            if M.Interp.control_flow_changed benign o then incr changed;
            let replayed = Ipds_core.System.new_checker system in
            M.Replay.feed_all replayed
              ~defined:(Ipds_core.System.mem system)
              (List.rev !events);
            check "replayed verdicts = inline (branch fault)" true
              (C.alarms replayed = C.alarms checker
              && C.branches_seen replayed = C.branches_seen checker
              && C.depth replayed = C.depth checker)
        | Some (M.Tamper.Tampered_cell _) ->
            Alcotest.fail "branch-fault plan injected a memory write"
        | None -> ()
      done)
    [ M.Tamper.Cond_flip; M.Tamper.Insn_skip ];
  check "campaign injected branch faults" true (!injected > 0);
  check "some faults changed the committed trace" true (!changed > 0)

let test_sink_commit_order_on_stack_overflow () =
  (* unbounded recursion: the interpreter faults inside push_function
     mid-[Call]; with commit-order emission the sink never sees the
     aborted call, so replay depth matches the inline checker's *)
  let p =
    Mir.Parser.program_of_string
      {|
func f() {
start:
  r0 = call f()
  ret r0
}
func main() {
entry:
  r0 = call f()
  ret r0
}
|}
  in
  (match
     (M.Interp.run p { M.Interp.default_config with max_steps = 100_000 }).M.Interp.reason
   with
  | M.Interp.Fault _ -> ()
  | _ -> Alcotest.fail "expected a call-stack-overflow fault");
  check "replay = inline across a mid-call fault" true
    (sink_replay_agrees ~seed:1 p)

let prop_random_programs_run =
  QCheck2.Test.make ~name:"random MIR programs run without crashing the host"
    ~count:150 Gen.mir_program (fun p ->
      let o =
        M.Interp.run p
          {
            M.Interp.default_config with
            max_steps = 2000;
            inputs = M.Input_script.random ~seed:1 ();
          }
      in
      o.M.Interp.steps <= 2000)

let () =
  Alcotest.run "machine"
    [
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "memory/arrays" `Quick test_memory_and_arrays;
          Alcotest.test_case "pointers" `Quick test_pointers;
          Alcotest.test_case "deref non-pointer" `Quick test_deref_non_pointer_faults;
          Alcotest.test_case "dangling pointer" `Quick test_dangling_pointer_faults;
          Alcotest.test_case "calls/recursion" `Quick test_calls_and_recursion;
          Alcotest.test_case "out of steps" `Quick test_out_of_steps;
          Alcotest.test_case "halt" `Quick test_halt;
          QCheck_alcotest.to_alcotest prop_random_programs_run;
        ] );
      ( "sink",
        [
          QCheck_alcotest.to_alcotest prop_sink_replay_matches_inline;
          QCheck_alcotest.to_alcotest prop_sink_replay_matches_inline_tampered;
          QCheck_alcotest.to_alcotest prop_sink_replay_matches_inline_cond_flip;
          QCheck_alcotest.to_alcotest prop_sink_replay_matches_inline_insn_skip;
          Alcotest.test_case "branch-fault differential on a server" `Quick
            test_sink_replay_branch_faults_workload;
          Alcotest.test_case "commit order across mid-call fault" `Quick
            test_sink_commit_order_on_stack_overflow;
        ] );
      ( "memory",
        [
          Alcotest.test_case "frames" `Quick test_memory_frames;
          Alcotest.test_case "load/store" `Quick test_memory_load_store;
          Alcotest.test_case "live cells" `Quick test_memory_live_cells;
          Alcotest.test_case "addresses disjoint" `Quick test_addresses_disjoint;
          Alcotest.test_case "recursion isolation" `Quick test_recursion_frames_isolated;
        ] );
      ( "externs",
        [
          Alcotest.test_case "memory externs" `Quick test_externs;
          Alcotest.test_case "strcmp" `Quick test_strcmp;
        ] );
      ("inputs", [ Alcotest.test_case "scripts" `Quick test_input_script ]);
      ( "tamper",
        [
          Alcotest.test_case "deterministic" `Quick test_tamper_deterministic;
          Alcotest.test_case "no-op value" `Quick test_tamper_noop_when_same_value;
          Alcotest.test_case "changes behavior" `Quick test_tamper_changes_behavior;
          Alcotest.test_case "zero-fault plan is identity" `Quick
            test_zero_fault_plan_is_identity;
          Alcotest.test_case "trace recording" `Quick test_trace_recording;
          Alcotest.test_case "trap on alarm" `Quick test_trap_on_alarm;
          Alcotest.test_case "printers" `Quick test_printers;
        ] );
    ]
