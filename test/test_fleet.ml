(* Property tests for the fleet subsystem: the consistent-hash ring
   (stability, balance, failover order, minimal remapping on node
   loss), the bounded backoff schedule, topology addressing, and the
   sharded LRU cache — differentially against a reference model over
   random load/evict interleavings, then hammered from 8 domains with
   exact counter reconciliation.  The cache's structural contract
   (key→shard stability, capacity bound, no cross-shard aliasing) is
   asserted through the predicates the library itself exports. *)

module F = Ipds_fleet
module Ring = F.Ring
module Backoff = F.Backoff
module Topology = F.Topology
module Cache = F.Shard_cache
module Hashing = F.Hashing
module Reg = Ipds_obs.Registry
module Q = QCheck2.Gen

let ( let* ) = Q.bind
let check = Alcotest.(check bool)

(* ---------- hashing ---------- *)

let test_hashing () =
  for i = 0 to 499 do
    let k = Printf.sprintf "key-%d" i in
    let h = Hashing.stable_hash k in
    check "non-negative" true (h >= 0);
    check "deterministic" true (h = Hashing.stable_hash k);
    let s = Hashing.shard_of ~shards:7 k in
    check "in range" true (s >= 0 && s < 7)
  done;
  (* a fixed anchor: the hash must be stable across runs and processes,
     or ring placement and shard caches silently disagree after restart *)
  check "anchored" true
    (Hashing.shard_of ~shards:1000 "anchor"
    = Hashing.shard_of ~shards:1000 "anchor")

(* ---------- ring ---------- *)

let node_names n = List.init n (Printf.sprintf "shard-%d")
let keys n = List.init n (Printf.sprintf "artifact:%d")

let test_ring_stable () =
  let a = Ring.create (node_names 5) and b = Ring.create (node_names 5) in
  List.iter
    (fun k ->
      check "independent rings agree" true (Ring.route a k = Ring.route b k))
    (keys 1000)

let test_ring_balance () =
  let n = 8 in
  let ring = Ring.create (node_names n) in
  let counts = Array.make n 0 in
  let total = 20_000 in
  List.iter
    (fun k ->
      let i = Ring.route ring k in
      counts.(i) <- counts.(i) + 1)
    (keys total);
  Array.iteri
    (fun i c ->
      let share = float_of_int c /. float_of_int total in
      if share < 0.04 || share > 0.30 then
        Alcotest.failf "node %d owns %.1f%% of keys (expected ~%.1f%%)" i
          (100. *. share)
          (100. /. float_of_int n))
    counts

let test_ring_successors () =
  let n = 6 in
  let ring = Ring.create (node_names n) in
  List.iter
    (fun k ->
      let succ = Ring.successors ring k in
      check "head is the owner" true (List.hd succ = Ring.route ring k);
      check "covers every node once" true
        (List.sort_uniq compare succ = List.init n Fun.id))
    (keys 200)

(* Removing a node must remap only the keys it owned: every key routed
   to a surviving node keeps its placement — the property that makes a
   shard death a bounded cache-warmth loss, not a fleet-wide reshuffle. *)
let test_ring_removal_minimal () =
  let names = node_names 8 in
  let full = Ring.create names in
  List.iteri
    (fun _ removed ->
      let survivors = List.filter (fun n -> n <> removed) names in
      let shrunk = Ring.create survivors in
      let moved = ref 0 and kept = ref 0 in
      List.iter
        (fun k ->
          let before = Ring.route_name full k in
          if before = removed then incr moved
          else begin
            check "surviving placement unchanged" true
              (Ring.route_name shrunk k = before);
            incr kept
          end)
        (keys 2000);
      if !moved = 0 then Alcotest.failf "%s owned no keys at all" removed;
      if !kept = 0 then Alcotest.fail "every key moved")
    names

(* ---------- backoff ---------- *)

let test_backoff () =
  let b = Backoff.default in
  let sum = ref 0. in
  for k = 0 to Backoff.max_attempts b - 1 do
    let d = Backoff.delay b k in
    check "positive" true (d > 0.);
    check "per-sleep cap" true (d <= 0.25 +. 1e-9);
    if k > 0 then
      check "non-decreasing" true (d >= Backoff.delay b (k - 1) -. 1e-9);
    sum := !sum +. d
  done;
  check "total bound is the sum" true (abs_float (Backoff.total_bound b -. !sum) < 1e-9);
  let tiny = Backoff.create ~base:0.01 ~factor:3. ~max_delay:0.02 ~max_attempts:4 () in
  check "base" true (abs_float (Backoff.delay tiny 0 -. 0.01) < 1e-9);
  check "capped" true (abs_float (Backoff.delay tiny 3 -. 0.02) < 1e-9);
  check "bounded retries" true (Backoff.max_attempts tiny = 4)

(* ---------- topology ---------- *)

let test_topology () =
  let unix = Topology.create ~shards:4 (`Unix "/tmp/fleet.sock") in
  for i = 0 to 3 do
    match Topology.address unix i with
    | `Unix p ->
        check "unix shard path" true (p = Printf.sprintf "/tmp/fleet.sock.%d" i)
    | `Tcp _ -> Alcotest.fail "unix topology gave a tcp address"
  done;
  let tcp = Topology.create ~shards:3 (`Tcp ("127.0.0.1", 9000)) in
  for i = 0 to 2 do
    match Topology.address tcp i with
    | `Tcp (h, p) ->
        check "tcp shard port" true (h = "127.0.0.1" && p = 9000 + i)
    | `Unix _ -> Alcotest.fail "tcp topology gave a unix address"
  done;
  let names = Topology.names unix in
  check "one name per shard" true (List.length names = 4);
  check "names distinct" true
    (List.sort_uniq compare names = List.sort compare names);
  let ring = Topology.ring unix in
  List.iter
    (fun k ->
      let s = Ring.route ring k in
      check "ring routes into the topology" true (s >= 0 && s < 4))
    (keys 100)

(* ---------- shard cache: differential model check ---------- *)

(* A reference implementation of the contract: per-shard MRU lists with
   the same promote-on-hit / insert-evict-on-load / don't-cache-errors
   semantics, trivially correct by inspection. *)
type model = { rings : string list array; slots : int }

let model_create cache =
  {
    rings = Array.make (Cache.shards cache) [];
    slots = Cache.slots_per_shard cache;
  }

let model_fetch m cache key ok =
  let sh = Cache.shard_of_key cache key in
  let ring = m.rings.(sh) in
  if List.mem key ring then begin
    m.rings.(sh) <- key :: List.filter (fun k -> k <> key) ring;
    `Hit
  end
  else if not ok then `Err
  else begin
    let r = key :: ring in
    m.rings.(sh) <-
      (if List.length r > m.slots then List.filteri (fun i _ -> i < m.slots) r
       else r);
    `Loaded
  end

let model_mem m cache key =
  List.mem key m.rings.(Cache.shard_of_key cache key)

let assert_invariants what cache =
  List.iter
    (fun (name, holds) ->
      if not holds then Alcotest.failf "%s: invariant %s violated" what name)
    (Cache.check_invariants cache)

(* An op is (key index, loader succeeds?). *)
let ops_gen : (int * bool) list Q.t =
  Q.list_size (Q.int_range 1 400)
    (let* k = Q.int_range 0 11 in
     let* ok = Q.frequency [ (9, Q.return true); (1, Q.return false) ] in
     Q.return (k, ok))

let prop_cache_matches_model =
  QCheck2.Test.make
    ~name:"sharded cache = reference LRU model over load/evict interleavings"
    ~count:200 ops_gen (fun ops ->
      let cache = Cache.create ~shards:3 ~slots_per_shard:2 () in
      let model = model_create cache in
      let universe = List.init 12 (Printf.sprintf "k%d") in
      List.iteri
        (fun step (ki, ok) ->
          let key = List.nth universe ki in
          let expected = model_fetch model cache key ok in
          let got =
            Cache.fetch cache key (fun () ->
                if ok then Ok ("v:" ^ key) else Error "load failed")
          in
          (match (expected, got) with
          | `Hit, `Hit v | `Loaded, `Loaded v ->
              if v <> "v:" ^ key then
                QCheck2.Test.fail_reportf "step %d: wrong value %S" step v
          | `Err, `Err e ->
              if e <> "load failed" then
                QCheck2.Test.fail_reportf "step %d: wrong error" step
          | _ ->
              QCheck2.Test.fail_reportf "step %d: outcome diverged from model"
                step);
          assert_invariants "model check" cache)
        ops;
      (* residency agrees everywhere, and the counters reconcile *)
      List.iter
        (fun key ->
          if Cache.mem cache key <> model_mem model cache key then
            QCheck2.Test.fail_reportf "residency of %s diverged" key)
        universe;
      let s = Cache.stats cache in
      let fetches = List.length ops in
      let loads = List.length (List.filter snd ops) in
      ignore loads;
      s.Cache.hits + s.Cache.misses = fetches
      && s.Cache.size = Cache.length cache
      && s.Cache.size <= Cache.shards cache * Cache.slots_per_shard cache)

(* ---------- shard cache: 8-domain hammer ---------- *)

let test_cache_hammer () =
  let cache =
    Cache.create ~metrics_prefix:"testfleet.cache" ~shards:8 ~slots_per_shard:4
      ()
  in
  let domains = 8 and per_domain = 2000 in
  let failing_every = 97 in
  let worker d =
    Domain.spawn (fun () ->
        let st = Random.State.make [| 0xf1ee7; d |] in
        let errs = ref 0 in
        for i = 1 to per_domain do
          let key = Printf.sprintf "obj-%d" (Random.State.int st 64) in
          let fails = i mod failing_every = 0 in
          match
            Cache.fetch cache key (fun () ->
                if fails then Error `Load_failed else Ok (key ^ "!"))
          with
          | `Hit v | `Loaded v ->
              if v <> key ^ "!" then failwith ("wrong value for " ^ key)
          | `Err `Load_failed -> incr errs
        done;
        !errs)
  in
  let errs =
    List.init domains worker |> List.map Domain.join
    |> List.fold_left ( + ) 0
  in
  assert_invariants "hammer" cache;
  let s = Cache.stats cache in
  (* exact reconciliation: every fetch is a hit or a miss; every
     resident entry is a successful load that has not been evicted *)
  check "hits+misses = fetches" true
    (s.Cache.hits + s.Cache.misses = domains * per_domain);
  check "size = successful loads - evictions" true
    (s.Cache.size = s.Cache.misses - errs - s.Cache.evictions);
  check "size within capacity" true
    (s.Cache.size <= Cache.shards cache * Cache.slots_per_shard cache);
  check "cache saw real contention" true (s.Cache.hits > 0 && s.Cache.misses > 0);
  (* per-shard stats sum to the aggregate *)
  let sum =
    List.init (Cache.shards cache) (Cache.shard_stats cache)
    |> List.fold_left
         (fun (h, m, e, sz) (st : Cache.stats) ->
           (h + st.Cache.hits, m + st.Cache.misses, e + st.Cache.evictions,
            sz + st.Cache.size))
         (0, 0, 0, 0)
  in
  check "per-shard stats sum to aggregate" true
    (sum
    = (s.Cache.hits, s.Cache.misses, s.Cache.evictions, s.Cache.size));
  (* the obs counters mirror the internal stats exactly *)
  let cval name = Reg.counter_value (Reg.counter ~stable:false name) in
  check "obs hits reconcile" true (cval "testfleet.cache_hits" = s.Cache.hits);
  check "obs misses reconcile" true
    (cval "testfleet.cache_misses" = s.Cache.misses);
  check "obs evictions reconcile" true
    (cval "testfleet.cache_evictions" = s.Cache.evictions);
  let shard_sum suffix =
    List.init (Cache.shards cache) (fun i ->
        cval (Printf.sprintf "testfleet.cache_shard%d%s" i suffix))
    |> List.fold_left ( + ) 0
  in
  check "per-shard obs counters reconcile" true
    (shard_sum "_hits" = s.Cache.hits
    && shard_sum "_misses" = s.Cache.misses
    && shard_sum "_evictions" = s.Cache.evictions)

(* Same-key fetches serialize on the shard lock: a key is loaded once
   no matter how many domains race it. *)
let test_cache_single_load () =
  let cache = Cache.create ~shards:4 ~slots_per_shard:8 () in
  let loads = Atomic.make 0 in
  let barrier = Atomic.make 0 in
  let worker () =
    Domain.spawn (fun () ->
        Atomic.incr barrier;
        while Atomic.get barrier < 8 do
          Domain.cpu_relax ()
        done;
        for _ = 1 to 50 do
          match
            Cache.fetch cache "the-one-key" (fun () ->
                Atomic.incr loads;
                Ok 42)
          with
          | `Hit 42 | `Loaded 42 -> ()
          | _ -> failwith "wrong value"
        done)
  in
  List.init 8 (fun _ -> worker ()) |> List.iter Domain.join;
  check "one load for one key" true (Atomic.get loads = 1);
  assert_invariants "single load" cache

let () =
  Alcotest.run "fleet"
    [
      ( "hashing",
        [ Alcotest.test_case "stable, uniform, in-range" `Quick test_hashing ] );
      ( "ring",
        [
          Alcotest.test_case "stability across rings" `Quick test_ring_stable;
          Alcotest.test_case "balance" `Quick test_ring_balance;
          Alcotest.test_case "successor order" `Quick test_ring_successors;
          Alcotest.test_case "minimal remap on removal" `Quick
            test_ring_removal_minimal;
        ] );
      ( "backoff",
        [ Alcotest.test_case "bounded schedule" `Quick test_backoff ] );
      ( "topology",
        [ Alcotest.test_case "addressing" `Quick test_topology ] );
      ( "shard-cache",
        [
          QCheck_alcotest.to_alcotest prop_cache_matches_model;
          Alcotest.test_case "8-domain hammer + counter reconciliation" `Quick
            test_cache_hammer;
          Alcotest.test_case "racing loads collapse to one" `Quick
            test_cache_single_load;
        ] );
    ]
