(* End-to-end smoke test of the pass pipeline and the function-granular
   incremental cache (the @pass-smoke alias, wired into runtest).

   One process, one fresh store, three builds through
   Ipds_artifact.Incremental:

   - cold: whole-program miss, every function misses the fn tier, the
     analyze pass runs once per function;
   - warm: whole-program hit, nothing compiles or analyzes;
   - edited: one constant in one function changed (same instruction
     count, so every other function keeps its base PC and digest) —
     whole-program miss, every *other* function hits the fn tier, and
     the analyze/tables passes run exactly once.

   Plus the assembly invariants: the incrementally assembled system is
   byte-identical to a fresh sequential build of the edited program,
   for any --jobs; and a version-skewed (v1-patched) artifact loads as
   a full miss but still rebuilds from the intact fn tier without
   re-analysis. *)

module Core = Ipds_core
module A = Ipds_artifact.Artifact
module Obj = Ipds_artifact.Object_file
module Store = Ipds_artifact.Store
module Incremental = Ipds_artifact.Incremental
module Pass = Ipds_pass.Pass
module Pool = Ipds_parallel.Pool

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("pass-smoke: " ^ s);
      exit 1)
    fmt

(* Three functions; [clamp] is a pure leaf, so editing its threshold
   changes neither the points-to solution nor any callee summary —
   exactly the situation where only one digest may move. *)
let source threshold =
  Printf.sprintf
    {|
int clamp(int x) {
  if (x > %d) { return %d; }
  return x;
}

int check_pw(int *buf, int n) {
  int h;
  h = hash_pw(buf, n);
  if (h == 4660) { return 1; }
  return 0;
}

int main() {
  int sess[4];
  int pw[4];
  int i;
  int ok;
  int c;
  sess[0] = 0;
  sess[1] = 0;
  read_line(&pw[0], 4);
  ok = check_pw(&pw[0], 4);
  if (ok == 1) { sess[0] = 1; output(1); } else { output(0); }
  i = 0;
  while (i < 5) {
    c = input(0) %% 3;
    if (sess[0]) { output(7); } else { output(6); }
    if (c == 2) { sess[1] = sess[1] + 1; }
    i = i + 1;
  }
  output(clamp(sess[1]));
  return 0;
}
|}
    threshold threshold

let src_v1 = source 100
let src_v2 = source 99
let options = Ipds_correlation.Analysis.default_options

type snap = {
  s : Store.counters;
  analyze : int;
  tables : int;
  digests : int;
  builds : int;
}

let snap () =
  {
    s = Store.counters ();
    analyze = Pass.units "analyze";
    tables = Pass.units "tables";
    digests = Pass.units "digest";
    builds = Core.System.build_count ();
  }

let expect name got want =
  if got <> want then fail "%s: got %d, want %d" name got want

let () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-pass-smoke-%d" (Unix.getpid ()))
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
  @@ fun () ->
  let store = Store.create ~dir in
  let key src = Store.key ~source:src ~promote:false ~options in
  let prog1 = Ipds_minic.Minic.compile src_v1 in
  let prog2 = Ipds_minic.Minic.compile src_v2 in
  let n = List.length prog1.Ipds_mir.Program.funcs in
  if n < 3 then fail "want at least 3 functions, got %d" n;

  (* cold: everything misses, every function analyzed *)
  let t0 = snap () in
  let cold = Incremental.system ~options store ~key:(key src_v1) (fun () -> prog1) in
  let t1 = snap () in
  expect "cold: artifact misses" (t1.s.Store.misses - t0.s.Store.misses) 1;
  expect "cold: artifact hits" (t1.s.Store.hits - t0.s.Store.hits) 0;
  expect "cold: fn misses" (t1.s.Store.fn_misses - t0.s.Store.fn_misses) n;
  expect "cold: fn hits" (t1.s.Store.fn_hits - t0.s.Store.fn_hits) 0;
  expect "cold: analyze units" (t1.analyze - t0.analyze) n;
  expect "cold: tables units" (t1.tables - t0.tables) n;
  expect "cold: digest units" (t1.digests - t0.digests) n;
  expect "cold: builds" (t1.builds - t0.builds) 1;

  (* warm: the whole-program artifact hits; no compile, no analysis *)
  let warm =
    Incremental.system ~options store ~key:(key src_v1) (fun () ->
        fail "warm run re-ran the front end")
  in
  let t2 = snap () in
  expect "warm: artifact hits" (t2.s.Store.hits - t1.s.Store.hits) 1;
  expect "warm: fn lookups" (t2.s.Store.fn_hits - t1.s.Store.fn_hits) 0;
  expect "warm: analyze units" (t2.analyze - t1.analyze) 0;
  expect "warm: builds" (t2.builds - t1.builds) 0;
  if not (Bytes.equal (A.to_bytes warm) (A.to_bytes cold)) then
    fail "warm artifact bytes differ from cold";

  (* edited: exactly one function re-analyzed, the rest served from the
     fn tier — through a pool, which must not change anything *)
  let edited =
    Pool.with_pool ~jobs:3 (fun pool ->
        Incremental.system ~options ~pool store ~key:(key src_v2) (fun () ->
            prog2))
  in
  let t3 = snap () in
  expect "edited: artifact misses" (t3.s.Store.misses - t2.s.Store.misses) 1;
  expect "edited: fn hits" (t3.s.Store.fn_hits - t2.s.Store.fn_hits) (n - 1);
  expect "edited: fn misses" (t3.s.Store.fn_misses - t2.s.Store.fn_misses) 1;
  expect "edited: analyze units" (t3.analyze - t2.analyze) 1;
  expect "edited: tables units" (t3.tables - t2.tables) 1;
  expect "edited: digest units" (t3.digests - t2.digests) n;

  (* digests: only the edited function's moved *)
  let digest sys f = (Core.System.info sys f).Core.System.digest in
  if String.equal (digest cold "clamp") (digest edited "clamp") then
    fail "edited clamp kept its digest";
  List.iter
    (fun f ->
      if not (String.equal (digest cold f) (digest edited f)) then
        fail "unedited %s changed digest" f)
    [ "check_pw"; "main" ];

  (* assembly: incremental + parallel build is byte-identical to a
     fresh sequential one *)
  let fresh = Core.System.build ~options prog2 in
  if not (Bytes.equal (A.to_bytes edited) (A.to_bytes fresh)) then
    fail "incremental artifact differs from a fresh sequential build";
  let t3 = snap () in

  (* version skew: patch the stored artifact's format version to 1 —
     the whole-program load must degrade to a corrupt miss, but the
     rebuild still comes entirely from the intact fn tier *)
  let path = Store.path_of_key store (key src_v1) in
  let bytes = Obj.read_file path in
  Bytes.set_int32_le bytes 8 1l;
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  let rebuilt =
    Incremental.system ~options store ~key:(key src_v1) (fun () -> prog1)
  in
  let t4 = snap () in
  expect "skew: corrupt misses" (t4.s.Store.corrupt - t3.s.Store.corrupt) 1;
  expect "skew: fn hits" (t4.s.Store.fn_hits - t3.s.Store.fn_hits) n;
  expect "skew: analyze units" (t4.analyze - t3.analyze) 0;
  if not (Bytes.equal (A.to_bytes rebuilt) (A.to_bytes cold)) then
    fail "post-skew rebuild differs from the cold artifact";

  Printf.printf
    "pass-smoke OK: cold %d/%d analyzed, warm 0, one-function edit \
     re-analyzed 1 of %d; artifacts byte-identical (incremental, pool, \
     version-skew rebuild)\n"
    n n n
