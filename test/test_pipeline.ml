(* Tests for the timing substrate: cache, branch predictor, the IPDS
   engine model, and the CPU trace consumer. *)

module Mir = Ipds_mir
module P = Ipds_pipeline
module M = Ipds_machine
module Core = Ipds_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- cache ---------- *)

let small_cache () =
  P.Cache.create
    { P.Config.size_bytes = 256; assoc = 2; block_bytes = 32; hit_latency = 1 }

let test_cache_cold_miss_then_hit () =
  let c = small_cache () in
  check "cold miss" false (P.Cache.access c 0x1000);
  check "then hit" true (P.Cache.access c 0x1000);
  check "same block hits" true (P.Cache.access c 0x101f);
  check "next block misses" false (P.Cache.access c 0x1020);
  check_int "misses" 2 (P.Cache.misses c);
  check_int "accesses" 4 (P.Cache.accesses c)

let test_cache_lru_eviction () =
  (* 256B, 2-way, 32B blocks -> 4 sets.  Three blocks mapping to set 0:
     block addresses stride = 4 sets * 32B = 128. *)
  let c = small_cache () in
  ignore (P.Cache.access c 0);
  ignore (P.Cache.access c 128);
  (* touch block 0 so block 128 is LRU *)
  ignore (P.Cache.access c 0);
  ignore (P.Cache.access c 256);
  check "block 0 survives (was MRU)" true (P.Cache.access c 0);
  check "block 128 evicted (was LRU)" false (P.Cache.access c 128)

let test_cache_stats_reset () =
  let c = small_cache () in
  ignore (P.Cache.access c 0);
  P.Cache.reset_stats c;
  check_int "reset" 0 (P.Cache.accesses c)

(* ---------- predictor ---------- *)

let test_predictor_learns_bias () =
  let p = P.Predictor.create ~history_bits:8 in
  (* always-taken branch: after warmup, predictions are correct *)
  for _ = 1 to 10 do
    ignore (P.Predictor.observe p ~pc:0x4000 ~taken:true)
  done;
  let correct = P.Predictor.observe p ~pc:0x4000 ~taken:true in
  check "biased branch learned" true correct

let test_predictor_learns_pattern () =
  let p = P.Predictor.create ~history_bits:8 in
  (* alternating T/N/T/N: a 2-level predictor captures it via history *)
  let flips = ref 0 in
  for i = 1 to 200 do
    let taken = i mod 2 = 0 in
    if not (P.Predictor.observe p ~pc:0x4000 ~taken) then incr flips
  done;
  (* after warmup the pattern is predicted; allow generous warmup misses *)
  check "alternating pattern learned" true (!flips < 40);
  check_int "lookups counted" 200 (P.Predictor.lookups p)

(* ---------- ipds unit ---------- *)

let unit_config = P.Config.default

let test_unit_latency_includes_dispatch () =
  let u = P.Ipds_unit.create unit_config in
  let stall = P.Ipds_unit.on_branch u ~cycle:100. ~verify:true ~bat_nodes:1 in
  check "no stall on empty queue" true (stall = 0.);
  let s = P.Ipds_unit.stats u in
  check_int "one verify" 1 s.P.Ipds_unit.verifies;
  check "latency at least dispatch + service" true
    (P.Ipds_unit.avg_detection_latency s
    >= float_of_int unit_config.P.Config.ipds_dispatch_latency +. 1.)

let test_unit_queue_fills_and_stalls () =
  let u = P.Ipds_unit.create unit_config in
  (* slam requests at the same cycle; eventually the queue fills and the
     enqueue reports a stall *)
  let stalled = ref false in
  for _ = 1 to 200 do
    if P.Ipds_unit.on_branch u ~cycle:0. ~verify:true ~bat_nodes:8 > 0. then
      stalled := true
  done;
  check "burst eventually stalls" true !stalled;
  let s = P.Ipds_unit.stats u in
  check "stall cycles recorded" true (s.P.Ipds_unit.stall_cycles > 0.);
  check "queue bounded" true (s.P.Ipds_unit.max_queue <= unit_config.P.Config.ipds_queue_entries + 1)

let big_sizes bits = { Core.Tables.bsv_bits = bits; bcv_bits = bits; bat_bits = bits }

let test_unit_spill_fill () =
  let u = P.Ipds_unit.create unit_config in
  (* Frames of 900 bits against a 1024-bit BCV cap: the second push must
     spill the outer frame, and returning must fill it back. *)
  P.Ipds_unit.on_call u ~cycle:0. ~sizes:(big_sizes 900);
  P.Ipds_unit.on_call u ~cycle:1. ~sizes:(big_sizes 900);
  let s = P.Ipds_unit.stats u in
  check_int "one spill" 1 s.P.Ipds_unit.spills;
  P.Ipds_unit.on_return u ~cycle:2.;
  let s2 = P.Ipds_unit.stats u in
  check_int "one fill" 1 s2.P.Ipds_unit.fills

let test_unit_context_switch () =
  let u = P.Ipds_unit.create unit_config in
  P.Ipds_unit.on_call u ~cycle:0. ~sizes:(big_sizes 500);
  let stall = P.Ipds_unit.on_context_switch u ~cycle:10. in
  check "switch stalls the cpu" true (stall > 0.);
  let s = P.Ipds_unit.stats u in
  Alcotest.(check int) "switch counted" 1 s.P.Ipds_unit.context_switches;
  check "ctx stall recorded" true (s.P.Ipds_unit.ctx_stall_cycles = stall)

let test_cpu_ctx_period () =
  (* frequent switches cost more than rare ones *)
  let p =
    Ipds_mir.Parser.program_of_string
      {|
func main() {
 var x
entry:
  store x, 0
  jmp loop
loop:
  r0 = load x
  r1 = add r0, 1
  store x, r1
  br lt r1, 3000, loop, exit
exit:
  ret 0
}
|}
  in
  let system = Core.System.build p in
  let run period =
    let cpu = P.Cpu.create ?ctx_switch_period:period ~system:(Some system) () in
    ignore
      (M.Interp.run p
         { M.Interp.default_config with observer = Some (P.Cpu.observer cpu) });
    (P.Cpu.finish cpu).P.Cpu.cycles
  in
  let none = run None in
  let rare = run (Some 4000.) in
  let often = run (Some 500.) in
  check "switching costs cycles" true (rare > none);
  check "more switching costs more" true (often > rare)

(* ---------- cpu ---------- *)

let spin_program =
  {|
func main() {
 var x
entry:
  store x, 0
  jmp loop
loop:
  r0 = load x
  r1 = add r0, 1
  store x, r1
  br lt r1, 200, loop, exit
exit:
  ret 0
}
|}

let run_cpu ~with_ipds =
  let p = Mir.Parser.program_of_string spin_program in
  let system = if with_ipds then Some (Core.System.build p) else None in
  let cpu = P.Cpu.create ~system () in
  ignore
    (M.Interp.run p
       { M.Interp.default_config with observer = Some (P.Cpu.observer cpu) });
  P.Cpu.finish cpu

let test_cpu_baseline () =
  let r = run_cpu ~with_ipds:false in
  check "instructions counted" true (r.P.Cpu.instructions > 800);
  check "cycles positive" true (r.P.Cpu.cycles > 0.);
  check "ipc sane" true (r.P.Cpu.ipc > 0.1 && r.P.Cpu.ipc <= 8.);
  check "branches seen" true (r.P.Cpu.branches >= 200);
  check "no ipds stats" true (r.P.Cpu.ipds = None)

let test_cpu_with_ipds () =
  let base = run_cpu ~with_ipds:false in
  let ipds = run_cpu ~with_ipds:true in
  check_int "same instruction stream" base.P.Cpu.instructions ipds.P.Cpu.instructions;
  check "ipds not faster than baseline" true (ipds.P.Cpu.cycles >= base.P.Cpu.cycles);
  (match ipds.P.Cpu.ipds with
  | Some s ->
      check "updates happened" true (s.P.Cpu.updates >= 200);
      check "verifies happened" true (s.P.Cpu.verifies >= 200);
      check "no alarms on benign run" true (s.P.Cpu.alarms = 0);
      check "latency positive" true (s.P.Cpu.avg_detection_latency > 0.)
  | None -> Alcotest.fail "expected ipds stats")

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1)) in
  go 0

let test_config_table_renders () =
  let s = Format.asprintf "%a" P.Config.pp P.Config.default in
  check "mentions RUU" true (contains s "RUU");
  check "mentions BAT stack" true (contains s "BAT stack")

let () =
  Alcotest.run "pipeline"
    [
      ( "cache",
        [
          Alcotest.test_case "cold miss then hit" `Quick test_cache_cold_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "stats reset" `Quick test_cache_stats_reset;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "bias" `Quick test_predictor_learns_bias;
          Alcotest.test_case "pattern" `Quick test_predictor_learns_pattern;
        ] );
      ( "ipds-unit",
        [
          Alcotest.test_case "latency" `Quick test_unit_latency_includes_dispatch;
          Alcotest.test_case "queue stalls" `Quick test_unit_queue_fills_and_stalls;
          Alcotest.test_case "spill/fill" `Quick test_unit_spill_fill;
          Alcotest.test_case "context switch" `Quick test_unit_context_switch;
          Alcotest.test_case "cpu ctx period" `Quick test_cpu_ctx_period;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "baseline" `Quick test_cpu_baseline;
          Alcotest.test_case "with ipds" `Quick test_cpu_with_ipds;
          Alcotest.test_case "config table" `Quick test_config_table_renders;
        ] );
    ]
