(* Tests for the domain pool and the exactly-once memo the parallel
   harness is built on. *)

module Pool = Ipds_parallel.Pool
module Memo = Ipds_parallel.Memo

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_map_order_and_values () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      check "squares in order" true
        (Pool.map p (fun x -> x * x) xs = List.map (fun x -> x * x) xs))

let test_edge_inputs () =
  Pool.with_pool ~jobs:3 (fun p ->
      check "empty input" true (Pool.map p (fun x -> x + 1) [] = []);
      check "singleton input" true (Pool.map p string_of_int [ 7 ] = [ "7" ]))

let test_jobs_one_spawns_nothing () =
  (* jobs:1 must work purely on the calling domain *)
  Pool.with_pool ~jobs:1 (fun p ->
      check_int "jobs" 1 (Pool.jobs p);
      check "map works" true (Pool.map p succ [ 1; 2; 3 ] = [ 2; 3; 4 ]))

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun p ->
      (match
         Pool.map p
           (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
           (List.init 20 (fun i -> i + 1))
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
          (* smallest failing index wins, independent of scheduling *)
          check_int "first failing element" 3 n);
      (* the pool survives a failed map *)
      check "pool still usable" true (Pool.map p succ [ 1; 2 ] = [ 2; 3 ]))

let test_nested_map () =
  (* the harness nests: workloads fan out, each workload's attempts fan
     out on the same pool; the waiting parent must help, not deadlock *)
  Pool.with_pool ~jobs:2 (fun p ->
      let result =
        Pool.map p
          (fun i -> List.fold_left ( + ) 0 (Pool.map p (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      check "nested sums" true (result = [ 36; 66; 96; 126 ]))

let test_map' () =
  check "map' None is List.map" true (Pool.map' None succ [ 1; 2 ] = [ 2; 3 ]);
  Pool.with_pool ~jobs:2 (fun p ->
      check "map' Some uses the pool" true (Pool.map' (Some p) succ [ 1; 2 ] = [ 2; 3 ]))

let test_default_jobs_positive () =
  check "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let test_memo_exactly_once () =
  let memo : (string, int) Memo.t = Memo.create () in
  let runs = Atomic.make 0 in
  let compute () =
    Atomic.incr runs;
    (* widen the race window so concurrent callers really do overlap *)
    Unix.sleepf 0.02;
    42
  in
  Pool.with_pool ~jobs:4 (fun p ->
      let vs = Pool.map p (fun _ -> Memo.find_or_add memo "k" compute) (List.init 16 Fun.id) in
      check "all callers see the value" true (List.for_all (( = ) 42) vs));
  check_int "computed once" 1 (Atomic.get runs);
  check_int "memo counts it" 1 (Memo.computed memo)

let test_memo_exception_releases_key () =
  let memo : (string, int) Memo.t = Memo.create () in
  let attempts = ref 0 in
  let compute () =
    incr attempts;
    if !attempts = 1 then failwith "transient" else 7
  in
  (match Memo.find_or_add memo "k" compute with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  check_int "key released, recomputed" 7 (Memo.find_or_add memo "k" compute);
  check_int "two attempts ran" 2 !attempts;
  check_int "only the success counted" 1 (Memo.computed memo)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order/values" `Quick test_map_order_and_values;
          Alcotest.test_case "edge inputs" `Quick test_edge_inputs;
          Alcotest.test_case "jobs=1" `Quick test_jobs_one_spawns_nothing;
          Alcotest.test_case "exceptions" `Quick test_exception_propagation;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "map'" `Quick test_map';
          Alcotest.test_case "default_jobs" `Quick test_default_jobs_positive;
        ] );
      ( "memo",
        [
          Alcotest.test_case "exactly once" `Quick test_memo_exactly_once;
          Alcotest.test_case "exception releases key" `Quick
            test_memo_exception_releases_key;
        ] );
    ]
