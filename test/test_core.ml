(* Tests for the IPDS core: collision-free hashing, table encoding and
   sizes, and the runtime checker's verify/update semantics. *)

module Mir = Ipds_mir
module Core = Ipds_core
module Corr = Ipds_correlation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- hash ---------- *)

let test_hash_empty () =
  let p = Core.Hash.find [] in
  check_int "empty space is one slot" 1 (Core.Hash.space p)

let test_hash_collision_free_known () =
  let pcs = List.init 13 (fun i -> 0x1000 + (4 * i * 3)) in
  let p = Core.Hash.find pcs in
  let slots = List.map (Core.Hash.apply p) pcs in
  check_int "no collisions" (List.length pcs)
    (List.length (List.sort_uniq compare slots));
  check "slots in range" true
    (List.for_all (fun s -> s >= 0 && s < Core.Hash.space p) slots)

let prop_hash_collision_free =
  let gen =
    QCheck2.Gen.(
      map
        (fun idxs ->
          List.sort_uniq compare (List.map (fun i -> 0x1000 + (4 * i)) idxs))
        (list_size (int_range 1 40) (int_range 0 2000)))
  in
  QCheck2.Test.make ~name:"hash search always collision-free" ~count:200 gen
    (fun pcs ->
      let p = Core.Hash.find pcs in
      let slots = List.map (Core.Hash.apply p) pcs in
      List.length (List.sort_uniq compare slots) = List.length pcs)

(* ---------- tables & sizes ---------- *)

let figure4_system () =
  Core.System.build
    (Mir.Parser.program_of_string
       {|
func main() {
 var x
 var y
entry:
  r0 = input 0
  store y, r0
  r1 = input 0
  store x, r1
  jmp loop
loop:
  r2 = load y
  br lt r2, 5, bb2, bb5
bb2:
  r3 = load x
  br gt r3, 10, bb3, bb5
bb3:
  r4 = input 0
  store x, r4
  jmp bb5
bb5:
  r5 = load y
  br lt r5, 10, loop, exit
exit:
  ret 0
}
|})

let test_tables_structure () =
  let sys = figure4_system () in
  let t = Core.System.tables sys "main" in
  check_int "three branches" 3 t.Core.Tables.n_branches;
  check "bcv marks three slots" true
    (Array.to_list t.Core.Tables.bcv |> List.filter (fun b -> b) |> List.length = 3);
  (* every BAT target slot must be BCV-marked (pruning invariant) *)
  check "bat targets all checked" true
    (Array.for_all
       (fun row ->
         List.for_all (fun (e : Core.Tables.bat_entry) -> t.Core.Tables.bcv.(e.target_slot)) row)
       t.Core.Tables.bat)

let test_sizes () =
  let sys = figure4_system () in
  let t = Core.System.tables sys "main" in
  let s = Core.Tables.sizes t in
  let space = Core.Hash.space t.Core.Tables.hash in
  check_int "bsv is 2 bits per slot" (2 * space) s.Core.Tables.bsv_bits;
  check_int "bcv is 1 bit per slot" space s.Core.Tables.bcv_bits;
  check "bat counts headers and nodes" true (s.Core.Tables.bat_bits > 0);
  let stats = Core.System.size_stats sys in
  check "avg matches single function" true
    (int_of_float stats.Core.System.avg_bsv_bits = s.Core.Tables.bsv_bits)

(* ---------- checker semantics ---------- *)

(* Build a tiny tables value by hand to drive the checker precisely. *)
let hand_tables () =
  let prog =
    Mir.Parser.program_of_string
      {|
func main() {
 var y
entry:
  r0 = load y
  br lt r0, 5, a, b
a:
  r1 = load y
  br lt r1, 10, c, d
b:
  ret 0
c:
  ret 1
d:
  ret 2
}
|}
  in
  Core.System.build prog

let test_checker_verify_update () =
  let sys = hand_tables () in
  let layout = sys.Core.System.layout in
  let pc iid = Mir.Layout.pc layout ~fname:"main" ~iid in
  (* iids: entry: 0 load,1 br; a: 2 load,3 br *)
  let checker = Core.System.new_checker sys in
  ignore (Core.Checker.on_call checker "main");
  check_int "depth 1" 1 (Core.Checker.depth checker);
  (* First branch taken: unknown matches anything, then BAT pins both. *)
  let v1 = Core.Checker.on_branch checker ~pc:(pc 1) ~taken:true in
  check "first check passes" false (Core.Checker.verdict_alarm v1);
  check "branch was checked" true (Core.Checker.verdict_checked v1);
  (* Second branch: y < 5 implies y < 10, expected taken.  Violate it. *)
  let v2 = Core.Checker.on_branch checker ~pc:(pc 3) ~taken:false in
  check "subsumption violation must alarm" true (Core.Checker.verdict_alarm v2);
  check "verdict carries expected status" true
    (Core.Status.equal (Core.Checker.verdict_expected v2) Core.Status.Taken);
  (match Core.Checker.last_alarm checker with
  | Some a ->
      check "alarm expected taken" true (Core.Status.equal a.Core.Checker.expected Core.Status.Taken);
      check "alarm actual not taken" false a.Core.Checker.actual_taken
  | None -> Alcotest.fail "subsumption violation must alarm");
  check_int "alarm recorded" 1 (Core.Checker.alarm_count checker);
  check "return pops" true (Core.Checker.on_return checker);
  check_int "depth 0" 0 (Core.Checker.depth checker)

let test_checker_consistent_run_clean () =
  let sys = hand_tables () in
  let layout = sys.Core.System.layout in
  let pc iid = Mir.Layout.pc layout ~fname:"main" ~iid in
  let checker = Core.System.new_checker sys in
  ignore (Core.Checker.on_call checker "main");
  ignore (Core.Checker.on_branch checker ~pc:(pc 1) ~taken:true);
  let v = Core.Checker.on_branch checker ~pc:(pc 3) ~taken:true in
  check "consistent directions pass" true (Core.Checker.verdict_ok v);
  check_int "no alarms" 0 (List.length (Core.Checker.alarms checker))

let test_checker_fresh_frame_per_call () =
  let sys = hand_tables () in
  let layout = sys.Core.System.layout in
  let pc iid = Mir.Layout.pc layout ~fname:"main" ~iid in
  let checker = Core.System.new_checker sys in
  ignore (Core.Checker.on_call checker "main");
  ignore (Core.Checker.on_branch checker ~pc:(pc 1) ~taken:true);
  (* A nested activation must not see the caller's statuses. *)
  ignore (Core.Checker.on_call checker "main");
  let v = Core.Checker.on_branch checker ~pc:(pc 3) ~taken:false in
  check "fresh frame starts unknown" false (Core.Checker.verdict_alarm v);
  ignore (Core.Checker.on_return checker);
  (* Back in the caller: the pinned status is still armed. *)
  let v2 = Core.Checker.on_branch checker ~pc:(pc 3) ~taken:false in
  check "caller status survived the call" true (Core.Checker.verdict_alarm v2)

let test_checker_unknown_matches_all () =
  check "unknown matches taken" true (Core.Status.matches Core.Status.Unknown true);
  check "unknown matches not-taken" true (Core.Status.matches Core.Status.Unknown false);
  check "taken matches taken" true (Core.Status.matches Core.Status.Taken true);
  check "taken rejects not-taken" false (Core.Status.matches Core.Status.Taken false);
  check "not-taken rejects taken" false (Core.Status.matches Core.Status.Not_taken true)

let test_checker_empty_stack_errors () =
  (* Hot-path protocol violations are typed results, not exceptions. *)
  let sys = hand_tables () in
  let checker = Core.System.new_checker sys in
  check "return on empty stack is rejected" false (Core.Checker.on_return checker);
  let v = Core.Checker.on_branch checker ~pc:0x40 ~taken:true in
  check "branch with no frame is a violation" true (Core.Checker.verdict_violation v);
  check "violation is not ok" false (Core.Checker.verdict_ok v);
  check_int "violation counts no branch" 0 (Core.Checker.branches_seen checker)

let test_checker_misc () =
  let sys = hand_tables () in
  let layout = sys.Core.System.layout in
  let pc iid = Mir.Layout.pc layout ~fname:"main" ~iid in
  let checker = Core.System.new_checker sys in
  ignore (Core.Checker.on_call checker "main");
  check_int "no branches seen" 0 (Core.Checker.branches_seen checker);
  ignore (Core.Checker.on_branch checker ~pc:(pc 1) ~taken:true);
  check_int "one branch seen" 1 (Core.Checker.branches_seen checker);
  let statuses = Core.Checker.current_statuses checker in
  check "some status is pinned" true
    (List.exists (fun (_, s) -> not (Core.Status.equal s Core.Status.Unknown)) statuses);
  (* alarm sequence numbers are commit indices *)
  let v = Core.Checker.on_branch checker ~pc:(pc 3) ~taken:false in
  check "expected alarm" true (Core.Checker.verdict_alarm v);
  (match Core.Checker.last_alarm checker with
  | Some a -> check_int "sequence is second commit" 1 a.Core.Checker.sequence
  | None -> Alcotest.fail "expected alarm")

let test_hash_dense_pcs () =
  (* consecutive branch PCs (every 4 bytes) are the worst case for weak
     mixing: the search must still succeed quickly *)
  let pcs = List.init 64 (fun i -> 0x4000 + (4 * i)) in
  let p = Core.Hash.find pcs in
  let slots = List.map (Core.Hash.apply p) pcs in
  check_int "dense pcs collision free" 64 (List.length (List.sort_uniq compare slots));
  check "attempts counted" true (Core.Hash.attempts_for pcs >= 1)

(* ---------- bitstream & binary images ---------- *)

let prop_bitstream_roundtrip =
  QCheck2.Test.make ~name:"bitstream round trip (widths 0-62, byte aligns)"
    ~count:400 Gen.bitstream_ops (fun ops ->
      let w = Core.Bitstream.Writer.create () in
      List.iter
        (function
          | Gen.Bits_field (width, v) -> Core.Bitstream.Writer.push w ~width v
          | Gen.Bits_align -> Core.Bitstream.Writer.align_byte w)
        ops;
      let r = Core.Bitstream.Reader.of_bytes (Core.Bitstream.Writer.contents w) in
      List.for_all
        (function
          | Gen.Bits_field (width, v) ->
              Core.Bitstream.Reader.pull r ~width = v
          | Gen.Bits_align ->
              Core.Bitstream.Reader.align_byte r;
              true)
        ops)

let strip_debug (t : Core.Tables.t) = { t with Core.Tables.slot_of_iid = [||] }

let test_encode_roundtrip_workloads () =
  List.iter
    (fun w ->
      let sys = Core.System.build (Ipds_workloads.Workloads.program w) in
      List.iter
        (fun (_, (info : Core.System.func_info)) ->
          let img = Core.Encode.function_image ~entry_pc:info.entry_pc info.tables in
          let entry_pc, decoded = Core.Encode.decode_function img in
          check "entry pc survives" true (entry_pc = info.entry_pc);
          check "tables survive" true (decoded = strip_debug info.tables))
        sys.Core.System.funcs)
    Ipds_workloads.Workloads.all

let test_payload_matches_size_accounting () =
  List.iter
    (fun w ->
      let sys = Core.System.build (Ipds_workloads.Workloads.program w) in
      List.iter
        (fun (_, (info : Core.System.func_info)) ->
          let s = Core.Tables.sizes info.tables in
          check_int
            (w.Ipds_workloads.Workloads.name ^ " payload bits")
            (s.Core.Tables.bcv_bits + s.Core.Tables.bat_bits)
            (Core.Encode.payload_bits info.tables))
        sys.Core.System.funcs)
    Ipds_workloads.Workloads.all

let test_checker_from_image () =
  (* A checker running on reloaded tables must behave identically. *)
  let w = Ipds_workloads.Workloads.find "telnetd" in
  let program = Ipds_workloads.Workloads.program w in
  let sys = Core.System.build program in
  let image = Core.Encode.program_image sys in
  let loaded = Core.Encode.load_program image in
  let images =
    List.map (fun (name, (_, t)) -> (name, Core.Image.of_tables t)) loaded
  in
  let lookup name = List.assoc name images in
  let run checker =
    (Ipds_machine.Interp.run program
       {
         Ipds_machine.Interp.default_config with
         inputs = Ipds_machine.Input_script.random ~seed:4 ();
         checker = Some checker;
         tamper =
           Some
             {
               Ipds_machine.Tamper.at_step = 120;
               site =
                 Ipds_machine.Tamper.Mem_write
                   { model = Ipds_machine.Tamper.Stack_overflow; value = 1 };
               seed = 9;
             };
       })
      .Ipds_machine.Interp.alarms
  in
  let from_memory = run (Core.System.new_checker sys) in
  let from_image = run (Core.Checker.create ~lookup) in
  check "identical alarms" true (from_memory = from_image)

let test_trace_log () =
  let sys = hand_tables () in
  let layout = sys.Core.System.layout in
  let pc iid = Mir.Layout.pc layout ~fname:"main" ~iid in
  let lines = ref [] in
  let log =
    Core.Trace_log.create
      ~lookup:(Core.System.image sys)
      ~out:(fun l -> lines := l :: !lines)
  in
  Core.Trace_log.on_call log "main";
  ignore (Core.Trace_log.on_branch log ~pc:(pc 1) ~taken:true);
  ignore (Core.Trace_log.on_branch log ~pc:(pc 3) ~taken:false);
  Core.Trace_log.on_return log;
  let text = String.concat "\n" (List.rev !lines) in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.equal (String.sub text i nn) needle || go (i + 1))
    in
    go 0
  in
  check "logs the call" true (contains "call main");
  check "logs the alarm" true (contains "ALARM");
  check "logs expected status" true (contains "expected=T");
  check "logs the return" true (contains "ret  main");
  check_int "alarm recorded in underlying checker" 1
    (List.length (Core.Checker.alarms (Core.Trace_log.checker log)))

let test_encode_malformed () =
  check "truncated image rejected" true
    (try
       ignore (Core.Encode.decode_function (Bytes.make 2 '\255'));
       false
     with Invalid_argument _ -> true);
  check "empty image rejected" true
    (try
       ignore (Core.Encode.decode_function Bytes.empty);
       false
     with Invalid_argument _ -> true)

(* ---------- oracle equivalence ----------

   A reference checker interpreting Analysis.result directly (keyed by
   instruction ids, no hashing, no bit packing, no table pruning beyond
   what the result carries).  The production path (Tables + Hash +
   Checker) must produce the same alarm sequence on any run, tampered or
   not. *)

module Oracle = struct
  module Corr = Ipds_correlation

  type frame = {
    result : Corr.Analysis.result;
    status : (int, Core.Status.t) Hashtbl.t;
  }

  type t = {
    results : (string * Corr.Analysis.result) list;
    layout : Mir.Layout.t;
    mutable stack : frame list;
    mutable alarms : int list;  (* commit indices *)
    mutable commits : int;
  }

  let create program =
    {
      results = Corr.Analysis.analyze_program program;
      layout = Mir.Layout.make program;
      stack = [];
      alarms = [];
      commits = 0;
    }

  let apply frame actions =
    List.iter
      (fun (tgt, a) -> Hashtbl.replace frame.status tgt (Core.Status.of_action a))
      actions

  let on_call t callee =
    match List.assoc_opt callee t.results with
    | None -> ()
    | Some result ->
        let frame = { result; status = Hashtbl.create 8 } in
        apply frame result.Corr.Analysis.entry_actions;
        t.stack <- frame :: t.stack

  let on_return t =
    match t.stack with
    | [] -> ()
    | _ :: rest -> t.stack <- rest

  let on_branch t ~pc ~taken =
    match t.stack with
    | [] -> ()
    | frame :: _ ->
        let iid =
          match Mir.Layout.func_of_pc t.layout pc with
          | Some (_, iid) -> iid
          | None -> -1
        in
        let seq = t.commits in
        t.commits <- t.commits + 1;
        (if List.mem iid frame.result.Corr.Analysis.checked then
           let expected =
             Option.value
               (Hashtbl.find_opt frame.status iid)
               ~default:Core.Status.Unknown
           in
           if not (Core.Status.matches expected taken) then
             t.alarms <- seq :: t.alarms);
        apply frame (Corr.Analysis.actions_for frame.result (iid, taken))
end

let prop_encode_roundtrip_random =
  QCheck2.Test.make ~name:"binary image round trips on arbitrary programs"
    ~count:80 Gen.mir_program (fun p ->
      let sys = Core.System.build p in
      let image = Core.Encode.program_image sys in
      let loaded = Core.Encode.load_program image in
      List.for_all
        (fun (name, (info : Core.System.func_info)) ->
          match List.assoc_opt name loaded with
          | Some (pc, tables) ->
              pc = info.entry_pc && tables = strip_debug info.tables
          | None -> false)
        sys.Core.System.funcs)

let prop_checker_matches_oracle =
  QCheck2.Test.make ~name:"table-driven checker matches the analysis oracle"
    ~count:120
    QCheck2.Gen.(tup3 Gen.minic_program (int_bound 1000) (int_bound 100000))
    (fun (program, seed, attack_bits) ->
      let sys = Core.System.build program in
      let tamper =
        if attack_bits mod 3 = 0 then None
        else
          Some
            {
              Ipds_machine.Tamper.at_step = 1 + (attack_bits mod 400);
              site =
                Ipds_machine.Tamper.Mem_write
                  {
                    model = Ipds_machine.Tamper.Arbitrary_write;
                    value = attack_bits mod 256;
                  };
              seed = attack_bits;
            }
      in
      (* production run *)
      let checker = Core.System.new_checker sys in
      let o1 =
        Ipds_machine.Interp.run program
          {
            Ipds_machine.Interp.default_config with
            max_steps = 3000;
            inputs = Ipds_machine.Input_script.random ~seed ();
            checker = Some checker;
          }
      in
      ignore o1;
      let o1_alarms =
        List.map (fun (a : Core.Checker.alarm) -> a.sequence) (Core.Checker.alarms checker)
      in
      (* oracle run, driven by events *)
      let oracle = Oracle.create program in
      let observer (e : Ipds_machine.Event.t) =
        match e.Ipds_machine.Event.kind with
        | Ipds_machine.Event.Call { callee } ->
            if Mir.Program.is_defined program callee then Oracle.on_call oracle callee
        | Ipds_machine.Event.Ret -> Oracle.on_return oracle
        | Ipds_machine.Event.Branch { taken; _ } ->
            Oracle.on_branch oracle ~pc:e.Ipds_machine.Event.pc ~taken
        | Ipds_machine.Event.Alu | Ipds_machine.Event.Load _
        | Ipds_machine.Event.Store _ | Ipds_machine.Event.Jump _
        | Ipds_machine.Event.Input_read | Ipds_machine.Event.Output_write _
        | Ipds_machine.Event.Fault_inject _ ->
            ()
      in
      let _o2 =
        Ipds_machine.Interp.run program
          {
            Ipds_machine.Interp.default_config with
            max_steps = 3000;
            inputs = Ipds_machine.Input_script.random ~seed ();
            observer = Some observer;
          }
      in
      ignore tamper;
      (* both runs above were benign; now the tampered pair *)
      match tamper with
      | None -> o1_alarms = List.rev oracle.Oracle.alarms
      | Some plan ->
          let checker2 = Core.System.new_checker sys in
          let _ =
            Ipds_machine.Interp.run program
              {
                Ipds_machine.Interp.default_config with
                max_steps = 3000;
                inputs = Ipds_machine.Input_script.random ~seed ();
                checker = Some checker2;
                tamper = Some plan;
              }
          in
          let prod =
            List.map
              (fun (a : Core.Checker.alarm) -> a.sequence)
              (Core.Checker.alarms checker2)
          in
          let oracle2 = Oracle.create program in
          let observer2 (e : Ipds_machine.Event.t) =
            match e.Ipds_machine.Event.kind with
            | Ipds_machine.Event.Call { callee } ->
                if Mir.Program.is_defined program callee then
                  Oracle.on_call oracle2 callee
            | Ipds_machine.Event.Ret -> Oracle.on_return oracle2
            | Ipds_machine.Event.Branch { taken; _ } ->
                Oracle.on_branch oracle2 ~pc:e.Ipds_machine.Event.pc ~taken
            | Ipds_machine.Event.Alu | Ipds_machine.Event.Load _
            | Ipds_machine.Event.Store _ | Ipds_machine.Event.Jump _
            | Ipds_machine.Event.Input_read | Ipds_machine.Event.Output_write _
            | Ipds_machine.Event.Fault_inject _ ->
                ()
          in
          let _ =
            Ipds_machine.Interp.run program
              {
                Ipds_machine.Interp.default_config with
                max_steps = 3000;
                inputs = Ipds_machine.Input_script.random ~seed ();
                observer = Some observer2;
                tamper = Some plan;
              }
          in
          prod = List.rev oracle2.Oracle.alarms)

let () =
  Alcotest.run "core"
    [
      ( "hash",
        [
          Alcotest.test_case "empty" `Quick test_hash_empty;
          Alcotest.test_case "collision free" `Quick test_hash_collision_free_known;
          QCheck_alcotest.to_alcotest prop_hash_collision_free;
        ] );
      ( "tables",
        [
          Alcotest.test_case "structure" `Quick test_tables_structure;
          Alcotest.test_case "sizes" `Quick test_sizes;
        ] );
      ( "encode",
        [
          QCheck_alcotest.to_alcotest prop_bitstream_roundtrip;
          Alcotest.test_case "workload tables round trip" `Quick
            test_encode_roundtrip_workloads;
          Alcotest.test_case "payload matches size accounting" `Quick
            test_payload_matches_size_accounting;
          Alcotest.test_case "checker from image" `Quick test_checker_from_image;
          QCheck_alcotest.to_alcotest prop_checker_matches_oracle;
          QCheck_alcotest.to_alcotest prop_encode_roundtrip_random;
          Alcotest.test_case "trace log" `Quick test_trace_log;
          Alcotest.test_case "malformed image" `Quick test_encode_malformed;
        ] );
      ( "checker",
        [
          Alcotest.test_case "verify/update" `Quick test_checker_verify_update;
          Alcotest.test_case "consistent run" `Quick test_checker_consistent_run_clean;
          Alcotest.test_case "fresh frame" `Quick test_checker_fresh_frame_per_call;
          Alcotest.test_case "status matching" `Quick test_checker_unknown_matches_all;
          Alcotest.test_case "empty stack" `Quick test_checker_empty_stack_errors;
          Alcotest.test_case "misc accessors" `Quick test_checker_misc;
          Alcotest.test_case "dense pcs" `Quick test_hash_dense_pcs;
        ] );
    ]
