(* The paper's Figure 2/Figure 4 scenario, at the MIR level: a loop whose
   branches are correlated through the unmodified variable y.  Tampering y
   between iterations forces a dynamically infeasible path.

     dune exec examples/loop_invariant.exe *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine

let source =
  {|
func main() {
 var x
 var y
entry:
  r0 = input 0
  store y, r0
  r1 = input 0
  store x, r1
  jmp loop
loop:
  r2 = load y
  br lt r2, 5, bb2, bb5
bb2:
  r3 = load x
  br gt r3, 10, bb3, bb5
bb3:
  r4 = input 0
  store x, r4
  jmp bb5
bb5:
  r5 = load y
  br lt r5, 10, loop, exit
exit:
  ret 0
}
|}

let () =
  let program = Mir.Parser.program_of_string source in
  print_endline "The Figure 4 loop:";
  Format.printf "%a@." Mir.Program.pp program;

  let system = Core.System.build program in
  let info = List.assoc "main" system.Core.System.funcs in
  print_endline "Branch Action Table (BR1 = iid 6 on y<5, BR2 = iid 8 on x>10,";
  print_endline "BR5 = iid 13 on y<10; compare with the paper's walkthrough):";
  Format.printf "%a@." Ipds_correlation.Analysis.pp_result info.Core.System.result;

  (* y = 3: BR1 taken and BR5 taken every iteration, forever (bounded by
     the step cap); tamper y after a few iterations. *)
  let run ~tamper =
    let checker = Core.System.new_checker system in
    M.Interp.run program
      {
        M.Interp.default_config with
        max_steps = 200;
        inputs = M.Input_script.of_lists [ (0, [ 3; 20 ]) ];
        checker = Some checker;
        tamper;
      }
  in
  let benign = run ~tamper:None in
  Format.printf "benign: %d branches committed, %d alarms@."
    benign.M.Interp.branches
    (List.length benign.M.Interp.alarms);

  (* Arbitrary-write tamper: find a seed that corrupts y. *)
  let rec attack seed =
    if seed > 64 then print_endline "(no seed hit y)"
    else begin
      let o =
        run
          ~tamper:
            (Some
               {
                 M.Tamper.at_step = 40;
                 site =
                   M.Tamper.Mem_write
                     { model = M.Tamper.Arbitrary_write; value = 7 };
                 seed;
               })
      in
      match o.M.Interp.injection with
      | Some (M.Tamper.Tampered_cell i as inj)
        when String.equal i.var.Mir.Var.name "y" ->
          Format.printf "attack: %a@." M.Tamper.pp_injection inj;
          (match o.M.Interp.alarms with
          | [] -> print_endline "NOT DETECTED"
          | a :: _ ->
              Format.printf
                "DETECTED after %d cycles-worth of branches: pc 0x%x expected %a@."
                a.Core.Checker.sequence a.Core.Checker.branch_pc Core.Status.pp
                a.Core.Checker.expected)
      | Some _ | None -> attack (seed + 1)
    end
  in
  attack 0
