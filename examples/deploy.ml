(* The full deployment story, end to end (paper Figure 6):

   1. "compiler side": compile MiniC, run the correlation analysis, and
      serialize BSV/BCV/BAT + the function information table into the
      image the compiler attaches to the binary;
   2. "loader": map the image back in;
   3. "hardware": run with the checker built from the loaded image, with
      the trap-on-alarm behaviour of the real processor — execution stops
      at the infeasible branch, before the compromised path does damage.

     dune exec examples/deploy.exe *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine

let source =
  {|
int main() {
  int audit[2];
  int req[4];
  int n;
  int i;
  audit[0] = 0;     // privileged mode off
  audit[1] = 0;     // privileged actions
  n = input(0) % 8 + 4;
  i = 0;
  while (i < n) {
    read_line(&req[0], 4);
    if (audit[0]) {
      audit[1] = audit[1] + 1;
      output(700 + i);   // privileged action: visible damage
    } else {
      output(200);
    }
    i = i + 1;
  }
  output(audit[1]);
  return 0;
}
|}

let () =
  (* 1. compiler side *)
  let program = Ipds_minic.Minic.compile source in
  let system = Core.System.build program in
  let image = Core.Encode.program_image system in
  Printf.printf "compiler: analyzed %d functions, table image is %d bytes\n"
    (List.length system.Core.System.funcs)
    (Bytes.length image);

  (* 2. loader: only the image crosses the boundary *)
  let loaded = Core.Encode.load_program image in
  List.iter
    (fun (name, (entry_pc, tables)) ->
      let s = Core.Tables.sizes tables in
      Printf.printf "loader:   %s at 0x%x — BSV %d / BCV %d / BAT %d bits\n" name
        entry_pc s.Core.Tables.bsv_bits s.Core.Tables.bcv_bits s.Core.Tables.bat_bits)
    loaded;
  let images =
    List.map (fun (name, (_, t)) -> (name, Core.Image.of_tables t)) loaded
  in
  let lookup name = List.assoc name images in

  (* 3. hardware: benign run, then a tamper with trap-on-alarm *)
  let run ?tamper () =
    M.Interp.run program
      {
        M.Interp.default_config with
        inputs = M.Input_script.of_lists [ (0, [ 2; 9; 9; 9; 9; 9; 9; 9 ]) ];
        checker = Some (Core.Checker.create ~lookup);
        trap_on_alarm = true;
        tamper;
      }
  in
  let benign = run () in
  Printf.printf "run:      benign outputs [%s], %d alarms\n"
    (String.concat "; " (List.map string_of_int benign.M.Interp.outputs))
    (List.length benign.M.Interp.alarms);

  let rec attack seed =
    if seed > 100 then print_endline "run:      (no seed hit audit[0])"
    else begin
      let o =
        run
          ~tamper:
            {
              M.Tamper.at_step = 25;
              site =
                M.Tamper.Mem_write { model = M.Tamper.Stack_overflow; value = 1 };
              seed;
            }
          ()
      in
      match o.M.Interp.injection, o.M.Interp.reason with
      | Some (M.Tamper.Tampered_cell i as inj), M.Interp.Trapped a
        when String.equal i.var.Mir.Var.name "audit" ->
          Format.printf "attack:   %a@." M.Tamper.pp_injection inj;
          Printf.printf
            "trap:     stopped at pc 0x%x after %d outputs [%s] — the 700-range \
             privileged action never ran\n"
            a.Core.Checker.branch_pc
            (List.length o.M.Interp.outputs)
            (String.concat "; " (List.map string_of_int o.M.Interp.outputs));
          assert (not (List.exists (fun v -> v >= 700 && v < 800) o.M.Interp.outputs))
      | _, _ -> attack (seed + 1)
    end
  in
  attack 0
