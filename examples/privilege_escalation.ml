(* The paper's Figure 1 attack, end to end: a server checks the user's
   identity twice; a buffer overflow between the checks flips the stored
   identity.  No code is injected — the control flow simply takes a path
   the original data could never have produced, and IPDS flags it.

     dune exec examples/privilege_escalation.exe *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine

(* user[0] holds the verified identity (1 = admin).  Between the two
   privilege checks the server reads attacker-controlled input into a
   buffer next to it on the stack. *)
let source =
  {|
int verify_user(int *pw, int n) {
  int h;
  h = hash_pw(pw, n);
  if (h == 4660) { return 1; }
  return 0;
}

int main() {
  int user[1];
  int str[4];
  int pw[4];
  read_line(&pw[0], 4);
  user[0] = verify_user(&pw[0], 4);
  if (user[0] == 1) { output(1000); } else { output(2000); }

  // ... the server talks to the user again: the overflow happens here ...
  read_line(&str[0], 4);

  if (user[0] == 1) {
    output(1111);  // superuser operations
  } else {
    output(2222);
  }
  return 0;
}
|}

let run system program ~tamper =
  let checker = Core.System.new_checker system in
  M.Interp.run program
    {
      M.Interp.default_config with
      checker = Some checker;
      inputs = M.Input_script.of_lists [ (0, [ 9; 9; 9; 9; 0; 0; 0; 0 ]) ];
      tamper;
    }

let () =
  let program = Ipds_minic.Minic.compile source in
  let system = Core.System.build program in

  print_endline "The two privilege checks are correlated by the compiler:";
  let info = List.assoc "main" system.Core.System.funcs in
  Format.printf "%a@." Ipds_correlation.Analysis.pp_result
    info.Core.System.result;

  print_endline "Benign session (guest):";
  let benign = run system program ~tamper:None in
  Format.printf "  outputs: %s   alarms: %d@."
    (String.concat " " (List.map string_of_int benign.M.Interp.outputs))
    (List.length benign.M.Interp.alarms);

  print_endline "Attacked session (overflow flips user[0] to 1 mid-run):";
  let rec attack seed =
    if seed > 200 then print_endline "  (no seed hit user[0])"
    else begin
      let o =
        run system program
          ~tamper:
            (Some
               {
                 M.Tamper.at_step = 18;
                 site =
                   M.Tamper.Mem_write
                     { model = M.Tamper.Stack_overflow; value = 1 };
                 seed;
               })
      in
      match o.M.Interp.injection with
      | Some (M.Tamper.Tampered_cell i as inj)
        when String.equal i.var.Mir.Var.name "user"
             && o.M.Interp.outputs <> benign.M.Interp.outputs ->
          Format.printf "  %a@." M.Tamper.pp_injection inj;
          Format.printf "  outputs: %s  <- privilege escalation!@."
            (String.concat " " (List.map string_of_int o.M.Interp.outputs));
          (match o.M.Interp.alarms with
          | [] -> print_endline "  NOT DETECTED"
          | a :: _ ->
              Format.printf
                "  DETECTED: the second check at pc 0x%x expected %a but went %s@."
                a.Core.Checker.branch_pc Core.Status.pp a.Core.Checker.expected
                (if a.Core.Checker.actual_taken then "taken" else "not-taken"))
      | Some _ | None -> attack (seed + 1)
    end
  in
  attack 0
