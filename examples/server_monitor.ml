(* Monitor a synthetic server under IPDS: timing model attached, benign
   traffic, then an attack campaign — a miniature of the paper's whole
   evaluation on one benchmark.

     dune exec examples/server_monitor.exe -- [server-name]   (default sshd) *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine
module P = Ipds_pipeline
module W = Ipds_workloads.Workloads

let () =
  let name =
    match Array.to_list Sys.argv with
    | _ :: n :: _ when n <> "--" -> n
    | _ :: "--" :: n :: _ -> n
    | _ -> "sshd"
  in
  let w =
    try W.find name
    with Not_found ->
      Printf.eprintf "unknown server %s; try one of: %s\n" name
        (String.concat ", " (List.map (fun w -> w.W.name) W.all));
      exit 2
  in
  Printf.printf "=== %s: %s ===\n" w.W.name w.W.description;

  let program = W.program w in
  let system = Core.System.build program in
  let stats = Core.System.size_stats system in
  Printf.printf "tables: %d/%d branches checked; avg bits BSV %.0f BCV %.0f BAT %.0f\n"
    (Core.System.checked_branch_count system)
    (Core.System.total_branch_count system)
    stats.Core.System.avg_bsv_bits stats.Core.System.avg_bcv_bits
    stats.Core.System.avg_bat_bits;

  (* benign run with the timing model attached *)
  let base_cpu = P.Cpu.create ~system:None () in
  let ipds_cpu = P.Cpu.create ~system:(Some system) () in
  let drive cpu =
    ignore
      (M.Interp.run program
         {
           M.Interp.default_config with
           inputs = M.Input_script.random ~seed:2006 ();
           observer = Some (P.Cpu.observer cpu);
         })
  in
  drive base_cpu;
  drive ipds_cpu;
  let base = P.Cpu.finish base_cpu in
  let ipds = P.Cpu.finish ipds_cpu in
  Printf.printf "timing: baseline %.0f cycles, with IPDS %.0f (x%.4f)\n"
    base.P.Cpu.cycles ipds.P.Cpu.cycles
    (ipds.P.Cpu.cycles /. base.P.Cpu.cycles);
  (match ipds.P.Cpu.ipds with
  | Some s ->
      Printf.printf
        "ipds engine: %d verifies, %d updates, avg detection latency %.1f cycles\n"
        s.P.Cpu.verifies s.P.Cpu.updates s.P.Cpu.avg_detection_latency
  | None -> ());

  (* attack campaign *)
  let row = Ipds_harness.Attack_experiment.run ~attacks:100 w in
  Printf.printf
    "attacks: %d injected, %d changed control flow, %d detected (%.0f%% of cf-changing)\n"
    row.Ipds_harness.Attack_experiment.attacks
    row.Ipds_harness.Attack_experiment.cf_changed
    row.Ipds_harness.Attack_experiment.detected
    (100.
    *. float_of_int row.Ipds_harness.Attack_experiment.detected
    /. float_of_int (max 1 row.Ipds_harness.Attack_experiment.cf_changed))
