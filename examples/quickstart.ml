(* Quickstart: compile a program, build the IPDS tables, run it under the
   checker, then run it under attack.

     dune exec examples/quickstart.exe *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine

let source =
  {|
int main() {
  int secret;
  int i;
  secret = 1;
  for (i = 0; i < 5; i = i + 1) {
    if (secret == 1) { output(100); } else { output(200); }
  }
  return 0;
}
|}

let () =
  print_endline "1. Compile MiniC to MIR:";
  let program = Ipds_minic.Minic.compile source in
  Format.printf "%a@." Mir.Program.pp program;

  print_endline "2. Run the IPDS compile-side analysis:";
  let system = Core.System.build program in
  List.iter
    (fun (_, (info : Core.System.func_info)) ->
      Format.printf "%a@.%a@." Ipds_correlation.Analysis.pp_result info.result
        Core.Tables.pp info.tables)
    system.Core.System.funcs;

  print_endline "3. Benign run under the runtime checker:";
  let benign_checker = Core.System.new_checker system in
  let benign =
    M.Interp.run program
      { M.Interp.default_config with checker = Some benign_checker }
  in
  Format.printf "   outputs: %s, alarms: %d (zero false positives)@."
    (String.concat " " (List.map string_of_int benign.M.Interp.outputs))
    (List.length benign.M.Interp.alarms);

  print_endline "4. The same run with 'secret' tampered mid-loop:";
  let rec attack seed =
    if seed > 64 then print_endline "   (no seed hit the flag)"
    else begin
      let checker = Core.System.new_checker system in
      let o =
        M.Interp.run program
          {
            M.Interp.default_config with
            checker = Some checker;
            tamper =
              Some
                {
                  M.Tamper.at_step = 20;
                  site =
                    M.Tamper.Mem_write
                      { model = M.Tamper.Stack_overflow; value = 0 };
                  seed;
                };
          }
      in
      match o.M.Interp.injection with
      | Some (M.Tamper.Tampered_cell i as inj)
        when String.equal i.var.Mir.Var.name "secret" ->
          Format.printf "   %a@." M.Tamper.pp_injection inj;
          Format.printf "   outputs: %s@."
            (String.concat " " (List.map string_of_int o.M.Interp.outputs));
          List.iter
            (fun (a : Core.Checker.alarm) ->
              Format.printf
                "   ALARM: branch at pc 0x%x in %s expected %a, went %s@."
                a.branch_pc a.fname Core.Status.pp a.expected
                (if a.actual_taken then "taken" else "not-taken"))
            o.M.Interp.alarms
      | Some _ | None -> attack (seed + 1)
    end
  in
  attack 0
