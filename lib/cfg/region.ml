module Mir = Ipds_mir

type stop =
  | Next_branch of int
  | Exits
  | Loops_forever

type t = {
  instrs : int list;
  stop : stop;
}

let walk (f : Mir.Func.t) start_block =
  let visited = Hashtbl.create 8 in
  let rec go acc b =
    if Hashtbl.mem visited b then { instrs = List.rev acc; stop = Loops_forever }
    else begin
      Hashtbl.add visited b ();
      let blk = f.blocks.(b) in
      let acc =
        Array.fold_left (fun acc (i : Mir.Instr.t) -> i.iid :: acc) acc blk.Mir.Block.body
      in
      match blk.term with
      | Mir.Terminator.Branch _ ->
          { instrs = List.rev acc; stop = Next_branch blk.term_iid }
      | Mir.Terminator.Jump b' -> go acc b'
      | Mir.Terminator.Return _ | Mir.Terminator.Halt ->
          { instrs = List.rev acc; stop = Exits }
    end
  in
  go [] start_block

let after_edge (f : Mir.Func.t) ~branch_iid ~taken =
  let blk =
    match
      Array.find_opt
        (fun (b : Mir.Block.t) -> b.term_iid = branch_iid)
        f.blocks
    with
    | Some b -> b
    | None -> invalid_arg "Region.after_edge: not a terminator iid"
  in
  match blk.term with
  | Mir.Terminator.Branch { if_true; if_false; _ } ->
      walk f (if taken then if_true else if_false)
  | Mir.Terminator.Jump _ | Mir.Terminator.Return _ | Mir.Terminator.Halt ->
      invalid_arg "Region.after_edge: not a conditional branch"

let from_entry (f : Mir.Func.t) = walk f 0

let all_edges (f : Mir.Func.t) =
  List.concat_map
    (fun (branch_iid, _) ->
      [
        ((branch_iid, true), after_edge f ~branch_iid ~taken:true);
        ((branch_iid, false), after_edge f ~branch_iid ~taken:false);
      ])
    (Mir.Func.branches f)
