(** Per-function feasibility facts: branch directions the static analyses
    have proven can never commit in an untampered run.

    A fact set induces a {e pruned view} of the block CFG — the subgraph
    left after deleting every pruned branch edge — and every flow-sensitive
    analysis ({!Ipds_dataflow.Framework}) runs over such a view.  The full
    (nothing-pruned) view of a raw {!Cfg.t} is the degenerate case, so one
    solver serves both the classic and the feasibility-refined pipelines.

    {b Soundness invariants} (exported as predicates, checked in tests):

    - {e subview}: the pruned view's edges are a subset of the raw CFG's
      edges, block for block, preserving raw successor order;
    - {e entry preserved}: the entry block is never pruned away and heads
      the pruned reverse postorder;
    - {e monotone}: {!prune} only grows the pruned set — refinement
      iterations can delete edges, never resurrect them.

    Pruning an edge is sound exactly when no untampered execution can
    commit that branch direction; the producer ({!Ipds_correlation}'s
    refinement loop) owns that proof obligation, and the property tests
    replay untampered traces against the pruned set to enforce it. *)

type view = {
  v_blocks : int;
  v_succs : int -> int list;
  v_preds : int -> int list;
  v_rpo : int array;  (** reachable blocks only, entry first *)
  v_reachable : bool array;
}
(** What a dataflow solver needs of a (possibly pruned) block graph. *)

type t

val full : Cfg.t -> t
(** Nothing pruned: the view coincides with the raw CFG. *)

val prune : t -> (int * bool) list -> t
(** [prune t dirs] adds branch directions [(branch_iid, taken)] to the
    pruned set and rebuilds the view.  Already-pruned and duplicate
    entries are ignored; unknown iids (not a conditional branch of this
    function) raise [Invalid_argument].  Monotone: the result's pruned
    set contains [t]'s. *)

val is_pruned : t -> int -> bool -> bool
val pruned_count : t -> int

val pruned_directions : t -> (int * bool) list
(** Sorted by [(branch_iid, taken)] — deterministic regardless of the
    order facts were discovered in. *)

val total_directions : t -> int
(** [2 *] number of conditional branches of the function. *)

val cfg : t -> Cfg.t

val branch_ok : t -> int -> bool -> bool
(** [branch_ok t iid taken] — the direction survives (is not pruned).
    Shape expected by {!Point_graph.make}'s [?branch_ok] filter. *)

val view : t -> view
val view_of_cfg : Cfg.t -> view
(** The raw CFG as a view, sharing its arrays (no filtering cost). *)

(** {2 Soundness invariants as predicates} *)

val invariant_subview : t -> bool
val invariant_entry_preserved : t -> bool
val invariant_monotone : earlier:t -> later:t -> bool

val pp : Format.formatter -> t -> unit
