(** Control-flow graph view of a {!Ipds_mir.Func.t}: block-level successor
    and predecessor maps plus traversal orders. *)

type t

val make : Ipds_mir.Func.t -> t
val func : t -> Ipds_mir.Func.t
val n_blocks : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list

val reverse_postorder : t -> int array
(** Reachable blocks only, entry first. *)

val reachable : t -> bool array
(** Per-block reachability from the entry block. *)

val pp : Format.formatter -> t -> unit
