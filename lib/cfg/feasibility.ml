module Mir = Ipds_mir

type view = {
  v_blocks : int;
  v_succs : int -> int list;
  v_preds : int -> int list;
  v_rpo : int array;
  v_reachable : bool array;
}

type t = {
  cfg : Cfg.t;
  pruned : bool array;  (* iid * 2 + dir; dir 1 = taken *)
  n_pruned : int;
  succs : int list array;
  preds : int list array;
  rpo : int array;
  reachable : bool array;
}

let slot iid taken = (iid * 2) + if taken then 1 else 0

let branch_term f b =
  match f.Mir.Func.blocks.(b).Mir.Block.term with
  | Mir.Terminator.Branch { if_true; if_false; _ } ->
      Some (f.Mir.Func.blocks.(b).Mir.Block.term_iid, if_true, if_false)
  | Mir.Terminator.Jump _ | Mir.Terminator.Return _ | Mir.Terminator.Halt ->
      None

(* Same DFS as [Cfg.compute_rpo], over the filtered successor arrays. *)
let compute_rpo n succs =
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      order := b :: !order
    end
  in
  dfs 0;
  (Array.of_list !order, visited)

(* Rebuild the filtered graph: per block, keep each branch direction
   individually (so [if_true = if_false] edges survive as long as either
   direction does), preserving the raw successor order. *)
let rebuild cfg pruned n_pruned =
  let f = Cfg.func cfg in
  let nb = Cfg.n_blocks cfg in
  let succs =
    Array.init nb (fun b ->
        match branch_term f b with
        | Some (iid, if_true, if_false) ->
            (if pruned.(slot iid true) then [] else [ if_true ])
            @ if pruned.(slot iid false) then [] else [ if_false ]
        | None -> Cfg.succs cfg b)
  in
  let preds = Array.make nb [] in
  Array.iteri
    (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
    succs;
  let rpo, reachable = compute_rpo nb succs in
  { cfg; pruned; n_pruned; succs; preds; rpo; reachable }

let full cfg =
  let f = Cfg.func cfg in
  let pruned = Array.make (2 * f.Mir.Func.instr_count) false in
  (* Nothing pruned: share the raw CFG's structure verbatim. *)
  {
    cfg;
    pruned;
    n_pruned = 0;
    succs = Array.init (Cfg.n_blocks cfg) (Cfg.succs cfg);
    preds = Array.init (Cfg.n_blocks cfg) (Cfg.preds cfg);
    rpo = Cfg.reverse_postorder cfg;
    reachable = Cfg.reachable cfg;
  }

let is_branch_iid t iid =
  let f = Cfg.func t.cfg in
  iid >= 0
  && iid < f.Mir.Func.instr_count
  &&
  match Mir.Func.location f iid with
  | Mir.Func.Term b -> (
      match f.Mir.Func.blocks.(b).Mir.Block.term with
      | Mir.Terminator.Branch _ -> true
      | Mir.Terminator.Jump _ | Mir.Terminator.Return _ | Mir.Terminator.Halt
        ->
          false)
  | Mir.Func.Body _ -> false

let prune t dirs =
  let fresh =
    List.filter
      (fun (iid, taken) ->
        if not (is_branch_iid t iid) then
          invalid_arg
            (Printf.sprintf "Feasibility.prune: iid %d is not a branch" iid)
        else not t.pruned.(slot iid taken))
      dirs
  in
  match fresh with
  | [] -> t
  | _ :: _ ->
      let pruned = Array.copy t.pruned in
      let added = ref 0 in
      List.iter
        (fun (iid, taken) ->
          if not pruned.(slot iid taken) then begin
            pruned.(slot iid taken) <- true;
            incr added
          end)
        fresh;
      rebuild t.cfg pruned (t.n_pruned + !added)

let is_pruned t iid taken =
  let s = slot iid taken in
  s >= 0 && s < Array.length t.pruned && t.pruned.(s)

let pruned_count t = t.n_pruned

let pruned_directions t =
  let out = ref [] in
  for iid = (Array.length t.pruned / 2) - 1 downto 0 do
    if t.pruned.(slot iid false) then out := (iid, false) :: !out;
    if t.pruned.(slot iid true) then out := (iid, true) :: !out
  done;
  (* slot order within an iid is [false; true]; normalise to (iid, dir)
     with false < true, which List.sort on the pair gives anyway *)
  List.sort compare !out

let total_directions t =
  2 * List.length (Mir.Func.branches (Cfg.func t.cfg))

let cfg t = t.cfg
let branch_ok t iid taken = not (is_pruned t iid taken)

let view t =
  {
    v_blocks = Array.length t.succs;
    v_succs = (fun b -> t.succs.(b));
    v_preds = (fun b -> t.preds.(b));
    v_rpo = t.rpo;
    v_reachable = t.reachable;
  }

let view_of_cfg cfg =
  {
    v_blocks = Cfg.n_blocks cfg;
    v_succs = Cfg.succs cfg;
    v_preds = Cfg.preds cfg;
    v_rpo = Cfg.reverse_postorder cfg;
    v_reachable = Cfg.reachable cfg;
  }

(* ---------- invariants ---------- *)

let subset_multiset xs ys =
  (* xs ⊆ ys as multisets of ints *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun y ->
      Hashtbl.replace tbl y (1 + Option.value ~default:0 (Hashtbl.find_opt tbl y)))
    ys;
  List.for_all
    (fun x ->
      match Hashtbl.find_opt tbl x with
      | Some n when n > 0 ->
          Hashtbl.replace tbl x (n - 1);
          true
      | Some _ | None -> false)
    xs

let invariant_subview t =
  let nb = Cfg.n_blocks t.cfg in
  let ok = ref (Array.length t.succs = nb) in
  for b = 0 to nb - 1 do
    if !ok then ok := subset_multiset t.succs.(b) (Cfg.succs t.cfg b)
  done;
  !ok

let invariant_entry_preserved t =
  Array.length t.rpo > 0
  && t.rpo.(0) = 0
  && t.reachable.(0)
  && Array.for_all (fun b -> t.reachable.(b)) t.rpo

let invariant_monotone ~earlier ~later =
  earlier.cfg == later.cfg
  && Array.length earlier.pruned = Array.length later.pruned
  && earlier.n_pruned <= later.n_pruned
  && Array.for_all2
       (fun e l -> (not e) || l)
       earlier.pruned later.pruned

let pp ppf t =
  Format.fprintf ppf "@[<v>feasibility %s: %d/%d directions pruned"
    (Cfg.func t.cfg).Mir.Func.name t.n_pruned (total_directions t);
  List.iter
    (fun (iid, taken) ->
      Format.fprintf ppf "@,  pruned (%d,%c)" iid (if taken then 'T' else 'N'))
    (pruned_directions t);
  Format.fprintf ppf "@]"
