module Mir = Ipds_mir

type t = {
  func : Mir.Func.t;
  succs : int list array;
  preds : int list array;
  rpo : int array;
  reachable : bool array;
}

let compute_rpo func succs =
  let n = Array.length func.Mir.Func.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      order := b :: !order
    end
  in
  dfs 0;
  (Array.of_list !order, visited)

let make func =
  let n = Array.length func.Mir.Func.blocks in
  let succs =
    Array.init n (fun b -> Mir.Block.successors func.Mir.Func.blocks.(b))
  in
  let preds = Array.make n [] in
  Array.iteri
    (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
    succs;
  let rpo, reachable = compute_rpo func succs in
  { func; succs; preds; rpo; reachable }

let func t = t.func
let n_blocks t = Array.length t.succs
let succs t b = t.succs.(b)
let preds t b = t.preds.(b)
let reverse_postorder t = t.rpo
let reachable t = t.reachable

let pp ppf t =
  let f = t.func in
  Format.fprintf ppf "@[<v>cfg %s:" f.Mir.Func.name;
  Array.iteri
    (fun b ss ->
      Format.fprintf ppf "@,  %s -> %s"
        (Mir.Func.label_of_block f b)
        (String.concat ", " (List.map (Mir.Func.label_of_block f) ss)))
    t.succs;
  Format.fprintf ppf "@]"
