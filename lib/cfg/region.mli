(** Branch-edge regions.

    After a conditional branch commits with a given direction, the
    instructions executed up to (and including) the *next* conditional
    branch are fully determined: a straight-line chain of blocks connected
    by unconditional jumps.  The BAT attributes actions to branch edges, so
    any store/call that may redefine a tracked variable inside an edge's
    region must contribute a SET_UN action to that edge.

    A region stops at: the next conditional branch (recorded), a
    return/halt, or — for degenerate jump-only cycles — the first repeated
    block. *)

type stop =
  | Next_branch of int  (** term iid of the following conditional branch *)
  | Exits  (** the region runs into return/halt *)
  | Loops_forever  (** jump-only cycle with no branch *)

type t = {
  instrs : int list;
      (** body instruction iids executed inside the region, in order;
          terminator iids of traversed jumps are not included *)
  stop : stop;
}

val after_edge : Ipds_mir.Func.t -> branch_iid:int -> taken:bool -> t
(** The region entered by taking the given direction of the branch.
    Raises [Invalid_argument] if [branch_iid] is not a conditional
    branch terminator. *)

val from_entry : Ipds_mir.Func.t -> t
(** The region executed from function entry to the first conditional
    branch. *)

val all_edges : Ipds_mir.Func.t -> ((int * bool) * t) list
(** Regions for every (branch, direction) edge of the function. *)
