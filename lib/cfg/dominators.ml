module Mir = Ipds_mir

type t = {
  idom : int array;  (* -1 = none *)
  rpo_index : int array;  (* -1 for unreachable *)
}

let compute cfg =
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          let processed p = idom.(p) >= 0 in
          let preds = List.filter (fun p -> rpo_index.(p) >= 0) (Cfg.preds cfg b) in
          match List.filter processed preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo_index }

let idom t b =
  if b = 0 then None
  else if t.idom.(b) < 0 then None
  else Some t.idom.(b)

let dominates t a b =
  if t.rpo_index.(a) < 0 || t.rpo_index.(b) < 0 then false
  else begin
    (* Walk b's dominator chain towards the entry. *)
    let rec up x = if x = a then true else if x = 0 then false else up t.idom.(x) in
    up b
  end

let position f iid =
  match Mir.Func.location f iid with
  | Mir.Func.Body (blk, pos) -> (blk, pos)
  | Mir.Func.Term blk -> (blk, Array.length f.Mir.Func.blocks.(blk).Mir.Block.body)

let dominates_point t f a b =
  let blk_a, pos_a = position f a in
  let blk_b, pos_b = position f b in
  if blk_a = blk_b then pos_a <= pos_b else dominates t blk_a blk_b
