(** Instruction-level flow graph.

    Points are instruction ids (body instructions and terminators alike,
    dense in [0 .. instr_count - 1]).  A body instruction flows to the next
    instruction of its block (or the terminator); a terminator flows to the
    first point of each successor block.

    This is the graph on which the correlation analysis asks its
    path-sensitivity questions, e.g. "can a may-store of [v] execute
    between this load and that branch?". *)

type t

val make : ?branch_ok:(int -> bool -> bool) -> Ipds_mir.Func.t -> t
(** [branch_ok term_iid taken] (default: always true) filters branch
    edges: a direction it rejects contributes no terminator→successor
    edge, so path queries range over the feasibility-pruned graph
    ({!Feasibility.branch_ok}).  Jump/return edges are never filtered. *)

val n_points : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list

val first_point : t -> int -> int
(** First instruction id executed when entering a block (its terminator if
    the body is empty). *)

val reachable_from : t -> ?avoid:(int -> bool) -> int list -> bool array
(** [reachable_from t ~avoid starts] marks every point reachable from the
    points in [starts] (which are themselves marked, unless avoided) along
    edges that never pass through a point satisfying [avoid]. *)

val co_reachable_to : t -> ?avoid:(int -> bool) -> int -> bool array
(** [co_reachable_to t ~avoid target] marks every point [p] from which
    [target] is reachable in one or more steps without passing through an
    avoided point strictly between; [target] itself is marked only if it
    lies on a cycle. *)
