module Mir = Ipds_mir

type t = {
  n : int;
  succs : int list array;
  preds : int list array;
  first : int array;  (* block index -> first point *)
}

let make ?(branch_ok = fun _ _ -> true) (f : Mir.Func.t) =
  let n = f.instr_count in
  let nblocks = Array.length f.blocks in
  let first =
    Array.init nblocks (fun b ->
        let blk = f.blocks.(b) in
        if Array.length blk.Mir.Block.body > 0 then blk.Mir.Block.body.(0).Mir.Instr.iid
        else blk.Mir.Block.term_iid)
  in
  let succs = Array.make n [] in
  Array.iter
    (fun (blk : Mir.Block.t) ->
      let body = blk.body in
      Array.iteri
        (fun pos (i : Mir.Instr.t) ->
          let nxt =
            if pos + 1 < Array.length body then body.(pos + 1).Mir.Instr.iid
            else blk.term_iid
          in
          succs.(i.iid) <- [ nxt ])
        body;
      succs.(blk.term_iid) <-
        (match blk.term with
        | Mir.Terminator.Branch { if_true; if_false; _ } ->
            (if branch_ok blk.term_iid true then [ first.(if_true) ] else [])
            @ (if branch_ok blk.term_iid false then [ first.(if_false) ] else [])
        | Mir.Terminator.Jump _ | Mir.Terminator.Return _ | Mir.Terminator.Halt
          ->
            List.map (fun b -> first.(b)) (Mir.Terminator.successors blk.term)))
    f.blocks;
  let preds = Array.make n [] in
  Array.iteri (fun p ss -> List.iter (fun s -> preds.(s) <- p :: preds.(s)) ss) succs;
  { n; succs; preds; first }

let n_points t = t.n
let succs t p = t.succs.(p)
let preds t p = t.preds.(p)
let first_point t b = t.first.(b)

let no_avoid (_ : int) = false

let bfs edges n ~avoid starts =
  let seen = Array.make n false in
  let queue = Queue.create () in
  let push p =
    if (not (avoid p)) && not seen.(p) then begin
      seen.(p) <- true;
      Queue.add p queue
    end
  in
  List.iter push starts;
  while not (Queue.is_empty queue) do
    let p = Queue.take queue in
    List.iter push edges.(p)
  done;
  seen

let reachable_from t ?(avoid = no_avoid) starts = bfs t.succs t.n ~avoid starts

let co_reachable_to t ?(avoid = no_avoid) target =
  bfs t.preds t.n ~avoid t.preds.(target)
