(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

    Dominance is what licenses "store-then-test" correlations: a fact about
    a memory variable anchored at point [a] may be attached to branch [b]
    only when [a] dominates [b] (every execution of [b] is preceded by an
    execution of [a]). *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator of a block; [None] for the entry block and for
    unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — block [a] dominates block [b] (reflexive). *)

val dominates_point : t -> Ipds_mir.Func.t -> int -> int -> bool
(** [dominates_point t f a b] — instruction id [a] dominates instruction id
    [b]: either their blocks differ and [a]'s block strictly dominates
    [b]'s, or they share a block and [a] comes first ([a = b] counts). *)
