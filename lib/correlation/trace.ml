module Mir = Ipds_mir
module Range = Ipds_range
module Rd = Ipds_dataflow.Reaching_defs

type source =
  | Const of int
  | Val of {
      def_iid : int;
      affine : Range.Cond.affine;
    }
  | Opaque

let compose_affine (s : source) f =
  match s with
  | Const _ | Opaque -> Opaque
  | Val v -> Val { v with affine = f v.affine }

let max_depth = 100

let rec reg_at ctx ~depth ~at r =
  if depth > max_depth then Opaque
  else
    match Rd.unique_def ctx.Context.rdefs ~iid:at r with
    | None | Some Rd.Entry -> Opaque
    | Some (Rd.At d) -> (
        match Mir.Func.op_at ctx.Context.func d with
        | None -> Opaque (* terminators define nothing *)
        | Some op -> (
            match op with
            | Mir.Op.Const (_, n) -> Const n
            | Mir.Op.Move (_, o) -> operand_at ctx ~depth:(depth + 1) ~at:d o
            | Mir.Op.Binop (_, bop, a, b) -> (
                let sa = operand_at ctx ~depth:(depth + 1) ~at:d a in
                let sb = operand_at ctx ~depth:(depth + 1) ~at:d b in
                match bop, sa, sb with
                | _, Const x, Const y -> Const (Mir.Binop.eval bop x y)
                | Mir.Binop.Add, Val _, Const k ->
                    compose_affine sa (fun af -> Range.Cond.compose_add af k)
                | Mir.Binop.Add, Const k, Val _ ->
                    compose_affine sb (fun af -> Range.Cond.compose_add af k)
                | Mir.Binop.Sub, Val _, Const k ->
                    compose_affine sa (fun af -> Range.Cond.compose_add af (-k))
                | Mir.Binop.Sub, Const k, Val _ ->
                    compose_affine sb (fun af -> Range.Cond.compose_sub_from k af)
                | Mir.Binop.Mul, Val v, Const k | Mir.Binop.Mul, Const k, Val v -> (
                    match Range.Cond.compose_mul v.affine k with
                    | Some affine -> Val { v with affine }
                    | None -> Const 0 (* k = 0 *))
                | Mir.Binop.Shl, Val v, Const k -> (
                    match Range.Cond.compose_shl v.affine k with
                    | Some affine -> Val { v with affine }
                    | None -> Opaque)
                | ( ( Mir.Binop.Add | Mir.Binop.Sub | Mir.Binop.Mul | Mir.Binop.Div
                    | Mir.Binop.Rem | Mir.Binop.And | Mir.Binop.Or | Mir.Binop.Xor
                    | Mir.Binop.Shl | Mir.Binop.Shr ),
                    (Const _ | Val _ | Opaque),
                    (Const _ | Val _ | Opaque) ) ->
                    Opaque)
            | Mir.Op.Load _ | Mir.Op.Addr_of _ | Mir.Op.Call _ | Mir.Op.Input _ ->
                Val { def_iid = d; affine = Range.Cond.identity }
            | Mir.Op.Store _ | Mir.Op.Output _ | Mir.Op.Nop -> Opaque))

and operand_at ctx ~depth ~at (o : Mir.Operand.t) =
  match o with
  | Mir.Operand.Imm n -> Const n
  | Mir.Operand.Reg r -> reg_at ctx ~depth ~at r

let operand ctx ~at o = operand_at ctx ~depth:0 ~at o
let reg ctx ~at r = reg_at ctx ~depth:0 ~at r

let load_anchor ctx (s : source) =
  match s with
  | Const _ | Opaque -> None
  | Val { def_iid; affine } -> (
      match Mir.Func.op_at ctx.Context.func def_iid with
      | Some (Mir.Op.Load (_, a)) -> (
          match Ipds_alias.Access.addr_target ctx.Context.access a with
          | Ipds_alias.Access.Exact cell -> Some (def_iid, cell, affine)
          | Ipds_alias.Access.No_target | Ipds_alias.Access.Within _ -> None)
      | Some _ | None -> None)
