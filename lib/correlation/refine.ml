(* Feasible-path refinement: the precision flywheel.

   Round i analyzes the function on the current feasibility view; its
   output yields branch directions no *benign* execution can commit.
   Pruning them tightens the point graph and the reaching definitions,
   which can expose further correlations on round i+1 — iterate until no
   new direction falls, or the per-function cap.

   Three derivation channels feed the pruner:

   - {e unanimous pins}: a branch whose entry action is a direction and
     which no edge action ever contradicts (no [Set_unknown], no
     opposite direction) always goes that way benignly — the checker's
     own soundness argument, read backwards.  The opposite direction is
     the paper's "infeasible path": only a tampered run enters it, and
     the runtime check already alarms there.
   - {e static refutations} ({!Analysis.static_infeasible}): directions
     whose inverse affine image is empty, or const-const decided
     branches.  These are dead for tampered runs too.
   - {e range flow} ({!Ipds_range.Flow}): interval facts over registers
     force branch directions; registers cannot be tampered (memory
     reaches them only through loads, which the flow treats as unknown).

   Soundness invariant: a pruned direction is never committed by an
   untampered execution, so analysis results on the pruned view hold on
   every benign run — by induction over rounds.  A tampered run that
   does commit one lands on a branch the tables pin, and alarms. *)

module Mir = Ipds_mir
module Feas = Ipds_cfg.Feasibility

let m_iterations = Ipds_obs.Registry.counter "refine.iterations"
let m_edges_pruned = Ipds_obs.Registry.counter "refine.edges_pruned"
let m_correlations_gained = Ipds_obs.Registry.counter "refine.correlations_gained"

type stats = {
  iterations : int;
  edges_pruned : int;
  total_directions : int;
  correlations_before : int;
  correlations_after : int;
  pruned : (int * bool) list;
}

let correlations_gained s = max 0 (s.correlations_after - s.correlations_before)

(* Directed (SET_T / SET_NT) actions are the correlations the checker
   can enforce; SET_UN only retracts. *)
let directed_count (r : Analysis.result) =
  let count =
    List.fold_left (fun acc (_, a) ->
        match (a : Action.t) with
        | Action.Set_taken | Action.Set_not_taken -> acc + 1
        | Action.Set_unknown -> acc)
  in
  List.fold_left
    (fun acc (_, actions) -> count acc actions)
    (count 0 r.Analysis.entry_actions)
    r.Analysis.edge_actions

(* A branch pinned to direction [d] at activation entry and never
   retargeted by any edge action benignly commits [d] forever: prune
   [not d].

   An action recorded on the branch's own [not d] edge (its self
   SET_NT/SET_T, or region facts behind it) is not a conflict: it only
   fires once [not d] has already been committed, and by induction over
   a benign run's first deviation that commit would itself be a checker
   false positive — which table soundness rules out.  Everything else
   that retargets the branch away from [d] is a real benign path. *)
let unanimous_pins (r : Analysis.result) =
  let conflicting bl d =
    List.exists
      (fun (((src, sdir), actions) : Analysis.edge * _) ->
        (not (src = bl && sdir = not d))
        && List.exists
             (fun (tgt, a) ->
               tgt = bl && not (Action.equal a (Action.of_direction d)))
             actions)
      r.Analysis.edge_actions
  in
  List.filter_map
    (fun (bl, a) ->
      match (a : Action.t) with
      | Action.Set_taken when not (conflicting bl true) -> Some (bl, false)
      | Action.Set_not_taken when not (conflicting bl false) -> Some (bl, true)
      | Action.Set_taken | Action.Set_not_taken | Action.Set_unknown -> None)
    r.Analysis.entry_actions

let fresh_directions feas dirs =
  List.sort_uniq compare
    (List.filter (fun (iid, taken) -> not (Feas.is_pruned feas iid taken)) dirs)

let analyze ?(options = Analysis.default_options) pw (func : Mir.Func.t) =
  let cap =
    match options.Analysis.precision with
    | Analysis.Off -> 1
    | Analysis.Refine { cap } -> max 1 cap
  in
  let cfg = Ipds_cfg.Cfg.make func in
  let feas = ref (Feas.full cfg) in
  let ctx = ref (Context.for_func ~feas:!feas pw func) in
  let result = ref (Analysis.analyze_ctx ~options !ctx) in
  let first_count = directed_count !result in
  let iterations = ref 1 in
  let continue = ref (cap > 1) in
  while !continue do
    let dirs =
      unanimous_pins !result
      @ Analysis.static_infeasible ~options !ctx
      @ Ipds_range.Flow.infeasible_directions
          (Ipds_range.Flow.analyze ~feas:!feas func)
    in
    match fresh_directions !feas dirs with
    | [] -> continue := false
    | fresh ->
        feas := Feas.prune !feas fresh;
        ctx := Context.for_func ~feas:!feas pw func;
        result := Analysis.analyze_ctx ~options !ctx;
        incr iterations;
        if !iterations >= cap then continue := false
  done;
  let stats =
    {
      iterations = !iterations;
      edges_pruned = Feas.pruned_count !feas;
      total_directions = Feas.total_directions !feas;
      correlations_before = first_count;
      correlations_after = directed_count !result;
      pruned = Feas.pruned_directions !feas;
    }
  in
  Ipds_obs.Registry.add m_iterations stats.iterations;
  Ipds_obs.Registry.add m_edges_pruned stats.edges_pruned;
  Ipds_obs.Registry.add m_correlations_gained (correlations_gained stats);
  (!result, stats)
