(** Branch dependencies: which memory cell a conditional branch's outcome
    is a function of.

    A branch [br cmp lhs, rhs] depends on cell [c] when one side traces to
    an affine view of a load of [c] and the other side traces to a
    constant.  Branches without such a dependency cannot be checked (the
    paper's BCV exclusion). *)

type t = {
  branch_iid : int;
  cell : Ipds_alias.Cell.t;
  load_iid : int;  (** the anchoring load *)
  affine : Ipds_range.Cond.affine;  (** tested value = affine(cell value) *)
  cmp : Ipds_mir.Cmp.t;
  konst : int;  (** tested against this constant *)
}

val of_branch : Context.t -> int -> t option
(** [of_branch ctx iid] — the dependency of the conditional branch with
    terminator id [iid], if traceable. *)

val all : Context.t -> t list
(** Dependencies of every conditional branch of the function. *)

val taken_pred : t -> taken:bool -> Ipds_range.Pred.t
(** The predicate the cell value satisfies when the branch goes in the
    given direction. *)

val forced_direction : t -> Ipds_range.Pred.t -> bool option
(** The direction forced by a known predicate on the cell value. *)

val pp : Format.formatter -> t -> unit
