module Mir = Ipds_mir
module Alias = Ipds_alias
module Range = Ipds_range
module Pg = Ipds_cfg.Point_graph
module Region = Ipds_cfg.Region
module Cell = Alias.Cell

type edge = int * bool

type result = {
  func : Mir.Func.t;
  depends : Depend.t list;
  checked : int list;
  edge_actions : (edge * (int * Action.t) list) list;
  entry_actions : (int * Action.t) list;
}

type precision =
  | Off
  | Refine of { cap : int }

type options = {
  store_load : bool;
  load_load : bool;
  affine_tracing : bool;
  summary_mode : Alias.Summary.mode;
  precision : precision;
}

let default_options =
  {
    store_load = true;
    load_load = true;
    affine_tracing = true;
    summary_mode = `Faithful;
    precision = Off;
  }

let default_refine_cap = 4
let precision_on = Refine { cap = default_refine_cap }

(* [Off] must render exactly as the pre-precision fingerprint did: the
   per-function digests, store keys and artifact bytes of a [--precision
   off] build are byte-identical to a build that predates the refine
   pass.  Enabling precision appends a component, so it behaves like any
   other analysis-config change: a clean cache miss. *)
let options_fingerprint o =
  let base =
    Printf.sprintf "store_load=%b;load_load=%b;affine=%b;summary=%s" o.store_load
      o.load_load o.affine_tracing
      (match o.summary_mode with
      | `Faithful -> "faithful"
      | `Precise_globals -> "precise-globals")
  in
  match o.precision with
  | Off -> base
  | Refine { cap } -> Printf.sprintf "%s;precision=refine;cap=%d" base cap

(* ---------- Working state ---------- *)

type fact = {
  pred : Range.Pred.t;
  anchor : int;  (** point P at which the fact is established *)
  written : bool;  (** a store in the current region produced it *)
}

type cell_state =
  | Known of fact
  | Killed

(* The committed branch's tested value, for pinning stores in its region:
   tested = affine(value produced by def_iid). *)
type pin = {
  pin_def : int;
  pin_affine : Range.Cond.affine;
  pin_cmp : Mir.Cmp.t;
  pin_konst : int;
  pin_taken : bool;
}

type st = {
  ctx : Context.t;
  opts : options;
  mutable kills_cache : int list Cell.Map.t;
  (* reachable_from (succs p) avoiding a: keyed (p, a) *)
  reach_cache : (int * int, bool array) Hashtbl.t;
  (* co_reachable_to p avoiding a: keyed (p, a) *)
  coreach_cache : (int * int, bool array) Hashtbl.t;
}

let kills_of st cell =
  match Cell.Map.find_opt cell st.kills_cache with
  | Some k -> k
  | None ->
      let k = Context.kills_of_cell st.ctx cell in
      st.kills_cache <- Cell.Map.add cell k st.kills_cache;
      k

let reach_from_after st p ~avoid =
  match Hashtbl.find_opt st.reach_cache (p, avoid) with
  | Some a -> a
  | None ->
      let a =
        Pg.reachable_from st.ctx.Context.pgraph
          ~avoid:(fun q -> q = avoid)
          (Pg.succs st.ctx.Context.pgraph p)
      in
      Hashtbl.replace st.reach_cache (p, avoid) a;
      a

let coreach_to st p ~avoid =
  match Hashtbl.find_opt st.coreach_cache (p, avoid) with
  | Some a -> a
  | None ->
      let a = Pg.co_reachable_to st.ctx.Context.pgraph ~avoid:(fun q -> q = avoid) p in
      Hashtbl.replace st.coreach_cache (p, avoid) a;
      a

(* No may-kill of [cell] (other than [exempt]) can execute strictly
   between [src] and [dst] on any path that does not revisit [src]. *)
let kill_free st ~cell ~src ~dst ~exempt =
  let reach = reach_from_after st src ~avoid:src in
  let coreach = coreach_to st dst ~avoid:src in
  not
    (List.exists
       (fun k -> k <> exempt && k <> src && reach.(k) && coreach.(k))
       (kills_of st cell))

(* ---------- Test-implied facts at the commit of edge (bs, d) ---------- *)

let pin_of st bs =
  let f = st.ctx.Context.func in
  match Mir.Func.location f bs with
  | Mir.Func.Term b -> (
      match f.blocks.(b).Mir.Block.term with
      | Mir.Terminator.Branch { cmp; lhs; rhs; _ } -> (
          let s_lhs = Trace.reg st.ctx ~at:bs lhs in
          let s_rhs = Trace.operand st.ctx ~at:bs rhs in
          let mk def_iid affine cmp konst taken =
            if
              st.opts.affine_tracing
              || (affine.Range.Cond.scale = 1 && affine.Range.Cond.offset = 0)
            then
              Some
                {
                  pin_def = def_iid;
                  pin_affine = affine;
                  pin_cmp = cmp;
                  pin_konst = konst;
                  pin_taken = taken;
                }
            else None
          in
          fun ~taken ->
            match s_lhs, s_rhs with
            | Trace.Val { def_iid; affine }, Trace.Const k ->
                mk def_iid affine cmp k taken
            | Trace.Const k, Trace.Val { def_iid; affine } ->
                mk def_iid affine (Mir.Cmp.swap cmp) k taken
            | (Trace.Val _ | Trace.Const _ | Trace.Opaque), _ -> None)
      | Mir.Terminator.Jump _ | Mir.Terminator.Return _ | Mir.Terminator.Halt ->
          fun ~taken:_ -> None)
  | Mir.Func.Body _ -> fun ~taken:_ -> None

(* The value [pin] constrains, as a predicate, when the edge commits. *)
let pin_pred pin =
  Range.Cond.value_pred pin.pin_affine pin.pin_cmp pin.pin_konst ~taken:pin.pin_taken

let usable_affine st (a : Range.Cond.affine) =
  st.opts.affine_tracing || (a.Range.Cond.scale = 1 && a.Range.Cond.offset = 0)

(* Load–load: the branch itself anchors at a load of [cell]; if nothing can
   have overwritten the cell since that load, the committed direction pins
   the cell's current content. *)
let own_load_fact st dep ~taken =
  if not st.opts.load_load then None
  else if not (usable_affine st dep.Depend.affine) then None
  else if
    kill_free st ~cell:dep.Depend.cell ~src:dep.Depend.load_iid
      ~dst:dep.Depend.branch_iid ~exempt:dep.Depend.load_iid
  then
    Some
      ( dep.Depend.cell,
        {
          pred = Depend.taken_pred dep ~taken;
          anchor = dep.Depend.branch_iid;
          written = false;
        } )
  else None

(* Store–load: a store put the very value the branch tests into [c_s]; the
   committed direction pins the stored value, hence the cell. *)
let store_facts st ~bs pin =
  if not st.opts.store_load then []
  else
    match pin with
    | None -> []
    | Some pin ->
        let f = st.ctx.Context.func in
        let facts = ref [] in
        Mir.Func.iter_instrs f (fun s op ->
            match op with
            | Mir.Op.Store (a, o) -> (
                match Alias.Access.addr_target st.ctx.Context.access a with
                | Alias.Access.Exact c_s -> (
                    match Trace.operand st.ctx ~at:s o with
                    | Trace.Val { def_iid = d; affine = a_s }
                      when d = pin.pin_def && usable_affine st a_s ->
                        (* (a) every pin-def-free path from the def to the
                           branch passes the store; *)
                        let reach_d =
                          Pg.reachable_from st.ctx.Context.pgraph
                            ~avoid:(fun q -> q = s || q = pin.pin_def)
                            (Pg.succs st.ctx.Context.pgraph pin.pin_def)
                        in
                        let intercepts = not reach_d.(bs) in
                        (* (b) the def does not re-execute strictly between
                           the store and the branch; *)
                        let reach_s = reach_from_after st s ~avoid:s in
                        let coreach_bs = coreach_to st bs ~avoid:s in
                        let def_quiet =
                          s = pin.pin_def
                          || not (reach_s.(pin.pin_def) && coreach_bs.(pin.pin_def))
                        in
                        (* (c) nothing overwrites the cell between store
                           and branch. *)
                        let quiet =
                          kill_free st ~cell:c_s ~src:s ~dst:bs ~exempt:s
                        in
                        if intercepts && def_quiet && quiet then
                          facts :=
                            ( c_s,
                              {
                                pred = Range.Cond.apply a_s (pin_pred pin);
                                anchor = bs;
                                written = false;
                              } )
                            :: !facts
                    | Trace.Val _ | Trace.Const _ | Trace.Opaque -> ())
                | Alias.Access.No_target | Alias.Access.Within _ -> ())
            | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Load _
            | Mir.Op.Addr_of _ | Mir.Op.Call _ | Mir.Op.Input _ | Mir.Op.Output _
            | Mir.Op.Nop ->
                ());
        !facts

(* ---------- Region walk ---------- *)

type walk_state = {
  mutable cells : cell_state Cell.Map.t;
  mutable killed_vars : Mir.Var.Set.t;
  mutable executed : Ipds_alias.Pt_set.Int_set.t;
}

let kill_cell ws c = ws.cells <- Cell.Map.add c Killed ws.cells

let kill_vars ws vs =
  ws.killed_vars <- Mir.Var.Set.union ws.killed_vars vs;
  ws.cells <-
    Cell.Map.mapi
      (fun (c : Cell.t) state ->
        if Mir.Var.Set.mem c.var vs then Killed else state)
      ws.cells

let set_fact ws c fact = ws.cells <- Cell.Map.add c (Known fact) ws.cells

let walk_region st ~pin ~(seed : (Cell.t * fact) list) (region : Region.t) =
  let ws =
    {
      cells = Cell.Map.empty;
      killed_vars = Mir.Var.Set.empty;
      executed = Ipds_alias.Pt_set.Int_set.empty;
    }
  in
  List.iter (fun (c, fct) -> set_fact ws c fct) seed;
  List.iter
    (fun iid ->
      (match st.ctx.Context.may_def_of.(iid) with
      | Alias.Access.No_target -> ()
      | Alias.Access.Within vs -> kill_vars ws vs
      | Alias.Access.Exact c -> (
          (* Exact writes: stores may establish facts, everything else
             (calls with an exact pointee) kills. *)
          match Mir.Func.op_at st.ctx.Context.func iid with
          | Some (Mir.Op.Store (_, o)) -> (
              match Trace.operand st.ctx ~at:iid o with
              | Trace.Const n ->
                  if st.opts.store_load then
                    set_fact ws c
                      {
                        pred = Range.Pred.In (Range.Interval.point n);
                        anchor = iid;
                        written = true;
                      }
                  else kill_cell ws c
              | Trace.Val { def_iid = d; affine = a_s } -> (
                  match pin with
                  | Some pin
                    when st.opts.store_load && d = pin.pin_def
                         && usable_affine st a_s
                         && not (Ipds_alias.Pt_set.Int_set.mem d ws.executed) ->
                      let pred = Range.Cond.apply a_s (pin_pred pin) in
                      if Range.Pred.is_top pred then kill_cell ws c
                      else set_fact ws c { pred; anchor = iid; written = true }
                  | Some _ | None -> kill_cell ws c)
              | Trace.Opaque -> kill_cell ws c)
          | Some _ | None -> kill_cell ws c));
      ws.executed <- Ipds_alias.Pt_set.Int_set.add iid ws.executed)
    region.Region.instrs;
  ws

(* ---------- Actions from a walked region ---------- *)

let state_of ws (c : Cell.t) =
  match Cell.Map.find_opt c ws.cells with
  | Some s -> Some s
  | None -> if Mir.Var.Set.mem c.var ws.killed_vars then Some Killed else None

let action_for st ws (dep : Depend.t) =
  match state_of ws dep.Depend.cell with
  | None -> None
  | Some Killed -> Some (dep.Depend.branch_iid, Action.Set_unknown)
  | Some (Known fact) ->
      let l_b = dep.Depend.load_iid in
      let bl = dep.Depend.branch_iid in
      (* (i) every path from the fact point to the branch reloads the
         cell first; *)
      let fresh =
        let reach = reach_from_after st fact.anchor ~avoid:l_b in
        not reach.(bl)
      in
      (* (ii) or the branch's register cannot be stale: no kill separates
         its load from the fact point.  Only available for test-implied
         facts — a *written* fact's own store separates a previously
         loaded register from memory, so it must rely on (i). *)
      let current =
        fresh
        || ((not fact.written)
           && kill_free st ~cell:dep.Depend.cell ~src:l_b ~dst:fact.anchor
                ~exempt:l_b)
      in
      if current then
        match Depend.forced_direction dep fact.pred with
        | Some dir -> Some (bl, Action.of_direction dir)
        | None -> if fact.written then Some (bl, Action.Set_unknown) else None
      else if fact.written then Some (bl, Action.Set_unknown)
      else None

(* ---------- Putting a function together ---------- *)

let analyze_with st =
  let ctx = st.ctx in
  let f = ctx.Context.func in
  let depends = Depend.all ctx in
  let depends =
    List.filter (fun d -> usable_affine st d.Depend.affine) depends
  in
  let actions_of_walk ws =
    List.filter_map (action_for st ws) depends
  in
  let entry_ws = walk_region st ~pin:None ~seed:[] (Region.from_entry f) in
  let entry_actions = actions_of_walk entry_ws in
  let edge_actions =
    List.concat_map
      (fun (bs, _blk) ->
        let pin_at = pin_of st bs in
        List.map
          (fun taken ->
            let pin = pin_at ~taken in
            let seed =
              let own =
                match Depend.of_branch ctx bs with
                | Some dep -> (
                    match own_load_fact st dep ~taken with
                    | Some f -> [ f ]
                    | None -> [])
                | None -> []
              in
              let stores = store_facts st ~bs pin in
              (* own-load facts take precedence on collision: seed last
                 wins in walk seeding, so put them last. *)
              stores @ own
            in
            let region = Region.after_edge f ~branch_iid:bs ~taken in
            let ws = walk_region st ~pin ~seed region in
            ((bs, taken), actions_of_walk ws))
          [ true; false ])
      (Mir.Func.branches f)
  in
  (* BCV: only branches that can actually receive an expected direction. *)
  let module IS = Ipds_alias.Pt_set.Int_set in
  let checked =
    let add acc (tgt, (a : Action.t)) =
      match a with
      | Action.Set_taken | Action.Set_not_taken -> IS.add tgt acc
      | Action.Set_unknown -> acc
    in
    let acc = List.fold_left add IS.empty entry_actions in
    let acc =
      List.fold_left
        (fun acc (_, actions) -> List.fold_left add acc actions)
        acc edge_actions
    in
    IS.elements acc
  in
  let keep (tgt, _) = List.mem tgt checked in
  {
    func = f;
    depends;
    checked;
    edge_actions =
      List.filter_map
        (fun (e, actions) ->
          match List.filter keep actions with
          | [] -> None
          | kept -> Some (e, kept))
        edge_actions;
    entry_actions = List.filter keep entry_actions;
  }

let st_of ctx options =
  {
    ctx;
    opts = options;
    kills_cache = Cell.Map.empty;
    reach_cache = Hashtbl.create 64;
    coreach_cache = Hashtbl.create 64;
  }

let analyze_ctx ?(options = default_options) ctx = analyze_with (st_of ctx options)

let analyze_func ?(options = default_options) ?feas pw func =
  analyze_ctx ~options (Context.for_func ?feas pw func)

(* Branch directions no execution — tampered or not — can commit: the
   committed direction's exact inverse image through the affine trace is
   empty ([Never]), or both operands trace to constants and the branch
   is decided.  Registers are immune to memory tampering (a tampered
   value enters a register only through a load, and these predicates
   come from the trace semantics, not from memory facts), so these are
   safe to prune unconditionally. *)
let static_infeasible ?(options = default_options) ctx =
  let st = st_of ctx options in
  let f = ctx.Context.func in
  let out = ref [] in
  List.iter
    (fun (bs, (blk : Mir.Block.t)) ->
      (match blk.term with
      | Mir.Terminator.Branch { cmp; lhs; rhs; _ } -> (
          match Trace.reg st.ctx ~at:bs lhs, Trace.operand st.ctx ~at:bs rhs with
          | Trace.Const a, Trace.Const b ->
              (* decided: the direction the comparison refutes is dead *)
              out := (bs, not (Mir.Cmp.eval cmp a b)) :: !out
          | _, _ ->
              let pin_at = pin_of st bs in
              List.iter
                (fun taken ->
                  match pin_at ~taken with
                  | Some pin when Range.Pred.equal (pin_pred pin) Range.Pred.Never
                    ->
                      out := (bs, taken) :: !out
                  | Some _ | None -> ())
                [ true; false ])
      | Mir.Terminator.Jump _ | Mir.Terminator.Return _ | Mir.Terminator.Halt ->
          ()))
    (Mir.Func.branches f);
  List.sort compare !out

let analyze pw func = analyze_func pw func

let analyze_program ?(options = default_options) prog =
  let pw = Context.prepare ~mode:options.summary_mode prog in
  List.map
    (fun (f : Mir.Func.t) -> (f.Mir.Func.name, analyze_func ~options pw f))
    prog.Mir.Program.funcs

let actions_for result edge =
  match List.assoc_opt edge result.edge_actions with
  | Some actions -> actions
  | None -> []

let pp_result ppf r =
  Format.fprintf ppf "@[<v>function %s:@," r.func.Mir.Func.name;
  Format.fprintf ppf "  checked branches: %s@,"
    (String.concat ", " (List.map string_of_int r.checked));
  List.iter
    (fun d -> Format.fprintf ppf "  depend: %a@," Depend.pp d)
    r.depends;
  List.iter
    (fun (tgt, a) -> Format.fprintf ppf "  entry: %d <- %a@," tgt Action.pp a)
    r.entry_actions;
  List.iter
    (fun ((bs, dir), actions) ->
      List.iter
        (fun (tgt, a) ->
          Format.fprintf ppf "  (%d,%c): %d <- %a@," bs
            (if dir then 'T' else 'N')
            tgt Action.pp a)
        actions)
    r.edge_actions;
  Format.fprintf ppf "@]"
