(** Bundled per-function analysis state shared by the correlation passes. *)

type t = {
  program : Ipds_mir.Program.t;
  func : Ipds_mir.Func.t;
  cfg : Ipds_cfg.Cfg.t;
  feas : Ipds_cfg.Feasibility.t;
      (** the feasibility view [pgraph] and [rdefs] were computed on *)
  pgraph : Ipds_cfg.Point_graph.t;
  rdefs : Ipds_dataflow.Reaching_defs.t;
  access : Ipds_alias.Access.t;
  may_def_of : Ipds_alias.Access.target array;
      (** indexed by iid; [No_target] for non-writing instructions *)
}

type program_wide = {
  prog : Ipds_mir.Program.t;
  points_to : Ipds_alias.Points_to.t;
  summaries : string -> Ipds_alias.Summary.t;
}

val prepare : ?mode:Ipds_alias.Summary.mode -> Ipds_mir.Program.t -> program_wide

val for_func :
  ?feas:Ipds_cfg.Feasibility.t -> program_wide -> Ipds_mir.Func.t -> t
(** [for_func ?feas pw func] — when [feas] is given, the point graph and
    reaching definitions are computed on the feasibility-pruned views,
    so every path-sensitivity question the analysis asks ranges over
    feasible paths only.  Default: the unpruned function. *)

val slice_fingerprint : program_wide -> Ipds_mir.Func.t -> string
(** Hex digest of the program-wide state one function's analysis can
    observe: its points-to slice, the summaries of its callees and the
    program-wide variable numbering.  Combined with the function body,
    base PC and analysis options it forms the content digest that keys
    per-function incremental caching. *)

val kills_of_cell : t -> Ipds_alias.Cell.t -> int list
(** Instruction ids that may overwrite the cell. *)
