module Mir = Ipds_mir
module Range = Ipds_range

type t = {
  branch_iid : int;
  cell : Ipds_alias.Cell.t;
  load_iid : int;
  affine : Range.Cond.affine;
  cmp : Mir.Cmp.t;
  konst : int;
}

let of_branch ctx branch_iid =
  let f = ctx.Context.func in
  let term =
    match Mir.Func.location f branch_iid with
    | Mir.Func.Term b -> f.blocks.(b).Mir.Block.term
    | Mir.Func.Body _ -> invalid_arg "Depend.of_branch: not a terminator"
  in
  match term with
  | Mir.Terminator.Branch { cmp; lhs; rhs; _ } -> (
      let s_lhs = Trace.reg ctx ~at:branch_iid lhs in
      let s_rhs = Trace.operand ctx ~at:branch_iid rhs in
      match s_lhs, s_rhs with
      | _, Trace.Const konst -> (
          match Trace.load_anchor ctx s_lhs with
          | Some (load_iid, cell, affine) ->
              Some { branch_iid; cell; load_iid; affine; cmp; konst }
          | None -> None)
      | Trace.Const konst, _ -> (
          (* konst cmp value  ≡  value (swap cmp) konst *)
          match Trace.load_anchor ctx s_rhs with
          | Some (load_iid, cell, affine) ->
              Some
                { branch_iid; cell; load_iid; affine; cmp = Mir.Cmp.swap cmp; konst }
          | None -> None)
      | (Trace.Val _ | Trace.Opaque), (Trace.Val _ | Trace.Opaque) -> None)
  | Mir.Terminator.Jump _ | Mir.Terminator.Return _ | Mir.Terminator.Halt ->
      invalid_arg "Depend.of_branch: not a conditional branch"

let all ctx =
  List.filter_map
    (fun (iid, _) -> of_branch ctx iid)
    (Mir.Func.branches ctx.Context.func)

let taken_pred t ~taken = Range.Cond.value_pred t.affine t.cmp t.konst ~taken
let forced_direction t pred = Range.Cond.forced_direction t.affine t.cmp t.konst pred

let pp ppf t =
  Format.fprintf ppf "br@%d on %a (load@%d, %+d%s) %a %d" t.branch_iid
    Ipds_alias.Cell.pp t.cell t.load_iid t.affine.Range.Cond.offset
    (if t.affine.Range.Cond.scale < 0 then ", negated" else "")
    Mir.Cmp.pp t.cmp t.konst
