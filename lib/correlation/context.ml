module Mir = Ipds_mir
module Alias = Ipds_alias

type t = {
  program : Mir.Program.t;
  func : Mir.Func.t;
  cfg : Ipds_cfg.Cfg.t;
  feas : Ipds_cfg.Feasibility.t;
  pgraph : Ipds_cfg.Point_graph.t;
  rdefs : Ipds_dataflow.Reaching_defs.t;
  access : Alias.Access.t;
  may_def_of : Alias.Access.target array;
}

type program_wide = {
  prog : Mir.Program.t;
  points_to : Alias.Points_to.t;
  summaries : string -> Alias.Summary.t;
}

let prepare ?(mode = `Faithful) prog =
  let points_to = Alias.Points_to.compute prog in
  let summaries = Alias.Summary.compute prog points_to ~mode in
  { prog; points_to; summaries }

let for_func ?feas pw (func : Mir.Func.t) =
  let cfg = Ipds_cfg.Cfg.make func in
  let feas =
    match feas with Some f -> f | None -> Ipds_cfg.Feasibility.full cfg
  in
  let pgraph =
    Ipds_cfg.Point_graph.make
      ~branch_ok:(Ipds_cfg.Feasibility.branch_ok feas)
      func
  in
  let rdefs = Ipds_dataflow.Reaching_defs.compute ~feas cfg in
  let access = Alias.Access.make pw.prog pw.points_to ~summaries:pw.summaries func in
  let may_def_of = Array.make func.instr_count Alias.Access.No_target in
  Mir.Func.iter_instrs func (fun iid op -> may_def_of.(iid) <- Alias.Access.may_defs access op);
  { program = pw.prog; func; cfg; feas; pgraph; rdefs; access; may_def_of }

(* Everything one function's analysis reads from the program-wide
   preparation: its slice of the points-to solution and the summaries of
   its callees (the only summaries [Access] consults for it).  Also
   covers the program-wide variable numbering, which cell identity
   depends on.  Editing a function without disturbing any of these
   leaves every other function's digest — and cached analysis — valid. *)
let slice_fingerprint pw (func : Mir.Func.t) =
  let callees = ref [] in
  Mir.Func.iter_instrs func (fun _ op ->
      match op with
      | Mir.Op.Call { callee; _ } ->
          if not (List.mem callee !callees) then callees := callee :: !callees
      | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Load _
      | Mir.Op.Store _ | Mir.Op.Addr_of _ | Mir.Op.Input _ | Mir.Op.Output _
      | Mir.Op.Nop ->
          ());
  let callee_part =
    List.map
      (fun c -> c ^ "=" ^ Alias.Summary.fingerprint (pw.summaries c))
      (List.sort String.compare !callees)
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (Alias.Points_to.func_fingerprint pw.points_to ~fname:func.Mir.Func.name
          :: string_of_int pw.prog.Mir.Program.var_count
          :: callee_part)))

let kills_of_cell t cell =
  let out = ref [] in
  Array.iteri
    (fun iid target ->
      if Alias.Access.may_touch target cell then out := iid :: !out)
    t.may_def_of;
  List.rev !out
