module Mir = Ipds_mir
module Alias = Ipds_alias

type t = {
  program : Mir.Program.t;
  func : Mir.Func.t;
  cfg : Ipds_cfg.Cfg.t;
  pgraph : Ipds_cfg.Point_graph.t;
  rdefs : Ipds_dataflow.Reaching_defs.t;
  access : Alias.Access.t;
  may_def_of : Alias.Access.target array;
}

type program_wide = {
  prog : Mir.Program.t;
  points_to : Alias.Points_to.t;
  summaries : string -> Alias.Summary.t;
}

let prepare ?(mode = `Faithful) prog =
  let points_to = Alias.Points_to.compute prog in
  let summaries = Alias.Summary.compute prog points_to ~mode in
  { prog; points_to; summaries }

let for_func pw (func : Mir.Func.t) =
  let cfg = Ipds_cfg.Cfg.make func in
  let pgraph = Ipds_cfg.Point_graph.make func in
  let rdefs = Ipds_dataflow.Reaching_defs.compute cfg in
  let access = Alias.Access.make pw.prog pw.points_to ~summaries:pw.summaries func in
  let may_def_of = Array.make func.instr_count Alias.Access.No_target in
  Mir.Func.iter_instrs func (fun iid op -> may_def_of.(iid) <- Alias.Access.may_defs access op);
  { program = pw.prog; func; cfg; pgraph; rdefs; access; may_def_of }

let kills_of_cell t cell =
  let out = ref [] in
  Array.iteri
    (fun iid target ->
      if Alias.Access.may_touch target cell then out := iid :: !out)
    t.may_def_of;
  List.rev !out
