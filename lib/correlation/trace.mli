(** Backward value tracing through unique affine definition chains.

    Starting from a register use, the tracer follows the (unique) reaching
    definition through moves and add/sub-by-constant chains until it
    bottoms out at a value-producing instruction (load, input, call, …) or
    a constant.  A successful trace means the register provably equals
    [scale * v + offset] where [v] is the value produced by the anchor on
    *every* execution reaching the use — the property that lets branch
    directions speak about memory contents. *)

type source =
  | Const of int  (** the register provably holds this constant *)
  | Val of {
      def_iid : int;  (** anchor instruction producing the base value *)
      affine : Ipds_range.Cond.affine;
    }
  | Opaque

val operand : Context.t -> at:int -> Ipds_mir.Operand.t -> source
(** Trace an operand as read just before instruction [at] executes. *)

val reg : Context.t -> at:int -> Ipds_mir.Reg.t -> source

val load_anchor :
  Context.t -> source -> (int * Ipds_alias.Cell.t * Ipds_range.Cond.affine) option
(** If the source anchors at a load of a uniquely-aliased cell, the load's
    iid, cell, and the affine view of the loaded value. *)
