(** BAT actions: how a committed branch direction updates another branch's
    expected-direction status (paper §5.1: SET_T, SET_NT, SET_UN, NC; NC
    is represented by the absence of an entry). *)

type t =
  | Set_taken
  | Set_not_taken
  | Set_unknown

val of_direction : bool -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
