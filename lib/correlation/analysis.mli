(** The branch-correlation analysis (paper §5.1, Figure 5).

    For every branch edge (branch, direction) — and for function entry —
    the analysis derives which *facts* about memory cells hold once the
    edge commits:

    - {e test-implied} facts: the committed direction pins the tested
      value, which traces back to a load of a cell (load–load correlation)
      or matches the value a dominating store put in memory (store–load
      correlation);
    - {e region} facts: the straight-line region after the edge runs
      constant stores or stores of the just-tested value;
    - {e kills}: stores and call pseudo-stores in the region invalidate
      previously known directions (SET_UN).

    Facts become BAT actions against every branch whose outcome depends on
    the affected cell, guarded by two freshness conditions that make the
    runtime check {e sound} (zero false positives): either every path from
    the fact point to the target passes the target's anchoring load, or no
    kill can separate that load from the fact point. *)

type edge = int * bool
(** Branch terminator iid and direction. *)

type result = {
  func : Ipds_mir.Func.t;
  depends : Depend.t list;  (** branches with traceable dependencies *)
  checked : int list;
      (** BCV: branch iids that can receive an expected direction, sorted *)
  edge_actions : (edge * (int * Action.t) list) list;
      (** BAT: per committed edge, targets and actions (NC omitted) *)
  entry_actions : (int * Action.t) list;
      (** actions applied when an activation of the function starts *)
}

val analyze : Context.program_wide -> Ipds_mir.Func.t -> result
(** [analyze_func] with default options (historical entry point). *)

type precision =
  | Off  (** single pass on the unpruned CFG: the historical behaviour *)
  | Refine of { cap : int }
      (** iterate analysis and feasibility pruning to a fixpoint,
          re-running at most [cap] times per function (see {!Refine}) *)

type options = {
  store_load : bool;  (** store–load correlations (§4 scenario 1/3) *)
  load_load : bool;  (** load–load correlations (§4 scenario 2) *)
  affine_tracing : bool;
      (** trace through add/sub chains (Figure 3.c); off = direct loads only *)
  summary_mode : Ipds_alias.Summary.mode;
  precision : precision;
}

val default_options : options
(** Precision defaults to [Off]. *)

val default_refine_cap : int

val precision_on : precision
(** [Refine] with the default per-function iteration cap. *)

val options_fingerprint : options -> string
(** Canonical rendering for cache keys and content digests.  With
    precision [Off] this is byte-identical to the pre-precision
    rendering, so [--precision off] artifacts and cache keys are
    unchanged; [Refine] appends a component and misses cleanly. *)

val analyze_func :
  ?options:options ->
  ?feas:Ipds_cfg.Feasibility.t ->
  Context.program_wide ->
  Ipds_mir.Func.t ->
  result
(** The pure per-function stage: everything program-wide it consumes
    comes through the prepared {!Context.program_wide}, so distinct
    functions can be analyzed concurrently from separate domains.
    [feas] restricts every path-sensitivity query to the pruned view —
    the incremental re-run entry point the refinement loop drives. *)

val analyze_ctx : ?options:options -> Context.t -> result
(** [analyze_func] on an already-built context (avoids rebuilding the
    point graph and reaching definitions when the caller has them). *)

val static_infeasible : ?options:options -> Context.t -> (int * bool) list
(** Branch directions [(branch_iid, taken)] that no execution — benign
    or tampered — can commit: the direction's inverse image through the
    affine trace is empty, or both operands trace to constants and the
    comparison is decided.  Sorted; safe for
    {!Ipds_cfg.Feasibility.prune}. *)

val analyze_program :
  ?options:options -> Ipds_mir.Program.t -> (string * result) list
(** Analyze every defined function. *)

val actions_for : result -> edge -> (int * Action.t) list
val pp_result : Format.formatter -> result -> unit
