(** Feasible-path refinement: iterate correlation analysis and
    feasibility pruning to a fixpoint (the precision flywheel).

    Each round prunes branch directions no benign execution can commit —
    unanimous entry pins the tables already enforce, statically refuted
    directions, and range-flow forced branches — then re-analyzes on the
    pruned view, whose tighter point graph and reaching definitions can
    expose correlations the spurious paths hid.  Stops when a round
    prunes nothing new, or at the per-function iteration cap. *)

type stats = {
  iterations : int;  (** analysis runs, [>= 1] *)
  edges_pruned : int;  (** directions pruned by the final round *)
  total_directions : int;  (** [2 *] conditional branches *)
  correlations_before : int;  (** directed actions on the unpruned run *)
  correlations_after : int;  (** directed actions on the final run *)
  pruned : (int * bool) list;  (** the pruned directions, sorted *)
}

val correlations_gained : stats -> int

val analyze :
  ?options:Analysis.options ->
  Context.program_wide ->
  Ipds_mir.Func.t ->
  Analysis.result * stats
(** With precision [Off] in [options] this runs exactly one round and
    returns the same result as {!Analysis.analyze_func}.  Obs counters
    [refine.iterations], [refine.edges_pruned] and
    [refine.correlations_gained] accumulate across calls (stable:
    per-function totals are independent of scheduling). *)
