type t =
  | Set_taken
  | Set_not_taken
  | Set_unknown

let of_direction taken = if taken then Set_taken else Set_not_taken

let equal a b =
  match a, b with
  | Set_taken, Set_taken | Set_not_taken, Set_not_taken | Set_unknown, Set_unknown ->
      true
  | (Set_taken | Set_not_taken | Set_unknown), _ -> false

let pp ppf = function
  | Set_taken -> Format.pp_print_string ppf "SET_T"
  | Set_not_taken -> Format.pp_print_string ppf "SET_NT"
  | Set_unknown -> Format.pp_print_string ppf "SET_UN"
