type pointer = {
  frame : int;
  var : Ipds_mir.Var.t;
  index : int;
}

type t =
  | Int of int
  | Ptr of pointer

let zero = Int 0

let truthy = function
  | Int 0 -> false
  | Int _ | Ptr _ -> true

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Ptr p ->
      Format.fprintf ppf "&%s[%d]@f%d" p.var.Ipds_mir.Var.name p.index p.frame
