type kind =
  | Alu
  | Load of { addr : int }
  | Store of { addr : int }
  | Branch of {
      taken : bool;
      target_pc : int;
    }
  | Jump of { target_pc : int }
  | Call of { callee : string }
  | Ret
  | Input_read
  | Output_write of int
  | Fault_inject of { skipped : bool }

type t = {
  fname : string;
  iid : int;
  pc : int;
  kind : kind;
}

let pp ppf t =
  let k =
    match t.kind with
    | Alu -> "alu"
    | Load { addr } -> Printf.sprintf "load @0x%x" addr
    | Store { addr } -> Printf.sprintf "store @0x%x" addr
    | Branch { taken; target_pc } ->
        Printf.sprintf "branch %s -> 0x%x" (if taken then "T" else "N") target_pc
    | Jump { target_pc } -> Printf.sprintf "jump -> 0x%x" target_pc
    | Call { callee } -> Printf.sprintf "call %s" callee
    | Ret -> "ret"
    | Input_read -> "input"
    | Output_write v -> Printf.sprintf "output %d" v
    | Fault_inject { skipped } ->
        Printf.sprintf "fault-inject %s" (if skipped then "insn-skip" else "cond-flip")
  in
  Format.fprintf ppf "%s+%d@0x%x: %s" t.fname t.iid t.pc k
