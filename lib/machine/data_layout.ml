module Mir = Ipds_mir

(* One address unit per cell: pointer arithmetic in the value model then
   agrees with numeric addresses (Ptr + k is numeric + k), which keeps the
   compile-time affine tracing exact even for pointer-valued data. *)
let cell_bytes = 1
let globals_base = 0x100000
let stack_top = 0x7ff00000

let global_address (p : Mir.Program.t) var index =
  let rec offset acc = function
    | [] -> invalid_arg "Data_layout.global_address: not a global"
    | v :: rest ->
        if Mir.Var.equal v var then acc
        else offset (acc + (v.Mir.Var.size * cell_bytes)) rest
  in
  globals_base + offset 0 p.globals + (index * cell_bytes)

let frame_size (f : Mir.Func.t) =
  let cells = List.fold_left (fun acc v -> acc + v.Mir.Var.size) 0 f.locals in
  (* locals + a fixed bookkeeping slop (saved registers, return address) *)
  (cells * cell_bytes) + 32

let local_offset (f : Mir.Func.t) var index =
  let rec offset acc = function
    | [] -> invalid_arg "Data_layout.local_offset: not a local of this function"
    | v :: rest ->
        if Mir.Var.equal v var then acc
        else offset (acc + (v.Mir.Var.size * cell_bytes)) rest
  in
  offset 0 f.locals + (index * cell_bytes)
