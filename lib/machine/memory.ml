module Mir = Ipds_mir

type frame = {
  id : int;
  func : Mir.Func.t;
  base : int;
  slots : (int, Value.t array) Hashtbl.t;  (* var id -> cells *)
}

type t = {
  program : Mir.Program.t;
  globals : (int, Value.t array) Hashtbl.t;
  global_vars : (int, Mir.Var.t) Hashtbl.t;
  mutable stack : frame list;
  mutable next_id : int;
  mutable sp : int;
  live : (int, frame) Hashtbl.t;
}

let create (p : Mir.Program.t) =
  let globals = Hashtbl.create 16 in
  let global_vars = Hashtbl.create 16 in
  List.iter
    (fun (v : Mir.Var.t) ->
      Hashtbl.replace globals v.id (Array.make v.size Value.zero);
      Hashtbl.replace global_vars v.id v)
    p.globals;
  {
    program = p;
    globals;
    global_vars;
    stack = [];
    next_id = 1;
    sp = Data_layout.stack_top;
    live = Hashtbl.create 16;
  }

let push_frame t (f : Mir.Func.t) =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.sp <- t.sp - Data_layout.frame_size f;
  let slots = Hashtbl.create 8 in
  List.iter
    (fun (v : Mir.Var.t) -> Hashtbl.replace slots v.id (Array.make v.size Value.zero))
    f.locals;
  let frame = { id; func = f; base = t.sp; slots } in
  t.stack <- frame :: t.stack;
  Hashtbl.replace t.live id frame;
  id

let pop_frame t =
  match t.stack with
  | [] -> invalid_arg "Memory.pop_frame: empty stack"
  | frame :: rest ->
      t.stack <- rest;
      t.sp <- frame.base + Data_layout.frame_size frame.func;
      Hashtbl.remove t.live frame.id

let depth t = List.length t.stack
let frame_alive t id = id = 0 || Hashtbl.mem t.live id

let func_of_frame t id =
  match Hashtbl.find_opt t.live id with
  | Some f -> f.func
  | None -> invalid_arg "Memory.func_of_frame: dead frame"

let active_frame t =
  match t.stack with
  | [] -> invalid_arg "Memory.active_frame: empty stack"
  | frame :: _ -> frame.id

let cells t ~frame (v : Mir.Var.t) =
  if frame = 0 then Hashtbl.find_opt t.globals v.id
  else
    match Hashtbl.find_opt t.live frame with
    | None -> None
    | Some fr -> Hashtbl.find_opt fr.slots v.id

let load t ~frame v index =
  match cells t ~frame v with
  | None -> None
  | Some arr -> Some arr.(Ipds_alias.Access.wrap_index v index)

let store t ~frame v index value =
  match cells t ~frame v with
  | None -> false
  | Some arr ->
      arr.(Ipds_alias.Access.wrap_index v index) <- value;
      true

let address t ~frame v index =
  let index = Ipds_alias.Access.wrap_index v index in
  if frame = 0 then Data_layout.global_address t.program v index
  else
    match Hashtbl.find_opt t.live frame with
    | Some fr -> fr.base + Data_layout.local_offset fr.func v index
    | None -> 0xdead0000 + (index * Data_layout.cell_bytes)

let live_cells t ~scope =
  let frame_cells (fr : frame) =
    List.concat_map
      (fun (v : Mir.Var.t) -> List.init v.size (fun i -> (fr.id, v, i)))
      fr.func.locals
  in
  match scope, t.stack with
  | `Active_locals, fr :: _ -> frame_cells fr
  | `Active_locals, [] -> []
  | `Anywhere, stack ->
      let globals =
        Hashtbl.fold
          (fun _id v acc -> List.init v.Mir.Var.size (fun i -> (0, v, i)) @ acc)
          t.global_vars []
      in
      globals @ List.concat_map frame_cells stack
