(** Program memory: a global segment plus a stack of frames, each holding
    its function's local variables.  Cells store {!Value.t}, so memory can
    hold pointers (and attacks can corrupt them).  Dangling-frame
    dereferences are detected and fault. *)

type t

val create : Ipds_mir.Program.t -> t

val push_frame : t -> Ipds_mir.Func.t -> int
(** Returns the new frame's id (> 0). *)

val pop_frame : t -> unit
val depth : t -> int
val frame_alive : t -> int -> bool
val func_of_frame : t -> int -> Ipds_mir.Func.t
val active_frame : t -> int
(** Id of the innermost frame; raises if none. *)

val load : t -> frame:int -> Ipds_mir.Var.t -> int -> Value.t option
(** [None] when the frame is dead or the variable absent; the index is
    wrapped into bounds. *)

val store : t -> frame:int -> Ipds_mir.Var.t -> int -> Value.t -> bool
(** [false] on a dead frame / absent variable. *)

val address : t -> frame:int -> Ipds_mir.Var.t -> int -> int
(** Numeric address of the cell (for the cache model and pointer
    degradation).  Dead frames still have a (stale) address. *)

val live_cells :
  t -> scope:[ `Active_locals | `Anywhere ] -> (int * Ipds_mir.Var.t * int) list
(** Candidate victim cells for tampering: [(frame, var, index)].
    [`Active_locals] restricts to the innermost frame's locals (the
    buffer-overflow attack model); [`Anywhere] also includes globals and
    outer frames (the format-string model). *)
