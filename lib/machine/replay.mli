(** Drive an {!Ipds_core.Checker} from a committed event stream, exactly
    as the interpreter drives it inline.  Because {!Interp} emits sink
    events in commit order, replaying a run's sink output yields the
    same verdicts, in the same order, as checking inline — the contract
    the remote verdict server is built on. *)

val feed : Ipds_core.Checker.t -> defined:(string -> bool) -> Event.t -> unit
(** Apply one event: [Call] to a defined function pushes a checker
    frame, [Ret] pops one, [Branch] is verified; everything else is
    ignored.  [defined] decides whether a callee has tables (extern
    calls appear in the stream but are not checked).  Trusts its input:
    a [Ret] with an empty checker stack raises, as {!Ipds_core.Checker}
    does — callers that cannot trust the stream must guard with
    {!Ipds_core.Checker.depth}. *)

val feed_all :
  Ipds_core.Checker.t -> defined:(string -> bool) -> Event.t list -> unit
