(** Machine values with pointer provenance.

    Integers and pointers are distinct: pointers are created only by
    [Addr_of] and survive only pointer ± integer arithmetic.  Any other
    operation degrades a pointer to its numeric address (an [Int]), which
    can no longer be dereferenced.  This provenance discipline is what
    makes the compile-time points-to analysis sound against the machine:
    integer data can never be forged into a reference. *)

type pointer = {
  frame : int;  (** 0 for globals, otherwise the owning frame's id *)
  var : Ipds_mir.Var.t;
  index : int;  (** may be out of bounds; wrapped at dereference *)
}

type t =
  | Int of int
  | Ptr of pointer

val zero : t
val truthy : t -> bool
val pp : Format.formatter -> t -> unit
