module Mir = Ipds_mir

type model =
  | Stack_overflow
  | Arbitrary_write

type plan = {
  at_step : int;
  model : model;
  seed : int;
  value : int;
}

type injection = {
  frame : int;
  var : Mir.Var.t;
  index : int;
  old_value : Value.t;
  new_value : Value.t;
}

let pp_injection ppf i =
  Format.fprintf ppf "tamper %s[%d]@f%d: %a -> %a" i.var.Mir.Var.name i.index
    i.frame Value.pp i.old_value Value.pp i.new_value

let inject plan memory =
  let scope =
    match plan.model with
    | Stack_overflow -> `Active_locals
    | Arbitrary_write -> `Anywhere
  in
  match Memory.live_cells memory ~scope with
  | [] -> None
  | candidates -> (
      let state = Random.State.make [| plan.seed |] in
      let frame, var, index =
        List.nth candidates (Random.State.int state (List.length candidates))
      in
      match Memory.load memory ~frame var index with
      | None -> None
      | Some old_value ->
          let new_value = Value.Int plan.value in
          if old_value = new_value then None
          else begin
            let stored = Memory.store memory ~frame var index new_value in
            assert stored;
            Some { frame; var; index; old_value; new_value }
          end)
