module Mir = Ipds_mir

type model =
  | Stack_overflow
  | Arbitrary_write

type site =
  | Mem_write of {
      model : model;
      value : int;
    }
  | Mem_write_at of {
      addr : int;
      value : int;
    }
  | Cond_flip
  | Insn_skip

type plan = {
  at_step : int;
  site : site;
  seed : int;
}

type injection =
  | Tampered_cell of {
      frame : int;
      var : Mir.Var.t;
      index : int;
      addr : int;
      old_value : Value.t;
      new_value : Value.t;
    }
  | Flipped_branch of {
      pc : int;
      orig_taken : bool;
    }
  | Skipped_branch of {
      pc : int;
      taken : bool;
    }

let pp_injection ppf = function
  | Tampered_cell i ->
      Format.fprintf ppf "tamper %s[%d]@f%d (0x%x): %a -> %a" i.var.Mir.Var.name
        i.index i.frame i.addr Value.pp i.old_value Value.pp i.new_value
  | Flipped_branch f ->
      Format.fprintf ppf "cond-flip @0x%x: %s -> %s" f.pc
        (if f.orig_taken then "T" else "N")
        (if f.orig_taken then "N" else "T")
  | Skipped_branch s ->
      Format.fprintf ppf "insn-skip @0x%x (was %s)" s.pc
        (if s.taken then "T" else "N")

let tamper_cell memory (frame, var, index) value =
  match Memory.load memory ~frame var index with
  | None -> None
  | Some old_value ->
      let new_value = Value.Int value in
      if old_value = new_value then None
      else begin
        let stored = Memory.store memory ~frame var index new_value in
        assert stored;
        let addr = Memory.address memory ~frame var index in
        Some (Tampered_cell { frame; var; index; addr; old_value; new_value })
      end

let inject plan memory =
  match plan.site with
  | Cond_flip | Insn_skip ->
      (* Branch faults land at the next branch commit, inside the
         interpreter — there is no memory cell to pick here. *)
      None
  | Mem_write_at { addr; value } -> (
      (* A physical attack: hit whatever cell the layout put at [addr].
         Under a decorrelated layout the same address resolves to a
         different logical cell (or to nothing at all) — exactly the
         asymmetry the DME baseline detects. *)
      let cell =
        List.find_opt
          (fun (frame, v, i) -> Memory.address memory ~frame v i = addr)
          (Memory.live_cells memory ~scope:`Anywhere)
      in
      match cell with
      | None -> None
      | Some c -> tamper_cell memory c value)
  | Mem_write { model; value } -> (
      let scope =
        match model with
        | Stack_overflow -> `Active_locals
        | Arbitrary_write -> `Anywhere
      in
      match Memory.live_cells memory ~scope with
      | [] -> None
      | candidates ->
          let state = Random.State.make [| plan.seed |] in
          let cell =
            List.nth candidates (Random.State.int state (List.length candidates))
          in
          tamper_cell memory cell value)
