(** Deterministic input providers for [Input] instructions and
    input-reading externals ([recv], [read_line]).

    A script either replays fixed per-channel sequences (padding with 0
    when exhausted) or draws from a seeded PRNG — the latter drives the
    benign workload runs of the experiments. *)

type t

val of_lists : (int * int list) list -> t
(** [(channel, values)] pairs. *)

val random : ?lo:int -> ?hi:int -> seed:int -> unit -> t
(** Uniform values in [lo, hi] (default [0, 255]) on every channel, from a
    private PRNG state. *)

val constant : int -> t
val next : t -> channel:int -> int
