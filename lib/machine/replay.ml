(* Drive an {!Ipds_core.Checker} from a committed event stream, exactly
   as the interpreter drives it inline: calls to defined functions push
   a frame, returns pop it, branches are verified/updated.  Because
   {!Interp} emits events in commit order (an aborted call never reaches
   the sink), feeding a run's sink output through [feed] yields the same
   verdicts, in the same order, as checking inline — the contract the
   remote verdict server is built on.

   [feed] trusts its input: it is meant for streams produced by
   {!Interp}.  The server wraps it with state guards and turns violations
   into typed protocol errors instead of exceptions. *)

let feed checker ~defined (e : Event.t) =
  match e.Event.kind with
  | Event.Call { callee } ->
      (* Extern calls appear in the stream but have no tables and no
         frame; the inline checker never sees them either. *)
      if defined callee then ignore (Ipds_core.Checker.on_call checker callee)
  | Event.Ret -> ignore (Ipds_core.Checker.on_return checker)
  | Event.Branch { taken; _ } ->
      ignore (Ipds_core.Checker.on_branch checker ~pc:e.Event.pc ~taken)
  | Event.Alu | Event.Load _ | Event.Store _ | Event.Jump _ | Event.Input_read
  | Event.Output_write _
  (* Fault markers are simulator metadata, not program behaviour: the
     checker must reach the same verdicts whether or not it sees them. *)
  | Event.Fault_inject _ ->
      ()

let feed_all checker ~defined events = List.iter (feed checker ~defined) events
