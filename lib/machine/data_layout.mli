(** Numeric data addresses, for pointer comparison/degradation and for the
    cache model: globals live in a flat segment, each call frame gets a
    region of a downward-growing stack. *)

val cell_bytes : int
(** 1 — one address unit per cell, so that pointer arithmetic on values
    coincides with numeric address arithmetic. *)

val globals_base : int
val stack_top : int

val global_address : Ipds_mir.Program.t -> Ipds_mir.Var.t -> int -> int
(** Address of cell [index] of a global. *)

val frame_size : Ipds_mir.Func.t -> int
(** Bytes a frame of this function occupies. *)

val local_offset : Ipds_mir.Func.t -> Ipds_mir.Var.t -> int -> int
(** Byte offset of a local cell within its frame. *)
