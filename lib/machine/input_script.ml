type t = { next : channel:int -> int }

let of_lists pairs =
  let table = Hashtbl.create 4 in
  List.iter (fun (ch, values) -> Hashtbl.replace table ch (ref values)) pairs;
  let next ~channel =
    match Hashtbl.find_opt table channel with
    | None -> 0
    | Some q -> (
        match !q with
        | [] -> 0
        | v :: rest ->
            q := rest;
            v)
  in
  { next }

let random ?(lo = 0) ?(hi = 255) ~seed () =
  let state = Random.State.make [| seed |] in
  let next ~channel:_ = lo + Random.State.int state (hi - lo + 1) in
  { next }

let constant v = { next = (fun ~channel:_ -> v) }
let next t ~channel = t.next ~channel
