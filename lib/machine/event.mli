(** Dynamic execution events, the interface between the functional
    interpreter and its observers (the IPDS checker driver, the timing
    model, trace recorders). *)

type kind =
  | Alu
  | Load of { addr : int }
  | Store of { addr : int }
  | Branch of {
      taken : bool;
      target_pc : int;
    }
  | Jump of { target_pc : int }
  | Call of { callee : string }
  | Ret
  | Input_read
  | Output_write of int

type t = {
  fname : string;
  iid : int;
  pc : int;
  kind : kind;
}

val pp : Format.formatter -> t -> unit
