(** Dynamic execution events, the interface between the functional
    interpreter and its observers (the IPDS checker driver, the timing
    model, trace recorders). *)

type kind =
  | Alu
  | Load of { addr : int }
  | Store of { addr : int }
  | Branch of {
      taken : bool;
      target_pc : int;
    }
  | Jump of { target_pc : int }
  | Call of { callee : string }
  | Ret
  | Input_read
  | Output_write of int
  | Fault_inject of { skipped : bool }
      (** simulator-side marker that a branch fault landed on this
          instruction: [skipped = false] is a condition flip (the
          {!Branch} event that follows carries the flipped direction),
          [skipped = true] an instruction skip (no branch event commits
          at all).  Checker replay ignores it — a real victim would not
          announce its own corruption. *)

type t = {
  fname : string;
  iid : int;
  pc : int;
  kind : kind;
}

val pp : Format.formatter -> t -> unit
