(** Memory-tampering attack injection (paper §6 methodology).

    An attack flips exactly one memory cell at a chosen dynamic step.  The
    two models mirror the paper's vulnerability classes:

    - [Stack_overflow] — a buffer overflow can reach only local stack data
      of the function that is executing when the tamper lands;
    - [Arbitrary_write] — a format-string bug can tamper any live memory
      location.

    Victim selection is deterministic in the plan's seed, making every
    attack experiment reproducible. *)

type model =
  | Stack_overflow
  | Arbitrary_write

type plan = {
  at_step : int;  (** inject after this many executed instructions *)
  model : model;
  seed : int;
  value : int;  (** the attacker-chosen replacement value *)
}

type injection = {
  frame : int;
  var : Ipds_mir.Var.t;
  index : int;
  old_value : Value.t;
  new_value : Value.t;
}

val pp_injection : Format.formatter -> injection -> unit

val inject : plan -> Memory.t -> injection option
(** Pick a victim cell under the plan's model and overwrite it.  [None]
    when no eligible cell exists or the chosen value equals the old one
    (the "attack" would be a no-op). *)
