(** Fault injection: the attack universes (paper §6 methodology plus the
    branch-fault models of the fault-attack literature).

    A plan says {b when} ([at_step]), {b where/what} ([site]) and, for
    randomized victim selection, a [seed].  The sites form a typed
    variant so every consumer matches exhaustively — adding a universe
    is a compile-time event, not a silently-ignored runtime case:

    - [Mem_write] — flip one memory cell, victim picked by seed.
      [Stack_overflow] reaches only local stack data of the function
      executing when the tamper lands; [Arbitrary_write] (format-string
      class) reaches any live memory.
    - [Mem_write_at] — flip the cell at a concrete {e physical} address
      (no-op if nothing lives there).  Used by the DME baseline to
      replay one physical attack against layout-decorrelated variants.
    - [Cond_flip] — at the first branch commit at/after [at_step],
      invert the evaluated condition: the branch commits in the wrong
      direction.
    - [Insn_skip] — at the first branch commit at/after [at_step], skip
      the branch instruction entirely: no branch event commits and
      control falls through to the not-taken successor.

    Victim selection is deterministic in the plan's seed, making every
    attack experiment reproducible. *)

type model =
  | Stack_overflow
  | Arbitrary_write

type site =
  | Mem_write of {
      model : model;
      value : int;  (** the attacker-chosen replacement value *)
    }
  | Mem_write_at of {
      addr : int;
      value : int;
    }
  | Cond_flip
  | Insn_skip

type plan = {
  at_step : int;  (** fire after this many executed instructions *)
  site : site;
  seed : int;
}

type injection =
  | Tampered_cell of {
      frame : int;
      var : Ipds_mir.Var.t;
      index : int;
      addr : int;  (** physical address of the cell, at injection time *)
      old_value : Value.t;
      new_value : Value.t;
    }
  | Flipped_branch of {
      pc : int;
      orig_taken : bool;  (** the direction the branch should have gone *)
    }
  | Skipped_branch of {
      pc : int;
      taken : bool;  (** the direction the skipped branch would have gone *)
    }

val pp_injection : Format.formatter -> injection -> unit

val inject : plan -> Memory.t -> injection option
(** Perform a {e memory} fault now.  [None] when no eligible cell
    exists, the chosen value equals the old one (the "attack" would be
    a no-op), or the site is a branch fault — those land inside the
    interpreter at branch commit, never here. *)
