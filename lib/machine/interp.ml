module Mir = Ipds_mir

type stop_reason =
  | Exited of Value.t
  | Halted
  | Fault of string
  | Out_of_steps
  | Trapped of Ipds_core.Checker.alarm

type outcome = {
  reason : stop_reason;
  steps : int;
  branches : int;
  outputs : int list;
  branch_trace : (int * bool) list;
  trace_digest : int;
  alarms : Ipds_core.Checker.alarm list;
  injection : Tamper.injection option;
}

type config = {
  max_steps : int;
  inputs : Input_script.t;
  checker : Ipds_core.Checker.t option;
  trap_on_alarm : bool;
  observer : (Event.t -> unit) option;
  sink : (Event.t -> unit) option;
      (* Second event tap, independent of [observer], so a run can feed a
         timing model and stream its events to a remote checker at the
         same time.  Events arrive strictly in commit order: an event is
         emitted only after its instruction's effects (including the
         callee frame push for calls) have been applied, so replaying
         the stream through {!Ipds_core.Checker} is equivalent to inline
         checking even when the run faults or traps mid-block. *)
  record_trace : bool;
  tamper : Tamper.plan option;
}

let default_config =
  {
    max_steps = 500_000;
    inputs = Input_script.constant 0;
    checker = None;
    trap_on_alarm = false;
    observer = None;
    sink = None;
    record_trace = true;
    tamper = None;
  }

exception Machine_fault of string

(* Totals are accumulated in the interpreter's own mutable state and
   flushed once per run; the hot loop never touches an atomic. *)
let m_runs = Ipds_obs.Registry.counter "interp.runs"
let m_steps = Ipds_obs.Registry.counter "interp.steps"
let m_branches = Ipds_obs.Registry.counter "interp.branches"
let m_faults = Ipds_obs.Registry.counter "interp.faults"
let m_traps = Ipds_obs.Registry.counter "interp.traps"
let m_injections = Ipds_obs.Registry.counter "interp.injections"
let m_max_run_steps = Ipds_obs.Registry.gauge "interp.max_run_steps"

let m_run_steps =
  Ipds_obs.Registry.histogram "interp.run_steps"
    ~bounds:[| 10; 100; 1_000; 10_000; 100_000; 1_000_000 |]

type act = {
  frame_id : int;
  func : Mir.Func.t;
  regs : Value.t array;
  mutable blk : int;
  mutable pos : int;
  ret_dst : Mir.Reg.t option;
}

type state = {
  program : Mir.Program.t;
  layout : Mir.Layout.t;
  memory : Memory.t;
  config : config;
  mutable stack : act list;
  mutable steps : int;
  mutable branches : int;
  mutable outputs_rev : int list;
  mutable trace_rev : (int * bool) list;
  mutable trace_digest : int;
  mutable injection : Tamper.injection option;
  mutable stop : stop_reason option;
}

(* A multiplicative rolling hash over the (pc, taken) sequence.  Kept
   unconditionally — one multiply and xor per committed branch — so
   control-flow comparisons do not need [record_trace] and campaigns can
   skip materializing O(steps) trace lists. *)
let digest_branch digest ~pc ~taken =
  (digest * 1_000_003) lxor ((pc lsl 1) lor Bool.to_int taken)

let max_call_depth = 4096

let to_num st = function
  | Value.Int n -> n
  | Value.Ptr p -> Memory.address st.memory ~frame:p.Value.frame p.Value.var p.Value.index

let operand (a : act) (o : Mir.Operand.t) =
  match o with
  | Mir.Operand.Imm n -> Value.Int n
  | Mir.Operand.Reg r -> a.regs.(Mir.Reg.index r)

let eval_binop st op va vb =
  match op, va, vb with
  | Mir.Binop.Add, Value.Ptr p, Value.Int n | Mir.Binop.Add, Value.Int n, Value.Ptr p
    ->
      Value.Ptr { p with Value.index = p.Value.index + n }
  | Mir.Binop.Sub, Value.Ptr p, Value.Int n ->
      Value.Ptr { p with Value.index = p.Value.index - n }
  | Mir.Binop.Sub, Value.Ptr p, Value.Ptr q
    when p.Value.frame = q.Value.frame && Mir.Var.equal p.Value.var q.Value.var ->
      Value.Int (p.Value.index - q.Value.index)
  | ( ( Mir.Binop.Add | Mir.Binop.Sub | Mir.Binop.Mul | Mir.Binop.Div
      | Mir.Binop.Rem | Mir.Binop.And | Mir.Binop.Or | Mir.Binop.Xor
      | Mir.Binop.Shl | Mir.Binop.Shr ),
      _,
      _ ) ->
      Value.Int (Mir.Binop.eval op (to_num st va) (to_num st vb))

(* Resolve an addressing mode to a concrete (frame, var, index) triple. *)
let resolve st (a : act) = function
  | Mir.Addr.Direct v ->
      let frame = if v.Mir.Var.storage = Mir.Var.Global then 0 else a.frame_id in
      (frame, v, 0)
  | Mir.Addr.Index (v, o) -> (
      let frame = if v.Mir.Var.storage = Mir.Var.Global then 0 else a.frame_id in
      match operand a o with
      | Value.Int i -> (frame, v, i)
      | Value.Ptr _ as p -> (frame, v, to_num st p))
  | Mir.Addr.Indirect r -> (
      match a.regs.(Mir.Reg.index r) with
      | Value.Ptr p ->
          if Memory.frame_alive st.memory p.Value.frame then
            (p.Value.frame, p.Value.var, p.Value.index)
          else raise (Machine_fault "dangling pointer dereference")
      | Value.Int _ -> raise (Machine_fault "dereference of non-pointer"))

let mem_load st triple =
  let frame, v, i = triple in
  match Memory.load st.memory ~frame v i with
  | Some value -> value
  | None -> raise (Machine_fault "load from dead memory")

let mem_store st triple value =
  let frame, v, i = triple in
  if not (Memory.store st.memory ~frame v i value) then
    raise (Machine_fault "store to dead memory")

let output st v =
  st.outputs_rev <- to_num st v :: st.outputs_rev

(* ---------- external functions ---------- *)

let as_ptr = function
  | Value.Ptr p ->
      if p.Value.index < 0 || p.Value.index >= p.Value.var.Mir.Var.size then
        raise (Machine_fault "extern: pointer out of bounds")
      else p
  | Value.Int _ -> raise (Machine_fault "extern: expected pointer argument")

let ptr_cells (p : Value.pointer) n =
  (* indices [p.index, p.index + n) clamped to the variable *)
  let lo = max 0 p.Value.index in
  let hi = min p.Value.var.Mir.Var.size (p.Value.index + max 0 n) in
  List.init (max 0 (hi - lo)) (fun k ->
      (p.Value.frame, p.Value.var, lo + k))

let exec_extern st name (args : Value.t list) =
  let num = to_num st in
  match name, args with
  | "memset", [ p; v; n ] ->
      let p = as_ptr p in
      List.iter (fun c -> mem_store st c (Value.Int (num v))) (ptr_cells p (num n));
      Value.Int 0
  | "memcpy", [ dst; src; n ] ->
      let dst = as_ptr dst and src = as_ptr src in
      let n = num n in
      let values = List.map (mem_load st) (ptr_cells src n) in
      let cells = ptr_cells dst n in
      List.iteri
        (fun i c -> match List.nth_opt values i with
          | Some v -> mem_store st c v
          | None -> ())
        cells;
      Value.Int 0
  | "strcmp", [ a; b ] ->
      let a = as_ptr a and b = as_ptr b in
      let cell (p : Value.pointer) i =
        if p.Value.index + i < p.Value.var.Mir.Var.size then
          num (mem_load st (p.Value.frame, p.Value.var, p.Value.index + i))
        else 0
      in
      let rec cmp i =
        let x = cell a i and y = cell b i in
        if x <> y then if x < y then -1 else 1
        else if x = 0 then 0
        else if a.Value.index + i >= a.Value.var.Mir.Var.size
                && b.Value.index + i >= b.Value.var.Mir.Var.size then 0
        else cmp (i + 1)
      in
      Value.Int (cmp 0)
  | "strlen", [ p ] ->
      let p = as_ptr p in
      let rec len i =
        if p.Value.index + i >= p.Value.var.Mir.Var.size then i
        else if num (mem_load st (p.Value.frame, p.Value.var, p.Value.index + i)) = 0
        then i
        else len (i + 1)
      in
      Value.Int (len 0)
  | "checksum", [ p; n ] ->
      let p = as_ptr p in
      let sum =
        List.fold_left (fun acc c -> acc + num (mem_load st c)) 0 (ptr_cells p (num n))
      in
      Value.Int sum
  | "hash_pw", [ p; n ] ->
      let p = as_ptr p in
      let h =
        List.fold_left
          (fun acc c -> (acc * 31) + num (mem_load st c))
          17 (ptr_cells p (num n))
      in
      Value.Int (h land 0xffffff)
  | "log_msg", [ _; _ ] -> Value.Int 0
  | "send", [ _; n ] -> Value.Int (num n)
  | ("recv" | "read_line"), [ p; n ] ->
      let p = as_ptr p in
      let channel = if String.equal name "recv" then 1 else 0 in
      let cells = ptr_cells p (num n) in
      List.iter
        (fun c ->
          mem_store st c (Value.Int (Input_script.next st.config.inputs ~channel)))
        cells;
      Value.Int (List.length cells)
  | "syscall", _ -> Value.Int 0
  | _, _ ->
      raise (Machine_fault (Printf.sprintf "extern %s: bad arity or unknown" name))

(* ---------- the main loop ---------- *)

let dispatch st (e : Event.t) =
  (match st.config.observer with Some f -> f e | None -> ());
  match st.config.sink with Some f -> f e | None -> ()

let emit st (a : act) iid kind =
  match st.config.observer, st.config.sink with
  | None, None -> ()
  | _ ->
      dispatch st
        {
          Event.fname = a.func.Mir.Func.name;
          iid;
          pc = Mir.Layout.pc st.layout ~fname:a.func.Mir.Func.name ~iid;
          kind;
        }

let push_function st callee (args : Value.t list) ret_dst =
  let f = Mir.Program.find_func_exn st.program callee in
  if List.length st.stack >= max_call_depth then
    raise (Machine_fault "call stack overflow");
  let frame_id = Memory.push_frame st.memory f in
  let regs = Array.make (max 1 f.Mir.Func.reg_count) Value.zero in
  List.iteri (fun i v -> if i < f.Mir.Func.reg_count then regs.(i) <- v) args;
  let a = { frame_id; func = f; regs; blk = 0; pos = 0; ret_dst } in
  st.stack <- a :: st.stack;
  (match st.config.checker with
  | Some c -> ignore (Ipds_core.Checker.on_call c callee)
  | None -> ())

let pop_function st (ret : Value.t) =
  match st.stack with
  | [] -> invalid_arg "Interp: pop on empty stack"
  | a :: rest ->
      Memory.pop_frame st.memory;
      (match st.config.checker with
      | Some c ->
          if not (Ipds_core.Checker.on_return c) then
            raise (Machine_fault "checker protocol violation: return with no frame")
      | None -> ());
      st.stack <- rest;
      (match rest with
      | [] -> st.stop <- Some (Exited ret)
      | caller :: _ -> (
          match a.ret_dst with
          | Some r -> caller.regs.(Mir.Reg.index r) <- ret
          | None -> ()))

let first_iid (f : Mir.Func.t) blk_idx =
  let blk = f.blocks.(blk_idx) in
  if Array.length blk.Mir.Block.body > 0 then blk.Mir.Block.body.(0).Mir.Instr.iid
  else blk.Mir.Block.term_iid

let step st =
  match st.stack with
  | [] -> ()
  | a :: _ -> (
      let blk = a.func.Mir.Func.blocks.(a.blk) in
      let body = blk.Mir.Block.body in
      if a.pos < Array.length body then begin
        let instr = body.(a.pos) in
        a.pos <- a.pos + 1;
        let iid = instr.Mir.Instr.iid in
        match instr.Mir.Instr.op with
        | Mir.Op.Const (r, n) ->
            a.regs.(Mir.Reg.index r) <- Value.Int n;
            emit st a iid Event.Alu
        | Mir.Op.Move (r, o) ->
            a.regs.(Mir.Reg.index r) <- operand a o;
            emit st a iid Event.Alu
        | Mir.Op.Binop (r, op, x, y) ->
            a.regs.(Mir.Reg.index r) <-
              eval_binop st op (operand a x) (operand a y);
            emit st a iid Event.Alu
        | Mir.Op.Load (r, addr) ->
            let triple = resolve st a addr in
            a.regs.(Mir.Reg.index r) <- mem_load st triple;
            let frame, v, i = triple in
            emit st a iid (Event.Load { addr = Memory.address st.memory ~frame v i })
        | Mir.Op.Store (addr, o) ->
            let triple = resolve st a addr in
            mem_store st triple (operand a o);
            let frame, v, i = triple in
            emit st a iid (Event.Store { addr = Memory.address st.memory ~frame v i })
        | Mir.Op.Addr_of (r, v, o) ->
            let index =
              match operand a o with
              | Value.Int n -> n
              | Value.Ptr _ as p -> to_num st p
            in
            let frame = if v.Mir.Var.storage = Mir.Var.Global then 0 else a.frame_id in
            a.regs.(Mir.Reg.index r) <- Value.Ptr { Value.frame; var = v; index };
            emit st a iid Event.Alu
        | Mir.Op.Input (r, channel) ->
            a.regs.(Mir.Reg.index r) <-
              Value.Int (Input_script.next st.config.inputs ~channel);
            emit st a iid Event.Input_read
        | Mir.Op.Output o ->
            let v = operand a o in
            output st v;
            emit st a iid (Event.Output_write (to_num st v))
        | Mir.Op.Nop -> emit st a iid Event.Alu
        | Mir.Op.Call { dst; callee; args } ->
            (* The event is emitted only once the call has committed
               (frame pushed, or the extern executed): a stack-overflow
               or extern fault aborts the instruction, and a sink that
               replays calls into a checker must not see a frame the
               inline checker never pushed. *)
            let argv = List.map (operand a) args in
            if Mir.Program.is_defined st.program callee then begin
              push_function st callee argv dst;
              emit st a iid (Event.Call { callee })
            end
            else begin
              let result = exec_extern st callee argv in
              emit st a iid (Event.Call { callee });
              match dst with
              | Some r -> a.regs.(Mir.Reg.index r) <- result
              | None -> ()
            end
      end
      else begin
        (* terminator *)
        let iid = blk.Mir.Block.term_iid in
        match blk.Mir.Block.term with
        | Mir.Terminator.Jump target ->
            emit st a iid
              (Event.Jump
                 {
                   target_pc =
                     Mir.Layout.pc st.layout ~fname:a.func.Mir.Func.name
                       ~iid:(first_iid a.func target);
                 });
            a.blk <- target;
            a.pos <- 0
        | Mir.Terminator.Branch { cmp; lhs; rhs; if_true; if_false } -> (
            let x = to_num st a.regs.(Mir.Reg.index lhs) in
            let y = to_num st (operand a rhs) in
            let orig_taken = Mir.Cmp.eval cmp x y in
            let pc = Mir.Layout.pc st.layout ~fname:a.func.Mir.Func.name ~iid in
            (* An armed branch fault lands on the first branch commit
               at/after its step; memory faults never reach this point
               (they fire in the run loop).  Exactly one fault per run. *)
            let fault =
              match st.config.tamper with
              | Some { Tamper.site = (Tamper.Cond_flip | Tamper.Insn_skip) as s;
                       at_step; _ }
                when st.injection = None && st.steps >= at_step ->
                  Some s
              | Some _ | None -> None
            in
            match fault with
            | Some Tamper.Insn_skip ->
                (* The branch instruction never executes: no event, no
                   digest update, no checker verdict — control falls
                   through to the not-taken successor.  The committed
                   trace is simply missing one entry, which is what
                   makes this universe hard for trace-shape detectors. *)
                st.injection <- Some (Tamper.Skipped_branch { pc; taken = orig_taken });
                emit st a iid (Event.Fault_inject { skipped = true });
                a.blk <- if_false;
                a.pos <- 0
            | (Some Tamper.Cond_flip | None
              | Some (Tamper.Mem_write _ | Tamper.Mem_write_at _)) as fault ->
            let taken =
              match fault with
              | Some Tamper.Cond_flip ->
                  st.injection <- Some (Tamper.Flipped_branch { pc; orig_taken });
                  emit st a iid (Event.Fault_inject { skipped = false });
                  not orig_taken
              | _ -> orig_taken
            in
            let target = if taken then if_true else if_false in
            st.branches <- st.branches + 1;
            st.trace_digest <- digest_branch st.trace_digest ~pc ~taken;
            if st.config.record_trace then
              st.trace_rev <- (pc, taken) :: st.trace_rev;
            emit st a iid
              (Event.Branch
                 {
                   taken;
                   target_pc =
                     Mir.Layout.pc st.layout ~fname:a.func.Mir.Func.name
                       ~iid:(first_iid a.func target);
                 });
            (match st.config.checker with
            | Some c ->
                let v = Ipds_core.Checker.on_branch c ~pc ~taken in
                if not (Ipds_core.Checker.verdict_ok v) then
                  if Ipds_core.Checker.verdict_violation v then
                    raise
                      (Machine_fault "checker protocol violation: branch with no frame")
                  else if st.config.trap_on_alarm then (
                    match Ipds_core.Checker.last_alarm c with
                    | Some a -> st.stop <- Some (Trapped a)
                    | None -> ())
            | None -> ());
            a.blk <- target;
            a.pos <- 0)
        | Mir.Terminator.Return o ->
            let v =
              match o with
              | Some o -> operand a o
              | None -> Value.zero
            in
            emit st a iid Event.Ret;
            pop_function st v
        | Mir.Terminator.Halt ->
            emit st a iid Event.Alu;
            st.stop <- Some Halted
      end)

let run program config =
  let st =
    {
      program;
      layout = Mir.Layout.make program;
      memory = Memory.create program;
      config;
      stack = [];
      steps = 0;
      branches = 0;
      outputs_rev = [];
      trace_rev = [];
      trace_digest = 0;
      injection = None;
      stop = None;
    }
  in
  let result reason =
    let reason_tag =
      match reason with
      | Exited _ -> "exit"
      | Halted -> "halt"
      | Fault _ -> "fault"
      | Out_of_steps -> "steps"
      | Trapped _ -> "trap"
    in
    let alarms =
      match config.checker with
      | Some c ->
          (* a run that stops mid-stack (halt/fault/out-of-steps/trap)
             still owes its pending counter deltas to the registry *)
          Ipds_core.Checker.flush c;
          Ipds_core.Checker.alarms c
      | None -> []
    in
    Ipds_obs.Registry.incr m_runs;
    Ipds_obs.Registry.add m_steps st.steps;
    Ipds_obs.Registry.add m_branches st.branches;
    Ipds_obs.Registry.gauge_max m_max_run_steps st.steps;
    Ipds_obs.Registry.observe m_run_steps st.steps;
    (match reason with
    | Fault _ -> Ipds_obs.Registry.incr m_faults
    | Trapped _ -> Ipds_obs.Registry.incr m_traps
    | Exited _ | Halted | Out_of_steps -> ());
    (match st.injection with
    | Some _ -> Ipds_obs.Registry.incr m_injections
    | None -> ());
    if Ipds_obs.Events.enabled () then
      Ipds_obs.Events.emit ~kind:"interp.run"
        [
          ("main", Ipds_obs.Json.String program.Mir.Program.main);
          ("reason", Ipds_obs.Json.String reason_tag);
          ("steps", Ipds_obs.Json.Int st.steps);
          ("branches", Ipds_obs.Json.Int st.branches);
          ("alarms", Ipds_obs.Json.Int (List.length alarms));
          ("tampered", Ipds_obs.Json.Bool (st.injection <> None));
        ];
    {
      reason;
      steps = st.steps;
      branches = st.branches;
      outputs = List.rev st.outputs_rev;
      branch_trace = List.rev st.trace_rev;
      trace_digest = st.trace_digest;
      alarms;
      injection = st.injection;
    }
  in
  try
    (* Observers and sinks see the initial activation as a call event,
       so external models (the IPDS checker in the timing model, the
       remote verdict server) can push main's tables.  Emitted after the
       frame commits, like every other call event. *)
    push_function st program.Mir.Program.main [] None;
    (match config.observer, config.sink with
    | None, None -> ()
    | _ ->
        dispatch st
          {
            Event.fname = program.Mir.Program.main;
            iid = 0;
            pc = Mir.Layout.func_base st.layout program.Mir.Program.main;
            kind = Event.Call { callee = program.Mir.Program.main };
          });
    let continue = ref true in
    while !continue do
      (match st.stop with
      | Some _ -> continue := false
      | None ->
          if st.steps >= config.max_steps then begin
            st.stop <- Some Out_of_steps;
            continue := false
          end
          else begin
            step st;
            st.steps <- st.steps + 1;
            match config.tamper with
            | Some plan when plan.Tamper.at_step = st.steps -> (
                match plan.Tamper.site with
                | Tamper.Mem_write _ | Tamper.Mem_write_at _ ->
                    st.injection <- Tamper.inject plan st.memory;
                    if Ipds_obs.Events.enabled () then
                      Ipds_obs.Events.emit ~kind:"interp.tamper"
                        [
                          ("main", Ipds_obs.Json.String program.Mir.Program.main);
                          ("at_step", Ipds_obs.Json.Int plan.Tamper.at_step);
                          ("hit", Ipds_obs.Json.Bool (st.injection <> None));
                        ]
                | Tamper.Cond_flip | Tamper.Insn_skip ->
                    (* Branch faults arm here and land at the next branch
                       commit, inside [step]'s terminator case. *)
                    ())
            | Some _ | None -> ()
          end)
    done;
    (match st.stop with
    | Some reason -> result reason
    | None -> result Out_of_steps)
  with Machine_fault msg -> result (Fault msg)

let control_flow_changed (a : outcome) (b : outcome) =
  let reason_tag = function
    | Exited v -> Printf.sprintf "exit:%d" (match v with Value.Int n -> n | Value.Ptr _ -> -1)
    | Halted -> "halt"
    | Fault m -> "fault:" ^ m
    | Out_of_steps -> "steps"
    | Trapped _ -> "trap"
  in
  a.trace_digest <> b.trace_digest
  || a.branches <> b.branches
  || not (String.equal (reason_tag a.reason) (reason_tag b.reason))
