(** The MIR interpreter — the role Bochs plays in the paper: run the
    program, optionally under IPDS checking, optionally under attack.

    The interpreter is deterministic given the input script and tamper
    plan, which is what makes "same run, with and without tampering"
    comparisons (Figure 7) and timing replays (Figure 9) possible. *)

type stop_reason =
  | Exited of Value.t
  | Halted
  | Fault of string
  | Out_of_steps
  | Trapped of Ipds_core.Checker.alarm
      (** stopped by the IPDS hardware trap (with [trap_on_alarm]) *)

type outcome = {
  reason : stop_reason;
  steps : int;
  branches : int;  (** committed conditional branches *)
  outputs : int list;  (** in emission order *)
  branch_trace : (int * bool) list;
      (** (pc, taken) per committed branch, if recording was on *)
  trace_digest : int;
      (** rolling hash of the full (pc, taken) sequence, always
          computed — lets {!control_flow_changed} work without
          [record_trace] *)
  alarms : Ipds_core.Checker.alarm list;
  injection : Tamper.injection option;
}

type config = {
  max_steps : int;
  inputs : Input_script.t;
  checker : Ipds_core.Checker.t option;
  trap_on_alarm : bool;
      (** abort execution at the first alarm, like the hardware (default
          false: record alarms and keep running, convenient for
          experiments) *)
  observer : (Event.t -> unit) option;
  sink : (Event.t -> unit) option;
      (** like [observer], but with a commit-order guarantee: events are
          emitted only after the action they describe has taken effect
          (a call that faults pushing its frame is never emitted), so a
          checker replaying the sink stream — locally via
          {!Replay.feed} or remotely over the verdict server — reaches
          exactly the same verdicts as an inline [checker]. *)
  record_trace : bool;
  tamper : Tamper.plan option;
}

val default_config : config
(** 500k steps, constant-0 inputs, no checker/observer/tamper, trace
    recording on. *)

val run : Ipds_mir.Program.t -> config -> outcome

val control_flow_changed : outcome -> outcome -> bool
(** Do two runs differ in their committed-branch traces (or stop
    reasons)?  Compared via [trace_digest], so it works whether or not
    the traces were recorded. *)
