(** Timing model of the IPDS hardware engine.

    Committed branches enqueue verify+update requests into a bounded
    request queue serviced in order (paper §5.4: "all requests are put in
    a request queue according to the order in which they are issued").
    The engine also owns the on-chip BSV/BCV/BAT stack buffers; when the
    active call chain's tables exceed the buffers, lower stack layers
    spill to protected memory, occupying the engine like any other
    request.  The CPU only stalls when the queue is full. *)

type t

val create : Config.t -> t

val on_branch : t -> cycle:float -> verify:bool -> bat_nodes:int -> float
(** Enqueue the requests for one committed branch at CPU time [cycle];
    returns the stall (in cycles) the CPU incurs, 0. when the queue has
    room. *)

val on_call : t -> cycle:float -> sizes:Ipds_core.Tables.sizes -> unit
(** Push a function's tables onto the stacks, spilling as needed. *)

val on_return : t -> cycle:float -> unit

val on_context_switch : t -> cycle:float -> float
(** Switch the protected process out and back in: the top-of-stack swap
    (two transfers of [ctx_swap_bits]) is synchronous — the returned
    stall — while the remaining resident table bits stream through the
    engine in the background (paper §5.4: "lower layers of stacks are
    context switched in parallel with the execution of the new
    process"). *)

type stats = {
  verifies : int;
  updates : int;
  stall_cycles : float;
  spills : int;
  fills : int;
  detection_latency_sum : float;
  detection_latency_count : int;
  max_queue : int;
  context_switches : int;
  ctx_stall_cycles : float;
}

val stats : t -> stats
val avg_detection_latency : stats -> float
