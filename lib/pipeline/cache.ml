type t = {
  sets : int;
  assoc : int;
  block_bytes : int;
  tags : int array array;  (* [set].[way]; -1 = invalid *)
  stamps : int array array;
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let create (p : Config.cache_params) =
  let sets = max 1 (p.size_bytes / (p.block_bytes * p.assoc)) in
  {
    sets;
    assoc = p.assoc;
    block_bytes = p.block_bytes;
    tags = Array.init sets (fun _ -> Array.make p.assoc (-1));
    stamps = Array.init sets (fun _ -> Array.make p.assoc 0);
    tick = 0;
    accesses = 0;
    misses = 0;
  }

let access t addr =
  t.tick <- t.tick + 1;
  t.accesses <- t.accesses + 1;
  let block = addr / t.block_bytes in
  let set = block mod t.sets in
  let tag = block / t.sets in
  let tags = t.tags.(set) and stamps = t.stamps.(set) in
  let hit = ref false in
  for way = 0 to t.assoc - 1 do
    if tags.(way) = tag then begin
      hit := true;
      stamps.(way) <- t.tick
    end
  done;
  if not !hit then begin
    t.misses <- t.misses + 1;
    (* evict LRU way *)
    let victim = ref 0 in
    for way = 1 to t.assoc - 1 do
      if stamps.(way) < stamps.(!victim) then victim := way
    done;
    tags.(!victim) <- tag;
    stamps.(!victim) <- t.tick
  end;
  !hit

let accesses t = t.accesses
let misses t = t.misses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
