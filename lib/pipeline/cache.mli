(** Set-associative LRU cache model. *)

type t

val create : Config.cache_params -> t
val access : t -> int -> bool
(** [access t addr] — true on hit; on miss the block is filled. *)

val accesses : t -> int
val misses : t -> int
val reset_stats : t -> unit
