(** Trace-driven superscalar timing model (the SimpleScalar stand-in).

    Consumes the interpreter's event stream and charges cycles for
    commit-width-limited throughput, instruction/data cache misses (with
    an out-of-order overlap discount), branch mispredictions, and — when
    an IPDS system is attached — request-queue stalls from the IPDS
    engine.  Attach via {!observer}:

    {[
      let cpu = Cpu.create ~config ~system:(Some sys) program in
      let _ = Interp.run program
        { config with observer = Some (Cpu.observer cpu) } in
      let r = Cpu.finish cpu in ...
    ]} *)

type t

val create :
  ?config:Config.t ->
  ?ctx_switch_period:float ->
  system:Ipds_core.System.t option ->
  unit ->
  t
(** [ctx_switch_period] — if set, a protected-process context switch is
    charged every that-many cycles (the §5.4 save/restore model). *)

val observer : t -> Ipds_machine.Event.t -> unit

type ipds_stats = {
  verifies : int;
  updates : int;
  stall_cycles : float;
  spills : int;
  fills : int;
  avg_detection_latency : float;
  max_queue : int;
  alarms : int;
  context_switches : int;
  ctx_stall_cycles : float;
}

type report = {
  cycles : float;
  instructions : int;
  ipc : float;
  l1i_misses : int;
  l1d_misses : int;
  l2_misses : int;
  branches : int;
  mispredicts : int;
  ipds : ipds_stats option;
}

val finish : t -> report
val pp_report : Format.formatter -> report -> unit
