(* Simulated detection latencies are deterministic per workload, so the
   histogram is stable; it is observed in whole cycles to keep the sums
   integer (float accumulation order would not be order-independent). *)
let m_detection_latency =
  Ipds_obs.Registry.histogram "pipeline.detection_latency_cycles"
    ~bounds:[| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096 |]

type frame = {
  bsv : int;
  bcv : int;
  bat : int;
  mutable resident : bool;
}

type t = {
  config : Config.t;
  queue : float Queue.t;  (* completion times of in-flight requests *)
  mutable busy_until : float;
  mutable frames : frame list;  (* innermost first *)
  mutable resident_bits : int * int * int;
  mutable verifies : int;
  mutable updates : int;
  mutable stall_cycles : float;
  mutable spills : int;
  mutable fills : int;
  mutable lat_sum : float;
  mutable lat_count : int;
  mutable max_queue : int;
  mutable context_switches : int;
  mutable ctx_stall : float;
}

let create config =
  {
    config;
    queue = Queue.create ();
    busy_until = 0.;
    frames = [];
    resident_bits = (0, 0, 0);
    verifies = 0;
    updates = 0;
    stall_cycles = 0.;
    spills = 0;
    fills = 0;
    lat_sum = 0.;
    lat_count = 0;
    max_queue = 0;
    context_switches = 0;
    ctx_stall = 0.;
  }

let transfer_cycles config bits =
  let chunks = max 1 ((bits + 63) / 64) in
  float_of_int (config.Config.memory_first_chunk
                + (config.Config.memory_inter_chunk * (chunks - 1)))

(* Engine executes [service] cycles of work enqueued at CPU time [cycle];
   returns the completion time. *)
let submit t ~cycle service =
  let start = max t.busy_until cycle in
  let completion = start +. service in
  t.busy_until <- completion;
  completion

let drain t now =
  let continue = ref true in
  while !continue && not (Queue.is_empty t.queue) do
    if Queue.peek t.queue <= now then ignore (Queue.pop t.queue)
    else continue := false
  done

let enqueue_tracked t ~cycle service =
  drain t cycle;
  (* If the queue is full the CPU waits until the oldest request retires. *)
  let stall =
    if Queue.length t.queue >= t.config.Config.ipds_queue_entries then begin
      let free_at = Queue.pop t.queue in
      let s = max 0. (free_at -. cycle) in
      t.stall_cycles <- t.stall_cycles +. s;
      s
    end
    else 0.
  in
  let cycle = cycle +. stall in
  let dispatch = float_of_int t.config.Config.ipds_dispatch_latency in
  let completion = submit t ~cycle:(cycle +. dispatch) service in
  Queue.push completion t.queue;
  if Queue.length t.queue > t.max_queue then t.max_queue <- Queue.length t.queue;
  (stall, completion -. cycle)

let on_branch t ~cycle ~verify ~bat_nodes =
  let tl = float_of_int t.config.Config.ipds_table_latency in
  let verify_service = if verify then tl else 0. in
  let update_service = tl *. float_of_int (1 + bat_nodes) in
  (* The BSV verify and the BAT-walk update proceed in parallel engine
     pipelines; the request occupies the engine for the longer of the
     two. *)
  let service = Float.max verify_service update_service in
  if verify then t.verifies <- t.verifies + 1;
  t.updates <- t.updates + 1;
  let stall, latency = enqueue_tracked t ~cycle service in
  if verify then begin
    t.lat_sum <- t.lat_sum +. latency;
    t.lat_count <- t.lat_count + 1;
    Ipds_obs.Registry.observe m_detection_latency (int_of_float latency)
  end;
  stall

let caps t = (t.config.Config.bsv_stack_bits, t.config.Config.bcv_stack_bits,
              t.config.Config.bat_stack_bits)

let frame_bits f = (f.bsv, f.bcv, f.bat)

let add (a, b, c) (x, y, z) = (a + x, b + y, c + z)
let sub (a, b, c) (x, y, z) = (a - x, b - y, c - z)
let exceeds (a, b, c) (x, y, z) = a > x || b > y || c > z

(* Spill the outermost resident frames until the stacks fit. *)
let rec spill_to_fit t ~cycle =
  if exceeds t.resident_bits (caps t) then begin
    let rec outermost_resident = function
      | [] -> None
      | [ f ] -> if f.resident then Some f else None
      | f :: rest -> (
          match outermost_resident rest with
          | Some f' -> Some f'
          | None -> if f.resident then Some f else None)
    in
    match outermost_resident t.frames with
    | None -> ()
    | Some f ->
        f.resident <- false;
        t.resident_bits <- sub t.resident_bits (frame_bits f);
        t.spills <- t.spills + 1;
        let bits = f.bsv + f.bcv + f.bat in
        ignore (submit t ~cycle (transfer_cycles t.config bits));
        spill_to_fit t ~cycle
  end

let on_call t ~cycle ~sizes =
  let f =
    {
      bsv = sizes.Ipds_core.Tables.bsv_bits;
      bcv = sizes.Ipds_core.Tables.bcv_bits;
      bat = sizes.Ipds_core.Tables.bat_bits;
      resident = true;
    }
  in
  t.frames <- f :: t.frames;
  t.resident_bits <- add t.resident_bits (frame_bits f);
  spill_to_fit t ~cycle

let on_return t ~cycle =
  match t.frames with
  | [] -> ()
  | f :: rest ->
      if f.resident then t.resident_bits <- sub t.resident_bits (frame_bits f);
      t.frames <- rest;
      (* Returning to a spilled caller: fill its tables back in. *)
      (match rest with
      | caller :: _ when not caller.resident ->
          caller.resident <- true;
          t.resident_bits <- add t.resident_bits (frame_bits caller);
          t.fills <- t.fills + 1;
          let bits = caller.bsv + caller.bcv + caller.bat in
          ignore (submit t ~cycle (transfer_cycles t.config bits))
      | _ :: _ | [] -> ())

let on_context_switch t ~cycle =
  t.context_switches <- t.context_switches + 1;
  (* synchronous: save then restore the hot top-of-stack window *)
  let visible = 2. *. transfer_cycles t.config t.config.Config.ctx_swap_bits in
  (* background: the rest of the resident tables stream through the
     engine, delaying queued requests but not the CPU *)
  let a, b, c = t.resident_bits in
  let rest = max 0 (a + b + c - t.config.Config.ctx_swap_bits) in
  if rest > 0 then
    ignore (submit t ~cycle:(cycle +. visible) (2. *. transfer_cycles t.config rest));
  t.ctx_stall <- t.ctx_stall +. visible;
  visible

type stats = {
  verifies : int;
  updates : int;
  stall_cycles : float;
  spills : int;
  fills : int;
  detection_latency_sum : float;
  detection_latency_count : int;
  max_queue : int;
  context_switches : int;
  ctx_stall_cycles : float;
}

let stats (t : t) =
  {
    verifies = t.verifies;
    updates = t.updates;
    stall_cycles = t.stall_cycles;
    spills = t.spills;
    fills = t.fills;
    detection_latency_sum = t.lat_sum;
    detection_latency_count = t.lat_count;
    max_queue = t.max_queue;
    context_switches = t.context_switches;
    ctx_stall_cycles = t.ctx_stall;
  }

let avg_detection_latency s =
  if s.detection_latency_count = 0 then 0.
  else s.detection_latency_sum /. float_of_int s.detection_latency_count
