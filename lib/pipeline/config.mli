(** Simulated processor parameters — Table 1 of the paper. *)

type cache_params = {
  size_bytes : int;
  assoc : int;
  block_bytes : int;
  hit_latency : int;
}

type t = {
  clock_mhz : int;
  fetch_queue : int;
  decode_width : int;
  issue_width : int;
  commit_width : int;
  ruu_size : int;
  lsq_size : int;
  l1i : cache_params;
  l1d : cache_params;
  l2 : cache_params;
  memory_first_chunk : int;  (** cycles *)
  memory_inter_chunk : int;
  tlb_miss : int;
  predictor_history_bits : int;  (** 2-level predictor history length *)
  mispredict_penalty : int;
  (* IPDS hardware *)
  bsv_stack_bits : int;
  bcv_stack_bits : int;
  bat_stack_bits : int;
  ipds_queue_entries : int;
  ipds_table_latency : int;  (** per table access, cycles *)
  ipds_dispatch_latency : int;
      (** commit-to-IPDS transfer + arbitration, cycles *)
  ctx_swap_bits : int;
      (** table bits swapped synchronously on a context switch (paper:
          "swap the top of BSV and BAT stacks (around 1K bits) first and
          let the new process start") *)
  memory_overlap : float;
      (** fraction of miss latency hidden by out-of-order execution *)
}

val default : t
(** The Table 1 configuration: 1 GHz, 8-wide, RUU 128, LSQ 64, 64K 2-way
    L1s, 512K 4-way L2, 80/5-cycle memory, 2K/1K/32K-bit IPDS stacks. *)

val pp : Format.formatter -> t -> unit
(** Renders the Table 1 rows. *)
