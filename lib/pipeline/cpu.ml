module Event = Ipds_machine.Event

(* Flushed once per simulation in [finish]; the per-event observer never
   touches the registry. *)
let m_sims = Ipds_obs.Registry.counter "pipeline.sims"
let m_instructions = Ipds_obs.Registry.counter "pipeline.instructions"
let m_branches = Ipds_obs.Registry.counter "pipeline.branches"
let m_mispredicts = Ipds_obs.Registry.counter "pipeline.mispredicts"
let m_l2_misses = Ipds_obs.Registry.counter "pipeline.l2_misses"
let m_verifies = Ipds_obs.Registry.counter "pipeline.verifies"
let m_updates = Ipds_obs.Registry.counter "pipeline.updates"
let m_spills = Ipds_obs.Registry.counter "pipeline.spills"
let m_fills = Ipds_obs.Registry.counter "pipeline.fills"
let m_alarms = Ipds_obs.Registry.counter "pipeline.alarms"
let m_context_switches = Ipds_obs.Registry.counter "pipeline.context_switches"

type t = {
  config : Config.t;
  ctx_switch_period : float option;
  mutable next_ctx_switch : float;
  system : Ipds_core.System.t option;
  checker : Ipds_core.Checker.t option;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  predictor : Predictor.t;
  unit_ : Ipds_unit.t option;
  mutable cycles : float;
  mutable instructions : int;
  mutable l2_misses : int;
}

let create ?(config = Config.default) ?ctx_switch_period ~system () =
  {
    config;
    ctx_switch_period;
    next_ctx_switch = (match ctx_switch_period with Some p -> p | None -> infinity);
    system;
    checker = Option.map Ipds_core.System.new_checker system;
    l1i = Cache.create config.Config.l1i;
    l1d = Cache.create config.Config.l1d;
    l2 = Cache.create config.Config.l2;
    predictor = Predictor.create ~history_bits:config.Config.predictor_history_bits;
    unit_ = Option.map (fun _ -> Ipds_unit.create config) system;
    cycles = 0.;
    instructions = 0;
    l2_misses = 0;
  }

(* Miss-cost model: an L1 miss pays the L2 latency; an L2 miss pays the
   memory latency; both discounted by the out-of-order overlap factor. *)
let mem_access t cache addr =
  if not (Cache.access cache addr) then begin
    let cost =
      if Cache.access t.l2 addr then float_of_int t.config.Config.l2.Config.hit_latency
      else begin
        t.l2_misses <- t.l2_misses + 1;
        float_of_int t.config.Config.memory_first_chunk
      end
    in
    t.cycles <- t.cycles +. (cost *. (1. -. t.config.Config.memory_overlap))
  end

let observer t (e : Event.t) =
  (* Fault markers are simulator metadata, not retired instructions: the
     faulted hardware spends no cycles announcing its own corruption. *)
  match e.Event.kind with
  | Event.Fault_inject _ -> ()
  | _ ->
  t.instructions <- t.instructions + 1;
  (match t.ctx_switch_period, t.unit_ with
  | Some period, Some unit_ ->
      if t.cycles >= t.next_ctx_switch then begin
        t.cycles <- t.cycles +. Ipds_unit.on_context_switch unit_ ~cycle:t.cycles;
        t.next_ctx_switch <- t.cycles +. period
      end
  | _, _ -> ());
  t.cycles <- t.cycles +. (1. /. float_of_int t.config.Config.commit_width);
  mem_access t t.l1i e.Event.pc;
  match e.Event.kind with
  | Event.Alu | Event.Input_read | Event.Output_write _ | Event.Jump _
  | Event.Fault_inject _ -> ()
  | Event.Load { addr } | Event.Store { addr } -> mem_access t t.l1d addr
  | Event.Branch { taken; _ } -> (
      let correct = Predictor.observe t.predictor ~pc:e.Event.pc ~taken in
      if not correct then
        t.cycles <- t.cycles +. float_of_int t.config.Config.mispredict_penalty;
      match t.checker, t.unit_ with
      | Some checker, Some unit_ ->
          let v = Ipds_core.Checker.on_branch checker ~pc:e.Event.pc ~taken in
          let stall =
            Ipds_unit.on_branch unit_ ~cycle:t.cycles
              ~verify:(Ipds_core.Checker.verdict_checked v)
              ~bat_nodes:(Ipds_core.Checker.verdict_bat_nodes v)
          in
          t.cycles <- t.cycles +. stall
      | _, _ -> ())
  | Event.Call { callee } -> (
      match t.checker, t.unit_, t.system with
      | Some checker, Some unit_, Some system
        when Ipds_mir.Program.is_defined system.Ipds_core.System.program callee ->
          ignore (Ipds_core.Checker.on_call checker callee);
          let sizes = Ipds_core.Tables.sizes (Ipds_core.System.tables system callee) in
          Ipds_unit.on_call unit_ ~cycle:t.cycles ~sizes
      | _, _, _ -> ())
  | Event.Ret -> (
      match t.checker, t.unit_ with
      | Some checker, Some unit_ ->
          ignore (Ipds_core.Checker.on_return checker);
          Ipds_unit.on_return unit_ ~cycle:t.cycles
      | _, _ -> ())

type ipds_stats = {
  verifies : int;
  updates : int;
  stall_cycles : float;
  spills : int;
  fills : int;
  avg_detection_latency : float;
  max_queue : int;
  alarms : int;
  context_switches : int;
  ctx_stall_cycles : float;
}

type report = {
  cycles : float;
  instructions : int;
  ipc : float;
  l1i_misses : int;
  l1d_misses : int;
  l2_misses : int;
  branches : int;
  mispredicts : int;
  ipds : ipds_stats option;
}

let finish (t : t) =
  Ipds_obs.Registry.incr m_sims;
  Ipds_obs.Registry.add m_instructions t.instructions;
  Ipds_obs.Registry.add m_branches (Predictor.lookups t.predictor);
  Ipds_obs.Registry.add m_mispredicts (Predictor.mispredicts t.predictor);
  Ipds_obs.Registry.add m_l2_misses t.l2_misses;
  let ipds =
    match t.unit_, t.checker with
    | Some unit_, Some checker ->
        (* a simulation can end mid-stack; push pending checker deltas *)
        Ipds_core.Checker.flush checker;
        let s = Ipds_unit.stats unit_ in
        Ipds_obs.Registry.add m_verifies s.Ipds_unit.verifies;
        Ipds_obs.Registry.add m_updates s.Ipds_unit.updates;
        Ipds_obs.Registry.add m_spills s.Ipds_unit.spills;
        Ipds_obs.Registry.add m_fills s.Ipds_unit.fills;
        Ipds_obs.Registry.add m_context_switches s.Ipds_unit.context_switches;
        Ipds_obs.Registry.add m_alarms (Ipds_core.Checker.alarm_count checker);
        Some
          {
            verifies = s.Ipds_unit.verifies;
            updates = s.Ipds_unit.updates;
            stall_cycles = s.Ipds_unit.stall_cycles;
            spills = s.Ipds_unit.spills;
            fills = s.Ipds_unit.fills;
            avg_detection_latency = Ipds_unit.avg_detection_latency s;
            max_queue = s.Ipds_unit.max_queue;
            alarms = Ipds_core.Checker.alarm_count checker;
            context_switches = s.Ipds_unit.context_switches;
            ctx_stall_cycles = s.Ipds_unit.ctx_stall_cycles;
          }
    | _, _ -> None
  in
  {
    cycles = t.cycles;
    instructions = t.instructions;
    ipc =
      (if t.cycles > 0. then float_of_int t.instructions /. t.cycles else 0.);
    l1i_misses = Cache.misses t.l1i;
    l1d_misses = Cache.misses t.l1d;
    l2_misses = t.l2_misses;
    branches = Predictor.lookups t.predictor;
    mispredicts = Predictor.mispredicts t.predictor;
    ipds;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>cycles %.0f, instr %d, ipc %.2f@,\
     l1i misses %d, l1d misses %d, l2 misses %d@,\
     branches %d, mispredicts %d@]" r.cycles r.instructions r.ipc r.l1i_misses
    r.l1d_misses r.l2_misses r.branches r.mispredicts;
  match r.ipds with
  | None -> ()
  | Some s ->
      Format.fprintf ppf
        "@,@[<v>ipds: %d verifies, %d updates, %.1f stall cycles@,\
         %d spills, %d fills, avg detection latency %.1f cycles, max queue %d, \
         %d alarms@]"
        s.verifies s.updates s.stall_cycles s.spills s.fills
        s.avg_detection_latency s.max_queue s.alarms
