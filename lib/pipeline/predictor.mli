(** Two-level adaptive branch predictor (gshare variant): a global history
    register XOR-indexed into a table of 2-bit saturating counters. *)

type t

val create : history_bits:int -> t
val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
val observe : t -> pc:int -> taken:bool -> bool
(** Predict then update; returns whether the prediction was correct. *)

val lookups : t -> int
val mispredicts : t -> int
