type t = {
  history_bits : int;
  mutable history : int;
  counters : int array;  (* 2-bit saturating *)
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ~history_bits =
  {
    history_bits;
    history = 0;
    counters = Array.make (1 lsl history_bits) 2;
    lookups = 0;
    mispredicts = 0;
  }

let index t ~pc =
  let mask = (1 lsl t.history_bits) - 1 in
  ((pc lsr 2) lxor t.history) land mask

let predict t ~pc = t.counters.(index t ~pc) >= 2

let update t ~pc ~taken =
  let i = index t ~pc in
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  let mask = (1 lsl t.history_bits) - 1 in
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land mask

let observe t ~pc ~taken =
  t.lookups <- t.lookups + 1;
  let correct = Bool.equal (predict t ~pc) taken in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  update t ~pc ~taken;
  correct

let lookups t = t.lookups
let mispredicts t = t.mispredicts
