type cache_params = {
  size_bytes : int;
  assoc : int;
  block_bytes : int;
  hit_latency : int;
}

type t = {
  clock_mhz : int;
  fetch_queue : int;
  decode_width : int;
  issue_width : int;
  commit_width : int;
  ruu_size : int;
  lsq_size : int;
  l1i : cache_params;
  l1d : cache_params;
  l2 : cache_params;
  memory_first_chunk : int;
  memory_inter_chunk : int;
  tlb_miss : int;
  predictor_history_bits : int;
  mispredict_penalty : int;
  bsv_stack_bits : int;
  bcv_stack_bits : int;
  bat_stack_bits : int;
  ipds_queue_entries : int;
  ipds_table_latency : int;
  ipds_dispatch_latency : int;
  ctx_swap_bits : int;
  memory_overlap : float;
}

let default =
  {
    clock_mhz = 1000;
    fetch_queue = 32;
    decode_width = 8;
    issue_width = 8;
    commit_width = 8;
    ruu_size = 128;
    lsq_size = 64;
    l1i = { size_bytes = 64 * 1024; assoc = 2; block_bytes = 32; hit_latency = 2 };
    l1d = { size_bytes = 64 * 1024; assoc = 2; block_bytes = 32; hit_latency = 2 };
    l2 = { size_bytes = 512 * 1024; assoc = 4; block_bytes = 32; hit_latency = 10 };
    memory_first_chunk = 80;
    memory_inter_chunk = 5;
    tlb_miss = 30;
    predictor_history_bits = 12;
    mispredict_penalty = 14;
    bsv_stack_bits = 2 * 1024;
    bcv_stack_bits = 1024;
    bat_stack_bits = 32 * 1024;
    ipds_queue_entries = 32;
    ipds_table_latency = 1;
    ipds_dispatch_latency = 4;
    ctx_swap_bits = 1024;
    memory_overlap = 0.6;
  }

let pp ppf c =
  let row l v l2 v2 = Format.fprintf ppf "| %-18s | %-12s | %-16s | %-26s |@," l v l2 v2 in
  Format.fprintf ppf "@[<v>";
  row "Clock frequency" (Printf.sprintf "%d MHz" c.clock_mhz) "L1 I/D"
    (Printf.sprintf "%dK, %d way, %d cycle, %dB block" (c.l1i.size_bytes / 1024)
       c.l1i.assoc c.l1i.hit_latency c.l1i.block_bytes);
  row "Fetch queue"
    (Printf.sprintf "%d entries" c.fetch_queue)
    "Unified L2"
    (Printf.sprintf "%dK, %dway, %dB block, lat %d" (c.l2.size_bytes / 1024)
       c.l2.assoc c.l2.block_bytes c.l2.hit_latency);
  row "Decode width" (string_of_int c.decode_width) "Memory latency"
    (Printf.sprintf "first %d, inter %d" c.memory_first_chunk c.memory_inter_chunk);
  row "Issue width" (string_of_int c.issue_width) "TLB miss"
    (Printf.sprintf "%d cycles" c.tlb_miss);
  row "Commit width" (string_of_int c.commit_width) "BSV stack"
    (Printf.sprintf "%d bits" c.bsv_stack_bits);
  row "RUU size" (string_of_int c.ruu_size) "BCV stack"
    (Printf.sprintf "%d bits" c.bcv_stack_bits);
  row "LSQ size" (string_of_int c.lsq_size) "BAT stack"
    (Printf.sprintf "%d bits" c.bat_stack_bits);
  row "Branch predictor" "2 Level" "IPDS queue"
    (Printf.sprintf "%d entries" c.ipds_queue_entries);
  Format.fprintf ppf "@]"
