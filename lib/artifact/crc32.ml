(* Eagerly initialised: a top-level [lazy] here would race [Lazy.force]
   from concurrent domains (any --jobs > 1 artifact path) and can raise
   CamlinternalLazy.Undefined.  Building the table at module
   initialisation costs ~2k trivial iterations once, and module
   initialisation happens before any domain is spawned. *)
let table =
  Array.init 256 (fun n ->
      let c = ref (Int32.of_int n) in
      for _ = 0 to 7 do
        c :=
          if Int32.logand !c 1l <> 0l then
            Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
          else Int32.shift_right_logical !c 1
      done;
      !c)

let bytes buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.bytes: range out of bounds";
  let t = table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand (Int32.logxor !c (Int32.of_int (Bytes.get_uint8 buf i))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let all buf = bytes buf ~pos:0 ~len:(Bytes.length buf)
let string s = all (Bytes.of_string s)
