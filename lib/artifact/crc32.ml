(* Eagerly initialised: a top-level [lazy] here would race [Lazy.force]
   from concurrent domains (any --jobs > 1 artifact path) and can raise
   CamlinternalLazy.Undefined.  Building the table at module
   initialisation costs ~2k trivial iterations once, and module
   initialisation happens before any domain is spawned.

   The table and the accumulation loop work on plain [int]s — every
   intermediate fits in 32 bits, so native ints carry the exact u32
   semantics without the boxed-[Int32] allocation a byte-at-a-time loop
   would otherwise pay on every input byte.  The verdict server CRCs
   every frame it receives, so this loop is protocol hot path, not just
   artifact-load path. *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let bytes buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.bytes: range out of bounds";
  let t = table in
  let c = ref 0xFFFF_FFFF in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Bytes.get_uint8 buf i) land 0xFF) lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xFFFF_FFFF)

let all buf = bytes buf ~pos:0 ~len:(Bytes.length buf)
let string s = all (Bytes.of_string s)
