(** The incremental build driver: both cache tiers wired into one call.

    [system store ~key compile] first tries the whole-program artifact
    at [key].  On a miss it runs [compile ()] and builds through
    {!Ipds_core.System.build} with the store's {!Store.func_cache}
    hooks, so every function whose content digest is unchanged is
    decoded from its cached blob instead of re-analyzed — a warm
    rebuild after editing one function runs the analyze/tables passes
    exactly once — and publishes the resulting whole-program artifact.

    Determinism: the assembled system is byte-identical to a cold
    sequential build regardless of [pool] and of which tier served each
    function (tested by the pass smoke test). *)

val system :
  ?options:Ipds_correlation.Analysis.options ->
  ?pool:Ipds_parallel.Pool.t ->
  Store.t ->
  key:string ->
  (unit -> Ipds_mir.Program.t) ->
  Ipds_core.System.t
