(** Content-addressed on-disk cache of IPDS artifacts.

    Entries are keyed by the SHA-256 digest of (MiniC/MIR source text,
    compile options, analysis options, artifact format version) and live
    at [<dir>/<k₀k₁>/<key>.ipds].  Publishing is atomic (temp file +
    rename), so concurrent processes sharing a directory can only ever
    observe complete files; a truncated, CRC-mismatched or
    version-skewed entry is treated as a miss and rebuilt, never a
    crash.

    Because the key is collision-resistant, the entry stored at a key's
    path doubles as a collision-detection table row: every publish that
    finds the path occupied byte-compares against it, and a
    valid-but-different entry is a counted [store.collisions] event —
    never silently reused, never silently overwritten.

    The {e ambient} store is process-global configuration consulted by
    {!Ipds_workloads.Workloads.system}: it defaults to the
    [IPDS_CACHE_DIR] environment variable and is overridden by the
    [--cache-dir] / [--no-cache] CLI flags.

    All counters are process-wide and domain-safe — the bench harness
    reports them in its [--json] output and the cache smoke test asserts
    a warm run is all hits. *)

type t

val create : dir:string -> t
(** The directory is created lazily on first publish. *)

val dir : t -> string

val key :
  source:string ->
  promote:bool ->
  options:Ipds_correlation.Analysis.options ->
  string
(** Hex digest naming the artifact for this configuration; changes
    whenever the source, the compile options, the analysis options or
    {!Object_file.format_version} change. *)

val valid_key : string -> bool
(** Whether a key is well-formed: 2..128 chars of [[A-Za-z0-9._-]], no
    leading dot.  Keys arrive over the wire (artifact fetch/push
    frames), so shape is checked at this boundary — a malformed key is
    a typed miss/failure, never an exception from path construction. *)

val path_of_key : t -> string -> string
(** Raises [Invalid_argument] when the key fails {!valid_key}. *)

val load_system : t -> string -> Ipds_core.System.t option
(** [None] on absent, truncated, corrupt, version-skewed or
    malformed-key entries (counted as misses); never raises on bad
    cache contents.  A read failure on an entry that {e exists}
    (EACCES, EIO, ...) additionally counts as [corrupt] and emits a
    [store.corrupt] event carrying the errno — an unreadable cache is
    damage to surface, not a cold miss to recompile forever. *)

val publish_system : t -> string -> Ipds_core.System.t -> unit
(** Atomic; IO errors (read-only dir, disk full) are counted as
    [publish_failed] and emitted as [store.publish_failed] events but
    do not raise — the cache is an optimisation, not a correctness
    dependency. *)

(** {2 Raw images (fleet artifact sharing)}

    The serve layer moves whole container images between shards; these
    are the store's byte-level endpoints for that traffic. *)

val fetch_image : t -> string -> [ `Image of Bytes.t | `Miss | `Corrupt of string ]
(** The verified raw bytes of entry [key]: the container is fully
    decoded ({!Artifact.of_bytes}) before the bytes are handed out, so
    a corrupt entry is a typed [`Corrupt], never propagated to a peer.
    Malformed keys and absent entries are [`Miss]. *)

val publish_image :
  t -> string -> Bytes.t -> [ `Stored | `Duplicate | `Collision | `Failed of string ]
(** Insert pre-encoded container bytes under [key] through the
    collision-detection table: [`Duplicate] = byte-identical entry
    already present (no write), [`Collision] = a {e different} valid
    entry holds this key (counted, existing entry kept), [`Stored] =
    written (repairing a damaged entry counts as a store).  The caller
    is responsible for having verified untrusted bytes first. *)

(** {2 Function tier}

    Single-function blobs under [<dir>/fn/], addressed by the content
    digest {!Ipds_core.System.func_digest} assigns each function (plus
    the artifact format version).  This is what makes rebuilds
    incremental at function granularity: a whole-program miss still
    hits here for every function whose digest is unchanged. *)

val load_func :
  t ->
  digest:string ->
  layout:Ipds_mir.Layout.t ->
  Ipds_mir.Func.t ->
  Ipds_core.System.func_info option
(** [None] on absent or corrupt blobs (counted as [fn_misses]; read
    faults on existing blobs count as [fn_corrupt] like
    {!load_system}). *)

val publish_func : t -> digest:string -> Ipds_core.System.func_info -> unit

val func_cache : ?precision:bool -> t -> Ipds_core.System.func_cache
(** The two hooks above packaged for
    [Ipds_core.System.build ~func_cache].  With [~precision:true] every
    function-tier miss additionally counts as [fn_precision_misses]:
    since precision is part of {!Ipds_core.System.func_digest}, flipping
    the precision config shows up as a clean sweep of these misses
    rather than stale hits. *)

(** {2 Ambient store} *)

val set_ambient_dir : string option -> unit
(** [Some dir] enables the ambient store at [dir]; [None] disables it,
    overriding [IPDS_CACHE_DIR]. *)

val ambient : unit -> t option
(** The configured store, initialised from [IPDS_CACHE_DIR] on first
    use unless {!set_ambient_dir} was called. *)

(** {2 Counters} *)

type counters = {
  hits : int;
  misses : int;  (** absent entries and corrupt/skewed entries alike *)
  corrupt : int;  (** the subset of misses caused by damaged entries *)
  fn_hits : int;  (** function-tier hits (functions not re-analyzed) *)
  fn_misses : int;  (** function-tier misses (functions analyzed fresh) *)
  fn_precision_misses : int;
      (** the subset of [fn_misses] incurred under a precision-enabled
          digest (see {!func_cache}) *)
  fn_corrupt : int;  (** the subset of [fn_misses] from damaged blobs *)
  collisions : int;
      (** publishes that found a different valid entry at the key *)
  publish_failed : int;  (** publishes lost to IO errors *)
  bytes_read : int;
  bytes_written : int;
  load_seconds : float;  (** wall-clock spent loading artifacts (warm path) *)
  store_seconds : float;  (** wall-clock spent encoding + publishing *)
}

val counters : unit -> counters
val reset_counters : unit -> unit
