module Mir = Ipds_mir
module Core = Ipds_core
module Corr = Ipds_correlation
module W = Core.Bitstream.Writer
module R = Core.Bitstream.Reader

exception Corrupt = Object_file.Corrupt

let corrupt fmt = Printf.ksprintf (fun s -> raise (Object_file.Corrupt s)) fmt

(* ---------- bit-packed helpers ---------- *)

let push_str w s =
  W.push w ~width:16 (String.length s);
  String.iter (fun c -> W.push w ~width:8 (Char.code c)) s

let pull_str r =
  let n = R.pull r ~width:16 in
  String.init n (fun _ -> Char.chr (R.pull r ~width:8))

(* ---------- layout section ---------- *)

let encode_layout entries =
  let w = W.create () in
  W.push w ~width:32 (List.length entries);
  List.iter
    (fun (name, base, count) ->
      push_str w name;
      W.push w ~width:32 base;
      W.push w ~width:32 count)
    entries;
  W.contents w

let decode_layout bytes =
  try
    let r = R.of_bytes bytes in
    let n = R.pull r ~width:32 in
    if n > 100_000 then corrupt "layout: implausible entry count %d" n;
    List.init n (fun _ ->
        let name = pull_str r in
        let base = R.pull r ~width:32 in
        let count = R.pull r ~width:32 in
        (name, base, count))
  with Invalid_argument m -> corrupt "layout section: %s" m

(* ---------- index section ---------- *)

type func_meta = {
  m_name : string;
  m_entry_pc : int;
  m_branches : int;
  m_digest : string;
  m_checked : int list;
}

let encode_meta w name (i : Core.System.func_info) =
  push_str w name;
  W.push w ~width:32 i.Core.System.entry_pc;
  W.push w ~width:16 i.Core.System.tables.Core.Tables.n_branches;
  push_str w i.Core.System.digest;
  let checked = i.Core.System.result.Corr.Analysis.checked in
  W.push w ~width:16 (List.length checked);
  List.iter (fun iid -> W.push w ~width:32 iid) checked

let decode_meta r =
  let m_name = pull_str r in
  let m_entry_pc = R.pull r ~width:32 in
  let m_branches = R.pull r ~width:16 in
  let m_digest = pull_str r in
  let n_checked = R.pull r ~width:16 in
  let m_checked = List.init n_checked (fun _ -> R.pull r ~width:32) in
  { m_name; m_entry_pc; m_branches; m_digest; m_checked }

let encode_index funcs =
  let w = W.create () in
  W.push w ~width:16 (List.length funcs);
  List.iter (fun (name, info) -> encode_meta w name info) funcs;
  W.contents w

let decode_index bytes =
  try
    let r = R.of_bytes bytes in
    let n = R.pull r ~width:16 in
    List.init n (fun _ -> decode_meta r)
  with Invalid_argument m -> corrupt "index section: %s" m

(* ---------- save ---------- *)

let fsect i = Printf.sprintf "f%d" i

let to_bytes (sys : Core.System.t) =
  Object_file.to_bytes
    ~sections:
      (("code",
        Bytes.of_string (Mir.Printer.program_to_string sys.Core.System.program))
      :: ("layout", encode_layout (Mir.Layout.entries sys.Core.System.layout))
      :: ("index", encode_index sys.Core.System.funcs)
      :: List.mapi
           (fun i (_, (info : Core.System.func_info)) ->
             ( fsect i,
               Core.Encode.function_image ~entry_pc:info.Core.System.entry_pc
                 info.Core.System.tables ))
           sys.Core.System.funcs)

(* ---------- load ---------- *)

(* Rebuild the analysis-result view of one function from its decoded
   tables: the collision-free hash maps BAT slots back to branch iids,
   so edge and entry actions are fully recoverable; [depends] (pure
   provenance) is not and loads empty. *)
let reconstruct ~layout (f : Mir.Func.t) ~entry_pc ~digest
    ~(tables : Core.Tables.t) ~image ~checked ~n_branches =
  let fname = f.Mir.Func.name in
  let branch_iids = List.map fst (Mir.Func.branches f) in
  if
    tables.Core.Tables.n_branches <> List.length branch_iids
    || n_branches <> List.length branch_iids
  then corrupt "%s: branch count disagrees with code section" fname;
  let slot iid =
    Core.Hash.apply tables.Core.Tables.hash (Mir.Layout.pc layout ~fname ~iid)
  in
  let inv = Hashtbl.create 16 in
  List.iter
    (fun iid ->
      let s = slot iid in
      if Hashtbl.mem inv s then
        corrupt "%s: shipped hash parameters collide on branch PCs" fname;
      if s < 0 || s >= Array.length tables.Core.Tables.bcv then
        corrupt "%s: branch slot %d outside hash space" fname s;
      Hashtbl.add inv s iid)
    branch_iids;
  let iid_of_slot s =
    match Hashtbl.find_opt inv s with
    | Some iid -> iid
    | None -> corrupt "%s: table refers to slot %d with no branch" fname s
  in
  List.iter
    (fun iid ->
      if not (List.mem iid branch_iids) then
        corrupt "%s: checked iid %d is not a branch" fname iid;
      if not tables.Core.Tables.bcv.(slot iid) then
        corrupt "%s: checked iid %d missing from BCV" fname iid)
    checked;
  let bcv_population =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 tables.Core.Tables.bcv
  in
  if bcv_population <> List.length (List.sort_uniq compare checked) then
    corrupt "%s: BCV population disagrees with checked list" fname;
  let entries_to_actions entries =
    List.map
      (fun (e : Core.Tables.bat_entry) ->
        (iid_of_slot e.Core.Tables.target_slot, e.Core.Tables.action))
      entries
  in
  let edge_actions = ref [] in
  Array.iteri
    (fun row entries ->
      match entries with
      | [] -> ()
      | _ ->
          edge_actions :=
            ((iid_of_slot (row / 2), row mod 2 = 1), entries_to_actions entries)
            :: !edge_actions)
    tables.Core.Tables.bat;
  {
    Core.System.entry_pc;
    digest;
    tables =
      {
        tables with
        Core.Tables.slot_of_iid = Core.Tables.slot_map branch_iids slot;
      };
    image;
    result =
      {
        Corr.Analysis.func = f;
        depends = [];
        checked;
        edge_actions = List.rev !edge_actions;
        entry_actions = entries_to_actions tables.Core.Tables.entry_row;
      };
    (* refinement stats are build-time telemetry, not part of the format *)
    refine = None;
  }

let of_bytes bytes =
  let sections = Object_file.of_bytes bytes in
  let sect name =
    match List.assoc_opt name sections with
    | Some b -> b
    | None -> corrupt "missing section %s" name
  in
  let program =
    try Mir.Parser.program_of_string (Bytes.to_string (sect "code")) with
    | Mir.Parser.Parse_error m -> corrupt "code section: %s" m
    | Invalid_argument m -> corrupt "code section: %s" m
  in
  let layout = Mir.Layout.make program in
  if decode_layout (sect "layout") <> Mir.Layout.entries layout then
    corrupt "layout section disagrees with code section";
  let metas = decode_index (sect "index") in
  if List.length metas <> List.length program.Mir.Program.funcs then
    corrupt "index disagrees with code section on function count";
  let funcs =
    List.mapi
      (fun i meta ->
        let tpc, tables, image =
          try Core.Encode.decode_function_full (sect (fsect i))
          with Invalid_argument m -> corrupt "section %s: %s" (fsect i) m
        in
        if not (String.equal meta.m_name tables.Core.Tables.fname) then
          corrupt "index/%s disagree on name (%s vs %s)" (fsect i) meta.m_name
            tables.Core.Tables.fname;
        if meta.m_entry_pc <> tpc then
          corrupt "%s: index/tables disagree on entry pc" meta.m_name;
        let f =
          match Mir.Program.find_func program meta.m_name with
          | Some f -> f
          | None -> corrupt "%s: not defined in code section" meta.m_name
        in
        if Mir.Layout.func_base layout meta.m_name <> meta.m_entry_pc then
          corrupt "%s: entry pc disagrees with layout" meta.m_name;
        ( meta.m_name,
          reconstruct ~layout f ~entry_pc:meta.m_entry_pc ~digest:meta.m_digest
            ~tables ~image ~checked:meta.m_checked ~n_branches:meta.m_branches ))
      metas
  in
  Core.System.make ~program ~layout ~funcs

(* ---------- single-function blobs (incremental cache tier) ---------- *)

let func_image (info : Core.System.func_info) =
  let w = W.create () in
  encode_meta w info.Core.System.result.Corr.Analysis.func.Mir.Func.name info;
  Object_file.to_bytes
    ~sections:
      [
        ("meta", W.contents w);
        ( "tables",
          Core.Encode.function_image ~entry_pc:info.Core.System.entry_pc
            info.Core.System.tables );
      ]

let func_of_image ~digest ~layout (f : Mir.Func.t) bytes =
  let sections = Object_file.of_bytes bytes in
  let sect name =
    match List.assoc_opt name sections with
    | Some b -> b
    | None -> corrupt "missing section %s" name
  in
  let meta =
    try
      let r = R.of_bytes (sect "meta") in
      decode_meta r
    with Invalid_argument m -> corrupt "meta section: %s" m
  in
  let tpc, tables, image =
    try Core.Encode.decode_function_full (sect "tables")
    with Invalid_argument m -> corrupt "tables section: %s" m
  in
  if not (String.equal meta.m_name f.Mir.Func.name) then
    corrupt "function blob is for %s, wanted %s" meta.m_name f.Mir.Func.name;
  if not (String.equal meta.m_digest digest) then
    corrupt "%s: function blob digest mismatch" meta.m_name;
  if meta.m_entry_pc <> tpc then
    corrupt "%s: meta/tables disagree on entry pc" meta.m_name;
  if Mir.Layout.func_base layout meta.m_name <> meta.m_entry_pc then
    corrupt "%s: entry pc disagrees with current layout" meta.m_name;
  reconstruct ~layout f ~entry_pc:meta.m_entry_pc ~digest:meta.m_digest ~tables
    ~image ~checked:meta.m_checked ~n_branches:meta.m_branches

(* ---------- files ---------- *)

let save_file path sys = Object_file.write_file_atomic path (to_bytes sys)
let load_file path = of_bytes (Object_file.read_file path)

let is_artifact_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (String.length Object_file.magic) with
          | s -> String.equal s Object_file.magic
          | exception End_of_file -> false)

(* ---------- inspection ---------- *)

type func_summary = {
  fname : string;
  entry_pc : int;
  n_branches : int;
  digest : string;
  sizes : Ipds_core.Tables.sizes;
}

type inspection = {
  file : Object_file.info;
  funcs : func_summary list option;
}

let inspect_bytes bytes =
  let file = Object_file.info_of_bytes bytes in
  let intact =
    file.Object_file.digest_ok
    && List.for_all (fun s -> s.Object_file.s_crc_ok) file.Object_file.sections
  in
  let funcs =
    if not intact then None
    else
      match of_bytes bytes with
      | sys ->
          Some
            (List.map
               (fun (name, (i : Core.System.func_info)) ->
                 {
                   fname = name;
                   entry_pc = i.Core.System.entry_pc;
                   n_branches = i.Core.System.tables.Core.Tables.n_branches;
                   digest = i.Core.System.digest;
                   sizes = Core.Tables.sizes i.Core.System.tables;
                 })
               sys.Core.System.funcs)
      | exception Object_file.Corrupt _ -> None
  in
  { file; funcs }

let inspect_file path = inspect_bytes (Object_file.read_file path)

let pp_inspection ppf t =
  let i = t.file in
  Format.fprintf ppf "IPDS object file: format v%d, %d bytes@."
    i.Object_file.version i.Object_file.file_bytes;
  Format.fprintf ppf "  sha256 %s %s@." i.Object_file.digest_hex
    (if i.Object_file.digest_ok then "(ok)" else "(MISMATCH)");
  Format.fprintf ppf "  md5    %s (legacy v2 address)@."
    i.Object_file.legacy_md5_hex;
  List.iter
    (fun (s : Object_file.section_info) ->
      Format.fprintf ppf "  section %-8s  offset %6d  %7d bytes  crc 0x%08lx %s@."
        s.Object_file.s_name s.Object_file.s_offset s.Object_file.s_length
        s.Object_file.s_crc
        (if s.Object_file.s_crc_ok then "ok" else "BAD CRC"))
    i.Object_file.sections;
  match t.funcs with
  | None -> Format.fprintf ppf "  (tables not decodable: file is corrupt)@."
  | Some funcs ->
      List.iter
        (fun f ->
          Format.fprintf ppf
            "  func %-16s entry 0x%x  %3d branches  digest %s  BSV %d / BCV %d / BAT %d bits@."
            f.fname f.entry_pc f.n_branches
            (String.sub f.digest 0 (min 12 (String.length f.digest)))
            f.sizes.Core.Tables.bsv_bits f.sizes.Core.Tables.bcv_bits
            f.sizes.Core.Tables.bat_bits)
        funcs
