(** Versioned, checksummed IPDS object files ("[.ipds]"), format v2.

    The paper's deployment model has the compiler attach the packed
    BSV/BCV/BAT images to the binary and the IPDS unit load them at run
    time (§5).  An artifact is exactly that shippable image: a
    {!Object_file} container with —

    - ["code"]: the MIR program, printed by {!Ipds_mir.Printer} and
      parsed back by {!Ipds_mir.Parser};
    - ["layout"]: the code layout ({!Ipds_mir.Layout.entries}),
      bit-packed with {!Ipds_core.Bitstream};
    - ["index"]: per-function metadata (name, entry PC, branch count,
      content digest, checked-branch ids), bit-packed;
    - ["f0"], ["f1"], …: one packed table image per function, from
      {!Ipds_core.Encode.function_image}, in program order.

    Function granularity is what makes the incremental cache work: each
    function's tables live in their own section keyed (via the index) by
    the {!Ipds_core.System.func_digest} content digest, and the same
    per-function encoding is reused for the standalone blobs of the
    store's function tier ({!func_image}/{!func_of_image}).  The v1
    monolithic-["tables"] layout is gone; v1 files fail the container
    version check and load as a full cache miss.

    Loading rebuilds an {!Ipds_core.System.t} without running the MiniC
    front end or the correlation analysis: tables are decoded, the BAT
    edge/entry actions are reconstructed from the collision-free hash
    (slots map back to branch iids), and every redundant field is
    cross-checked against the code section — disagreement raises
    {!Object_file.Corrupt}.  The one lossy field is
    [result.depends] (analysis provenance, not needed by the runtime),
    which loads as [[]].

    Guarantee (tested): [load (save sys)] yields bit-identical
    {!Ipds_core.Tables.sizes} and a checker with identical verdicts. *)

exception Corrupt of string
(** Alias of {!Object_file.Corrupt}: any integrity failure — bad magic,
    version skew, digest/CRC mismatch, malformed or inconsistent
    sections. *)

val to_bytes : Ipds_core.System.t -> Bytes.t
val of_bytes : Bytes.t -> Ipds_core.System.t

val save_file : string -> Ipds_core.System.t -> unit
(** Atomic: temp file + rename. *)

val load_file : string -> Ipds_core.System.t
(** Raises {!Corrupt} or [Sys_error]. *)

val is_artifact_file : string -> bool
(** Sniffs the {!Object_file.magic} (false for unreadable files). *)

(** {2 Single-function blobs}

    The store's function-granular cache tier: one function's metadata
    and packed tables in a self-checking container, addressed by its
    content digest. *)

val func_image : Ipds_core.System.func_info -> Bytes.t

val func_of_image :
  digest:string ->
  layout:Ipds_mir.Layout.t ->
  Ipds_mir.Func.t ->
  Bytes.t ->
  Ipds_core.System.func_info
(** Decode a blob previously written by {!func_image} for a function
    whose current content digest is [digest].  Raises {!Corrupt} on any
    integrity failure or if the blob does not match the function
    ([digest], name, entry PC under the current layout, branch
    population) — callers treat that as a cache miss. *)

(** {2 Inspection} *)

type func_summary = {
  fname : string;
  entry_pc : int;
  n_branches : int;
  digest : string;
  sizes : Ipds_core.Tables.sizes;
}

type inspection = {
  file : Object_file.info;
  funcs : func_summary list option;
      (** [None] when the tables/code sections are too damaged to decode *)
}

val inspect_bytes : Bytes.t -> inspection
(** Raises {!Corrupt} only if the container header is unreadable;
    per-section damage is reported in {!Object_file.info}. *)

val inspect_file : string -> inspection
val pp_inspection : Format.formatter -> inspection -> unit
