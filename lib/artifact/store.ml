module Corr = Ipds_correlation

type t = { dir : string }

let create ~dir = { dir }
let dir t = t.dir

(* ---------- counters ----------

   Backed by the observability registry: event counts are stable (the
   multiset of cache interactions is fixed by the memoised build set),
   wall-clock goes to spans.  [counters]/[reset_counters] remain as the
   store's public read/reset view over those metrics. *)

let m_hits = Ipds_obs.Registry.counter "store.hits"
let m_misses = Ipds_obs.Registry.counter "store.misses"
let m_corrupt = Ipds_obs.Registry.counter "store.corrupt"
let m_fn_hits = Ipds_obs.Registry.counter "store.fn_hits"
let m_fn_misses = Ipds_obs.Registry.counter "store.fn_misses"
let m_fn_precision_misses = Ipds_obs.Registry.counter "store.fn_precision_misses"
let m_fn_corrupt = Ipds_obs.Registry.counter "store.fn_corrupt"
let m_collisions = Ipds_obs.Registry.counter "store.collisions"
let m_publish_failed = Ipds_obs.Registry.counter "store.publish_failed"
let m_bytes_read = Ipds_obs.Registry.counter "store.bytes_read"
let m_bytes_written = Ipds_obs.Registry.counter "store.bytes_written"
let span_load = "store.load"
let span_publish = "store.publish"

type counters = {
  hits : int;
  misses : int;
  corrupt : int;
  fn_hits : int;
  fn_misses : int;
  fn_precision_misses : int;
  fn_corrupt : int;
  collisions : int;
  publish_failed : int;
  bytes_read : int;
  bytes_written : int;
  load_seconds : float;
  store_seconds : float;
}

let counters () =
  let v = Ipds_obs.Registry.counter_value in
  let seconds name = snd (Ipds_obs.Span.get name) in
  {
    hits = v m_hits;
    misses = v m_misses;
    corrupt = v m_corrupt;
    fn_hits = v m_fn_hits;
    fn_misses = v m_fn_misses;
    fn_precision_misses = v m_fn_precision_misses;
    fn_corrupt = v m_fn_corrupt;
    collisions = v m_collisions;
    publish_failed = v m_publish_failed;
    bytes_read = v m_bytes_read;
    bytes_written = v m_bytes_written;
    load_seconds = seconds span_load;
    store_seconds = seconds span_publish;
  }

let reset_counters () =
  List.iter Ipds_obs.Registry.counter_reset
    [
      m_hits;
      m_misses;
      m_corrupt;
      m_fn_hits;
      m_fn_misses;
      m_fn_precision_misses;
      m_fn_corrupt;
      m_collisions;
      m_publish_failed;
      m_bytes_read;
      m_bytes_written;
    ];
  Ipds_obs.Span.clear span_load;
  Ipds_obs.Span.clear span_publish

(* ---------- keys & paths ---------- *)

let options_fingerprint = Corr.Analysis.options_fingerprint

let key ~source ~promote ~options =
  Sha256.hex_string
    (String.concat "\x00"
       [
         "ipds-artifact";
         string_of_int Object_file.format_version;
         Printf.sprintf "promote=%b" promote;
         options_fingerprint options;
         source;
       ])

(* Keys reach this layer over the wire (artifact fetch/push frames), so
   their shape is validated here at the path boundary instead of letting
   [String.sub]/[Filename] fail deep inside: 2..128 chars, filename-safe
   alphabet, no leading dot — which rules out traversal ("../x"),
   separators and control bytes while still admitting both SHA-256 hex
   keys and the human-readable keys tests publish under. *)
let valid_key k =
  let n = String.length k in
  n >= 2 && n <= 128
  && k.[0] <> '.'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       k

let path_of_key t key =
  if not (valid_key key) then
    invalid_arg (Printf.sprintf "Store.path_of_key: malformed key %S" key);
  Filename.concat t.dir (Filename.concat (String.sub key 0 2) (key ^ ".ipds"))

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()  (* lost a race: fine *)
  end

(* ---------- load / publish ---------- *)

(* A failed read is only a plain miss when the entry does not exist;
   EACCES/EIO/EISDIR on an existing path is a damaged cache that would
   otherwise silently recompile forever. *)
let read_fault path msg =
  match Unix.access path [ Unix.F_OK ] with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
  | exception Unix.Unix_error (e, _, _) -> Some (Unix.error_message e)
  | () -> Some msg

let emit_corrupt ~kind path reason =
  if Ipds_obs.Events.enabled () then
    Ipds_obs.Events.emit ~kind
      [
        ("path", Ipds_obs.Json.String path);
        ("reason", Ipds_obs.Json.String reason);
      ]

(* the common load shape: None = plain miss, Some (`Hit v) /
   Some (`Corrupt reason) from the decoder *)
let load_entry path ~decode ~m_hit ~m_miss ~m_bad ~corrupt_kind =
  match Object_file.read_file path with
  | exception Sys_error msg -> (
      match read_fault path msg with
      | None ->
          Ipds_obs.Registry.incr m_miss;
          `Miss
      | Some reason ->
          Ipds_obs.Registry.incr m_miss;
          Ipds_obs.Registry.incr m_bad;
          emit_corrupt ~kind:corrupt_kind path reason;
          `Corrupt reason)
  | bytes -> (
      match decode bytes with
      | v ->
          Ipds_obs.Registry.incr m_hit;
          Ipds_obs.Registry.add m_bytes_read (Bytes.length bytes);
          `Hit v
      | exception Artifact.Corrupt reason ->
          Ipds_obs.Registry.incr m_miss;
          Ipds_obs.Registry.incr m_bad;
          emit_corrupt ~kind:corrupt_kind path reason;
          `Corrupt reason)

let load_system t key =
  if not (valid_key key) then begin
    Ipds_obs.Registry.incr m_misses;
    None
  end
  else
    let path = path_of_key t key in
    Ipds_obs.Span.time span_load (fun () ->
        match
          load_entry path ~decode:Artifact.of_bytes ~m_hit:m_hits
            ~m_miss:m_misses ~m_bad:m_corrupt ~corrupt_kind:"store.corrupt"
        with
        | `Hit sys -> Some sys
        | `Miss | `Corrupt _ -> None)

let fetch_image t key =
  if not (valid_key key) then `Miss
  else
    let path = path_of_key t key in
    Ipds_obs.Span.time span_load (fun () ->
        match
          load_entry path
            ~decode:(fun bytes ->
              ignore (Artifact.of_bytes bytes : Ipds_core.System.t);
              bytes)
            ~m_hit:m_hits ~m_miss:m_misses ~m_bad:m_corrupt
            ~corrupt_kind:"store.corrupt"
        with
        | `Hit bytes -> `Image bytes
        | `Miss -> `Miss
        | `Corrupt reason -> `Corrupt reason)

(* The collision-detection table: the entry already stored at the
   hashed path is the table row for this key.  On a hash hit the bytes
   are compared before anything is trusted or replaced — identical
   bytes are the expected dedup case, a valid-but-different entry is a
   detected collision (counted and kept: first writer wins, loudly,
   never silent reuse), and an undecodable entry is damage to repair. *)
let publish_image_at path bytes =
  let previous =
    match Object_file.read_file path with
    | existing ->
        if Bytes.equal existing bytes then `Duplicate
        else if
          match Object_file.of_bytes existing with
          | (_ : (string * Bytes.t) list) -> true
          | exception Object_file.Corrupt _ -> false
        then `Collision
        else `Damaged
    | exception Sys_error _ -> `Absent
  in
  match previous with
  | `Duplicate -> `Duplicate
  | `Collision ->
      Ipds_obs.Registry.incr m_collisions;
      if Ipds_obs.Events.enabled () then
        Ipds_obs.Events.emit ~kind:"store.collision"
          [ ("path", Ipds_obs.Json.String path) ];
      `Collision
  | `Absent | `Damaged -> (
      match
        mkdirs (Filename.dirname path);
        Object_file.write_file_atomic path bytes;
        Bytes.length bytes
      with
      | written ->
          Ipds_obs.Registry.add m_bytes_written written;
          if Ipds_obs.Events.enabled () then
            Ipds_obs.Events.emit ~kind:"store.publish"
              [
                ("path", Ipds_obs.Json.String path);
                ("bytes", Ipds_obs.Json.Int written);
              ];
          `Stored
      | exception Sys_error msg ->
          Ipds_obs.Registry.incr m_publish_failed;
          if Ipds_obs.Events.enabled () then
            Ipds_obs.Events.emit ~kind:"store.publish_failed"
              [
                ("path", Ipds_obs.Json.String path);
                ("reason", Ipds_obs.Json.String msg);
              ];
          `Failed msg)

let publish_image t key bytes =
  if not (valid_key key) then `Failed "malformed key"
  else
    Ipds_obs.Span.time span_publish (fun () ->
        publish_image_at (path_of_key t key) bytes)

let publish_system t key sys =
  ignore (publish_image t key (Artifact.to_bytes sys))

(* ---------- function tier ----------

   Single-function blobs under <dir>/fn/, addressed by the function's
   content digest ({!Ipds_core.System.func_digest}) plus the artifact
   format version.  [System.build] consults this tier through
   {!func_cache} before running the analyze/tables passes, so after a
   one-function edit only that function is re-analyzed. *)

let fn_path t digest =
  let key =
    Sha256.hex_string
      (String.concat "\x00"
         [ "ipds-fn"; string_of_int Object_file.format_version; digest ])
  in
  Filename.concat t.dir
    (Filename.concat "fn"
       (Filename.concat (String.sub key 0 2) (key ^ ".ipds")))

let load_func t ~digest ~layout f =
  let path = fn_path t digest in
  Ipds_obs.Span.time span_load (fun () ->
      match
        load_entry path
          ~decode:(Artifact.func_of_image ~digest ~layout f)
          ~m_hit:m_fn_hits ~m_miss:m_fn_misses ~m_bad:m_fn_corrupt
          ~corrupt_kind:"store.fn_corrupt"
      with
      | `Hit info -> Some info
      | `Miss | `Corrupt _ -> None)

let publish_func t ~digest info =
  let path = fn_path t digest in
  Ipds_obs.Span.time span_publish (fun () ->
      ignore (publish_image_at path (Artifact.func_image info)))

let func_cache ?(precision = false) t =
  {
    Ipds_core.System.lookup =
      (fun ~digest ~layout f ->
        match load_func t ~digest ~layout f with
        | Some _ as hit -> hit
        | None ->
            (* misses attributable to a precision-bearing digest get their
               own counter, so a config flip shows up as clean fn misses *)
            if precision then
              Ipds_obs.Registry.incr m_fn_precision_misses;
            None);
    publish = (fun ~digest info -> publish_func t ~digest info);
  }

(* ---------- ambient store ---------- *)

let ambient_mutex = Mutex.create ()
let ambient_state : t option option ref = ref None  (* None = uninitialised *)

let set_ambient_dir d =
  Mutex.lock ambient_mutex;
  ambient_state := Some (Option.map (fun dir -> create ~dir) d);
  Mutex.unlock ambient_mutex

let ambient () =
  Mutex.lock ambient_mutex;
  let v =
    match !ambient_state with
    | Some v -> v
    | None ->
        let v =
          match Sys.getenv_opt "IPDS_CACHE_DIR" with
          | Some dir when dir <> "" -> Some (create ~dir)
          | _ -> None
        in
        ambient_state := Some v;
        v
  in
  Mutex.unlock ambient_mutex;
  v
