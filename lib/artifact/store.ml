module Corr = Ipds_correlation

type t = { dir : string }

let create ~dir = { dir }
let dir t = t.dir

(* ---------- counters ---------- *)

type counters = {
  hits : int;
  misses : int;
  corrupt : int;
  bytes_read : int;
  bytes_written : int;
  load_seconds : float;
  store_seconds : float;
}

let zero =
  {
    hits = 0;
    misses = 0;
    corrupt = 0;
    bytes_read = 0;
    bytes_written = 0;
    load_seconds = 0.;
    store_seconds = 0.;
  }

let counters_mutex = Mutex.create ()
let state = ref zero

let tally f =
  Mutex.lock counters_mutex;
  state := f !state;
  Mutex.unlock counters_mutex

let counters () =
  Mutex.lock counters_mutex;
  let c = !state in
  Mutex.unlock counters_mutex;
  c

let reset_counters () = tally (fun _ -> zero)

(* ---------- keys & paths ---------- *)

let options_fingerprint (o : Corr.Analysis.options) =
  Printf.sprintf "store_load=%b;load_load=%b;affine=%b;summary=%s"
    o.Corr.Analysis.store_load o.Corr.Analysis.load_load
    o.Corr.Analysis.affine_tracing
    (match o.Corr.Analysis.summary_mode with
    | `Faithful -> "faithful"
    | `Precise_globals -> "precise-globals")

let key ~source ~promote ~options =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            "ipds-artifact";
            string_of_int Object_file.format_version;
            Printf.sprintf "promote=%b" promote;
            options_fingerprint options;
            source;
          ]))

let path_of_key t key =
  Filename.concat t.dir (Filename.concat (String.sub key 0 2) (key ^ ".ipds"))

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()  (* lost a race: fine *)
  end

(* ---------- load / publish ---------- *)

let load_system t key =
  let path = path_of_key t key in
  let t0 = Unix.gettimeofday () in
  match Object_file.read_file path with
  | exception Sys_error _ ->
      tally (fun c -> { c with misses = c.misses + 1 });
      None
  | bytes -> (
      match Artifact.of_bytes bytes with
      | sys ->
          tally (fun c ->
              {
                c with
                hits = c.hits + 1;
                bytes_read = c.bytes_read + Bytes.length bytes;
                load_seconds = c.load_seconds +. Unix.gettimeofday () -. t0;
              });
          Some sys
      | exception Artifact.Corrupt _ ->
          tally (fun c ->
              { c with misses = c.misses + 1; corrupt = c.corrupt + 1 });
          None)

let publish_system t key sys =
  let t0 = Unix.gettimeofday () in
  let path = path_of_key t key in
  match
    mkdirs (Filename.dirname path);
    let bytes = Artifact.to_bytes sys in
    Object_file.write_file_atomic path bytes;
    Bytes.length bytes
  with
  | written ->
      tally (fun c ->
          {
            c with
            bytes_written = c.bytes_written + written;
            store_seconds = c.store_seconds +. Unix.gettimeofday () -. t0;
          })
  | exception Sys_error _ -> ()  (* read-only or full cache dir: skip *)

(* ---------- ambient store ---------- *)

let ambient_mutex = Mutex.create ()
let ambient_state : t option option ref = ref None  (* None = uninitialised *)

let set_ambient_dir d =
  Mutex.lock ambient_mutex;
  ambient_state := Some (Option.map (fun dir -> create ~dir) d);
  Mutex.unlock ambient_mutex

let ambient () =
  Mutex.lock ambient_mutex;
  let v =
    match !ambient_state with
    | Some v -> v
    | None ->
        let v =
          match Sys.getenv_opt "IPDS_CACHE_DIR" with
          | Some dir when dir <> "" -> Some (create ~dir)
          | _ -> None
        in
        ambient_state := Some v;
        v
  in
  Mutex.unlock ambient_mutex;
  v
