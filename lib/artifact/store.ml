module Corr = Ipds_correlation

type t = { dir : string }

let create ~dir = { dir }
let dir t = t.dir

(* ---------- counters ----------

   Backed by the observability registry: event counts are stable (the
   multiset of cache interactions is fixed by the memoised build set),
   wall-clock goes to spans.  [counters]/[reset_counters] remain as the
   store's public read/reset view over those metrics. *)

let m_hits = Ipds_obs.Registry.counter "store.hits"
let m_misses = Ipds_obs.Registry.counter "store.misses"
let m_corrupt = Ipds_obs.Registry.counter "store.corrupt"
let m_fn_hits = Ipds_obs.Registry.counter "store.fn_hits"
let m_fn_misses = Ipds_obs.Registry.counter "store.fn_misses"
let m_fn_corrupt = Ipds_obs.Registry.counter "store.fn_corrupt"
let m_bytes_read = Ipds_obs.Registry.counter "store.bytes_read"
let m_bytes_written = Ipds_obs.Registry.counter "store.bytes_written"
let span_load = "store.load"
let span_publish = "store.publish"

type counters = {
  hits : int;
  misses : int;
  corrupt : int;
  fn_hits : int;
  fn_misses : int;
  fn_corrupt : int;
  bytes_read : int;
  bytes_written : int;
  load_seconds : float;
  store_seconds : float;
}

let counters () =
  let v = Ipds_obs.Registry.counter_value in
  let seconds name = snd (Ipds_obs.Span.get name) in
  {
    hits = v m_hits;
    misses = v m_misses;
    corrupt = v m_corrupt;
    fn_hits = v m_fn_hits;
    fn_misses = v m_fn_misses;
    fn_corrupt = v m_fn_corrupt;
    bytes_read = v m_bytes_read;
    bytes_written = v m_bytes_written;
    load_seconds = seconds span_load;
    store_seconds = seconds span_publish;
  }

let reset_counters () =
  List.iter Ipds_obs.Registry.counter_reset
    [
      m_hits;
      m_misses;
      m_corrupt;
      m_fn_hits;
      m_fn_misses;
      m_fn_corrupt;
      m_bytes_read;
      m_bytes_written;
    ];
  Ipds_obs.Span.clear span_load;
  Ipds_obs.Span.clear span_publish

(* ---------- keys & paths ---------- *)

let options_fingerprint = Corr.Analysis.options_fingerprint

let key ~source ~promote ~options =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            "ipds-artifact";
            string_of_int Object_file.format_version;
            Printf.sprintf "promote=%b" promote;
            options_fingerprint options;
            source;
          ]))

let path_of_key t key =
  Filename.concat t.dir (Filename.concat (String.sub key 0 2) (key ^ ".ipds"))

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()  (* lost a race: fine *)
  end

(* ---------- load / publish ---------- *)

let load_system t key =
  let path = path_of_key t key in
  Ipds_obs.Span.time span_load (fun () ->
      match Object_file.read_file path with
      | exception Sys_error _ ->
          Ipds_obs.Registry.incr m_misses;
          None
      | bytes -> (
          match Artifact.of_bytes bytes with
          | sys ->
              Ipds_obs.Registry.incr m_hits;
              Ipds_obs.Registry.add m_bytes_read (Bytes.length bytes);
              Some sys
          | exception Artifact.Corrupt reason ->
              Ipds_obs.Registry.incr m_misses;
              Ipds_obs.Registry.incr m_corrupt;
              if Ipds_obs.Events.enabled () then
                Ipds_obs.Events.emit ~kind:"store.corrupt"
                  [
                    ("path", Ipds_obs.Json.String path);
                    ("reason", Ipds_obs.Json.String reason);
                  ];
              None))

let publish_system t key sys =
  let path = path_of_key t key in
  Ipds_obs.Span.time span_publish (fun () ->
      match
        mkdirs (Filename.dirname path);
        let bytes = Artifact.to_bytes sys in
        Object_file.write_file_atomic path bytes;
        Bytes.length bytes
      with
      | written ->
          Ipds_obs.Registry.add m_bytes_written written;
          if Ipds_obs.Events.enabled () then
            Ipds_obs.Events.emit ~kind:"store.publish"
              [
                ("path", Ipds_obs.Json.String path);
                ("bytes", Ipds_obs.Json.Int written);
              ]
      | exception Sys_error _ -> ()  (* read-only or full cache dir: skip *))

(* ---------- function tier ----------

   Single-function blobs under <dir>/fn/, addressed by the function's
   content digest ({!Ipds_core.System.func_digest}) plus the artifact
   format version.  [System.build] consults this tier through
   {!func_cache} before running the analyze/tables passes, so after a
   one-function edit only that function is re-analyzed. *)

let fn_path t digest =
  let key =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            [ "ipds-fn"; string_of_int Object_file.format_version; digest ]))
  in
  Filename.concat t.dir
    (Filename.concat "fn"
       (Filename.concat (String.sub key 0 2) (key ^ ".ipds")))

let load_func t ~digest ~layout f =
  let path = fn_path t digest in
  Ipds_obs.Span.time span_load (fun () ->
      match Object_file.read_file path with
      | exception Sys_error _ ->
          Ipds_obs.Registry.incr m_fn_misses;
          None
      | bytes -> (
          match Artifact.func_of_image ~digest ~layout f bytes with
          | info ->
              Ipds_obs.Registry.incr m_fn_hits;
              Ipds_obs.Registry.add m_bytes_read (Bytes.length bytes);
              Some info
          | exception Artifact.Corrupt reason ->
              Ipds_obs.Registry.incr m_fn_misses;
              Ipds_obs.Registry.incr m_fn_corrupt;
              if Ipds_obs.Events.enabled () then
                Ipds_obs.Events.emit ~kind:"store.fn_corrupt"
                  [
                    ("path", Ipds_obs.Json.String path);
                    ("reason", Ipds_obs.Json.String reason);
                  ];
              None))

let publish_func t ~digest info =
  let path = fn_path t digest in
  Ipds_obs.Span.time span_publish (fun () ->
      match
        mkdirs (Filename.dirname path);
        let bytes = Artifact.func_image info in
        Object_file.write_file_atomic path bytes;
        Bytes.length bytes
      with
      | written -> Ipds_obs.Registry.add m_bytes_written written
      | exception Sys_error _ -> ())

let func_cache t =
  {
    Ipds_core.System.lookup =
      (fun ~digest ~layout f -> load_func t ~digest ~layout f);
    publish = (fun ~digest info -> publish_func t ~digest info);
  }

(* ---------- ambient store ---------- *)

let ambient_mutex = Mutex.create ()
let ambient_state : t option option ref = ref None  (* None = uninitialised *)

let set_ambient_dir d =
  Mutex.lock ambient_mutex;
  ambient_state := Some (Option.map (fun dir -> create ~dir) d);
  Mutex.unlock ambient_mutex

let ambient () =
  Mutex.lock ambient_mutex;
  let v =
    match !ambient_state with
    | Some v -> v
    | None ->
        let v =
          match Sys.getenv_opt "IPDS_CACHE_DIR" with
          | Some dir when dir <> "" -> Some (create ~dir)
          | _ -> None
        in
        ambient_state := Some v;
        v
  in
  Mutex.unlock ambient_mutex;
  v
