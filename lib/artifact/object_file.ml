exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "IPDSOBJF"

(* v3: the whole-file digest is SHA-256 (collision-resistant content
   addressing, a prerequisite for trusting artifacts fetched from fleet
   peers), growing the header from 32 to 48 bytes.  v2 files (16-byte
   MD5 digest at offset 16) and v1 files (monolithic "tables" section)
   fail the version check and load as a clean miss. *)
let format_version = 3
let header_bytes = 48
let digest_bytes = Sha256.digest_length
let entry_bytes = 20
let name_bytes = 8
let max_sections = 4096

type section_info = {
  s_name : string;
  s_offset : int;
  s_length : int;
  s_crc : int32;
  s_crc_ok : bool;
}

type info = {
  version : int;
  file_bytes : int;
  digest_hex : string;
  digest_ok : bool;
  legacy_md5_hex : string;
  sections : section_info list;
}

let to_bytes ~sections =
  List.iter
    (fun (name, _) ->
      if String.length name = 0 || String.length name > name_bytes then
        invalid_arg (Printf.sprintf "Object_file: bad section name %S" name))
    sections;
  if
    List.length (List.sort_uniq compare (List.map fst sections))
    <> List.length sections
  then invalid_arg "Object_file: duplicate section names";
  if List.length sections > max_sections then
    invalid_arg "Object_file: too many sections";
  let n = List.length sections in
  let table_off = header_bytes in
  let payload_off = table_off + (n * entry_bytes) in
  let total =
    List.fold_left (fun acc (_, p) -> acc + Bytes.length p) payload_off sections
  in
  let buf = Bytes.make total '\000' in
  Bytes.blit_string magic 0 buf 0 (String.length magic);
  Bytes.set_int32_le buf 8 (Int32.of_int format_version);
  Bytes.set_int32_le buf 12 (Int32.of_int n);
  let off = ref payload_off in
  List.iteri
    (fun i (name, payload) ->
      let e = table_off + (i * entry_bytes) in
      Bytes.blit_string name 0 buf e (String.length name);
      Bytes.set_int32_le buf (e + 8) (Int32.of_int !off);
      Bytes.set_int32_le buf (e + 12) (Int32.of_int (Bytes.length payload));
      Bytes.set_int32_le buf (e + 16) (Crc32.all payload);
      Bytes.blit payload 0 buf !off (Bytes.length payload);
      off := !off + Bytes.length payload)
    sections;
  let digest =
    Sha256.bytes buf ~pos:header_bytes ~len:(Bytes.length buf - header_bytes)
  in
  Bytes.blit_string digest 0 buf 16 digest_bytes;
  buf

(* header + section table, shared by the strict and forgiving readers *)
let read_table buf =
  let len = Bytes.length buf in
  if len < header_bytes then corrupt "truncated header (%d bytes)" len;
  if Bytes.sub_string buf 0 8 <> magic then corrupt "bad magic";
  let version = Int32.to_int (Bytes.get_int32_le buf 8) in
  if version <> format_version then
    corrupt "unsupported format version %d (expected %d)" version format_version;
  let n = Int32.to_int (Bytes.get_int32_le buf 12) in
  if n < 0 || n > max_sections then corrupt "implausible section count %d" n;
  if header_bytes + (n * entry_bytes) > len then corrupt "truncated section table";
  List.init n (fun i ->
      let e = header_bytes + (i * entry_bytes) in
      let name_raw = Bytes.sub_string buf e name_bytes in
      let name =
        match String.index_opt name_raw '\000' with
        | Some k -> String.sub name_raw 0 k
        | None -> name_raw
      in
      let offset = Int32.to_int (Bytes.get_int32_le buf (e + 8)) in
      let length = Int32.to_int (Bytes.get_int32_le buf (e + 12)) in
      let crc = Bytes.get_int32_le buf (e + 16) in
      if
        offset < header_bytes + (n * entry_bytes)
        || length < 0
        || offset + length > len
      then corrupt "section %s out of bounds" name;
      (name, offset, length, crc))

let digest_ok buf =
  let stored = Bytes.sub_string buf 16 digest_bytes in
  let actual =
    Sha256.bytes buf ~pos:header_bytes ~len:(Bytes.length buf - header_bytes)
  in
  String.equal stored actual

let of_bytes buf =
  let entries = read_table buf in
  if not (digest_ok buf) then corrupt "whole-file digest mismatch";
  List.map
    (fun (name, offset, length, crc) ->
      if Crc32.bytes buf ~pos:offset ~len:length <> crc then
        corrupt "CRC mismatch in section %s" name;
      (name, Bytes.sub buf offset length))
    entries

let info_of_bytes buf =
  let entries = read_table buf in
  {
    version = Int32.to_int (Bytes.get_int32_le buf 8);
    file_bytes = Bytes.length buf;
    digest_hex = Sha256.to_hex (Bytes.sub_string buf 16 digest_bytes);
    digest_ok = digest_ok buf;
    legacy_md5_hex =
      Digest.to_hex
        (Digest.subbytes buf header_bytes (Bytes.length buf - header_bytes));
    sections =
      List.map
        (fun (name, offset, length, crc) ->
          {
            s_name = name;
            s_offset = offset;
            s_length = length;
            s_crc = crc;
            s_crc_ok = Crc32.bytes buf ~pos:offset ~len:length = crc;
          })
        entries;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let buf = Bytes.create n in
      really_input ic buf 0 n;
      buf)

let write_file_atomic path buf =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "ipds-obj" ".tmp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_bytes oc buf);
      Sys.rename tmp path)
