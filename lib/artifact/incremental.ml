module Core = Ipds_core

let system ?options ?pool store ~key compile =
  match Store.load_system store key with
  | Some sys -> sys
  | None ->
      let program = compile () in
      let sys =
        Core.System.build ?options ?pool ~func_cache:(Store.func_cache store)
          program
      in
      Store.publish_system store key sys;
      sys
