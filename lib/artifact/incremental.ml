module Core = Ipds_core
module Corr = Ipds_correlation

let system ?options ?pool store ~key compile =
  match Store.load_system store key with
  | Some sys -> sys
  | None ->
      let program = compile () in
      let precision =
        match options with
        | Some o -> o.Corr.Analysis.precision <> Corr.Analysis.Off
        | None -> false
      in
      let sys =
        Core.System.build ?options ?pool
          ~func_cache:(Store.func_cache ~precision store)
          program
      in
      Store.publish_system store key sys;
      sys
