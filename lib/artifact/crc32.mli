(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.

    Every section of an IPDS object file carries its CRC in the section
    table so a flipped bit anywhere in the payload is detected at load
    time and turned into a cache miss, never silently wrong tables. *)

val bytes : Bytes.t -> pos:int -> len:int -> int32
(** CRC of [len] bytes starting at [pos].  Raises [Invalid_argument] on
    an out-of-bounds range. *)

val all : Bytes.t -> int32
val string : string -> int32
