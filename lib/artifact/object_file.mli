(** The generic container of an IPDS object file: magic, format version
    and a checksummed section table.

    Layout (all integers little-endian):
    {v
    0   8   magic "IPDSOBJF"
    8   4   format version (u32)
    12  4   section count (u32)
    16  32  SHA-256 digest of everything from byte 48 to end of file
    48  20n section table: 8-byte NUL-padded name, u32 offset,
            u32 length, u32 CRC-32 of the payload
    ...     payloads, in table order
    v}

    The digest is the file's content address: collision-resistant, so a
    byte-identical digest from an untrusted peer names byte-identical
    content.  v2 files carried a 16-byte MD5 there; they fail the
    version check and load as a clean miss (the store rebuilds them).

    {!of_bytes} verifies the magic, version, whole-file digest and every
    section CRC; any mismatch raises {!Corrupt}, which the store layer
    treats as a cache miss.  {!info_of_bytes} is the forgiving variant
    for [ipds inspect]: it reports per-section CRC status instead of
    raising, so a corrupted file can still be described. *)

exception Corrupt of string

val magic : string
val format_version : int

val header_bytes : int
(** Fixed header size (everything before the section table). *)

val digest_bytes : int
(** Size of the whole-file digest stored at offset 16 (32: SHA-256). *)

val to_bytes : sections:(string * Bytes.t) list -> Bytes.t
(** Section names must be 1–8 bytes and unique; raises
    [Invalid_argument] otherwise. *)

val of_bytes : Bytes.t -> (string * Bytes.t) list
(** Fully verified sections in file order; raises {!Corrupt}. *)

type section_info = {
  s_name : string;
  s_offset : int;
  s_length : int;
  s_crc : int32;
  s_crc_ok : bool;
}

type info = {
  version : int;
  file_bytes : int;
  digest_hex : string;  (** SHA-256 digest stored in the header *)
  digest_ok : bool;
  legacy_md5_hex : string;
      (** computed MD5 of the same region — the address a v2 store
          would have used, printed by [ipds inspect] so operators can
          correlate entries across the format upgrade *)
  sections : section_info list;
}

val info_of_bytes : Bytes.t -> info
(** Raises {!Corrupt} only when the header or section table itself is
    unreadable (bad magic, truncated table). *)

val read_file : string -> Bytes.t
(** Raises [Sys_error] on IO failure. *)

val write_file_atomic : string -> Bytes.t -> unit
(** Write to a unique temporary file in the destination directory, then
    [Sys.rename] over the target — readers never observe a torn file. *)
