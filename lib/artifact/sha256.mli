(** SHA-256 (FIPS 180-4), pure OCaml over [Bytes].

    This is the collision-resistant content address for everything the
    artifact layer trusts across a machine boundary: store keys, the
    whole-file digest of v3 {!Object_file} containers, and the identity
    an artifact fetched from a fleet peer is verified against.  MD5 and
    CRC-32 remain only where they guard against bit-rot, never where
    they name content.

    Domain-safe and allocation-free per compression round; digests of
    the same bytes are identical across processes and platforms. *)

val digest_length : int
(** 32. *)

val bytes : Bytes.t -> pos:int -> len:int -> string
(** Raw 32-byte digest of [len] bytes starting at [pos]; raises
    [Invalid_argument] when the range is out of bounds. *)

val all : Bytes.t -> string
val string : string -> string

val to_hex : string -> string
(** Lowercase hex of a raw digest (or any string). *)

val hex_bytes : Bytes.t -> string
val hex_string : string -> string
