(* FIPS 180-4 SHA-256, pure OCaml over [Bytes].

   Same implementation discipline as {!Crc32}: everything is eagerly
   initialised plain-[int] arithmetic (no [lazy], no boxed [Int32] in
   the compression loop), so the module is domain-safe for any
   [--jobs > 1] artifact path and allocation-free per round.  Native
   63-bit ints hold every 32-bit intermediate exactly; results are
   masked back to 32 bits after each addition. *)

let digest_length = 32
let mask = 0xFFFF_FFFF

(* first 32 bits of the fractional parts of the cube roots of the
   first 64 primes (FIPS 180-4 §4.2.2) *)
let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* one 64-byte block at [pos]; [w] is caller-provided scratch so a
   multi-block message reuses one schedule array *)
let process h w buf pos =
  for t = 0 to 15 do
    w.(t) <-
      (Bytes.get_uint8 buf (pos + (4 * t)) lsl 24)
      lor (Bytes.get_uint8 buf (pos + (4 * t) + 1) lsl 16)
      lor (Bytes.get_uint8 buf (pos + (4 * t) + 2) lsl 8)
      lor Bytes.get_uint8 buf (pos + (4 * t) + 3)
  done;
  for t = 16 to 63 do
    let x = w.(t - 15) and y = w.(t - 2) in
    let s0 = rotr x 7 lxor rotr x 18 lxor (x lsr 3) in
    let s1 = rotr y 17 lxor rotr y 19 lxor (y lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask
  done;
  let a = ref h.(0)
  and b = ref h.(1)
  and c = ref h.(2)
  and d = ref h.(3)
  and e = ref h.(4)
  and f = ref h.(5)
  and g = ref h.(6)
  and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let bytes buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Sha256.bytes: range out of bounds";
  let h =
    [|
      0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
      0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
    |]
  in
  let w = Array.make 64 0 in
  let full = len / 64 in
  for b = 0 to full - 1 do
    process h w buf (pos + (64 * b))
  done;
  (* padding: 0x80, zeros, 8-byte big-endian bit length (§5.1.1) *)
  let rem = len - (64 * full) in
  let tail = Bytes.make (if rem >= 56 then 128 else 64) '\000' in
  Bytes.blit buf (pos + (64 * full)) tail 0 rem;
  Bytes.set_uint8 tail rem 0x80;
  let bits = len * 8 and tl = Bytes.length tail in
  for i = 0 to 7 do
    Bytes.set_uint8 tail (tl - 1 - i) ((bits lsr (8 * i)) land 0xFF)
  done;
  process h w tail 0;
  if tl = 128 then process h w tail 64;
  String.init digest_length (fun i ->
      Char.chr ((h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xFF))

let all buf = bytes buf ~pos:0 ~len:(Bytes.length buf)
let string s = all (Bytes.of_string s)

let to_hex d =
  let hex = "0123456789abcdef" in
  String.init
    (2 * String.length d)
    (fun i ->
      let b = Char.code d.[i / 2] in
      hex.[if i mod 2 = 0 then b lsr 4 else b land 0xF])

let hex_bytes buf = to_hex (all buf)
let hex_string s = to_hex (string s)
