module Core = Ipds_core
module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool

type level =
  | O0
  | O1
  | O2

let label = function
  | O0 -> "O0 (all memory)"
  | O1 -> "O1 (promotion)"
  | O2 -> "O2 (opt+promotion)"

(* O0/O1 are memoised by Workloads; the O2 pipeline is memoised here so
   the optimization passes also run once per workload per process. *)
let o2_cache : (string, Ipds_mir.Program.t) Ipds_parallel.Memo.t =
  Ipds_parallel.Memo.create ()

let compile level w =
  match level with
  | O0 -> W.program ~promote:false w
  | O1 -> W.program w
  | O2 ->
      Ipds_parallel.Memo.find_or_add o2_cache w.W.name (fun () ->
          Ipds_opt.Promote.program
            (Ipds_opt.Passes.optimize (W.program ~promote:false w)))

type row = {
  level : string;
  avg_detected : float;
  detected_given_cf : float;
  avg_cf_changed : float;
  checked_branches : int;
  total_branches : int;
}

let run_level ?attacks ?seed ?pool level =
  (* O0/O1 ride the artifact-aware workload path; the O2 pipeline is
     process-local, so its tables come from the in-memory memo only. *)
  let summary =
    match level with
    | O0 -> Attack_experiment.run_all ~promote:false ?attacks ?seed ?pool ()
    | O1 -> Attack_experiment.run_all ?attacks ?seed ?pool ()
    | O2 ->
        Attack_experiment.run_all ~prepare:(compile O2) ?attacks ?seed ?pool ()
  in
  let system_of w =
    match level with
    | O0 -> W.system ~promote:false w
    | O1 -> W.system w
    | O2 -> Core.System.cached_build (compile O2 w)
  in
  let checked, total =
    Pool.map' pool
      (fun w ->
        let system = system_of w in
        ( Core.System.checked_branch_count system,
          Core.System.total_branch_count system ))
      W.all
    |> List.fold_left (fun (c, t) (checked, tot) -> (c + checked, t + tot)) (0, 0)
  in
  {
    level = label level;
    avg_detected = summary.Attack_experiment.avg_detected;
    detected_given_cf = summary.Attack_experiment.detected_given_cf;
    avg_cf_changed = summary.Attack_experiment.avg_cf_changed;
    checked_branches = checked;
    total_branches = total;
  }

let run_all ?attacks ?seed ?jobs ?pool () =
  Pool.with_opt ?jobs ?pool (fun pool ->
      List.map (run_level ?attacks ?seed ?pool) [ O0; O1; O2 ])

let render rows =
  Table.render
    ~header:[ "level"; "cf-changed"; "detected"; "detected|cf"; "checked/total" ]
    (List.map
       (fun r ->
         [
           r.level;
           Table.pct r.avg_cf_changed;
           Table.pct r.avg_detected;
           Table.pct r.detected_given_cf;
           Printf.sprintf "%d/%d" r.checked_branches r.total_branches;
         ])
       rows)
