(** The DME-baseline experiment: layout-diversified replicas as a
    detector, reported Fig-7-style next to IPDS.

    One attempt mirrors {!Attack_experiment}: run the benign server
    under a seeded input script, pick a random step and a random
    victim through the workload's own vulnerability class, and re-run
    tampered — once in the original layout (watched by the IPDS
    checker) and once replayed {e physically}, at the tampered cell's
    absolute address, in the decorrelated variant
    ({!Ipds_baseline.Dme.decorrelate}).  DME flags the attack when the
    two tampered variants disagree on canonical behaviour
    ({!Ipds_baseline.Dme.diverged}).

    Reported per workload: DME coverage and IPDS detection over the
    same injected attacks, DME false positives over held-out benign
    variant pairs (zero by construction — benign runs are
    layout-oblivious), and DME's runtime overhead (the variant pair's
    step total over the single-run baseline, ~2x).

    Campaigns draw from a [(seed, workload-name)]-salted RNG, so
    {!run_all}'s workload-level pool fan-out is deterministic for any
    job count. *)

type row = {
  workload : string;
  attacks : int;  (** attempts with an actual injection in the original *)
  cf_changed : int;
  dme_detected : int;
  ipds_detected : int;
  benign_diffs : int;  (** DME false positives over the holdout *)
  holdout : int;
  overhead : float;  (** mean (steps_A + steps_B) / steps_A, benign *)
}

val run : ?attacks:int -> ?holdout:int -> ?seed:int -> Ipds_workloads.Workloads.t -> row

val run_all :
  ?attacks:int ->
  ?holdout:int ->
  ?seed:int ->
  ?jobs:int ->
  ?pool:Ipds_parallel.Pool.t ->
  unit ->
  row list

val render : row list -> string
