module Corr = Ipds_correlation
module Core = Ipds_core
module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool

type variant = {
  label : string;
  options : Corr.Analysis.options;
}

let base = Corr.Analysis.default_options

let variants =
  [
    { label = "full"; options = base };
    { label = "no-load-load"; options = { base with Corr.Analysis.load_load = false } };
    {
      label = "no-store-load";
      options = { base with Corr.Analysis.store_load = false };
    };
    {
      label = "no-affine";
      options = { base with Corr.Analysis.affine_tracing = false };
    };
    {
      label = "precise-globals";
      options = { base with Corr.Analysis.summary_mode = `Precise_globals };
    };
  ]

type row = {
  label : string;
  avg_detected : float;
  detected_given_cf : float;
  checked_branches : int;
  avg_bat_bits : float;
}

let run_variant ?attacks ?seed ?pool v =
  let summary =
    Attack_experiment.run_all ~options:v.options ?attacks ?seed ?pool ()
  in
  let checked, bat_sum, bat_n =
    Pool.map' pool
      (fun w ->
        let system = W.system ~options:v.options w in
        let stats = Core.System.size_stats system in
        (Core.System.checked_branch_count system, stats.Core.System.avg_bat_bits))
      W.all
    |> List.fold_left
         (fun (c, s, n) (checked, bat) -> (c + checked, s +. bat, n + 1))
         (0, 0., 0)
  in
  {
    label = v.label;
    avg_detected = summary.Attack_experiment.avg_detected;
    detected_given_cf = summary.Attack_experiment.detected_given_cf;
    checked_branches = checked;
    avg_bat_bits = (if bat_n = 0 then 0. else bat_sum /. float_of_int bat_n);
  }

let run_all ?attacks ?seed ?jobs ?pool () =
  Pool.with_opt ?jobs ?pool (fun pool ->
      List.map (run_variant ?attacks ?seed ?pool) variants)

let render rows =
  Table.render
    ~header:
      [ "variant"; "detected"; "detected|cf"; "checked branches"; "avg BAT bits" ]
    (List.map
       (fun r ->
         [
           r.label;
           Table.pct r.avg_detected;
           Table.pct r.detected_given_cf;
           string_of_int r.checked_branches;
           Table.f1 r.avg_bat_bits;
         ])
       rows)
