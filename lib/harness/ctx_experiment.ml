module M = Ipds_machine
module P = Ipds_pipeline
module Core = Ipds_core
module W = Ipds_workloads.Workloads

type row = {
  period_cycles : int;
  switches : int;
  ipds_cycles : float;
  plain_ipds_cycles : float;
  overhead : float;
}

let run ?(config = P.Config.default) ?(seed = 42)
    ?(periods = [ 2_000; 5_000; 10_000; 25_000 ]) (w : W.t) =
  let system = W.system w in
  let program = system.Core.System.program in
  let measure ?ctx_switch_period () =
    let cpu = P.Cpu.create ~config ?ctx_switch_period ~system:(Some system) () in
    for i = 0 to 39 do
      ignore
        (M.Interp.run program
           {
             M.Interp.default_config with
             inputs = M.Input_script.random ~seed:(seed + i) ();
             observer = Some (P.Cpu.observer cpu);
             record_trace = false;
           })
    done;
    P.Cpu.finish cpu
  in
  let plain = measure () in
  List.map
    (fun period ->
      let r = measure ~ctx_switch_period:(float_of_int period) () in
      let switches =
        match r.P.Cpu.ipds with
        | Some s -> s.P.Cpu.context_switches
        | None -> 0
      in
      {
        period_cycles = period;
        switches;
        ipds_cycles = r.P.Cpu.cycles;
        plain_ipds_cycles = plain.P.Cpu.cycles;
        overhead = r.P.Cpu.cycles /. plain.P.Cpu.cycles;
      })
    periods

let render rows =
  Table.render
    ~header:[ "switch period"; "switches"; "cycles"; "vs no-switch" ]
    (List.map
       (fun r ->
         [
           string_of_int r.period_cycles;
           string_of_int r.switches;
           Printf.sprintf "%.0f" r.ipds_cycles;
           Printf.sprintf "%.4f" r.overhead;
         ])
       rows)
