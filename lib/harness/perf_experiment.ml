module M = Ipds_machine
module P = Ipds_pipeline
module Core = Ipds_core
module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool

type row = {
  workload : string;
  instructions : int;
  base_cycles : float;
  ipds_cycles : float;
  normalized : float;
  avg_detection_latency : float;
  spills : int;
  stall_cycles : float;
}

let run ?(config = P.Config.default) ?(seed = 42) ?(repeats = 5) (w : W.t) =
  let system = W.system w in
  let program = system.Core.System.program in
  let base_cpu = P.Cpu.create ~config ~system:None () in
  let ipds_cpu = P.Cpu.create ~config ~system:(Some system) () in
  for i = 0 to repeats - 1 do
    let run_with cpu =
      ignore
        (M.Interp.run program
           {
             M.Interp.default_config with
             inputs = M.Input_script.random ~seed:(seed + i) ();
             observer = Some (P.Cpu.observer cpu);
             record_trace = false;
           })
    in
    run_with base_cpu;
    run_with ipds_cpu
  done;
  let base = P.Cpu.finish base_cpu in
  let ipds = P.Cpu.finish ipds_cpu in
  let stats =
    match ipds.P.Cpu.ipds with
    | Some s -> s
    | None -> invalid_arg "Perf_experiment: missing ipds stats"
  in
  {
    workload = w.W.name;
    instructions = ipds.P.Cpu.instructions;
    base_cycles = base.P.Cpu.cycles;
    ipds_cycles = ipds.P.Cpu.cycles;
    normalized =
      (if base.P.Cpu.cycles > 0. then ipds.P.Cpu.cycles /. base.P.Cpu.cycles
       else 1.);
    avg_detection_latency = stats.P.Cpu.avg_detection_latency;
    spills = stats.P.Cpu.spills;
    stall_cycles = stats.P.Cpu.stall_cycles;
  }

(* Simulated cycle counts are deterministic per workload, so the fan-out
   is safe for any job count. *)
let run_all ?config ?seed ?repeats ?jobs ?pool () =
  Pool.with_opt ?jobs ?pool (fun pool ->
      Pool.map' pool (run ?config ?seed ?repeats) W.all)

let render rows =
  let mean fmt f =
    match Stats.mean (List.map f rows) with
    | None -> "n/a"
    | Some m -> fmt m
  in
  let body =
    List.map
      (fun r ->
        [
          r.workload;
          string_of_int r.instructions;
          Printf.sprintf "%.0f" r.base_cycles;
          Printf.sprintf "%.0f" r.ipds_cycles;
          Printf.sprintf "%.4f" r.normalized;
          Table.f1 r.avg_detection_latency;
          string_of_int r.spills;
        ])
      rows
  in
  let avg =
    [
      "AVERAGE";
      "";
      "";
      "";
      mean (Printf.sprintf "%.4f") (fun r -> r.normalized);
      mean Table.f1 (fun r -> r.avg_detection_latency);
      "";
    ]
  in
  Table.render
    ~header:
      [
        "benchmark"; "instr"; "base cycles"; "ipds cycles"; "normalized";
        "latency"; "spills";
      ]
    (body @ [ avg ])
