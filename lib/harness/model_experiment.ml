module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool

type row = {
  workload : string;
  overflow_cf : float;
  overflow_detected : float;
  arbitrary_cf : float;
  arbitrary_detected : float;
}

let frac a b = if b = 0 then 0. else float_of_int a /. float_of_int b

let run ?attacks ?seed ?pool (w : W.t) =
  let system = W.system w in
  let program = system.Ipds_core.System.program in
  let o =
    Attack_experiment.campaign ~system ?attacks ?seed ?pool
      ~model:`Stack_overflow ~name:w.W.name program
  in
  let a =
    Attack_experiment.campaign ~system ?attacks ?seed ?pool
      ~model:`Arbitrary_write ~name:w.W.name program
  in
  {
    workload = w.W.name;
    overflow_cf = frac o.Attack_experiment.cf_changed o.Attack_experiment.attacks;
    overflow_detected = frac o.Attack_experiment.detected o.Attack_experiment.attacks;
    arbitrary_cf = frac a.Attack_experiment.cf_changed a.Attack_experiment.attacks;
    arbitrary_detected = frac a.Attack_experiment.detected a.Attack_experiment.attacks;
  }

let run_all ?attacks ?seed ?jobs ?pool () =
  Pool.with_opt ?jobs ?pool (fun pool ->
      Pool.map' pool (run ?attacks ?seed ?pool) W.all)

let render rows =
  let mean f =
    match Stats.mean (List.map f rows) with
    | None -> "n/a"
    | Some m -> Table.pct m
  in
  let body =
    List.map
      (fun r ->
        [
          r.workload;
          Table.pct r.overflow_cf;
          Table.pct r.overflow_detected;
          Table.pct r.arbitrary_cf;
          Table.pct r.arbitrary_detected;
        ])
      rows
  in
  let avg =
    [
      "AVERAGE";
      mean (fun r -> r.overflow_cf);
      mean (fun r -> r.overflow_detected);
      mean (fun r -> r.arbitrary_cf);
      mean (fun r -> r.arbitrary_detected);
    ]
  in
  Table.render
    ~header:
      [
        "benchmark"; "overflow cf"; "overflow det"; "arbitrary cf"; "arbitrary det";
      ]
    (body @ [ avg ])
