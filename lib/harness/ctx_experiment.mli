(** Context-switch cost study (paper §5.4): the tables and vectors must be
    saved and restored when a protected process is switched; the design
    swaps the ~1K-bit top of stack synchronously and streams the rest in
    parallel with the new process.  This experiment sweeps the switch
    period and reports the resulting overhead on top of plain IPDS. *)

type row = {
  period_cycles : int;
  switches : int;
  ipds_cycles : float;  (** with context switches *)
  plain_ipds_cycles : float;  (** no context switches *)
  overhead : float;  (** ipds_cycles / plain_ipds_cycles *)
}

val run :
  ?config:Ipds_pipeline.Config.t ->
  ?seed:int ->
  ?periods:int list ->
  Ipds_workloads.Workloads.t ->
  row list
(** Default periods: 2k, 5k, 10k, 25k cycles (a real OS quantum
    at 1 GHz is on the order of a million cycles). *)

val render : row list -> string
