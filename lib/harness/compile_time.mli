(** The §6 compile-time note ("up to a few seconds per benchmark"): wall
    clock of the full IPDS compile-side pipeline per server, and the
    trial-and-error cost of the collision-free hash search. *)

type row = {
  workload : string;
  seconds : float;
  hash_attempts : int;  (** candidates examined across all functions *)
}

val run : Ipds_workloads.Workloads.t -> row
val run_all : unit -> row list
val render : row list -> string
