(** The §6 compile-time note ("up to a few seconds per benchmark"): wall
    clock of the full IPDS compile-side pipeline per server, and the
    trial-and-error cost of the collision-free hash search. *)

type row = {
  workload : string;
  seconds : float;
  hash_attempts : int;  (** candidates examined across all functions *)
}

val run : Ipds_workloads.Workloads.t -> row
val run_all : unit -> row list
val render : row list -> string

(** {2 Per-pass breakdown} *)

type pass_row = {
  pass : string;  (** stable pipeline name ({!Ipds_pass.Pass}) *)
  scope : string;  (** ["program"] or ["function"] *)
  units : int;  (** stable: units processed (fixed by the build set) *)
  seconds : float;  (** unstable: accumulated wall-clock *)
}

val run_all_with_passes : unit -> row list * pass_row list
(** {!run_all} plus the delta of every pipeline pass across it, in
    pipeline order — the per-pass compile-time breakdown the bench
    [compile-time] target reports. *)

val render_passes : pass_row list -> string
