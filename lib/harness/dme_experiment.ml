module M = Ipds_machine
module Core = Ipds_core
module B = Ipds_baseline
module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool

type row = {
  workload : string;
  attacks : int;
  cf_changed : int;
  dme_detected : int;
  ipds_detected : int;
  benign_diffs : int;
  holdout : int;
  overhead : float;
}

let config_for ?checker ?tamper ~input_seed () =
  {
    M.Interp.default_config with
    inputs = M.Input_script.random ~seed:input_seed ();
    checker;
    tamper;
    record_trace = false;
  }

let run ?(attacks = 100) ?(holdout = 30) ?(seed = 2006) (w : W.t) =
  let system = W.system w in
  let program = system.Core.System.program in
  let variant = B.Dme.decorrelate program in
  (* holdout: benign variant pairs must agree (DME false positives),
     and their step totals price the replica overhead *)
  let diffs = ref 0 and overhead_sum = ref 0.0 in
  for i = 0 to holdout - 1 do
    let a = B.Dme.run ~config:(config_for ~input_seed:(60_000 + i) ()) program in
    let b = B.Dme.run ~config:(config_for ~input_seed:(60_000 + i) ()) variant in
    if B.Dme.diverged (B.Dme.canonical a) (B.Dme.canonical b) then incr diffs;
    overhead_sum :=
      !overhead_sum
      +. (float_of_int (a.M.Interp.steps + b.M.Interp.steps)
         /. float_of_int (max 1 a.M.Interp.steps))
  done;
  (* attack campaign: same methodology as Attack_experiment, with the
     tamper replayed physically in the decorrelated variant *)
  let model =
    match W.tamper_model w with
    | `Stack_overflow -> M.Tamper.Stack_overflow
    | `Arbitrary_write -> M.Tamper.Arbitrary_write
  in
  let rng = Random.State.make [| seed; Hashtbl.hash w.W.name; 0xd13e |] in
  let injected = ref 0
  and cf = ref 0
  and dme_det = ref 0
  and ipds_det = ref 0 in
  let attempt = ref 0 in
  while !injected < attacks && !attempt < attacks * 4 do
    incr attempt;
    let input_seed = Random.State.bits rng land 0xffffff in
    let benign = M.Interp.run program (config_for ~input_seed ()) in
    if benign.M.Interp.steps > 2 then begin
      let lo = max 1 (benign.M.Interp.steps / 5) in
      let at_step = lo + Random.State.int rng (max 1 (benign.M.Interp.steps - lo)) in
      let value =
        if Random.State.bool rng then Random.State.int rng 8
        else Random.State.int rng 256
      in
      let tamper_seed = Random.State.bits rng land 0xffffff in
      let checker = Core.System.new_checker system in
      let attacked =
        M.Interp.run program
          (config_for ~checker ~input_seed
             ~tamper:
               {
                 M.Tamper.at_step;
                 site = M.Tamper.Mem_write { model; value };
                 seed = tamper_seed;
               }
             ())
      in
      match attacked.M.Interp.injection with
      | None | Some (M.Tamper.Flipped_branch _ | M.Tamper.Skipped_branch _) -> ()
      | Some (M.Tamper.Tampered_cell cell) ->
          incr injected;
          if M.Interp.control_flow_changed benign attacked then incr cf;
          if attacked.M.Interp.alarms <> [] then incr ipds_det;
          (* the same physical write, replayed in the other layout *)
          let replica =
            M.Interp.run variant
              (config_for ~input_seed
                 ~tamper:
                   {
                     M.Tamper.at_step;
                     site = M.Tamper.Mem_write_at { addr = cell.addr; value };
                     seed = tamper_seed;
                   }
                 ())
          in
          if B.Dme.diverged (B.Dme.canonical attacked) (B.Dme.canonical replica)
          then incr dme_det
    end
  done;
  {
    workload = w.W.name;
    attacks = !injected;
    cf_changed = !cf;
    dme_detected = !dme_det;
    ipds_detected = !ipds_det;
    benign_diffs = !diffs;
    holdout;
    overhead = !overhead_sum /. float_of_int (max 1 holdout);
  }

let run_all ?attacks ?holdout ?seed ?jobs ?pool () =
  Pool.with_opt ?jobs ?pool (fun pool ->
      Pool.map' pool (run ?attacks ?holdout ?seed) W.all)

let render rows =
  let frac num den = float_of_int num /. float_of_int (max 1 den) in
  let mean f =
    match Stats.mean (List.map f rows) with None -> "n/a" | Some m -> Table.pct m
  in
  let body =
    List.map
      (fun r ->
        [
          r.workload;
          Table.pct (frac r.benign_diffs r.holdout);
          Table.pct (frac r.dme_detected r.attacks);
          Table.f2 r.overhead;
          Table.pct (frac r.ipds_detected r.attacks);
        ])
      rows
  in
  let avg =
    [
      "AVERAGE";
      mean (fun r -> frac r.benign_diffs r.holdout);
      mean (fun r -> frac r.dme_detected r.attacks);
      (match Stats.mean (List.map (fun r -> r.overhead) rows) with
      | None -> "n/a"
      | Some m -> Table.f2 m);
      mean (fun r -> frac r.ipds_detected r.attacks);
    ]
  in
  Table.render
    ~header:
      [ "benchmark"; "DME FP rate"; "DME detected"; "DME overhead"; "IPDS detected" ]
    (body @ [ avg ])
