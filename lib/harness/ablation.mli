(** Ablation study over the analysis design choices DESIGN.md calls out:
    which correlation families and precision knobs contribute how much
    detection capability and table cost. *)

type variant = {
  label : string;
  options : Ipds_correlation.Analysis.options;
}

val variants : variant list
(** full, no-load-load, no-store-load, no-affine-tracing,
    precise-global-summaries. *)

type row = {
  label : string;
  avg_detected : float;
  detected_given_cf : float;
  checked_branches : int;  (** across all servers *)
  avg_bat_bits : float;
}

val run_all :
  ?attacks:int -> ?seed:int -> ?jobs:int -> ?pool:Ipds_parallel.Pool.t ->
  unit -> row list
val render : row list -> string
