(** Just enough JSON to emit machine-readable bench results without a
    new dependency.  Serialization only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty-printed with [indent] spaces per level (default 2).
    Non-finite floats serialize as [null]. *)

val write_file : string -> t -> unit
(** Atomic: writes [path ^ ".tmp"], then renames over [path], so a
    crash mid-write cannot leave a truncated report. *)
