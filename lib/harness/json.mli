(** Just enough JSON to emit machine-readable bench results without a
    new dependency, plus a small parser so smoke tests can validate the
    reports and JSONL event streams the harness writes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty-printed with [indent] spaces per level (default 2).
    Non-finite floats serialize as [null]. *)

val write_file : string -> t -> unit
(** Atomic: writes a unique per-process temp file, then renames over
    [path], so a crash mid-write cannot leave a truncated report and
    concurrent writers to the same path can never publish a mixed one
    (last complete document wins).  The temp file is removed on
    failure. *)

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON document (the whole string).  Numbers without [.],
    [e] or [E] parse as [Int], everything else as [Float]; raises
    {!Parse_error} on malformed input. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)
