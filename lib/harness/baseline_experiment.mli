(** Head-to-head with the classic detector the paper motivates against:
    an N-gram model over system-call (extern-call) traces.

    For each server: train the model on benign sessions, measure its
    false-positive rate on held-out benign sessions, then run the same
    attack campaign IPDS faces and compare detection.  IPDS's selling
    points — zero false positives by construction, and detection of
    attacks whose damage never reaches the syscall pattern — show up as
    the two right-hand columns. *)

type row = {
  workload : string;
  ngram_fp : float;  (** fraction of held-out benign runs flagged *)
  ngram_detected : int;  (** of [attacks] tamperings *)
  ipds_detected : int;
  cf_changed : int;
  attacks : int;
}

val run :
  ?n:int ->
  ?train_runs:int ->
  ?holdout_runs:int ->
  ?attacks:int ->
  ?seed:int ->
  Ipds_workloads.Workloads.t ->
  row
(** Defaults: 3-grams, 40 training runs, 50 held-out runs, 100 attacks. *)

val run_all :
  ?n:int ->
  ?train_runs:int ->
  ?holdout_runs:int ->
  ?attacks:int ->
  ?seed:int ->
  ?jobs:int ->
  ?pool:Ipds_parallel.Pool.t ->
  unit ->
  row list

val render : row list -> string
