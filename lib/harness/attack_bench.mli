(** The attack-universes benchmark: one report over every attack
    scenario the harness knows.

    Three campaign families share one seeded configuration:

    - {b workload universes} — every built-in server attacked under
      each requested {!Attack_experiment.universe} (the paper's memory
      tampering plus the [`Cond_flip]/[`Insn_skip] branch faults);
    - {b generated population} — a seeded structurally-random MiniC
      population ({!Ipds_gen.Gen.population}), each member attacked
      under each universe (the memory universe uses arbitrary writes:
      generated servers carry no designated vulnerability class);
    - {b DME} — the layout-diversity baseline ({!Dme_experiment}),
      coverage and overhead next to IPDS.

    Everything in {!stable_json} is deterministic: campaigns use
    splittable or name-salted seeding, the generator is pure in
    [(seed, index)], and fan-out preserves fold order — so the stable
    report is byte-identical for any job count.  Wall-clock throughput
    is the caller's to measure and must be reported separately (the
    bench driver labels it unstable). *)

type config = {
  universes : Attack_experiment.universe list;
  attacks : int;  (** per built-in workload, per universe *)
  seed : int;
  pop_members : int;  (** generated-population size *)
  pop_attacks : int;  (** per generated member, per universe *)
  dme_attacks : int;
  dme_holdout : int;
}

val default_config : config
(** All three universes, 40 attacks/workload, seed 2006, 8 generated
    members at 6 attacks each, DME at 40 attacks / 12 holdout pairs. *)

type result = {
  config : config;
  workload_universes : (Attack_experiment.universe * Attack_experiment.summary) list;
  pop_distinct : int;  (** distinct sources in the generated population *)
  pop_universes : (Attack_experiment.universe * Attack_experiment.summary) list;
  dme : Dme_experiment.row list;
}

val run : ?config:config -> ?pool:Ipds_parallel.Pool.t -> unit -> result
(** Raises {!Attack_experiment.False_positive} if any benign run of any
    campaign raises an alarm. *)

val injected_total : result -> int
(** Total injected attacks across all campaigns — the denominator for
    throughput reporting. *)

val summary_json : Attack_experiment.summary -> Json.t
val stable_json : result -> Json.t
(** The deterministic report object (byte-identical across job counts). *)
