(** The Figure 8 experiment: average per-function BSV/BCV/BAT sizes in
    bits (paper averages: 34 / 17 / 393). *)

type row = {
  workload : string;
  functions : int;
  avg_bsv_bits : float;
  avg_bcv_bits : float;
  avg_bat_bits : float;
}

val run : ?options:Ipds_correlation.Analysis.options -> Ipds_workloads.Workloads.t -> row
val run_all : ?options:Ipds_correlation.Analysis.options -> unit -> row list
val render : row list -> string
