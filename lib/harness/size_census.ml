module Core = Ipds_core
module W = Ipds_workloads.Workloads

type row = {
  workload : string;
  functions : int;
  avg_bsv_bits : float;
  avg_bcv_bits : float;
  avg_bat_bits : float;
}

let run ?options (w : W.t) =
  let system = W.system ?options w in
  let stats = Core.System.size_stats system in
  {
    workload = w.W.name;
    functions = List.length stats.Core.System.per_func;
    avg_bsv_bits = stats.Core.System.avg_bsv_bits;
    avg_bcv_bits = stats.Core.System.avg_bcv_bits;
    avg_bat_bits = stats.Core.System.avg_bat_bits;
  }

let run_all ?options () = List.map (run ?options) W.all

let render rows =
  let mean f =
    match Stats.mean (List.map f rows) with
    | None -> "n/a"
    | Some m -> Table.f1 m
  in
  let body =
    List.map
      (fun r ->
        [
          r.workload;
          string_of_int r.functions;
          Table.f1 r.avg_bsv_bits;
          Table.f1 r.avg_bcv_bits;
          Table.f1 r.avg_bat_bits;
        ])
      rows
  in
  let avg =
    [
      "AVERAGE";
      "";
      mean (fun r -> r.avg_bsv_bits);
      mean (fun r -> r.avg_bcv_bits);
      mean (fun r -> r.avg_bat_bits);
    ]
  in
  Table.render
    ~header:[ "benchmark"; "funcs"; "BSV bits"; "BCV bits"; "BAT bits" ]
    (body @ [ avg ])
