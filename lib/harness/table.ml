let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m r ->
        match List.nth_opt r c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let render_row r =
    let cells =
      List.mapi
        (fun c w ->
          let cell = match List.nth_opt r c with Some s -> s | None -> "" in
          cell ^ String.make (w - String.length cell) ' ')
        widths
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "|" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let pct x = Printf.sprintf "%.1f%%" (100. *. x)
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
