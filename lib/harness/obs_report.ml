module O = Ipds_obs.Json

let rec of_obs = function
  | O.Null -> Json.Null
  | O.Bool b -> Json.Bool b
  | O.Int n -> Json.Int n
  | O.Float f -> Json.Float f
  | O.String s -> Json.String s
  | O.List xs -> Json.List (List.map of_obs xs)
  | O.Obj fields -> Json.Obj (List.map (fun (k, v) -> (k, of_obs v)) fields)

let metrics_json () =
  of_obs (Ipds_obs.Registry.snapshot_json ~stability:`Stable ())

let runtime_json () =
  Json.Obj
    [
      ("metrics", of_obs (Ipds_obs.Registry.snapshot_json ~stability:`Unstable ()));
      ("spans", of_obs (Ipds_obs.Span.snapshot_json ()));
    ]

let manifest_json () = of_obs (Ipds_obs.Manifest.to_json ())
