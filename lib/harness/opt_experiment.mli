(** Optimization-level study: the paper notes that "compiler optimizations
    can remove some correlations, reducing the detection rate".  Compare
    detection and table sizes across compilation pipelines:

    - [O0]: straight -O0 code, everything memory-resident;
    - [O1]: register promotion only (the default elsewhere);
    - [O2]: constant/copy propagation + dead code elimination, then
      promotion. *)

type level =
  | O0
  | O1
  | O2

val compile : level -> Ipds_workloads.Workloads.t -> Ipds_mir.Program.t

type row = {
  level : string;
  avg_detected : float;
  detected_given_cf : float;
  avg_cf_changed : float;
  checked_branches : int;
  total_branches : int;
}

val run_all :
  ?attacks:int -> ?seed:int -> ?jobs:int -> ?pool:Ipds_parallel.Pool.t ->
  unit -> row list
val render : row list -> string
