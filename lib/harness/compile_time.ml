module Mir = Ipds_mir
module Core = Ipds_core
module W = Ipds_workloads.Workloads

type row = {
  workload : string;
  seconds : float;
  hash_attempts : int;
}

let run (w : W.t) =
  let t0 = Unix.gettimeofday () in
  let program = Ipds_minic.Minic.compile w.W.source in
  let system = Core.System.build program in
  let t1 = Unix.gettimeofday () in
  let layout = system.Core.System.layout in
  let attempts =
    List.fold_left
      (fun acc (f : Mir.Func.t) ->
        acc + Core.Hash.attempts_for (Mir.Layout.branch_pcs layout f))
      0 program.Mir.Program.funcs
  in
  { workload = w.W.name; seconds = t1 -. t0; hash_attempts = attempts }

let run_all () = List.map run W.all

let render rows =
  Table.render
    ~header:[ "benchmark"; "compile seconds"; "hash attempts" ]
    (List.map
       (fun r ->
         [ r.workload; Printf.sprintf "%.4f" r.seconds; string_of_int r.hash_attempts ])
       rows)
