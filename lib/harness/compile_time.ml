module Mir = Ipds_mir
module Core = Ipds_core
module W = Ipds_workloads.Workloads

type row = {
  workload : string;
  seconds : float;
  hash_attempts : int;
}

let run (w : W.t) =
  let t0 = Unix.gettimeofday () in
  let program = Ipds_minic.Minic.compile w.W.source in
  let system = Core.System.build program in
  let t1 = Unix.gettimeofday () in
  let layout = system.Core.System.layout in
  let attempts =
    List.fold_left
      (fun acc (f : Mir.Func.t) ->
        acc + Core.Hash.attempts_for (Mir.Layout.branch_pcs layout f))
      0 program.Mir.Program.funcs
  in
  { workload = w.W.name; seconds = t1 -. t0; hash_attempts = attempts }

let run_all () = List.map run W.all

(* ---------- per-pass breakdown ---------- *)

type pass_row = {
  pass : string;
  scope : string;
  units : int;
  seconds : float;
}

(* Deltas of the process-wide pass metrics across [f ()], so builds run
   by other bench targets in the same process don't pollute the
   breakdown.  Unit counts are stable (fixed by the build set); wall
   seconds are scheduling-dependent and reported as unstable. *)
let with_passes f =
  let snapshot () = Ipds_pass.Pass.report () in
  let before = snapshot () in
  let result = f () in
  let units_before name =
    match
      List.find_opt (fun r -> String.equal r.Ipds_pass.Pass.r_name name) before
    with
    | Some r -> (r.Ipds_pass.Pass.r_units, r.Ipds_pass.Pass.r_seconds)
    | None -> (0, 0.)
  in
  let passes =
    List.map
      (fun (r : Ipds_pass.Pass.report_row) ->
        let u0, s0 = units_before r.Ipds_pass.Pass.r_name in
        {
          pass = r.Ipds_pass.Pass.r_name;
          scope =
            (match r.Ipds_pass.Pass.r_scope with
            | Ipds_pass.Pass.Program -> "program"
            | Ipds_pass.Pass.Function -> "function");
          units = r.Ipds_pass.Pass.r_units - u0;
          seconds = r.Ipds_pass.Pass.r_seconds -. s0;
        })
      (snapshot ())
  in
  (result, passes)

let run_all_with_passes () = with_passes run_all

let render_passes passes =
  Table.render
    ~header:[ "pass"; "scope"; "units"; "wall seconds (unstable)" ]
    (List.map
       (fun p ->
         [ p.pass; p.scope; string_of_int p.units; Printf.sprintf "%.4f" p.seconds ])
       passes)

let render rows =
  Table.render
    ~header:[ "benchmark"; "compile seconds"; "hash attempts" ]
    (List.map
       (fun r ->
         [ r.workload; Printf.sprintf "%.4f" r.seconds; string_of_int r.hash_attempts ])
       rows)
