(** Bridge from the observability layer to harness JSON reports.

    [Ipds_obs] sits below the harness and has its own compact JSON type;
    this module converts its snapshots into {!Json.t} so bench reports
    can embed them.  [metrics_json] carries only stable metrics — the
    deterministic object that must be byte-identical across job counts —
    while [runtime_json] carries unstable metrics and span timers, which
    legitimately vary run to run. *)

val of_obs : Ipds_obs.Json.t -> Json.t

val metrics_json : unit -> Json.t
(** Stable-metric snapshot: identical for [--jobs 1] and [--jobs N]. *)

val runtime_json : unit -> Json.t
(** [{"metrics":{…unstable…},"spans":{…}}] — scheduling and wall-clock
    dependent, excluded from the determinism guarantee. *)

val manifest_json : unit -> Json.t
