type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest-ish representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (n * indent) ' ') in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            go (level + 1) item)
          items;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (level + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* Atomic: a crash mid-write leaves at worst a stale .tmp file, never a
   truncated report at [path]. *)
let write_file path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string t);
         output_char oc '\n')
   with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path
