type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest-ish representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (n * indent) ' ') in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            go (level + 1) item)
          items;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (level + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* Atomic: a crash mid-write leaves at worst a stale temp file, never a
   truncated report at [path].  The temp name is unique per process and
   per call — a fixed [path ^ ".tmp"] would let two concurrent writers
   (parallel bench invocations sharing an output dir, or two domains)
   interleave write/rename and publish a mixed report. *)
let tmp_serial = Atomic.make 0

let write_file path t =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_serial 1)
  in
  let oc = open_out tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string t);
         output_char oc '\n')
   with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* ---------- parsing (for report validation and the obs smoke test) ---------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at %d" m !pos))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do advance () done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, found %C" c c'
    | None -> fail "expected %C, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with Failure _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* encode the code point as UTF-8; our own emitter only
                      produces \u00xx, but accept the full BMP *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail "bad escape \\%C" c);
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let continue = ref true in
    while !continue && !pos < n do
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' -> advance ()
      | '.' | 'e' | 'E' ->
          is_float := true;
          advance ()
      | _ -> continue := false
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number %S" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); field ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          field ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected %C" c
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
