(** Small statistics helpers for the experiment reports. *)

val mean : float list -> float
val stddev : float list -> float
(** Sample standard deviation (n-1); 0 for fewer than two samples. *)

val mean_sd : float list -> string
(** ["12.3% ± 1.1%"] formatting for fractions. *)

val minimum : float list -> float
val maximum : float list -> float
