(** Small statistics helpers for the experiment reports.

    Aggregates of an empty sample are [None], never a silent [0.] —
    callers render "n/a" so a workload with no samples can't masquerade
    as a real data point in the tables. *)

val mean : float list -> float option

val mean_exn : float list -> float
(** Raises [Invalid_argument] on an empty sample. *)

val stddev : float list -> float
(** Sample standard deviation (n-1); 0 for fewer than two samples. *)

val mean_sd : float list -> string
(** ["12.3% ± 1.1%"] formatting for fractions; ["n/a"] for no samples. *)

val minimum : float list -> float option
val maximum : float list -> float option
