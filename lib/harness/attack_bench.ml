module A = Attack_experiment
module Pool = Ipds_parallel.Pool

type config = {
  universes : A.universe list;
  attacks : int;
  seed : int;
  pop_members : int;
  pop_attacks : int;
  dme_attacks : int;
  dme_holdout : int;
}

let default_config =
  {
    universes = [ `Mem; `Cond_flip; `Insn_skip ];
    attacks = 40;
    seed = 2006;
    pop_members = 8;
    pop_attacks = 6;
    dme_attacks = 40;
    dme_holdout = 12;
  }

type result = {
  config : config;
  workload_universes : (A.universe * A.summary) list;
  pop_distinct : int;
  pop_universes : (A.universe * A.summary) list;
  dme : Dme_experiment.row list;
}

let model_for = function
  | `Mem -> `Arbitrary_write
  | (`Cond_flip | `Insn_skip) as u -> u

let run ?(config = default_config) ?pool () =
  let workload_universes =
    List.map
      (fun u ->
        (u, A.run_all ~universe:u ~attacks:config.attacks ~seed:config.seed ?pool ()))
      config.universes
  in
  let members =
    Ipds_gen.Gen.population ?pool ~seed:config.seed ~count:config.pop_members ()
  in
  let pop_distinct = List.length (List.sort_uniq String.compare members) in
  let programs =
    List.mapi
      (fun i src ->
        ( Printf.sprintf "gen-%d-%03d" config.seed i,
          Ipds_minic.Minic.compile src ))
      members
  in
  let pop_universes =
    List.map
      (fun u ->
        let rows =
          List.map
            (fun (name, p) ->
              A.campaign ?pool ~attacks:config.pop_attacks ~seed:config.seed
                ~model:(model_for u) ~name p)
            programs
        in
        (u, A.summarize rows))
      config.universes
  in
  let dme =
    Dme_experiment.run_all ~attacks:config.dme_attacks
      ~holdout:config.dme_holdout ~seed:config.seed ?pool ()
  in
  { config; workload_universes; pop_distinct; pop_universes; dme }

let injected_total r =
  let of_summaries l =
    List.fold_left
      (fun acc (_, (s : A.summary)) ->
        List.fold_left (fun acc (row : A.row) -> acc + row.A.attacks) acc s.A.rows)
      0 l
  in
  of_summaries r.workload_universes
  + of_summaries r.pop_universes
  + List.fold_left
      (fun acc (row : Dme_experiment.row) -> acc + row.Dme_experiment.attacks)
      0 r.dme

let summary_json (s : A.summary) =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (r : A.row) ->
               Json.Obj
                 [
                   ("workload", Json.String r.A.workload);
                   ("attacks", Json.Int r.A.attacks);
                   ("cf_changed", Json.Int r.A.cf_changed);
                   ("detected", Json.Int r.A.detected);
                 ])
             s.A.rows) );
      ("avg_cf_changed", Json.Float s.A.avg_cf_changed);
      ("avg_detected", Json.Float s.A.avg_detected);
      ("detected_given_cf", Json.Float s.A.detected_given_cf);
    ]

let universe_json (u, s) =
  Json.Obj
    [
      ("universe", Json.String (A.universe_name u));
      (* campaigns raise False_positive on any benign alarm, so a report
         that exists at all certifies a clean benign sweep *)
      ("false_positives", Json.Int 0);
      ("summary", summary_json s);
    ]

let dme_json rows =
  Json.List
    (List.map
       (fun (r : Dme_experiment.row) ->
         let open Dme_experiment in
         Json.Obj
           [
             ("workload", Json.String r.workload);
             ("attacks", Json.Int r.attacks);
             ("cf_changed", Json.Int r.cf_changed);
             ("dme_detected", Json.Int r.dme_detected);
             ("ipds_detected", Json.Int r.ipds_detected);
             ("benign_diffs", Json.Int r.benign_diffs);
             ("holdout", Json.Int r.holdout);
             ("overhead", Json.Float r.overhead);
           ])
       rows)

let stable_json r =
  Json.Obj
    [
      ("seed", Json.Int r.config.seed);
      ("attacks_per_workload", Json.Int r.config.attacks);
      ("universes", Json.List (List.map universe_json r.workload_universes));
      ( "population",
        Json.Obj
          [
            ("seed", Json.Int r.config.seed);
            ("members", Json.Int r.config.pop_members);
            ("distinct", Json.Int r.pop_distinct);
            ("attacks_per_member", Json.Int r.config.pop_attacks);
            ("universes", Json.List (List.map universe_json r.pop_universes));
          ] );
      ( "dme",
        Json.Obj
          [
            ("attacks_per_workload", Json.Int r.config.dme_attacks);
            ("holdout", Json.Int r.config.dme_holdout);
            ("rows", dme_json r.dme);
          ] );
    ]
