let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let mean_sd xs = Printf.sprintf "%.1f%% ± %.1f%%" (100. *. mean xs) (100. *. stddev xs)
let minimum = function [] -> 0. | x :: xs -> List.fold_left min x xs
let maximum = function [] -> 0. | x :: xs -> List.fold_left max x xs
