(* Empty inputs return [None] rather than a fake 0. data point: a
   workload yielding no samples must render as "n/a" in the Fig. 7/8
   tables, not as "0.0% ± 0.0%". *)

let mean = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

let mean_exn xs =
  match mean xs with
  | Some m -> m
  | None -> invalid_arg "Stats.mean_exn: empty sample"

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean_exn xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let mean_sd xs =
  match mean xs with
  | None -> "n/a"
  | Some m -> Printf.sprintf "%.1f%% ± %.1f%%" (100. *. m) (100. *. stddev xs)

let minimum = function
  | [] -> None
  | x :: xs -> Some (List.fold_left min x xs)

let maximum = function
  | [] -> None
  | x :: xs -> Some (List.fold_left max x xs)
