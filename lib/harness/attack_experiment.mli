(** The Figure 7 experiment: detection rate under simulated attacks.

    Each server is attacked [attacks] times independently.  One attack:
    run the benign server under a seeded input script, pick a uniformly
    random dynamic step and victim cell (restricted by the workload's
    vulnerability class) and a random replacement value, re-run the same
    inputs with the tamper injected, and compare.  Reported per server:

    - how many tamperings changed control flow (the branch trace or the
      termination state differs), and
    - how many IPDS detected (at least one alarm).

    The benign run doubles as the zero-false-positive check: an alarm
    there fails the experiment.

    {b Parallelism and determinism.}  Every attempt derives its RNG from
    [(seed, workload, attempt index)] (splittable seeding, not
    sequential draws from one state), so attempts are independent tasks;
    campaigns fan them out across an {!Ipds_parallel.Pool} and fold the
    outcomes in attempt order.  Results are bit-for-bit identical for
    any [jobs] value, including [~jobs:1] (no domains spawned). *)

type row = {
  workload : string;
  attacks : int;  (** attacks with an actual injection *)
  cf_changed : int;
  detected : int;
}

type summary = {
  rows : row list;
  avg_cf_changed : float;  (** fraction, paper: 0.494 *)
  avg_detected : float;  (** fraction of all attacks, paper: 0.293 *)
  detected_given_cf : float;  (** paper: 0.593 *)
}

exception False_positive of string
(** Raised if a benign run raises an alarm — a soundness violation. *)

type universe = [ `Mem | `Cond_flip | `Insn_skip ]
(** The attack universes.  [`Mem] is the paper's memory-tamper scenario
    (the workload's own vulnerability class picks the scope);
    [`Cond_flip] and [`Insn_skip] are the branch-fault models of the
    fault-attack literature, landing at branch commit. *)

val universe_name : universe -> string
(** ["mem"], ["cond-flip"], ["insn-skip"] — the CLI/bench spelling. *)

val universe_of_name : string -> universe option

val campaign :
  ?options:Ipds_correlation.Analysis.options ->
  ?system:Ipds_core.System.t ->
  ?pool:Ipds_parallel.Pool.t ->
  ?attacks:int ->
  ?seed:int ->
  model:[ `Stack_overflow | `Arbitrary_write | `Cond_flip | `Insn_skip ] ->
  name:string ->
  Ipds_mir.Program.t ->
  row
(** Attack campaign against an explicit program under an explicit tamper
    model.  [name] labels the row and salts the attack RNG.  The
    program's IPDS tables come from [system] when given (e.g. loaded
    from an on-disk artifact) and {!Ipds_core.System.cached_build}
    otherwise. *)

val run :
  ?options:Ipds_correlation.Analysis.options ->
  ?promote:bool ->
  ?pool:Ipds_parallel.Pool.t ->
  ?prepare:(Ipds_workloads.Workloads.t -> Ipds_mir.Program.t) ->
  ?universe:universe ->
  ?attacks:int ->
  ?seed:int ->
  Ipds_workloads.Workloads.t ->
  row
(** By default the program and tables come from
    {!Ipds_workloads.Workloads.system} — two-tier cached, so a warm
    process skips both the MiniC compile and the analysis.  [promote]
    (default true) selects register promotion on that path.  [prepare]
    overrides the compilation pipeline entirely (the tables then come
    from {!Ipds_core.System.cached_build} and [promote] is ignored). *)

val run_all :
  ?options:Ipds_correlation.Analysis.options ->
  ?promote:bool ->
  ?prepare:(Ipds_workloads.Workloads.t -> Ipds_mir.Program.t) ->
  ?universe:universe ->
  ?attacks:int ->
  ?seed:int ->
  ?jobs:int ->
  ?pool:Ipds_parallel.Pool.t ->
  unit ->
  summary
(** Fans the ten workloads out across domains; each workload's attack
    attempts fan out in turn (the waiting parent helps, see
    {!Ipds_parallel.Pool}).  [pool] reuses a caller's pool; otherwise a
    pool of [jobs] (default {!Ipds_parallel.Pool.default_jobs}) is
    created for the call.  [~jobs:1] is strictly sequential. *)

val summarize : row list -> summary
val render : summary -> string
