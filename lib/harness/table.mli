(** Plain-text table rendering for the experiment reports. *)

val render : header:string list -> string list list -> string
(** Aligned columns, pipe-separated, with a rule under the header. *)

val pct : float -> string
(** [pct 0.493] is ["49.3%"]. *)

val f1 : float -> string
(** One decimal. *)

val f2 : float -> string
