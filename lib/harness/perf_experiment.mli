(** The Figure 9 experiment: execution time with IPDS normalized to the
    baseline without it (paper: 0.79% average degradation), plus the §6
    detection-latency measurement (paper: 11.7 cycles average). *)

type row = {
  workload : string;
  instructions : int;
  base_cycles : float;
  ipds_cycles : float;
  normalized : float;  (** ipds / base; 1.0 = no overhead *)
  avg_detection_latency : float;  (** cycles, over all verify requests *)
  spills : int;
  stall_cycles : float;
}

val run :
  ?config:Ipds_pipeline.Config.t ->
  ?seed:int ->
  ?repeats:int ->
  Ipds_workloads.Workloads.t ->
  row
(** [repeats] runs of the benign driver are concatenated into one trace
    (default 5) to smooth the timing. *)

val run_all :
  ?config:Ipds_pipeline.Config.t ->
  ?seed:int ->
  ?repeats:int ->
  ?jobs:int ->
  ?pool:Ipds_parallel.Pool.t ->
  unit ->
  row list

val render : row list -> string
