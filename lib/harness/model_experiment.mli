(** The paper's two attack models (§3), compared on every server:

    - buffer overflow: the tamper can reach only the executing function's
      local stack data;
    - format string / malicious co-resident process: the tamper can reach
      any live memory, globals included.

    The arbitrary-write model reaches long-lived state more often, so it
    both changes control flow and gets detected at different rates. *)

type row = {
  workload : string;
  overflow_cf : float;
  overflow_detected : float;
  arbitrary_cf : float;
  arbitrary_detected : float;
}

val run :
  ?attacks:int -> ?seed:int -> ?pool:Ipds_parallel.Pool.t ->
  Ipds_workloads.Workloads.t -> row

val run_all :
  ?attacks:int -> ?seed:int -> ?jobs:int -> ?pool:Ipds_parallel.Pool.t ->
  unit -> row list
val render : row list -> string
