module M = Ipds_machine
module Core = Ipds_core
module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool

type row = {
  workload : string;
  attacks : int;
  cf_changed : int;
  detected : int;
}

type summary = {
  rows : row list;
  avg_cf_changed : float;
  avg_detected : float;
  detected_given_cf : float;
}

exception False_positive of string

(* Incremented in lock-step with the campaign's row counters (inside the
   [!injected < attacks] cutoff), so these reconcile exactly with the
   attacks/cf_changed/detected totals of every report built from
   campaigns.  The chunked fold keeps the evaluated attempt set — and so
   these counters — independent of the job count. *)
let m_attempts = Ipds_obs.Registry.counter "attack.attempts"
let m_injected = Ipds_obs.Registry.counter "attack.injected"
let m_cf_changed = Ipds_obs.Registry.counter "attack.cf_changed"
let m_detected = Ipds_obs.Registry.counter "attack.detected"

(* Splittable seeding: every attempt owns an RNG derived from
   (campaign seed, workload name, attempt index), so attempts are
   independent tasks and the campaign is bit-for-bit deterministic
   regardless of domain count or scheduling. *)
let attempt_rng ~seed ~name ~attempt =
  Random.State.make [| seed; Hashtbl.hash name; attempt; 0x6a09e667 |]

type attempt_outcome =
  | Benign_alarm
  | Too_short  (* benign run too short to place an attack window *)
  | No_injection  (* the tamper picked a victim whose value didn't change *)
  | Injected of {
      changed : bool;
      alarmed : bool;
    }

(* The attack universes, each a concrete [Tamper.site] builder.  [`Mem]
   resolves per-workload (its vulnerability class); the branch-fault
   universes are workload-independent. *)
type universe =
  [ `Mem | `Cond_flip | `Insn_skip ]

let universe_name = function
  | `Mem -> "mem"
  | `Cond_flip -> "cond-flip"
  | `Insn_skip -> "insn-skip"

let universe_of_name = function
  | "mem" -> Some `Mem
  | "cond-flip" -> Some `Cond_flip
  | "insn-skip" -> Some `Insn_skip
  | _ -> None

let run_attempt ~system ~program ~model ~seed ~name attempt =
  let rng = attempt_rng ~seed ~name ~attempt in
  let input_seed = Random.State.bits rng land 0xffffff in
  let run_once ~tamper ~checker =
    M.Interp.run program
      {
        M.Interp.default_config with
        inputs = M.Input_script.random ~seed:input_seed ();
        checker;
        tamper;
        (* control_flow_changed compares trace digests, so neither run
           needs to materialize its O(steps) branch trace *)
        record_trace = false;
      }
  in
  let benign_checker = Core.System.new_checker system in
  let benign = run_once ~tamper:None ~checker:(Some benign_checker) in
  if benign.M.Interp.alarms <> [] then Benign_alarm
  else if benign.M.Interp.steps <= 2 then Too_short
  else begin
    (* The vulnerability fires on attacker input, i.e. once the session
       is up: strike in the [20%, 100%) window of the benign run. *)
    let lo = max 1 (benign.M.Interp.steps / 5) in
    let at_step = lo + Random.State.int rng (max 1 (benign.M.Interp.steps - lo)) in
    (* Attackers pick meaningful values: small protocol constants about
       half the time, arbitrary bytes otherwise.  Drawn for every
       universe (branch faults ignore them) so the attempt schedule of
       the memory universe is byte-identical to the historical one. *)
    let value =
      if Random.State.bool rng then Random.State.int rng 8
      else Random.State.int rng 256
    in
    let tamper_seed = Random.State.bits rng land 0xffffff in
    let site =
      match model with
      | `Stack_overflow ->
          M.Tamper.Mem_write { model = M.Tamper.Stack_overflow; value }
      | `Arbitrary_write ->
          M.Tamper.Mem_write { model = M.Tamper.Arbitrary_write; value }
      | `Cond_flip -> M.Tamper.Cond_flip
      | `Insn_skip -> M.Tamper.Insn_skip
    in
    let checker = Core.System.new_checker system in
    let attacked =
      run_once
        ~tamper:(Some { M.Tamper.at_step; site; seed = tamper_seed })
        ~checker:(Some checker)
    in
    match attacked.M.Interp.injection with
    | None -> No_injection
    | Some _ ->
        Injected
          {
            changed = M.Interp.control_flow_changed benign attacked;
            alarmed = attacked.M.Interp.alarms <> [];
          }
  end

let campaign ?options ?system ?pool ?(attacks = 100) ?(seed = 2006) ~model
    ~name program =
  let system =
    match system with
    | Some s -> s
    | None -> Core.System.cached_build ?options program
  in
  (* Some attempts pick a victim whose old value equals the attack value
     (no-op); keep evaluating fresh attempts until [attacks] real
     injections have happened, within a bounded number of attempts.
     Attempts are evaluated in fixed-size chunks (fanned out across the
     pool) and folded in attempt order, so the chunk schedule — and
     therefore the result — does not depend on the job count. *)
  let max_attempts = attacks * 4 in
  let chunk = max 1 attacks in
  let injected = ref 0 in
  let cf_changed = ref 0 in
  let detected = ref 0 in
  let next = ref 0 in
  while !injected < attacks && !next < max_attempts do
    let hi = min max_attempts (!next + chunk) in
    let indices = List.init (hi - !next) (fun i -> !next + i) in
    let outcomes =
      Pool.map' pool (run_attempt ~system ~program ~model ~seed ~name) indices
    in
    List.iter
      (fun outcome ->
        (* Soundness checks apply to every evaluated attempt, even past
           the cutoff — a false positive must never be masked by the
           chunk boundary. *)
        (match outcome with
        | Benign_alarm ->
            raise (False_positive (Printf.sprintf "%s: alarm on benign run" name))
        | Injected { changed = false; alarmed = true } ->
            (* An alarm without a control-flow divergence would be a
               false positive in disguise. *)
            raise
              (False_positive
                 (Printf.sprintf "%s: alarm without control-flow change" name))
        | Too_short | No_injection | Injected _ -> ());
        if !injected < attacks then begin
          Ipds_obs.Registry.incr m_attempts;
          match outcome with
          | Injected { changed; alarmed } ->
              incr injected;
              Ipds_obs.Registry.incr m_injected;
              if changed then begin
                incr cf_changed;
                Ipds_obs.Registry.incr m_cf_changed
              end;
              if alarmed then begin
                incr detected;
                Ipds_obs.Registry.incr m_detected
              end
          | Benign_alarm | Too_short | No_injection -> ()
        end)
      outcomes;
    next := hi
  done;
  if Ipds_obs.Events.enabled () then
    Ipds_obs.Events.emit ~kind:"attack.campaign"
      [
        ("workload", Ipds_obs.Json.String name);
        ( "model",
          Ipds_obs.Json.String
            (match model with
            | `Stack_overflow -> "overflow"
            | `Arbitrary_write -> "arbitrary"
            | `Cond_flip -> "cond-flip"
            | `Insn_skip -> "insn-skip") );
        ("attacks", Ipds_obs.Json.Int !injected);
        ("cf_changed", Ipds_obs.Json.Int !cf_changed);
        ("detected", Ipds_obs.Json.Int !detected);
      ];
  { workload = name; attacks = !injected; cf_changed = !cf_changed;
    detected = !detected }

let run ?options ?promote ?pool ?prepare ?(universe = `Mem) ?attacks ?seed
    (w : W.t) =
  let model =
    match universe with
    | `Mem ->
        (W.tamper_model w
          :> [ `Stack_overflow | `Arbitrary_write | `Cond_flip | `Insn_skip ])
    | `Cond_flip -> `Cond_flip
    | `Insn_skip -> `Insn_skip
  in
  match prepare with
  | Some prepare ->
      campaign ?options ?pool ?attacks ?seed ~model ~name:w.W.name (prepare w)
  | None ->
      (* artifact-aware: on a warm cache this skips compile + analysis *)
      let system = W.system ?promote ?options w in
      campaign ?options ~system ?pool ?attacks ?seed ~model ~name:w.W.name
        system.Core.System.program

let summarize rows =
  let frac num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
  let mean f =
    match rows with
    | [] -> 0.
    | _ :: _ ->
        List.fold_left (fun acc r -> acc +. f r) 0. rows
        /. float_of_int (List.length rows)
  in
  {
    rows;
    avg_cf_changed = mean (fun r -> frac r.cf_changed r.attacks);
    avg_detected = mean (fun r -> frac r.detected r.attacks);
    detected_given_cf = mean (fun r -> frac r.detected (max 1 r.cf_changed));
  }

let run_all ?options ?promote ?prepare ?universe ?attacks ?seed ?jobs ?pool () =
  Pool.with_opt ?jobs ?pool (fun pool ->
      summarize
        (Pool.map' pool
           (run ?options ?promote ?pool ?prepare ?universe ?attacks ?seed)
           W.all))

let render s =
  let rows =
    List.map
      (fun r ->
        [
          r.workload;
          string_of_int r.attacks;
          Table.pct (float_of_int r.cf_changed /. float_of_int (max 1 r.attacks));
          Table.pct (float_of_int r.detected /. float_of_int (max 1 r.attacks));
          Table.pct (float_of_int r.detected /. float_of_int (max 1 r.cf_changed));
        ])
      s.rows
  in
  let avg =
    [
      "AVERAGE";
      "";
      Table.pct s.avg_cf_changed;
      Table.pct s.avg_detected;
      Table.pct s.detected_given_cf;
    ]
  in
  Table.render
    ~header:
      [ "benchmark"; "attacks"; "cf-changed"; "detected"; "detected|cf-changed" ]
    (rows @ [ avg ])
