module M = Ipds_machine
module Core = Ipds_core
module W = Ipds_workloads.Workloads

type row = {
  workload : string;
  attacks : int;
  cf_changed : int;
  detected : int;
}

type summary = {
  rows : row list;
  avg_cf_changed : float;
  avg_detected : float;
  detected_given_cf : float;
}

exception False_positive of string

let campaign ?options ?(prepare = fun w -> W.program w) ?(attacks = 100)
    ?(seed = 2006) ~model (w : W.t) =
  let program = prepare w in
  let system = Core.System.build ?options program in
  let model =
    match model with
    | `Stack_overflow -> M.Tamper.Stack_overflow
    | `Arbitrary_write -> M.Tamper.Arbitrary_write
  in
  let rng = Random.State.make [| seed; Hashtbl.hash w.W.name |] in
  let injected = ref 0 in
  let cf_changed = ref 0 in
  let detected = ref 0 in
  let attempt = ref 0 in
  (* Some attempts pick a victim whose old value equals the attack value
     (no-op); retry with fresh randomness until [attacks] real injections
     have happened, within a bounded number of attempts. *)
  while !injected < attacks && !attempt < attacks * 4 do
    incr attempt;
    let input_seed = Random.State.bits rng land 0xffffff in
    let run_once ~tamper ~checker =
      M.Interp.run program
        {
          M.Interp.default_config with
          inputs = M.Input_script.random ~seed:input_seed ();
          checker;
          tamper;
          record_trace = true;
        }
    in
    let benign_checker = Core.System.new_checker system in
    let benign = run_once ~tamper:None ~checker:(Some benign_checker) in
    if benign.M.Interp.alarms <> [] then
      raise (False_positive (Printf.sprintf "%s: alarm on benign run" w.W.name));
    if benign.M.Interp.steps > 2 then begin
      (* The vulnerability fires on attacker input, i.e. once the session
         is up: strike in the [20%, 100%) window of the benign run. *)
      let lo = max 1 (benign.M.Interp.steps / 5) in
      let at_step = lo + Random.State.int rng (max 1 (benign.M.Interp.steps - lo)) in
      (* Attackers pick meaningful values: small protocol constants about
         half the time, arbitrary bytes otherwise. *)
      let value =
        if Random.State.bool rng then Random.State.int rng 8
        else Random.State.int rng 256
      in
      let tamper_seed = Random.State.bits rng land 0xffffff in
      let checker = Core.System.new_checker system in
      let attacked =
        run_once
          ~tamper:(Some { M.Tamper.at_step; model; seed = tamper_seed; value })
          ~checker:(Some checker)
      in
      match attacked.M.Interp.injection with
      | None -> ()
      | Some _ ->
          incr injected;
          let changed = M.Interp.control_flow_changed benign attacked in
          if changed then incr cf_changed;
          if attacked.M.Interp.alarms <> [] then begin
            incr detected;
            (* An alarm without a control-flow divergence would be a
               false positive in disguise. *)
            if not changed then
              raise
                (False_positive
                   (Printf.sprintf "%s: alarm without control-flow change" w.W.name))
          end
    end
  done;
  { workload = w.W.name; attacks = !injected; cf_changed = !cf_changed;
    detected = !detected }

let run ?options ?prepare ?attacks ?seed (w : W.t) =
  campaign ?options ?prepare ?attacks ?seed ~model:(W.tamper_model w) w

let summarize rows =
  let frac num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
  let mean f =
    match rows with
    | [] -> 0.
    | _ :: _ ->
        List.fold_left (fun acc r -> acc +. f r) 0. rows
        /. float_of_int (List.length rows)
  in
  {
    rows;
    avg_cf_changed = mean (fun r -> frac r.cf_changed r.attacks);
    avg_detected = mean (fun r -> frac r.detected r.attacks);
    detected_given_cf = mean (fun r -> frac r.detected (max 1 r.cf_changed));
  }

let run_all ?options ?prepare ?attacks ?seed () =
  summarize (List.map (run ?options ?prepare ?attacks ?seed) W.all)

let render s =
  let rows =
    List.map
      (fun r ->
        [
          r.workload;
          string_of_int r.attacks;
          Table.pct (float_of_int r.cf_changed /. float_of_int (max 1 r.attacks));
          Table.pct (float_of_int r.detected /. float_of_int (max 1 r.attacks));
          Table.pct (float_of_int r.detected /. float_of_int (max 1 r.cf_changed));
        ])
      s.rows
  in
  let avg =
    [
      "AVERAGE";
      "";
      Table.pct s.avg_cf_changed;
      Table.pct s.avg_detected;
      Table.pct s.detected_given_cf;
    ]
  in
  Table.render
    ~header:
      [ "benchmark"; "attacks"; "cf-changed"; "detected"; "detected|cf-changed" ]
    (rows @ [ avg ])
