module M = Ipds_machine
module Core = Ipds_core
module B = Ipds_baseline
module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool

type row = {
  workload : string;
  ngram_fp : float;
  ngram_detected : int;
  ipds_detected : int;
  cf_changed : int;
  attacks : int;
}

let config_for ?checker ?tamper ~input_seed () =
  {
    M.Interp.default_config with
    inputs = M.Input_script.random ~seed:input_seed ();
    checker;
    tamper;
    (* control-flow comparison uses trace digests; don't materialize traces *)
    record_trace = false;
  }

let run ?(n = 3) ?(train_runs = 40) ?(holdout_runs = 50) ?(attacks = 100)
    ?(seed = 2006) (w : W.t) =
  let system = W.system w in
  let program = system.Core.System.program in
  (* train on benign sessions *)
  let benign_trace input_seed =
    B.Syscall_trace.collect program ~config:(config_for ~input_seed ())
  in
  let model =
    B.Ngram.train ~n (List.init train_runs (fun i -> benign_trace (7000 + i)))
  in
  (* held-out false positives *)
  let fp =
    List.init holdout_runs (fun i -> benign_trace (90000 + i))
    |> List.filter (B.Ngram.flags model)
    |> List.length
  in
  (* attack campaign: same methodology as Attack_experiment, with both
     detectors watching the same runs *)
  let model_tamper =
    match W.tamper_model w with
    | `Stack_overflow -> M.Tamper.Stack_overflow
    | `Arbitrary_write -> M.Tamper.Arbitrary_write
  in
  let rng = Random.State.make [| seed; Hashtbl.hash w.W.name |] in
  let injected = ref 0 and cf = ref 0 and ipds_det = ref 0 and ngram_det = ref 0 in
  let attempt = ref 0 in
  while !injected < attacks && !attempt < attacks * 4 do
    incr attempt;
    let input_seed = Random.State.bits rng land 0xffffff in
    let benign_checker = Core.System.new_checker system in
    let benign =
      M.Interp.run program (config_for ~checker:benign_checker ~input_seed ())
    in
    if benign.M.Interp.steps > 2 then begin
      let lo = max 1 (benign.M.Interp.steps / 5) in
      let at_step = lo + Random.State.int rng (max 1 (benign.M.Interp.steps - lo)) in
      let value =
        if Random.State.bool rng then Random.State.int rng 8
        else Random.State.int rng 256
      in
      let plan =
        {
          M.Tamper.at_step;
          site = M.Tamper.Mem_write { model = model_tamper; value };
          seed = Random.State.bits rng land 0xffffff;
        }
      in
      (* one attacked run, observed by both detectors *)
      let checker = Core.System.new_checker system in
      let syscalls = ref [] in
      let observer (e : M.Event.t) =
        match e.M.Event.kind with
        | M.Event.Call { callee } when not (Ipds_mir.Program.is_defined program callee)
          ->
            syscalls := callee :: !syscalls
        | M.Event.Call _ | M.Event.Alu | M.Event.Load _ | M.Event.Store _
        | M.Event.Branch _ | M.Event.Jump _ | M.Event.Ret | M.Event.Input_read
        | M.Event.Output_write _ | M.Event.Fault_inject _ ->
            ()
      in
      let attacked =
        M.Interp.run program
          {
            (config_for ~checker ~input_seed ()) with
            M.Interp.tamper = Some plan;
            observer = Some observer;
          }
      in
      match attacked.M.Interp.injection with
      | None -> ()
      | Some _ ->
          incr injected;
          if M.Interp.control_flow_changed benign attacked then incr cf;
          if attacked.M.Interp.alarms <> [] then incr ipds_det;
          let terminal =
            match attacked.M.Interp.reason with
            | M.Interp.Exited _ -> "exit"
            | M.Interp.Halted -> "halt"
            | M.Interp.Fault _ -> "fault"
            | M.Interp.Out_of_steps -> "steps"
            | M.Interp.Trapped _ -> "trap"
          in
          let attacked_trace = List.rev (terminal :: !syscalls) in
          if B.Ngram.flags model attacked_trace then incr ngram_det
    end
  done;
  {
    workload = w.W.name;
    ngram_fp = float_of_int fp /. float_of_int (max 1 holdout_runs);
    ngram_detected = !ngram_det;
    ipds_detected = !ipds_det;
    cf_changed = !cf;
    attacks = !injected;
  }

(* Each workload's campaign draws from its own (seed, name)-salted RNG,
   so fanning whole workloads out across domains keeps run_all
   deterministic for any job count. *)
let run_all ?n ?train_runs ?holdout_runs ?attacks ?seed ?jobs ?pool () =
  Pool.with_opt ?jobs ?pool (fun pool ->
      Pool.map' pool (run ?n ?train_runs ?holdout_runs ?attacks ?seed) W.all)

let render rows =
  let mean f =
    match Stats.mean (List.map f rows) with
    | None -> "n/a"
    | Some m -> Table.pct m
  in
  let body =
    List.map
      (fun r ->
        [
          r.workload;
          Table.pct r.ngram_fp;
          Table.pct (float_of_int r.ngram_detected /. float_of_int (max 1 r.attacks));
          "0.0%";
          Table.pct (float_of_int r.ipds_detected /. float_of_int (max 1 r.attacks));
        ])
      rows
  in
  let avg =
    [
      "AVERAGE";
      mean (fun r -> r.ngram_fp);
      mean (fun r -> float_of_int r.ngram_detected /. float_of_int (max 1 r.attacks));
      "0.0%";
      mean (fun r -> float_of_int r.ipds_detected /. float_of_int (max 1 r.attacks));
    ]
  in
  Table.render
    ~header:
      [ "benchmark"; "ngram FP rate"; "ngram detected"; "IPDS FP rate"; "IPDS detected" ]
    (body @ [ avg ])
