(** Structured JSONL event sink.

    One process-global sink, configured once at startup (the [--events]
    flag or the [IPDS_EVENTS] environment variable).  When enabled,
    every event is one line of JSON:

    {v {"kind":"…","seq":12,"ts":1754450000.123,…fields} v}

    The first line is always the run manifest
    ([{"kind":"manifest","seq":0,"ts":…,"manifest":{…}}]) — set the
    {!Manifest} fields {e before} calling {!set_path}.  Lines are
    written under a mutex and flushed individually, so concurrent
    domains interleave whole lines, never bytes, and a crashed run
    leaves a valid prefix.

    Emitting is cheap when disabled: {!enabled} is one atomic load, and
    hot paths are expected to guard field construction with it. *)

val set_path : string option -> unit
(** [Some path] (re)opens the sink, truncating [path] and writing the
    manifest line; [None] closes it.  Not for use while other domains
    are emitting — configure before fan-out. *)

val enabled : unit -> bool

val emit : kind:string -> (string * Json.t) list -> unit
(** No-op when disabled.  [seq] and [ts] are added automatically; the
    given fields follow them. *)

val close : unit -> unit
(** Flush and close; idempotent.  Equivalent to [set_path None]. *)
