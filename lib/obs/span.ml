type agg = { mutable count : int; mutable seconds : float }

let table : (string, agg) Hashtbl.t = Hashtbl.create 32
let mutex = Mutex.create ()

let record name dt =
  Mutex.lock mutex;
  (match Hashtbl.find_opt table name with
  | Some a ->
      a.count <- a.count + 1;
      a.seconds <- a.seconds +. dt
  | None -> Hashtbl.replace table name { count = 1; seconds = dt });
  Mutex.unlock mutex

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record name (Unix.gettimeofday () -. t0)) f

let get name =
  Mutex.lock mutex;
  let r =
    match Hashtbl.find_opt table name with
    | Some a -> (a.count, a.seconds)
    | None -> (0, 0.)
  in
  Mutex.unlock mutex;
  r

let snapshot () =
  Mutex.lock mutex;
  let entries =
    Hashtbl.fold (fun k a acc -> (k, (a.count, a.seconds)) :: acc) table []
  in
  Mutex.unlock mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let snapshot_json () =
  Json.Obj
    (List.map
       (fun (name, (count, seconds)) ->
         ( name,
           Json.Obj [ ("count", Json.Int count); ("seconds", Json.Float seconds) ]
         ))
       (snapshot ()))

let clear name =
  Mutex.lock mutex;
  Hashtbl.remove table name;
  Mutex.unlock mutex

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  Mutex.unlock mutex
