(** Lightweight named span timers.

    Wall-clock accumulation per name — how long the process spent in
    each phase or subsystem, and how many times it entered it.  Timings
    are inherently nondeterministic, so spans live outside the
    {!Registry} determinism contract and are reported in the [runtime]
    section of metrics outputs, never in the deterministic [metrics]
    object. *)

val time : string -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock duration under the name
    (also on exception). *)

val record : string -> float -> unit
(** Accumulate an externally measured duration in seconds. *)

val get : string -> int * float
(** [(count, total_seconds)]; [(0, 0.)] for names never recorded. *)

val snapshot : unit -> (string * (int * float)) list
(** Sorted by name. *)

val snapshot_json : unit -> Json.t
(** [{"name":{"count":n,"seconds":s}, …}] sorted by name. *)

val clear : string -> unit
val reset : unit -> unit
