let table : (string, Json.t) Hashtbl.t = Hashtbl.create 16
let mutex = Mutex.create ()

let set name v =
  Mutex.lock mutex;
  Hashtbl.replace table name v;
  Mutex.unlock mutex

let set_int name n = set name (Json.Int n)
let set_string name s = set name (Json.String s)

let to_json () =
  Mutex.lock mutex;
  let fields = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  Mutex.unlock mutex;
  Json.Obj (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  Mutex.unlock mutex
