type sink = { oc : out_channel; mutable seq : int }

let active = Atomic.make false  (* mirrors [sink != None]; lock-free fast path *)
let sink : sink option ref = ref None
let mutex = Mutex.create ()

let enabled () = Atomic.get active

let write_line s line =
  output_string s.oc (Json.to_string line);
  output_char s.oc '\n';
  flush s.oc;
  s.seq <- s.seq + 1

let header_line s =
  write_line s
    (Json.Obj
       [
         ("kind", Json.String "manifest");
         ("seq", Json.Int s.seq);
         ("ts", Json.Float (Unix.gettimeofday ()));
         ("manifest", Manifest.to_json ());
       ])

let close_locked () =
  match !sink with
  | None -> ()
  | Some s ->
      Atomic.set active false;
      sink := None;
      close_out s.oc

let set_path path =
  Mutex.lock mutex;
  (match
     close_locked ();
     match path with
     | None -> ()
     | Some p ->
         let s = { oc = open_out p; seq = 0 } in
         header_line s;
         sink := Some s;
         Atomic.set active true
   with
  | () -> Mutex.unlock mutex
  | exception e ->
      Mutex.unlock mutex;
      raise e);
  ()

let close () = set_path None

let emit ~kind fields =
  if Atomic.get active then begin
    Mutex.lock mutex;
    (match !sink with
    | None -> ()  (* closed between the check and the lock *)
    | Some s ->
        write_line s
          (Json.Obj
             (("kind", Json.String kind)
             :: ("seq", Json.Int s.seq)
             :: ("ts", Json.Float (Unix.gettimeofday ()))
             :: fields)));
    Mutex.unlock mutex
  end
