(** Process-global, domain-safe metrics registry.

    Metrics are named, created on first use (creation is idempotent:
    asking for an existing name returns the existing metric; asking with
    a different kind is a programming error), and backed by per-domain
    shards of [Atomic] cells, so hot-path increments from any number of
    domains never contend on a lock and merge deterministically.

    {b Determinism contract.}  All metric values are integers and every
    read is a commutative merge (sum for counters and histogram buckets,
    max for gauges), so a {e stable} metric whose increments are a
    deterministic multiset — as every increment driven by the
    deterministic experiment harness is — has a value independent of the
    domain count and of scheduling.  Metrics whose very increments
    depend on parallelism (pool utilisation, wait counts) must be
    registered with [~stable:false]; they are excluded from
    [snapshot ~stability:`Stable], which is what the bench report's
    [metrics] object is built from and what the [--jobs 1] vs
    [--jobs N] byte-identity guarantee covers.

    Snapshots taken while other domains are still incrementing are
    internally consistent per cell but not a point-in-time cut; the
    harness only snapshots at phase boundaries when workers are idle. *)

(** {2 Counters} *)

type counter

val counter : ?stable:bool -> string -> counter
(** [stable] defaults to [true]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_reset : counter -> unit

(** {2 Gauges (monotone max)} *)

type gauge

val gauge : ?stable:bool -> string -> gauge

val gauge_max : gauge -> int -> unit
(** Raises the gauge to [v] if above its current value.  Max-merge is
    the only parallel-deterministic gauge semantics, so that is the only
    one offered; values are clamped at 0 from below. *)

val gauge_value : gauge -> int
val gauge_reset : gauge -> unit

(** {2 Fixed-bucket histograms} *)

type histogram

val histogram : ?stable:bool -> ?bounds:int array -> string -> histogram
(** [bounds] are inclusive upper bounds of the buckets, strictly
    increasing; one overflow bucket is added past the last bound.  The
    default is powers of four from 1 to 4^10. *)

val observe : histogram -> int -> unit

type histogram_view = {
  bounds : int array;
  counts : int array;  (** one per bound, plus the overflow bucket *)
  count : int;
  sum : int;
}

val histogram_value : histogram -> histogram_view

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of histogram_view

val snapshot :
  ?stability:[ `Stable | `Unstable | `All ] -> unit -> (string * value) list
(** Sorted by metric name; [stability] defaults to [`All]. *)

val snapshot_json : ?stability:[ `Stable | `Unstable | `All ] -> unit -> Json.t
(** Counters render as bare integers; gauges as
    [{"type":"gauge","value":v}]; histograms as
    [{"type":"histogram","count":..,"sum":..,"buckets":[{"le":..,"n":..}…]}]
    with [le:null] on the overflow bucket. *)

val reset : unit -> unit
(** Zero every registered metric (the registrations survive).  For
    tests and long-lived processes starting a fresh run. *)
