(** The per-run manifest: what would be needed to reproduce this run.

    A process-global set of named fields (seed, jobs, options,
    format version, tool, targets…) that entry points fill in as they
    parse their command line.  The manifest is written as the first line
    of every JSONL event stream ({!Events.set_path}) and embedded in
    [--metrics-out] files and bench [--json] reports. *)

val set : string -> Json.t -> unit
(** Last write per field wins. *)

val set_int : string -> int -> unit
val set_string : string -> string -> unit

val to_json : unit -> Json.t
(** An object with fields sorted by name. *)

val reset : unit -> unit
