(** Minimal compact JSON encoder for the observability layer.

    [ipds_obs] sits below every other library, so it cannot reuse
    [Ipds_harness.Json]; this is the single-line flavour used for JSONL
    event streams, manifests and [--metrics-out] files.  Encoding is
    deterministic: no hash-order iteration, no locale, shortest float
    form that round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line (no newlines are ever emitted, so a value per
    line is valid JSONL).  Non-finite floats serialize as [null]. *)

val write_file : string -> t -> unit
(** Atomic publish: writes a unique per-process temp file next to
    [path], then renames over it.  Concurrent writers to the same path
    can interleave freely; the survivor is one complete document. *)
