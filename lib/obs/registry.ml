(* Each metric owns [shard_count] Atomic cells; a domain writes the cell
   indexed by its id, so concurrent increments from distinct domains
   rarely collide on a cache line and never spin against each other for
   long.  Reads merge all shards with a commutative operation (sum or
   max), which is what makes stable metrics independent of scheduling. *)

let shard_count = 64
let shard () = (Domain.self () :> int) land (shard_count - 1)
let make_cells () = Array.init shard_count (fun _ -> Atomic.make 0)
let reset_cells cells = Array.iter (fun c -> Atomic.set c 0) cells
let sum_cells cells = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells

type counter = { c_cells : int Atomic.t array }
type gauge = { g_cells : int Atomic.t array }

type histogram = {
  h_bounds : int array;
  h_cells : int Atomic.t array;  (* shard-major: shard * stride + bucket *)
  h_sum : int Atomic.t array;
  h_count : int Atomic.t array;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

let registry : (string, bool * metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let register name stable build describe =
  Mutex.lock registry_mutex;
  let m =
    match Hashtbl.find_opt registry name with
    | Some (_, existing) -> existing
    | None ->
        let m = build () in
        Hashtbl.replace registry name (stable, m);
        m
  in
  Mutex.unlock registry_mutex;
  match describe m with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Obs.Registry: %s has another kind" name)

let counter ?(stable = true) name =
  register name stable
    (fun () -> M_counter { c_cells = make_cells () })
    (function M_counter c -> Some c | M_gauge _ | M_histogram _ -> None)

let incr c = ignore (Atomic.fetch_and_add c.c_cells.(shard ()) 1)
let add c n = ignore (Atomic.fetch_and_add c.c_cells.(shard ()) n)
let counter_value c = sum_cells c.c_cells
let counter_reset c = reset_cells c.c_cells

let gauge ?(stable = true) name =
  register name stable
    (fun () -> M_gauge { g_cells = make_cells () })
    (function M_gauge g -> Some g | M_counter _ | M_histogram _ -> None)

let gauge_max g v =
  let cell = g.g_cells.(shard ()) in
  let rec raise_to () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then raise_to ()
  in
  raise_to ()

let gauge_value g = Array.fold_left (fun acc c -> max acc (Atomic.get c)) 0 g.g_cells
let gauge_reset g = reset_cells g.g_cells

let default_bounds =
  (* powers of four: 1 .. ~1M, a decade-ish spread for counts, sizes and
     latencies alike *)
  Array.init 11 (fun i -> 1 lsl (2 * i))

let histogram ?(stable = true) ?(bounds = default_bounds) name =
  let ok = ref (Array.length bounds > 0) in
  Array.iteri (fun i b -> if i > 0 && b <= bounds.(i - 1) then ok := false) bounds;
  if not !ok then invalid_arg "Obs.Registry.histogram: bounds not increasing";
  register name stable
    (fun () ->
      let stride = Array.length bounds + 1 in
      M_histogram
        {
          h_bounds = Array.copy bounds;
          h_cells = Array.init (shard_count * stride) (fun _ -> Atomic.make 0);
          h_sum = make_cells ();
          h_count = make_cells ();
        })
    (function M_histogram h -> Some h | M_counter _ | M_gauge _ -> None)

let bucket_of bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let s = shard () in
  let stride = Array.length h.h_bounds + 1 in
  ignore (Atomic.fetch_and_add h.h_cells.((s * stride) + bucket_of h.h_bounds v) 1);
  ignore (Atomic.fetch_and_add h.h_sum.(s) v);
  ignore (Atomic.fetch_and_add h.h_count.(s) 1)

type histogram_view = {
  bounds : int array;
  counts : int array;
  count : int;
  sum : int;
}

let histogram_value h =
  let stride = Array.length h.h_bounds + 1 in
  let counts = Array.make stride 0 in
  for s = 0 to shard_count - 1 do
    for b = 0 to stride - 1 do
      counts.(b) <- counts.(b) + Atomic.get h.h_cells.((s * stride) + b)
    done
  done;
  {
    bounds = Array.copy h.h_bounds;
    counts;
    count = sum_cells h.h_count;
    sum = sum_cells h.h_sum;
  }

type value =
  | Counter of int
  | Gauge of int
  | Histogram of histogram_view

let snapshot ?(stability = `All) () =
  Mutex.lock registry_mutex;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  entries
  |> List.filter (fun (_, (stable, _)) ->
         match stability with
         | `All -> true
         | `Stable -> stable
         | `Unstable -> not stable)
  |> List.map (fun (name, (_, m)) ->
         ( name,
           match m with
           | M_counter c -> Counter (counter_value c)
           | M_gauge g -> Gauge (gauge_value g)
           | M_histogram h -> Histogram (histogram_value h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let json_of_value = function
  | Counter n -> Json.Int n
  | Gauge n -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Int n) ]
  | Histogram v ->
      let buckets =
        List.init
          (Array.length v.counts)
          (fun i ->
            Json.Obj
              [
                ( "le",
                  if i < Array.length v.bounds then Json.Int v.bounds.(i)
                  else Json.Null );
                ("n", Json.Int v.counts.(i));
              ])
      in
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int v.count);
          ("sum", Json.Int v.sum);
          ("buckets", Json.List buckets);
        ]

let snapshot_json ?stability () =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) (snapshot ?stability ()))

let reset () =
  Mutex.lock registry_mutex;
  let metrics = Hashtbl.fold (fun _ (_, m) acc -> m :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.iter
    (function
      | M_counter c -> counter_reset c
      | M_gauge g -> gauge_reset g
      | M_histogram h ->
          Array.iter (fun c -> Atomic.set c 0) h.h_cells;
          reset_cells h.h_sum;
          reset_cells h.h_count)
    metrics
