type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string t =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

let tmp_serial = Atomic.make 0

let write_file path t =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_serial 1)
  in
  let oc = open_out tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string t);
         output_char oc '\n')
   with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
