(* Forward interval/predicate flow over registers, solved on the generic
   dataflow framework with branch-edge refinement and widening.

   Registers are the right granularity for soundness under tampering:
   the attacker model mutates *memory*, and memory only reaches a
   register through [Load] — which this analysis maps to [top].  So a
   fact proved here holds for every execution, tampered or not, and a
   branch direction whose inverse image meets the incoming facts at
   [Never] can be pruned from the feasible CFG without ever mispruning a
   tampered run into silence. *)

module Mir = Ipds_mir
module Feas = Ipds_cfg.Feasibility

module Domain = struct
  type t =
    | Unreachable
    | Env of Pred.t array  (* indexed by register *)

  let equal a b =
    match a, b with
    | Unreachable, Unreachable -> true
    | Env x, Env y -> Array.for_all2 Pred.equal x y
    | (Unreachable | Env _), _ -> false

  let join a b =
    match a, b with
    | Unreachable, x | x, Unreachable -> x
    | Env x, Env y -> Env (Array.map2 Pred.join x y)
end

module Solver = Ipds_dataflow.Framework.Forward (Domain)

type t = {
  func : Mir.Func.t;
  feas : Feas.t option;
  block_in : Domain.t array;
}

let as_point = function
  | Pred.In i -> (
      match i.Interval.lo, i.Interval.hi with
      | Some l, Some h when l = h -> Some l
      | (Some _ | None), (Some _ | None) -> None)
  | Pred.Except _ | Pred.Never -> None

let eval_binop op pa pb =
  match as_point pa, as_point pb with
  | Some a, Some b -> Pred.In (Interval.point (Mir.Binop.eval op a b))
  | a_pt, b_pt -> (
      match op with
      | Mir.Binop.Add -> (
          match a_pt, b_pt, pa, pb with
          | _, Some k, _, _ -> Pred.shift pa k
          | Some k, _, _, _ -> Pred.shift pb k
          | None, None, Pred.In ia, Pred.In ib -> Pred.In (Interval.add ia ib)
          | None, None, _, _ -> Pred.top)
      | Mir.Binop.Sub -> (
          match a_pt, b_pt, pa, pb with
          | _, Some k, _, _ -> Pred.shift pa (-k)
          | Some k, _, _, _ -> Pred.shift (Pred.neg pb) k
          | None, None, Pred.In ia, Pred.In ib -> Pred.In (Interval.sub ia ib)
          | None, None, _, _ -> Pred.top)
      | Mir.Binop.Mul -> (
          match a_pt, b_pt, pa, pb with
          | _, Some k, Pred.In ia, _ -> Pred.In (Interval.mul_const ia k)
          | Some k, _, _, Pred.In ib -> Pred.In (Interval.mul_const ib k)
          | _, _, _, _ -> Pred.top)
      | Mir.Binop.Div | Mir.Binop.Rem | Mir.Binop.And | Mir.Binop.Or
      | Mir.Binop.Xor | Mir.Binop.Shl | Mir.Binop.Shr ->
          Pred.top)

let operand env = function
  | Mir.Operand.Reg r -> env.(Mir.Reg.index r)
  | Mir.Operand.Imm n -> Pred.In (Interval.point n)

let set env r p =
  let env = Array.copy env in
  env.(Mir.Reg.index r) <- p;
  env

let step env (i : Mir.Instr.t) =
  match i.op with
  | Mir.Op.Const (r, n) -> set env r (Pred.In (Interval.point n))
  | Mir.Op.Move (r, o) -> set env r (operand env o)
  | Mir.Op.Binop (r, op, a, b) ->
      set env r (eval_binop op (operand env a) (operand env b))
  | Mir.Op.Load (r, _) | Mir.Op.Addr_of (r, _, _) | Mir.Op.Input (r, _) ->
      set env r Pred.top
  | Mir.Op.Call { dst = Some r; _ } -> set env r Pred.top
  | Mir.Op.Call { dst = None; _ } | Mir.Op.Store _ | Mir.Op.Output _
  | Mir.Op.Nop ->
      env

let transfer_block (f : Mir.Func.t) b d =
  match d with
  | Domain.Unreachable -> Domain.Unreachable
  | Domain.Env env ->
      Domain.Env (Array.fold_left step env f.blocks.(b).Mir.Block.body)

let swap_cmp = function
  | Mir.Cmp.Eq -> Mir.Cmp.Eq
  | Mir.Cmp.Ne -> Mir.Cmp.Ne
  | Mir.Cmp.Lt -> Mir.Cmp.Gt
  | Mir.Cmp.Le -> Mir.Cmp.Ge
  | Mir.Cmp.Gt -> Mir.Cmp.Lt
  | Mir.Cmp.Ge -> Mir.Cmp.Le

(* [Some pred] constraining [reg] for the branch to go [taken], when one
   side of the comparison is statically a single value. *)
let direction_pred env cmp lhs rhs ~taken =
  match rhs with
  | Mir.Operand.Imm k -> Some (lhs, Cond.value_pred Cond.identity cmp k ~taken)
  | Mir.Operand.Reg r2 -> (
      match as_point env.(Mir.Reg.index r2) with
      | Some k -> Some (lhs, Cond.value_pred Cond.identity cmp k ~taken)
      | None -> (
          match as_point env.(Mir.Reg.index lhs) with
          | Some k ->
              (* k cmp r2  <=>  r2 (swap cmp) k *)
              Some (r2, Cond.value_pred Cond.identity (swap_cmp cmp) k ~taken)
          | None -> None))

let refine_edge (f : Mir.Func.t) ~src ~dst d =
  match d with
  | Domain.Unreachable -> Domain.Unreachable
  | Domain.Env env -> (
      match f.blocks.(src).Mir.Block.term with
      | Mir.Terminator.Branch { cmp; lhs; rhs; if_true; if_false }
        when if_true <> if_false && (dst = if_true || dst = if_false) -> (
          let taken = dst = if_true in
          match direction_pred env cmp lhs rhs ~taken with
          | None -> d
          | Some (r, p) -> (
              let idx = Mir.Reg.index r in
              match Pred.meet env.(idx) p with
              | Pred.Never -> Domain.Unreachable
              | m when Pred.equal m env.(idx) -> d
              | m ->
                  let env = Array.copy env in
                  env.(idx) <- m;
                  Domain.Env env))
      | Mir.Terminator.Branch _ | Mir.Terminator.Jump _
      | Mir.Terminator.Return _ | Mir.Terminator.Halt ->
          d)

let widen a b =
  match a, b with
  | Domain.Unreachable, x | x, Domain.Unreachable -> x
  | Domain.Env x, Domain.Env y -> Domain.Env (Array.map2 Pred.widen x y)

let analyze ?feas (f : Mir.Func.t) =
  let view =
    match feas with
    | Some feas -> Feas.view feas
    | None -> Feas.view_of_cfg (Ipds_cfg.Cfg.make f)
  in
  let entry = Domain.Env (Array.make f.Mir.Func.reg_count Pred.top) in
  let block_in, _ =
    Solver.solve ~edge:(refine_edge f) ~widen view ~entry
      ~bottom:Domain.Unreachable
      ~transfer:(transfer_block f)
  in
  { func = f; feas; block_in }

let env_at_term t b =
  match transfer_block t.func b t.block_in.(b) with
  | Domain.Unreachable -> None
  | Domain.Env env -> Some env

let pred_before t ~iid reg =
  let f = t.func in
  let blk_idx, pos =
    match Mir.Func.location f iid with
    | Mir.Func.Body (b, p) -> (b, p)
    | Mir.Func.Term b -> (b, Array.length f.blocks.(b).Mir.Block.body)
  in
  match t.block_in.(blk_idx) with
  | Domain.Unreachable -> Pred.Never
  | Domain.Env env0 ->
      let env = ref env0 in
      let blk = f.blocks.(blk_idx) in
      for p = 0 to pos - 1 do
        env := step !env blk.Mir.Block.body.(p)
      done;
      !env.(Mir.Reg.index reg)

let infeasible_directions t =
  let f = t.func in
  let already iid taken =
    match t.feas with Some fe -> Feas.is_pruned fe iid taken | None -> false
  in
  let out = ref [] in
  Array.iteri
    (fun b (blk : Mir.Block.t) ->
      match blk.term with
      | Mir.Terminator.Branch { cmp; lhs; rhs; if_true; if_false }
        when if_true <> if_false -> (
          match env_at_term t b with
          | None -> ()
          | Some env ->
              List.iter
                (fun taken ->
                  if not (already blk.term_iid taken) then
                    match direction_pred env cmp lhs rhs ~taken with
                    | Some (r, p)
                      when Pred.equal
                             (Pred.meet env.(Mir.Reg.index r) p)
                             Pred.Never ->
                        out := (blk.term_iid, taken) :: !out
                    | Some _ | None -> ())
                [ true; false ])
      | Mir.Terminator.Branch _ | Mir.Terminator.Jump _
      | Mir.Terminator.Return _ | Mir.Terminator.Halt ->
          ())
    f.blocks;
  List.sort compare !out
