(** Integer intervals with open ends, the ranges of §4 of the paper
    ("range \[0, 5\] subsumes range \[0, 10\]"). *)

type t = private {
  lo : int option;  (** [None] is -inf *)
  hi : int option;  (** [None] is +inf *)
}
(** Invariant: non-empty ([lo <= hi] when both are finite). *)

val make : lo:int option -> hi:int option -> t option
(** [None] if the interval would be empty. *)

val top : t
val point : int -> t
val at_most : int -> t
val at_least : int -> t
val is_top : t -> bool
val mem : int -> t -> bool
val subset : t -> t -> bool
(** [subset a b] — every member of [a] is in [b] ("b subsumes a"). *)

val shift : t -> int -> t
(** [shift t k] adds [k] to both ends (saturating at infinities). *)

val neg : t -> t
(** Pointwise negation: \[lo, hi\] becomes \[-hi, -lo\]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
