(** Integer intervals with open ends, the ranges of §4 of the paper
    ("range \[0, 5\] subsumes range \[0, 10\]"). *)

type t = private {
  lo : int option;  (** [None] is -inf *)
  hi : int option;  (** [None] is +inf *)
}
(** Invariant: non-empty ([lo <= hi] when both are finite). *)

val make : lo:int option -> hi:int option -> t option
(** [None] if the interval would be empty. *)

val top : t
val point : int -> t
val at_most : int -> t
val at_least : int -> t
val is_top : t -> bool
val mem : int -> t -> bool
val subset : t -> t -> bool
(** [subset a b] — every member of [a] is in [b] ("b subsumes a"). *)

val shift : t -> int -> t
(** [shift t k] adds [k] to both ends (saturating at infinities). *)

val neg : t -> t
(** Pointwise negation: \[lo, hi\] becomes \[-hi, -lo\]. *)

val equal : t -> t -> bool

val join : t -> t -> t
(** Convex hull (least upper bound). *)

val meet : t -> t -> t option
(** Intersection; [None] when empty. *)

val widen : t -> t -> t
(** [widen old next] — keeps each bound of [old] that [next] did not
    move past, and drops the others to infinity.  An upper bound of both
    arguments that can only strictly grow twice, so widened chains
    stabilize. *)

val add : t -> t -> t
(** Pointwise sum hull (exact). *)

val sub : t -> t -> t
(** Pointwise difference hull (exact). *)

val mul_const : t -> int -> t
(** Hull of [{ n * k | n in t }]. *)

val remove_point : t -> int -> t option
(** Tightest interval containing [t] minus [c]: shaves an endpoint, or
    [None] when [t] is exactly the point [c]. *)

val pp : Format.formatter -> t -> unit
