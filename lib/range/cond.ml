module Mir = Ipds_mir

type affine = {
  scale : int;
  offset : int;
}

let identity = { scale = 1; offset = 0 }
let compose_add a k = { a with offset = a.offset + k }
let compose_sub_from k a = { scale = -a.scale; offset = k - a.offset }
let compose_neg a = compose_sub_from 0 a

let max_scale = 1 lsl 20

let compose_mul a k =
  if k = 0 || abs (a.scale * k) > max_scale || abs (a.offset * k) > (1 lsl 40) then
    None
  else Some { scale = a.scale * k; offset = a.offset * k }

let compose_shl a k =
  if k < 0 || k > 32 then None else compose_mul a (1 lsl k)

(* Floor/ceil division for possibly negative operands. *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r lxor b < 0 then q - 1 else q

let cdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r lxor b >= 0 then q + 1 else q

(* Predicate on the tested register [w] itself. *)
let tested_pred (cmp : Mir.Cmp.t) k ~taken =
  let c = if taken then cmp else Mir.Cmp.negate cmp in
  match c with
  | Mir.Cmp.Lt -> Pred.In (Interval.at_most (k - 1))
  | Mir.Cmp.Le -> Pred.In (Interval.at_most k)
  | Mir.Cmp.Gt -> Pred.In (Interval.at_least (k + 1))
  | Mir.Cmp.Ge -> Pred.In (Interval.at_least k)
  | Mir.Cmp.Eq -> Pred.In (Interval.point k)
  | Mir.Cmp.Ne -> Pred.Except k

(* Exact inverse image: the set of x with [scale * x + offset] in [p]. *)
let to_underlying a (p : Pred.t) =
  let k = a.scale and b = a.offset in
  assert (k <> 0);
  match p with
  | Pred.Never -> Pred.Never
  | Pred.Except c ->
      (* kx + b <> c: constrains x only when k divides c - b *)
      if (c - b) mod k = 0 then Pred.Except ((c - b) / k) else Pred.top
  | Pred.In i ->
      (* lo <= kx + b <= hi *)
      let bound v = Option.map (fun n -> n - b) v in
      let lo = bound i.Interval.lo and hi = bound i.Interval.hi in
      let lo', hi' =
        if k > 0 then (Option.map (fun n -> cdiv n k) lo, Option.map (fun n -> fdiv n k) hi)
        else (Option.map (fun n -> cdiv n k) hi, Option.map (fun n -> fdiv n k) lo)
      in
      Pred.of_interval (Interval.make ~lo:lo' ~hi:hi')

(* Forward hull: exact for |scale| = 1, interval hull otherwise. *)
let apply a (p : Pred.t) =
  let k = a.scale and b = a.offset in
  match p with
  | Pred.Never -> Pred.Never
  | Pred.Except c ->
      if abs k = 1 then Pred.Except ((k * c) + b) else Pred.top
  | Pred.In i ->
      let map v = Option.map (fun n -> (k * n) + b) v in
      let lo, hi =
        if k > 0 then (map i.Interval.lo, map i.Interval.hi)
        else (map i.Interval.hi, map i.Interval.lo)
      in
      Pred.of_interval (Interval.make ~lo ~hi)

let value_pred a cmp k ~taken = to_underlying a (tested_pred cmp k ~taken)

let forced_direction a cmp k fact =
  if Pred.subset fact (value_pred a cmp k ~taken:true) then Some true
  else if Pred.subset fact (value_pred a cmp k ~taken:false) then Some false
  else None
