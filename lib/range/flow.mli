(** Forward range flow over registers, on the generic dataflow
    framework: interval/predicate facts propagate along CFG edges,
    refined by the branch condition on each outgoing edge
    ([?edge] hook) and widened on loops ([?widen] hook).

    The facts are sound for {e every} execution — including tampered
    ones, because tampering mutates memory and memory enters a register
    only through [Load], which this analysis treats as unknown.  A
    branch direction reported by {!infeasible_directions} is therefore
    genuinely impossible and safe for {!Ipds_cfg.Feasibility.prune}. *)

type t

val analyze : ?feas:Ipds_cfg.Feasibility.t -> Ipds_mir.Func.t -> t
(** Solve over the feasibility-pruned view when [feas] is given (more
    pruning can expose more forced branches), else over the raw CFG. *)

val pred_before : t -> iid:int -> Ipds_mir.Reg.t -> Pred.t
(** Facts holding just before instruction [iid] executes; [Never] when
    the point is unreachable. *)

val infeasible_directions : t -> (int * bool) list
(** Branch directions [(term_iid, taken)] no execution can take:
    the direction's exact inverse image meets the incoming facts at
    [Never].  Directions already pruned in [feas] are not re-reported;
    branches whose two targets coincide are never reported.  Sorted. *)
