type t = {
  lo : int option;
  hi : int option;
}

let make ~lo ~hi =
  match lo, hi with
  | Some l, Some h when l > h -> None
  | (Some _ | None), (Some _ | None) -> Some { lo; hi }

let top = { lo = None; hi = None }
let point n = { lo = Some n; hi = Some n }
let at_most n = { lo = None; hi = Some n }
let at_least n = { lo = Some n; hi = None }
let is_top t = t.lo = None && t.hi = None

let mem n t =
  (match t.lo with Some l -> n >= l | None -> true)
  && match t.hi with Some h -> n <= h | None -> true

let subset a b =
  let lo_ok =
    match b.lo with
    | None -> true
    | Some bl -> ( match a.lo with Some al -> al >= bl | None -> false)
  in
  let hi_ok =
    match b.hi with
    | None -> true
    | Some bh -> ( match a.hi with Some ah -> ah <= bh | None -> false)
  in
  lo_ok && hi_ok

let shift t k =
  { lo = Option.map (fun l -> l + k) t.lo; hi = Option.map (fun h -> h + k) t.hi }

let neg t =
  { lo = Option.map (fun h -> -h) t.hi; hi = Option.map (fun l -> -l) t.lo }

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp ppf t =
  let b = function Some n -> string_of_int n | None -> "" in
  Format.fprintf ppf "[%s..%s]" (b t.lo) (b t.hi)
