type t = {
  lo : int option;
  hi : int option;
}

let make ~lo ~hi =
  match lo, hi with
  | Some l, Some h when l > h -> None
  | (Some _ | None), (Some _ | None) -> Some { lo; hi }

let top = { lo = None; hi = None }
let point n = { lo = Some n; hi = Some n }
let at_most n = { lo = None; hi = Some n }
let at_least n = { lo = Some n; hi = None }
let is_top t = t.lo = None && t.hi = None

let mem n t =
  (match t.lo with Some l -> n >= l | None -> true)
  && match t.hi with Some h -> n <= h | None -> true

let subset a b =
  let lo_ok =
    match b.lo with
    | None -> true
    | Some bl -> ( match a.lo with Some al -> al >= bl | None -> false)
  in
  let hi_ok =
    match b.hi with
    | None -> true
    | Some bh -> ( match a.hi with Some ah -> ah <= bh | None -> false)
  in
  lo_ok && hi_ok

let shift t k =
  { lo = Option.map (fun l -> l + k) t.lo; hi = Option.map (fun h -> h + k) t.hi }

let neg t =
  { lo = Option.map (fun h -> -h) t.hi; hi = Option.map (fun l -> -l) t.lo }

let equal a b = a.lo = b.lo && a.hi = b.hi

let join a b =
  let lo =
    match a.lo, b.lo with Some x, Some y -> Some (min x y) | _, _ -> None
  in
  let hi =
    match a.hi, b.hi with Some x, Some y -> Some (max x y) | _, _ -> None
  in
  { lo; hi }

let meet a b =
  let lo =
    match a.lo, b.lo with
    | Some x, Some y -> Some (max x y)
    | (Some _ as x), None -> x
    | None, y -> y
  in
  let hi =
    match a.hi, b.hi with
    | Some x, Some y -> Some (min x y)
    | (Some _ as x), None -> x
    | None, y -> y
  in
  make ~lo ~hi

let widen a b =
  let lo =
    match a.lo, b.lo with
    | Some x, Some y when y >= x -> Some x
    | (Some _ | None), (Some _ | None) -> None
  in
  let hi =
    match a.hi, b.hi with
    | Some x, Some y when y <= x -> Some x
    | (Some _ | None), (Some _ | None) -> None
  in
  { lo; hi }

let add a b =
  let bound x y = match x, y with Some x, Some y -> Some (x + y) | _, _ -> None in
  { lo = bound a.lo b.lo; hi = bound a.hi b.hi }

let sub a b = add a (neg b)

let mul_const t k =
  if k = 0 then point 0
  else
    let map v = Option.map (fun n -> n * k) v in
    if k > 0 then { lo = map t.lo; hi = map t.hi }
    else { lo = map t.hi; hi = map t.lo }

let remove_point t c =
  match t.lo, t.hi with
  | Some l, Some h when l = c && h = c -> None
  | Some l, _ when l = c -> make ~lo:(Some (c + 1)) ~hi:t.hi
  | _, Some h when h = c -> make ~lo:t.lo ~hi:(Some (c - 1))
  | (Some _ | None), (Some _ | None) -> Some t

let pp ppf t =
  let b = function Some n -> string_of_int n | None -> "" in
  Format.fprintf ppf "[%s..%s]" (b t.lo) (b t.hi)
