(** Value predicates: the sets of integers a branch direction can pin a
    value into.  Besides intervals, disequality constraints ([Ne] taken /
    [Eq] not-taken) give punctured lines, and inverse affine images can be
    empty ([Never]: the direction is impossible for any underlying
    value — only a tampered run can take it). *)

type t =
  | In of Interval.t
  | Except of int  (** every integer except this one *)
  | Never  (** no integer at all *)

val top : t
val is_top : t -> bool
val mem : int -> t -> bool
val subset : t -> t -> bool
(** [subset a b] — [a]'s set is contained in [b]'s ([b] subsumes [a]). *)

val shift : t -> int -> t
val neg : t -> t
val of_interval : Interval.t option -> t
(** [None] (an empty interval) becomes [Never]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
