(** Value predicates: the sets of integers a branch direction can pin a
    value into.  Besides intervals, disequality constraints ([Ne] taken /
    [Eq] not-taken) give punctured lines, and inverse affine images can be
    empty ([Never]: the direction is impossible for any underlying
    value — only a tampered run can take it). *)

type t =
  | In of Interval.t
  | Except of int  (** every integer except this one *)
  | Never  (** no integer at all *)

val top : t
val is_top : t -> bool
val mem : int -> t -> bool
val subset : t -> t -> bool
(** [subset a b] — [a]'s set is contained in [b]'s ([b] subsumes [a]). *)

val shift : t -> int -> t
val neg : t -> t
val of_interval : Interval.t option -> t
(** [None] (an empty interval) becomes [Never]. *)

val equal : t -> t -> bool

val join : t -> t -> t
(** Least representable upper bound of the union. *)

val meet : t -> t -> t
(** Over-approximation of the intersection; exact except for
    [Except c /\ Except c'] with distinct constants, and [Never] exactly
    when the intersection is provably empty. *)

val widen : t -> t -> t
(** [widen old next] — interval widening under [In], top on shape
    changes; chains stabilize. *)

val pp : Format.formatter -> t -> unit
