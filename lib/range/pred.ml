type t =
  | In of Interval.t
  | Except of int
  | Never

let top = In Interval.top

let is_top = function
  | In i -> Interval.is_top i
  | Except _ | Never -> false

let mem n = function
  | In i -> Interval.mem n i
  | Except c -> n <> c
  | Never -> false

let subset a b =
  match a, b with
  | Never, _ -> true
  | _, Never -> false
  | In ia, In ib -> Interval.subset ia ib
  | In ia, Except c -> not (Interval.mem c ia)
  | Except _, In ib -> Interval.is_top ib
  | Except c, Except c' -> c = c'

let shift t k =
  match t with
  | In i -> In (Interval.shift i k)
  | Except c -> Except (c + k)
  | Never -> Never

let neg = function
  | In i -> In (Interval.neg i)
  | Except c -> Except (-c)
  | Never -> Never

let of_interval = function
  | Some i -> In i
  | None -> Never

let equal a b =
  match a, b with
  | In ia, In ib -> Interval.equal ia ib
  | Except c, Except c' -> c = c'
  | Never, Never -> true
  | (In _ | Except _ | Never), _ -> false

let join a b =
  match a, b with
  | Never, x | x, Never -> x
  | In ia, In ib -> In (Interval.join ia ib)
  | In i, Except c | Except c, In i ->
      if Interval.mem c i then top else Except c
  | Except c, Except c' -> if c = c' then Except c else top

(* Over-approximation of the intersection (exact except for the
   unrepresentable [Except c /\ Except c'] case). *)
let meet a b =
  match a, b with
  | Never, _ | _, Never -> Never
  | In ia, In ib -> of_interval (Interval.meet ia ib)
  | In i, Except c | Except c, In i -> of_interval (Interval.remove_point i c)
  | Except c, Except c' -> if c = c' then Except c else Except (min c c')

let widen a b =
  match a, b with
  | Never, x | x, Never -> x
  | In ia, In ib -> In (Interval.widen ia ib)
  | Except c, Except c' when c = c' -> a
  | (In _ | Except _), (In _ | Except _) -> top

let pp ppf = function
  | In i -> Interval.pp ppf i
  | Except c -> Format.fprintf ppf "!=%d" c
  | Never -> Format.pp_print_string ppf "never"
