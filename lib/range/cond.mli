(** Branch-condition semantics over affine views of a tracked value.

    A branch testing [w cmp k] where [w = scale * x + offset]
    (scale ≠ 0) pins the underlying value [x] into a predicate for each
    direction; conversely a known predicate on [x] may force the branch's
    direction.  The backward direction ({!value_pred}) is the exact
    inverse image — possibly [Never] when no integer [x] can produce the
    observed direction; the forward direction ({!apply}) is the interval
    hull, an over-approximation that is exact for scale ±1. *)

type affine = {
  scale : int;  (** non-zero *)
  offset : int;
}

val identity : affine
val compose_add : affine -> int -> affine
(** [w' = w + k] *)

val compose_sub_from : int -> affine -> affine
(** [w' = k - w] *)

val compose_neg : affine -> affine

val compose_mul : affine -> int -> affine option
(** [w' = w * k]; [None] for [k = 0] (the result is constant, not
    affine). *)

val compose_shl : affine -> int -> affine option
(** [w' = w lsl k]; [None] for shifts that overflow practical widths. *)

val apply : affine -> Pred.t -> Pred.t
(** Forward image hull: every [scale * x + offset] with [x] in the
    predicate lies in the result. *)

val value_pred : affine -> Ipds_mir.Cmp.t -> int -> taken:bool -> Pred.t
(** [value_pred a cmp k ~taken] — the exact set of underlying values [x]
    for which the branch testing [scale * x + offset cmp k] goes in the
    given direction. *)

val forced_direction : affine -> Ipds_mir.Cmp.t -> int -> Pred.t -> bool option
(** [forced_direction a cmp k fact] — with the underlying value known to
    satisfy [fact], the direction [Some taken] the branch must take, if
    its outcome is fully determined. *)
