module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Forward (D : DOMAIN) = struct
  let solve cfg ~entry ~bottom ~transfer =
    let n = Ipds_cfg.Cfg.n_blocks cfg in
    let block_in = Array.make n bottom in
    let block_out = Array.make n bottom in
    block_in.(0) <- entry;
    let worklist = Queue.create () in
    let on_list = Array.make n false in
    let enqueue b =
      if not on_list.(b) then begin
        on_list.(b) <- true;
        Queue.add b worklist
      end
    in
    Array.iter enqueue (Ipds_cfg.Cfg.reverse_postorder cfg);
    while not (Queue.is_empty worklist) do
      let b = Queue.take worklist in
      on_list.(b) <- false;
      let input =
        List.fold_left
          (fun acc p -> D.join acc block_out.(p))
          (if b = 0 then entry else bottom)
          (Ipds_cfg.Cfg.preds cfg b)
      in
      block_in.(b) <- input;
      let output = transfer b input in
      if not (D.equal output block_out.(b)) then begin
        block_out.(b) <- output;
        List.iter enqueue (Ipds_cfg.Cfg.succs cfg b)
      end
    done;
    (block_in, block_out)
end

module Backward (D : DOMAIN) = struct
  let solve cfg ~exit ~bottom ~transfer =
    let n = Ipds_cfg.Cfg.n_blocks cfg in
    let block_in = Array.make n bottom in
    let block_out = Array.make n bottom in
    let worklist = Queue.create () in
    let on_list = Array.make n false in
    let enqueue b =
      if not on_list.(b) then begin
        on_list.(b) <- true;
        Queue.add b worklist
      end
    in
    let rpo = Ipds_cfg.Cfg.reverse_postorder cfg in
    for i = Array.length rpo - 1 downto 0 do
      enqueue rpo.(i)
    done;
    while not (Queue.is_empty worklist) do
      let b = Queue.take worklist in
      on_list.(b) <- false;
      let succs = Ipds_cfg.Cfg.succs cfg b in
      let output =
        match succs with
        | [] -> exit
        | _ :: _ -> List.fold_left (fun acc s -> D.join acc block_in.(s)) bottom succs
      in
      block_out.(b) <- output;
      let input = transfer b output in
      if not (D.equal input block_in.(b)) then begin
        block_in.(b) <- input;
        List.iter enqueue (Ipds_cfg.Cfg.preds cfg b)
      end
    done;
    (block_in, block_out)
end
