module Feas = Ipds_cfg.Feasibility

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

(* Worklist ordered by a per-block priority (reverse-postorder index for
   forward problems, its mirror for backward ones): always process the
   pending block that comes earliest in the chosen order, instead of
   FIFO insertion order.  For reducible flow graphs this approaches the
   optimal d+2 passes and empirically cuts block visits substantially
   (see test_dataflow's iteration-count regression).  Blocks absent
   from the reverse postorder (unreachable, reached only through a
   pruned edge) sort first under priority -1; ties break on the block
   id, so the iteration order — and the visit count — is deterministic. *)
module Worklist = struct
  module S = Set.Make (struct
    type t = int * int  (* priority, block *)

    let compare = compare
  end)

  type t = {
    mutable set : S.t;
    priority : int array;
    on_list : bool array;
  }

  let create ~n ~rpo ~backward =
    let priority = Array.make n (-1) in
    let last = Array.length rpo - 1 in
    Array.iteri
      (fun i b -> priority.(b) <- (if backward then last - i else i))
      rpo;
    { set = S.empty; priority; on_list = Array.make n false }

  let add t b =
    if not t.on_list.(b) then begin
      t.on_list.(b) <- true;
      t.set <- S.add (t.priority.(b), b) t.set
    end

  let pop t =
    match S.min_elt_opt t.set with
    | None -> None
    | Some ((_, b) as e) ->
        t.set <- S.remove e t.set;
        t.on_list.(b) <- false;
        Some b
end

(* After this many visits of one block, [widen] (when given) is folded
   into its freshly joined input, so infinite-height domains (interval
   environments) still stabilize. *)
let widen_threshold = 4

(* Every solve's visits accumulate here: the visit multiset is fixed by
   the build set, so the counter is stable across --jobs values. *)
let m_visits = Ipds_obs.Registry.counter "dataflow.block_visits"

module Forward (D : DOMAIN) = struct
  let solve ?visits ?edge ?widen (g : Feas.view) ~entry ~bottom ~transfer =
    let n = g.Feas.v_blocks in
    let block_in = Array.make n bottom in
    let block_out = Array.make n bottom in
    block_in.(0) <- entry;
    let wl = Worklist.create ~n ~rpo:g.Feas.v_rpo ~backward:false in
    let seen = Array.make n 0 in
    let count = ref 0 in
    Array.iter (Worklist.add wl) g.Feas.v_rpo;
    let flow p b =
      match edge with
      | None -> block_out.(p)
      | Some f -> f ~src:p ~dst:b block_out.(p)
    in
    let rec drain () =
      match Worklist.pop wl with
      | None -> ()
      | Some b ->
          incr count;
          seen.(b) <- seen.(b) + 1;
          let input =
            List.fold_left
              (fun acc p -> D.join acc (flow p b))
              (if b = 0 then entry else bottom)
              (g.Feas.v_preds b)
          in
          let input =
            match widen with
            | Some w when seen.(b) > widen_threshold -> w block_in.(b) input
            | Some _ | None -> input
          in
          block_in.(b) <- input;
          let output = transfer b input in
          if not (D.equal output block_out.(b)) then begin
            block_out.(b) <- output;
            List.iter (Worklist.add wl) (g.Feas.v_succs b)
          end;
          drain ()
    in
    drain ();
    Ipds_obs.Registry.add m_visits !count;
    Option.iter (fun r -> r := !count) visits;
    (block_in, block_out)
end

module Backward (D : DOMAIN) = struct
  let solve ?visits (g : Feas.view) ~exit ~bottom ~transfer =
    let n = g.Feas.v_blocks in
    let block_in = Array.make n bottom in
    let block_out = Array.make n bottom in
    let wl = Worklist.create ~n ~rpo:g.Feas.v_rpo ~backward:true in
    let count = ref 0 in
    let rpo = g.Feas.v_rpo in
    for i = Array.length rpo - 1 downto 0 do
      Worklist.add wl rpo.(i)
    done;
    let rec drain () =
      match Worklist.pop wl with
      | None -> ()
      | Some b ->
          incr count;
          let succs = g.Feas.v_succs b in
          let output =
            match succs with
            | [] -> exit
            | _ :: _ ->
                List.fold_left (fun acc s -> D.join acc block_in.(s)) bottom succs
          in
          block_out.(b) <- output;
          let input = transfer b output in
          if not (D.equal input block_in.(b)) then begin
            block_in.(b) <- input;
            List.iter (Worklist.add wl) (g.Feas.v_preds b)
          end;
          drain ()
    in
    drain ();
    Ipds_obs.Registry.add m_visits !count;
    Option.iter (fun r -> r := !count) visits;
    (block_in, block_out)
end
