(** Generic iterative monotone dataflow framework over block CFGs. *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Forward (D : DOMAIN) : sig
  val solve :
    Ipds_cfg.Cfg.t ->
    entry:D.t ->
    bottom:D.t ->
    transfer:(int -> D.t -> D.t) ->
    D.t array * D.t array
  (** [solve cfg ~entry ~bottom ~transfer] iterates to a fixpoint and
      returns [(block_in, block_out)].  [entry] seeds the entry block,
      [bottom] every other block; [transfer b d] pushes [d] through block
      [b].  Unreachable blocks keep [bottom]. *)
end

module Backward (D : DOMAIN) : sig
  val solve :
    Ipds_cfg.Cfg.t ->
    exit:D.t ->
    bottom:D.t ->
    transfer:(int -> D.t -> D.t) ->
    D.t array * D.t array
  (** Returns [(block_in, block_out)]: [block_in b] holds before the first
      instruction of [b], [block_out b] after its terminator.  Blocks with
      no successors are seeded with [exit]. *)
end
