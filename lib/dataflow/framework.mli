(** Generic iterative monotone dataflow framework over (possibly
    feasibility-pruned) block CFG views.

    Solvers take an {!Ipds_cfg.Feasibility.view} — the raw CFG
    ({!Ipds_cfg.Feasibility.view_of_cfg}) or a pruned subgraph
    ({!Ipds_cfg.Feasibility.view}) — so propagation only follows edges
    the feasibility layer kept.  On a lattice with monotone transfers
    the maximum-fixed-point solution is unique, so the pruned solution
    is always at least as tight as (pointwise subsumed by) the unpruned
    one, and the [--precision off] solution is independent of the
    worklist order.

    The worklist is priority-ordered by reverse postorder (the same
    order {!Ipds_cfg.Dominators} iterates in), not FIFO insertion
    order; [?visits] reports how many block visits the solve took, and
    every solve also accumulates its visits into the stable obs counter
    ["dataflow.block_visits"]. *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Forward (D : DOMAIN) : sig
  val solve :
    ?visits:int ref ->
    ?edge:(src:int -> dst:int -> D.t -> D.t) ->
    ?widen:(D.t -> D.t -> D.t) ->
    Ipds_cfg.Feasibility.view ->
    entry:D.t ->
    bottom:D.t ->
    transfer:(int -> D.t -> D.t) ->
    D.t array * D.t array
  (** [solve view ~entry ~bottom ~transfer] iterates to a fixpoint and
      returns [(block_in, block_out)].  [entry] seeds the entry block,
      [bottom] every other block; [transfer b d] pushes [d] through
      block [b].  Unreachable blocks keep [bottom].

      [edge ~src ~dst d] (default: identity) refines the value flowing
      along the CFG edge [src -> dst] before it is joined into [dst] —
      branch-condition refinement for the range analysis.

      [widen old new] (default: none) replaces a block's freshly joined
      input once the block has been visited more than a fixed threshold;
      it must return an upper bound of both arguments and may only
      strictly grow finitely often, which restores termination on
      infinite-height domains. *)
end

module Backward (D : DOMAIN) : sig
  val solve :
    ?visits:int ref ->
    Ipds_cfg.Feasibility.view ->
    exit:D.t ->
    bottom:D.t ->
    transfer:(int -> D.t -> D.t) ->
    D.t array * D.t array
  (** Returns [(block_in, block_out)]: [block_in b] holds before the first
      instruction of [b], [block_out b] after its terminator.  Blocks with
      no (surviving) successors are seeded with [exit]. *)
end
