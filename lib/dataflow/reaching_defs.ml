module Mir = Ipds_mir

type def =
  | Entry
  | At of int

module Def_set = Set.Make (struct
  type t = def

  let compare = compare
end)

module Domain = struct
  type t = Def_set.t array  (* indexed by register *)

  let equal a b = Array.for_all2 Def_set.equal a b
  let join a b = Array.map2 Def_set.union a b
end

module Solver = Framework.Forward (Domain)

type t = {
  func : Mir.Func.t;
  block_in : Domain.t array;
}

let transfer_instr state (i : Mir.Instr.t) =
  match Mir.Op.def i.op with
  | None -> state
  | Some r ->
      let state = Array.copy state in
      state.(Mir.Reg.index r) <- Def_set.singleton (At i.iid);
      state

let transfer_block (f : Mir.Func.t) b state =
  Array.fold_left transfer_instr state f.blocks.(b).Mir.Block.body

let compute ?feas cfg =
  let f = Ipds_cfg.Cfg.func cfg in
  let view =
    match feas with
    | Some feas -> Ipds_cfg.Feasibility.view feas
    | None -> Ipds_cfg.Feasibility.view_of_cfg cfg
  in
  let nregs = f.Mir.Func.reg_count in
  let entry = Array.make nregs (Def_set.singleton Entry) in
  let bottom = Array.make nregs Def_set.empty in
  let block_in, _ =
    Solver.solve view ~entry ~bottom ~transfer:(fun b d -> transfer_block f b d)
  in
  { func = f; block_in }

let before t ~iid reg =
  let f = t.func in
  let blk_idx, pos =
    match Mir.Func.location f iid with
    | Mir.Func.Body (b, p) -> (b, p)
    | Mir.Func.Term b -> (b, Array.length f.blocks.(b).Mir.Block.body)
  in
  let blk = f.blocks.(blk_idx) in
  let state = ref t.block_in.(blk_idx) in
  for p = 0 to pos - 1 do
    state := transfer_instr !state blk.body.(p)
  done;
  !state.(Mir.Reg.index reg)

let unique_def t ~iid reg =
  let defs = before t ~iid reg in
  if Def_set.cardinal defs = 1 then Some (Def_set.choose defs) else None
