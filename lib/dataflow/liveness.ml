module Mir = Ipds_mir
module Int_set = Set.Make (Int)

module Domain = struct
  type t = Int_set.t

  let equal = Int_set.equal
  let join = Int_set.union
end

module Solver = Framework.Backward (Domain)

type t = {
  func : Mir.Func.t;
  block_in : Int_set.t array;
  block_out : Int_set.t array;
}

let kill_gen_instr live (i : Mir.Instr.t) =
  let live =
    match Mir.Op.def i.op with
    | Some r -> Int_set.remove (Mir.Reg.index r) live
    | None -> live
  in
  List.fold_left
    (fun acc r -> Int_set.add (Mir.Reg.index r) acc)
    live (Mir.Op.uses i.op)

let transfer_block (f : Mir.Func.t) b live_out =
  let blk = f.blocks.(b) in
  let live =
    List.fold_left
      (fun acc r -> Int_set.add (Mir.Reg.index r) acc)
      live_out
      (Mir.Terminator.uses blk.Mir.Block.term)
  in
  Array.fold_right (fun i acc -> kill_gen_instr acc i) blk.body live

let compute ?feas cfg =
  let f = Ipds_cfg.Cfg.func cfg in
  let view =
    match feas with
    | Some feas -> Ipds_cfg.Feasibility.view feas
    | None -> Ipds_cfg.Feasibility.view_of_cfg cfg
  in
  let block_in, block_out =
    Solver.solve view ~exit:Int_set.empty ~bottom:Int_set.empty
      ~transfer:(fun b d -> transfer_block f b d)
  in
  { func = f; block_in; block_out }

let live_in t b reg = Int_set.mem (Mir.Reg.index reg) t.block_in.(b)

let live_before t ~iid reg =
  let f = t.func in
  let blk_idx, pos =
    match Mir.Func.location f iid with
    | Mir.Func.Body (b, p) -> (b, p)
    | Mir.Func.Term b -> (b, Array.length f.blocks.(b).Mir.Block.body)
  in
  let blk = f.blocks.(blk_idx) in
  let live = ref t.block_out.(blk_idx) in
  (* Walk backwards from the terminator to the queried position. *)
  let live_at_term =
    List.fold_left
      (fun acc r -> Int_set.add (Mir.Reg.index r) acc)
      !live
      (Mir.Terminator.uses blk.Mir.Block.term)
  in
  live := live_at_term;
  for p = Array.length blk.body - 1 downto pos do
    live := kill_gen_instr !live blk.body.(p)
  done;
  Int_set.mem (Mir.Reg.index reg) !live
