(** Register reaching definitions.

    Tracks, for every program point and register, which definitions may
    have produced the register's current value.  [Entry] stands for the
    value at function entry (parameter or uninitialised).  The correlation
    analysis relies on {!unique_def} to trace branch operands back through
    affine chains: only registers with exactly one reaching definition can
    be traced. *)

type def =
  | Entry
  | At of int  (** iid of the defining instruction *)

module Def_set : Set.S with type elt = def

type t

val compute : ?feas:Ipds_cfg.Feasibility.t -> Ipds_cfg.Cfg.t -> t
(** [compute ?feas cfg] solves over the feasibility-pruned view when
    [feas] is given; otherwise over the raw CFG. *)

val before : t -> iid:int -> Ipds_mir.Reg.t -> Def_set.t
(** Definitions of the register reaching the point just before [iid]
    executes. *)

val unique_def : t -> iid:int -> Ipds_mir.Reg.t -> def option
(** [Some d] iff exactly one definition reaches. *)
