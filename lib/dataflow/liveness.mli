(** Backward register liveness (used for statistics and sanity checks;
    the correlation analysis itself reasons about memory variables). *)

type t

val compute : ?feas:Ipds_cfg.Feasibility.t -> Ipds_cfg.Cfg.t -> t
(** [compute ?feas cfg] solves over the feasibility-pruned view when
    [feas] is given; otherwise over the raw CFG. *)

val live_in : t -> int -> Ipds_mir.Reg.t -> bool
(** [live_in t block reg] — is [reg] live at the start of [block]? *)

val live_before : t -> iid:int -> Ipds_mir.Reg.t -> bool
(** Is the register live just before instruction [iid]? *)
