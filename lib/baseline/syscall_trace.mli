(** Extract the "system call trace" of a run: the sequence of external
    (runtime/library) calls the program makes, terminated by how the run
    ended.  This is the granularity classic host-based anomaly detectors
    monitor — far coarser than IPDS's per-branch view. *)

val collect :
  Ipds_mir.Program.t -> config:Ipds_machine.Interp.config -> string list
(** Runs the program (forcing a fresh observer; any observer already in
    [config] is composed with the collector) and returns the extern-call
    name sequence plus a terminal symbol ("exit", "halt", "fault",
    "steps"). *)
