(** N-gram sequence model over event symbols — the classic
    system-call-trace anomaly detector of Forrest et al. ("A Sense of
    Self for Unix Processes"), which the paper's related-work section
    positions IPDS against.

    Training records every window of [n] consecutive symbols seen in
    benign traces; monitoring flags any window absent from that
    database.  Unlike IPDS, the model can raise false positives whenever
    training under-covers benign behaviour. *)

type t

val train : n:int -> string list list -> t
(** [train ~n traces] builds the normal-behaviour database.  Traces
    shorter than [n] contribute their full sequence as one window. *)

val n : t -> int
val size : t -> int
(** Distinct windows in the database. *)

val anomalies : t -> string list -> int
(** Number of windows of the trace absent from the database. *)

val flags : t -> string list -> bool
(** [anomalies > 0]. *)
