module M = Ipds_machine

let collect program ~(config : M.Interp.config) =
  let acc = ref [] in
  let base_observer = config.M.Interp.observer in
  let observer (e : M.Event.t) =
    (match e.M.Event.kind with
    | M.Event.Call { callee } ->
        if not (Ipds_mir.Program.is_defined program callee) then
          acc := callee :: !acc
    | M.Event.Alu | M.Event.Load _ | M.Event.Store _ | M.Event.Branch _
    | M.Event.Jump _ | M.Event.Ret | M.Event.Input_read | M.Event.Output_write _
    | M.Event.Fault_inject _
      ->
        ());
    match base_observer with
    | Some f -> f e
    | None -> ()
  in
  let o = M.Interp.run program { config with M.Interp.observer = Some observer } in
  let terminal =
    match o.M.Interp.reason with
    | M.Interp.Exited _ -> "exit"
    | M.Interp.Halted -> "halt"
    | M.Interp.Fault _ -> "fault"
    | M.Interp.Out_of_steps -> "steps"
    | M.Interp.Trapped _ -> "trap"
  in
  List.rev (terminal :: !acc)
