type t = {
  n : int;
  windows : (string, unit) Hashtbl.t;
}

let key window = String.concat "\x00" window

let rec windows_of n trace =
  if List.length trace <= n then [ trace ]
  else
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    take n trace
    ::
    (match trace with
    | [] -> []
    | _ :: rest -> windows_of n rest)

let train ~n traces =
  if n < 1 then invalid_arg "Ngram.train: n must be >= 1";
  let windows = Hashtbl.create 1024 in
  List.iter
    (fun trace ->
      List.iter (fun w -> Hashtbl.replace windows (key w) ()) (windows_of n trace))
    traces;
  { n; windows }

let n t = t.n
let size t = Hashtbl.length t.windows

let anomalies t trace =
  List.fold_left
    (fun acc w -> if Hashtbl.mem t.windows (key w) then acc else acc + 1)
    0 (windows_of t.n trace)

let flags t trace = anomalies t trace > 0
