module Mir = Ipds_mir
module M = Ipds_machine

type outcome = {
  trace_digest : int;
  branches : int;
  reason : string;
  outputs : int list;
}

let decorrelate (p : Mir.Program.t) =
  {
    p with
    Mir.Program.globals = List.rev p.Mir.Program.globals;
    funcs =
      List.map
        (fun (f : Mir.Func.t) -> { f with Mir.Func.locals = List.rev f.Mir.Func.locals })
        p.Mir.Program.funcs;
  }

let reason_tag = function
  | M.Interp.Exited v -> Format.asprintf "exit:%a" M.Value.pp v
  | M.Interp.Halted -> "halt"
  | M.Interp.Fault m -> "fault:" ^ m
  | M.Interp.Out_of_steps -> "steps"
  | M.Interp.Trapped _ -> "trap"

let canonical (o : M.Interp.outcome) =
  {
    trace_digest = o.M.Interp.trace_digest;
    branches = o.M.Interp.branches;
    reason = reason_tag o.M.Interp.reason;
    outputs = o.M.Interp.outputs;
  }

let diverged a b = a <> b

let run ?config p =
  let config =
    match config with
    | Some c -> c
    | None -> { M.Interp.default_config with record_trace = false }
  in
  M.Interp.run p config
