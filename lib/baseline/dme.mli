(** Diversified-memory-execution (DME) baseline.

    The comparison point from the diversity literature: run two
    variants of the same program that differ only in data layout, feed
    them the same inputs, and flag any divergence in externally visible
    behaviour.  A benign run is layout-oblivious, so the variants
    agree; a memory attack expressed in {e physical} terms (an absolute
    address, {!Ipds_machine.Tamper.site.Mem_write_at}) lands on
    different logical state in each variant and makes them diverge.

    {!decorrelate} builds the second variant by reversing the
    declaration order of the globals segment and of every function's
    locals: cell addresses move (whenever a frame or the globals
    segment holds more than one variable), while instruction ids,
    control flow, and logical semantics stay identical — so benign
    traces are bit-equal and the variant pair costs exactly two
    executions (the ~2x overhead the literature reports).

    {!canonical} projects a run onto what an external comparator can
    see — branch-trace digest, committed-branch count, stop reason,
    and the output stream; {!diverged} is the detector. *)

type outcome = {
  trace_digest : int;
  branches : int;
  reason : string;  (** canonical stop-reason tag, exit value included *)
  outputs : int list;
}

val decorrelate : Ipds_mir.Program.t -> Ipds_mir.Program.t
(** Involutive up to list order: applying it twice restores the
    original declaration order. *)

val canonical : Ipds_machine.Interp.outcome -> outcome
val diverged : outcome -> outcome -> bool

val run :
  ?config:Ipds_machine.Interp.config ->
  Ipds_mir.Program.t ->
  Ipds_machine.Interp.outcome
(** [Interp.run] with [config] (default {!Ipds_machine.Interp.default_config}
    with trace recording off) — convenience for driving variant pairs. *)
