(** Bounded retry schedule: exponential delays from [base], capped
    per-sleep at [max_delay] and at [max_attempts] attempts, so failover
    against a dead fleet terminates within {!total_bound} seconds of
    sleeping. *)

type t

val default : t
(** 20 ms base, ×2, 250 ms cap, 8 attempts. *)

val create :
  ?base:float ->
  ?factor:float ->
  ?max_delay:float ->
  ?max_attempts:int ->
  unit ->
  t

val delay : t -> int -> float
(** Sleep before retry [attempt] (0-based). *)

val max_attempts : t -> int

val total_bound : t -> float
(** Sum of all possible delays — the worst-case total sleep. *)
