(* N-way sharded concurrent LRU map.

   The design follows the popl-hash-table derivation style: the cache is
   a composition of [shards] disjoint sub-caches, each owning the keys
   that hash to it and nothing else, each protected by its own lock with
   its own LRU ring.  Correctness is stated as predicates over the whole
   structure ([key_shard_stable], [capacity_ok],
   [no_cross_shard_aliasing]) that the tests assert after arbitrary
   interleavings; the implementation only ever needs one shard lock per
   operation, so shards never contend with each other.

   The shard lock is held across the loader on a miss: concurrent
   fetches of the *same* key serialize and load once, which is exactly
   the single-lock LRU behaviour the server relied on, now per shard. *)

module Reg = Ipds_obs.Registry

type 'v entry = { key : string; value : 'v }

type 'v shard = {
  lock : Mutex.t;
  mutable ring : 'v entry list;  (* MRU first *)
  (* Mirrors of the obs counters, kept under [lock] so [stats] is an
     exact point-in-time cut per shard. *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m_hits : Reg.counter option;
  m_misses : Reg.counter option;
  m_evictions : Reg.counter option;
}

type 'v t = {
  shards : 'v shard array;
  slots_per_shard : int;
  m_hits : Reg.counter option;
  m_misses : Reg.counter option;
  m_evictions : Reg.counter option;
}

type stats = { hits : int; misses : int; evictions : int; size : int }

let create ?metrics_prefix ~shards ~slots_per_shard () =
  if shards < 1 then invalid_arg "Shard_cache.create: shards must be >= 1";
  if slots_per_shard < 1 then
    invalid_arg "Shard_cache.create: slots_per_shard must be >= 1";
  (* Cache occupancy depends on request interleaving, so every counter
     here is unstable (excluded from the byte-identity snapshots). *)
  let agg suffix =
    Option.map
      (fun p -> Reg.counter ~stable:false (p ^ suffix))
      metrics_prefix
  in
  let per_shard i suffix =
    Option.map
      (fun p ->
        Reg.counter ~stable:false (Printf.sprintf "%s_shard%d%s" p i suffix))
      metrics_prefix
  in
  let mk i =
    {
      lock = Mutex.create ();
      ring = [];
      hits = 0;
      misses = 0;
      evictions = 0;
      m_hits = per_shard i "_hits";
      m_misses = per_shard i "_misses";
      m_evictions = per_shard i "_evictions";
    }
  in
  {
    shards = Array.init shards mk;
    slots_per_shard;
    m_hits = agg "_hits";
    m_misses = agg "_misses";
    m_evictions = agg "_evictions";
  }

let shards t = Array.length t.shards
let slots_per_shard t = t.slots_per_shard
let shard_of_key t key = Hashing.shard_of ~shards:(Array.length t.shards) key

let bump c = Option.iter Reg.incr c

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* Move [key]'s entry to the front; [None] if absent. *)
let promote ring key =
  let rec split acc = function
    | [] -> None
    | e :: rest when String.equal e.key key ->
        Some (e, List.rev_append acc rest)
    | e :: rest -> split (e :: acc) rest
  in
  split [] ring

let fetch t key load =
  let s = t.shards.(shard_of_key t key) in
  locked s (fun () ->
      match promote s.ring key with
      | Some (e, rest) ->
          s.ring <- e :: rest;
          s.hits <- s.hits + 1;
          bump s.m_hits;
          bump t.m_hits;
          `Hit e.value
      | None -> (
          s.misses <- s.misses + 1;
          bump s.m_misses;
          bump t.m_misses;
          match load () with
          | Error e -> `Err e
          | Ok v ->
              let ring = { key; value = v } :: s.ring in
              let n = List.length ring in
              let ring =
                if n > t.slots_per_shard then (
                  s.evictions <- s.evictions + (n - t.slots_per_shard);
                  bump s.m_evictions;
                  bump t.m_evictions;
                  List.filteri (fun i _ -> i < t.slots_per_shard) ring)
                else ring
              in
              s.ring <- ring;
              `Loaded v))

let mem t key =
  let s = t.shards.(shard_of_key t key) in
  locked s (fun () -> List.exists (fun e -> String.equal e.key key) s.ring)

let length t =
  Array.fold_left
    (fun acc s -> acc + locked s (fun () -> List.length s.ring))
    0 t.shards

let shard_stats t i =
  let s = t.shards.(i) in
  locked s (fun () ->
      {
        hits = s.hits;
        misses = s.misses;
        evictions = s.evictions;
        size = List.length s.ring;
      })

let stats t =
  let z = { hits = 0; misses = 0; evictions = 0; size = 0 } in
  Array.to_list t.shards
  |> List.mapi (fun i _ -> shard_stats t i)
  |> List.fold_left
       (fun a b ->
         {
           hits = a.hits + b.hits;
           misses = a.misses + b.misses;
           evictions = a.evictions + b.evictions;
           size = a.size + b.size;
         })
       z

(* {2 Invariants as predicates}

   Each is a total check over a locked snapshot of the shard array.
   They are exported (and asserted by test_fleet / fleet_smoke) rather
   than kept private so any future refactor is held to the same
   contract. *)

let snapshot_keys t =
  Array.to_list t.shards
  |> List.mapi (fun i s ->
         (i, locked s (fun () -> List.map (fun e -> e.key) s.ring)))

(* Every key lives in exactly the shard its hash names. *)
let key_shard_stable t =
  snapshot_keys t
  |> List.for_all (fun (i, keys) ->
         List.for_all (fun k -> shard_of_key t k = i) keys)

(* No shard ever exceeds its slot budget. *)
let capacity_ok t =
  snapshot_keys t
  |> List.for_all (fun (_, keys) -> List.length keys <= t.slots_per_shard)

(* A key is resident at most once across the whole structure (within a
   shard and, with [key_shard_stable], across shards). *)
let no_cross_shard_aliasing t =
  let keys = snapshot_keys t |> List.concat_map snd in
  List.length keys = List.length (List.sort_uniq String.compare keys)

let check_invariants t =
  [
    ("key_shard_stable", key_shard_stable t);
    ("capacity_ok", capacity_ok t);
    ("no_cross_shard_aliasing", no_cross_shard_aliasing t);
  ]
