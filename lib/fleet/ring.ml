(* Consistent-hash ring.

   Each node contributes [vnodes] points at stable positions
   [stable_hash (name ^ "#" ^ i)]; a key routes to the node owning the
   first point clockwise of the key's own hash.  Because surviving
   nodes' points never move, removing a node remaps exactly the keys
   that routed to it — the property the fleet client's failover and the
   fleet smoke test rely on. *)

type t = {
  nodes : string array;
  points : (int * int) array;  (* (position, node index), sorted *)
}

let default_vnodes = 64

let create ?(vnodes = default_vnodes) names =
  if names = [] then invalid_arg "Ring.create: no nodes";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let nodes = Array.of_list names in
  let points =
    Array.init (Array.length nodes * vnodes) (fun k ->
        let n = k / vnodes and v = k mod vnodes in
        (Hashing.stable_hash (nodes.(n) ^ "#" ^ string_of_int v), n))
  in
  Array.sort compare points;
  { nodes; points }

let nodes t = Array.to_list t.nodes

(* Index into [points] of the first point >= h, wrapping to 0. *)
let successor_point t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route t key =
  snd t.points.(successor_point t (Hashing.stable_hash key))

let route_name t key = t.nodes.(route t key)

(* Distinct node indices in ring order starting at the key's point: the
   retry order for a dead primary. *)
let successors t key =
  let n = Array.length t.points in
  let start = successor_point t (Hashing.stable_hash key) in
  let seen = Array.make (Array.length t.nodes) false in
  let out = ref [] in
  for k = 0 to n - 1 do
    let node = snd t.points.((start + k) mod n) in
    if not seen.(node) then (
      seen.(node) <- true;
      out := node :: !out)
  done;
  List.rev !out
