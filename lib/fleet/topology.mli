(** How the N shards of one fleet are addressed.

    Shard addresses derive purely from the base address — Unix path
    [p] → [p.0 … p.(N-1)], TCP port [q] → [q … q+N-1] — so the
    launcher, the routing clients and the legacy router agree on the
    topology (and on the ring node names) without a registry. *)

type address = [ `Unix of string | `Tcp of string * int ]

type t

val create : shards:int -> address -> t
(** [shards] must be ≥ 1. *)

val shards : t -> int
val base : t -> address
val address : t -> int -> address
val shard_name : t -> int -> string
(** The canonical ring node name of shard [i]. *)

val names : t -> string list
val ring : ?vnodes:int -> t -> Ring.t
