(* One stable hash for everything fleet-shaped: cache shard selection and
   ring point placement both need a hash that is identical across
   processes and OCaml versions, which rules out [Hashtbl.hash].  MD5 is
   already a hard dependency of the artifact store, so we reuse it: the
   first eight digest bytes, folded little-endian and masked positive,
   give a uniform 62-bit point. *)

let stable_hash s =
  let d = Digest.string s in
  let b i = Char.code d.[i] in
  let v =
    b 0
    lor (b 1 lsl 8)
    lor (b 2 lsl 16)
    lor (b 3 lsl 24)
    lor (b 4 lsl 32)
    lor (b 5 lsl 40)
    lor (b 6 lsl 48)
    lor (b 7 lsl 56)
  in
  v land max_int

(* [stable_hash] reduced to a shard index; [shards] must be positive. *)
let shard_of ~shards key = stable_hash key mod shards
