(** Consistent-hash ring for client-side shard routing.

    Node names are hashed to [vnodes] points each with the fleet's
    {!Hashing.stable_hash}, so every process that builds a ring from the
    same names routes every key identically — no coordination, no proxy
    hop.  Removing a node remaps only the keys that routed to it
    (surviving points never move). *)

type t

val default_vnodes : int
(** 64. *)

val create : ?vnodes:int -> string list -> t
(** Raises [Invalid_argument] on an empty node list. *)

val nodes : t -> string list

val route : t -> string -> int
(** Index (into the creation-order node list) owning [key]. *)

val route_name : t -> string -> string

val successors : t -> string -> int list
(** All distinct node indices in ring order from [key]'s point; head is
    [route t key].  This is the failover order: a client that finds a
    shard dead tries the next distinct shard on the ring. *)
