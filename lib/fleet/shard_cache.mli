(** N-way sharded concurrent LRU map keyed by artifact key.

    The cache is a disjoint composition of [shards] sub-caches: a key
    belongs to exactly the shard named by its stable hash, each shard
    has its own lock and its own LRU ring of at most [slots_per_shard]
    entries, and operations touch exactly one shard lock — shards never
    contend with each other.  The structural contract is exported as
    predicates ({!key_shard_stable}, {!capacity_ok},
    {!no_cross_shard_aliasing}) that the tests assert after arbitrary
    concurrent interleavings.

    On a miss the shard lock is held across the loader, so concurrent
    fetches of the same key serialize and load once. *)

type 'v t

val create :
  ?metrics_prefix:string -> shards:int -> slots_per_shard:int -> unit -> 'v t
(** [metrics_prefix] registers unstable {!Ipds_obs.Registry} counters:
    aggregate [<p>_hits] / [<p>_misses] / [<p>_evictions] plus
    per-shard [<p>_shard<i>_hits] etc.  Both arguments must be ≥ 1. *)

val fetch :
  'v t ->
  string ->
  (unit -> ('v, 'e) result) ->
  [ `Hit of 'v | `Loaded of 'v | `Err of 'e ]
(** LRU-promote on hit; on miss run the loader under the shard lock and
    insert (evicting the shard's LRU entry if full).  A loader error is
    not cached. *)

val mem : 'v t -> string -> bool
val length : 'v t -> int
val shards : 'v t -> int
val slots_per_shard : 'v t -> int
val shard_of_key : 'v t -> string -> int

type stats = { hits : int; misses : int; evictions : int; size : int }

val stats : 'v t -> stats
val shard_stats : 'v t -> int -> stats

(** {2 Invariants as predicates} *)

val key_shard_stable : 'v t -> bool
(** Every resident key lives in exactly the shard its hash names. *)

val capacity_ok : 'v t -> bool
(** No shard exceeds [slots_per_shard]. *)

val no_cross_shard_aliasing : 'v t -> bool
(** No key is resident twice anywhere in the structure. *)

val check_invariants : 'v t -> (string * bool) list
(** All of the above, labelled. *)
