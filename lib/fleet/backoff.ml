(* Bounded retry schedule for ring failover: exponential growth from
   [base], capped per-sleep at [max_delay] and in attempt count, so a
   client facing a fully dead fleet fails within a computable bound
   instead of spinning. *)

type t = {
  base : float;
  factor : float;
  max_delay : float;
  max_attempts : int;
}

let default = { base = 0.02; factor = 2.0; max_delay = 0.25; max_attempts = 8 }

let create ?(base = default.base) ?(factor = default.factor)
    ?(max_delay = default.max_delay) ?(max_attempts = default.max_attempts) ()
    =
  if base < 0. || factor < 1. || max_delay < 0. || max_attempts < 1 then
    invalid_arg "Backoff.create";
  { base; factor; max_delay; max_attempts }

let delay t attempt =
  if attempt < 0 then invalid_arg "Backoff.delay";
  Float.min t.max_delay (t.base *. (t.factor ** float_of_int attempt))

let max_attempts t = t.max_attempts

(* Upper bound on total sleep across a full retry run — the "bounded"
   in bounded backoff, asserted by test_fleet. *)
let total_bound t =
  let rec go k acc =
    if k >= t.max_attempts then acc else go (k + 1) (acc +. delay t k)
  in
  go 0 0.
