(* Fleet topology: how N shards of one fleet are addressed.

   Derived purely from a base address, so the launcher
   ([ipds fleet]), the routing clients and the legacy router agree on
   shard addresses and ring names without any registry: shard [i] of a
   Unix-domain fleet at [path] listens on [path ^ "." ^ i]; a TCP fleet
   at [port] puts shard [i] on [port + i]. *)

type address = [ `Unix of string | `Tcp of string * int ]

type t = { base : address; shards : int }

let create ~shards base =
  if shards < 1 then invalid_arg "Topology.create: shards must be >= 1";
  { base; shards }

let shards t = t.shards
let base t = t.base

let address t i =
  if i < 0 || i >= t.shards then invalid_arg "Topology.address: bad shard";
  match t.base with
  | `Unix path -> `Unix (path ^ "." ^ string_of_int i)
  | `Tcp (host, port) -> `Tcp (host, port + i)

let shard_name t i =
  match address t i with
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let names t = List.init t.shards (shard_name t)

let ring ?vnodes t = Ring.create ?vnodes (names t)
