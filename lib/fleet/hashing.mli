(** The one stable hash used by every fleet component.

    Cache shard selection (in-process) and ring placement (across
    processes) must agree on a hash that is identical across runs,
    processes and OCaml versions — [Hashtbl.hash] guarantees none of
    that.  MD5 is already a hard dependency of the artifact store, so
    the fleet folds the first eight digest bytes into a uniform
    non-negative 62-bit integer. *)

val stable_hash : string -> int
(** Deterministic, uniform, non-negative. *)

val shard_of : shards:int -> string -> int
(** [stable_hash] reduced mod [shards]; [shards] must be positive. *)
