type entry = {
  e_name : string;
  e_base : int;
  e_count : int;
}

type t = {
  entries : entry list;
  total : int;
}

let instr_bytes = 4
let base_address = 0x1000
let align n a = (n + a - 1) / a * a

let make (p : Program.t) =
  let next = ref base_address in
  let entries =
    List.map
      (fun (f : Func.t) ->
        let e_base = align !next 64 in
        next := e_base + (f.instr_count * instr_bytes);
        { e_name = f.name; e_base; e_count = f.instr_count })
      p.funcs
  in
  { entries; total = !next - base_address }

let find t fname =
  match List.find_opt (fun e -> String.equal e.e_name fname) t.entries with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Layout: unknown function %s" fname)

let pc t ~fname ~iid =
  let e = find t fname in
  if iid < 0 || iid >= e.e_count then
    invalid_arg (Printf.sprintf "Layout.pc: iid %d out of range for %s" iid fname);
  e.e_base + (iid * instr_bytes)

let func_base t fname = (find t fname).e_base

let func_of_pc t address =
  List.find_map
    (fun e ->
      if address >= e.e_base && address < e.e_base + (e.e_count * instr_bytes) then
        Some (e.e_name, (address - e.e_base) / instr_bytes)
      else None)
    t.entries

let code_bytes t = t.total

let entries t = List.map (fun e -> (e.e_name, e.e_base, e.e_count)) t.entries

let of_entries list =
  let entries =
    List.map
      (fun (e_name, e_base, e_count) ->
        if e_count < 0 then
          invalid_arg (Printf.sprintf "Layout.of_entries: negative count for %s" e_name);
        { e_name; e_base; e_count })
      list
  in
  let names = List.map (fun e -> e.e_name) entries in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Layout.of_entries: duplicate function names";
  let next =
    List.fold_left
      (fun next e ->
        if e.e_base < next || e.e_base <> align e.e_base 64 then
          invalid_arg
            (Printf.sprintf "Layout.of_entries: bad base 0x%x for %s" e.e_base
               e.e_name);
        e.e_base + (e.e_count * instr_bytes))
      base_address entries
  in
  { entries; total = max 0 (next - base_address) }

let branch_pcs t (f : Func.t) =
  List.map (fun (iid, _) -> pc t ~fname:f.Func.name ~iid) (Func.branches f)
