(** A numbered instruction.

    Every instruction (and every block terminator) carries a function-unique
    id [iid], assigned densely from 0 when a function is finalised.  Ids
    double as program points for the dataflow analyses and map to synthetic
    PC addresses via {!Layout}. *)

type t = {
  iid : int;
  op : Op.t;
}

val pp : Format.formatter -> t -> unit
