type location =
  | Body of int * int
  | Term of int

type t = {
  name : string;
  params : Reg.t list;
  locals : Var.t list;
  blocks : Block.t array;
  reg_count : int;
  instr_count : int;
}

let entry t = t.blocks.(0)

let location t iid =
  if iid < 0 || iid >= t.instr_count then raise Not_found;
  let found = ref None in
  Array.iter
    (fun (b : Block.t) ->
      if !found = None then
        if b.term_iid = iid then found := Some (Term b.index)
        else
          Array.iteri
            (fun pos (i : Instr.t) ->
              if i.iid = iid then found := Some (Body (b.index, pos)))
            b.body)
    t.blocks;
  match !found with
  | Some loc -> loc
  | None -> raise Not_found

let op_at t iid =
  match location t iid with
  | Body (b, pos) -> Some t.blocks.(b).body.(pos).op
  | Term _ -> None

let branches t =
  Array.to_list t.blocks
  |> List.filter_map (fun (b : Block.t) ->
         if Terminator.is_branch b.term then Some (b.term_iid, b) else None)

let iter_instrs t f =
  Array.iter
    (fun (b : Block.t) -> Array.iter (fun (i : Instr.t) -> f i.iid i.op) b.body)
    t.blocks

let label_of_block t idx = t.blocks.(idx).label

let pp ppf t =
  let labels idx = label_of_block t idx in
  let pp_params =
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
      Reg.pp
  in
  Format.fprintf ppf "@[<v 1>func %s(%a) {" t.name pp_params t.params;
  List.iter (fun v -> Format.fprintf ppf "@, var %a" Var.pp v) t.locals;
  Array.iter (fun b -> Format.fprintf ppf "@,%a" (Block.pp ~labels) b) t.blocks;
  Format.fprintf ppf "@]@,}"
