type t = {
  index : int;
  label : string;
  body : Instr.t array;
  term : Terminator.t;
  term_iid : int;
}

let successors t = Terminator.successors t.term

let pp ~labels ppf t =
  Format.fprintf ppf "@[<v 2>%s:" t.label;
  Array.iter (fun i -> Format.fprintf ppf "@,%a" Instr.pp i) t.body;
  Format.fprintf ppf "@,%a@]" (Terminator.pp ~labels) t.term
