type t = {
  iid : int;
  op : Op.t;
}

let pp ppf t = Op.pp ppf t.op
