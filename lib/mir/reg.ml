type t = int

let make i =
  if i < 0 then invalid_arg "Reg.make: negative index";
  i

let index t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp ppf t = Format.fprintf ppf "r%d" t
let to_string t = Printf.sprintf "r%d" t
