(** Textual rendering of MIR, parseable back by {!Parser}. *)

val program_to_string : Program.t -> string
val func_to_string : Func.t -> string
