type t =
  | Direct of Var.t
  | Index of Var.t * Operand.t
  | Indirect of Reg.t

let base_var = function
  | Direct v | Index (v, _) -> Some v
  | Indirect _ -> None

let regs = function
  | Direct _ -> []
  | Index (_, i) -> Operand.regs i
  | Indirect r -> [ r ]

let pp ppf = function
  | Direct v -> Format.fprintf ppf "%s" v.Var.name
  | Index (v, i) -> Format.fprintf ppf "%s[%a]" v.Var.name Operand.pp i
  | Indirect r -> Format.fprintf ppf "[%a]" Reg.pp r
