(** Functions: a CFG of basic blocks plus local declarations.

    Instruction ids [0 .. instr_count - 1] cover every body instruction and
    every terminator, densely.  Use {!instr_at}/{!location} to map between
    ids and (block, position) coordinates. *)

type location =
  | Body of int * int  (** block index, position in [body] *)
  | Term of int  (** terminator of block *)

type t = {
  name : string;
  params : Reg.t list;
  locals : Var.t list;
  blocks : Block.t array;
  reg_count : int;  (** registers are numbered [0 .. reg_count - 1] *)
  instr_count : int;
}

val entry : t -> Block.t
val location : t -> int -> location
(** [location f iid] finds where instruction [iid] lives.
    Raises [Not_found] for an out-of-range id. *)

val op_at : t -> int -> Op.t option
(** The payload at [iid], or [None] if [iid] is a terminator. *)

val branches : t -> (int * Block.t) list
(** All conditional branches as [(term_iid, block)], in block order. *)

val iter_instrs : t -> (int -> Op.t -> unit) -> unit
(** Iterate body instructions (not terminators) in block order. *)

val label_of_block : t -> int -> string
val pp : Format.formatter -> t -> unit
