type proto_block = {
  pb_label : string;
  mutable pb_body : Op.t list;  (* reversed *)
  mutable pb_term : Terminator.t option;
  mutable pb_started : bool;
}

type fb = {
  fb_name : string;
  fb_prog : t;
  mutable fb_locals : Var.t list;  (* reversed *)
  mutable fb_regs : int;
  mutable fb_blocks : proto_block array;  (* grows *)
  mutable fb_nblocks : int;
  mutable fb_cur : int;  (* current block index, -1 if none open *)
}

and t = {
  mutable t_vars : int;
  mutable t_globals : Var.t list;  (* reversed *)
  mutable t_externs : (string * Extern.summary) list;  (* reversed *)
  mutable t_funcs : Func.t list;  (* reversed *)
}

type label = int

let create () = { t_vars = 0; t_globals = []; t_externs = []; t_funcs = [] }

let fresh_var t ?(size = 1) name storage =
  let v = Var.make ~id:t.t_vars ~name ~size ~storage in
  t.t_vars <- t.t_vars + 1;
  v

let global t ?size name =
  let v = fresh_var t ?size name Var.Global in
  t.t_globals <- v :: t.t_globals;
  v

let declare_extern t name summary =
  t.t_externs <- (name, summary) :: t.t_externs

let declare_default_externs t =
  List.iter (fun (n, s) -> declare_extern t n s) Extern.default_table

let local fb ?size name =
  let v = fresh_var fb.fb_prog ?size name Var.Local in
  fb.fb_locals <- v :: fb.fb_locals;
  v

let fresh fb =
  let r = Reg.make fb.fb_regs in
  fb.fb_regs <- fb.fb_regs + 1;
  r

let add_block fb name =
  let pb = { pb_label = name; pb_body = []; pb_term = None; pb_started = false } in
  if fb.fb_nblocks = Array.length fb.fb_blocks then begin
    let bigger = Array.make (max 8 (2 * fb.fb_nblocks)) pb in
    Array.blit fb.fb_blocks 0 bigger 0 fb.fb_nblocks;
    fb.fb_blocks <- bigger
  end;
  fb.fb_blocks.(fb.fb_nblocks) <- pb;
  fb.fb_nblocks <- fb.fb_nblocks + 1;
  fb.fb_nblocks - 1

let new_label fb name = add_block fb name
let entry_label (_ : fb) = 0
let in_block fb = fb.fb_cur >= 0
let reserve_regs fb n = if n > fb.fb_regs then fb.fb_regs <- n

let set_block fb lbl =
  if fb.fb_cur >= 0 then
    invalid_arg
      (Printf.sprintf "Builder.set_block: block %s of %s not terminated"
         fb.fb_blocks.(fb.fb_cur).pb_label fb.fb_name);
  let pb = fb.fb_blocks.(lbl) in
  if pb.pb_started then
    invalid_arg (Printf.sprintf "Builder.set_block: %s already built" pb.pb_label);
  pb.pb_started <- true;
  fb.fb_cur <- lbl

let current fb =
  if fb.fb_cur < 0 then
    invalid_arg (Printf.sprintf "Builder: no open block in %s" fb.fb_name);
  fb.fb_blocks.(fb.fb_cur)

let emit fb op =
  let pb = current fb in
  pb.pb_body <- op :: pb.pb_body

let terminate fb term =
  let pb = current fb in
  pb.pb_term <- Some term;
  fb.fb_cur <- -1

let const fb n =
  let r = fresh fb in
  emit fb (Op.Const (r, n));
  r

let move fb o =
  let r = fresh fb in
  emit fb (Op.Move (r, o));
  r

let binop fb op a b =
  let r = fresh fb in
  emit fb (Op.Binop (r, op, a, b));
  r

let load fb a =
  let r = fresh fb in
  emit fb (Op.Load (r, a));
  r

let store fb a o = emit fb (Op.Store (a, o))

let addr_of fb v i =
  let r = fresh fb in
  emit fb (Op.Addr_of (r, v, i));
  r

let call fb callee args =
  let r = fresh fb in
  emit fb (Op.Call { dst = Some r; callee; args });
  r

let call_void fb callee args = emit fb (Op.Call { dst = None; callee; args })

let input fb ch =
  let r = fresh fb in
  emit fb (Op.Input (r, ch));
  r

let output fb o = emit fb (Op.Output o)
let jump fb lbl = terminate fb (Terminator.Jump lbl)

let branch fb cmp lhs rhs if_true if_false =
  terminate fb (Terminator.Branch { cmp; lhs; rhs; if_true; if_false })

let ret fb o = terminate fb (Terminator.Return o)
let halt fb = terminate fb Terminator.Halt

let func t name ~nparams body =
  if List.exists (fun (f : Func.t) -> String.equal f.name name) t.t_funcs then
    invalid_arg (Printf.sprintf "Builder.func: duplicate function %s" name);
  let fb =
    {
      fb_name = name;
      fb_prog = t;
      fb_locals = [];
      fb_regs = nparams;
      fb_blocks = [||];
      fb_nblocks = 0;
      fb_cur = -1;
    }
  in
  let entry = add_block fb "entry" in
  set_block fb entry;
  let params = List.init nparams Reg.make in
  body fb params;
  if fb.fb_cur >= 0 then
    invalid_arg
      (Printf.sprintf "Builder.func: block %s of %s not terminated"
         fb.fb_blocks.(fb.fb_cur).pb_label name);
  (* Assign dense instruction ids block by block, terminators included. *)
  let next_iid = ref 0 in
  let blocks =
    Array.init fb.fb_nblocks (fun idx ->
        let pb = fb.fb_blocks.(idx) in
        let term =
          match pb.pb_term with
          | Some term -> term
          | None ->
              invalid_arg
                (Printf.sprintf "Builder.func: block %s of %s never built"
                   pb.pb_label name)
        in
        let ops = Array.of_list (List.rev pb.pb_body) in
        let body =
          Array.map
            (fun op ->
              let iid = !next_iid in
              incr next_iid;
              { Instr.iid; op })
            ops
        in
        let term_iid = !next_iid in
        incr next_iid;
        { Block.index = idx; label = pb.pb_label; body; term; term_iid })
  in
  let f =
    {
      Func.name;
      params;
      locals = List.rev fb.fb_locals;
      blocks;
      reg_count = fb.fb_regs;
      instr_count = !next_iid;
    }
  in
  t.t_funcs <- f :: t.t_funcs

let finish ?(main = "main") t =
  let program =
    {
      Program.funcs = List.rev t.t_funcs;
      globals = List.rev t.t_globals;
      externs = List.rev t.t_externs;
      main;
      var_count = t.t_vars;
    }
  in
  Validate.check_exn program;
  program
