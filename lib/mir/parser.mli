(** Parser for the textual MIR format emitted by {!Printer}.

    Grammar (comments run from ['#'] to end of line):
    {v
    program  ::= decl*
    decl     ::= "global" ident size?
               | "extern" ident effect
               | "func" ident "(" regs? ")" "{" vardecl* block+ "}"
    effect   ::= "pure" | "writes" "(" int ("," int)* ")" | "writes_all"
    size     ::= "[" int "]"
    vardecl  ::= "var" ident size?
    block    ::= ident ":" instr* term
    instr    ::= reg "=" int | reg "=" reg | reg "=" binop opnd "," opnd
               | reg "=" "load" addr | "store" addr "," opnd
               | reg "=" "addr" ident "[" opnd "]"
               | reg? "=?" "call" ident "(" opnds? ")"
               | reg "=" "input" int | "output" opnd | "nop"
    term     ::= "jmp" ident | "br" cmp reg "," opnd "," ident "," ident
               | "ret" opnd? | "halt"
    addr     ::= ident | ident "[" opnd "]" | "[" reg "]"
    v} *)

exception Parse_error of string
(** Carries a ["line N: message"] description. *)

val program_of_string : string -> Program.t
(** Raises {!Parse_error} on malformed input and [Invalid_argument] when
    the parsed program fails validation. *)
