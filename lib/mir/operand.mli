(** Instruction operands: a register or an immediate constant. *)

type t =
  | Reg of Reg.t
  | Imm of int

val reg : Reg.t -> t
val imm : int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val regs : t -> Reg.t list
(** Registers read by the operand ([[]] for immediates). *)
