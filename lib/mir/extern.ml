type summary =
  | Pure
  | Writes_args of int list
  | Writes_anything

let equal a b =
  match a, b with
  | Pure, Pure | Writes_anything, Writes_anything -> true
  | Writes_args xs, Writes_args ys -> List.equal Int.equal xs ys
  | (Pure | Writes_args _ | Writes_anything), _ -> false

let pp ppf = function
  | Pure -> Format.pp_print_string ppf "pure"
  | Writes_args args ->
      Format.fprintf ppf "writes(%a)"
        Format.(pp_print_list ~pp_sep:(fun f () -> pp_print_string f ",") pp_print_int)
        args
  | Writes_anything -> Format.pp_print_string ppf "writes_all"

(* The interpreter in Ipds_machine.Interp gives these executable semantics;
   the summaries here are what the correlation analysis relies on. *)
let default_table =
  [
    ("memset", Writes_args [ 0 ]);
    ("memcpy", Writes_args [ 0 ]);
    ("strcmp", Pure);
    ("strlen", Pure);
    ("checksum", Pure);
    ("log_msg", Pure);
    ("send", Pure);
    ("recv", Writes_args [ 0 ]);
    ("read_line", Writes_args [ 0 ]);
    ("hash_pw", Pure);
    ("syscall", Writes_anything);
  ]

let lookup table name =
  match List.assoc_opt name table with
  | Some s -> s
  | None -> Writes_anything
