(** Memory-resident variables.

    A variable names a contiguous block of one or more integer cells in
    memory (size 1 for scalars, [n] for arrays).  Variables carry a storage
    class: locals live in the active frame of their function, globals in a
    single program-wide segment.  The paper's threat model is precisely
    "non-constant memory resident data": these cells are what an attacker
    can tamper. *)

type storage =
  | Local
  | Global

type t = private {
  id : int;  (** unique program-wide *)
  name : string;
  size : int;  (** number of integer cells, [>= 1] *)
  storage : storage;
}

val make : id:int -> name:string -> size:int -> storage:storage -> t
(** Raises [Invalid_argument] if [size < 1] or [id < 0]. *)

val is_scalar : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
