type t =
  | Reg of Reg.t
  | Imm of int

let reg r = Reg r
let imm n = Imm n

let equal a b =
  match a, b with
  | Reg r1, Reg r2 -> Reg.equal r1 r2
  | Imm n1, Imm n2 -> Int.equal n1 n2
  | Reg _, Imm _ | Imm _, Reg _ -> false

let pp ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm n -> Format.fprintf ppf "%d" n

let regs = function
  | Reg r -> [ r ]
  | Imm _ -> []
