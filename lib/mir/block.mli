(** Basic blocks.  [term_iid] is the instruction id of the terminator; for
    conditional branches it is the branch's identity throughout the IPDS
    pipeline (BSV/BCV/BAT slots are keyed on the branch's PC, which
    {!Layout} derives from this id). *)

type t = {
  index : int;  (** position in [Func.blocks]; 0 is the entry block *)
  label : string;
  body : Instr.t array;
  term : Terminator.t;
  term_iid : int;
}

val successors : t -> int list
val pp : labels:(int -> string) -> Format.formatter -> t -> unit
