type storage =
  | Local
  | Global

type t = {
  id : int;
  name : string;
  size : int;
  storage : storage;
}

let make ~id ~name ~size ~storage =
  if size < 1 then invalid_arg "Var.make: size must be >= 1";
  if id < 0 then invalid_arg "Var.make: negative id";
  { id; name; size; storage }

let is_scalar t = t.size = 1
let equal a b = Int.equal a.id b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id

let pp ppf t =
  if t.size = 1 then Format.fprintf ppf "%s" t.name
  else Format.fprintf ppf "%s[%d]" t.name t.size

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
