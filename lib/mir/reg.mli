(** Virtual registers.

    Registers are unbounded, function-local pseudo-registers, as produced by
    a compiler middle-end before register allocation.  The paper's analysis
    runs at this level (SUIF IR); register identity is what the correlation
    analysis traces through affine chains. *)

type t

val make : int -> t
(** [make i] is the register numbered [i].  Raises [Invalid_argument] if
    [i < 0]. *)

val index : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
