(** Imperative construction API for MIR programs.

    A {!t} accumulates globals, extern declarations and functions; inside
    {!func}, a function builder {!fb} emits instructions into labelled
    blocks.  Instruction ids are assigned densely when the function is
    finished, and {!finish} produces an immutable {!Program.t} (validated
    with {!Validate.check_exn}). *)

type t
type fb

type label
(** A forward-declarable block label, local to one function builder. *)

val create : unit -> t
val global : t -> ?size:int -> string -> Var.t
val declare_extern : t -> string -> Extern.summary -> unit
val declare_default_externs : t -> unit
(** Declare everything in {!Extern.default_table}. *)

val func : t -> string -> nparams:int -> (fb -> Reg.t list -> unit) -> unit
(** [func t name ~nparams body] defines function [name]; [body] receives
    the builder positioned at the entry block and the parameter registers.
    Raises [Invalid_argument] on duplicate names or unterminated blocks. *)

val finish : ?main:string -> t -> Program.t
(** Defaults to ["main"].  Validates the program. *)

(** {1 Function-builder operations} *)

val local : fb -> ?size:int -> string -> Var.t
val fresh : fb -> Reg.t

val reserve_regs : fb -> int -> unit
(** Ensure the function's register count is at least [n]; used by the
    parser, which meets explicitly numbered registers. *)

val new_label : fb -> string -> label

val entry_label : fb -> label
(** The label of the implicit entry block. *)

val in_block : fb -> bool
(** Is there an open (unterminated) block to emit into? *)

val set_block : fb -> label -> unit
(** Start emitting into the (not yet started) block [label].  The previous
    block must have been terminated. *)

val emit : fb -> Op.t -> unit

(** Conveniences returning fresh result registers: *)

val const : fb -> int -> Reg.t
val move : fb -> Operand.t -> Reg.t
val binop : fb -> Binop.t -> Operand.t -> Operand.t -> Reg.t
val load : fb -> Addr.t -> Reg.t
val store : fb -> Addr.t -> Operand.t -> unit
val addr_of : fb -> Var.t -> Operand.t -> Reg.t
val call : fb -> string -> Operand.t list -> Reg.t
val call_void : fb -> string -> Operand.t list -> unit
val input : fb -> int -> Reg.t
val output : fb -> Operand.t -> unit

(** Terminators: *)

val jump : fb -> label -> unit
val branch : fb -> Cmp.t -> Reg.t -> Operand.t -> label -> label -> unit
val ret : fb -> Operand.t option -> unit
val halt : fb -> unit
