type t =
  | Jump of int
  | Branch of {
      cmp : Cmp.t;
      lhs : Reg.t;
      rhs : Operand.t;
      if_true : int;
      if_false : int;
    }
  | Return of Operand.t option
  | Halt

let successors = function
  | Jump b -> [ b ]
  | Branch { if_true; if_false; _ } -> [ if_true; if_false ]
  | Return _ | Halt -> []

let uses = function
  | Jump _ | Halt | Return None -> []
  | Return (Some o) -> Operand.regs o
  | Branch { lhs; rhs; _ } -> lhs :: Operand.regs rhs

let is_branch = function
  | Branch _ -> true
  | Jump _ | Return _ | Halt -> false

let pp ~labels ppf = function
  | Jump b -> Format.fprintf ppf "jmp %s" (labels b)
  | Branch { cmp; lhs; rhs; if_true; if_false } ->
      Format.fprintf ppf "br %a %a, %a, %s, %s" Cmp.pp cmp Reg.pp lhs
        Operand.pp rhs (labels if_true) (labels if_false)
  | Return None -> Format.pp_print_string ppf "ret"
  | Return (Some o) -> Format.fprintf ppf "ret %a" Operand.pp o
  | Halt -> Format.pp_print_string ppf "halt"
