(** Whole programs: functions, global variables and external summaries. *)

type t = {
  funcs : Func.t list;  (** in definition order *)
  globals : Var.t list;
  externs : (string * Extern.summary) list;
  main : string;
  var_count : int;  (** variable ids are [0 .. var_count - 1], program-wide *)
}

val find_func : t -> string -> Func.t option
val find_func_exn : t -> string -> Func.t
val find_var : t -> int -> Var.t option
(** Look a variable up by id across globals and every function's locals. *)

val all_vars : t -> Var.t list
val extern_summary : t -> string -> Extern.summary
(** Summary for a callee that is not a defined function (conservative
    [Writes_anything] if undeclared). *)

val is_defined : t -> string -> bool
val pp : Format.formatter -> t -> unit
