exception Parse_error of string

type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | EQUALS
  | EOF

let pp_token = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | COLON -> ":"
  | EQUALS -> "="
  | EOF -> "<eof>"

(* ---------- Lexer ---------- *)

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      push (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (IDENT (String.sub src start (!i - start)))
    end
    else begin
      (match c with
      | '(' -> push LPAREN
      | ')' -> push RPAREN
      | '[' -> push LBRACKET
      | ']' -> push RBRACKET
      | '{' -> push LBRACE
      | '}' -> push RBRACE
      | ',' -> push COMMA
      | ':' -> push COLON
      | '=' -> push EQUALS
      | _ -> raise (Parse_error (Printf.sprintf "line %d: bad character %c" !line c)));
      incr i
    end
  done;
  push EOF;
  Array.of_list (List.rev !toks)

(* ---------- Token stream ---------- *)

type stream = {
  toks : (token * int) array;
  mutable pos : int;
}

let peek s = fst s.toks.(s.pos)
let peek2 s = if s.pos + 1 < Array.length s.toks then fst s.toks.(s.pos + 1) else EOF
let cur_line s = snd s.toks.(s.pos)

let fail s fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "line %d: %s" (cur_line s) m))) fmt

let next s =
  let t = peek s in
  if t <> EOF then s.pos <- s.pos + 1;
  t

let expect s t =
  let got = next s in
  if got <> t then
    raise
      (Parse_error
         (Printf.sprintf "line %d: expected %s, got %s"
            (snd s.toks.(s.pos - 1))
            (pp_token t) (pp_token got)))

let ident s =
  match next s with
  | IDENT name -> name
  | t -> fail s "expected identifier, got %s" (pp_token t)

let int_lit s =
  match next s with
  | INT n -> n
  | t -> fail s "expected integer, got %s" (pp_token t)

let reg_of_ident name =
  let len = String.length name in
  if len >= 2 && name.[0] = 'r' then
    match int_of_string_opt (String.sub name 1 (len - 1)) with
    | Some n when n >= 0 -> Some (Reg.make n)
    | Some _ | None -> None
  else None

let reg s =
  match next s with
  | IDENT name -> (
      match reg_of_ident name with
      | Some r -> r
      | None -> fail s "expected register, got %s" name)
  | t -> fail s "expected register, got %s" (pp_token t)

(* ---------- Parser proper ---------- *)

type fstate = {
  fb : Builder.fb;
  locals : (string, Var.t) Hashtbl.t;
  labels : (string, Builder.label) Hashtbl.t;
}

let touch_reg fs r = Builder.reserve_regs fs.fb (Reg.index r + 1)

let operand fs s =
  match next s with
  | INT n -> Operand.imm n
  | IDENT name -> (
      match reg_of_ident name with
      | Some r ->
          touch_reg fs r;
          Operand.reg r
      | None -> fail s "expected operand, got %s" name)
  | t -> fail s "expected operand, got %s" (pp_token t)

let find_var globals fs s name =
  match Hashtbl.find_opt fs.locals name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt globals name with
      | Some v -> v
      | None -> fail s "unknown variable %s" name)

let addr globals fs s =
  match peek s with
  | LBRACKET ->
      expect s LBRACKET;
      let r = reg s in
      touch_reg fs r;
      expect s RBRACKET;
      Addr.Indirect r
  | IDENT name ->
      ignore (next s);
      let v = find_var globals fs s name in
      if peek s = LBRACKET then begin
        expect s LBRACKET;
        let idx = operand fs s in
        expect s RBRACKET;
        Addr.Index (v, idx)
      end
      else Addr.Direct v
  | t -> fail s "expected address, got %s" (pp_token t)

let call_args fs s =
  expect s LPAREN;
  if peek s = RPAREN then begin
    expect s RPAREN;
    []
  end
  else begin
    let args = ref [ operand fs s ] in
    while peek s = COMMA do
      expect s COMMA;
      args := operand fs s :: !args
    done;
    expect s RPAREN;
    List.rev !args
  end

let lookup_label fs name =
  match Hashtbl.find_opt fs.labels name with
  | Some l -> l
  | None ->
      let l = Builder.new_label fs.fb name in
      Hashtbl.add fs.labels name l;
      l

(* Parses one instruction or terminator.  Returns [true] when the block was
   terminated. *)
let instr globals fs s =
  let fb = fs.fb in
  match next s with
  | IDENT "store" ->
      let a = addr globals fs s in
      expect s COMMA;
      let o = operand fs s in
      Builder.emit fb (Op.Store (a, o));
      false
  | IDENT "output" ->
      let o = operand fs s in
      Builder.emit fb (Op.Output o);
      false
  | IDENT "nop" ->
      Builder.emit fb Op.Nop;
      false
  | IDENT "call" ->
      let callee = ident s in
      let args = call_args fs s in
      Builder.emit fb (Op.Call { dst = None; callee; args });
      false
  | IDENT "jmp" ->
      Builder.jump fb (lookup_label fs (ident s));
      true
  | IDENT "br" ->
      let c =
        match Cmp.of_string (ident s) with
        | Some c -> c
        | None -> fail s "bad comparison"
      in
      let lhs = reg s in
      touch_reg fs lhs;
      expect s COMMA;
      let rhs = operand fs s in
      expect s COMMA;
      let if_true = lookup_label fs (ident s) in
      expect s COMMA;
      let if_false = lookup_label fs (ident s) in
      Builder.branch fb c lhs rhs if_true if_false;
      true
  | IDENT "ret" ->
      let o =
        match peek s with
        | INT _ -> Some (operand fs s)
        | IDENT name when reg_of_ident name <> None -> Some (operand fs s)
        | IDENT _ | LPAREN | RPAREN | LBRACKET | RBRACKET | LBRACE | RBRACE
        | COMMA | COLON | EQUALS | EOF ->
            None
      in
      Builder.ret fb o;
      true
  | IDENT "halt" ->
      Builder.halt fb;
      true
  | IDENT name -> (
      match reg_of_ident name with
      | None -> fail s "unexpected %s" name
      | Some r -> (
          touch_reg fs r;
          expect s EQUALS;
          match next s with
          | INT n ->
              Builder.emit fb (Op.Const (r, n));
              false
          | IDENT "load" ->
              Builder.emit fb (Op.Load (r, addr globals fs s));
              false
          | IDENT "addr" ->
              let v = find_var globals fs s (ident s) in
              expect s LBRACKET;
              let idx = operand fs s in
              expect s RBRACKET;
              Builder.emit fb (Op.Addr_of (r, v, idx));
              false
          | IDENT "call" ->
              let callee = ident s in
              let args = call_args fs s in
              Builder.emit fb (Op.Call { dst = Some r; callee; args });
              false
          | IDENT "input" ->
              Builder.emit fb (Op.Input (r, int_lit s));
              false
          | IDENT rhs -> (
              match reg_of_ident rhs with
              | Some src ->
                  touch_reg fs src;
                  Builder.emit fb (Op.Move (r, Operand.reg src));
                  false
              | None -> (
                  match Binop.of_string rhs with
                  | Some op ->
                      let a = operand fs s in
                      expect s COMMA;
                      let b = operand fs s in
                      Builder.emit fb (Op.Binop (r, op, a, b));
                      false
                  | None -> fail s "unknown instruction %s" rhs))
          | t -> fail s "bad right-hand side %s" (pp_token t)))
  | t -> fail s "unexpected %s" (pp_token t)

let func_body globals fs s =
  (* Leading "var" declarations. *)
  let continue_vars = ref true in
  while !continue_vars do
    match peek s with
    | IDENT "var" when peek2 s <> COLON ->
        ignore (next s);
        let name = ident s in
        let size =
          if peek s = LBRACKET then begin
            expect s LBRACKET;
            let n = int_lit s in
            expect s RBRACKET;
            Some n
          end
          else None
        in
        Hashtbl.replace fs.locals name (Builder.local fs.fb ?size name)
    | IDENT _ | INT _ | LPAREN | RPAREN | LBRACKET | RBRACKET | LBRACE | RBRACE
    | COMMA | COLON | EQUALS | EOF ->
        continue_vars := false
  done;
  (* Pre-scan the body for label definitions (IDENT ':') so block indices
     follow definition order, keeping print/parse round trips stable. *)
  let rec prescan i first =
    match fst s.toks.(i) with
    | RBRACE | EOF -> ()
    | IDENT name when i + 1 < Array.length s.toks && fst s.toks.(i + 1) = COLON ->
        if first then
          Hashtbl.replace fs.labels name (Builder.entry_label fs.fb)
        else if not (Hashtbl.mem fs.labels name) then
          Hashtbl.replace fs.labels name (Builder.new_label fs.fb name);
        prescan (i + 2) false
    | IDENT _ | INT _ | LPAREN | RPAREN | LBRACKET | RBRACKET | LBRACE | COMMA
    | COLON | EQUALS ->
        prescan (i + 1) first
  in
  prescan s.pos true;
  (* First block: bound to the implicit entry label. *)
  let first = ident s in
  expect s COLON;
  Hashtbl.replace fs.labels first (Builder.entry_label fs.fb);
  let parse_block_body () =
    let terminated = ref false in
    while not !terminated do
      terminated := instr globals fs s
    done
  in
  parse_block_body ();
  while peek s <> RBRACE do
    let name = ident s in
    expect s COLON;
    Builder.set_block fs.fb (lookup_label fs name);
    parse_block_body ()
  done;
  expect s RBRACE

let effect s =
  match ident s with
  | "pure" -> Extern.Pure
  | "writes_all" -> Extern.Writes_anything
  | "writes" ->
      expect s LPAREN;
      let args = ref [ int_lit s ] in
      while peek s = COMMA do
        expect s COMMA;
        args := int_lit s :: !args
      done;
      expect s RPAREN;
      Extern.Writes_args (List.rev !args)
  | e -> fail s "unknown effect %s" e

let program_of_string src =
  let s = { toks = lex src; pos = 0 } in
  let b = Builder.create () in
  let globals = Hashtbl.create 16 in
  let finished = ref false in
  while not !finished do
    match next s with
    | EOF -> finished := true
    | IDENT "global" ->
        let name = ident s in
        let size =
          if peek s = LBRACKET then begin
            expect s LBRACKET;
            let n = int_lit s in
            expect s RBRACKET;
            Some n
          end
          else None
        in
        Hashtbl.replace globals name (Builder.global b ?size name)
    | IDENT "extern" ->
        let name = ident s in
        Builder.declare_extern b name (effect s)
    | IDENT "func" ->
        let name = ident s in
        expect s LPAREN;
        let nparams = ref 0 in
        if peek s <> RPAREN then begin
          let _ = reg s in
          incr nparams;
          while peek s = COMMA do
            expect s COMMA;
            let _ = reg s in
            incr nparams
          done
        end;
        expect s RPAREN;
        expect s LBRACE;
        Builder.func b name ~nparams:!nparams (fun fb _params ->
            let fs = { fb; locals = Hashtbl.create 16; labels = Hashtbl.create 16 } in
            func_body globals fs s)
    | t -> fail s "expected declaration, got %s" (pp_token t)
  done;
  Builder.finish b
