(** Binary arithmetic/logical operators with total evaluation semantics.

    Division and remainder by zero evaluate to 0, which keeps the machine
    semantics total — important for property tests that execute randomly
    generated programs. *)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr

val eval : t -> int -> int -> int
val all : t list
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
