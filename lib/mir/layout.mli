(** Synthetic code layout: maps every instruction (and terminator) to a PC.

    Functions are laid out in program order starting at {!base_address},
    one 4-byte slot per instruction id, each function aligned to 64 bytes.
    Branch PCs are the keys hashed into the BSV/BCV/BAT tables, exactly as
    the paper indexes its per-function hash tables by branch address. *)

type t

val instr_bytes : int
(** 4 — bytes per instruction slot. *)

val base_address : int
(** 0x1000 — PC of the first function's first instruction. *)

val make : Program.t -> t
val pc : t -> fname:string -> iid:int -> int
(** Raises [Invalid_argument] for unknown functions or out-of-range ids. *)

val func_base : t -> string -> int
val func_of_pc : t -> int -> (string * int) option
(** [(fname, iid)] of the slot containing the PC, if any. *)

val code_bytes : t -> int
(** Total laid-out code size in bytes. *)

val entries : t -> (string * int * int) list
(** [(name, base_pc, instr_count)] per function, in layout order — the
    serializable image of the layout for artifact files. *)

val of_entries : (string * int * int) list -> t
(** Inverse of {!entries}.  Raises [Invalid_argument] on a malformed
    list (duplicate names, bases below {!base_address}, overlapping or
    out-of-order slots) so a corrupted layout section cannot produce a
    layout that disagrees with its own invariants. *)

val branch_pcs : t -> Func.t -> int list
(** PCs of the conditional branches of a function, ascending. *)
