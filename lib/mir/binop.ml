type t =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr

let eval t a b =
  match t with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl ->
      let s = b land 63 in
      if s > 62 then 0 else a lsl s
  | Shr ->
      let s = b land 63 in
      a asr min s 62

let all = [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr ]

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let of_string s =
  List.find_opt (fun op -> String.equal (to_string op) s) all

let pp ppf t = Format.pp_print_string ppf (to_string t)
