(** Memory addressing modes.

    - [Direct v] — the single cell of scalar variable [v];
    - [Index (v, i)] — cell [i] of (array) variable [v];
    - [Indirect r] — the cell addressed by the pointer value in [r]
      (pointers are produced by [Op.Addr_of]).

    The distinction matters to the alias analysis: [Direct] accesses are
    uniquely aliased, [Index] with an immediate index is uniquely aliased to
    one cell, and the remaining modes are resolved through points-to
    information (conservatively, per the paper's multi-alias rule). *)

type t =
  | Direct of Var.t
  | Index of Var.t * Operand.t
  | Indirect of Reg.t

val base_var : t -> Var.t option
(** The statically known base variable, if any. *)

val regs : t -> Reg.t list
(** Registers read when computing the address. *)

val pp : Format.formatter -> t -> unit
