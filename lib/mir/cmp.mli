(** Comparison operators for conditional branches. *)

type t =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

val eval : t -> int -> int -> bool
val negate : t -> t
(** [negate c] is the comparison holding exactly when [c] does not. *)

val swap : t -> t
(** [swap c] is the comparison [c'] with [eval c a b = eval c' b a]. *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
