(** Block terminators.  Block targets are block indices within the owning
    function ([Block.t.index]). *)

type t =
  | Jump of int
  | Branch of {
      cmp : Cmp.t;
      lhs : Reg.t;
      rhs : Operand.t;
      if_true : int;
      if_false : int;
    }
  | Return of Operand.t option
  | Halt

val successors : t -> int list
val uses : t -> Reg.t list
val is_branch : t -> bool

val pp : labels:(int -> string) -> Format.formatter -> t -> unit
