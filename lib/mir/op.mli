(** Instruction payloads (everything except control transfers). *)

type t =
  | Const of Reg.t * int  (** [r := n] *)
  | Move of Reg.t * Operand.t  (** [r := o] *)
  | Binop of Reg.t * Binop.t * Operand.t * Operand.t  (** [r := a op b] *)
  | Load of Reg.t * Addr.t  (** [r := mem\[a\]] *)
  | Store of Addr.t * Operand.t  (** [mem\[a\] := o] *)
  | Addr_of of Reg.t * Var.t * Operand.t  (** [r := &v\[i\]] *)
  | Call of { dst : Reg.t option; callee : string; args : Operand.t list }
  | Input of Reg.t * int  (** [r := next value on input channel n] *)
  | Output of Operand.t  (** append [o] to the observable output *)
  | Nop

val def : t -> Reg.t option
(** The register defined by the instruction, if any. *)

val uses : t -> Reg.t list
(** Registers read by the instruction. *)

val pp : Format.formatter -> t -> unit
