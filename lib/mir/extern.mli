(** Effect summaries for external (library) functions.

    The paper handles standard C library calls by exact semantics knowledge
    ("strcmp will not change any non-local memory state; scanf will only
    modify dereferenced objects of the second parameter and following") and
    treats unknown library code as clobbering everything reachable through
    pointer arguments.  We model the same three-way classification. *)

type summary =
  | Pure  (** modifies no caller-visible memory (e.g. strcmp, strlen) *)
  | Writes_args of int list
      (** modifies only memory reachable through the pointer arguments at
          the given zero-based positions (e.g. scanf, strcpy) *)
  | Writes_anything
      (** may modify any memory-resident variable (unknown library code) *)

val equal : summary -> summary -> bool
val pp : Format.formatter -> summary -> unit

val default_table : (string * summary) list
(** Summaries for the MiniC runtime / libc-like externals used by the
    workloads. *)

val lookup : (string * summary) list -> string -> summary
(** [lookup table name] is [name]'s summary, defaulting to
    [Writes_anything] for unknown functions, matching the paper's
    conservative treatment of library code without source. *)
