type t = {
  funcs : Func.t list;
  globals : Var.t list;
  externs : (string * Extern.summary) list;
  main : string;
  var_count : int;
}

let find_func t name =
  List.find_opt (fun (f : Func.t) -> String.equal f.name name) t.funcs

let find_func_exn t name =
  match find_func t name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Program.find_func_exn: %s" name)

let all_vars t =
  t.globals @ List.concat_map (fun (f : Func.t) -> f.locals) t.funcs

let find_var t id =
  List.find_opt (fun (v : Var.t) -> v.id = id) (all_vars t)

let extern_summary t name = Extern.lookup t.externs name
let is_defined t name = Option.is_some (find_func t name)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun v -> Format.fprintf ppf "global %a@," Var.pp v) t.globals;
  List.iter
    (fun (name, s) -> Format.fprintf ppf "extern %s %a@," name Extern.pp s)
    t.externs;
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f "@,@,")
    Func.pp ppf t.funcs;
  Format.fprintf ppf "@]"
