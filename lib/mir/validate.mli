(** Structural well-formedness checks for programs. *)

type error = {
  context : string;  (** function name or "program" *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val check : Program.t -> error list
(** All violations found: dangling block indices, non-dense instruction
    ids, out-of-range registers, variables used outside their scope,
    calls to names that are neither defined nor declared, duplicate or
    missing [main], blocks with out-of-range entry. *)

val check_exn : Program.t -> unit
(** Raises [Invalid_argument] with the first error rendered. *)
