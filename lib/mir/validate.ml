type error = {
  context : string;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.context e.message

let check_func (p : Program.t) (f : Func.t) =
  let errs = ref [] in
  let err fmt =
    Format.kasprintf (fun message -> errs := { context = f.name; message } :: !errs) fmt
  in
  let nblocks = Array.length f.blocks in
  if nblocks = 0 then err "no blocks";
  let seen_iids = Hashtbl.create 64 in
  let check_iid iid =
    if iid < 0 || iid >= f.instr_count then err "instruction id %d out of range" iid
    else if Hashtbl.mem seen_iids iid then err "duplicate instruction id %d" iid
    else Hashtbl.add seen_iids iid ()
  in
  let check_reg r =
    if Reg.index r >= f.reg_count then err "register r%d out of range" (Reg.index r)
  in
  let in_scope v =
    List.exists (Var.equal v) f.locals || List.exists (Var.equal v) p.globals
  in
  let check_var v = if not (in_scope v) then err "variable %s not in scope" v.Var.name in
  let check_operand o = List.iter check_reg (Operand.regs o) in
  let check_addr = function
    | Addr.Direct v -> check_var v
    | Addr.Index (v, i) ->
        check_var v;
        check_operand i
    | Addr.Indirect r -> check_reg r
  in
  let check_target b = if b < 0 || b >= nblocks then err "block target %d out of range" b in
  Array.iteri
    (fun idx (b : Block.t) ->
      if b.index <> idx then err "block %s has index %d at position %d" b.label b.index idx;
      Array.iter
        (fun (i : Instr.t) ->
          check_iid i.iid;
          Option.iter check_reg (Op.def i.op);
          List.iter check_reg (Op.uses i.op);
          (match i.op with
          | Op.Load (_, a) | Op.Store (a, _) -> check_addr a
          | Op.Addr_of (_, v, _) -> check_var v
          | Op.Call { callee; _ } ->
              if
                (not (Program.is_defined p callee))
                && not (List.mem_assoc callee p.externs)
              then err "call to undeclared %s" callee
          | Op.Const _ | Op.Move _ | Op.Binop _ | Op.Input _ | Op.Output _ | Op.Nop ->
              ()))
        b.body;
      check_iid b.term_iid;
      List.iter check_reg (Terminator.uses b.term);
      List.iter check_target (Terminator.successors b.term))
    f.blocks;
  if Hashtbl.length seen_iids <> f.instr_count then
    err "instruction ids not dense: %d seen, %d expected" (Hashtbl.length seen_iids)
      f.instr_count;
  !errs

let check (p : Program.t) =
  let errs = ref [] in
  let err fmt =
    Format.kasprintf
      (fun message -> errs := { context = "program"; message } :: !errs)
      fmt
  in
  if not (Program.is_defined p p.main) then err "main function %s undefined" p.main;
  let names = List.map (fun (f : Func.t) -> f.name) p.funcs in
  let rec dups = function
    | [] -> ()
    | n :: rest -> if List.mem n rest then err "duplicate function %s" n else dups rest
  in
  dups names;
  List.concat_map (check_func p) p.funcs @ !errs

let check_exn p =
  match check p with
  | [] -> ()
  | e :: _ -> invalid_arg (Format.asprintf "Validate: %a" pp_error e)
