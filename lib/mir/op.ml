type t =
  | Const of Reg.t * int
  | Move of Reg.t * Operand.t
  | Binop of Reg.t * Binop.t * Operand.t * Operand.t
  | Load of Reg.t * Addr.t
  | Store of Addr.t * Operand.t
  | Addr_of of Reg.t * Var.t * Operand.t
  | Call of { dst : Reg.t option; callee : string; args : Operand.t list }
  | Input of Reg.t * int
  | Output of Operand.t
  | Nop

let def = function
  | Const (r, _)
  | Move (r, _)
  | Binop (r, _, _, _)
  | Load (r, _)
  | Addr_of (r, _, _)
  | Input (r, _) ->
      Some r
  | Call { dst; _ } -> dst
  | Store _ | Output _ | Nop -> None

let uses = function
  | Const _ | Input _ | Nop -> []
  | Move (_, o) | Output o -> Operand.regs o
  | Binop (_, _, a, b) -> Operand.regs a @ Operand.regs b
  | Load (_, a) -> Addr.regs a
  | Store (a, o) -> Addr.regs a @ Operand.regs o
  | Addr_of (_, _, i) -> Operand.regs i
  | Call { args; _ } -> List.concat_map Operand.regs args

let pp ppf = function
  | Const (r, n) -> Format.fprintf ppf "%a = %d" Reg.pp r n
  | Move (r, o) -> Format.fprintf ppf "%a = %a" Reg.pp r Operand.pp o
  | Binop (r, op, a, b) ->
      Format.fprintf ppf "%a = %a %a, %a" Reg.pp r Binop.pp op Operand.pp a
        Operand.pp b
  | Load (r, a) -> Format.fprintf ppf "%a = load %a" Reg.pp r Addr.pp a
  | Store (a, o) -> Format.fprintf ppf "store %a, %a" Addr.pp a Operand.pp o
  | Addr_of (r, v, i) ->
      Format.fprintf ppf "%a = addr %s[%a]" Reg.pp r v.Var.name Operand.pp i
  | Call { dst; callee; args } ->
      let pp_args =
        Format.pp_print_list
          ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
          Operand.pp
      in
      (match dst with
      | Some r -> Format.fprintf ppf "%a = call %s(%a)" Reg.pp r callee pp_args args
      | None -> Format.fprintf ppf "call %s(%a)" callee pp_args args)
  | Input (r, ch) -> Format.fprintf ppf "%a = input %d" Reg.pp r ch
  | Output o -> Format.fprintf ppf "output %a" Operand.pp o
  | Nop -> Format.pp_print_string ppf "nop"
