module Mir = Ipds_mir
module Rd = Ipds_dataflow.Reaching_defs

let max_depth = 50

(* ---------- constant propagation / folding ---------- *)

let rec const_of_reg rdefs (f : Mir.Func.t) ~depth ~at r =
  if depth > max_depth then None
  else
    match Rd.unique_def rdefs ~iid:at r with
    | None | Some Rd.Entry -> None
    | Some (Rd.At d) -> (
        match Mir.Func.op_at f d with
        | Some (Mir.Op.Const (_, n)) -> Some n
        | Some (Mir.Op.Move (_, o)) -> const_of_operand rdefs f ~depth:(depth + 1) ~at:d o
        | Some (Mir.Op.Binop (_, op, a, b)) -> (
            match
              ( const_of_operand rdefs f ~depth:(depth + 1) ~at:d a,
                const_of_operand rdefs f ~depth:(depth + 1) ~at:d b )
            with
            | Some x, Some y -> Some (Mir.Binop.eval op x y)
            | (Some _ | None), (Some _ | None) -> None)
        | Some
            ( Mir.Op.Load _ | Mir.Op.Store _ | Mir.Op.Addr_of _ | Mir.Op.Call _
            | Mir.Op.Input _ | Mir.Op.Output _ | Mir.Op.Nop )
        | None ->
            None)

and const_of_operand rdefs f ~depth ~at (o : Mir.Operand.t) =
  match o with
  | Mir.Operand.Imm n -> Some n
  | Mir.Operand.Reg r -> const_of_reg rdefs f ~depth ~at r

let const_prop_func (f : Mir.Func.t) =
  let cfg = Ipds_cfg.Cfg.make f in
  let rdefs = Rd.compute cfg in
  let fold_operand ~at (o : Mir.Operand.t) =
    match o with
    | Mir.Operand.Imm _ -> o
    | Mir.Operand.Reg r -> (
        match const_of_reg rdefs f ~depth:0 ~at r with
        | Some n -> Mir.Operand.imm n
        | None -> o)
  in
  let rewrite_op iid (op : Mir.Op.t) =
    let at = iid in
    match op with
    | Mir.Op.Move (r, o) -> (
        match fold_operand ~at o with
        | Mir.Operand.Imm n -> Mir.Op.Const (r, n)
        | Mir.Operand.Reg _ as o' -> Mir.Op.Move (r, o'))
    | Mir.Op.Binop (r, bop, a, b) -> (
        match fold_operand ~at a, fold_operand ~at b with
        | Mir.Operand.Imm x, Mir.Operand.Imm y ->
            Mir.Op.Const (r, Mir.Binop.eval bop x y)
        | a', b' -> Mir.Op.Binop (r, bop, a', b'))
    | Mir.Op.Load (r, a) -> (
        match a with
        | Mir.Addr.Index (v, o) -> Mir.Op.Load (r, Mir.Addr.Index (v, fold_operand ~at o))
        | Mir.Addr.Direct _ | Mir.Addr.Indirect _ -> op)
    | Mir.Op.Store (a, o) ->
        let a =
          match a with
          | Mir.Addr.Index (v, i) -> Mir.Addr.Index (v, fold_operand ~at i)
          | Mir.Addr.Direct _ | Mir.Addr.Indirect _ -> a
        in
        Mir.Op.Store (a, fold_operand ~at o)
    | Mir.Op.Addr_of (r, v, o) -> Mir.Op.Addr_of (r, v, fold_operand ~at o)
    | Mir.Op.Call { dst; callee; args } ->
        Mir.Op.Call { dst; callee; args = List.map (fold_operand ~at) args }
    | Mir.Op.Output o -> Mir.Op.Output (fold_operand ~at o)
    | Mir.Op.Const _ | Mir.Op.Input _ | Mir.Op.Nop -> op
  in
  let body_of b =
    Array.to_list f.Mir.Func.blocks.(b).Mir.Block.body
    |> List.map (fun (i : Mir.Instr.t) -> rewrite_op i.iid i.op)
  in
  let term_of b =
    let blk = f.Mir.Func.blocks.(b) in
    match blk.Mir.Block.term with
    | Mir.Terminator.Branch { cmp; lhs; rhs; if_true; if_false } -> (
        let at = blk.Mir.Block.term_iid in
        let lhs_c = const_of_reg rdefs f ~depth:0 ~at lhs in
        let rhs' = fold_operand ~at rhs in
        match lhs_c, rhs' with
        | Some x, Mir.Operand.Imm y ->
            Mir.Terminator.Jump (if Mir.Cmp.eval cmp x y then if_true else if_false)
        | _, _ -> Mir.Terminator.Branch { cmp; lhs; rhs = rhs'; if_true; if_false })
    | Mir.Terminator.Return o ->
        Mir.Terminator.Return
          (Option.map (fun o -> fold_operand ~at:blk.Mir.Block.term_iid o) o)
    | (Mir.Terminator.Jump _ | Mir.Terminator.Halt) as t -> t
  in
  Rebuild.func f ~body_of ~term_of

(* ---------- copy propagation ---------- *)

(* [r] at [at] may read [s] instead when r's unique def is [r := s] and
   [s] demonstrably holds the same value at both points. *)
let copy_source rdefs (f : Mir.Func.t) ~at r =
  match Rd.unique_def rdefs ~iid:at r with
  | None | Some Rd.Entry -> None
  | Some (Rd.At d) -> (
      match Mir.Func.op_at f d with
      | Some (Mir.Op.Move (_, Mir.Operand.Reg s)) ->
          let same =
            match Rd.unique_def rdefs ~iid:at s, Rd.unique_def rdefs ~iid:d s with
            | Some a, Some b -> a = b
            | (Some _ | None), (Some _ | None) -> false
          in
          if same then Some s else None
      | Some _ | None -> None)

let copy_prop_func (f : Mir.Func.t) =
  let cfg = Ipds_cfg.Cfg.make f in
  let rdefs = Rd.compute cfg in
  let subst_reg ~at r =
    match copy_source rdefs f ~at r with
    | Some s -> s
    | None -> r
  in
  let subst_operand ~at (o : Mir.Operand.t) =
    match o with
    | Mir.Operand.Imm _ -> o
    | Mir.Operand.Reg r -> Mir.Operand.reg (subst_reg ~at r)
  in
  let subst_addr ~at = function
    | Mir.Addr.Direct v -> Mir.Addr.Direct v
    | Mir.Addr.Index (v, o) -> Mir.Addr.Index (v, subst_operand ~at o)
    | Mir.Addr.Indirect r -> Mir.Addr.Indirect (subst_reg ~at r)
  in
  let rewrite_op iid (op : Mir.Op.t) =
    let at = iid in
    match op with
    | Mir.Op.Move (r, o) -> Mir.Op.Move (r, subst_operand ~at o)
    | Mir.Op.Binop (r, bop, a, b) ->
        Mir.Op.Binop (r, bop, subst_operand ~at a, subst_operand ~at b)
    | Mir.Op.Load (r, a) -> Mir.Op.Load (r, subst_addr ~at a)
    | Mir.Op.Store (a, o) -> Mir.Op.Store (subst_addr ~at a, subst_operand ~at o)
    | Mir.Op.Addr_of (r, v, o) -> Mir.Op.Addr_of (r, v, subst_operand ~at o)
    | Mir.Op.Call { dst; callee; args } ->
        Mir.Op.Call { dst; callee; args = List.map (subst_operand ~at) args }
    | Mir.Op.Output o -> Mir.Op.Output (subst_operand ~at o)
    | Mir.Op.Const _ | Mir.Op.Input _ | Mir.Op.Nop -> op
  in
  let body_of b =
    Array.to_list f.Mir.Func.blocks.(b).Mir.Block.body
    |> List.map (fun (i : Mir.Instr.t) -> rewrite_op i.iid i.op)
  in
  let term_of b =
    let blk = f.Mir.Func.blocks.(b) in
    let at = blk.Mir.Block.term_iid in
    match blk.Mir.Block.term with
    | Mir.Terminator.Branch { cmp; lhs; rhs; if_true; if_false } ->
        Mir.Terminator.Branch
          { cmp; lhs = subst_reg ~at lhs; rhs = subst_operand ~at rhs; if_true; if_false }
    | Mir.Terminator.Return o ->
        Mir.Terminator.Return (Option.map (subst_operand ~at) o)
    | (Mir.Terminator.Jump _ | Mir.Terminator.Halt) as t -> t
  in
  Rebuild.func f ~body_of ~term_of

(* ---------- dead code elimination ---------- *)

let pure (op : Mir.Op.t) =
  match op with
  | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Addr_of _
  | Mir.Op.Nop ->
      true
  (* direct and indexed loads cannot fault; indirect loads can (dangling
     or non-pointer), so they are observable and must stay *)
  | Mir.Op.Load (_, (Mir.Addr.Direct _ | Mir.Addr.Index _)) -> true
  | Mir.Op.Load (_, Mir.Addr.Indirect _) -> false
  | Mir.Op.Store _ | Mir.Op.Call _ | Mir.Op.Input _ | Mir.Op.Output _ -> false

let dce_func (f : Mir.Func.t) =
  let cfg = Ipds_cfg.Cfg.make f in
  let live = Ipds_dataflow.Liveness.compute cfg in
  let keep (blk : Mir.Block.t) pos (i : Mir.Instr.t) =
    if i.op = Mir.Op.Nop then false
    else if not (pure i.op) then true
    else
      match Mir.Op.def i.op with
      | None -> true
      | Some r ->
          (* live just after this instruction = live before the next
             point of the block *)
          let next_iid =
            if pos + 1 < Array.length blk.body then blk.body.(pos + 1).Mir.Instr.iid
            else blk.term_iid
          in
          Ipds_dataflow.Liveness.live_before live ~iid:next_iid r
  in
  let body_of b =
    let blk = f.Mir.Func.blocks.(b) in
    Array.to_list blk.Mir.Block.body
    |> List.filteri (fun pos i -> keep blk pos i)
    |> List.map (fun (i : Mir.Instr.t) -> i.Mir.Instr.op)
  in
  let term_of b = f.Mir.Func.blocks.(b).Mir.Block.term in
  Rebuild.func f ~body_of ~term_of

(* ---------- redundant load elimination ---------- *)

module Cell = Ipds_alias.Cell

(* Global available-loads analysis: at each point, which registers are
   known to hold the current value of which exactly-aliased cells.  A
   must-analysis: the meet is intersection (with agreement), so [Top]
   stands for "not yet reached". *)
module Avail = struct
  type t =
    | Top
    | Map of Ipds_mir.Reg.t Cell.Map.t

  let equal a b =
    match a, b with
    | Top, Top -> true
    | Map m, Map n -> Cell.Map.equal Mir.Reg.equal m n
    | Top, Map _ | Map _, Top -> false

  let join a b =
    match a, b with
    | Top, x | x, Top -> x
    | Map m, Map n ->
        Map
          (Cell.Map.merge
             (fun _ x y ->
               match x, y with
               | Some rx, Some ry when Mir.Reg.equal rx ry -> Some rx
               | _, _ -> None)
             m n)
end

(* Kill/gen for one instruction over an availability map. *)
let avail_step access (m : Mir.Reg.t Cell.Map.t) (op : Mir.Op.t) =
  let kill_target m = function
    | Ipds_alias.Access.No_target -> m
    | Ipds_alias.Access.Exact c -> Cell.Map.remove c m
    | Ipds_alias.Access.Within vs ->
        Cell.Map.filter (fun (c : Cell.t) _ -> not (Mir.Var.Set.mem c.var vs)) m
  in
  let m =
    match op with
    | Mir.Op.Store (a, o) -> (
        let m = kill_target m (Ipds_alias.Access.addr_target access a) in
        match Ipds_alias.Access.addr_target access a, o with
        | Ipds_alias.Access.Exact c, Mir.Operand.Reg s -> Cell.Map.add c s m
        | _, _ -> m)
    | Mir.Op.Call _ -> kill_target m (Ipds_alias.Access.may_defs access op)
    | Mir.Op.Load _ | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _
    | Mir.Op.Addr_of _ | Mir.Op.Input _ | Mir.Op.Output _ | Mir.Op.Nop ->
        m
  in
  (* a definition invalidates entries held in the defined register *)
  let m =
    match Mir.Op.def op with
    | Some r -> Cell.Map.filter (fun _ s -> not (Mir.Reg.equal s r)) m
    | None -> m
  in
  match op with
  | Mir.Op.Load (r, a) -> (
      match Ipds_alias.Access.addr_target access a with
      | Ipds_alias.Access.Exact c -> Cell.Map.add c r m
      | Ipds_alias.Access.No_target | Ipds_alias.Access.Within _ -> m)
  | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Store _
  | Mir.Op.Addr_of _ | Mir.Op.Call _ | Mir.Op.Input _ | Mir.Op.Output _
  | Mir.Op.Nop ->
      m

let rle_func (prog : Mir.Program.t) points_to summaries (f : Mir.Func.t) =
  let access = Ipds_alias.Access.make prog points_to ~summaries f in
  let cfg = Ipds_cfg.Cfg.make f in
  let module Solver = Ipds_dataflow.Framework.Forward (Avail) in
  let transfer b d =
    match d with
    | Avail.Top -> Avail.Top
    | Avail.Map m ->
        Avail.Map
          (Array.fold_left
             (fun m (i : Mir.Instr.t) -> avail_step access m i.op)
             m f.Mir.Func.blocks.(b).Mir.Block.body)
  in
  let block_in, _ =
    Solver.solve
      (Ipds_cfg.Feasibility.view_of_cfg cfg)
      ~entry:(Avail.Map Cell.Map.empty) ~bottom:Avail.Top ~transfer
  in
  let body_of b =
    let start =
      match block_in.(b) with
      | Avail.Top -> Cell.Map.empty (* unreachable *)
      | Avail.Map m -> m
    in
    let m = ref start in
    Array.to_list f.Mir.Func.blocks.(b).Mir.Block.body
    |> List.map (fun (i : Mir.Instr.t) ->
           let op = i.op in
           let rewritten =
             match op with
             (* only rewrite loads that cannot fault: replacing a faulting
                indirect load with a move would change behaviour *)
             | Mir.Op.Load (r, ((Mir.Addr.Direct _ | Mir.Addr.Index _) as a)) -> (
                 match Ipds_alias.Access.addr_target access a with
                 | Ipds_alias.Access.Exact c -> (
                     match Cell.Map.find_opt c !m with
                     | Some s when not (Mir.Reg.equal s r) ->
                         Mir.Op.Move (r, Mir.Operand.reg s)
                     | Some _ | None -> op)
                 | Ipds_alias.Access.No_target | Ipds_alias.Access.Within _ -> op)
             | Mir.Op.Load (_, Mir.Addr.Indirect _) -> op
             | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Store _
             | Mir.Op.Addr_of _ | Mir.Op.Call _ | Mir.Op.Input _ | Mir.Op.Output _
             | Mir.Op.Nop ->
                 op
           in
           (* availability evolves by the ORIGINAL op so the solver's
              fixpoint stays consistent *)
           m := avail_step access !m op;
           rewritten)
  in
  let term_of b = f.Mir.Func.blocks.(b).Mir.Block.term in
  Rebuild.func f ~body_of ~term_of

let redundant_load_elim (p : Mir.Program.t) =
  let points_to = Ipds_alias.Points_to.compute p in
  let summaries = Ipds_alias.Summary.compute p points_to ~mode:`Faithful in
  let q = { p with Mir.Program.funcs = List.map (rle_func p points_to summaries) p.funcs } in
  Mir.Validate.check_exn q;
  q

(* ---------- driver ---------- *)

let per_func pass (p : Mir.Program.t) =
  let q = { p with Mir.Program.funcs = List.map pass p.funcs } in
  Mir.Validate.check_exn q;
  q

let const_prop = per_func const_prop_func
let copy_prop = per_func copy_prop_func
let dce = per_func dce_func

let optimize ?(rounds = 4) p =
  let step p = dce (copy_prop (const_prop (redundant_load_elim p))) in
  let rec go n p = if n = 0 then p else go (n - 1) (step p) in
  go rounds p
