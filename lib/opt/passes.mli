(** Classical scalar optimizations, used to study the paper's remark that
    "compiler optimizations can remove some correlations, reducing the
    detection rate".

    All passes are intra-procedural and semantics-preserving (checked by
    property tests against the interpreter):

    - {!const_prop}: operands whose unique reaching definition chain ends
      at a constant become immediates; fully-constant binops fold;
      branches with a statically known direction become jumps;
    - {!copy_prop}: a use of [r] whose unique definition is [r := s] reads
      [s] directly when [s] provably still holds the same value;
    - {!dce}: instructions that define a dead register and have no side
      effect (including loads — memory reads are unobservable here)
      disappear.

    [optimize] iterates the three to a fixpoint (bounded), then
    {!Promote.program} is usually applied on top by callers. *)

val const_prop : Ipds_mir.Program.t -> Ipds_mir.Program.t
val copy_prop : Ipds_mir.Program.t -> Ipds_mir.Program.t
val dce : Ipds_mir.Program.t -> Ipds_mir.Program.t

val redundant_load_elim : Ipds_mir.Program.t -> Ipds_mir.Program.t
(** Block-local redundant-load elimination with store-to-load forwarding:
    a load of an exactly-aliased cell whose value is already in a register
    (from an earlier load or store, with no possible intervening write)
    becomes a move.  This is the pass that *removes load–load
    correlations*: the second check of a flag no longer re-reads memory,
    so tampering between the checks becomes invisible both to the program
    and to IPDS — the effect the paper attributes to compiler
    optimization. *)

val optimize : ?rounds:int -> Ipds_mir.Program.t -> Ipds_mir.Program.t
(** Default 4 rounds of rle → const-prop → copy-prop → dce. *)
