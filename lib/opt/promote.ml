module Mir = Ipds_mir

(* A local is promotable when it is a scalar, its address is never taken
   anywhere in the program, and every access to it anywhere is a direct
   load or store.  (Indexed accesses to scalars are legal MIR, so they are
   checked for rather than assumed away.) *)

let disqualified (p : Mir.Program.t) =
  let bad = Hashtbl.create 16 in
  let disqualify (v : Mir.Var.t) = Hashtbl.replace bad v.id () in
  let check_addr = function
    | Mir.Addr.Direct _ -> ()
    | Mir.Addr.Index (v, _) -> disqualify v
    | Mir.Addr.Indirect _ -> ()
  in
  List.iter
    (fun (f : Mir.Func.t) ->
      Mir.Func.iter_instrs f (fun _ op ->
          match op with
          | Mir.Op.Addr_of (_, v, _) -> disqualify v
          | Mir.Op.Load (_, a) | Mir.Op.Store (a, _) -> check_addr a
          | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Call _
          | Mir.Op.Input _ | Mir.Op.Output _ | Mir.Op.Nop ->
              ()))
    p.funcs;
  bad

let promotable p (f : Mir.Func.t) =
  let bad = disqualified p in
  List.filter
    (fun (v : Mir.Var.t) -> Mir.Var.is_scalar v && not (Hashtbl.mem bad v.id))
    f.locals

let promote_func p (f : Mir.Func.t) =
  let victims = promotable p f in
  if victims = [] then f
  else begin
    let reg_of = Hashtbl.create 8 in
    let next = ref f.reg_count in
    List.iter
      (fun (v : Mir.Var.t) ->
        Hashtbl.replace reg_of v.id (Mir.Reg.make !next);
        incr next)
      victims;
    let rewrite (op : Mir.Op.t) =
      match op with
      | Mir.Op.Load (r, Mir.Addr.Direct v) -> (
          match Hashtbl.find_opt reg_of v.Mir.Var.id with
          | Some rv -> Mir.Op.Move (r, Mir.Operand.reg rv)
          | None -> op)
      | Mir.Op.Store (Mir.Addr.Direct v, o) -> (
          match Hashtbl.find_opt reg_of v.Mir.Var.id with
          | Some rv -> Mir.Op.Move (rv, o)
          | None -> op)
      | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Load _
      | Mir.Op.Store _ | Mir.Op.Addr_of _ | Mir.Op.Call _ | Mir.Op.Input _
      | Mir.Op.Output _ | Mir.Op.Nop ->
          op
    in
    let blocks =
      Array.map
        (fun (b : Mir.Block.t) ->
          {
            b with
            Mir.Block.body =
              Array.map
                (fun (i : Mir.Instr.t) -> { i with Mir.Instr.op = rewrite i.op })
                b.body;
          })
        f.blocks
    in
    let keep (v : Mir.Var.t) = not (Hashtbl.mem reg_of v.id) in
    {
      f with
      Mir.Func.blocks;
      locals = List.filter keep f.locals;
      reg_count = !next;
    }
  end

let program (p : Mir.Program.t) =
  let promoted = { p with Mir.Program.funcs = List.map (promote_func p) p.funcs } in
  Mir.Validate.check_exn promoted;
  promoted

let promoted_vars (p : Mir.Program.t) =
  List.concat_map (fun f -> promotable p f) p.funcs
