module Mir = Ipds_mir

let func (f : Mir.Func.t) ~body_of ~term_of =
  let next = ref 0 in
  let blocks =
    Array.map
      (fun (b : Mir.Block.t) ->
        let body =
          Array.of_list
            (List.map
               (fun op ->
                 let iid = !next in
                 incr next;
                 { Mir.Instr.iid; op })
               (body_of b.index))
        in
        let term_iid = !next in
        incr next;
        { b with Mir.Block.body; term = term_of b.index; term_iid })
      f.blocks
  in
  { f with Mir.Func.blocks; instr_count = !next }
