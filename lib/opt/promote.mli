(** Scalar register promotion (mem2reg).

    Models the paper's "graph coloring based register allocator": scalar
    local variables whose address is never taken live in registers in the
    compiled binaries the paper attacks, so memory tampering cannot touch
    them.  Promoting them (one dedicated register per variable, direct
    loads/stores become moves) gives the machine the same property:
    loop counters and temporaries vanish from the tamperable surface,
    while arrays, address-taken locals, and globals — the state real
    attacks corrupt — stay memory-resident.

    Promotion preserves instruction counts and ids (each load/store is
    replaced 1:1 by a move), so layouts computed before and after differ
    only in which instructions touch memory. *)

val program : Ipds_mir.Program.t -> Ipds_mir.Program.t
(** Promote every eligible local of every function. *)

val promoted_vars : Ipds_mir.Program.t -> Ipds_mir.Var.t list
(** The locals {!program} would promote (for reporting/tests). *)
