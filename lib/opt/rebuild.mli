(** Rebuild a function from edited block contents, renumbering instruction
    ids densely (the invariant every analysis relies on). *)

val func :
  Ipds_mir.Func.t ->
  body_of:(int -> Ipds_mir.Op.t list) ->
  term_of:(int -> Ipds_mir.Terminator.t) ->
  Ipds_mir.Func.t
(** [func f ~body_of ~term_of] — block [b] gets body [body_of b] and
    terminator [term_of b]; labels, params, locals and register count are
    preserved. *)
