(** MiniC source text of the ten synthetic server programs. *)

val telnetd : string
val wu_ftpd : string
val xinetd : string
val crond : string
val sysklogd : string
val atftpd : string
val httpd : string
val sendmail : string
val sshd : string
val portmap : string
