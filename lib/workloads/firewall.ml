type action =
  | Accept
  | Drop
  | Reject
  | Log_accept

type rule = {
  proto : int option;
  sport : (int * int) option;
  dport : (int * int) option;
  src_net : int option;
  action : action;
}

type policy = rule list

let action_code = function
  | Accept -> 0
  | Drop -> 1
  | Reject -> 2
  | Log_accept -> 3

let default_policy =
  [
    (* management subnet: always in, logged *)
    { proto = None; sport = None; dport = None; src_net = Some 1; action = Log_accept };
    (* dns over proto 2 from anywhere *)
    { proto = Some 2; sport = None; dport = Some (53, 53); src_net = None; action = Accept };
    (* low ports from the dmz are rejected, not silently dropped *)
    { proto = None; sport = None; dport = Some (0, 63); src_net = Some 6; action = Reject };
    (* web: tcp-ish proto 0 to the http range *)
    { proto = Some 0; sport = None; dport = Some (80, 88); src_net = None; action = Accept };
    (* shadowed by the rule above for proto 0 — narrower port range *)
    { proto = Some 0; sport = Some (32, 128); dport = Some (80, 80); src_net = None; action = Drop };
    (* icmp-ish proto 3 is rate-limited by main; accept and log here *)
    { proto = Some 3; sport = None; dport = None; src_net = None; action = Log_accept };
    (* ephemeral-to-ephemeral between inside nets *)
    { proto = Some 1; sport = Some (128, 255); dport = Some (128, 255); src_net = Some 3; action = Accept };
    (* legacy net is cut off entirely *)
    { proto = None; sport = None; dport = None; src_net = Some 7; action = Reject };
  ]

let default_action = Drop

let generate ~seed ~nrules =
  let rng = Random.State.make [| seed; nrules; 0x66697265 |] in
  let opt p f = if Random.State.float rng 1.0 < p then Some (f ()) else None in
  let port_range () =
    let lo = Random.State.int rng 256 in
    let hi = lo + Random.State.int rng (256 - lo) in
    (lo, hi)
  in
  List.init (max 1 nrules) (fun _ ->
      let rec rule () =
        let r =
          {
            proto = opt 0.5 (fun () -> Random.State.int rng 4);
            sport = opt 0.35 port_range;
            dport = opt 0.6 port_range;
            src_net = opt 0.45 (fun () -> Random.State.int rng 8);
            action =
              (match Random.State.int rng 5 with
              | 0 | 1 -> Accept
              | 2 -> Drop
              | 3 -> Reject
              | _ -> Log_accept);
          }
        in
        (* an all-wildcard rule would shadow the rest of the chain *)
        if r.proto = None && r.sport = None && r.dport = None && r.src_net = None
        then rule ()
        else r
      in
      rule ())

(* ---------- MiniC lowering ---------- *)

let rule_test r =
  let tests =
    List.concat
      [
        (match r.proto with
        | None -> []
        | Some p -> [ Printf.sprintf "(proto == %d)" p ]);
        (match r.sport with
        | None -> []
        | Some (lo, hi) ->
            if lo = hi then [ Printf.sprintf "(sport == %d)" lo ]
            else [ Printf.sprintf "((sport >= %d) && (sport <= %d))" lo hi ]);
        (match r.dport with
        | None -> []
        | Some (lo, hi) ->
            if lo = hi then [ Printf.sprintf "(dport == %d)" lo ]
            else [ Printf.sprintf "((dport >= %d) && (dport <= %d))" lo hi ]);
        (match r.src_net with
        | None -> []
        | Some s -> [ Printf.sprintf "(src == %d)" s ]);
      ]
  in
  match tests with
  | [] -> "(1 == 1)"
  | t :: rest -> List.fold_left (fun acc t -> acc ^ " && " ^ t) t rest

let source policy =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "int accepted;\n";
  add "int dropped;\n";
  add "int rejected;\n";
  add "int logged;\n";
  add "int rate[8];\n";
  add "\n";
  (* the rule chain: first match returns its action code *)
  add "int classify(int proto, int sport, int dport, int src) {\n";
  List.iter
    (fun r ->
      add "  if (%s) {\n    return %d;\n  }\n" (rule_test r) (action_code r.action))
    policy;
  add "  return %d;\n" (action_code default_action);
  add "}\n\n";
  (* main keeps its session state in local arrays (st[0]=lockdown,
     st[1]=rejects, st[2]=seen_mgmt, st[3]=accepts) like the other
     servers: flags set in one branch and tested in others are what the
     correlation analysis latches onto, and memory-resident state is
     what the attack campaigns corrupt. *)
  add "// st[0]=lockdown  st[1]=rejects  st[2]=seen_mgmt  st[3]=accepts\n";
  add "int main() {\n";
  add "  int st[4];\n  int rate[8];\n  int conf[4];\n";
  add "  int npkt;\n  int i;\n  int proto;\n  int sport;\n  int dport;\n";
  add "  int src;\n  int v;\n";
  add "  read_line(&conf[0], 4);\n";
  add "  st[0] = 0;\n  st[1] = 0;\n  st[2] = 0;\n  st[3] = 0;\n";
  add "  for (i = 0; i < 8; i = i + 1) {\n    rate[i] = 0;\n  }\n";
  add "  npkt = (input(0) %% 12) + 6;\n";
  add "  for (i = 0; i < npkt; i = i + 1) {\n";
  add "    // lockdown audit runs for every packet\n";
  add "    if (st[0]) { output(13); } else { output(12); }\n";
  add "    // operator-tuned thresholds from the config block\n";
  add "    if (conf[0] > 100) { output(91); }\n";
  add "    if (conf[1] > 100) { output(92); }\n";
  add "    proto = input(0) %% 4;\n";
  add "    sport = input(0);\n";
  add "    dport = input(0);\n";
  add "    src = input(0) %% 8;\n";
  add "    v = classify(proto, sport, dport, src);\n";
  add "    rate[src] = rate[src] + 1;\n";
  add "    // lockdown and the per-source rate limiter override accepts\n";
  add "    if (st[0]) { v = 1; }\n";
  add "    if ((v == 0 || v == 3) && rate[src] > 9) {\n";
  add "      v = 1;\n";
  add "    }\n";
  add "    if (v == 0) {\n";
  add "      accepted = accepted + 1;\n";
  add "      st[3] = st[3] + 1;\n";
  add "      send(0, dport);\n";
  add "    } else {\n";
  add "      if (v == 1) {\n";
  add "        dropped = dropped + 1;\n";
  add "      } else {\n";
  add "        if (v == 2) {\n";
  add "          rejected = rejected + 1;\n";
  add "          st[1] = st[1] + 1;\n";
  add "          send(0, 0 - 1);\n";
  add "        } else {\n";
  add "          logged = logged + 1;\n";
  add "          log_msg(src, dport);\n";
  add "          accepted = accepted + 1;\n";
  add "          st[3] = st[3] + 1;\n";
  add "          send(0, dport);\n";
  add "        }\n";
  add "      }\n";
  add "    }\n";
  add "    if (src == 1) { st[2] = 1; }\n";
  add "    if (st[1] > 2) { st[0] = 1; }\n";
  add "    if (st[2]) {\n";
  add "      if (dport == 53) { output(53); }\n";
  add "    }\n";
  add "  }\n";
  add "  output(accepted);\n";
  add "  output(dropped);\n";
  add "  output(rejected);\n";
  add "  output(logged);\n";
  add "  output(st[3]);\n";
  add "  return 0;\n";
  add "}\n";
  Buffer.contents buf
