(* MiniC sources for the ten synthetic server programs (paper §6).  Each
   mirrors the dispatch/authentication/configuration structure of the real
   server it stands in for.

   Layout convention: session/configuration state lives in small arrays
   indexed by constant "field" offsets — the MiniC rendering of the C
   structs real servers keep their state in.  Arrays are memory-resident
   (register promotion only lifts scalars), so this is exactly the data a
   buffer overflow or format-string write can corrupt.  Loop counters and
   command words are plain scalars: the register allocator promotes them,
   as it did in the binaries the paper attacked.

   Channel 0 feeds commands and lines ([read_line]); channel 1 feeds
   network payloads ([recv]). *)

let telnetd =
  {|
// telnetd: password login, then a command shell with privileged commands.
// sess[0]=authed  sess[1]=failed  sess[2]=echo_on  sess[3]=priv_uses
int check_pw(int *buf, int n) {
  int h;
  h = hash_pw(buf, n);
  if (h == 4660) { return 1; }
  return 0;
}

int main() {
  int sess[4];
  int pw[4];
  int line[4];
  int term[4];
  int lmode[1];
  int nreq;
  int i;
  int c;
  int ok;
  int t0;
  int t1;
  int t3;
  read_line(&term[0], 4);
  sess[0] = 0;
  sess[1] = 0;
  sess[2] = 1;
  sess[3] = 0;
  lmode[0] = 0;
  nreq = input(0) % 12 + 6;
  i = 0;
  while (i < nreq) {
    // connection keep-alive audit: runs every request
    if (sess[0]) { output(7); } else { output(6); }
    // negotiated terminal options steer echo/paging behaviour; narrow
    // legacy terminals (linemode) rescale them, but this build ships
    // without linemode so the flag stays 0 and the rescale never runs
    t0 = term[0];
    t1 = term[1];
    t3 = term[3];
    if (lmode[0]) { t0 = t0 % 40; t1 = t1 % 40; t3 = 0; }
    if (t0 > 100) { output(77); }
    if (t1 > 100) { output(78); }
    if (term[2] > 100) { output(79); }
    if (t3 != 0) { output(84); }
    c = input(0) % 5;
    if (c == 0) {
      read_line(&pw[0], 4);
      ok = check_pw(&pw[0], 4);
      if (ok == 1) { sess[0] = 1; output(1); }
      else { sess[1] = sess[1] + 1; output(0); }
    }
    if (c == 1) {
      read_line(&line[0], 4);
      if (sess[2]) { send(&line[0], 4); }
    }
    if (c == 2) {
      if (sess[0]) { output(100); } else { output(101); }
    }
    if (c == 3) {
      if (sess[0]) { sess[3] = sess[3] + 1; output(999); }
      else { output(403); }
    }
    if (c == 4) {
      if (sess[1] > 3) { output(429); sess[0] = 0; } else { output(200); }
    }
    i = i + 1;
  }
  output(sess[3]);
  return 0;
}
|}

let wu_ftpd =
  {|
// wu-ftpd: session with user levels (0 anon, 1 user, 2 admin) and
// level-gated file commands.
// sess[0]=level  sess[1]=quota  sess[2]=logged_in  sess[3]=xfers
int parse_path(int *buf, int n) {
  int i;
  int depth;
  depth = 0;
  for (i = 0; i < n; i = i + 1) {
    if (buf[i] == 47) { depth = depth + 1; }
    if (buf[i] == 46) { depth = depth - 1; }
  }
  return depth;
}

int main() {
  int sess[4];
  int path[4];
  int cwd[4];
  int nreq;
  int i;
  int cmd;
  int depth;
  read_line(&cwd[0], 4);
  sess[0] = 0;
  sess[1] = 5;
  sess[2] = 0;
  sess[3] = 0;
  nreq = input(0) % 14 + 6;
  i = 0;
  while (i < nreq) {
    if (sess[2]) { output(8); } else { output(9); }
    if (cwd[0] > 100) { output(57); }
    if (cwd[1] > 100) { output(58); }
    if (cwd[2] > 100) { output(56); }
    if (cwd[3] != 0) { output(53); }
    cmd = input(0) % 6;
    if (cmd == 0) {
      sess[0] = input(0) % 3;
      sess[2] = 1;
      output(230);
    }
    if (cmd == 1) {
      read_line(&path[0], 4);
      depth = parse_path(&path[0], 4);
      if (depth < 0) { output(550); } else { output(150); }
    }
    if (cmd == 2) {
      if (sess[0] >= 1) {
        if (sess[1] > 0) { sess[1] = sess[1] - 1; sess[3] = sess[3] + 1; output(226); }
        else { output(452); }
      } else { output(530); }
    }
    if (cmd == 3) {
      if (sess[0] >= 2) { output(250); } else { output(550); }
    }
    if (cmd == 4) {
      if (sess[0] >= 2) { output(257); } else { output(550); }
    }
    if (cmd == 5) {
      if (sess[2]) { sess[2] = 0; output(221); } else { output(421); }
    }
    i = i + 1;
  }
  output(sess[3]);
  return 0;
}
|}

let xinetd =
  {|
// xinetd: super-server consulting an in-memory service table for
// enabled flags and per-service connection limits.  The table is process
// state: globals, as in the real daemon.
// enabled[s], count[s] per service; cfg[0]=hard_cap  cfg[1]=strict
int enabled[4];
int count[4];
int cfg[2];

// access control: scan the client banner for forbidden bytes; the local
// verdict flag is set then re-checked (activation-local correlation).
int access_ok(int *banner, int n) {
  int verdict[1];
  int i;
  verdict[0] = 1;
  for (i = 0; i < n; i = i + 1) {
    if (banner[i] == 0) { return verdict[0]; }
    if (banner[i] > 250) { verdict[0] = 0; }
  }
  if (verdict[0]) { return 1; }
  return 0;
}

int main() {
  int banner[4];
  int nconn;
  int i;
  int svc;
  int total;
  read_line(&banner[0], 4);
  enabled[0] = 1;
  enabled[1] = input(0) % 2;
  enabled[2] = 1;
  enabled[3] = 0;
  count[0] = 0;
  count[1] = 0;
  count[2] = 0;
  count[3] = 0;
  cfg[0] = 8;
  cfg[1] = 1;
  nconn = input(0) % 16 + 8;
  i = 0;
  while (i < nconn) {
    if (cfg[1]) { output(5); } else { output(4); }
    if (banner[0] > 100) { output(59); }
    if (banner[1] > 100) { output(51); }
    if (access_ok(&banner[0], 4) == 0) { output(495); }
    if (banner[2] > 100) { output(52); }
    if (banner[3] != 0) { output(49); }
    svc = input(0) % 4;
    if (svc == 0) {
      if (enabled[0]) {
        if (count[0] < 3) { count[0] = count[0] + 1; output(10); }
        else { output(11); }
      } else { output(12); }
    }
    if (svc == 1) {
      if (enabled[1]) {
        if (count[1] < 2) { count[1] = count[1] + 1; output(20); }
        else { output(21); }
      } else { output(22); }
    }
    if (svc == 2) {
      if (enabled[2]) {
        if (count[2] < 4) { count[2] = count[2] + 1; output(30); }
        else { output(31); }
      } else { output(32); }
    }
    if (svc == 3) {
      if (enabled[3]) { output(40); } else { output(42); }
    }
    total = count[0] + count[1] + count[2];
    if (total > cfg[0]) { output(503); }
    i = i + 1;
  }
  return 0;
}
|}

let crond =
  {|
// crond: periodic job runner with per-job privilege flags.
// job[0..2]=next run tick; cfg[0]=uid  cfg[1]=allow_priv

// crontab field matcher: star (0) matches everything, otherwise modulo
int match_spec(int *spec, int tick) {
  int hit[1];
  hit[0] = 0;
  if (spec[0] == 0) { hit[0] = 1; }
  if (spec[0] > 0) {
    if (tick % (spec[0] % 7 + 1) == 0) { hit[0] = 1; }
  }
  if (hit[0]) { return 1; }
  return 0;
}

int main() {
  int job[3];
  int cfg[2];
  int spec[4];
  int tick;
  int horizon;
  read_line(&spec[0], 4);
  job[0] = 2;
  job[1] = 3;
  job[2] = 5;
  cfg[0] = input(0) % 2;
  cfg[1] = 1;
  horizon = input(0) % 12 + 8;
  tick = 0;
  while (tick < horizon) {
    if (cfg[0] == 0) { output(1); } else { output(2); }
    if (spec[0] > 100) { output(61); }
    if (spec[1] > 100) { output(62); }
    if (match_spec(&spec[0], tick)) { output(60); }
    if (spec[2] > 100) { output(48); }
    if (spec[3] != 0) { output(47); }
    if (job[0] == tick) {
      output(100);
      job[0] = tick + 2;
    }
    if (job[1] == tick) {
      if (cfg[1]) {
        if (cfg[0] == 0) { output(111); } else { output(113); }
      } else { output(112); }
      job[1] = tick + 3;
    }
    if (job[2] == tick) {
      output(120);
      job[2] = tick + 5;
    }
    tick = tick + 1;
  }
  return 0;
}
|}

let sysklogd =
  {|
// sysklogd: syslog daemon with a priority threshold and rate limiting.
// cfg[0]=threshold  cfg[1]=burst  cfg[2]=dropped  cfg[3]=panic_mode

// RFC3164-ish tag classifier over the raw message bytes
int classify(int *msg, int n) {
  int kind[1];
  int i;
  kind[0] = 0;
  for (i = 0; i < n; i = i + 1) {
    if (msg[i] > 200) { kind[0] = 2; }
    if (msg[i] == 0) {
      if (kind[0] == 0) { kind[0] = 1; }
      return kind[0];
    }
  }
  return kind[0];
}

int main() {
  int cfg[4];
  int msg[4];
  int filt[4];
  int legacy[1];
  int nmsg;
  int i;
  int prio;
  int f0;
  int f1;
  int f3;
  read_line(&filt[0], 4);
  cfg[0] = 4;
  cfg[1] = 0;
  cfg[2] = 0;
  cfg[3] = 0;
  legacy[0] = 0;
  nmsg = input(0) % 20 + 8;
  i = 0;
  while (i < nmsg) {
    if (cfg[3]) { output(991); } else { output(990); }
    // filter thresholds come off the wire; legacy (pre-RFC3164) peers
    // use a narrower priority scale and get rescaled, but this build
    // speaks only the modern protocol so the flag stays 0
    f0 = filt[0];
    f1 = filt[1];
    f3 = filt[3];
    if (legacy[0]) { f0 = f0 % 40; f1 = f1 % 40; f3 = 0; }
    if (f0 > 100) { output(63); }
    if (f1 > 100) { output(64); }
    if (filt[2] > 100) { output(46); }
    if (f3 != 0) { output(43); }
    prio = input(0) % 8;
    recv(&msg[0], 4);
    if (classify(&msg[0], 4) == 2) { output(302); }
    if (prio <= 4) {
      if (cfg[1] < 5) {
        cfg[1] = cfg[1] + 1;
        send(&msg[0], 4);
        output(prio);
      } else {
        cfg[2] = cfg[2] + 1;
        output(300);
      }
    } else {
      output(301);
    }
    if (prio == 0) {
      output(911);
      cfg[1] = 0;
      cfg[3] = 1;
    }
    if (cfg[2] > 6) { output(514); }
    i = i + 1;
  }
  output(cfg[2]);
  return 0;
}
|}

let atftpd =
  {|
// atftpd: TFTP server; read-only mode gates writes, block counter drives
// the transfer loop.
// cfg[0]=readonly  cfg[1]=xfer_count  cfg[2]=error_count

// verify a data block: the sequence byte must match and the body must
// not be empty; the verdict is accumulated activation-locally
int block_ok(int *payload, int expected) {
  int st[1];
  st[0] = 1;
  if (payload[0] % 8 != expected % 8) { st[0] = 0; }
  if (payload[1] == 0) {
    if (payload[2] == 0) { st[0] = 0; }
  }
  if (st[0]) { return 1; }
  return 0;
}

int main() {
  int cfg[3];
  int payload[4];
  int mode[4];
  int nreq;
  int i;
  int op;
  int blocks;
  int b;
  read_line(&mode[0], 4);
  cfg[0] = 1;
  cfg[1] = 0;
  cfg[2] = 0;
  nreq = input(0) % 10 + 4;
  i = 0;
  while (i < nreq) {
    if (cfg[0]) { output(71); } else { output(70); }
    if (mode[0] > 100) { output(65); }
    if (mode[1] > 100) { output(66); }
    if (mode[2] > 100) { output(39); }
    if (mode[3] != 0) { output(38); }
    op = input(0) % 3;
    if (op == 0) {
      blocks = input(0) % 6 + 1;
      b = 0;
      while (b < blocks) {
        recv(&payload[0], 4);
        if (block_ok(&payload[0], b)) { send(&payload[0], 4); }
        else { output(501); }
        b = b + 1;
      }
      cfg[1] = cfg[1] + 1;
      output(200);
    }
    if (op == 1) {
      if (cfg[0]) { cfg[2] = cfg[2] + 1; output(403); }
      else {
        recv(&payload[0], 4);
        cfg[1] = cfg[1] + 1;
        output(201);
      }
    }
    if (op == 2) {
      if (cfg[0]) { output(1); } else { output(0); }
    }
    if (cfg[2] > 5) { output(599); }
    i = i + 1;
  }
  output(cfg[1]);
  return 0;
}
|}

let httpd =
  {|
// httpd: request loop with method dispatch, an authorization flag set by
// a token check, and a keep-alive budget.
// sess[0]=authz  sess[1]=keepalive  sess[2]=served  sess[3]=tls
int check_token(int *buf, int n) {
  int s;
  s = checksum(buf, n);
  if (s == 510) { return 1; }
  return 0;
}

// chunked response writer: its own activation-local state (st[0]=chunks
// remaining, st[1]=error flag) is checked every iteration.
int send_chunks(int *body, int n) {
  int st[2];
  int i;
  st[0] = n;
  st[1] = 0;
  i = 0;
  while (st[0] > 0) {
    if (st[1]) { return 0 - 1; }
    send(body, 4);
    st[0] = st[0] - 1;
    if (body[0] > 250) { st[1] = 1; }
    i = i + 1;
  }
  if (st[1]) { return 0 - 1; }
  return i;
}

int main() {
  int sess[4];
  int hdr[4];
  int body[4];
  int host[4];
  int vhost[1];
  int nreq;
  int i;
  int method;
  int h0;
  int h1;
  int h3;
  read_line(&host[0], 4);
  sess[0] = 0;
  sess[1] = 10;
  sess[2] = 0;
  sess[3] = input(0) % 2;
  vhost[0] = 0;
  nreq = input(0) % 14 + 6;
  i = 0;
  while (i < nreq) {
    if (sess[3]) { output(443); } else { output(80); }
    // Host-header sanity limits; mass-vhosting deployments remap them
    // per vhost, but this build serves a single site so the vhost
    // flag never leaves 0 and the remap is dead
    h0 = host[0];
    h1 = host[1];
    h3 = host[3];
    if (vhost[0]) { h0 = h0 % 40; h1 = h1 % 40; h3 = 0; }
    if (h0 > 100) { output(67); }
    if (h1 > 100) { output(68); }
    if (host[2] > 100) { output(37); }
    if (h3 != 0) { output(36); }
    if (sess[1] <= 0) { output(408); }
    method = input(0) % 4;
    if (method == 0) {
      read_line(&hdr[0], 4);
      sess[0] = check_token(&hdr[0], 4);
      if (sess[0]) { output(204); } else { output(401); }
    }
    if (method == 1) {
      sess[2] = sess[2] + 1;
      output(200);
      output(send_chunks(&body[0], 3));
    }
    if (method == 2) {
      if (sess[0]) {
        recv(&body[0], 4);
        sess[2] = sess[2] + 1;
        output(201);
      } else { output(401); }
    }
    if (method == 3) {
      if (sess[0]) { output(202); } else { output(403); }
    }
    sess[1] = sess[1] - 1;
    i = i + 1;
  }
  output(sess[2]);
  return 0;
}
|}

let sendmail =
  {|
// sendmail: envelope processing with sender verification, relay policy
// and recipient limits.
// env[0]=verified  env[1]=relay_ok  env[2]=rcpts  env[3]=queued

// address syntax: needs a separator byte (64 = '@') before the end
int valid_addr(int *a, int n) {
  int seen[1];
  int i;
  seen[0] = 0;
  for (i = 0; i < n; i = i + 1) {
    if (a[i] == 64) { seen[0] = 1; }
    if (a[i] == 0) {
      if (seen[0]) { return 1; }
      return 0;
    }
  }
  if (seen[0]) { return 1; }
  return 0;
}

int main() {
  int env[4];
  int addr[4];
  int helo[4];
  int nmsg;
  int i;
  int phase;
  read_line(&helo[0], 4);
  env[0] = 0;
  env[1] = 0;
  env[2] = 0;
  env[3] = 0;
  nmsg = input(0) % 16 + 6;
  i = 0;
  while (i < nmsg) {
    if (env[0]) { output(88); } else { output(87); }
    if (helo[0] > 100) { output(69); }
    if (helo[1] > 100) { output(72); }
    if (helo[2] > 100) { output(35); }
    if (helo[3] != 0) { output(34); }
    phase = input(0) % 5;
    if (phase == 0) {
      read_line(&addr[0], 4);
      if (valid_addr(&addr[0], 4)) { env[0] = 1; output(250); }
      else {
        if (strlen(&addr[0]) > 2) { env[0] = 1; output(250); }
        else { env[0] = 0; output(550); }
      }
      env[2] = 0;
    }
    if (phase == 1) {
      if (env[0]) {
        if (env[2] < 4) { env[2] = env[2] + 1; output(251); }
        else { output(452); }
      } else { output(503); }
    }
    if (phase == 2) {
      if (env[0]) {
        if (env[1]) { env[3] = env[3] + 1; output(354); } else { output(550); }
      } else { output(503); }
    }
    if (phase == 3) {
      env[1] = input(0) % 2;
      output(220);
    }
    if (phase == 4) {
      if (env[2] > 0) {
        if (env[0]) { env[3] = env[3] + 1; output(354); } else { output(503); }
      } else { output(554); }
    }
    i = i + 1;
  }
  output(env[3]);
  return 0;
}
|}

let sshd =
  {|
// sshd: key exchange, bounded authentication attempts, then a channel
// loop with privilege separation.
// sess[0]=kex_done  sess[1]=authed  sess[2]=attempts  sess[3]=privlevel
int kex(int *nonce, int n) {
  int h;
  h = hash_pw(nonce, n);
  return h % 7;
}

// per-channel flow control: win[0]=window, win[1]=stalled flag; both are
// re-checked within one activation, so IPDS guards them there.
int drain_channel(int *data, int n) {
  int win[2];
  int sent;
  win[0] = 4;
  win[1] = 0;
  sent = 0;
  while (sent < n) {
    if (win[1]) {
      if (win[0] > 0) { win[1] = 0; } else { return sent; }
    }
    if (win[0] <= 0) { win[1] = 1; }
    if (win[1] == 0) {
      send(data, 1);
      win[0] = win[0] - 1;
      sent = sent + 1;
    }
    if (win[0] <= 2) { win[0] = win[0] + 2; }
  }
  return sent;
}

int main() {
  int sess[4];
  int nonce[4];
  int chan[4];
  int ver[4];
  int compat[1];
  int nops;
  int i;
  int op;
  int v0;
  int v1;
  int v3;
  read_line(&ver[0], 4);
  sess[0] = 0;
  sess[1] = 0;
  sess[2] = 0;
  sess[3] = 0;
  compat[0] = 0;
  nops = input(0) % 16 + 8;
  i = 0;
  while (i < nops) {
    if (sess[1]) { output(45); } else { output(44); }
    // client version fields bound banner checks; protocol-1 compat
    // mode rescales them, but compat is compiled out of this build so
    // the flag is pinned to 0 and the rescale arm is unreachable
    v0 = ver[0];
    v1 = ver[1];
    v3 = ver[3];
    if (compat[0]) { v0 = v0 % 40; v1 = v1 % 40; v3 = 0; }
    if (v0 > 100) { output(73); }
    if (v1 > 100) { output(74); }
    if (ver[2] > 100) { output(33); }
    if (v3 != 0) { output(29); }
    op = input(0) % 5;
    if (op == 0) {
      recv(&nonce[0], 4);
      if (kex(&nonce[0], 4) != 0) { sess[0] = 1; output(21); }
      else { output(20); }
    }
    if (op == 1) {
      if (sess[0]) {
        if (sess[2] < 3) {
          sess[2] = sess[2] + 1;
          read_line(&chan[0], 4);
          if (checksum(&chan[0], 4) % 9 == 1) { sess[1] = 1; sess[3] = 1; output(30); }
          else { output(31); }
        } else { output(32); }
      } else { output(33); }
    }
    if (op == 2) {
      if (sess[1]) {
        output(40);
        output(drain_channel(&chan[0], 6));
      } else { output(41); }
    }
    if (op == 3) {
      if (sess[1]) {
        if (sess[3] >= 1) { output(50); } else { output(51); }
      } else { output(52); }
    }
    if (op == 4) {
      if (sess[2] >= 3) {
        if (sess[1]) { output(61); } else { output(60); }
      } else { output(62); }
    }
    i = i + 1;
  }
  return 0;
}
|}

let portmap =
  {|
// portmap: RPC program-to-port registry with privileged registration.
// The registry is process state: globals, as in the real daemon.
// prog[s]/port[s] registry; cfg[0]=owner_uid  cfg[1]=locked
int prog[4];
int port[4];
int cfg[2];

// AUTH_UNIX-ish credential check: all bytes must be in range and the
// first must match the claimed uid parity
int auth_ok(int *cred, int uid) {
  int ok[1];
  int i;
  ok[0] = 1;
  for (i = 0; i < 4; i = i + 1) {
    if (cred[i] > 200) { ok[0] = 0; }
  }
  if (cred[0] % 2 != uid % 2) { ok[0] = 0; }
  if (ok[0]) { return 1; }
  return 0;
}

int main() {
  int cred[4];
  int nreq;
  int i;
  int op;
  int target;
  int slot;
  int found;
  read_line(&cred[0], 4);
  prog[0] = 0; prog[1] = 0; prog[2] = 0; prog[3] = 0;
  port[0] = 0; port[1] = 0; port[2] = 0; port[3] = 0;
  cfg[0] = input(0) % 2;
  cfg[1] = 0;
  nreq = input(0) % 16 + 8;
  i = 0;
  while (i < nreq) {
    if (cfg[1]) { output(55); } else { output(54); }
    if (cred[0] > 100) { output(75); }
    if (cred[1] > 100) { output(76); }
    if (cred[2] > 100) { output(28); }
    if (cred[3] != 0) { output(27); }
    op = input(0) % 3;
    target = input(0) % 8 + 1;
    if (op == 0) {
      if (cfg[0] == 0) {
        if (auth_ok(&cred[0], cfg[0])) {
          slot = target % 4;
          prog[slot] = target;
          port[slot] = 9000 + target;
          output(1);
        } else { output(14); }
      } else { cfg[1] = 1; output(13); }
    }
    if (op == 1) {
      found = 0;
      slot = 0;
      while (slot < 4) {
        if (prog[slot] == target) { found = port[slot]; }
        slot = slot + 1;
      }
      if (found > 0) { output(found); } else { output(0); }
    }
    if (op == 2) {
      if (cfg[0] == 0) {
        slot = target % 4;
        if (prog[slot] == target) { prog[slot] = 0; port[slot] = 0; output(2); }
        else { output(3); }
      } else { cfg[1] = 1; output(13); }
    }
    i = i + 1;
  }
  return 0;
}
|}
