(** Firewall-policy workload family.

    A policy is an ordered, first-match-wins rule chain over packet
    header fields.  {!source} compiles a policy into a MiniC packet
    filter shaped like the other servers: [classify] is the rule chain
    lowered to an if-dispatch cascade (one conjunction of field tests
    per rule, falling through to the default verdict), and [main] pulls
    a bounded number of packets off the input script, routes each
    through the chain, and maintains per-action counters plus a
    per-source rate limiter.

    The canonical member ([fwpolicyd], built from {!default_policy}) is
    registered in [Workloads.all]; [Workloads.firewall] mints further
    family members from seeded random policies for population-scale
    campaigns — each gets a distinct name, so the compile/system memo
    keyed by name stays correct.  (The constructor lives in [Workloads]
    because this module cannot depend on it.) *)

type action =
  | Accept
  | Drop
  | Reject  (** drop, but tell the peer ([send(0, -1)]) *)
  | Log_accept  (** accept and [log_msg] the packet *)

type rule = {
  proto : int option;  (** exact protocol match, 0..3 *)
  sport : (int * int) option;  (** inclusive source-port range, 0..255 *)
  dport : (int * int) option;  (** inclusive dest-port range, 0..255 *)
  src_net : int option;  (** exact source-subnet match, 0..7 *)
  action : action;
}
(** A rule with no populated field matches every packet. *)

type policy = rule list

val default_policy : policy
(** The canonical [fwpolicyd] chain: eight rules covering every action
    and every field kind, with shadowing and range overlaps so the
    chain has real branch-correlation structure. *)

val generate : seed:int -> nrules:int -> policy
(** Seeded random policy (pure function of its arguments); every rule
    populates at least one field. *)

val source : policy -> string
(** The policy compiled to a MiniC server. *)
