(** The benchmark suite: ten synthetic servers mirroring the programs the
    paper attacks (telnetd, wu-ftpd, xinetd, crond, sysklogd, atftpd,
    httpd, sendmail, sshd, portmap), each with its original vulnerability
    class. *)

type vulnerability =
  | Buffer_overflow  (** tampers local stack data of the running function *)
  | Format_string  (** arbitrary-write: tampers any live memory *)

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC *)
  vulnerability : vulnerability;
}

val all : t list
(** The ten servers, in the paper's order. *)

val find : string -> t
(** Raises [Not_found]. *)

val program : ?promote:bool -> t -> Ipds_mir.Program.t
(** Compiled MIR (memoised).  [promote] (default true) applies
    register promotion ({!Ipds_opt.Promote}), matching the paper's
    register-allocated binaries; pass [false] for the -O0 ablation. *)

val tamper_model : t -> [ `Stack_overflow | `Arbitrary_write ]
