(** The benchmark suite: the paper's ten synthetic servers (telnetd,
    wu-ftpd, xinetd, crond, sysklogd, atftpd, httpd, sendmail, sshd,
    portmap), each with its original vulnerability class, plus the
    firewall-policy family ({!Firewall}) whose canonical member
    [fwpolicyd] rides along as the eleventh workload. *)

type vulnerability =
  | Buffer_overflow  (** tampers local stack data of the running function *)
  | Format_string  (** arbitrary-write: tampers any live memory *)

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC *)
  vulnerability : vulnerability;
}

val all : t list
(** The ten servers in the paper's order, then [fwpolicyd]. *)

val find : string -> t
(** Raises [Not_found]. *)

val firewall : seed:int -> nrules:int -> t
(** A fresh firewall-policy family member ([fwpolicyd-s<seed>-r<n>],
    see {!Firewall.generate}); distinct names keep the per-name
    compile/system memos sound. *)

val compiled : ?promote:bool -> t -> Ipds_mir.Program.t
(** Compiled MIR, memoised per [(workload, promote)] — domain-safe and
    exactly-once: concurrent callers for the same configuration block on
    the single in-flight compile.  [promote] (default true) applies
    register promotion ({!Ipds_opt.Promote}), matching the paper's
    register-allocated binaries; pass [false] for the -O0 ablation. *)

val program : ?promote:bool -> t -> Ipds_mir.Program.t
(** Alias of {!compiled} (historical name). *)

val compile_count : unit -> int
(** How many MiniC compiles have actually run in this process — the
    bench smoke test asserts it stays at one per configuration, and the
    cache smoke test asserts it stays at zero on a warm run (artifact
    loads do not count). *)

val system :
  ?promote:bool ->
  ?options:Ipds_correlation.Analysis.options ->
  ?pool:Ipds_parallel.Pool.t ->
  t ->
  Ipds_core.System.t
(** The compiled tables for a workload, through the incremental cache
    ({!Ipds_artifact.Incremental.system}): in-memory memo first, then
    the ambient artifact store ({!Ipds_artifact.Store.ambient}), then a
    real compile + analysis fanned over [pool] with the store's
    function tier consulted per function; the result is published back
    to the store.  A disk hit also seeds {!compiled} and
    {!Ipds_core.System.cached_build}, so a warm process performs zero
    MiniC compiles and zero analyses for cached configurations.
    Exactly-once and domain-safe per [(workload, promote, options)];
    the result is byte-identical for every [pool]. *)

val tamper_model : t -> [ `Stack_overflow | `Arbitrary_write ]
