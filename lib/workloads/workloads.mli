(** The benchmark suite: ten synthetic servers mirroring the programs the
    paper attacks (telnetd, wu-ftpd, xinetd, crond, sysklogd, atftpd,
    httpd, sendmail, sshd, portmap), each with its original vulnerability
    class. *)

type vulnerability =
  | Buffer_overflow  (** tampers local stack data of the running function *)
  | Format_string  (** arbitrary-write: tampers any live memory *)

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC *)
  vulnerability : vulnerability;
}

val all : t list
(** The ten servers, in the paper's order. *)

val find : string -> t
(** Raises [Not_found]. *)

val compiled : ?promote:bool -> t -> Ipds_mir.Program.t
(** Compiled MIR, memoised per [(workload, promote)] — domain-safe and
    exactly-once: concurrent callers for the same configuration block on
    the single in-flight compile.  [promote] (default true) applies
    register promotion ({!Ipds_opt.Promote}), matching the paper's
    register-allocated binaries; pass [false] for the -O0 ablation. *)

val program : ?promote:bool -> t -> Ipds_mir.Program.t
(** Alias of {!compiled} (historical name). *)

val compile_count : unit -> int
(** How many MiniC compiles have actually run in this process — the
    bench smoke test asserts it stays at one per configuration. *)

val tamper_model : t -> [ `Stack_overflow | `Arbitrary_write ]
