type vulnerability =
  | Buffer_overflow
  | Format_string

type t = {
  name : string;
  description : string;
  source : string;
  vulnerability : vulnerability;
}

let all =
  [
    {
      name = "telnetd";
      description = "remote shell: password login, privileged commands";
      source = Sources.telnetd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "wu-ftpd";
      description = "FTP server: user levels, quota, path parsing";
      source = Sources.wu_ftpd;
      vulnerability = Format_string;
    };
    {
      name = "xinetd";
      description = "super-server: service table, connection limits";
      source = Sources.xinetd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "crond";
      description = "periodic jobs with privilege flags";
      source = Sources.crond;
      vulnerability = Buffer_overflow;
    };
    {
      name = "sysklogd";
      description = "log daemon: priority threshold, rate limiting";
      source = Sources.sysklogd;
      vulnerability = Format_string;
    };
    {
      name = "atftpd";
      description = "TFTP: read-only enforcement, block transfer loop";
      source = Sources.atftpd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "httpd";
      description = "HTTP: method dispatch, authorization, keep-alive";
      source = Sources.httpd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "sendmail";
      description = "SMTP: sender verification, relay policy, limits";
      source = Sources.sendmail;
      vulnerability = Buffer_overflow;
    };
    {
      name = "sshd";
      description = "SSH: key exchange, bounded auth, privilege levels";
      source = Sources.sshd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "portmap";
      description = "RPC registry: privileged registration, lookups";
      source = Sources.portmap;
      vulnerability = Buffer_overflow;
    };
  ]

let find name = List.find (fun w -> String.equal w.name name) all

let cache : (string * bool, Ipds_mir.Program.t) Ipds_parallel.Memo.t =
  Ipds_parallel.Memo.create ()

let compiled ?(promote = true) w =
  Ipds_parallel.Memo.find_or_add cache (w.name, promote) (fun () ->
      let p = Ipds_minic.Minic.compile w.source in
      if promote then Ipds_opt.Promote.program p else p)

let program = compiled
let compile_count () = Ipds_parallel.Memo.computed cache

let tamper_model w =
  match w.vulnerability with
  | Buffer_overflow -> `Stack_overflow
  | Format_string -> `Arbitrary_write
