type vulnerability =
  | Buffer_overflow
  | Format_string

type t = {
  name : string;
  description : string;
  source : string;
  vulnerability : vulnerability;
}

let all =
  [
    {
      name = "telnetd";
      description = "remote shell: password login, privileged commands";
      source = Sources.telnetd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "wu-ftpd";
      description = "FTP server: user levels, quota, path parsing";
      source = Sources.wu_ftpd;
      vulnerability = Format_string;
    };
    {
      name = "xinetd";
      description = "super-server: service table, connection limits";
      source = Sources.xinetd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "crond";
      description = "periodic jobs with privilege flags";
      source = Sources.crond;
      vulnerability = Buffer_overflow;
    };
    {
      name = "sysklogd";
      description = "log daemon: priority threshold, rate limiting";
      source = Sources.sysklogd;
      vulnerability = Format_string;
    };
    {
      name = "atftpd";
      description = "TFTP: read-only enforcement, block transfer loop";
      source = Sources.atftpd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "httpd";
      description = "HTTP: method dispatch, authorization, keep-alive";
      source = Sources.httpd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "sendmail";
      description = "SMTP: sender verification, relay policy, limits";
      source = Sources.sendmail;
      vulnerability = Buffer_overflow;
    };
    {
      name = "sshd";
      description = "SSH: key exchange, bounded auth, privilege levels";
      source = Sources.sshd;
      vulnerability = Buffer_overflow;
    };
    {
      name = "portmap";
      description = "RPC registry: privileged registration, lookups";
      source = Sources.portmap;
      vulnerability = Buffer_overflow;
    };
    {
      name = "fwpolicyd";
      description = "packet filter: first-match rule chain, rate limiting";
      source = Firewall.source Firewall.default_policy;
      vulnerability = Buffer_overflow;
    };
  ]

let firewall ~seed ~nrules =
  {
    name = Printf.sprintf "fwpolicyd-s%d-r%d" seed nrules;
    description = "packet filter: seeded random rule chain";
    source = Firewall.source (Firewall.generate ~seed ~nrules);
    vulnerability = Buffer_overflow;
  }

let find name = List.find (fun w -> String.equal w.name name) all

let cache : (string * bool, Ipds_mir.Program.t) Ipds_parallel.Memo.t =
  Ipds_parallel.Memo.create ()

let compiles = Atomic.make 0
let m_compiles = Ipds_obs.Registry.counter "workloads.compiles"

let compiled ?(promote = true) w =
  Ipds_parallel.Memo.find_or_add cache (w.name, promote) (fun () ->
      Atomic.incr compiles;
      Ipds_obs.Registry.incr m_compiles;
      let p = Ipds_minic.Minic.compile w.source in
      if promote then Ipds_opt.Promote.program p else p)

let program = compiled
let compile_count () = Atomic.get compiles

(* Two-tier system cache: the in-memory memo collapses repeats within a
   process; on a miss, the ambient artifact store (IPDS_CACHE_DIR /
   --cache-dir) is consulted before compiling and analyzing anything.
   A disk hit seeds both the program memo above and the System memo, so
   every later [program]/[cached_build] lookup for this configuration
   stays in memory and the whole warm process performs zero MiniC
   compiles and zero analyses. *)
let systems :
    ( string * bool * Ipds_correlation.Analysis.options,
      Ipds_core.System.t )
    Ipds_parallel.Memo.t =
  Ipds_parallel.Memo.create ()

let system ?(promote = true) ?options ?pool w =
  let options =
    Option.value options ~default:Ipds_correlation.Analysis.default_options
  in
  Ipds_parallel.Memo.find_or_add systems (w.name, promote, options) (fun () ->
      match Ipds_artifact.Store.ambient () with
      | Some store ->
          let key = Ipds_artifact.Store.key ~source:w.source ~promote ~options in
          let sys =
            Ipds_artifact.Incremental.system ~options ?pool store ~key (fun () ->
                compiled ~promote w)
          in
          (* A disk hit skipped the compile: seed both memos so later
             [program]/[cached_build] lookups stay in memory. *)
          ignore
            (Ipds_parallel.Memo.find_or_add cache (w.name, promote) (fun () ->
                 sys.Ipds_core.System.program));
          Ipds_core.System.seed_cache ~options sys.Ipds_core.System.program sys;
          sys
      | None ->
          let p = compiled ~promote w in
          Ipds_core.System.cached_build ~options ?pool p)

let tamper_model w =
  match w.vulnerability with
  | Buffer_overflow -> `Stack_overflow
  | Format_string -> `Arbitrary_write
