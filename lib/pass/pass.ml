type scope =
  | Program
  | Function

type ('a, 'b) t = {
  name : string;
  scope : scope;
  f : 'a -> 'b;
  units : Ipds_obs.Registry.counter;
  span : string;
}

(* Registration order is pipeline order: core's passes are created by
   top-level lets in dependency order, so [report] reads like the
   pipeline.  Guarded by a mutex — creation is rare (module init). *)
let registry_mutex = Mutex.create ()
let registry : (string * scope) list ref = ref []  (* reverse order *)

let register name scope =
  Mutex.lock registry_mutex;
  (match List.assoc_opt name !registry with
  | Some s when s = scope -> ()
  | Some _ ->
      Mutex.unlock registry_mutex;
      invalid_arg
        (Printf.sprintf "Pass: %s re-registered with a different scope" name)
  | None -> registry := (name, scope) :: !registry);
  Mutex.unlock registry_mutex

let v ~name ~scope f =
  register name scope;
  {
    name;
    scope;
    f;
    units = Ipds_obs.Registry.counter (Printf.sprintf "pass.%s.units" name);
    span = "pass." ^ name;
  }

let name t = t.name
let scope t = t.scope

let run t x =
  Ipds_obs.Registry.incr t.units;
  Ipds_obs.Span.time t.span (fun () -> t.f x)

let map ?pool t xs =
  match t.scope with
  | Program ->
      invalid_arg (Printf.sprintf "Pass.map: %s is a program-wide pass" t.name)
  | Function -> Ipds_parallel.Pool.map' pool (run t) xs

type report_row = {
  r_name : string;
  r_scope : scope;
  r_units : int;
  r_runs : int;
  r_seconds : float;
}

let units name =
  Ipds_obs.Registry.counter_value
    (Ipds_obs.Registry.counter (Printf.sprintf "pass.%s.units" name))

let report () =
  Mutex.lock registry_mutex;
  let entries = List.rev !registry in
  Mutex.unlock registry_mutex;
  List.map
    (fun (name, scope) ->
      let runs, seconds = Ipds_obs.Span.get ("pass." ^ name) in
      { r_name = name; r_scope = scope; r_units = units name; r_runs = runs;
        r_seconds = seconds })
    entries

let render_report rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-8s %8s %12s\n" "pass" "scope" "units" "seconds");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-8s %8d %12.4f\n" r.r_name
           (match r.r_scope with Program -> "program" | Function -> "function")
           r.r_units r.r_seconds))
    rows;
  Buffer.contents buf
