(** Typed pass manager for the compile-side pipeline.

    A pass is a named unit of compilation work with a declared scope:
    [Program] passes run once per program (layout, alias-summary
    preparation, whole-image encoding), [Function] passes run once per
    function (correlation analysis, table construction) and are what
    {!Ipds_core.System.build} fans out over a domain pool.

    Every execution is observed: wall-clock accumulates in the
    {!Ipds_obs.Span} timer ["pass.<name>"] (scheduling-dependent, so it
    lives in the runtime section of reports) and the number of units
    processed in the {e stable} counter ["pass.<name>.units"] — the unit
    multiset is fixed by the build set, so unit counts are byte-identical
    for any [--jobs] value.

    Pass names are registered at creation (module initialisation), so
    {!report} lists the full pipeline with stable names even for passes
    that have not run yet. *)

type scope =
  | Program  (** one unit of work per program *)
  | Function  (** one unit of work per function; parallelizable *)

type ('a, 'b) t

val v : name:string -> scope:scope -> ('a -> 'b) -> ('a, 'b) t
(** Registers the pass name (idempotent per name; re-registration with a
    different scope raises [Invalid_argument]). *)

val name : ('a, 'b) t -> string
val scope : ('a, 'b) t -> scope

val run : ('a, 'b) t -> 'a -> 'b
(** Run on one unit of work: time under the pass's span, count one unit.
    Safe to call concurrently from any domain — per-function passes are
    executed through [run] from inside pool tasks. *)

val map : ?pool:Ipds_parallel.Pool.t -> ('a, 'b) t -> 'a list -> 'b list
(** Fan a [Function]-scope pass over its units, order-preserving and
    deterministic: [map ?pool p xs] equals [List.map (run p) xs] for any
    pool.  [Program]-scope passes refuse with [Invalid_argument]. *)

(** {2 Reporting} *)

type report_row = {
  r_name : string;
  r_scope : scope;
  r_units : int;  (** stable: units processed so far in this process *)
  r_runs : int;  (** span entries (= units); unstable timing metadata *)
  r_seconds : float;  (** accumulated wall-clock; unstable *)
}

val report : unit -> report_row list
(** Every registered pass, in registration (pipeline) order. *)

val units : string -> int
(** Stable unit count of one pass (0 for unknown names) — what the
    incremental tests assert on. *)

val render_report : report_row list -> string
(** Plain-text table: name, scope, units, wall seconds. *)
