(* Thin routing fallback for legacy clients that speak plain {!Client}
   to one address and know nothing about the fleet.

   The router sniffs each connection's first frame (without consuming
   it) to learn the artifact key — [Load_key] directly, [Load_image]
   via {!Session.image_key} — routes it on the same consistent-hash
   ring the native {!Fleet_client} uses, then degrades into a dumb
   bounded-buffer byte pump: every subsequent frame crosses untouched,
   so replies are byte-identical to a direct connection.  A first frame
   that is not a load (or does not even scan) still gets proxied — to
   the ring's default shard — so the *server's* typed error reply
   reaches the client verbatim.  If every shard is dead the router
   itself replies with one typed [Unavailable] error frame.

   This is explicitly the slow path: one extra hop, one domain,
   blocking failover connects.  Routing-aware clients bypass it
   entirely. *)

module Ring = Ipds_fleet.Ring
module Topology = Ipds_fleet.Topology
module Backoff = Ipds_fleet.Backoff
module Reg = Ipds_obs.Registry

let m_sessions = Reg.counter ~stable:false "router.sessions"
let m_routed = Reg.counter ~stable:false "router.routed"
let m_unavailable = Reg.counter ~stable:false "router.unavailable"

type config = {
  max_frame : int;
  backoff : Backoff.t;
  buffer_bytes : int;  (** per-direction pump bound (backpressure) *)
}

let default_config =
  {
    max_frame = Protocol.default_max_frame;
    backoff = Backoff.default;
    buffer_bytes = 256 * 1024;
  }

(* A growable byte window: bytes [start, start+len) are pending. *)
type buf = { mutable b : Bytes.t; mutable start : int; mutable len : int }

let buf_make () = { b = Bytes.create 65536; start = 0; len = 0 }

let buf_room buf need =
  if buf.start > 0 && buf.start + buf.len + need > Bytes.length buf.b then begin
    Bytes.blit buf.b buf.start buf.b 0 buf.len;
    buf.start <- 0
  end;
  if buf.len + need > Bytes.length buf.b then begin
    let bigger = Bytes.create (max (buf.len + need) (2 * Bytes.length buf.b)) in
    Bytes.blit buf.b buf.start bigger 0 buf.len;
    buf.start <- 0;
    buf.b <- bigger
  end

type phase =
  | Sniffing
  | Proxying of Unix.file_descr  (** the shard socket *)

type conn = {
  cfd : Unix.file_descr;
  mutable phase : phase;
  c2s : buf;  (** client bytes awaiting the shard (also the sniff buffer) *)
  s2c : buf;  (** shard bytes awaiting the client *)
  mutable client_eof : bool;
  mutable shard_eof : bool;
  mutable shard_shut : bool;  (** we already half-closed the shard *)
  mutable dead : bool;
}

type t = {
  config : config;
  topology : Topology.t;
  ring : Ring.t;
  fd : Unix.file_descr;
  sock_path : string option;
  stop_flag : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable domain : unit Domain.t option;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let kill conn =
  if not conn.dead then begin
    conn.dead <- true;
    close_quiet conn.cfd;
    match conn.phase with Proxying sfd -> close_quiet sfd | Sniffing -> ()
  end

(* Blocking connect along the ring with bounded backoff; the router is
   the documented slow path, so blocking its loop briefly is the
   accepted cost of failover. *)
let connect_ring t key =
  let order = Ring.successors t.ring key in
  let attempts = min (Backoff.max_attempts t.config.backoff) (List.length order) in
  let rec go attempt = function
    | [] -> None
    | shard :: rest -> (
        if attempt > 0 then Unix.sleepf (Backoff.delay t.config.backoff (attempt - 1));
        let sfd =
          match Topology.address t.topology shard with
          | `Unix path ->
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              (fd, Unix.ADDR_UNIX path)
          | `Tcp (host, port) ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              (fd, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
        in
        let fd, addr = sfd in
        match Unix.connect fd addr with
        | () -> Some fd
        | exception Unix.Unix_error _ ->
            close_quiet fd;
            if attempt + 1 >= attempts then None else go (attempt + 1) rest)
  in
  go 0 order

let key_of_first_frame t conn =
  match
    Protocol.scan_at ~max_frame:t.config.max_frame conn.c2s.b
      ~pos:conn.c2s.start ~len:conn.c2s.len
  with
  | Protocol.Scan_need _ -> `Need_more
  | Protocol.Scan_fail _ ->
      (* Garbage: proxy it anyway so the server's typed error reply
         reaches the legacy client. *)
      `Key ""
  | Protocol.Scan_frame { tag; payload_pos; payload_len; _ } -> (
      match
        Protocol.decode_span ~max_frame:t.config.max_frame tag conn.c2s.b
          ~pos:payload_pos ~len:payload_len
      with
      | Ok (Protocol.Load_key key) -> `Key key
      | Ok (Protocol.Load_image { image; _ }) -> `Key (Session.image_key image)
      | Ok _ | Error _ -> `Key "")

let try_route t conn =
  match key_of_first_frame t conn with
  | `Need_more -> ()
  | `Key key -> (
      match connect_ring t key with
      | Some sfd ->
          Unix.set_nonblock sfd;
          Reg.incr m_routed;
          conn.phase <- Proxying sfd
      | None ->
          Reg.incr m_unavailable;
          let reply =
            Protocol.encode_frame
              (Protocol.Error
                 {
                   Protocol.code = Protocol.Unavailable;
                   detail = "no fleet shard reachable";
                 })
          in
          (try Protocol.write_all conn.cfd reply 0 (Bytes.length reply)
           with Unix.Unix_error _ -> ());
          kill conn)

(* One nonblocking read into [dst]; true = made progress. *)
let pump_read fd dst on_eof =
  buf_room dst 65536;
  let off = dst.start + dst.len in
  match Unix.read fd dst.b off (Bytes.length dst.b - off) with
  | 0 ->
      on_eof ();
      false
  | n ->
      dst.len <- dst.len + n;
      true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      false

let pump_write fd src =
  if src.len > 0 then
    match Unix.single_write fd src.b src.start src.len with
    | n ->
        src.start <- src.start + n;
        src.len <- src.len - n;
        if src.len = 0 then src.start <- 0;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        false
  else false

(* Writes are attempted whenever bytes are pending — most fit the
   socket buffer without waiting for a writability round-trip; the
   select write set only exists to wake the loop when they do not. *)
let step t conns rd =
  List.iter
    (fun conn ->
      if not conn.dead then
        try
          match conn.phase with
          | Sniffing ->
              if List.mem conn.cfd rd then begin
                ignore
                  (pump_read conn.cfd conn.c2s (fun () -> conn.client_eof <- true));
                try_route t conn;
                match conn.phase with
                | Sniffing when conn.client_eof ->
                    (* hung up before a routable first frame *)
                    kill conn
                | _ -> ()
              end
          | Proxying sfd ->
              if List.mem conn.cfd rd then
                ignore
                  (pump_read conn.cfd conn.c2s (fun () -> conn.client_eof <- true));
              if List.mem sfd rd then
                ignore
                  (pump_read sfd conn.s2c (fun () -> conn.shard_eof <- true));
              if conn.c2s.len > 0 then ignore (pump_write sfd conn.c2s);
              if conn.s2c.len > 0 then ignore (pump_write conn.cfd conn.s2c);
              (* Client finished sending: once its bytes are through,
                 half-close the shard so the server sees EOF, but keep
                 pumping the reply tail. *)
              if conn.client_eof && conn.c2s.len = 0 && not conn.shard_shut
              then begin
                conn.shard_shut <- true;
                try Unix.shutdown sfd Unix.SHUTDOWN_SEND
                with Unix.Unix_error _ -> ()
              end;
              if conn.shard_eof && conn.s2c.len = 0 then kill conn
        with Unix.Unix_error _ -> kill conn)
    conns

let loop t =
  let conns = ref [] in
  while not (Atomic.get t.stop_flag) do
    let rds = ref [ t.fd; t.stop_r ] and wrs = ref [] in
    List.iter
      (fun conn ->
        if not conn.dead then
          match conn.phase with
          | Sniffing ->
              if conn.c2s.len < t.config.buffer_bytes then
                rds := conn.cfd :: !rds
          | Proxying sfd ->
              if (not conn.client_eof) && conn.c2s.len < t.config.buffer_bytes
              then rds := conn.cfd :: !rds;
              if (not conn.shard_eof) && conn.s2c.len < t.config.buffer_bytes
              then rds := sfd :: !rds;
              if conn.c2s.len > 0 then wrs := sfd :: !wrs;
              if conn.s2c.len > 0 then wrs := conn.cfd :: !wrs)
      !conns;
    (match Unix.select !rds !wrs [] 1.0 with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
    | rd, wr, _ ->
        if List.mem t.fd rd then begin
          match Unix.accept t.fd with
          | cfd, _ ->
              Unix.set_nonblock cfd;
              Reg.incr m_sessions;
              conns :=
                {
                  cfd;
                  phase = Sniffing;
                  c2s = buf_make ();
                  s2c = buf_make ();
                  client_eof = false;
                  shard_eof = false;
                  shard_shut = false;
                  dead = false;
                }
                :: !conns
          | exception Unix.Unix_error _ -> ()
        end;
        ignore wr;
        step t !conns rd);
    conns := List.filter (fun c -> not c.dead) !conns
  done;
  List.iter kill !conns

let start ?(config = default_config) ~topology (addr : Server.address) =
  Protocol.ignore_sigpipe ();
  let fd, sock_path =
    match addr with
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        (fd, Some path)
    | `Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (fd, None)
  in
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let stop_r, stop_w = Unix.pipe () in
  Unix.set_nonblock stop_r;
  let t =
    {
      config;
      topology;
      ring = Topology.ring topology;
      fd;
      sock_path;
      stop_flag = Atomic.make false;
      stop_r;
      stop_w;
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> loop t));
  t

let port t =
  match Unix.getsockname t.fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    (match t.domain with
    | Some d ->
        Domain.join d;
        t.domain <- None
    | None -> ());
    close_quiet t.stop_r;
    close_quiet t.stop_w;
    close_quiet t.fd;
    match t.sock_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  end

let with_router ?config ~topology addr f =
  let t = start ?config ~topology addr in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
