(** The verdict-server wire format: length-prefixed binary frames with a
    versioned magic and a CRC-32 trailer, payloads bit-packed with
    {!Ipds_core.Bitstream}.

    Frame layout (integers little-endian):
    {v
    0    4   magic "IPSV"
    4    1   protocol version
    5    1   frame tag
    6    4   payload length (u32)
    10   n   payload
    10+n 4   CRC-32 of bytes [0, 10+n)
    v}

    Decoding never raises: every way a frame can be damaged maps to a
    typed {!error_code}.  Magic and version are checked before the CRC
    (wrong-protocol streams get a precise error); the CRC covers the
    header too, so a flipped bit anywhere in a frame — including its
    length field — is detected. *)

val magic : string
val version : int

val header_bytes : int
(** Bytes before the payload (magic + version + tag + length). *)

val trailer_bytes : int
(** The CRC-32 trailer. *)

val default_max_frame : int
(** Default payload-size limit (4 MiB). *)

type error_code =
  | Bad_magic
  | Bad_version
  | Bad_crc
  | Oversized
  | Truncated
  | Unknown_frame
  | Malformed  (** CRC-valid payload that does not parse *)
  | Bad_state  (** well-formed frame at the wrong point of the session *)
  | Unknown_artifact
  | Corrupt_artifact
  | Timeout
  | Server_error
  | Overloaded
      (** the server's bounded reply queue or global in-flight cap was
          exceeded; the connection is closed after this frame *)
  | Unavailable  (** a fleet shard is down / unreachable *)

type err = { code : error_code; detail : string }

val error_code_to_string : error_code -> string

type summary = { total_events : int; total_branches : int; total_alarms : int }

type frame =
  | Load_key of string  (** client → server: load from the artifact store *)
  | Load_image of { name : string; image : string }
      (** client → server: inline [.ipds] bytes *)
  | Begin_trace
  | Branch_events of Ipds_machine.Event.t list
  | End_trace
  | Fetch_artifact of string
      (** client → server: the raw container bytes stored under this
          key — how a cold shard warms itself from a peer *)
  | Push_artifact of { key : string; image : string }
      (** client → server: store these container bytes under [key];
          the image is untrusted and fully verified before publish *)
  | Loaded of { name : string; cached : bool }
  | Trace_started
  | Verdicts of Ipds_core.Checker.alarm list
      (** alarms newly raised by the preceding [Branch_events] batch *)
  | Trace_summary of summary
  | Artifact_data of { key : string; image : string }
      (** reply to [Fetch_artifact]: verified container bytes *)
  | Artifact_pushed of { key : string; stored : bool }
      (** reply to [Push_artifact]; [stored = false] means a
          byte-identical entry was already present *)
  | Error of err

val verdict_to_string : Ipds_core.Checker.alarm -> string
(** Canonical one-line rendering, used by the remote-vs-local
    byte-identity assertions. *)

(** {2 Frame codec} *)

val encode_frame : frame -> Bytes.t

type decoded =
  | Frame of frame * int  (** decoded frame, offset just past it *)
  | Need_more of int  (** at least this many bytes from [pos] required *)
  | Fail of err

val decode_at : ?max_frame:int -> Bytes.t -> pos:int -> len:int -> decoded
(** Decode one frame from [buf[pos, pos+len)].  Never raises. *)

val decode_string : ?max_frame:int -> string -> (frame list, err) result
(** Decode a complete byte stream; a stream ending mid-frame is
    [Error {code = Truncated; _}].  Never raises. *)

(** {2 Incremental scanning and streaming batch decode}

    The event-loop server separates framing from payload decode: it
    {!scan_at}s its read buffer (header + CRC validation only), then
    either streams a [Branch_events] span straight into the checker via
    {!iter_branch_events} — no event list, no per-event strings — or
    falls back to {!decode_span} for the rare control frames. *)

type scanned =
  | Scan_frame of {
      tag : int;
      payload_pos : int;  (** absolute offset of the payload in [buf] *)
      payload_len : int;
      next : int;  (** absolute offset just past the frame *)
    }
  | Scan_need of int  (** at least this many bytes from [pos] required *)
  | Scan_fail of err

val scan_at : ?max_frame:int -> Bytes.t -> pos:int -> len:int -> scanned
(** Validate one frame's header and CRC in [buf[pos, pos+len)] without
    decoding the payload.  Never raises; fails exactly when
    {!decode_at} would fail before payload decode. *)

val decode_span :
  ?max_frame:int -> int -> Bytes.t -> pos:int -> len:int -> (frame, err) result
(** Decode a CRC-validated payload span (from {!Scan_frame}) into a
    frame.  Never raises. *)

val branch_events_tag : int

exception Malformed_payload of string

val iter_branch_events :
  ?limit:int ->
  Bytes.t ->
  pos:int ->
  len:int ->
  on_call:(string -> unit) ->
  on_ret:(unit -> unit) ->
  on_branch:(pc:int -> taken:bool -> unit) ->
  on_other:(unit -> unit) ->
  int
(** Stream one [Branch_events] payload span to the callbacks in event
    order, returning the total event count (all kinds).  Accepts and
    rejects byte-for-byte the same payloads as the generic decoder
    (differentially tested): raises {!Fast.Short} where the generic
    reader would overrun and {!Malformed_payload} with the same detail
    strings for bad lengths / event kinds. *)

module Fast : sig
  exception Short
  (** The payload span ended before the field being pulled. *)
end

(** {2 Socket transport} *)

val ignore_sigpipe : unit -> unit
(** Set SIGPIPE to ignored so a write to a disconnected peer raises
    [Unix_error (EPIPE, _, _)] instead of killing the process.  Called
    by {!Server.start} and {!Client.connect}; idempotent, a no-op on
    platforms without SIGPIPE. *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Write [len] bytes from [pos] (handles partial writes and EINTR).
    Raises [Unix_error] on IO failure. *)

val output_frame : Unix.file_descr -> frame -> unit
(** Write a whole frame (handles partial writes).  Raises [Unix_error]
    on IO failure — callers own the error policy for their peer. *)

type reader

val reader : ?max_frame:int -> Unix.file_descr -> reader
(** A buffered frame reader over a socket. *)

type input = In_frame of frame | In_eof | In_error of err

val input_frame : reader -> input
(** Blocking read of the next frame.  EOF between frames is [In_eof];
    EOF mid-frame is a [Truncated] error; a receive timeout configured
    with [SO_RCVTIMEO] surfaces as a [Timeout] error.  Never raises. *)
