(* Client-side fleet routing: consistent hashing straight to the owning
   shard, no proxy hop on the hot path.

   Every routing client builds the same {!Ipds_fleet.Ring} from the
   same {!Ipds_fleet.Topology}, so they agree on which shard owns an
   artifact key without coordination.  A shard that cannot be reached
   yields a typed [Unavailable] error; the client then walks the ring's
   successor order with bounded backoff — any shard can serve any key
   (the store is shared; sharding is cache affinity, not ownership of
   truth), so failover costs a cache miss, never an error. *)

module Ring = Ipds_fleet.Ring
module Topology = Ipds_fleet.Topology
module Backoff = Ipds_fleet.Backoff

type t = {
  topology : Topology.t;
  ring : Ring.t;
  max_frame : int;
  backoff : Backoff.t;
}

let create ?max_frame ?(backoff = Backoff.default) topology =
  {
    topology;
    ring = Topology.ring topology;
    max_frame = Option.value max_frame ~default:Protocol.default_max_frame;
    backoff;
  }

let topology t = t.topology
let shard_of_key t key = Ring.route t.ring key

let image_key = Session.image_key

let unavailable t shard e =
  {
    Protocol.code = Protocol.Unavailable;
    detail =
      Printf.sprintf "shard %s unreachable: %s"
        (Topology.shard_name t.topology shard)
        (Unix.error_message e);
  }

let connect_shard t shard =
  let addr : Client.address =
    match Topology.address t.topology shard with
    | `Unix path -> `Unix path
    | `Tcp (host, port) -> `Tcp (host, port)
  in
  match Client.connect ~max_frame:t.max_frame addr with
  | c -> Ok c
  | exception Unix.Unix_error (e, _, _) -> Error (unavailable t shard e)

type routed = {
  client : Client.t;
  shard : int;  (** the shard actually connected *)
  skipped : Protocol.err list;
      (** one typed [Unavailable] per dead shard tried before [shard] *)
}

(* Walk the ring from the key's owner; each attempt beyond the first
   sleeps the (bounded) backoff schedule.  All shards dead → the last
   typed error. *)
let connect_for_key t key =
  let order = Ring.successors t.ring key in
  let max_attempts = min (Backoff.max_attempts t.backoff) (List.length order) in
  let rec go attempt skipped = function
    | [] -> (
        match skipped with
        | e :: _ -> Error e
        | [] ->
            Error
              {
                Protocol.code = Protocol.Unavailable;
                detail = "no shards configured";
              })
    | shard :: rest -> (
        if attempt > 0 then Unix.sleepf (Backoff.delay t.backoff (attempt - 1));
        match connect_shard t shard with
        | Ok client -> Ok { client; shard; skipped = List.rev skipped }
        | Error e ->
            if attempt + 1 >= max_attempts then Error e
            else go (attempt + 1) (e :: skipped) rest)
  in
  go 0 [] order

let with_key t key f =
  match connect_for_key t key with
  | Error e -> Error e
  | Ok routed ->
      Ok
        (Fun.protect
           ~finally:(fun () -> Client.close routed.client)
           (fun () -> f routed))

(* Artifact sharing: ask the ring owner (then its successors) for the
   raw container bytes of [key].  Unlike [connect_for_key], a reachable
   shard can still answer [unknown-artifact] (it is cold too) or
   [corrupt-artifact] (its copy rotted) — both just mean "try the next
   peer", with the same bounded backoff budget.  [exclude] lets a shard
   walk its own ring without asking itself. *)
let fetch_artifact ?exclude t key =
  let order =
    List.filter
      (fun shard -> not (exclude = Some shard))
      (Ring.successors t.ring key)
  in
  let max_attempts = min (Backoff.max_attempts t.backoff) (List.length order) in
  let rec go attempt last = function
    | [] -> (
        match last with
        | Some e -> Error e
        | None ->
            Error
              {
                Protocol.code = Protocol.Unavailable;
                detail = "no peers configured";
              })
    | shard :: rest -> (
        if attempt > 0 then Unix.sleepf (Backoff.delay t.backoff (attempt - 1));
        let res =
          match connect_shard t shard with
          | Error e -> Error e
          | Ok client ->
              Fun.protect
                ~finally:(fun () -> Client.close client)
                (fun () -> Client.fetch_artifact client key)
        in
        match res with
        | Ok image -> Ok image
        | Error e ->
            if attempt + 1 >= max_attempts then Error e
            else go (attempt + 1) (Some e) rest)
  in
  go 0 None order

let push_artifact t ~key image =
  match with_key t key (fun r -> Client.push_artifact r.client ~key image) with
  | Ok r -> r
  | Error e -> Error e
