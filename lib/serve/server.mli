(** The streaming verdict server.

    Sessions speak {!Protocol} over a Unix-domain or loopback TCP
    socket: load an artifact (by store key or inline [.ipds] image),
    begin a trace, stream batched events, collect verdicts.  Sessions
    are fanned over an {!Ipds_parallel.Pool} of [jobs] worker domains;
    the accept loop runs on its own domain.

    Robustness is the contract: malformed, oversized, truncated,
    version-skewed or out-of-sequence frames produce one typed
    [Error] reply (counted in the [serve.*] metrics) and a closed
    session — never a crash, never a wedged accept loop.  Stable
    metrics ([serve.sessions], [serve.frames_in/out], [serve.traces],
    [serve.events], [serve.branches], [serve.alarms],
    [serve.protocol_errors], [serve.state_errors]) sum per-session
    deterministic work, so their totals are independent of [jobs] and
    scheduling; timeout/cache counters and the batch-latency histogram
    are registered unstable. *)

type config = {
  jobs : int;  (** worker domains serving sessions (≥ 1) *)
  max_frame : int;  (** payload-size limit, bytes *)
  session_timeout : float;  (** seconds a session may sit idle; 0 = none *)
  cache_slots : int;  (** loaded systems kept in the LRU *)
  store_dir : string option;
      (** artifact store for [Load_key]; [None] uses the ambient store *)
}

val default_config : config
(** 1 job, 4 MiB frames, 30 s timeout, 8 LRU slots, ambient store. *)

type address = [ `Unix of string | `Tcp of int ]
(** [`Tcp port] binds the loopback interface; port 0 picks a free one
    (read it back with {!port}). *)

type t

val start : ?config:config -> address -> t
(** Bind, listen and spawn the accept domain.  SIGPIPE is set to
    ignored so a client disconnecting mid-reply surfaces as
    [Unix_error EPIPE] in the session, not a fatal signal.  A stale
    socket file (one no server answers on) at a [`Unix] path is
    unlinked first; a live server's socket or a non-socket file raises
    [Unix_error (EADDRINUSE, _, _)].  Raises [Unix_error] if the
    address cannot be bound. *)

val port : t -> int option
(** The bound TCP port ([None] for Unix-domain servers). *)

val stop : t -> unit
(** Stop accepting, interrupt in-flight sessions (their sockets are
    shut down, so reads blocked on a silent client return even with
    [session_timeout = 0]), drain the pool, close and unlink the
    socket.  Idempotent. *)

val with_server : ?config:config -> address -> (t -> 'a) -> 'a
(** [start], run, [stop] (also on exception). *)
