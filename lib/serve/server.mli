(** The streaming verdict server — event-loop edition.

    Sessions speak {!Protocol} over a Unix-domain or loopback TCP
    socket: load an artifact (by store key or inline [.ipds] image),
    begin a trace, stream batched events, collect verdicts.  Instead of
    one blocking socket per client, [config.jobs] [Unix.select] reactor
    domains each own a disjoint set of nonblocking connections; the
    accept domain distributes sockets round-robin and wakes reactors
    through self-pipes.  [Branch_events] frames stream straight into
    the checker (no event-list materialization); replies go through a
    bounded per-connection queue under a global in-flight byte cap, and
    a client that outruns either bound gets one typed [Overloaded]
    error frame and a drained close — backpressure, never unbounded
    buffering.  Loaded systems live in an {!Ipds_fleet.Shard_cache} of
    independently locked LRU shards.

    Robustness is the contract: malformed, oversized, truncated,
    version-skewed or out-of-sequence frames produce one typed
    [Error] reply (counted in the [serve.*] metrics) and a closed
    session — never a crash, never a wedged accept loop.  Stable
    metrics ([serve.sessions], [serve.frames_in/out], [serve.traces],
    [serve.events], [serve.branches], [serve.alarms],
    [serve.protocol_errors], [serve.state_errors]) sum per-session
    deterministic work, so their totals are independent of [jobs] and
    scheduling; timeout/cache/overload counters and the batch-latency
    histogram are registered unstable.

    The thread-per-session predecessor is preserved as
    {!Server_threaded} (bench baseline); observable protocol behaviour
    is identical. *)

type peer_sharing = {
  peer_topology : Ipds_fleet.Topology.t;
  peer_self : int;  (** this server's own shard index (never asked) *)
  peer_backoff : Ipds_fleet.Backoff.t;
}
(** Fleet artifact sharing: on a [Load_key] local-store miss the server
    fetches the artifact from ring peers ({!Fleet_client.fetch_artifact}
    excluding [peer_self]), fully verifies it
    ({!Ipds_artifact.Artifact.of_bytes} + {!Ipds_core.Image.validate} —
    peer bytes are untrusted input), publishes it to its own store and
    serves it — a cold shard warms itself instead of forcing a client
    recompile.  Tracked by the [serve.artifact_*] counters. *)

type config = {
  jobs : int;  (** reactor domains (≥ 1) *)
  max_frame : int;  (** payload-size limit, bytes *)
  session_timeout : float;  (** seconds a session may sit idle; 0 = none *)
  cache_slots : int;  (** loaded systems kept across all cache shards *)
  cache_shards : int;  (** independently locked cache shards (≥ 1) *)
  store_dir : string option;
      (** artifact store for [Load_key]; [None] uses the ambient store *)
  reply_queue_bytes : int;  (** per-connection reply-queue bound *)
  inflight_bytes : int;  (** global bound on queued reply bytes *)
  peers : peer_sharing option;  (** fleet peers to warm the store from *)
}

val default_config : config
(** 1 reactor, 4 MiB frames, 30 s timeout, 8 cache slots over 4 shards,
    ambient store, 8 MiB per-connection reply bound, 64 MiB global, no
    peer sharing. *)

type address = [ `Unix of string | `Tcp of int ]
(** [`Tcp port] binds the loopback interface; port 0 picks a free one
    (read it back with {!port}). *)

type t

val start : ?config:config -> address -> t
(** Bind, listen and spawn the accept + reactor domains.  SIGPIPE is
    set to ignored so a client disconnecting mid-reply surfaces as
    [Unix_error EPIPE] in the reactor, not a fatal signal.  A stale
    socket file (one no server answers on) at a [`Unix] path is
    unlinked first; a live server's socket or a non-socket file raises
    [Unix_error (EADDRINUSE, _, _)].  Raises [Unix_error] if the
    address cannot be bound. *)

val port : t -> int option
(** The bound TCP port ([None] for Unix-domain servers). *)

val stop : t -> unit
(** Stop promptly even mid-poll: self-pipes wake the accept loop and
    every reactor out of [select] (reactors otherwise sleep up to 30 s
    when [session_timeout] is 0), queued replies get one best-effort
    flush, every connection is closed, the socket is closed and
    unlinked.  Bounded; idempotent. *)

val with_server : ?config:config -> address -> (t -> 'a) -> 'a
(** [start], run, [stop] (also on exception). *)
