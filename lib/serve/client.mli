(** Client side of the verdict protocol: lockstep request/reply RPCs
    plus a streaming {!trace} helper whose [sink] plugs straight into
    [Ipds_machine.Interp.config.sink], so one interpreter run can be
    checked locally and remotely in the same process. *)

type address = [ `Unix of string | `Tcp of string * int ]

type t

val connect : ?max_frame:int -> address -> t
(** Raises [Unix_error] if the server cannot be reached — including
    [EHOSTUNREACH] for a hostname that does not resolve.  SIGPIPE is
    set to ignored so a server vanishing mid-request surfaces as an
    RPC error, not a fatal signal. *)

val close : t -> unit
(** Idempotent. *)

val load_key : t -> string -> (bool, Protocol.err) result
(** Load an artifact from the server's store; [Ok cached] tells whether
    it was already resident in the server's LRU. *)

val load_image : t -> name:string -> Bytes.t -> (bool, Protocol.err) result
(** Ship inline [.ipds] bytes. *)

val begin_trace : t -> (unit, Protocol.err) result

val send_events :
  t ->
  Ipds_machine.Event.t list ->
  (Ipds_core.Checker.alarm list, Protocol.err) result
(** One batch; returns the alarms this batch raised, in commit order. *)

val end_trace : t -> (Protocol.summary, Protocol.err) result

val fetch_artifact : t -> string -> (Bytes.t, Protocol.err) result
(** The raw verified container bytes stored under a key on the server;
    [unknown-artifact] for absent or malformed keys, [corrupt-artifact]
    for a damaged entry.  The caller must verify the bytes itself
    before trusting them ({!Ipds_artifact.Artifact.of_bytes}) — the
    transport CRC is not a content address. *)

val push_artifact : t -> key:string -> Bytes.t -> (bool, Protocol.err) result
(** Publish container bytes under [key] on the server, which fully
    verifies them before touching its store; [Ok stored] is [false]
    when a byte-identical entry was already present.  Forged or corrupt
    images are rejected with [corrupt-artifact]; a key already held by
    different valid content is rejected with [corrupt-artifact] too
    (collision, counted server-side). *)

type trace = {
  sink : Ipds_machine.Event.t -> unit;
      (** feed interpreter events; batches are flushed on the wire every
          [batch] checker-relevant events *)
  finish :
    unit ->
    (Ipds_core.Checker.alarm list * Protocol.summary, Protocol.err) result;
      (** flush the tail, end the trace; returns every alarm of the
          whole trace in commit order.  An error anywhere mid-trace
          latches and is reported here. *)
}

val default_batch : int
(** 1024 events per wire frame. *)

val trace : ?batch:int -> t -> (trace, Protocol.err) result
(** Begin a trace on an already-loaded artifact.  [batch] defaults to
    {!default_batch} events per wire frame — large batches amortize
    framing over the flat checker's per-event cost.  Raises
    [Invalid_argument] if [batch < 1] (before any frame is sent). *)
