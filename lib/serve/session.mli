(** Per-connection protocol logic shared by the event-loop {!Server}
    and the thread-per-session {!Server_threaded}: the frame state
    machine, the [serve.*] metrics, typed-error classification, and the
    zero-materialization fast path for [Branch_events] spans.  Keeping
    one implementation of the session semantics is what makes the two
    servers' observable behaviour (replies, typed errors, stable
    metrics, alarms) provably the same thing. *)

module Reg = Ipds_obs.Registry

(** Stable counters (per-session deterministic work; byte-identical
    across jobs/scheduling) — servers bump the frame counters
    themselves since framing is transport-side. *)

val m_sessions : Reg.counter
val m_frames_in : Reg.counter
val m_frames_out : Reg.counter
val m_traces : Reg.counter
val m_events : Reg.counter
val m_branches : Reg.counter
val m_alarms : Reg.counter
val m_protocol_errors : Reg.counter
val m_state_errors : Reg.counter

val m_artifact_fetches : Reg.counter
(** [Fetch_artifact] frames answered with verified artifact bytes. *)

val m_artifact_pushes : Reg.counter
(** [Push_artifact] frames accepted (stored or byte-identical dup). *)

val m_artifact_verify_rejects : Reg.counter
(** Inbound images (pushed or peer-fetched) that failed full
    verification and were rejected with [corrupt-artifact]. *)

val m_artifact_peer_loads : Reg.counter
(** Local-store misses satisfied by fetching a verified artifact from a
    fleet peer.  Unstable: depends on which shard warmed first. *)

val m_timeouts : Reg.counter
(** Unstable (timing-dependent). *)

exception State_violation of string
(** A Ret/Branch event against an empty checker stack; the servers turn
    it into a typed [Bad_state] error. *)

type fetch =
  string ->
  (unit ->
  [ `Ok of Ipds_core.System.t | `Err of Protocol.error_code * string ]) ->
  [ `Hit of Ipds_core.System.t
  | `Loaded of Ipds_core.System.t
  | `Err of Protocol.error_code * string ]
(** The system-cache shape both servers plug in: the reactor an
    {!Ipds_fleet.Shard_cache}, the baseline its single-lock LRU. *)

type t

val create :
  ?peer_fetch:(string -> (string, Protocol.err) result) ->
  store:Ipds_artifact.Store.t option ->
  fetch:fetch ->
  unit ->
  t
(** Counts [serve.sessions].  [peer_fetch] is the fleet hook consulted
    on a [Load_key] local-store miss: it returns the raw container
    bytes of the key from a warm peer, which the session verifies
    ({!Ipds_artifact.Artifact.of_bytes} + {!Ipds_core.Image.validate})
    and publishes locally before serving — a cold shard warms itself
    instead of answering [unknown-artifact]. *)

val image_key : string -> string
(** The cache key of an inline [.ipds] image ("img:" ^ SHA-256 hex) —
    servers, routing clients and the legacy router must derive it
    identically, so it lives here. *)

val send_error : send:(Protocol.frame -> unit) -> Protocol.error_code -> string -> unit
(** Classify into the error counters and emit one [Error] frame. *)

val handle :
  t -> send:(Protocol.frame -> unit) -> Protocol.frame -> [ `Close | `Continue ]
(** The frame state machine (generic, list-decoded path). *)

val handle_events_span :
  t ->
  send:(Protocol.frame -> unit) ->
  max_frame:int ->
  Bytes.t ->
  pos:int ->
  len:int ->
  [ `Close | `Continue ]
(** [handle] for a CRC-validated [Branch_events] payload span, fed
    through {!Protocol.iter_branch_events} with all-or-nothing staging:
    a malformed payload mutates nothing.  Observable behaviour is
    identical to [handle (Branch_events _)]. *)

val close : t -> unit
(** Flush checker counter deltas of an abandoned trace.  Idempotent. *)
