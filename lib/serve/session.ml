(* Per-connection protocol logic, shared by both server implementations
   (the {!Server} event-loop reactor and the {!Server_threaded} PR-5
   baseline): the frame state machine, the serve.* metrics, the typed
   error classification, and the zero-materialization fast path for
   [Branch_events] spans.

   Stable counters are sums of per-session deterministic work, so their
   totals are independent of scheduling and job count — the concurrency
   determinism test relies on that.  Timeouts and cache traffic depend
   on timing and session interleaving (LRU eviction order), so they are
   unstable; so is the latency histogram. *)

module Event = Ipds_machine.Event
module System = Ipds_core.System
module Checker = Ipds_core.Checker
module Store = Ipds_artifact.Store
module Reg = Ipds_obs.Registry

let m_sessions = Reg.counter "serve.sessions"
let m_frames_in = Reg.counter "serve.frames_in"
let m_frames_out = Reg.counter "serve.frames_out"
let m_traces = Reg.counter "serve.traces"
let m_events = Reg.counter "serve.events"
let m_branches = Reg.counter "serve.branches"
let m_alarms = Reg.counter "serve.alarms"
let m_protocol_errors = Reg.counter "serve.protocol_errors"
let m_state_errors = Reg.counter "serve.state_errors"
let m_artifact_fetches = Reg.counter "serve.artifact_fetches"
let m_artifact_pushes = Reg.counter "serve.artifact_pushes"
let m_artifact_verify_rejects = Reg.counter "serve.artifact_verify_rejects"
let m_artifact_peer_loads = Reg.counter ~stable:false "serve.artifact_peer_loads"
let m_timeouts = Reg.counter ~stable:false "serve.timeouts"
let m_batch_micros = Reg.histogram ~stable:false "serve.batch_micros"

let now_micros () = int_of_float (Unix.gettimeofday () *. 1e6)

exception State_violation of string

(* Both servers cache loaded systems behind this shape; the reactor
   plugs in the sharded {!Ipds_fleet.Shard_cache}, the threaded baseline
   its original single-lock LRU. *)
type fetch =
  string ->
  (unit -> [ `Ok of System.t | `Err of Protocol.error_code * string ]) ->
  [ `Hit of System.t
  | `Loaded of System.t
  | `Err of Protocol.error_code * string ]

type t = {
  store : Store.t option;
  fetch : fetch;
  peer_fetch : (string -> (string, Protocol.err) result) option;
  mutable system : System.t option;
  mutable checker : Checker.t option;
  mutable tr_events : int;
  mutable tr_branches : int;
  mutable tr_alarms : int;
  (* Staging for the fast path: a whole [Branch_events] span is decoded
     into these flat arrays before any of it touches the checker, so a
     payload that turns out malformed mid-batch mutates nothing — the
     same all-or-nothing acceptance as the list decoder. *)
  mutable st_op : int array;  (* 0 call / 1 ret / 2 branch-taken / 3 branch-not *)
  mutable st_arg : int array;  (* branch pc, or index into [st_callee] *)
  mutable st_callee : string array;
  mutable st_n : int;
  mutable st_ncallees : int;
}

let create ?peer_fetch ~store ~fetch () =
  Reg.incr m_sessions;
  {
    store;
    fetch;
    peer_fetch;
    system = None;
    checker = None;
    tr_events = 0;
    tr_branches = 0;
    tr_alarms = 0;
    st_op = Array.make 1024 0;
    st_arg = Array.make 1024 0;
    st_callee = Array.make 64 "";
    st_n = 0;
    st_ncallees = 0;
  }

(* The cache key of an inline image: servers, routing clients and the
   legacy router must all derive it identically.  SHA-256 so the key is
   a collision-resistant content address, like store keys. *)
let image_key image = "img:" ^ Ipds_artifact.Sha256.hex_string image

(* Full verification of untrusted container bytes (a pushed artifact or
   one fetched from a peer): container digest, section CRCs, complete
   decode and structural validation of every flat image.  Anything less
   would let a forged frame publish unservable — or wrong — tables. *)
let verify_image bytes =
  match Ipds_artifact.Artifact.of_bytes bytes with
  | sys -> (
      match
        List.iter
          (fun (_, (i : System.func_info)) ->
            Ipds_core.Image.validate i.System.image)
          sys.System.funcs
      with
      | () -> Ok sys
      | exception Invalid_argument m -> Error m)
  | exception Ipds_artifact.Artifact.Corrupt m -> Error m

let send_error ~send code detail =
  (match code with
  | Protocol.Bad_state -> Reg.incr m_state_errors
  | Protocol.Timeout -> Reg.incr m_timeouts
  | Protocol.Server_error | Protocol.Overloaded -> ()
  | _ -> Reg.incr m_protocol_errors);
  send (Protocol.Error { Protocol.code; detail })

(* A session abandoned mid-trace still owes its checker deltas. *)
let close t =
  match t.checker with
  | Some ck ->
      Checker.flush ck;
      t.checker <- None
  | None -> ()

let feed_guarded sys ck t (e : Event.t) =
  (match e.Event.kind with
  | Event.Ret when Checker.depth ck = 0 ->
      raise (State_violation "Ret with an empty checker stack")
  | Event.Branch _ when Checker.depth ck = 0 ->
      raise (State_violation "Branch with an empty checker stack")
  | _ -> ());
  (match e.Event.kind with
  | Event.Branch _ -> t.tr_branches <- t.tr_branches + 1
  | _ -> ());
  Ipds_machine.Replay.feed ck ~defined:(System.mem sys) e

let loaded t ~send ~name sys = function
  | `Hit ->
      t.system <- Some sys;
      send (Protocol.Loaded { name; cached = true });
      `Continue
  | `Loaded ->
      t.system <- Some sys;
      send (Protocol.Loaded { name; cached = false });
      `Continue

let handle t ~send (f : Protocol.frame) =
  let send_err = send_error ~send in
  match f with
  | Protocol.Load_key key -> (
      match t.store with
      | None ->
          send_err Protocol.Unknown_artifact "no artifact store configured";
          `Close
      | Some store -> (
          let miss () =
            `Err
              (Protocol.Unknown_artifact, "no loadable artifact for key " ^ key)
          in
          (* local store first; a cold shard then warms itself from a
             fleet peer — the fetched image is untrusted until
             [verify_image] passes, and only then published locally so
             the next miss is a plain store hit *)
          let load () =
            match Store.load_system store key with
            | Some sys -> `Ok sys
            | None -> (
                match t.peer_fetch with
                | None -> miss ()
                | Some peer -> (
                    match peer key with
                    | Error (_ : Protocol.err) -> miss ()
                    | Ok image -> (
                        let bytes = Bytes.of_string image in
                        match verify_image bytes with
                        | Error m ->
                            Reg.incr m_artifact_verify_rejects;
                            `Err
                              ( Protocol.Corrupt_artifact,
                                "peer artifact failed verification: " ^ m )
                        | Ok sys ->
                            Reg.incr m_artifact_peer_loads;
                            ignore (Store.publish_image store key bytes);
                            `Ok sys)))
          in
          match t.fetch key load with
          | `Hit sys -> loaded t ~send ~name:key sys `Hit
          | `Loaded sys -> loaded t ~send ~name:key sys `Loaded
          | `Err (code, detail) ->
              send_err code detail;
              `Close))
  | Protocol.Load_image { name; image } -> (
      let key = image_key image in
      let load () =
        match Ipds_artifact.Artifact.of_bytes (Bytes.of_string image) with
        | sys -> `Ok sys
        | exception Ipds_artifact.Artifact.Corrupt m ->
            `Err (Protocol.Corrupt_artifact, m)
      in
      match t.fetch key load with
      | `Hit sys -> loaded t ~send ~name sys `Hit
      | `Loaded sys -> loaded t ~send ~name sys `Loaded
      | `Err (code, detail) ->
          send_err code detail;
          `Close)
  | Protocol.Begin_trace -> (
      match (t.system, t.checker) with
      | None, _ ->
          send_err Protocol.Bad_state "Begin_trace before an artifact is loaded";
          `Close
      | Some _, Some _ ->
          send_err Protocol.Bad_state "a trace is already active";
          `Close
      | Some sys, None ->
          t.checker <- Some (System.new_checker sys);
          t.tr_events <- 0;
          t.tr_branches <- 0;
          t.tr_alarms <- 0;
          Reg.incr m_traces;
          send Protocol.Trace_started;
          `Continue)
  | Protocol.Branch_events evs -> (
      match (t.system, t.checker) with
      | Some sys, Some ck -> (
          let t0 = now_micros () in
          (* O(1) against the checker's running count — a long trace's
             batch loop never rescans its alarm history, so framing cost
             amortizes over arbitrarily large batches *)
          let alarms_before = Checker.alarm_count ck in
          let branches_before = t.tr_branches in
          match List.iter (feed_guarded sys ck t) evs with
          | () ->
              let n = List.length evs in
              t.tr_events <- t.tr_events + n;
              Reg.add m_events n;
              Reg.add m_branches (t.tr_branches - branches_before);
              let fresh = Checker.alarms_since ck alarms_before in
              let n_fresh = List.length fresh in
              t.tr_alarms <- t.tr_alarms + n_fresh;
              Reg.add m_alarms n_fresh;
              Reg.observe m_batch_micros (now_micros () - t0);
              send (Protocol.Verdicts fresh);
              `Continue
          | exception State_violation m ->
              send_err Protocol.Bad_state m;
              `Close)
      | _ ->
          send_err Protocol.Bad_state "Branch_events outside an active trace";
          `Close)
  | Protocol.End_trace -> (
      match t.checker with
      | None ->
          send_err Protocol.Bad_state "End_trace outside an active trace";
          `Close
      | Some ck ->
          (* the stream need not drain the call stack; flush pending
             counter deltas before dropping the checker *)
          Checker.flush ck;
          t.checker <- None;
          send
            (Protocol.Trace_summary
               {
                 Protocol.total_events = t.tr_events;
                 total_branches = t.tr_branches;
                 total_alarms = t.tr_alarms;
               });
          `Continue)
  | Protocol.Fetch_artifact key -> (
      match t.store with
      | None ->
          send_err Protocol.Unknown_artifact "no artifact store configured";
          `Close
      | Some _ when not (Store.valid_key key) ->
          send_err Protocol.Unknown_artifact
            ("malformed artifact key " ^ String.escaped key);
          `Close
      | Some store -> (
          match Store.fetch_image store key with
          | `Image bytes ->
              Reg.incr m_artifact_fetches;
              send
                (Protocol.Artifact_data { key; image = Bytes.to_string bytes });
              `Continue
          | `Miss ->
              send_err Protocol.Unknown_artifact
                ("no artifact stored for key " ^ key);
              `Close
          | `Corrupt reason -> send_err Protocol.Corrupt_artifact reason; `Close))
  | Protocol.Push_artifact { key; image } -> (
      match t.store with
      | None ->
          send_err Protocol.Unknown_artifact "no artifact store configured";
          `Close
      | Some _ when not (Store.valid_key key) ->
          send_err Protocol.Unknown_artifact
            ("malformed artifact key " ^ String.escaped key);
          `Close
      | Some store -> (
          let bytes = Bytes.of_string image in
          match verify_image bytes with
          | Error m ->
              Reg.incr m_artifact_verify_rejects;
              send_err Protocol.Corrupt_artifact
                ("pushed artifact failed verification: " ^ m);
              `Close
          | Ok (_ : System.t) -> (
              match Store.publish_image store key bytes with
              | `Stored ->
                  Reg.incr m_artifact_pushes;
                  send (Protocol.Artifact_pushed { key; stored = true });
                  `Continue
              | `Duplicate ->
                  Reg.incr m_artifact_pushes;
                  send (Protocol.Artifact_pushed { key; stored = false });
                  `Continue
              | `Collision ->
                  send_err Protocol.Corrupt_artifact
                    ("a different valid artifact already holds key " ^ key);
                  `Close
              | `Failed m ->
                  send_err Protocol.Server_error ("publish failed: " ^ m);
                  `Close)))
  | Protocol.Loaded _ | Protocol.Trace_started | Protocol.Verdicts _
  | Protocol.Trace_summary _ | Protocol.Artifact_data _
  | Protocol.Artifact_pushed _ | Protocol.Error _ ->
      send_err Protocol.Bad_state "server-to-client frame from a client";
      `Close

(* {2 Fast path}

   Feed a CRC-validated [Branch_events] payload span without building
   the event list: {!Protocol.iter_branch_events} stages the
   checker-relevant events into flat arrays (validating the whole
   payload first), then the staged events replay through the same
   guards, counters and verdict collection as {!handle}'s
   [Branch_events] arm — observable behaviour (replies, typed errors,
   stable metrics, alarms) is identical, which serve_smoke's
   byte-identity phases pin down. *)

let stage_grow t =
  let cap = Array.length t.st_op in
  if t.st_n = cap then begin
    let op = Array.make (2 * cap) 0 and arg = Array.make (2 * cap) 0 in
    Array.blit t.st_op 0 op 0 cap;
    Array.blit t.st_arg 0 arg 0 cap;
    t.st_op <- op;
    t.st_arg <- arg
  end

let stage_push t op arg =
  stage_grow t;
  t.st_op.(t.st_n) <- op;
  t.st_arg.(t.st_n) <- arg;
  t.st_n <- t.st_n + 1

let stage_callee t callee =
  let cap = Array.length t.st_callee in
  if t.st_ncallees = cap then begin
    let cs = Array.make (2 * cap) "" in
    Array.blit t.st_callee 0 cs 0 cap;
    t.st_callee <- cs
  end;
  t.st_callee.(t.st_ncallees) <- callee;
  stage_push t 0 t.st_ncallees;
  t.st_ncallees <- t.st_ncallees + 1

let handle_events_span t ~send ~max_frame buf ~pos ~len =
  match (t.system, t.checker) with
  | Some sys, Some ck -> (
      t.st_n <- 0;
      t.st_ncallees <- 0;
      let decoded =
        match
          Protocol.iter_branch_events ~limit:max_frame buf ~pos ~len
            ~on_call:(fun callee -> stage_callee t callee)
            ~on_ret:(fun () -> stage_push t 1 0)
            ~on_branch:(fun ~pc ~taken -> stage_push t (if taken then 2 else 3) pc)
            ~on_other:(fun () -> ())
        with
        | n -> Ok n
        | exception Protocol.Malformed_payload m -> Error m
        | exception Protocol.Fast.Short -> Error "payload ends prematurely"
      in
      match decoded with
      | Error m ->
          send_error ~send Protocol.Malformed m;
          `Close
      | Ok n -> (
          let t0 = now_micros () in
          let alarms_before = Checker.alarm_count ck in
          let branches_before = t.tr_branches in
          let feed () =
            for i = 0 to t.st_n - 1 do
              match t.st_op.(i) with
              | 0 ->
                  let callee = t.st_callee.(t.st_arg.(i)) in
                  if System.mem sys callee then ignore (Checker.on_call ck callee)
              | 1 ->
                  if Checker.depth ck = 0 then
                    raise (State_violation "Ret with an empty checker stack");
                  ignore (Checker.on_return ck)
              | _ ->
                  if Checker.depth ck = 0 then
                    raise (State_violation "Branch with an empty checker stack");
                  t.tr_branches <- t.tr_branches + 1;
                  ignore
                    (Checker.on_branch ck ~pc:t.st_arg.(i)
                       ~taken:(t.st_op.(i) = 2))
            done
          in
          match feed () with
          | () ->
              t.tr_events <- t.tr_events + n;
              Reg.add m_events n;
              Reg.add m_branches (t.tr_branches - branches_before);
              let fresh = Checker.alarms_since ck alarms_before in
              let n_fresh = List.length fresh in
              t.tr_alarms <- t.tr_alarms + n_fresh;
              Reg.add m_alarms n_fresh;
              Reg.observe m_batch_micros (now_micros () - t0);
              send (Protocol.Verdicts fresh);
              `Continue
          | exception State_violation m ->
              send_error ~send Protocol.Bad_state m;
              `Close))
  | _ ->
      send_error ~send Protocol.Bad_state "Branch_events outside an active trace";
      `Close
