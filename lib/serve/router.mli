(** Thin routing fallback for legacy clients that speak plain {!Client}
    to a single address.  The router sniffs the first frame of each
    connection for its artifact key (Load_key directly, Load_image via
    {!Session.image_key}), routes on the same consistent-hash ring as
    {!Fleet_client}, then byte-pumps both directions with bounded
    buffers — replies are byte-identical to a direct connection.  A
    fully dead fleet yields one typed [Unavailable] error frame.  This
    is explicitly the slow path (one extra hop); routing-aware clients
    bypass it. *)

type config = {
  max_frame : int;
  backoff : Ipds_fleet.Backoff.t;
  buffer_bytes : int;  (** per-direction pump bound (backpressure) *)
}

val default_config : config
(** 4 MiB frames, default backoff, 256 KiB per-direction buffers. *)

type t

val start :
  ?config:config -> topology:Ipds_fleet.Topology.t -> Server.address -> t

val port : t -> int option
val stop : t -> unit
(** Prompt (self-pipe wakes the loop), bounded, idempotent. *)

val with_router :
  ?config:config ->
  topology:Ipds_fleet.Topology.t ->
  Server.address ->
  (t -> 'a) ->
  'a
