(* The PR-5 thread-per-session verdict server, preserved verbatim in
   behaviour as the bench baseline for {!Server} (the event-loop
   reactor), the same way [Checker_ref] anchors the flat checker:
   `bench serve-throughput` measures both implementations side by side,
   so the reactor's win stays an assertable number instead of a claim.

   One blocking socket per client, sessions fanned over an
   {!Ipds_parallel.Pool} of [config.jobs] worker domains, a single-lock
   LRU for loaded systems, and the generic list-decoding frame reader —
   none of the reactor's machinery (nonblocking sockets, sharded cache,
   streaming batch decode, bounded reply queues). *)

module System = Ipds_core.System
module Store = Ipds_artifact.Store
module Pool = Ipds_parallel.Pool
module Reg = Ipds_obs.Registry

let m_cache_hits = Reg.counter ~stable:false "serve.cache_hits"
let m_cache_misses = Reg.counter ~stable:false "serve.cache_misses"

type config = {
  jobs : int;  (** worker domains serving sessions (≥ 1) *)
  max_frame : int;  (** payload-size limit, bytes *)
  session_timeout : float;  (** seconds a session may sit idle; 0 = none *)
  cache_slots : int;  (** loaded [System.t]s kept in the LRU *)
  store_dir : string option;
      (** artifact store for [Load_key]; [None] uses the ambient store *)
}

let default_config =
  {
    jobs = 1;
    max_frame = Protocol.default_max_frame;
    session_timeout = 30.;
    cache_slots = 8;
    store_dir = None;
  }

type address = [ `Unix of string | `Tcp of int ]

type lru = {
  lmutex : Mutex.t;
  mutable entries : (string * System.t) list;  (* MRU first *)
  slots : int;
}

(* Live session sockets, so [stop] can force blocked reads to return
   even when [session_timeout] is 0 (otherwise a silent client would
   hold a worker in [input_frame] forever and the pool drain would
   never finish). *)
type sessions = { smutex : Mutex.t; mutable fds : Unix.file_descr list }

type t = {
  config : config;
  store : Store.t option;
  fd : Unix.file_descr;
  sock_path : string option;
  pool : Pool.t;
  stop_flag : bool Atomic.t;
  mutable accept_domain : unit Domain.t option;
  lru : lru;
  sessions : sessions;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let track sessions fd =
  Mutex.lock sessions.smutex;
  sessions.fds <- fd :: sessions.fds;
  Mutex.unlock sessions.smutex

(* Closing under the mutex means [interrupt_sessions] never races a
   close and shuts down a recycled descriptor number. *)
let untrack_close sessions fd =
  Mutex.lock sessions.smutex;
  sessions.fds <- List.filter (fun f -> f != fd) sessions.fds;
  close_quiet fd;
  Mutex.unlock sessions.smutex

let interrupt_sessions sessions =
  Mutex.lock sessions.smutex;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    sessions.fds;
  Mutex.unlock sessions.smutex

(* The mutex is held across [load], serializing artifact loads: the
   first session to ask for a key pays the load, concurrent sessions for
   the same key hit the fresh entry instead of racing a second load. *)
let lru_fetch lru key load =
  Mutex.lock lru.lmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lru.lmutex)
    (fun () ->
      match List.assoc_opt key lru.entries with
      | Some sys ->
          Reg.incr m_cache_hits;
          lru.entries <- (key, sys) :: List.remove_assoc key lru.entries;
          `Hit sys
      | None -> (
          Reg.incr m_cache_misses;
          match load () with
          | `Ok sys ->
              lru.entries <-
                List.filteri
                  (fun i _ -> i < lru.slots)
                  ((key, sys) :: lru.entries);
              `Loaded sys
          | `Err e -> `Err e))

(* {2 Session} *)

let session t cfd =
  if t.config.session_timeout > 0. then (
    try Unix.setsockopt_float cfd Unix.SO_RCVTIMEO t.config.session_timeout
    with Unix.Unix_error _ | Invalid_argument _ -> ());
  let reader = Protocol.reader ~max_frame:t.config.max_frame cfd in
  let st = Session.create ~store:t.store ~fetch:(lru_fetch t.lru) () in
  let send f =
    Reg.incr Session.m_frames_out;
    Protocol.output_frame cfd f
  in
  let send_err = Session.send_error ~send in
  let rec loop () =
    match Protocol.input_frame reader with
    | Protocol.In_eof -> ()
    | Protocol.In_error e -> send_err e.Protocol.code e.Protocol.detail
    | Protocol.In_frame f -> (
        Reg.incr Session.m_frames_in;
        match Session.handle st ~send f with
        | `Continue -> loop ()
        | `Close -> ())
  in
  Fun.protect
    ~finally:(fun () -> Session.close st)
    (fun () ->
      try loop () with
      | Unix.Unix_error _ -> () (* peer went away mid-write *)
      | Session.State_violation _ -> ()
      | e -> (
          try send_err Protocol.Server_error (Printexc.to_string e) with _ -> ()))

(* {2 Lifecycle} *)

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.fd with
        | cfd, _ ->
            track t.sessions cfd;
            Pool.async t.pool (fun () ->
                Fun.protect
                  ~finally:(fun () -> untrack_close t.sessions cfd)
                  (fun () -> session t cfd))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Reclaim [path] for our listener, but only if it holds a *stale*
   socket: a non-socket file is someone else's data and a socket a
   connect succeeds on is a live server — unlinking either would
   silently hijack it, so both raise [EADDRINUSE] instead. *)
let claim_socket_path path =
  match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      close_quiet probe;
      if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let start ?(config = default_config) (addr : address) =
  Protocol.ignore_sigpipe ();
  let fd, sock_path =
    match addr with
    | `Unix path ->
        claim_socket_path path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        (fd, Some path)
    | `Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (fd, None)
  in
  Unix.listen fd 64;
  let store =
    match config.store_dir with
    | Some dir -> Some (Store.create ~dir)
    | None -> Store.ambient ()
  in
  (* [Pool.async] tasks only ever run on worker domains (the submitter
     does not help), so [jobs + 1] yields exactly [jobs] session
     workers; the accept loop lives on its own domain besides. *)
  let pool = Pool.create ~jobs:(max 1 config.jobs + 1) () in
  let t =
    {
      config;
      store;
      fd;
      sock_path;
      pool;
      stop_flag = Atomic.make false;
      accept_domain = None;
      lru = { lmutex = Mutex.create (); entries = []; slots = max 1 config.cache_slots };
      sessions = { smutex = Mutex.create (); fds = [] };
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t =
  match Unix.getsockname t.fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (match t.accept_domain with
    | Some d ->
        Domain.join d;
        t.accept_domain <- None
    | None -> ());
    (* Workers drain queued + running sessions before the join returns.
       Shutting active session sockets down first forces reads blocked
       in [input_frame] to return — without it a silent client under
       [session_timeout = 0] would hold a worker forever. *)
    interrupt_sessions t.sessions;
    Pool.shutdown t.pool;
    close_quiet t.fd;
    match t.sock_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  end

let with_server ?config addr f =
  let t = start ?config addr in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
