(* The streaming verdict server: sessions speak {!Protocol} over a
   Unix-domain or loopback TCP socket, load an artifact (by store key or
   inline image), then stream batched events and get verdicts back.

   Robustness is the contract here: malformed, oversized, truncated or
   out-of-sequence frames produce one typed [Error] reply and a closed
   session — never an exception escaping a session, never a wedged
   accept loop.  Sessions are fanned over an {!Ipds_parallel.Pool} of
   [config.jobs] worker domains; the accept loop runs on its own domain
   and never executes session work itself. *)

module Event = Ipds_machine.Event
module System = Ipds_core.System
module Checker = Ipds_core.Checker
module Store = Ipds_artifact.Store
module Pool = Ipds_parallel.Pool
module Reg = Ipds_obs.Registry

(* Stable counters are sums of per-session deterministic work, so their
   totals are independent of scheduling and job count — the concurrency
   determinism test relies on that.  Timeouts and cache traffic depend
   on timing and session interleaving (LRU eviction order), so they are
   unstable; so is the latency histogram. *)
let m_sessions = Reg.counter "serve.sessions"
let m_frames_in = Reg.counter "serve.frames_in"
let m_frames_out = Reg.counter "serve.frames_out"
let m_traces = Reg.counter "serve.traces"
let m_events = Reg.counter "serve.events"
let m_branches = Reg.counter "serve.branches"
let m_alarms = Reg.counter "serve.alarms"
let m_protocol_errors = Reg.counter "serve.protocol_errors"
let m_state_errors = Reg.counter "serve.state_errors"
let m_timeouts = Reg.counter ~stable:false "serve.timeouts"
let m_cache_hits = Reg.counter ~stable:false "serve.cache_hits"
let m_cache_misses = Reg.counter ~stable:false "serve.cache_misses"
let m_batch_micros = Reg.histogram ~stable:false "serve.batch_micros"

type config = {
  jobs : int;  (** worker domains serving sessions (≥ 1) *)
  max_frame : int;  (** payload-size limit, bytes *)
  session_timeout : float;  (** seconds a session may sit idle; 0 = none *)
  cache_slots : int;  (** loaded [System.t]s kept in the LRU *)
  store_dir : string option;
      (** artifact store for [Load_key]; [None] uses the ambient store *)
}

let default_config =
  {
    jobs = 1;
    max_frame = Protocol.default_max_frame;
    session_timeout = 30.;
    cache_slots = 8;
    store_dir = None;
  }

type address = [ `Unix of string | `Tcp of int ]

type lru = {
  lmutex : Mutex.t;
  mutable entries : (string * System.t) list;  (* MRU first *)
  slots : int;
}

(* Live session sockets, so [stop] can force blocked reads to return
   even when [session_timeout] is 0 (otherwise a silent client would
   hold a worker in [input_frame] forever and the pool drain would
   never finish). *)
type sessions = { smutex : Mutex.t; mutable fds : Unix.file_descr list }

type t = {
  config : config;
  store : Store.t option;
  fd : Unix.file_descr;
  sock_path : string option;
  pool : Pool.t;
  stop_flag : bool Atomic.t;
  mutable accept_domain : unit Domain.t option;
  lru : lru;
  sessions : sessions;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let track sessions fd =
  Mutex.lock sessions.smutex;
  sessions.fds <- fd :: sessions.fds;
  Mutex.unlock sessions.smutex

(* Closing under the mutex means [interrupt_sessions] never races a
   close and shuts down a recycled descriptor number. *)
let untrack_close sessions fd =
  Mutex.lock sessions.smutex;
  sessions.fds <- List.filter (fun f -> f != fd) sessions.fds;
  close_quiet fd;
  Mutex.unlock sessions.smutex

let interrupt_sessions sessions =
  Mutex.lock sessions.smutex;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    sessions.fds;
  Mutex.unlock sessions.smutex

(* The mutex is held across [load], serializing artifact loads: the
   first session to ask for a key pays the load, concurrent sessions for
   the same key hit the fresh entry instead of racing a second load. *)
let lru_fetch lru key load =
  Mutex.lock lru.lmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lru.lmutex)
    (fun () ->
      match List.assoc_opt key lru.entries with
      | Some sys ->
          Reg.incr m_cache_hits;
          lru.entries <- (key, sys) :: List.remove_assoc key lru.entries;
          `Hit sys
      | None -> (
          Reg.incr m_cache_misses;
          match load () with
          | `Ok sys ->
              lru.entries <-
                List.filteri
                  (fun i _ -> i < lru.slots)
                  ((key, sys) :: lru.entries);
              `Loaded sys
          | `Err e -> `Err e))

let now_micros () = int_of_float (Unix.gettimeofday () *. 1e6)

exception State_violation of string

(* {2 Session} *)

type session_state = {
  mutable system : System.t option;
  mutable checker : Checker.t option;
  mutable tr_events : int;
  mutable tr_branches : int;
  mutable tr_alarms : int;
}

let feed_guarded sys ck st (e : Event.t) =
  (match e.Event.kind with
  | Event.Ret when Checker.depth ck = 0 ->
      raise (State_violation "Ret with an empty checker stack")
  | Event.Branch _ when Checker.depth ck = 0 ->
      raise (State_violation "Branch with an empty checker stack")
  | _ -> ());
  (match e.Event.kind with
  | Event.Branch _ -> st.tr_branches <- st.tr_branches + 1
  | _ -> ());
  Ipds_machine.Replay.feed ck ~defined:(System.mem sys) e

let handle t st send send_err (f : Protocol.frame) =
  match f with
  | Protocol.Load_key key -> (
      match t.store with
      | None ->
          send_err Protocol.Unknown_artifact "no artifact store configured";
          `Close
      | Some store -> (
          let load () =
            match Store.load_system store key with
            | Some sys -> `Ok sys
            | None ->
                `Err
                  ( Protocol.Unknown_artifact,
                    "no loadable artifact for key " ^ key )
          in
          match lru_fetch t.lru key load with
          | `Hit sys ->
              st.system <- Some sys;
              send (Protocol.Loaded { name = key; cached = true });
              `Continue
          | `Loaded sys ->
              st.system <- Some sys;
              send (Protocol.Loaded { name = key; cached = false });
              `Continue
          | `Err (code, detail) ->
              send_err code detail;
              `Close))
  | Protocol.Load_image { name; image } -> (
      let key = "img:" ^ Digest.to_hex (Digest.string image) in
      let load () =
        match Ipds_artifact.Artifact.of_bytes (Bytes.of_string image) with
        | sys -> `Ok sys
        | exception Ipds_artifact.Artifact.Corrupt m ->
            `Err (Protocol.Corrupt_artifact, m)
      in
      match lru_fetch t.lru key load with
      | `Hit sys ->
          st.system <- Some sys;
          send (Protocol.Loaded { name; cached = true });
          `Continue
      | `Loaded sys ->
          st.system <- Some sys;
          send (Protocol.Loaded { name; cached = false });
          `Continue
      | `Err (code, detail) ->
          send_err code detail;
          `Close)
  | Protocol.Begin_trace -> (
      match (st.system, st.checker) with
      | None, _ ->
          send_err Protocol.Bad_state "Begin_trace before an artifact is loaded";
          `Close
      | Some _, Some _ ->
          send_err Protocol.Bad_state "a trace is already active";
          `Close
      | Some sys, None ->
          st.checker <- Some (System.new_checker sys);
          st.tr_events <- 0;
          st.tr_branches <- 0;
          st.tr_alarms <- 0;
          Reg.incr m_traces;
          send Protocol.Trace_started;
          `Continue)
  | Protocol.Branch_events evs -> (
      match (st.system, st.checker) with
      | Some sys, Some ck -> (
          let t0 = now_micros () in
          (* O(1) against the checker's running count — a long trace's
             batch loop never rescans its alarm history, so framing cost
             amortizes over arbitrarily large batches *)
          let alarms_before = Checker.alarm_count ck in
          let branches_before = st.tr_branches in
          match List.iter (feed_guarded sys ck st) evs with
          | () ->
              let n = List.length evs in
              st.tr_events <- st.tr_events + n;
              Reg.add m_events n;
              Reg.add m_branches (st.tr_branches - branches_before);
              let fresh = Checker.alarms_since ck alarms_before in
              let n_fresh = List.length fresh in
              st.tr_alarms <- st.tr_alarms + n_fresh;
              Reg.add m_alarms n_fresh;
              Reg.observe m_batch_micros (now_micros () - t0);
              send (Protocol.Verdicts fresh);
              `Continue
          | exception State_violation m ->
              send_err Protocol.Bad_state m;
              `Close)
      | _ ->
          send_err Protocol.Bad_state "Branch_events outside an active trace";
          `Close)
  | Protocol.End_trace -> (
      match st.checker with
      | None ->
          send_err Protocol.Bad_state "End_trace outside an active trace";
          `Close
      | Some ck ->
          (* the stream need not drain the call stack; flush pending
             counter deltas before dropping the checker *)
          Checker.flush ck;
          st.checker <- None;
          send
            (Protocol.Trace_summary
               {
                 Protocol.total_events = st.tr_events;
                 total_branches = st.tr_branches;
                 total_alarms = st.tr_alarms;
               });
          `Continue)
  | Protocol.Loaded _ | Protocol.Trace_started | Protocol.Verdicts _
  | Protocol.Trace_summary _ | Protocol.Error _ ->
      send_err Protocol.Bad_state "server-to-client frame from a client";
      `Close

let session t cfd =
  Reg.incr m_sessions;
  if t.config.session_timeout > 0. then (
    try Unix.setsockopt_float cfd Unix.SO_RCVTIMEO t.config.session_timeout
    with Unix.Unix_error _ | Invalid_argument _ -> ());
  let reader = Protocol.reader ~max_frame:t.config.max_frame cfd in
  let st =
    { system = None; checker = None; tr_events = 0; tr_branches = 0; tr_alarms = 0 }
  in
  let send f =
    Reg.incr m_frames_out;
    Protocol.output_frame cfd f
  in
  let send_err code detail =
    (match code with
    | Protocol.Bad_state -> Reg.incr m_state_errors
    | Protocol.Timeout -> Reg.incr m_timeouts
    | Protocol.Server_error -> ()
    | _ -> Reg.incr m_protocol_errors);
    send (Protocol.Error { Protocol.code; detail })
  in
  let rec loop () =
    match Protocol.input_frame reader with
    | Protocol.In_eof -> ()
    | Protocol.In_error e -> send_err e.Protocol.code e.Protocol.detail
    | Protocol.In_frame f -> (
        Reg.incr m_frames_in;
        match handle t st send send_err f with
        | `Continue -> loop ()
        | `Close -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      (* a session abandoned mid-trace still owes its checker deltas *)
      match st.checker with Some ck -> Checker.flush ck | None -> ())
    (fun () ->
      try loop () with
      | Unix.Unix_error _ -> () (* peer went away mid-write *)
      | State_violation _ -> ()
      | e -> (
          try send_err Protocol.Server_error (Printexc.to_string e) with _ -> ()))

(* {2 Lifecycle} *)

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.fd with
        | cfd, _ ->
            track t.sessions cfd;
            Pool.async t.pool (fun () ->
                Fun.protect
                  ~finally:(fun () -> untrack_close t.sessions cfd)
                  (fun () -> session t cfd))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Reclaim [path] for our listener, but only if it holds a *stale*
   socket: a non-socket file is someone else's data and a socket a
   connect succeeds on is a live server — unlinking either would
   silently hijack it, so both raise [EADDRINUSE] instead. *)
let claim_socket_path path =
  match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      close_quiet probe;
      if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let start ?(config = default_config) (addr : address) =
  Protocol.ignore_sigpipe ();
  let fd, sock_path =
    match addr with
    | `Unix path ->
        claim_socket_path path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        (fd, Some path)
    | `Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (fd, None)
  in
  Unix.listen fd 64;
  let store =
    match config.store_dir with
    | Some dir -> Some (Store.create ~dir)
    | None -> Store.ambient ()
  in
  (* [Pool.async] tasks only ever run on worker domains (the submitter
     does not help), so [jobs + 1] yields exactly [jobs] session
     workers; the accept loop lives on its own domain besides. *)
  let pool = Pool.create ~jobs:(max 1 config.jobs + 1) () in
  let t =
    {
      config;
      store;
      fd;
      sock_path;
      pool;
      stop_flag = Atomic.make false;
      accept_domain = None;
      lru = { lmutex = Mutex.create (); entries = []; slots = max 1 config.cache_slots };
      sessions = { smutex = Mutex.create (); fds = [] };
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t =
  match Unix.getsockname t.fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (match t.accept_domain with
    | Some d ->
        Domain.join d;
        t.accept_domain <- None
    | None -> ());
    (* Workers drain queued + running sessions before the join returns.
       Shutting active session sockets down first forces reads blocked
       in [input_frame] to return — without it a silent client under
       [session_timeout = 0] would hold a worker forever. *)
    interrupt_sessions t.sessions;
    Pool.shutdown t.pool;
    close_quiet t.fd;
    match t.sock_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  end

let with_server ?config addr f =
  let t = start ?config addr in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
