(* The event-loop verdict server.

   One [Unix.select] reactor per [config.jobs], each owning a disjoint
   set of nonblocking connections: the accept domain distributes new
   sockets round-robin over reactor mailboxes and wakes the owner
   through its self-pipe.  Reads drive {!Protocol.scan_at} over a
   compacting per-connection buffer; [Branch_events] spans stream
   straight into the checker through {!Session.handle_events_span}
   (no event list, no per-event allocation), rare control frames fall
   back to the generic decoder.  Writes never block: replies go through
   a bounded per-connection queue flushed opportunistically and on
   writability, with a global in-flight byte cap on top — when either
   bound would be exceeded the client gets one typed [Overloaded] error
   frame and the connection drains and closes.  Backpressure, never
   unbounded buffering.

   Loaded systems live in an {!Ipds_fleet.Shard_cache}: N independently
   locked LRU shards keyed by artifact key, so concurrent loads only
   contend when they actually race the same shard.

   The observable protocol behaviour (replies, typed errors, stable
   serve.* metrics) is identical to {!Server_threaded}, the preserved
   PR-5 implementation — serve_smoke drives both paths and the
   byte-identity phases hold across either. *)

module Store = Ipds_artifact.Store
module Shard_cache = Ipds_fleet.Shard_cache
module Reg = Ipds_obs.Registry

(* Overload shedding depends on timing, so the counter is unstable. *)
let m_overloaded = Reg.counter ~stable:false "serve.overloaded"

(* Fleet artifact sharing: where this server may fetch verified
   artifacts from on a local-store miss, instead of answering
   [unknown-artifact] and forcing the client to recompile. *)
type peer_sharing = {
  peer_topology : Ipds_fleet.Topology.t;
  peer_self : int;  (** this server's own shard index (never asked) *)
  peer_backoff : Ipds_fleet.Backoff.t;
}

type config = {
  jobs : int;  (** reactor domains (≥ 1) *)
  max_frame : int;  (** payload-size limit, bytes *)
  session_timeout : float;  (** seconds a session may sit idle; 0 = none *)
  cache_slots : int;  (** loaded [System.t]s kept across all cache shards *)
  cache_shards : int;  (** independently locked cache shards (≥ 1) *)
  store_dir : string option;
      (** artifact store for [Load_key]; [None] uses the ambient store *)
  reply_queue_bytes : int;  (** per-connection reply-queue bound *)
  inflight_bytes : int;  (** global bound on queued reply bytes *)
  peers : peer_sharing option;  (** fleet peers to warm the store from *)
}

let default_config =
  {
    jobs = 1;
    max_frame = Protocol.default_max_frame;
    session_timeout = 30.;
    cache_slots = 8;
    cache_shards = 4;
    store_dir = None;
    reply_queue_bytes = 8 * 1024 * 1024;
    inflight_bytes = 64 * 1024 * 1024;
    peers = None;
  }

type address = [ `Unix of string | `Tcp of int ]

type out_chunk = { chunk : Bytes.t; mutable off : int }

type conn = {
  fd : Unix.file_descr;
  session : Session.t;
  mutable inbuf : Bytes.t;
  mutable in_start : int;
  mutable in_len : int;
  outq : out_chunk Queue.t;
  mutable out_bytes : int;
  mutable last_active : float;
  mutable closing : bool;  (** stop reading; close once the queue drains *)
  mutable dead : bool;  (** close and reap now *)
}

type reactor = {
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  inbox_mutex : Mutex.t;
  inbox : Unix.file_descr Queue.t;
  mutable conns : conn list;
}

type t = {
  config : config;
  store : Store.t option;
  peer_fetch : (string -> (string, Protocol.err) result) option;
  cache : Ipds_core.System.t Shard_cache.t;
  fd : Unix.file_descr;
  sock_path : string option;
  stop_flag : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  reactors : reactor array;
  mutable reactor_domains : unit Domain.t array;
  mutable accept_domain : unit Domain.t option;
  inflight : int Atomic.t;  (** queued reply bytes across all connections *)
  rr : int Atomic.t;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The empty-verdicts reply — the overwhelmingly common case — is one
   shared pre-encoded frame; queued chunks are write-only, so sharing
   the bytes across connections is safe. *)
let empty_verdicts = lazy (Protocol.encode_frame (Protocol.Verdicts []))

let cache_fetch t key load =
  match
    Shard_cache.fetch t.cache key (fun () ->
        match load () with `Ok sys -> Ok sys | `Err e -> Error e)
  with
  | `Hit sys -> `Hit sys
  | `Loaded sys -> `Loaded sys
  | `Err e -> `Err e

(* {2 Connection output} *)

let release t conn n =
  conn.out_bytes <- conn.out_bytes - n;
  ignore (Atomic.fetch_and_add t.inflight (-n))

let kill t conn =
  if not conn.dead then begin
    conn.dead <- true;
    release t conn conn.out_bytes;
    Queue.clear conn.outq;
    Session.close conn.session;
    close_quiet conn.fd
  end

let enqueue_raw t conn b =
  let len = Bytes.length b in
  Queue.add { chunk = b; off = 0 } conn.outq;
  conn.out_bytes <- conn.out_bytes + len;
  ignore (Atomic.fetch_and_add t.inflight len)

(* The backpressure bound: a reply that would overflow the connection's
   queue or the global in-flight cap is replaced by one typed
   [Overloaded] frame (allowed past the caps — it is the close reason)
   and the connection stops reading and drains. *)
let send t conn f =
  if not (conn.dead || conn.closing) then begin
    let b =
      match f with
      | Protocol.Verdicts [] -> Lazy.force empty_verdicts
      | f -> Protocol.encode_frame f
    in
    let len = Bytes.length b in
    if
      conn.out_bytes + len > t.config.reply_queue_bytes
      || Atomic.get t.inflight + len > t.config.inflight_bytes
    then begin
      Reg.incr m_overloaded;
      Reg.incr Session.m_frames_out;
      enqueue_raw t conn
        (Protocol.encode_frame
           (Protocol.Error
              {
                Protocol.code = Protocol.Overloaded;
                detail = "reply queue bound exceeded; closing";
              }));
      conn.closing <- true
    end
    else begin
      Reg.incr Session.m_frames_out;
      enqueue_raw t conn b
    end
  end

let rec flush_conn t conn =
  if not conn.dead then
    match Queue.peek_opt conn.outq with
    | None -> if conn.closing then kill t conn
    | Some entry -> (
        let remaining = Bytes.length entry.chunk - entry.off in
        match Unix.single_write conn.fd entry.chunk entry.off remaining with
        | n ->
            entry.off <- entry.off + n;
            release t conn n;
            if entry.off = Bytes.length entry.chunk then begin
              ignore (Queue.pop conn.outq);
              flush_conn t conn
            end
            (* partial write: the socket buffer is full, wait for
               writability *)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_conn t conn
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error _ -> kill t conn)

(* {2 Connection input} *)

(* Make [need] bytes addressable from [in_start] (compact, then grow).
   [scan_at] bounds [need] by [max_frame] + framing overhead — an
   oversized length field is rejected from the header alone, so the
   buffer never grows past the configured limit. *)
let ensure_capacity conn need =
  if conn.in_start > 0 && conn.in_start + need > Bytes.length conn.inbuf then begin
    Bytes.blit conn.inbuf conn.in_start conn.inbuf 0 conn.in_len;
    conn.in_start <- 0
  end;
  if need > Bytes.length conn.inbuf then begin
    let bigger = Bytes.create (max need (2 * Bytes.length conn.inbuf)) in
    Bytes.blit conn.inbuf conn.in_start bigger 0 conn.in_len;
    conn.in_start <- 0;
    conn.inbuf <- bigger
  end

let rec drain_frames t conn =
  if not (conn.dead || conn.closing) then
    match
      Protocol.scan_at ~max_frame:t.config.max_frame conn.inbuf
        ~pos:conn.in_start ~len:conn.in_len
    with
    | Protocol.Scan_need need -> ensure_capacity conn need
    | Protocol.Scan_fail e ->
        Session.send_error ~send:(send t conn) e.Protocol.code e.Protocol.detail;
        conn.closing <- true
    | Protocol.Scan_frame { tag; payload_pos; payload_len; next } ->
        Reg.incr Session.m_frames_in;
        let consumed = next - conn.in_start in
        (* Advance past the frame before handling it; the payload span
           stays valid because the buffer is only compacted on the next
           [Scan_need], after the handler returns. *)
        conn.in_start <- next;
        conn.in_len <- conn.in_len - consumed;
        let send = send t conn in
        let verdict =
          if tag = Protocol.branch_events_tag then
            Session.handle_events_span conn.session ~send
              ~max_frame:t.config.max_frame conn.inbuf ~pos:payload_pos
              ~len:payload_len
          else
            match
              Protocol.decode_span ~max_frame:t.config.max_frame tag conn.inbuf
                ~pos:payload_pos ~len:payload_len
            with
            | Ok f -> Session.handle conn.session ~send f
            | Error e ->
                Session.send_error ~send e.Protocol.code e.Protocol.detail;
                `Close
        in
        (match verdict with
        | `Continue -> ()
        | `Close -> conn.closing <- true);
        if conn.in_len = 0 then conn.in_start <- 0;
        drain_frames t conn

let on_readable t conn =
  (* Read until EAGAIN (or a modest per-wake budget, for fairness),
     draining complete frames as they appear. *)
  let budget = ref (256 * 1024) in
  let continue_ = ref true in
  while (not (conn.dead || conn.closing)) && !continue_ && !budget > 0 do
    if conn.in_start + conn.in_len = Bytes.length conn.inbuf then
      ensure_capacity conn (conn.in_len + 1);
    let off = conn.in_start + conn.in_len in
    let room = Bytes.length conn.inbuf - off in
    match Unix.read conn.fd conn.inbuf off room with
    | 0 ->
        (* EOF.  Mid-frame bytes left in the buffer are a truncated
           stream — same typed error as the blocking reader. *)
        continue_ := false;
        if conn.in_len > 0 then
          Session.send_error ~send:(send t conn) Protocol.Truncated
            "connection closed mid-frame";
        conn.closing <- true
    | n ->
        conn.last_active <- Unix.gettimeofday ();
        budget := !budget - n;
        conn.in_len <- conn.in_len + n;
        drain_frames t conn
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue_ := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> kill t conn
  done

(* {2 Reactor} *)

let drain_wake fd =
  let junk = Bytes.create 64 in
  let rec go () =
    match Unix.read fd junk 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let adopt t r =
  Mutex.lock r.inbox_mutex;
  let fresh = Queue.fold (fun acc fd -> fd :: acc) [] r.inbox in
  Queue.clear r.inbox;
  Mutex.unlock r.inbox_mutex;
  List.iter
    (fun fd ->
      (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
      let conn =
        {
          fd;
          session =
            Session.create ?peer_fetch:t.peer_fetch ~store:t.store
              ~fetch:(cache_fetch t) ();
          inbuf = Bytes.create 65536;
          in_start = 0;
          in_len = 0;
          outq = Queue.create ();
          out_bytes = 0;
          last_active = Unix.gettimeofday ();
          closing = false;
          dead = false;
        }
      in
      r.conns <- conn :: r.conns)
    fresh

let scan_timeouts t r =
  if t.config.session_timeout > 0. then begin
    let now = Unix.gettimeofday () in
    List.iter
      (fun conn ->
        if
          (not conn.dead)
          && now -. conn.last_active > t.config.session_timeout
        then
          if conn.closing then kill t conn
          else begin
            Session.send_error ~send:(send t conn) Protocol.Timeout
              "session timed out waiting for a frame";
            conn.closing <- true
          end)
      r.conns
  end

let reactor_loop t r =
  while not (Atomic.get t.stop_flag) do
    adopt t r;
    let rds =
      r.wake_r
      :: List.filter_map
           (fun c -> if c.dead || c.closing then None else Some c.fd)
           r.conns
    in
    let wrs =
      List.filter_map
        (fun c -> if (not c.dead) && c.out_bytes > 0 then Some c.fd else None)
        r.conns
    in
    (* With no idle timeout to police, sleep long: [stop] (and new
       work) wakes the select through the self-pipe, so the period only
       bounds how often a completely idle reactor spins. *)
    let tmo = if t.config.session_timeout > 0. then 0.25 else 30. in
    (match Unix.select rds wrs [] tmo with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
    | rd, wr, _ ->
        if List.mem r.wake_r rd then drain_wake r.wake_r;
        adopt t r;
        List.iter
          (fun c -> if (not c.dead) && List.mem c.fd wr then flush_conn t c)
          r.conns;
        List.iter
          (fun c -> if (not c.dead) && List.mem c.fd rd then on_readable t c)
          r.conns;
        (* Optimistic flush: most replies fit the socket buffer and
           never wait for a writability round-trip. *)
        List.iter
          (fun c -> if (not c.dead) && c.out_bytes > 0 then flush_conn t c)
          r.conns);
    scan_timeouts t r;
    r.conns <-
      List.filter
        (fun c ->
          if c.dead then false
          else if c.closing && Queue.is_empty c.outq then begin
            kill t c;
            false
          end
          else true)
        r.conns
  done;
  (* Shutdown: one best-effort flush so already-queued replies reach
     well-behaved clients, then close everything. *)
  List.iter (fun c -> flush_conn t c) r.conns;
  List.iter (fun c -> kill t c) r.conns;
  r.conns <- [];
  adopt t r;
  List.iter (fun c -> kill t c) r.conns;
  r.conns <- []

(* {2 Accept loop} *)

let wake r =
  let b = Bytes.make 1 '!' in
  match Unix.write r.wake_w b 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      () (* a wake is already pending *)
  | exception Unix.Unix_error _ -> ()

let dispatch t cfd =
  let i = Atomic.fetch_and_add t.rr 1 mod Array.length t.reactors in
  let r = t.reactors.(i) in
  Mutex.lock r.inbox_mutex;
  Queue.add cfd r.inbox;
  Mutex.unlock r.inbox_mutex;
  wake r

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.fd; t.stop_r ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rd, _, _ ->
        if List.mem t.stop_r rd then ()
        else if List.mem t.fd rd then begin
          let continue_ = ref true in
          while !continue_ do
            match Unix.accept t.fd with
            | cfd, _ -> dispatch t cfd
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                continue_ := false
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error _ -> continue_ := false
          done
        end
  done

(* {2 Lifecycle} *)

(* Reclaim [path] for our listener, but only if it holds a *stale*
   socket: a non-socket file is someone else's data and a socket a
   connect succeeds on is a live server — unlinking either would
   silently hijack it, so both raise [EADDRINUSE] instead. *)
let claim_socket_path path =
  match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      close_quiet probe;
      if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let nonblock_pipe () =
  let r, w = Unix.pipe () in
  (try Unix.set_nonblock r with Unix.Unix_error _ -> ());
  (try Unix.set_nonblock w with Unix.Unix_error _ -> ());
  (r, w)

let start ?(config = default_config) (addr : address) =
  Protocol.ignore_sigpipe ();
  let fd, sock_path =
    match addr with
    | `Unix path ->
        claim_socket_path path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        (fd, Some path)
    | `Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (fd, None)
  in
  Unix.listen fd 64;
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let store =
    match config.store_dir with
    | Some dir -> Some (Store.create ~dir)
    | None -> Store.ambient ()
  in
  (* Built once per server: the fleet client's ring agrees with every
     other shard's by construction (same topology).  The fetch runs
     inside the reactor handling the Load_key — blocking, but strictly
     on the cold-miss path, where the alternative is a client-side
     recompile costing far more. *)
  let peer_fetch =
    Option.map
      (fun p ->
        let fc =
          Fleet_client.create ~max_frame:config.max_frame
            ~backoff:p.peer_backoff p.peer_topology
        in
        fun key ->
          match Fleet_client.fetch_artifact ~exclude:p.peer_self fc key with
          | Ok bytes -> Ok (Bytes.to_string bytes)
          | Error e -> Error e)
      config.peers
  in
  let shards = max 1 config.cache_shards in
  let cache =
    Shard_cache.create ~metrics_prefix:"serve.cache" ~shards
      ~slots_per_shard:(max 1 ((max 1 config.cache_slots + shards - 1) / shards))
      ()
  in
  let jobs = max 1 config.jobs in
  let reactors =
    Array.init jobs (fun _ ->
        let wake_r, wake_w = nonblock_pipe () in
        {
          wake_r;
          wake_w;
          inbox_mutex = Mutex.create ();
          inbox = Queue.create ();
          conns = [];
        })
  in
  let stop_r, stop_w = nonblock_pipe () in
  let t =
    {
      config;
      store;
      peer_fetch;
      cache;
      fd;
      sock_path;
      stop_flag = Atomic.make false;
      stop_r;
      stop_w;
      reactors;
      reactor_domains = [||];
      accept_domain = None;
      inflight = Atomic.make 0;
      rr = Atomic.make 0;
    }
  in
  t.reactor_domains <-
    Array.map (fun r -> Domain.spawn (fun () -> reactor_loop t r)) reactors;
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t =
  match Unix.getsockname t.fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (* Self-pipes make shutdown prompt even when every loop is parked
       in a long select: the accept loop on [stop_r], each reactor on
       its wake pipe. *)
    let b = Bytes.make 1 '!' in
    (try ignore (Unix.write t.stop_w b 0 1) with Unix.Unix_error _ -> ());
    Array.iter wake t.reactors;
    (match t.accept_domain with
    | Some d ->
        Domain.join d;
        t.accept_domain <- None
    | None -> ());
    Array.iter Domain.join t.reactor_domains;
    t.reactor_domains <- [||];
    Array.iter
      (fun r ->
        close_quiet r.wake_r;
        close_quiet r.wake_w)
      t.reactors;
    close_quiet t.stop_r;
    close_quiet t.stop_w;
    close_quiet t.fd;
    match t.sock_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  end

let with_server ?config addr f =
  let t = start ?config addr in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
