(* Client side of the verdict protocol: lockstep request/reply RPCs plus
   a streaming [trace] helper whose [sink] plugs straight into
   [Interp.config.sink], so one interpreter run can be checked locally
   and remotely in the same process. *)

module Event = Ipds_machine.Event

type address = [ `Unix of string | `Tcp of string * int ]

type t = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  mutable closed : bool;
}

(* Resolution failures must stay inside [connect]'s documented
   [Unix_error] contract — gethostbyname's bare [Not_found] would skip
   the caller's friendly connect-error path. *)
let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      let addrs =
        try
          Unix.getaddrinfo host ""
            [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
        with Unix.Unix_error _ | Not_found -> []
      in
      let inet = function
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } -> Some a
        | _ -> None
      in
      match List.find_map inet addrs with
      | Some a -> a
      | None -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "resolve", host)))

let connect ?(max_frame = Protocol.default_max_frame) (addr : address) =
  Protocol.ignore_sigpipe ();
  let fd =
    match addr with
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | `Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (resolve host, port));
        fd
  in
  { fd; reader = Protocol.reader ~max_frame fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let rpc t frame expect =
  match Protocol.output_frame t.fd frame with
  | () -> (
      match Protocol.input_frame t.reader with
      | Protocol.In_frame (Protocol.Error e) -> Error e
      | Protocol.In_frame f -> (
          match expect f with
          | Some v -> Ok v
          | None ->
              Error
                {
                  Protocol.code = Protocol.Malformed;
                  detail = "unexpected reply frame";
                })
      | Protocol.In_eof ->
          Error
            {
              Protocol.code = Protocol.Truncated;
              detail = "server closed the connection";
            }
      | Protocol.In_error e -> Error e)
  | exception Unix.Unix_error (e, _, _) ->
      Error
        { Protocol.code = Protocol.Server_error; detail = Unix.error_message e }

let load_key t key =
  rpc t (Protocol.Load_key key) (function
    | Protocol.Loaded { cached; _ } -> Some cached
    | _ -> None)

let load_image t ~name image =
  rpc t
    (Protocol.Load_image { name; image = Bytes.to_string image })
    (function Protocol.Loaded { cached; _ } -> Some cached | _ -> None)

let begin_trace t =
  rpc t Protocol.Begin_trace (function
    | Protocol.Trace_started -> Some ()
    | _ -> None)

let send_events t evs =
  rpc t (Protocol.Branch_events evs) (function
    | Protocol.Verdicts vs -> Some vs
    | _ -> None)

let end_trace t =
  rpc t Protocol.End_trace (function
    | Protocol.Trace_summary s -> Some s
    | _ -> None)

let fetch_artifact t key =
  rpc t (Protocol.Fetch_artifact key) (function
    | Protocol.Artifact_data { key = k; image } when String.equal k key ->
        Some (Bytes.of_string image)
    | _ -> None)

let push_artifact t ~key image =
  rpc t
    (Protocol.Push_artifact { key; image = Bytes.to_string image })
    (function
      | Protocol.Artifact_pushed { key = k; stored } when String.equal k key ->
          Some stored
      | _ -> None)

type trace = {
  sink : Event.t -> unit;
  finish :
    unit ->
    (Ipds_core.Checker.alarm list * Protocol.summary, Protocol.err) result;
}

(* Only checker-relevant events go on the wire; the server replays the
   batch and replies with the alarms it raised, one Verdicts frame per
   batch.  A transport or protocol error mid-trace latches: the sink
   goes quiet and [finish] reports the first error. *)
let default_batch = 1024

let trace ?(batch = default_batch) t =
  if batch < 1 then
    invalid_arg (Printf.sprintf "Client.trace: batch must be >= 1 (got %d)" batch);
  match begin_trace t with
  | Error e -> Error e
  | Ok () ->
      let buf = ref [] in
      let n = ref 0 in
      let verdicts = ref [] in
      let failed = ref None in
      let flush () =
        if !n > 0 && Option.is_none !failed then begin
          (match send_events t (List.rev !buf) with
          | Ok vs -> verdicts := List.rev_append vs !verdicts
          | Error e -> failed := Some e);
          buf := [];
          n := 0
        end
      in
      let sink (e : Event.t) =
        match e.Event.kind with
        | Event.Call _ | Event.Ret | Event.Branch _ ->
            if Option.is_none !failed then begin
              buf := e :: !buf;
              incr n;
              if !n >= batch then flush ()
            end
        | _ -> ()
      in
      let finish () =
        flush ();
        match !failed with
        | Some e -> Error e
        | None -> (
            match end_trace t with
            | Ok s -> Ok (List.rev !verdicts, s)
            | Error e -> Error e)
      in
      Ok { sink; finish }
