(** The PR-5 thread-per-session verdict server, preserved as the bench
    baseline for the event-loop {!Server} (the same role
    [Ipds_core.Checker_ref] plays for the flat checker): one blocking
    socket per client, sessions fanned over an {!Ipds_parallel.Pool},
    a single-lock LRU, the generic list-decoding frame path.
    Observable protocol behaviour is identical to {!Server};
    `bench serve-throughput` measures both side by side. *)

type config = {
  jobs : int;  (** worker domains serving sessions (≥ 1) *)
  max_frame : int;  (** payload-size limit, bytes *)
  session_timeout : float;  (** seconds a session may sit idle; 0 = none *)
  cache_slots : int;  (** loaded [System.t]s kept in the LRU *)
  store_dir : string option;
      (** artifact store for [Load_key]; [None] uses the ambient store *)
}

val default_config : config
(** 1 job, 4 MiB frames, 30 s timeout, 8 LRU slots, ambient store. *)

type address = [ `Unix of string | `Tcp of int ]

type t

val start : ?config:config -> address -> t
val port : t -> int option
val stop : t -> unit
val with_server : ?config:config -> address -> (t -> 'a) -> 'a
