(** Client-side fleet routing: every routing client derives the same
    consistent-hash ring from the {!Ipds_fleet.Topology}, so artifact
    keys go straight to their owning shard — no proxy hop, no
    coordination.  A dead shard yields a typed [Unavailable] error and
    the client retries the ring's successor order with bounded backoff;
    any shard can serve any key (sharding is cache affinity), so
    failover costs a cache miss, never an error. *)

type t

val create :
  ?max_frame:int -> ?backoff:Ipds_fleet.Backoff.t -> Ipds_fleet.Topology.t -> t

val topology : t -> Ipds_fleet.Topology.t

val shard_of_key : t -> string -> int
(** The ring owner of [key]. *)

val image_key : string -> string
(** {!Session.image_key}: route inline images by the same key the
    servers cache them under. *)

type routed = {
  client : Client.t;
  shard : int;  (** the shard actually connected *)
  skipped : Protocol.err list;
      (** one typed [Unavailable] per dead shard tried before [shard] *)
}

val connect_for_key : t -> string -> (routed, Protocol.err) result
(** Connect to [key]'s shard, failing over along the ring (bounded by
    the backoff's attempt budget and the shard count).  All reachable
    candidates exhausted → the last typed [Unavailable] error. *)

val with_key : t -> string -> (routed -> 'a) -> ('a, Protocol.err) result
(** [connect_for_key] + close on exit (also on exception). *)

val fetch_artifact :
  ?exclude:int -> t -> string -> (Bytes.t, Protocol.err) result
(** The raw container bytes of [key] from the first ring peer that has
    a verified copy, walking the successor order with bounded backoff;
    a reachable-but-cold peer ([unknown-artifact]) or a rotted copy
    ([corrupt-artifact]) just advances the walk.  [exclude] skips one
    shard index — a shard warming itself must not ask itself.  The
    caller still owns verification of the returned bytes. *)

val push_artifact : t -> key:string -> Bytes.t -> (bool, Protocol.err) result
(** {!Client.push_artifact} to the key's ring owner (with connect
    failover): seed a fleet with a locally-built artifact. *)
